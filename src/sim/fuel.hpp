#pragma once
/// \file fuel.hpp
/// Fuel-rate model standing in for SUMO's HBEFA emission tables.
///
/// SUMO computes fuel from engine power demand
///   P = m v a + 0.5 rho cd A v^3 + m g cr v       [W]
/// mapped through an HBEFA-fitted polynomial; at idle / overrun (P <= 0)
/// consumption drops to an idle floor.  We reproduce that structure with a
/// willans-line map  fuel = idle + k * P_pos, which preserves the property
/// the paper's experiments rely on: fuel scales with |actuation| and
/// vanishes savings-wise when control is skipped (u = 0 => coasting).
/// Coefficients approximate a mid-size gasoline car (HBEFA3/PC_G_EU4-like).

#include <string>

namespace oic::sim {

/// Vehicle / engine parameters of the fuel map.
struct FuelParams {
  double mass = 1500.0;        ///< kg
  double drag_coeff = 0.32;    ///< aerodynamic cd
  double frontal_area = 2.2;   ///< m^2
  double rolling_coeff = 0.012;///< crr
  double air_density = 1.2;    ///< kg/m^3
  double gravity = 9.81;       ///< m/s^2
  double idle_rate = 0.25;     ///< ml/s at zero positive power
  double willans_slope = 0.09; ///< ml/s per kW of positive tractive power
  double regen_fraction = 0.0; ///< fraction of braking power credited (EVs)
};

/// Instantaneous fuel-rate model (ml/s) as a function of speed and
/// acceleration, SUMO/HBEFA-style.
class FuelModel {
 public:
  /// Model with default passenger-car parameters.
  FuelModel() = default;

  /// Model with explicit parameters.
  explicit FuelModel(FuelParams params);

  /// Tractive power demand in kW at speed v (m/s) and acceleration a (m/s^2).
  /// Negative values mean braking / overrun.
  double power_kw(double v, double a) const;

  /// Fuel rate in ml/s.  Clamped below by the idle rate (fuel cut on
  /// overrun is modelled as idle, matching SUMO's floor behaviour).
  double rate(double v, double a) const;

  /// Fuel consumed over one control period `dt` (ml).
  double consume(double v, double a, double dt) const;

  /// Parameters in effect.
  const FuelParams& params() const { return params_; }

  /// Human-readable model id for experiment logs.
  std::string name() const { return "hbefa3-willans"; }

 private:
  FuelParams params_{};
};

}  // namespace oic::sim
