#pragma once
/// \file trace.hpp
/// Closed-loop simulation traces and the aggregate metrics the paper's
/// evaluation reports: fuel consumption, actuation energy sum ||u||_1,
/// skip counts, and safety-violation counters.

#include <cstddef>
#include <vector>

#include "linalg/vector.hpp"

namespace oic::sim {

/// One simulated control period.
struct TraceStep {
  std::size_t t = 0;          ///< step index
  linalg::Vector x;           ///< plant state at the start of the period
  linalg::Vector u;           ///< actuated input
  int z = 1;                  ///< skipping choice (1 = controller ran)
  bool forced = false;        ///< monitor forced z = 1 (x outside X')
  double fuel = 0.0;          ///< fuel consumed in this period (ml)
  double disturbance = 0.0;   ///< scalar disturbance applied (experiment logs)
};

/// A full rollout plus cached aggregates.
class Trace {
 public:
  /// Append one step.
  void add(TraceStep step);

  /// Number of recorded steps.
  std::size_t size() const { return steps_.size(); }

  /// Step access.
  const TraceStep& operator[](std::size_t i) const;

  /// Sum of per-step fuel (ml).
  double total_fuel() const { return total_fuel_; }

  /// Sum of ||u(t)||_1 -- the paper's actuation-energy objective (Problem 1).
  double total_energy() const { return total_energy_; }

  /// Steps where the underlying controller was skipped (z = 0).
  std::size_t skipped_steps() const { return skipped_; }

  /// Steps where the monitor forced the controller to run.
  std::size_t forced_steps() const { return forced_; }

  /// Steps where the controller ran (z = 1).
  std::size_t controller_steps() const { return steps_.size() - skipped_; }

  /// Fraction of steps skipped.
  double skip_ratio() const;

  /// All steps (read-only).
  const std::vector<TraceStep>& steps() const { return steps_; }

 private:
  std::vector<TraceStep> steps_;
  double total_fuel_ = 0.0;
  double total_energy_ = 0.0;
  std::size_t skipped_ = 0;
  std::size_t forced_ = 0;
};

}  // namespace oic::sim
