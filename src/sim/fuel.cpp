#include "sim/fuel.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace oic::sim {

FuelModel::FuelModel(FuelParams params) : params_(params) {
  OIC_REQUIRE(params_.mass > 0.0, "FuelModel: mass must be positive");
  OIC_REQUIRE(params_.idle_rate >= 0.0, "FuelModel: idle rate must be non-negative");
  OIC_REQUIRE(params_.willans_slope >= 0.0,
              "FuelModel: willans slope must be non-negative");
  OIC_REQUIRE(params_.regen_fraction >= 0.0 && params_.regen_fraction <= 1.0,
              "FuelModel: regen fraction must be a fraction");
}

double FuelModel::power_kw(double v, double a) const {
  const double v_abs = std::max(v, 0.0);
  const double inertial = params_.mass * a * v_abs;
  const double aero = 0.5 * params_.air_density * params_.drag_coeff *
                      params_.frontal_area * v_abs * v_abs * v_abs;
  const double rolling = params_.mass * params_.gravity * params_.rolling_coeff * v_abs;
  return (inertial + aero + rolling) / 1000.0;
}

double FuelModel::rate(double v, double a) const {
  const double p = power_kw(v, a);
  if (p <= 0.0) {
    // Overrun: engine at idle, optionally crediting regenerated energy
    // (never below zero consumption).
    return std::max(0.0, params_.idle_rate -
                             params_.regen_fraction * params_.willans_slope * (-p));
  }
  return params_.idle_rate + params_.willans_slope * p;
}

double FuelModel::consume(double v, double a, double dt) const {
  OIC_REQUIRE(dt >= 0.0, "FuelModel::consume: dt must be non-negative");
  return rate(v, a) * dt;
}

}  // namespace oic::sim
