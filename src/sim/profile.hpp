#pragma once
/// \file profile.hpp
/// Front-vehicle velocity profiles -- the source of the perturbation w(t)
/// whose *pattern* the skipping policies learn to exploit (Sec. IV-B).
///
/// Each experiment of the paper corresponds to one profile configuration:
///   * SinusoidalProfile       -- Equation (8): vf = ve + af sin(pi/2 dt t) + w
///                                 (Fig. 4, and Ex.8-Ex.10 of Fig. 6)
///   * UniformRandomProfile    -- Ex.6: a fresh uniform draw each step
///   * BoundedAccelProfile     -- Ex.1-Ex.5 / Ex.7: random acceleration in
///                                 [-a_max, a_max], velocity clipped to range
///   * StopAndGoProfile        -- traffic-jam pattern from the introduction
///   * PiecewiseConstantProfile-- scripted maneuvers for examples and tests
///   * ConstantProfile         -- degenerate baseline

#include <memory>
#include <string>
#include <vector>

#include "common/random.hpp"

namespace oic::sim {

/// Generator of the front vehicle's velocity sequence vf(0), vf(1), ...
/// Implementations must be deterministic given the Rng passed to reset().
class VelocityProfile {
 public:
  virtual ~VelocityProfile() = default;

  /// Restart the sequence; all randomness must come from `rng`.
  virtual void reset(Rng rng) = 0;

  /// Whether reseed() is implemented for this profile.
  virtual bool supports_reseed() const { return false; }

  /// Swap the random stream *without* resetting the deterministic state
  /// (clock, filters, active bursts/ramps).  The importance-splitting layer
  /// uses this to clone an episode mid-flight: replaying the parent's
  /// draws up to the branch step and reseeding there yields the child
  /// trajectory.  Only profiles that opt in (supports_reseed()) implement
  /// it; the default throws PreconditionError.
  virtual void reseed(Rng rng);

  /// Velocity at the current step, then advance the internal clock.
  virtual double next() = 0;

  /// Diagnostic name for experiment tables.
  virtual std::string name() const = 0;

  /// Deep copy (profiles are cheap value-like objects).
  virtual std::unique_ptr<VelocityProfile> clone() const = 0;

  /// Smallest velocity the profile can emit (used to bound w).
  virtual double v_min() const = 0;
  /// Largest velocity the profile can emit.
  virtual double v_max() const = 0;
};

/// Equation (8): vf(t) = ve + af * sin(pi/2 * dt * t) + w,  w ~ U[-noise, noise],
/// clipped to [lo, hi].
class SinusoidalProfile final : public VelocityProfile {
 public:
  SinusoidalProfile(double ve, double af, double dt, double noise, double lo, double hi);

  void reset(Rng rng) override;
  double next() override;
  std::string name() const override;
  std::unique_ptr<VelocityProfile> clone() const override;
  double v_min() const override { return lo_; }
  double v_max() const override { return hi_; }

  /// Noise-free value at step t (used by the model-based oracle).
  double nominal_at(std::size_t t) const;

 private:
  double ve_, af_, dt_, noise_, lo_, hi_;
  std::size_t t_ = 0;
  Rng rng_{0};
};

/// Ex.6: vf drawn uniformly from [lo, hi] at every step (no continuity).
class UniformRandomProfile final : public VelocityProfile {
 public:
  UniformRandomProfile(double lo, double hi);

  void reset(Rng rng) override;
  double next() override;
  std::string name() const override;
  std::unique_ptr<VelocityProfile> clone() const override;
  double v_min() const override { return lo_; }
  double v_max() const override { return hi_; }

 private:
  double lo_, hi_;
  Rng rng_{0};
};

/// Ex.1-Ex.5 / Ex.7: acceleration drawn uniformly from [-a_max, a_max] each
/// step; velocity integrates with period dt and clips to [lo, hi].
class BoundedAccelProfile final : public VelocityProfile {
 public:
  BoundedAccelProfile(double lo, double hi, double a_max, double dt);

  void reset(Rng rng) override;
  double next() override;
  std::string name() const override;
  std::unique_ptr<VelocityProfile> clone() const override;
  double v_min() const override { return lo_; }
  double v_max() const override { return hi_; }

 private:
  double lo_, hi_, a_max_, dt_;
  double v_ = 0.0;
  Rng rng_{0};
};

/// Traffic-jam stop-and-go: dwell at a low speed, ramp to a high speed,
/// dwell, ramp back, repeat; dwell lengths jittered by the rng.
class StopAndGoProfile final : public VelocityProfile {
 public:
  StopAndGoProfile(double v_low, double v_high, std::size_t dwell_steps,
                   std::size_t ramp_steps, double jitter);

  void reset(Rng rng) override;
  double next() override;
  std::string name() const override;
  std::unique_ptr<VelocityProfile> clone() const override;
  double v_min() const override { return v_low_; }
  double v_max() const override { return v_high_; }

 private:
  double v_low_, v_high_;
  std::size_t dwell_steps_, ramp_steps_;
  double jitter_;
  std::size_t t_ = 0;
  std::size_t phase_start_ = 0;
  int phase_ = 0;  // 0 low-dwell, 1 ramp-up, 2 high-dwell, 3 ramp-down
  std::size_t phase_len_ = 0;
  Rng rng_{0};
};

/// Scripted piecewise-constant profile: (duration, velocity) segments,
/// repeating from the start when exhausted.
class PiecewiseConstantProfile final : public VelocityProfile {
 public:
  struct Segment {
    std::size_t steps;
    double velocity;
  };

  explicit PiecewiseConstantProfile(std::vector<Segment> segments);

  void reset(Rng rng) override;
  double next() override;
  std::string name() const override;
  std::unique_ptr<VelocityProfile> clone() const override;
  double v_min() const override;
  double v_max() const override;

 private:
  std::vector<Segment> segments_;
  std::size_t seg_ = 0;
  std::size_t into_ = 0;
};

/// Constant velocity (the trivial pattern).
class ConstantProfile final : public VelocityProfile {
 public:
  explicit ConstantProfile(double v);

  void reset(Rng rng) override;
  double next() override;
  std::string name() const override;
  std::unique_ptr<VelocityProfile> clone() const override;
  double v_min() const override { return v_; }
  double v_max() const override { return v_; }

 private:
  double v_;
};

}  // namespace oic::sim
