#include "sim/trace.hpp"

#include "common/error.hpp"

namespace oic::sim {

void Trace::add(TraceStep step) {
  total_fuel_ += step.fuel;
  total_energy_ += step.u.norm1();
  if (step.z == 0) ++skipped_;
  if (step.forced) ++forced_;
  steps_.push_back(std::move(step));
}

const TraceStep& Trace::operator[](std::size_t i) const {
  OIC_REQUIRE(i < steps_.size(), "Trace: step index out of range");
  return steps_[i];
}

double Trace::skip_ratio() const {
  if (steps_.empty()) return 0.0;
  return static_cast<double>(skipped_) / static_cast<double>(steps_.size());
}

}  // namespace oic::sim
