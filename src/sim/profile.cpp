#include "sim/profile.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.hpp"

namespace oic::sim {

void VelocityProfile::reseed(Rng) {
  throw PreconditionError("VelocityProfile::reseed: profile '" + name() +
                          "' does not support mid-episode reseeding");
}

// ---------------------------------------------------------------- Sinusoidal

SinusoidalProfile::SinusoidalProfile(double ve, double af, double dt, double noise,
                                     double lo, double hi)
    : ve_(ve), af_(af), dt_(dt), noise_(noise), lo_(lo), hi_(hi) {
  OIC_REQUIRE(lo <= hi, "SinusoidalProfile: empty velocity range");
  OIC_REQUIRE(noise >= 0.0, "SinusoidalProfile: noise must be non-negative");
  OIC_REQUIRE(dt > 0.0, "SinusoidalProfile: dt must be positive");
}

void SinusoidalProfile::reset(Rng rng) {
  rng_ = rng;
  t_ = 0;
}

double SinusoidalProfile::nominal_at(std::size_t t) const {
  return ve_ + af_ * std::sin(M_PI / 2.0 * dt_ * static_cast<double>(t));
}

double SinusoidalProfile::next() {
  const double w = noise_ > 0.0 ? rng_.uniform(-noise_, noise_) : 0.0;
  const double v = nominal_at(t_) + w;
  ++t_;
  return std::clamp(v, lo_, hi_);
}

std::string SinusoidalProfile::name() const {
  std::ostringstream os;
  os << "sinusoid(ve=" << ve_ << ",af=" << af_ << ",noise=" << noise_ << ")";
  return os.str();
}

std::unique_ptr<VelocityProfile> SinusoidalProfile::clone() const {
  return std::make_unique<SinusoidalProfile>(*this);
}

// ------------------------------------------------------------ UniformRandom

UniformRandomProfile::UniformRandomProfile(double lo, double hi) : lo_(lo), hi_(hi) {
  OIC_REQUIRE(lo <= hi, "UniformRandomProfile: empty velocity range");
}

void UniformRandomProfile::reset(Rng rng) { rng_ = rng; }

double UniformRandomProfile::next() { return rng_.uniform(lo_, hi_); }

std::string UniformRandomProfile::name() const {
  std::ostringstream os;
  os << "uniform-random[" << lo_ << "," << hi_ << "]";
  return os.str();
}

std::unique_ptr<VelocityProfile> UniformRandomProfile::clone() const {
  return std::make_unique<UniformRandomProfile>(*this);
}

// ------------------------------------------------------------- BoundedAccel

BoundedAccelProfile::BoundedAccelProfile(double lo, double hi, double a_max, double dt)
    : lo_(lo), hi_(hi), a_max_(a_max), dt_(dt) {
  OIC_REQUIRE(lo <= hi, "BoundedAccelProfile: empty velocity range");
  OIC_REQUIRE(a_max >= 0.0, "BoundedAccelProfile: a_max must be non-negative");
  OIC_REQUIRE(dt > 0.0, "BoundedAccelProfile: dt must be positive");
}

void BoundedAccelProfile::reset(Rng rng) {
  rng_ = rng;
  v_ = rng_.uniform(lo_, hi_);
}

double BoundedAccelProfile::next() {
  const double out = v_;
  const double a = rng_.uniform(-a_max_, a_max_);
  v_ = std::clamp(v_ + a * dt_, lo_, hi_);
  return out;
}

std::string BoundedAccelProfile::name() const {
  std::ostringstream os;
  os << "bounded-accel[" << lo_ << "," << hi_ << "](a<=" << a_max_ << ")";
  return os.str();
}

std::unique_ptr<VelocityProfile> BoundedAccelProfile::clone() const {
  return std::make_unique<BoundedAccelProfile>(*this);
}

// ---------------------------------------------------------------- StopAndGo

StopAndGoProfile::StopAndGoProfile(double v_low, double v_high, std::size_t dwell_steps,
                                   std::size_t ramp_steps, double jitter)
    : v_low_(v_low),
      v_high_(v_high),
      dwell_steps_(dwell_steps),
      ramp_steps_(ramp_steps),
      jitter_(jitter) {
  OIC_REQUIRE(v_low <= v_high, "StopAndGoProfile: v_low must not exceed v_high");
  OIC_REQUIRE(dwell_steps >= 1 && ramp_steps >= 1,
              "StopAndGoProfile: phase lengths must be positive");
  OIC_REQUIRE(jitter >= 0.0 && jitter < 1.0, "StopAndGoProfile: jitter in [0,1)");
}

void StopAndGoProfile::reset(Rng rng) {
  rng_ = rng;
  t_ = 0;
  phase_ = 0;
  phase_start_ = 0;
  const double j = jitter_ > 0.0 ? rng_.uniform(1.0 - jitter_, 1.0 + jitter_) : 1.0;
  phase_len_ = std::max<std::size_t>(
      1, static_cast<std::size_t>(static_cast<double>(dwell_steps_) * j));
}

double StopAndGoProfile::next() {
  const std::size_t into = t_ - phase_start_;
  double v = v_low_;
  switch (phase_) {
    case 0:
      v = v_low_;
      break;
    case 1:
      v = v_low_ + (v_high_ - v_low_) * (static_cast<double>(into) + 1.0) /
                       static_cast<double>(phase_len_);
      break;
    case 2:
      v = v_high_;
      break;
    case 3:
      v = v_high_ - (v_high_ - v_low_) * (static_cast<double>(into) + 1.0) /
                        static_cast<double>(phase_len_);
      break;
    default:
      break;
  }
  ++t_;
  if (t_ - phase_start_ >= phase_len_) {
    phase_ = (phase_ + 1) % 4;
    phase_start_ = t_;
    const std::size_t base = (phase_ == 1 || phase_ == 3) ? ramp_steps_ : dwell_steps_;
    const double j = jitter_ > 0.0 ? rng_.uniform(1.0 - jitter_, 1.0 + jitter_) : 1.0;
    phase_len_ = std::max<std::size_t>(
        1, static_cast<std::size_t>(static_cast<double>(base) * j));
  }
  return std::clamp(v, v_low_, v_high_);
}

std::string StopAndGoProfile::name() const {
  std::ostringstream os;
  os << "stop-and-go[" << v_low_ << "," << v_high_ << "]";
  return os.str();
}

std::unique_ptr<VelocityProfile> StopAndGoProfile::clone() const {
  return std::make_unique<StopAndGoProfile>(*this);
}

// -------------------------------------------------------- PiecewiseConstant

PiecewiseConstantProfile::PiecewiseConstantProfile(std::vector<Segment> segments)
    : segments_(std::move(segments)) {
  OIC_REQUIRE(!segments_.empty(), "PiecewiseConstantProfile: need segments");
  for (const auto& s : segments_)
    OIC_REQUIRE(s.steps >= 1, "PiecewiseConstantProfile: zero-length segment");
}

void PiecewiseConstantProfile::reset(Rng /*rng*/) {
  seg_ = 0;
  into_ = 0;
}

double PiecewiseConstantProfile::next() {
  const double v = segments_[seg_].velocity;
  if (++into_ >= segments_[seg_].steps) {
    into_ = 0;
    seg_ = (seg_ + 1) % segments_.size();
  }
  return v;
}

std::string PiecewiseConstantProfile::name() const { return "piecewise-constant"; }

std::unique_ptr<VelocityProfile> PiecewiseConstantProfile::clone() const {
  return std::make_unique<PiecewiseConstantProfile>(*this);
}

double PiecewiseConstantProfile::v_min() const {
  double v = segments_.front().velocity;
  for (const auto& s : segments_) v = std::min(v, s.velocity);
  return v;
}

double PiecewiseConstantProfile::v_max() const {
  double v = segments_.front().velocity;
  for (const auto& s : segments_) v = std::max(v, s.velocity);
  return v;
}

// ----------------------------------------------------------------- Constant

ConstantProfile::ConstantProfile(double v) : v_(v) {}

void ConstantProfile::reset(Rng /*rng*/) {}

double ConstantProfile::next() { return v_; }

std::string ConstantProfile::name() const {
  std::ostringstream os;
  os << "constant(" << v_ << ")";
  return os.str();
}

std::unique_ptr<VelocityProfile> ConstantProfile::clone() const {
  return std::make_unique<ConstantProfile>(*this);
}

}  // namespace oic::sim
