#pragma once
/// \file io.hpp
/// Round-trippable plain-text I/O for the numeric building blocks of a
/// safety certificate: linalg::Vector, linalg::Matrix, poly::HPolytope.
///
/// Everything the offline synthesis produces (gains, tightened constraint
/// sets, the nested safe sets, the k-step ladder) is made of these three
/// types, so the certificate format (`oic-cert v1`, see certificate.hpp)
/// is a tagged sequence of them.  Values are written with 17 significant
/// digits -- enough for IEEE-754 doubles to survive the text round trip
/// bit for bit -- which is what lets a loaded certificate reproduce fresh
/// synthesis exactly (the golden-load guarantee).
///
/// Grammar (whitespace-separated tokens, one object per tag):
///   vector <n> <v_0> ... <v_{n-1}>
///   matrix <rows> <cols> <row-major values>
///   polytope <m> <n> <a_00> ... <a_0,n-1> <b_0>  ...   (one row + offset
///                                                       per constraint)
/// Readers throw NumericalError on malformed or truncated input.

#include <iosfwd>

#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"
#include "poly/hpolytope.hpp"

namespace oic::cert {

/// Write / read one tagged vector.
void write_vector(std::ostream& os, const linalg::Vector& v);
linalg::Vector read_vector(std::istream& is);

/// Write / read one tagged matrix (row-major values).
void write_matrix(std::ostream& os, const linalg::Matrix& m);
linalg::Matrix read_matrix(std::istream& is);

/// Write / read one tagged polytope { x | A x <= b }: each constraint row
/// is the n coefficients of A followed by the offset b.  Handles the empty
/// description (m = 0, the universe) and single-row sets.
void write_polytope(std::ostream& os, const poly::HPolytope& p);
poly::HPolytope read_polytope(std::istream& is);

/// Exact (bitwise) equality of the numeric payloads -- the comparison the
/// round-trip and golden-load tests are phrased in.
bool bit_equal(const linalg::Vector& a, const linalg::Vector& b);
bool bit_equal(const linalg::Matrix& a, const linalg::Matrix& b);
bool bit_equal(const poly::HPolytope& a, const poly::HPolytope& b);

}  // namespace oic::cert
