#include "cert/io.hpp"

#include <cmath>
#include <cstdint>
#include <cstring>
#include <iomanip>
#include <istream>
#include <ostream>
#include <string>

#include "common/error.hpp"

namespace oic::cert {

using linalg::Matrix;
using linalg::Vector;
using poly::HPolytope;

namespace {

void expect_tag(std::istream& is, const char* tag) {
  std::string got;
  if (!(is >> got) || got != tag) {
    throw NumericalError(std::string("cert::io: expected '") + tag + "', got '" + got +
                         "'");
  }
}

std::size_t read_count(std::istream& is, const char* what) {
  std::size_t n = 0;
  // The cap rejects corrupted headers before they turn into huge
  // allocations (worst accepted shape is 4096 x 4096 doubles, ~134 MB);
  // real certificate sets are tens of rows in <= ~20 dims.
  if (!(is >> n) || n > 4096) {
    throw NumericalError(std::string("cert::io: bad ") + what + " count");
  }
  return n;
}

double read_value(std::istream& is, const char* what) {
  double v = 0.0;
  if (!(is >> v)) {
    throw NumericalError(std::string("cert::io: truncated ") + what + " payload");
  }
  // No synthesized artifact is ever non-finite; a nan/inf token is a
  // corrupted or hand-edited file.  (istream extraction of such tokens is
  // implementation-defined -- reject explicitly rather than rely on it.)
  if (!std::isfinite(v)) {
    throw NumericalError(std::string("cert::io: non-finite ") + what + " value");
  }
  return v;
}

}  // namespace

void write_vector(std::ostream& os, const Vector& v) {
  os << "vector " << v.size();
  os << std::setprecision(17);
  for (std::size_t i = 0; i < v.size(); ++i) os << ' ' << v[i];
  os << '\n';
  if (!os) throw NumericalError("cert::io: vector write failed");
}

Vector read_vector(std::istream& is) {
  expect_tag(is, "vector");
  const std::size_t n = read_count(is, "vector");
  Vector v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = read_value(is, "vector");
  return v;
}

void write_matrix(std::ostream& os, const Matrix& m) {
  os << "matrix " << m.rows() << ' ' << m.cols();
  os << std::setprecision(17);
  for (std::size_t i = 0; i < m.rows(); ++i) {
    os << '\n';
    for (std::size_t j = 0; j < m.cols(); ++j) {
      if (j) os << ' ';
      os << m(i, j);
    }
  }
  os << '\n';
  if (!os) throw NumericalError("cert::io: matrix write failed");
}

Matrix read_matrix(std::istream& is) {
  expect_tag(is, "matrix");
  const std::size_t rows = read_count(is, "matrix row");
  const std::size_t cols = read_count(is, "matrix col");
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) m(i, j) = read_value(is, "matrix");
  }
  return m;
}

void write_polytope(std::ostream& os, const HPolytope& p) {
  os << "polytope " << p.num_constraints() << ' ' << p.dim();
  os << std::setprecision(17);
  for (std::size_t i = 0; i < p.num_constraints(); ++i) {
    os << '\n';
    for (std::size_t j = 0; j < p.dim(); ++j) os << p.a()(i, j) << ' ';
    os << p.b()[i];
  }
  os << '\n';
  if (!os) throw NumericalError("cert::io: polytope write failed");
}

HPolytope read_polytope(std::istream& is) {
  expect_tag(is, "polytope");
  const std::size_t m = read_count(is, "polytope row");
  const std::size_t n = read_count(is, "polytope dim");
  Matrix a(m, n);
  Vector b(m);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) a(i, j) = read_value(is, "polytope");
    b[i] = read_value(is, "polytope");
  }
  return HPolytope(std::move(a), std::move(b));
}

namespace {

// Exact bit-pattern comparison: stricter than operator== (distinguishes
// -0.0 from +0.0) and total (NaN payloads compare equal to themselves),
// which is what "bit-identical to fresh synthesis" actually promises.
bool double_bits_equal(double a, double b) {
  std::uint64_t ba = 0, bb = 0;
  std::memcpy(&ba, &a, sizeof ba);
  std::memcpy(&bb, &b, sizeof bb);
  return ba == bb;
}

}  // namespace

bool bit_equal(const Vector& a, const Vector& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!double_bits_equal(a[i], b[i])) return false;
  }
  return true;
}

bool bit_equal(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      if (!double_bits_equal(a(i, j), b(i, j))) return false;
    }
  }
  return true;
}

bool bit_equal(const HPolytope& a, const HPolytope& b) {
  return bit_equal(a.a(), b.a()) && bit_equal(a.b(), b.b());
}

}  // namespace oic::cert
