#include "cert/certificate.hpp"

#include <cstring>
#include <fstream>
#include <sstream>

#include "cert/io.hpp"
#include "common/error.hpp"
#include "common/hash.hpp"
#include "control/lqr.hpp"

namespace oic::cert {

using linalg::Matrix;
using linalg::Vector;
using poly::HPolytope;

namespace {

/// The shared FNV-1a core (common/hash.hpp) extended with the linalg
/// aggregates certificates are made of.
class Fnv1a : public oic::Fnv1a {
 public:
  void vec(const Vector& v) {
    u64(v.size());
    for (std::size_t i = 0; i < v.size(); ++i) f64(v[i]);
  }
  void mat(const Matrix& m) {
    u64(m.rows());
    u64(m.cols());
    for (std::size_t i = 0; i < m.rows(); ++i) {
      for (std::size_t j = 0; j < m.cols(); ++j) f64(m(i, j));
    }
  }
  void polytope(const HPolytope& p) {
    mat(p.a());
    vec(p.b());
  }
};

void expect_line_tag(std::istream& is, const char* tag, const char* what) {
  std::string got;
  if (!(is >> got) || got != tag) {
    throw NumericalError(std::string("load_certificate: missing ") + what);
  }
}

CertHeader read_header(std::istream& is) {
  std::string magic, version;
  is >> magic >> version;
  if (!is || magic != "oic-cert" || version != "v1") {
    throw NumericalError("load_certificate: bad magic/version header");
  }
  CertHeader header;
  expect_line_tag(is, "plant:", "plant id");
  if (!(is >> header.plant)) {
    throw NumericalError("load_certificate: missing plant id");
  }
  expect_line_tag(is, "model-hash:", "model hash");
  std::string hex;
  if (!(is >> hex) || hex.size() != 16 ||
      hex.find_first_not_of("0123456789abcdef") != std::string::npos) {
    throw NumericalError("load_certificate: malformed model hash");
  }
  header.model_hash = std::stoull(hex, nullptr, 16);
  return header;
}

/// Content hash over the certificate payload (every synthesized number's
/// exact bit pattern).  Recorded in the file and re-checked on load, so a
/// corrupted-but-still-parsable cache entry cannot be silently trusted --
/// the model hash only guards the *inputs*, this guards the *outputs*.
std::uint64_t payload_hash(const PlantCertificate& cert) {
  Fnv1a h;
  h.str(cert.plant);
  h.u64(cert.model_hash);
  h.mat(cert.k_lqr);
  h.u64(cert.tightened.size());
  for (const auto& t : cert.tightened) h.polytope(t);
  h.polytope(cert.terminal);
  h.polytope(cert.sets.x);
  h.polytope(cert.sets.xi);
  h.polytope(cert.sets.x_prime);
  h.u64(cert.ladder.size());
  for (const auto& rung : cert.ladder) h.polytope(rung);
  return h.value();
}

}  // namespace

std::uint64_t model_hash(const PlantModel& model) {
  Fnv1a h;
  h.str(model.id);
  h.mat(model.sys.a());
  h.mat(model.sys.b());
  h.mat(model.sys.e());
  h.vec(model.sys.c());
  h.polytope(model.sys.x_set());
  h.polytope(model.sys.u_set());
  h.polytope(model.sys.w_set());
  h.mat(model.q);
  h.mat(model.r);
  h.u64(model.rmpc.horizon);
  h.f64(model.rmpc.state_weight);
  h.f64(model.rmpc.input_weight);
  h.u64(model.rmpc.closed_loop_tightening ? 1 : 0);
  h.u64(model.rmpc.terminal_options.max_iterations);
  h.f64(model.rmpc.terminal_options.tol);
  h.u64(model.rmpc.terminal_options.prune ? 1 : 0);
  h.vec(model.u_skip);
  h.u64(model.ladder_depth);
  return h.value();
}

std::string hash_hex(std::uint64_t hash) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[hash & 0xf];
    hash >>= 4;
  }
  return out;
}

PlantCertificate synthesize(const PlantModel& model) {
  OIC_REQUIRE(!model.id.empty(), "cert::synthesize: model needs an id");
  OIC_REQUIRE(model.id.find_first_of(" \t\n/") == std::string::npos,
              "cert::synthesize: model id must not contain whitespace or '/'");
  OIC_REQUIRE(model.u_skip.size() == model.sys.nu(),
              "cert::synthesize: skip-input dimension mismatch");
  OIC_REQUIRE(model.ladder_depth >= 1, "cert::synthesize: ladder depth must be >= 1");

  PlantCertificate cert;
  cert.plant = model.id;
  cert.model_hash = model_hash(model);

  const auto lqr = control::dlqr(model.sys.a(), model.sys.b(), model.q, model.r);
  OIC_CHECK(lqr.converged, "cert::synthesize: LQR synthesis did not converge");
  cert.k_lqr = lqr.k;

  const control::TubeMpc rmpc(model.sys, cert.k_lqr, model.rmpc);
  cert.tightened.reserve(model.rmpc.horizon + 1);
  for (std::size_t k = 0; k <= model.rmpc.horizon; ++k) {
    cert.tightened.push_back(rmpc.tightened(k));
  }
  cert.terminal = rmpc.terminal_set();

  // Prop. 1: the RMPC's feasible region is its robust control invariant set.
  const HPolytope xi = rmpc.compute_feasible_set();
  OIC_CHECK(!xi.is_empty(), "cert::synthesize: RMPC feasible set is empty");
  cert.sets = core::compute_safe_sets(model.sys, xi, model.u_skip);

  // The k-step ladder is grown from the exact XI the safe-set triple uses,
  // so ladder[0] reproduces X' bit for bit (same operation sequence).
  cert.ladder = core::compute_multi_step_safe_sets(model.sys, cert.sets.xi,
                                                   model.u_skip, model.ladder_depth);
  OIC_CHECK(!cert.ladder.empty(), "cert::synthesize: skip ladder came out empty");
  return cert;
}

void verify(const PlantModel& model, const PlantCertificate& cert) {
  const auto fail = [](const std::string& why) {
    throw NumericalError("cert::verify: " + why);
  };
  if (cert.plant != model.id) {
    fail("certificate is for plant '" + cert.plant + "', model is '" + model.id + "'");
  }
  if (cert.model_hash != model_hash(model)) {
    fail("model hash mismatch (stale certificate: recorded " +
         hash_hex(cert.model_hash) + ", model is " + hash_hex(model_hash(model)) + ")");
  }
  const std::size_t nx = model.sys.nx();
  if (cert.k_lqr.rows() != model.sys.nu() || cert.k_lqr.cols() != nx) {
    fail("LQR gain shape mismatch");
  }
  if (cert.tightened.size() != model.rmpc.horizon + 1) {
    fail("tightened-set count does not match the RMPC horizon");
  }
  for (const auto& t : cert.tightened) {
    if (t.dim() != nx) fail("tightened set dimension mismatch");
    if (t.is_empty()) fail("a tightened constraint set is empty");
  }
  if (cert.terminal.dim() != nx || cert.terminal.is_empty()) {
    fail("terminal set is empty or has the wrong dimension");
  }
  if (cert.sets.x.dim() != nx || cert.sets.xi.dim() != nx ||
      cert.sets.x_prime.dim() != nx) {
    fail("safe-set dimension mismatch");
  }
  // Theorem 1's premise: X' subset XI subset X.
  if (!core::verify_nesting(cert.sets)) {
    fail("nesting X' subset XI subset X does not hold");
  }
  // Definition 3: from every vertex of X', the skip input keeps every
  // disturbance-vertex successor inside XI (exact for planar plants).
  if (!core::verify_strengthened_property(model.sys, cert.sets, model.u_skip)) {
    fail("Definition-3 property fails on X'");
  }
  // Ladder: non-empty prefix, nested chain inside X' (= X'_1).
  if (cert.ladder.empty() || cert.ladder.size() > model.ladder_depth) {
    fail("ladder is empty or deeper than the model requests");
  }
  for (const auto& rung : cert.ladder) {
    if (rung.dim() != nx) fail("ladder set dimension mismatch");
    if (rung.is_empty()) fail("a ladder set is empty");
  }
  if (!poly::contains_polytope(cert.sets.x_prime, cert.ladder.front(), 1e-6) ||
      !poly::contains_polytope(cert.ladder.front(), cert.sets.x_prime, 1e-6)) {
    fail("ladder base X'_1 does not equal the strengthened set X'");
  }
  for (std::size_t k = 1; k < cert.ladder.size(); ++k) {
    if (!poly::contains_polytope(cert.ladder[k - 1], cert.ladder[k], 1e-6)) {
      fail("ladder chain is not nested at depth " + std::to_string(k + 1));
    }
  }
  // The ladder's defining multi-step property, not just its nesting
  // (vertex-exact for planar plants, like verify_strengthened_property):
  // every vertex of X'_k must map under the skip input into X'_{k-1}
  // (X'_0 := XI) for every disturbance vertex.  This is what actually
  // certifies a whole burst -- a corrupted-but-still-nested rung must not
  // pass independent verification.
  if (nx == 2) {
    const auto wverts = model.sys.disturbance_in_state_space().vertices_2d();
    for (std::size_t k = 0; k < cert.ladder.size(); ++k) {
      const HPolytope& target = (k == 0) ? cert.sets.xi : cert.ladder[k - 1];
      for (const auto& v : cert.ladder[k].vertices_2d()) {
        const Vector base =
            model.sys.a() * v + model.sys.b() * model.u_skip + model.sys.c();
        for (const auto& ew : wverts) {
          if (target.violation(base + ew) > 1e-6) {
            fail("ladder multi-step property fails at depth " +
                 std::to_string(k + 1));
          }
        }
      }
    }
  }
}

void save_certificate(const PlantCertificate& cert, std::ostream& os) {
  OIC_REQUIRE(!cert.plant.empty() &&
                  cert.plant.find_first_of(" \t\n") == std::string::npos,
              "save_certificate: plant id must be non-empty without whitespace");
  os << "oic-cert v1\n";
  os << "plant: " << cert.plant << '\n';
  os << "model-hash: " << hash_hex(cert.model_hash) << '\n';
  os << "k-lqr:\n";
  write_matrix(os, cert.k_lqr);
  os << "tightened: " << cert.tightened.size() << '\n';
  for (const auto& t : cert.tightened) write_polytope(os, t);
  os << "terminal:\n";
  write_polytope(os, cert.terminal);
  os << "sets:\n";
  write_polytope(os, cert.sets.x);
  write_polytope(os, cert.sets.xi);
  write_polytope(os, cert.sets.x_prime);
  os << "ladder: " << cert.ladder.size() << '\n';
  for (const auto& rung : cert.ladder) write_polytope(os, rung);
  os << "payload-hash: " << hash_hex(payload_hash(cert)) << '\n';
  os << "end\n";
  if (!os) throw NumericalError("save_certificate: stream write failed");
}

PlantCertificate load_certificate(std::istream& is) {
  const CertHeader header = read_header(is);
  PlantCertificate cert;
  cert.plant = header.plant;
  cert.model_hash = header.model_hash;

  expect_line_tag(is, "k-lqr:", "k-lqr section");
  cert.k_lqr = read_matrix(is);

  expect_line_tag(is, "tightened:", "tightened section");
  std::size_t n_tightened = 0;
  if (!(is >> n_tightened) || n_tightened > 4096) {
    throw NumericalError("load_certificate: bad tightened-set count");
  }
  cert.tightened.reserve(n_tightened);
  for (std::size_t i = 0; i < n_tightened; ++i) {
    cert.tightened.push_back(read_polytope(is));
  }

  expect_line_tag(is, "terminal:", "terminal section");
  cert.terminal = read_polytope(is);

  expect_line_tag(is, "sets:", "sets section");
  cert.sets.x = read_polytope(is);
  cert.sets.xi = read_polytope(is);
  cert.sets.x_prime = read_polytope(is);

  expect_line_tag(is, "ladder:", "ladder section");
  std::size_t n_ladder = 0;
  if (!(is >> n_ladder) || n_ladder > 4096) {
    throw NumericalError("load_certificate: bad ladder count");
  }
  cert.ladder.reserve(n_ladder);
  for (std::size_t i = 0; i < n_ladder; ++i) cert.ladder.push_back(read_polytope(is));

  // Payload integrity: the text round trip is bit-exact, so recomputing
  // the payload hash over what was just parsed must reproduce the recorded
  // value -- any in-place corruption that still parses is caught here.
  expect_line_tag(is, "payload-hash:", "payload hash");
  std::string hex;
  if (!(is >> hex) || hex.size() != 16 ||
      hex.find_first_not_of("0123456789abcdef") != std::string::npos) {
    throw NumericalError("load_certificate: malformed payload hash");
  }
  if (std::stoull(hex, nullptr, 16) != payload_hash(cert)) {
    throw NumericalError(
        "load_certificate: payload hash mismatch (corrupted certificate)");
  }

  // The sentinel distinguishes a complete document from one truncated
  // after a well-formed prefix (e.g. a partial copy of the cache file).
  expect_line_tag(is, "end", "end sentinel (truncated file?)");
  return cert;
}

void save_certificate_file(const PlantCertificate& cert, const std::string& path) {
  std::ofstream os(path);
  if (!os) throw NumericalError("save_certificate_file: cannot open " + path);
  save_certificate(cert, os);
}

PlantCertificate load_certificate_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw NumericalError("load_certificate_file: cannot open " + path);
  return load_certificate(is);
}

bool bit_equal(const PlantCertificate& a, const PlantCertificate& b) {
  if (a.plant != b.plant || a.model_hash != b.model_hash) return false;
  if (!bit_equal(a.k_lqr, b.k_lqr) || !bit_equal(a.terminal, b.terminal)) return false;
  if (a.tightened.size() != b.tightened.size() || a.ladder.size() != b.ladder.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.tightened.size(); ++i) {
    if (!bit_equal(a.tightened[i], b.tightened[i])) return false;
  }
  for (std::size_t i = 0; i < a.ladder.size(); ++i) {
    if (!bit_equal(a.ladder[i], b.ladder[i])) return false;
  }
  return bit_equal(a.sets.x, b.sets.x) && bit_equal(a.sets.xi, b.sets.xi) &&
         bit_equal(a.sets.x_prime, b.sets.x_prime);
}

CertHeader load_certificate_header_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) {
    throw NumericalError("load_certificate_header_file: cannot open " + path);
  }
  return read_header(is);
}

}  // namespace oic::cert
