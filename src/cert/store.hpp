#pragma once
/// \file store.hpp
/// Directory cache of serialized plant certificates.
///
/// The offline synthesis (feasible-set Fourier-Motzkin, tightening and
/// terminal-set LPs, the ladder recursion) costs hundreds of milliseconds
/// per plant; the online side only ever *reads* its artifacts.  A Store
/// maps each PlantModel to `<dir>/<id>.cert` and serves load-or-synthesize:
/// a cached certificate whose recorded content hash matches the model is
/// parsed straight from disk (file-read-bound), anything missing, stale,
/// or unparsable is re-synthesized and rewritten.  Writes go through a
/// temp-file rename so concurrent workers (the training grid builds plants
/// per worker) can race on a cold cache without corrupting it -- they all
/// write the identical deterministic bytes, and the last rename wins.
///
/// The Provider function type is how construction sites stay decoupled
/// from caching policy: a PlantCase constructor takes a Provider, an empty
/// Provider means "synthesize fresh" (the historical behavior), and
/// Store::provider() plugs in the cache.  eval::ScenarioRegistry::make_plant
/// threads a Provider through, and the `--cert-dir` CLI flags build one.

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "cert/certificate.hpp"

namespace oic::cert {

/// Resolves a model to its certificate.  Empty function = synthesize fresh.
using Provider = std::function<PlantCertificate(const PlantModel&)>;

/// Resolve through a Provider, falling back to fresh synthesis when the
/// provider is empty -- the one call every construction site funnels through.
PlantCertificate resolve(const PlantModel& model, const Provider& provider);

/// One `ls` row: a cached certificate file and its header.
struct StoreEntry {
  std::string filename;  ///< basename within the store directory
  std::string plant;     ///< header plant id ("?" when unreadable)
  std::string hash;      ///< header hash in hex ("?" when unreadable)
  bool readable = false; ///< header parsed cleanly
};

/// Directory cache (see file comment).
class Store {
 public:
  /// Opens (and creates if needed) the cache directory; throws
  /// PreconditionError when the path cannot be made a directory.  Sweeps
  /// orphaned `*.cert.tmp.*` files left by crashed writers (only ones old
  /// enough that no live writer can still own them).
  explicit Store(std::string dir);

  const std::string& dir() const { return dir_; }

  /// Cache path for a model: `<dir>/<id>.cert`.
  std::string path_for(const PlantModel& model) const;

  /// Load the cached certificate when present, parsable, and hash-fresh
  /// for this exact model; nullopt otherwise (never throws on a bad file
  /// -- a stale or corrupt cache entry just misses).
  std::optional<PlantCertificate> load_if_fresh(const PlantModel& model) const;

  /// Load-or-synthesize: cache hit returns the parsed file, miss runs
  /// cert::synthesize and persists the result before returning it.
  PlantCertificate get(const PlantModel& model) const;

  /// Re-synthesize unconditionally and atomically rewrite the cache entry
  /// (`oic_cert synth --force`).
  PlantCertificate refresh(const PlantModel& model) const;

  /// All `*.cert` entries in the directory, sorted by filename.
  std::vector<StoreEntry> ls() const;

  /// A Provider backed by this store (captures `this`; the Store must
  /// outlive every plant construction that uses it).
  Provider provider() const;

 private:
  /// Atomic tmp+rename write shared by get() and refresh(); throws Error
  /// (with the tmp file removed) when the write or rename fails.
  void persist(const PlantCertificate& cert, const std::string& path) const;

  /// Remove orphaned tmp files from crashed writers (best effort).
  void sweep_stale_tmp() const;

  std::string dir_;
};

}  // namespace oic::cert
