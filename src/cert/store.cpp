#include "cert/store.hpp"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <sstream>
#include <system_error>
#include <thread>

#include "common/error.hpp"

namespace oic::cert {

namespace fs = std::filesystem;

PlantCertificate resolve(const PlantModel& model, const Provider& provider) {
  return provider ? provider(model) : synthesize(model);
}

Store::Store(std::string dir) : dir_(std::move(dir)) {
  OIC_REQUIRE(!dir_.empty(), "cert::Store: directory path must be non-empty");
  std::error_code ec;
  fs::create_directories(dir_, ec);
  OIC_REQUIRE(!ec && fs::is_directory(dir_),
              "cert::Store: cannot create cache directory '" + dir_ + "'");
  sweep_stale_tmp();
}

void Store::sweep_stale_tmp() const {
  // A crashed or killed writer leaves its `<id>.cert.tmp.<pid>.<tid>`
  // behind; nothing ever reads those, so they accumulate silently.  Sweep
  // any tmp file old enough that its writer cannot still be mid-persist
  // (a persist takes milliseconds; the grace window is minutes, so a
  // *live* concurrent writer is never raced).  Best effort throughout: a
  // sweep failure must not break opening the store.
  using namespace std::chrono_literals;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    const std::string name = entry.path().filename().string();
    if (!entry.is_regular_file(ec) || name.find(".cert.tmp.") == std::string::npos) {
      continue;
    }
    std::error_code tec;
    const auto written = fs::last_write_time(entry.path(), tec);
    if (tec) continue;
    if (fs::file_time_type::clock::now() - written > 10min) {
      fs::remove(entry.path(), tec);
    }
  }
}

std::string Store::path_for(const PlantModel& model) const {
  OIC_REQUIRE(!model.id.empty() &&
                  model.id.find_first_of(" \t\n/") == std::string::npos,
              "cert::Store: model id must be non-empty without whitespace or '/'");
  return dir_ + "/" + model.id + ".cert";
}

std::optional<PlantCertificate> Store::load_if_fresh(const PlantModel& model) const {
  const std::string path = path_for(model);
  std::error_code ec;
  if (!fs::exists(path, ec) || ec) return std::nullopt;
  try {
    PlantCertificate cert = load_certificate_file(path);
    if (cert.plant != model.id || cert.model_hash != model_hash(model)) {
      return std::nullopt;  // stale: the model changed under the cache
    }
    return cert;
  } catch (const Error&) {
    return std::nullopt;  // unreadable entry: treat as a miss
  } catch (const std::exception&) {
    // A corrupted header can still fail outside the parser's own checks
    // (e.g. an allocation error); any such file is a miss, never a crash.
    return std::nullopt;
  }
}

PlantCertificate Store::get(const PlantModel& model) const {
  if (auto cached = load_if_fresh(model)) return std::move(*cached);
  PlantCertificate cert = synthesize(model);
  persist(cert, path_for(model));
  return cert;
}

PlantCertificate Store::refresh(const PlantModel& model) const {
  PlantCertificate cert = synthesize(model);
  persist(cert, path_for(model));
  return cert;
}

void Store::persist(const PlantCertificate& cert, const std::string& path) const {
  // Write-then-rename: concurrent cold-cache workers synthesize the same
  // deterministic bytes, and rename is atomic, so readers only ever see a
  // complete document.  The tmp name carries pid AND thread id -- two
  // *processes* sharing a cache volume must not interleave into one tmp
  // file.  A failed write or rename removes its tmp file and throws a
  // clear Error: silently dropping the persist would turn an unwritable
  // cache volume into an invisible performance bug (every run pays full
  // synthesis again) instead of a diagnosable one.
  std::ostringstream tid;
  tid << ::getpid() << '.' << std::this_thread::get_id();
  const std::string tmp = path + ".tmp." + tid.str();
  try {
    save_certificate_file(cert, tmp);
  } catch (const Error& e) {
    std::error_code ec;
    fs::remove(tmp, ec);
    throw Error("cert::Store: cannot write '" + tmp +
                "' (unwritable or full cache volume?): " + e.what());
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    std::error_code rm;
    fs::remove(tmp, rm);
    throw Error("cert::Store: rename '" + tmp + "' -> '" + path +
                "' failed: " + ec.message());
  }
}

std::vector<StoreEntry> Store::ls() const {
  std::vector<StoreEntry> out;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    if (!entry.is_regular_file() || entry.path().extension() != ".cert") continue;
    StoreEntry row;
    row.filename = entry.path().filename().string();
    try {
      const CertHeader header = load_certificate_header_file(entry.path().string());
      row.plant = header.plant;
      row.hash = hash_hex(header.model_hash);
      row.readable = true;
    } catch (const Error&) {
      row.plant = "?";
      row.hash = "?";
    }
    out.push_back(std::move(row));
  }
  std::sort(out.begin(), out.end(),
            [](const StoreEntry& a, const StoreEntry& b) {
              return a.filename < b.filename;
            });
  return out;
}

Provider Store::provider() const {
  return [this](const PlantModel& model) { return get(model); };
}

}  // namespace oic::cert
