#pragma once
/// \file model.hpp
/// The declarative half of a plant: everything the offline synthesis
/// consumes, nothing it produces.
///
/// The paper's pipeline is offline synthesis (tube-RMPC feasible set XI of
/// Prop. 1, strengthened set X' of Definition 3, the Theorem-1 nesting)
/// followed by a cheap online monitor.  A PlantModel captures the
/// synthesis *inputs* -- the shifted affine dynamics with their constraint
/// polytopes, the LQR weights for the local gain, the tube-MPC
/// configuration, the designated skip input, and the requested depth of
/// the k-step skip ladder -- as a plain value type that is cheap to build
/// and cheap to hash.  The synthesis *outputs* live in a
/// cert::PlantCertificate (certificate.hpp), computed once by
/// cert::synthesize and cached on disk by cert::Store.
///
/// Running-cost constants (fuel maps, duty rates) deliberately stay with
/// the concrete eval::PlantCase: they shape what an evaluation reports,
/// not what the safety certificate proves, so they are not part of the
/// model hash and a cost retune never invalidates cached certificates.

#include <cstddef>
#include <string>

#include "control/lti.hpp"
#include "control/tube_mpc.hpp"
#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"

namespace oic::cert {

/// Default depth of the k-step strengthened-set ladder X'_1..X'_k
/// synthesized into every certificate (core::compute_multi_step_safe_sets).
/// Deep enough for the burst:<k> policies the sweeps exercise; the chain
/// stops early anyway once it goes empty.
inline constexpr std::size_t kDefaultLadderDepth = 4;

/// Synthesis inputs of one plant (see file comment).
struct PlantModel {
  std::string id;            ///< registry id ("acc", "lane-keep", ...)
  control::AffineLTI sys;    ///< shifted-coordinate dynamics + X / U / W
  linalg::Matrix q;          ///< LQR state weight for the local gain
  linalg::Matrix r;          ///< LQR input weight
  control::RmpcConfig rmpc;  ///< tube-MPC configuration (Equation 5)
  linalg::Vector u_skip;     ///< designated skip input (shifted coordinates)
  std::size_t ladder_depth = kDefaultLadderDepth;  ///< k of the skip ladder
};

}  // namespace oic::cert
