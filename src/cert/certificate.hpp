#pragma once
/// \file certificate.hpp
/// The synthesized half of a plant: the offline safety artifacts as a
/// first-class, serializable value.
///
/// A PlantCertificate bundles everything the online side needs and the
/// offline side proves: the local LQR gain, the tube RMPC's tightened
/// constraint sets X(0..N) and terminal set X_t (so the controller can be
/// rehydrated without re-running the Pontryagin/RPI synthesis), the nested
/// safe sets X' subset XI subset X of Theorem 1, and the k-step skip
/// ladder X'_1..X'_k certifying whole skip bursts.  cert::synthesize
/// produces it from a PlantModel; cert::verify re-checks the nesting and
/// the Definition-3 property independently of how the certificate was
/// obtained; serialize/load round-trip it through the `oic-cert v1` text
/// format (docs/cert_format.md) bit for bit.
///
/// Staleness is detected by content hash: the certificate records a 64-bit
/// FNV-1a digest over the model's exact double bit patterns, and loaders
/// reject a certificate whose recorded hash does not match the model they
/// are about to pair it with.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "cert/model.hpp"
#include "core/safe_sets.hpp"
#include "poly/hpolytope.hpp"

namespace oic::cert {

/// Offline synthesis artifacts for one plant model (see file comment).
struct PlantCertificate {
  std::string plant;              ///< model id this was synthesized for
  std::uint64_t model_hash = 0;   ///< content hash of the source model
  linalg::Matrix k_lqr;           ///< local stabilizing gain u = K x
  std::vector<poly::HPolytope> tightened;  ///< RMPC X(0) ... X(N)
  poly::HPolytope terminal;       ///< RMPC terminal set X_t
  core::SafeSets sets;            ///< X, XI (Prop. 1), X' (Definition 3)
  std::vector<poly::HPolytope> ladder;  ///< X'_1 .. X'_k non-empty prefix
};

/// Content hash over the model: FNV-1a 64 over the id, every dynamics /
/// weight / constraint double (exact bit patterns), the RMPC configuration
/// fields that shape synthesis, the skip input, and the ladder depth.
/// Solver-only knobs (RmpcConfig::reuse_lp / warm_start) are excluded --
/// they do not change any synthesized set.
std::uint64_t model_hash(const PlantModel& model);

/// Hash rendered as 16 lowercase hex digits (file headers, CLI output).
std::string hash_hex(std::uint64_t hash);

/// Run the full offline synthesis for a model: LQR gain, tube RMPC
/// (tightened + terminal sets), feasible set XI per Prop. 1, safe-set
/// triple, and the k-step ladder.  Throws NumericalError when any stage
/// degenerates (LQR divergence, empty feasible set, ...).
PlantCertificate synthesize(const PlantModel& model);

/// Independently re-check a certificate against its model: hash match,
/// dimensional consistency, the Theorem-1 nesting X' subset XI subset X,
/// the Definition-3 property of X' (vertex-exact for planar plants), the
/// ladder chain nesting X'_k subset ... subset X'_1 = X', and terminal /
/// tightened-set sanity.  Throws NumericalError with a specific message on
/// the first failed check.
void verify(const PlantModel& model, const PlantCertificate& cert);

/// Serialize to the `oic-cert v1` text format.  Throws on I/O failure.
void save_certificate(const PlantCertificate& cert, std::ostream& os);

/// Parse a certificate written by save_certificate.  Throws NumericalError
/// on wrong magic/version, malformed tags, or truncation (the format ends
/// with an explicit `end` sentinel).
PlantCertificate load_certificate(std::istream& is);

/// Convenience file wrappers.
void save_certificate_file(const PlantCertificate& cert, const std::string& path);
PlantCertificate load_certificate_file(const std::string& path);

/// Certificate-file header (plant id + recorded model hash) without the
/// set payload -- staleness checks and `oic_cert ls` read this instead of
/// parsing hundreds of constraint rows.
struct CertHeader {
  std::string plant;
  std::uint64_t model_hash = 0;
};

CertHeader load_certificate_header_file(const std::string& path);

/// Exact bitwise equality of two certificates, every field -- the
/// comparison behind the golden load == synthesis guarantee (bench
/// `cert_cold_start` and the round-trip tests).
bool bit_equal(const PlantCertificate& a, const PlantCertificate& b);

}  // namespace oic::cert
