#include "serve/api.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstring>
#include <istream>
#include <ostream>
#include <string_view>
#include <system_error>

#include "common/error.hpp"

namespace oic::serve {

namespace {

/// Line supplier the grammar readers run against.  Two implementations:
/// one wraps std::getline for the one-shot entry points (any istream,
/// never reads past what it returns), one block-buffers for the stateful
/// Reader classes on long-lived connection streams.
class LineSource {
 public:
  virtual ~LineSource() = default;
  /// Next line without its terminator; false on end of stream.
  virtual bool next(std::string& line) = 0;
};

class IstreamLines final : public LineSource {
 public:
  explicit IstreamLines(std::istream& is) : is_(is) {}
  bool next(std::string& line) override {
    return static_cast<bool>(std::getline(is_, line));
  }

 private:
  std::istream& is_;
};

/// Block-buffered line splitter: refills from the streambuf with sgetn
/// (blocking only for the first byte, then draining whatever in_avail
/// reports) and cuts lines with memchr.  May hold bytes beyond the last
/// returned line, which is why only the persistent Reader classes use it.
class BufferedLines final : public LineSource {
 public:
  explicit BufferedLines(std::istream& is) : is_(is) {}

  bool next(std::string& line) override {
    for (;;) {
      const char* base = buf_.data();
      const void* nl = std::memchr(base + pos_, '\n', buf_.size() - pos_);
      if (nl != nullptr) {
        const std::size_t at =
            static_cast<std::size_t>(static_cast<const char*>(nl) - base);
        line.assign(base + pos_, at - pos_);
        pos_ = at + 1;
        compact();
        return true;
      }
      if (!refill()) {
        if (pos_ < buf_.size()) {
          // Final line without a trailing newline, same as std::getline.
          line.assign(buf_.data() + pos_, buf_.size() - pos_);
          pos_ = buf_.size();
          compact();
          return true;
        }
        return false;
      }
    }
  }

 private:
  void compact() {
    if (pos_ == buf_.size()) {
      buf_.clear();
      pos_ = 0;
    } else if (pos_ > (std::size_t{1} << 16)) {
      buf_.erase(0, pos_);
      pos_ = 0;
    }
  }

  bool refill() {
    using traits = std::char_traits<char>;
    std::streambuf* sb = is_.rdbuf();
    const traits::int_type c = sb->sbumpc();  // blocks for the next byte
    if (traits::eq_int_type(c, traits::eof())) return false;
    buf_.push_back(traits::to_char_type(c));
    std::streamsize avail = sb->in_avail();
    while (avail > 0) {
      const std::size_t old = buf_.size();
      buf_.resize(old + static_cast<std::size_t>(avail));
      const std::streamsize got = sb->sgetn(buf_.data() + old, avail);
      buf_.resize(old + static_cast<std::size_t>(std::max<std::streamsize>(got, 0)));
      if (got <= 0) break;
      // Enough buffered to make progress; stop once a full line arrived.
      if (std::memchr(buf_.data() + old, '\n', static_cast<std::size_t>(got)) !=
          nullptr) {
        break;
      }
      avail = sb->in_avail();
    }
    return true;
  }

  std::istream& is_;
  std::string buf_;
  std::size_t pos_ = 0;
};

/// Whitespace-tokenizing cursor over one line of a document.  The wire
/// grammar is parsed at serve throughput (every decision crosses it twice
/// on a socket transport), so tokens are cut as string_views over the
/// line buffer and numbers go through std::from_chars -- no istringstream
/// construction, no per-token std::string, no locale machinery.
struct Cursor {
  const char* p;
  const char* end;

  explicit Cursor(const std::string& line)
      : p(line.data()), end(line.data() + line.size()) {}

  static bool is_ws(char c) {
    return c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f';
  }

  /// Next whitespace-delimited token; empty view when the line is spent.
  std::string_view next() {
    while (p != end && is_ws(*p)) ++p;
    const char* b = p;
    while (p != end && !is_ws(*p)) ++p;
    return std::string_view(b, static_cast<std::size_t>(p - b));
  }

  /// Rest of the line verbatim (leading whitespace skipped once), for
  /// free-text payloads like error diagnostics.
  std::string_view rest() {
    if (p != end && is_ws(*p)) ++p;
    std::string_view r(p, static_cast<std::size_t>(end - p));
    p = end;
    return r;
  }
};

/// Next line of the document; truncation (EOF mid-batch) is malformed.
/// The buffer is caller-owned and reused across lines.
void next_line(LineSource& src, std::string& line, const char* what) {
  if (!src.next(line)) {
    throw NumericalError(std::string("oic-serve: truncated document (expected ") +
                         what + ")");
  }
}

/// Strict u64 token: digits only, no sign, bounded length (a permissive
/// integer parse would happily wrap "-1" to 2^64-1, and 19 digits is the
/// longest string that cannot overflow).
std::uint64_t parse_u64(Cursor& cur, const char* what) {
  const std::string_view tok = cur.next();
  if (tok.empty()) {
    throw NumericalError(std::string("oic-serve: missing ") + what);
  }
  if (tok.size() > 19) {
    throw NumericalError(std::string("oic-serve: malformed ") + what + " '" +
                         std::string(tok) + "'");
  }
  std::uint64_t v = 0;
  for (const char c : tok) {
    if (c < '0' || c > '9') {
      throw NumericalError(std::string("oic-serve: malformed ") + what + " '" +
                           std::string(tok) + "'");
    }
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return v;
}

/// Finite double token: parse failure, a partially-consumed token, or
/// nan/inf (including overflow spellings like 1e999) is malformed -- a
/// non-finite state would poison every membership LP downstream.
double read_finite(Cursor& cur, const char* what) {
  std::string_view tok = cur.next();
  // std::from_chars takes no leading '+'; accept one like iostreams did.
  if (!tok.empty() && tok.front() == '+') tok.remove_prefix(1);
  double v = 0.0;
  const auto [ptr, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), v);
  if (ec != std::errc() || ptr != tok.data() + tok.size() || !std::isfinite(v)) {
    throw NumericalError(std::string("oic-serve: non-finite or malformed ") + what);
  }
  return v;
}

void expect_keyword(Cursor& cur, const char* kw) {
  const std::string_view tok = cur.next();
  if (tok != kw) {
    throw NumericalError(std::string("oic-serve: expected keyword '") + kw +
                         "', got '" + std::string(tok) + "'");
  }
}

void expect_line_end(Cursor& cur, const char* what) {
  const std::string_view extra = cur.next();
  if (!extra.empty()) {
    throw NumericalError(std::string("oic-serve: trailing tokens after ") + what +
                         " ('" + std::string(extra) + "')");
  }
}

/// A single whitespace-free token (plant ids, policy specs).
std::string parse_token(Cursor& cur, const char* what) {
  const std::string_view tok = cur.next();
  if (tok.empty()) {
    throw NumericalError(std::string("oic-serve: missing ") + what);
  }
  if (tok.size() > kMaxTokenLength) {
    throw NumericalError(std::string("oic-serve: oversized ") + what);
  }
  return std::string(tok);
}

/// `<dim> <v...>` vector payload (the tag keyword was already consumed).
void parse_vector_body(Cursor& cur, linalg::Vector& out) {
  const std::uint64_t dim = parse_u64(cur, "vector dimension");
  if (dim < 1 || dim > kMaxDim) {
    throw NumericalError("oic-serve: vector dimension out of range (1.." +
                         std::to_string(kMaxDim) + ")");
  }
  out.data().assign(static_cast<std::size_t>(dim), 0.0);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = read_finite(cur, "vector entry");
  }
}

/// `<tag> <dim> <v...>` vector payload with the grammar's dimension cap.
void parse_vector(Cursor& cur, const char* tag, linalg::Vector& out) {
  expect_keyword(cur, tag);
  parse_vector_body(cur, out);
}

/// Read the batch header shared by both directions; returns the count.
std::uint64_t read_header(LineSource& src, std::string& line,
                          const char* count_keyword, bool& eof) {
  // Skip blank separator lines between batch documents; clean EOF before a
  // magic line is the normal end of stream.
  eof = false;
  do {
    if (!src.next(line)) {
      eof = true;
      return 0;
    }
  } while (line.empty());
  if (line != kMagic) {
    throw NumericalError("oic-serve: bad magic/version line '" + line +
                         "' (expected '" + std::string(kMagic) + "')");
  }
  next_line(src, line, count_keyword);
  Cursor cur(line);
  expect_keyword(cur, count_keyword);
  const std::uint64_t n = parse_u64(cur, "batch count");
  if (n > kMaxBatchRequests) {
    throw NumericalError("oic-serve: batch count " + std::to_string(n) +
                         " exceeds the cap of " + std::to_string(kMaxBatchRequests));
  }
  expect_line_end(cur, "batch count");
  return n;
}

void read_end_sentinel(LineSource& src, std::string& line) {
  next_line(src, line, "'end' sentinel");
  if (line != "end") {
    throw NumericalError("oic-serve: expected 'end' sentinel, got '" + line + "'");
  }
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[20];
  const auto [p, ec] = std::to_chars(buf, buf + sizeof buf, v);
  out.append(buf, p);
}

/// Shortest round-trip spelling (std::to_chars): reads back bit-exactly,
/// including subnormals, at a fraction of the snprintf("%.17g") cost.
void append_double(std::string& out, double v) {
  char buf[32];
  const auto [p, ec] = std::to_chars(buf, buf + sizeof buf, v);
  out.push_back(' ');
  out.append(buf, p);
}

void append_vector(std::string& out, const char* tag, const linalg::Vector& v) {
  OIC_REQUIRE(v.size() >= 1 && v.size() <= kMaxDim,
              std::string("oic-serve: vector dimension out of range writing ") + tag);
  out += ' ';
  out += tag;
  out += ' ';
  append_u64(out, v.size());
  for (const double x : v) append_double(out, x);
}

/// Writers enforce the same single-token rule readers rely on, so a spec
/// with embedded whitespace fails at save time instead of corrupting the
/// line grammar.
void require_token(const std::string& s, const char* what) {
  OIC_REQUIRE(!s.empty() && s.size() <= kMaxTokenLength &&
                  s.find_first_of(" \t\r\n") == std::string::npos,
              std::string("oic-serve: ") + what +
                  " must be a non-empty single token without whitespace");
}

bool read_request_lines(LineSource& src, std::vector<Request>& out) {
  out.clear();
  bool eof = false;
  std::string line;
  const std::uint64_t n = read_header(src, line, "requests", eof);
  if (eof) return false;
  out.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    next_line(src, line, "request line");
    Cursor cur(line);
    const std::string_view verb = cur.next();
    if (verb.empty()) {
      throw NumericalError("oic-serve: empty request line");
    }
    Request r;
    if (verb == "open") {
      r.kind = Request::Kind::kOpen;
      r.ref = parse_u64(cur, "request ref");
      expect_keyword(cur, "session");
      r.session = parse_u64(cur, "session id");
      expect_keyword(cur, "plant");
      r.plant = parse_token(cur, "plant id");
      expect_keyword(cur, "policy");
      r.policy = parse_token(cur, "policy spec");
      expect_line_end(cur, "open request");
    } else if (verb == "decide") {
      r.kind = Request::Kind::kDecide;
      r.ref = parse_u64(cur, "request ref");
      expect_keyword(cur, "session");
      r.session = parse_u64(cur, "session id");
      // Peek the next tag: `u` only on subsequent decides.
      const std::string_view tag = cur.next();
      if (tag.empty()) {
        throw NumericalError("oic-serve: decide request missing state vector");
      }
      if (tag == "u") {
        parse_vector_body(cur, r.u);
        r.has_u = true;
        parse_vector(cur, "x", r.x);
      } else if (tag == "x") {
        parse_vector_body(cur, r.x);
      } else {
        throw NumericalError("oic-serve: decide request expected 'u' or 'x', got '" +
                             std::string(tag) + "'");
      }
      expect_line_end(cur, "decide request");
    } else if (verb == "close") {
      r.kind = Request::Kind::kClose;
      r.ref = parse_u64(cur, "request ref");
      expect_keyword(cur, "session");
      r.session = parse_u64(cur, "session id");
      expect_line_end(cur, "close request");
    } else if (verb == "reload") {
      r.kind = Request::Kind::kReload;
      r.ref = parse_u64(cur, "request ref");
      expect_line_end(cur, "reload request");
    } else {
      throw NumericalError("oic-serve: unknown request verb '" + std::string(verb) +
                           "'");
    }
    out.push_back(std::move(r));
  }
  read_end_sentinel(src, line);
  return true;
}

}  // namespace

bool read_request_batch(std::istream& is, std::vector<Request>& out) {
  IstreamLines src(is);
  return read_request_lines(src, out);
}

void write_request_batch(const std::vector<Request>& batch, std::ostream& os) {
  OIC_REQUIRE(batch.size() <= kMaxBatchRequests,
              "oic-serve: batch exceeds the request cap");
  std::string out;
  out.reserve(64 + batch.size() * 96);
  out += kMagic;
  out += "\nrequests ";
  append_u64(out, batch.size());
  out += '\n';
  for (const Request& r : batch) {
    switch (r.kind) {
      case Request::Kind::kOpen:
        require_token(r.plant, "plant id");
        require_token(r.policy, "policy spec");
        out += "open ";
        append_u64(out, r.ref);
        out += " session ";
        append_u64(out, r.session);
        out += " plant ";
        out += r.plant;
        out += " policy ";
        out += r.policy;
        break;
      case Request::Kind::kDecide:
        out += "decide ";
        append_u64(out, r.ref);
        out += " session ";
        append_u64(out, r.session);
        if (r.has_u) append_vector(out, "u", r.u);
        append_vector(out, "x", r.x);
        break;
      case Request::Kind::kClose:
        out += "close ";
        append_u64(out, r.ref);
        out += " session ";
        append_u64(out, r.session);
        break;
      case Request::Kind::kReload:
        out += "reload ";
        append_u64(out, r.ref);
        break;
    }
    out += '\n';
  }
  out += "end\n";
  os << out;
  OIC_REQUIRE(os.good(), "oic-serve: request write failed");
}

namespace {

bool read_response_lines(LineSource& src, std::vector<Response>& out) {
  out.clear();
  bool eof = false;
  std::string line;
  const std::uint64_t n = read_header(src, line, "responses", eof);
  if (eof) return false;
  out.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    next_line(src, line, "response line");
    Cursor cur(line);
    const std::string_view verb = cur.next();
    if (verb.empty()) {
      throw NumericalError("oic-serve: empty response line");
    }
    Response r;
    if (verb == "opened") {
      r.kind = Response::Kind::kOpened;
      r.ref = parse_u64(cur, "response ref");
      expect_keyword(cur, "session");
      r.session = parse_u64(cur, "session id");
      expect_line_end(cur, "opened response");
    } else if (verb == "decision") {
      r.kind = Response::Kind::kDecision;
      r.ref = parse_u64(cur, "response ref");
      expect_keyword(cur, "session");
      r.session = parse_u64(cur, "session id");
      expect_keyword(cur, "z");
      const std::uint64_t z = parse_u64(cur, "decision z");
      expect_keyword(cur, "forced");
      const std::uint64_t forced = parse_u64(cur, "decision forced");
      if (z > 1 || forced > 1) {
        throw NumericalError("oic-serve: decision flags must be 0 or 1");
      }
      r.z = static_cast<int>(z);
      r.forced = forced == 1;
      expect_line_end(cur, "decision response");
    } else if (verb == "closed") {
      r.kind = Response::Kind::kClosed;
      r.ref = parse_u64(cur, "response ref");
      expect_keyword(cur, "session");
      r.session = parse_u64(cur, "session id");
      expect_line_end(cur, "closed response");
    } else if (verb == "reloaded") {
      r.kind = Response::Kind::kReloaded;
      r.ref = parse_u64(cur, "response ref");
      expect_keyword(cur, "certs");
      r.certs = parse_u64(cur, "reload cert count");
      expect_keyword(cur, "agents");
      r.agents = parse_u64(cur, "reload agent count");
      expect_line_end(cur, "reloaded response");
    } else if (verb == "error") {
      r.kind = Response::Kind::kError;
      r.ref = parse_u64(cur, "response ref");
      expect_keyword(cur, "message");
      r.error = std::string(cur.rest());
    } else {
      throw NumericalError("oic-serve: unknown response verb '" + std::string(verb) +
                           "'");
    }
    out.push_back(std::move(r));
  }
  read_end_sentinel(src, line);
  return true;
}

}  // namespace

bool read_response_batch(std::istream& is, std::vector<Response>& out) {
  IstreamLines src(is);
  return read_response_lines(src, out);
}

struct RequestReader::Impl {
  BufferedLines lines;
  explicit Impl(std::istream& is) : lines(is) {}
};

RequestReader::RequestReader(std::istream& is)
    : impl_(std::make_unique<Impl>(is)) {}
RequestReader::~RequestReader() = default;

bool RequestReader::read(std::vector<Request>& out) {
  return read_request_lines(impl_->lines, out);
}

struct ResponseReader::Impl {
  BufferedLines lines;
  explicit Impl(std::istream& is) : lines(is) {}
};

ResponseReader::ResponseReader(std::istream& is)
    : impl_(std::make_unique<Impl>(is)) {}
ResponseReader::~ResponseReader() = default;

bool ResponseReader::read(std::vector<Response>& out) {
  return read_response_lines(impl_->lines, out);
}

void write_response_batch(const std::vector<Response>& batch, std::ostream& os) {
  std::string out;
  out.reserve(64 + batch.size() * 48);
  out += kMagic;
  out += "\nresponses ";
  append_u64(out, batch.size());
  out += '\n';
  for (const Response& r : batch) {
    switch (r.kind) {
      case Response::Kind::kOpened:
        out += "opened ";
        append_u64(out, r.ref);
        out += " session ";
        append_u64(out, r.session);
        break;
      case Response::Kind::kDecision:
        out += "decision ";
        append_u64(out, r.ref);
        out += " session ";
        append_u64(out, r.session);
        out += " z ";
        append_u64(out, static_cast<std::uint64_t>(r.z));
        out += " forced ";
        out += r.forced ? '1' : '0';
        break;
      case Response::Kind::kClosed:
        out += "closed ";
        append_u64(out, r.ref);
        out += " session ";
        append_u64(out, r.session);
        break;
      case Response::Kind::kReloaded:
        out += "reloaded ";
        append_u64(out, r.ref);
        out += " certs ";
        append_u64(out, r.certs);
        out += " agents ";
        append_u64(out, r.agents);
        break;
      case Response::Kind::kError: {
        // The grammar is line-framed: a diagnostic with embedded newlines
        // must not be able to forge extra response lines.
        std::string text = r.error;
        for (char& c : text) {
          if (c == '\n' || c == '\r') c = ' ';
        }
        out += "error ";
        append_u64(out, r.ref);
        out += " message ";
        out += text;
        break;
      }
    }
    out += '\n';
  }
  out += "end\n";
  os << out;
  OIC_REQUIRE(os.good(), "oic-serve: response write failed");
}

}  // namespace oic::serve
