#include "serve/api.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace oic::serve {

namespace {

/// Next line of the document; truncation (EOF mid-batch) is malformed.
std::string next_line(std::istream& is, const char* what) {
  std::string line;
  if (!std::getline(is, line)) {
    throw NumericalError(std::string("oic-serve: truncated document (expected ") +
                         what + ")");
  }
  return line;
}

/// Strict u64 token: digits only, no sign, bounded length (strtoull would
/// happily wrap "-1" to 2^64-1 and a hostile length would overflow it).
std::uint64_t parse_u64(std::istringstream& iss, const char* what) {
  std::string tok;
  if (!(iss >> tok)) {
    throw NumericalError(std::string("oic-serve: missing ") + what);
  }
  if (tok.empty() || tok.size() > 19 ||
      tok.find_first_not_of("0123456789") != std::string::npos) {
    throw NumericalError(std::string("oic-serve: malformed ") + what + " '" + tok +
                         "'");
  }
  return std::strtoull(tok.c_str(), nullptr, 10);
}

/// Finite double token: extraction failure or nan/inf (including overflow
/// spellings like 1e999) is malformed -- a non-finite state would poison
/// every membership LP downstream.
double read_finite(std::istringstream& iss, const char* what) {
  double v = 0.0;
  if (!(iss >> v) || !std::isfinite(v)) {
    throw NumericalError(std::string("oic-serve: non-finite or malformed ") + what);
  }
  return v;
}

void expect_keyword(std::istringstream& iss, const char* kw) {
  std::string tok;
  if (!(iss >> tok) || tok != kw) {
    throw NumericalError(std::string("oic-serve: expected keyword '") + kw +
                         "', got '" + tok + "'");
  }
}

void expect_line_end(std::istringstream& iss, const char* what) {
  std::string extra;
  if (iss >> extra) {
    throw NumericalError(std::string("oic-serve: trailing tokens after ") + what +
                         " ('" + extra + "')");
  }
}

/// A single whitespace-free token (plant ids, policy specs).
std::string parse_token(std::istringstream& iss, const char* what) {
  std::string tok;
  if (!(iss >> tok)) {
    throw NumericalError(std::string("oic-serve: missing ") + what);
  }
  if (tok.size() > kMaxTokenLength) {
    throw NumericalError(std::string("oic-serve: oversized ") + what);
  }
  return tok;
}

/// `<dim> <v...>` vector payload (the tag keyword was already consumed).
void parse_vector_body(std::istringstream& iss, linalg::Vector& out) {
  const std::uint64_t dim = parse_u64(iss, "vector dimension");
  if (dim < 1 || dim > kMaxDim) {
    throw NumericalError("oic-serve: vector dimension out of range (1.." +
                         std::to_string(kMaxDim) + ")");
  }
  out.data().assign(static_cast<std::size_t>(dim), 0.0);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = read_finite(iss, "vector entry");
  }
}

/// `<tag> <dim> <v...>` vector payload with the grammar's dimension cap.
void parse_vector(std::istringstream& iss, const char* tag, linalg::Vector& out) {
  expect_keyword(iss, tag);
  parse_vector_body(iss, out);
}

/// Read the batch header shared by both directions; returns the count.
std::uint64_t read_header(std::istream& is, std::string& first_line,
                          const char* count_keyword, bool& eof) {
  // Skip blank separator lines between batch documents; clean EOF before a
  // magic line is the normal end of stream.
  eof = false;
  std::string line;
  do {
    if (!std::getline(is, line)) {
      eof = true;
      return 0;
    }
  } while (line.empty());
  if (line != kMagic) {
    throw NumericalError("oic-serve: bad magic/version line '" + line +
                         "' (expected '" + std::string(kMagic) + "')");
  }
  first_line = next_line(is, count_keyword);
  std::istringstream iss(first_line);
  expect_keyword(iss, count_keyword);
  const std::uint64_t n = parse_u64(iss, "batch count");
  if (n > kMaxBatchRequests) {
    throw NumericalError("oic-serve: batch count " + std::to_string(n) +
                         " exceeds the cap of " + std::to_string(kMaxBatchRequests));
  }
  expect_line_end(iss, "batch count");
  return n;
}

void read_end_sentinel(std::istream& is) {
  const std::string line = next_line(is, "'end' sentinel");
  if (line != "end") {
    throw NumericalError("oic-serve: expected 'end' sentinel, got '" + line + "'");
  }
}

void append_double(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, " %.17g", v);
  out += buf;
}

void append_vector(std::string& out, const char* tag, const linalg::Vector& v) {
  OIC_REQUIRE(v.size() >= 1 && v.size() <= kMaxDim,
              std::string("oic-serve: vector dimension out of range writing ") + tag);
  out += ' ';
  out += tag;
  out += ' ';
  out += std::to_string(v.size());
  for (const double x : v) append_double(out, x);
}

/// Writers enforce the same single-token rule readers rely on, so a spec
/// with embedded whitespace fails at save time instead of corrupting the
/// line grammar.
void require_token(const std::string& s, const char* what) {
  OIC_REQUIRE(!s.empty() && s.size() <= kMaxTokenLength &&
                  s.find_first_of(" \t\r\n") == std::string::npos,
              std::string("oic-serve: ") + what +
                  " must be a non-empty single token without whitespace");
}

}  // namespace

bool read_request_batch(std::istream& is, std::vector<Request>& out) {
  out.clear();
  bool eof = false;
  std::string header;
  const std::uint64_t n = read_header(is, header, "requests", eof);
  if (eof) return false;
  out.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    std::istringstream iss(next_line(is, "request line"));
    std::string verb;
    if (!(iss >> verb)) {
      throw NumericalError("oic-serve: empty request line");
    }
    Request r;
    if (verb == "open") {
      r.kind = Request::Kind::kOpen;
      r.ref = parse_u64(iss, "request ref");
      expect_keyword(iss, "session");
      r.session = parse_u64(iss, "session id");
      expect_keyword(iss, "plant");
      r.plant = parse_token(iss, "plant id");
      expect_keyword(iss, "policy");
      r.policy = parse_token(iss, "policy spec");
      expect_line_end(iss, "open request");
    } else if (verb == "decide") {
      r.kind = Request::Kind::kDecide;
      r.ref = parse_u64(iss, "request ref");
      expect_keyword(iss, "session");
      r.session = parse_u64(iss, "session id");
      // Peek the next tag: `u` only on subsequent decides.
      std::string tag;
      if (!(iss >> tag)) {
        throw NumericalError("oic-serve: decide request missing state vector");
      }
      if (tag == "u") {
        parse_vector_body(iss, r.u);
        r.has_u = true;
        parse_vector(iss, "x", r.x);
      } else if (tag == "x") {
        parse_vector_body(iss, r.x);
      } else {
        throw NumericalError("oic-serve: decide request expected 'u' or 'x', got '" +
                             tag + "'");
      }
      expect_line_end(iss, "decide request");
    } else if (verb == "close") {
      r.kind = Request::Kind::kClose;
      r.ref = parse_u64(iss, "request ref");
      expect_keyword(iss, "session");
      r.session = parse_u64(iss, "session id");
      expect_line_end(iss, "close request");
    } else if (verb == "reload") {
      r.kind = Request::Kind::kReload;
      r.ref = parse_u64(iss, "request ref");
      expect_line_end(iss, "reload request");
    } else {
      throw NumericalError("oic-serve: unknown request verb '" + verb + "'");
    }
    out.push_back(std::move(r));
  }
  read_end_sentinel(is);
  return true;
}

void write_request_batch(const std::vector<Request>& batch, std::ostream& os) {
  OIC_REQUIRE(batch.size() <= kMaxBatchRequests,
              "oic-serve: batch exceeds the request cap");
  std::string out;
  out += kMagic;
  out += "\nrequests ";
  out += std::to_string(batch.size());
  out += '\n';
  for (const Request& r : batch) {
    switch (r.kind) {
      case Request::Kind::kOpen:
        require_token(r.plant, "plant id");
        require_token(r.policy, "policy spec");
        out += "open " + std::to_string(r.ref) + " session " +
               std::to_string(r.session) + " plant " + r.plant + " policy " +
               r.policy;
        break;
      case Request::Kind::kDecide:
        out += "decide " + std::to_string(r.ref) + " session " +
               std::to_string(r.session);
        if (r.has_u) append_vector(out, "u", r.u);
        append_vector(out, "x", r.x);
        break;
      case Request::Kind::kClose:
        out += "close " + std::to_string(r.ref) + " session " +
               std::to_string(r.session);
        break;
      case Request::Kind::kReload:
        out += "reload " + std::to_string(r.ref);
        break;
    }
    out += '\n';
  }
  out += "end\n";
  os << out;
  OIC_REQUIRE(os.good(), "oic-serve: request write failed");
}

bool read_response_batch(std::istream& is, std::vector<Response>& out) {
  out.clear();
  bool eof = false;
  std::string header;
  const std::uint64_t n = read_header(is, header, "responses", eof);
  if (eof) return false;
  out.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    std::istringstream iss(next_line(is, "response line"));
    std::string verb;
    if (!(iss >> verb)) {
      throw NumericalError("oic-serve: empty response line");
    }
    Response r;
    if (verb == "opened") {
      r.kind = Response::Kind::kOpened;
      r.ref = parse_u64(iss, "response ref");
      expect_keyword(iss, "session");
      r.session = parse_u64(iss, "session id");
      expect_line_end(iss, "opened response");
    } else if (verb == "decision") {
      r.kind = Response::Kind::kDecision;
      r.ref = parse_u64(iss, "response ref");
      expect_keyword(iss, "session");
      r.session = parse_u64(iss, "session id");
      expect_keyword(iss, "z");
      const std::uint64_t z = parse_u64(iss, "decision z");
      expect_keyword(iss, "forced");
      const std::uint64_t forced = parse_u64(iss, "decision forced");
      if (z > 1 || forced > 1) {
        throw NumericalError("oic-serve: decision flags must be 0 or 1");
      }
      r.z = static_cast<int>(z);
      r.forced = forced == 1;
      expect_line_end(iss, "decision response");
    } else if (verb == "closed") {
      r.kind = Response::Kind::kClosed;
      r.ref = parse_u64(iss, "response ref");
      expect_keyword(iss, "session");
      r.session = parse_u64(iss, "session id");
      expect_line_end(iss, "closed response");
    } else if (verb == "reloaded") {
      r.kind = Response::Kind::kReloaded;
      r.ref = parse_u64(iss, "response ref");
      expect_keyword(iss, "certs");
      r.certs = parse_u64(iss, "reload cert count");
      expect_keyword(iss, "agents");
      r.agents = parse_u64(iss, "reload agent count");
      expect_line_end(iss, "reloaded response");
    } else if (verb == "error") {
      r.kind = Response::Kind::kError;
      r.ref = parse_u64(iss, "response ref");
      expect_keyword(iss, "message");
      std::getline(iss, r.error);
      if (!r.error.empty() && r.error.front() == ' ') r.error.erase(0, 1);
    } else {
      throw NumericalError("oic-serve: unknown response verb '" + verb + "'");
    }
    out.push_back(std::move(r));
  }
  read_end_sentinel(is);
  return true;
}

void write_response_batch(const std::vector<Response>& batch, std::ostream& os) {
  std::string out;
  out += kMagic;
  out += "\nresponses ";
  out += std::to_string(batch.size());
  out += '\n';
  for (const Response& r : batch) {
    switch (r.kind) {
      case Response::Kind::kOpened:
        out += "opened " + std::to_string(r.ref) + " session " +
               std::to_string(r.session);
        break;
      case Response::Kind::kDecision:
        out += "decision " + std::to_string(r.ref) + " session " +
               std::to_string(r.session) + " z " + std::to_string(r.z) +
               " forced " + (r.forced ? std::string("1") : std::string("0"));
        break;
      case Response::Kind::kClosed:
        out += "closed " + std::to_string(r.ref) + " session " +
               std::to_string(r.session);
        break;
      case Response::Kind::kReloaded:
        out += "reloaded " + std::to_string(r.ref) + " certs " +
               std::to_string(r.certs) + " agents " + std::to_string(r.agents);
        break;
      case Response::Kind::kError: {
        // The grammar is line-framed: a diagnostic with embedded newlines
        // must not be able to forge extra response lines.
        std::string text = r.error;
        for (char& c : text) {
          if (c == '\n' || c == '\r') c = ' ';
        }
        out += "error " + std::to_string(r.ref) + " message " + text;
        break;
      }
    }
    out += '\n';
  }
  out += "end\n";
  os << out;
  OIC_REQUIRE(os.good(), "oic-serve: response write failed");
}

}  // namespace oic::serve
