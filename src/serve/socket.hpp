#pragma once
/// \file socket.hpp
/// TCP front end for the monitor server: a loopback listener that speaks
/// the exact `oic-serve v1` line grammar of api.hpp over sockets, and the
/// matching client.
///
/// Framing on the wire is identical to the stdio mode -- each request
/// batch document is answered by one response batch document, in
/// submission order per connection -- so a capture replayed over stdio
/// and a live socket run produce byte-identical response streams.  Every
/// accepted connection gets a reader thread (parses request batches,
/// submits each as one Server envelope) and a writer thread (awaits each
/// batch's responses in submission order and writes them back), so a
/// client may pipeline many batches without waiting; responses then
/// correlate by `ref`.
///
/// A malformed request document poisons only its own connection: the
/// reader stops, every batch already submitted is still answered, and the
/// socket is closed.  The server and the other connections keep running
/// (unlike the stdio front end, where a malformed stream is fatal --
/// there the stream IS the one client).
///
/// The listener binds 127.0.0.1 only: the wire protocol is plain text
/// with no authentication, so exposure stays host-local by construction.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "serve/api.hpp"

namespace oic::serve {

class Server;

/// Thread-per-connection acceptor feeding a Server's envelope inbox.
class SocketListener {
 public:
  /// Bind 127.0.0.1:`port` (0 = ephemeral; see port()) and start
  /// accepting.  Throws PreconditionError when the bind fails.  The
  /// server must outlive the listener.
  SocketListener(Server& server, std::uint16_t port);
  ~SocketListener();  ///< implies stop()

  SocketListener(const SocketListener&) = delete;
  SocketListener& operator=(const SocketListener&) = delete;

  /// The bound port (the actual one when constructed with port 0).
  std::uint16_t port() const;

  /// Stop accepting, shut down every live connection socket, and join
  /// all reader/writer threads.  Idempotent.  Does NOT shut down the
  /// Server itself.
  void stop();

  /// Connections accepted over the listener's lifetime.
  std::uint64_t connections_accepted() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Client side of the socket transport.  submit() serializes one request
/// batch onto the wire; responses stream back per batch document, in
/// submission order, through a background reader into await()/await_any().
/// Not internally synchronized for concurrent submits: one owner thread
/// submits, the same or another consumes.
class SocketClient {
 public:
  /// Connect to `host`:`port`.  Throws PreconditionError on failure.
  SocketClient(const std::string& host, std::uint16_t port);
  ~SocketClient();

  SocketClient(const SocketClient&) = delete;
  SocketClient& operator=(const SocketClient&) = delete;

  /// Serialize + flush one request batch (one `oic-serve v1` document).
  /// The submit->enqueue cost a caller measures around this call is the
  /// full client-side wire cost: formatting plus the socket write.
  void submit(const std::vector<Request>& batch);

  /// Block until at least one response is pending and move everything
  /// pending into `out`.  False when the server closed the connection and
  /// the stream is drained.
  bool await_any(std::vector<Response>& out);

  /// Block until exactly `n` responses arrived and return them in wire
  /// order.  Throws NumericalError when the connection closes first.
  std::vector<Response> await(std::size_t n);

  /// Half-close the sending side: the server sees EOF, answers whatever
  /// is in flight, and closes.  await_any() then drains to false.
  void close_send();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace oic::serve
