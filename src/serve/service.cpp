#include "serve/service.hpp"

#include <cstring>
#include <utility>

#include "common/error.hpp"
#include "eval/harness.hpp"
#include "linalg/kernels.hpp"
#include "rl/serialize.hpp"

namespace oic::serve {

namespace {

/// Exact bitwise parameter equality of two networks -- the agent
/// hot-reload guard (a rewritten file with identical parameters must not
/// count as a swap).
bool mlp_bit_equal(const rl::Mlp& a, const rl::Mlp& b) {
  if (a.sizes() != b.sizes()) return false;
  for (std::size_t l = 0; l < a.num_layers(); ++l) {
    const auto& wa = a.weight(l);
    const auto& wb = b.weight(l);
    if (std::memcmp(wa.data(), wb.data(), wa.rows() * wa.cols() * sizeof(double)) !=
        0) {
      return false;
    }
    const auto& ba = a.bias(l).data();
    const auto& bb = b.bias(l).data();
    if (std::memcmp(ba.data(), bb.data(), ba.size() * sizeof(double)) != 0) {
      return false;
    }
  }
  return true;
}

/// One DQN state row, replicating core::build_drl_state_into exactly
/// (front-padded zeros for a young history) plus the in-place scale --
/// pure copies and elementwise multiplies, so each row is bit-identical
/// to the per-session state builder.
void build_state_row(double* row, std::size_t state_dim, const linalg::Vector& x,
                     const core::WHistory& hist, std::size_t r, std::size_t w_dim,
                     const linalg::Vector& scale) {
  for (std::size_t i = 0; i < state_dim; ++i) row[i] = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) row[i] = x[i];
  const std::size_t have = hist.size() < r ? hist.size() : r;
  const std::size_t pad = r - have;
  for (std::size_t k = 0; k < have; ++k) {
    const linalg::Vector& w = hist[hist.size() - have + k];
    for (std::size_t i = 0; i < w_dim; ++i) {
      row[x.size() + (pad + k) * w_dim + i] = w[i];
    }
  }
  if (!scale.empty()) {
    for (std::size_t i = 0; i < state_dim; ++i) row[i] *= scale[i];
  }
}

/// Monitor tolerances -- the exact constants of the per-session framework
/// (IntermittentController::decide_at): XI with 1e-6 slack, X' with the
/// HPolytope::contains default of 1e-9.
constexpr double kXiTol = 1e-6;
constexpr double kXPrimeTol = 1e-9;

}  // namespace

struct Service::PlantEntry {
  cert::PlantModel model;
  cert::PlantCertificate cert;
};

struct Service::Group {
  std::string plant_id;
  eval::PolicySpec spec;
  PlantEntry* plant = nullptr;

  // DRL groups: the shared frozen network plus its inference wiring.
  std::shared_ptr<const rl::Mlp> net;
  linalg::Vector state_scale;
  std::size_t memory = 0;
  std::size_t w_dim = 0;
  std::size_t state_dim = 0;

  // Per-tick SoA scratch, grown on demand and reused allocation-free.
  linalg::Matrix xbatch;           ///< pending states, one per row
  std::vector<double> xi_viol;     ///< batched XI violations
  std::vector<double> xp_viol;     ///< batched X' violations
  linalg::Matrix sbatch;           ///< DQN state rows (inside-X' rows only)
  rl::BatchWorkspace bws;          ///< forward_batch_into scratch

  // Burst groups: deepest certifiable rung, min(spec.count, ladder size),
  // recomputed on certificate hot-swap (the ladder may change depth).
  std::size_t max_burst = 0;

  struct PendingDecide {
    std::uint64_t session = 0;
    std::size_t out_index = 0;
    const Request* req = nullptr;
  };
  std::vector<PendingDecide> pending;

  // Per-tick side-effect buffer: run_group may execute on a tick-pool
  // worker concurrently with other groups, so counter bumps and
  // XI-violation session closures are staged here and merged into the
  // shared state in deterministic group order after the join.
  ServiceCounters tick_counters;
  std::vector<std::uint64_t> tick_closed;
};

Service::Service(const eval::ScenarioRegistry& registry, ServiceConfig config)
    : registry_(registry), config_(std::move(config)) {
  if (!config_.cert_dir.empty()) {
    store_ = std::make_unique<cert::Store>(config_.cert_dir);
    provider_ = store_->provider();
  }
  if (config_.workers != 1) {
    pool_ = std::make_unique<ThreadPool>(config_.workers);
  }
  if (config_.tick_workers != 1) {
    tick_pool_ = std::make_unique<ThreadPool>(config_.tick_workers);
  }
}

Service::~Service() = default;

Service::PlantEntry* Service::resolve_plant(const std::string& plant_id,
                                            std::string& error) {
  auto it = plants_.find(plant_id);
  if (it != plants_.end()) return it->second.get();
  try {
    auto entry = std::make_unique<PlantEntry>(
        PlantEntry{registry_.make_model(plant_id), cert::PlantCertificate{}});
    entry->cert = cert::resolve(entry->model, provider_);
    PlantEntry* raw = entry.get();
    plants_.emplace(plant_id, std::move(entry));
    return raw;
  } catch (const Error& e) {
    error = e.what();
    return nullptr;
  }
}

std::size_t Service::resolve_group(const std::string& plant_id,
                                   const std::string& policy, std::string& error) {
  const std::string key = plant_id + '\n' + policy;
  auto it = group_index_.find(key);
  if (it != group_index_.end()) return it->second;

  eval::PolicySpec spec;
  try {
    spec = eval::parse_policy_spec(policy);
  } catch (const Error& e) {
    error = e.what();
    return kNoGroup;
  }
  PlantEntry* plant = resolve_plant(plant_id, error);
  if (plant == nullptr) return kNoGroup;

  auto group = std::make_unique<Group>();
  group->plant_id = plant_id;
  group->spec = spec;
  group->plant = plant;
  if (spec.kind == eval::PolicySpec::Kind::kBurst) {
    // Burst serving needs the certificate's k-step skip ladder -- the
    // same precondition the per-session IntermittentController enforces.
    if (plant->cert.ladder.empty()) {
      error = "policy '" + policy + "': plant '" + plant_id +
              "' has no certified skip ladder (burst mode needs one)";
      return kNoGroup;
    }
    group->max_burst = std::min(spec.count, plant->cert.ladder.size());
  }
  if (spec.kind == eval::PolicySpec::Kind::kDrl) {
    try {
      rl::AgentSnapshot snap = rl::load_agent_file(spec.path);
      const std::size_t nx = plant->model.sys.nx();
      const std::size_t state_dim = snap.net.sizes().front();
      if (!snap.plant.empty() && snap.plant != plant_id) {
        error = "policy '" + policy + "': agent was trained on plant '" + snap.plant +
                "', not '" + plant_id + "'";
        return kNoGroup;
      }
      if (!snap.state_scale.empty() && snap.state_scale.size() != state_dim) {
        error = "policy '" + policy + "': scale/network dimension mismatch";
        return kNoGroup;
      }
      const std::size_t w_dim = state_dim / (snap.memory + 1);
      if (w_dim != nx || state_dim != nx + snap.memory * w_dim) {
        error = "policy '" + policy + "': agent dimensions do not fit plant '" +
                plant_id + "'";
        return kNoGroup;
      }
      group->memory = snap.memory;
      group->w_dim = w_dim;
      group->state_dim = state_dim;
      group->state_scale = std::move(snap.state_scale);
      group->net = std::make_shared<rl::Mlp>(std::move(snap.net));
    } catch (const Error& e) {
      error = "policy '" + policy + "': " + std::string(e.what());
      return kNoGroup;
    }
  }
  groups_.push_back(std::move(group));
  group_index_.emplace(key, groups_.size() - 1);
  return groups_.size() - 1;
}

void Service::reload(std::uint64_t& certs_swapped, std::uint64_t& agents_swapped) {
  if (store_) {
    for (auto& [id, entry] : plants_) {
      auto fresh = store_->load_if_fresh(entry->model);
      if (fresh && !cert::bit_equal(*fresh, entry->cert)) {
        entry->cert = std::move(*fresh);
        ++certs_swapped;
      }
    }
    // A swapped certificate may carry a shallower (or deeper) ladder:
    // re-clamp every burst group's rung ceiling so countdown starts never
    // index past the live ladder.  Running countdowns stay valid -- they
    // were certified against the rung that was live when they started.
    for (auto& group : groups_) {
      if (group->spec.kind != eval::PolicySpec::Kind::kBurst) continue;
      group->max_burst =
          std::min(group->spec.count, group->plant->cert.ladder.size());
    }
  }
  for (auto& group : groups_) {
    if (group->spec.kind != eval::PolicySpec::Kind::kDrl) continue;
    try {
      rl::AgentSnapshot snap = rl::load_agent_file(group->spec.path);
      const std::size_t state_dim = snap.net.sizes().front();
      const std::size_t nx = group->plant->model.sys.nx();
      const std::size_t w_dim = state_dim / (snap.memory + 1);
      const bool fits =
          (snap.plant.empty() || snap.plant == group->plant_id) &&
          (snap.state_scale.empty() || snap.state_scale.size() == state_dim) &&
          w_dim == nx && state_dim == nx + snap.memory * w_dim;
      if (!fits) continue;  // keep the old agent; sessions keep running
      const bool changed = snap.memory != group->memory ||
                           snap.state_scale.data() != group->state_scale.data() ||
                           !mlp_bit_equal(snap.net, *group->net);
      if (!changed) continue;
      group->memory = snap.memory;
      group->w_dim = w_dim;
      group->state_dim = state_dim;
      group->state_scale = std::move(snap.state_scale);
      group->net = std::make_shared<rl::Mlp>(std::move(snap.net));
      ++agents_swapped;
    } catch (const Error&) {
      // Unreadable / malformed rewrite: keep serving the loaded agent.
    }
  }
}

void Service::serve(const std::vector<Request>& in, std::vector<Response>& out) {
  out.assign(in.size(), Response{});
  ++tick_serial_;

  auto fail = [&](Response& res, std::string msg) {
    res.kind = Response::Kind::kError;
    res.error = std::move(msg);
    ++counters_.errors;
  };

  // Phase 1: session-table mutations and decide validation, request order.
  for (std::size_t i = 0; i < in.size(); ++i) {
    const Request& r = in[i];
    Response& res = out[i];
    res.ref = r.ref;
    res.session = r.session;
    switch (r.kind) {
      case Request::Kind::kOpen: {
        if (sessions_.count(r.session) != 0) {
          fail(res, "session " + std::to_string(r.session) + " is already open");
          break;
        }
        if (sessions_.size() >= config_.max_sessions) {
          fail(res, "session table is full (" +
                        std::to_string(config_.max_sessions) + " sessions)");
          break;
        }
        std::string error;
        const std::size_t gidx = resolve_group(r.plant, r.policy, error);
        if (gidx == kNoGroup) {
          fail(res, std::move(error));
          break;
        }
        Session session;
        session.group = gidx;
        session.whist.set_capacity(eval::kEpisodeWMemory);
        if (groups_[gidx]->spec.kind == eval::PolicySpec::Kind::kPeriodic) {
          session.policy =
              std::make_unique<core::PeriodicPolicy>(groups_[gidx]->spec.count);
        }
        sessions_.emplace(r.session, std::move(session));
        res.kind = Response::Kind::kOpened;
        break;
      }
      case Request::Kind::kClose: {
        auto it = sessions_.find(r.session);
        if (it == sessions_.end()) {
          fail(res, "unknown session " + std::to_string(r.session));
          break;
        }
        // A decide queued earlier in this batch must not run against the
        // erased session (or against a fresh one reopened under the same id
        // later in the batch): fail it and drop it from its group.
        Group& group = *groups_[it->second.group];
        for (auto pit = group.pending.begin(); pit != group.pending.end(); ++pit) {
          if (pit->session == r.session) {
            fail(out[pit->out_index],
                 "session " + std::to_string(r.session) +
                     " was closed later in the same batch before its decision ran");
            group.pending.erase(pit);
            break;  // phase-1 dup check guarantees at most one pending entry
          }
        }
        sessions_.erase(it);
        res.kind = Response::Kind::kClosed;
        break;
      }
      case Request::Kind::kReload: {
        ++counters_.reloads;
        std::uint64_t certs = 0, agents = 0;
        reload(certs, agents);
        counters_.cert_swaps += certs;
        counters_.agent_swaps += agents;
        res.kind = Response::Kind::kReloaded;
        res.certs = certs;
        res.agents = agents;
        break;
      }
      case Request::Kind::kDecide: {
        auto it = sessions_.find(r.session);
        if (it == sessions_.end()) {
          fail(res, "unknown session " + std::to_string(r.session));
          break;
        }
        Session& session = it->second;
        Group& group = *groups_[session.group];
        const control::AffineLTI& sys = group.plant->model.sys;
        if (r.x.size() != sys.nx()) {
          fail(res, "state dimension mismatch (expected " +
                        std::to_string(sys.nx()) + ", got " +
                        std::to_string(r.x.size()) + ")");
          break;
        }
        if (session.last_decide_tick == tick_serial_) {
          fail(res, "session " + std::to_string(r.session) +
                        " already has a pending decision in this batch");
          break;
        }
        if (!session.seeded) {
          if (r.has_u) {
            fail(res, "first decide of a session must not carry u");
            break;
          }
          session.seeded = true;
          session.x_prev = r.x;
        } else {
          if (!r.has_u) {
            fail(res, "decide must carry the previously actuated input u");
            break;
          }
          if (r.u.size() != sys.nu()) {
            fail(res, "input dimension mismatch (expected " +
                          std::to_string(sys.nu()) + ", got " +
                          std::to_string(r.u.size()) + ")");
            break;
          }
          // Reconstruct the realized disturbance exactly like
          // IntermittentController::record_transition:
          //   E w = x - A x_prev - B u - c, accumulation order preserved.
          session.ew_scratch = r.x;
          double* ew = session.ew_scratch.data().data();
          linalg::gemv_sub(sys.a(), session.x_prev.data().data(), ew);
          linalg::gemv_sub(sys.b(), r.u.data().data(), ew);
          for (std::size_t k = 0; k < sys.nx(); ++k) ew[k] -= sys.c()[k];
          session.whist.push(session.ew_scratch);
          session.x_prev = r.x;
        }
        session.last_decide_tick = tick_serial_;
        if (session.burst_remaining > 0) {
          // Inside a certified burst: the X'_k membership established when
          // the burst started guarantees this period's skip keeps the
          // state in XI for every disturbance, so neither the monitor nor
          // the policy runs -- the decide bypasses the group batch
          // entirely, exactly the burst branch of
          // IntermittentController::decide_at (no XI precondition check).
          --session.burst_remaining;
          res.kind = Response::Kind::kDecision;
          res.z = 0;
          res.forced = false;
          ++counters_.decisions;
          ++counters_.skipped;
          ++counters_.burst_skips;
          break;
        }
        group.pending.push_back({r.session, i, &r});
        break;
      }
    }
  }

  // Phase 2: one fused batch per group.  Groups are data-disjoint (own
  // SoA workspaces, disjoint response slots, disjoint session sets), so
  // independent groups shard across the tick pool; each group's side
  // effects are buffered and merged below in group creation order, which
  // makes the whole pass bit-identical for any tick worker count.
  std::vector<Group*> active;
  for (auto& group : groups_) {
    if (!group->pending.empty()) active.push_back(group.get());
  }
  try {
    if (tick_pool_ && active.size() > 1) {
      for (Group* group : active) {
        // The intra-group membership pool is a single shared ThreadPool
        // whose wait_idle() is global; concurrent run_groups must not race
        // on it, so sharded groups chunk their membership pass inline.
        tick_pool_->submit([this, group, &out] { run_group(*group, out, false); });
      }
      tick_pool_->wait_idle();
    } else {
      for (Group* group : active) run_group(*group, out, true);
    }
  } catch (...) {
    // A group that threw (OOM, ...) leaves the tick unanswered -- the
    // Server fails the whole batch.  Pending rows point into `in`, so
    // they must never survive into the next tick.
    for (Group* group : active) {
      group->pending.clear();
      group->tick_closed.clear();
      group->tick_counters = ServiceCounters{};
    }
    throw;
  }
  for (Group* group : active) {
    const ServiceCounters& tc = group->tick_counters;
    counters_.decisions += tc.decisions;
    counters_.skipped += tc.skipped;
    counters_.forced += tc.forced;
    counters_.errors += tc.errors;
    counters_.invariant_errors += tc.invariant_errors;
    group->tick_counters = ServiceCounters{};
    for (std::uint64_t sid : group->tick_closed) sessions_.erase(sid);
    group->tick_closed.clear();
    group->pending.clear();
  }
}

void Service::run_group(Group& group, std::vector<Response>& out, bool allow_pool) {
  const std::size_t n = group.pending.size();
  const std::size_t nx = group.plant->model.sys.nx();

  if (group.xbatch.rows() < n || group.xbatch.cols() != nx) {
    group.xbatch = linalg::Matrix(n + n / 2 + 1, nx);
  }
  for (std::size_t r = 0; r < n; ++r) {
    const linalg::Vector& x = group.pending[r].req->x;
    double* row = group.xbatch.row_data(r);
    for (std::size_t j = 0; j < nx; ++j) row[j] = x[j];
  }
  group.xi_viol.assign(n, 0.0);
  group.xp_viol.assign(n, 0.0);

  // Batched monitor: both membership checks in one SoA pass each,
  // chunked over the pool (rows are independent, so any chunking is
  // bit-identical to the scalar loop).
  const poly::HPolytope& xi = group.plant->cert.sets.xi;
  const poly::HPolytope& xp = group.plant->cert.sets.x_prime;
  auto membership = [&](std::size_t begin, std::size_t end) {
    const std::size_t count = end - begin;
    if (count == 0) return;
    const double* rows = group.xbatch.row_data(begin);
    linalg::batch_max_violation(xi.a(), xi.b().data().data(), rows, count, nx,
                                group.xi_viol.data() + begin);
    linalg::batch_max_violation(xp.a(), xp.b().data().data(), rows, count, nx,
                                group.xp_viol.data() + begin);
  };
  if (allow_pool && pool_ && n >= 256) {
    const std::size_t chunks = pool_->size();
    const std::size_t base = n / chunks, rem = n % chunks;
    std::size_t begin = 0;
    for (std::size_t c = 0; c < chunks; ++c) {
      const std::size_t len = base + (c < rem ? 1 : 0);
      const std::size_t end = begin + len;
      pool_->submit([&membership, begin, end] { membership(begin, end); });
      begin = end;
    }
    pool_->wait_idle();
  } else {
    membership(0, n);
  }

  // DRL groups: one fused forward_batch_into over the inside-X' rows.
  std::vector<int> drl_z;
  std::vector<std::size_t> drl_row;  // pending index per sbatch row
  if (group.spec.kind == eval::PolicySpec::Kind::kDrl) {
    drl_row.reserve(n);
    for (std::size_t r = 0; r < n; ++r) {
      if (group.xi_viol[r] <= kXiTol && group.xp_viol[r] <= kXPrimeTol) {
        drl_row.push_back(r);
      }
    }
    const std::size_t m = drl_row.size();
    if (m > 0) {
      if (group.sbatch.rows() < m || group.sbatch.cols() != group.state_dim) {
        group.sbatch = linalg::Matrix(m + m / 2 + 1, group.state_dim);
      }
      for (std::size_t s = 0; s < m; ++s) {
        const auto& p = group.pending[drl_row[s]];
        const Session& session = sessions_.at(p.session);
        build_state_row(group.sbatch.row_data(s), group.state_dim, p.req->x,
                        session.whist, group.memory, group.w_dim,
                        group.state_scale);
      }
      // forward_batch_into reads exactly in.rows() rows; hand it a view
      // with m rows.  The scratch matrix may be oversized, so build a
      // tight alias only when needed.
      const linalg::Matrix* input = &group.sbatch;
      linalg::Matrix tight;
      if (group.sbatch.rows() != m) {
        tight = linalg::Matrix(m, group.state_dim);
        std::memcpy(tight.data(), group.sbatch.data(),
                    m * group.state_dim * sizeof(double));
        input = &tight;
      }
      const linalg::Matrix& q = group.net->forward_batch_into(*input, group.bws);
      drl_z.assign(m, 1);
      const std::size_t out_dim = q.cols();
      for (std::size_t s = 0; s < m; ++s) {
        const double* row = q.row_data(s);
        std::size_t best = 0;
        for (std::size_t a = 1; a < out_dim; ++a) {
          if (row[a] > row[best]) best = a;
        }
        drl_z[s] = best == 0 ? 0 : 1;
      }
    }
  }

  std::size_t drl_cursor = 0;
  for (std::size_t r = 0; r < n; ++r) {
    const auto& p = group.pending[r];
    Response& res = out[p.out_index];
    // Algorithm 1 line 2 precondition, strict mode: a state outside XI
    // means the certificate's model assumptions were violated; mirror the
    // per-session framework's abort by closing the session.
    if (group.xi_viol[r] > kXiTol) {
      res.kind = Response::Kind::kError;
      res.error = "session " + std::to_string(p.session) +
                  ": state left the robust invariant set XI (Algorithm 1 "
                  "precondition); session closed";
      ++group.tick_counters.errors;
      ++group.tick_counters.invariant_errors;
      group.tick_closed.push_back(p.session);
      if (group.spec.kind == eval::PolicySpec::Kind::kDrl &&
          drl_cursor < drl_row.size() && drl_row[drl_cursor] == r) {
        ++drl_cursor;  // unreachable (outside XI is never inside X'), kept safe
      }
      continue;
    }
    const bool inside = group.xp_viol[r] <= kXPrimeTol;
    int z = 1;
    bool forced = false;
    switch (group.spec.kind) {
      case eval::PolicySpec::Kind::kAlwaysRun:
        z = 1;
        forced = !inside;
        break;
      case eval::PolicySpec::Kind::kBangBang:
        z = inside ? 0 : 1;
        forced = !inside;
        break;
      case eval::PolicySpec::Kind::kPeriodic: {
        if (inside) {
          Session& session = sessions_.at(p.session);
          z = session.policy->decide(p.req->x, session.whist) == 0 ? 0 : 1;
        } else {
          z = 1;
          forced = true;
        }
        break;
      }
      case eval::PolicySpec::Kind::kDrl: {
        if (inside) {
          z = drl_z[drl_cursor];
          ++drl_cursor;
        } else {
          z = 1;
          forced = true;
        }
        break;
      }
      case eval::PolicySpec::Kind::kBurst: {
        // BurstSkipPolicy always requests the skip, so the monitor alone
        // decides: inside X' skip, outside force.  Every granted skip
        // certifies the deepest containing ladder rung (the exact search
        // of IntermittentController::decide_at -- same order, same
        // HPolytope::contains tolerance), arming the session's countdown
        // so the next k-1 decides bypass the batch in phase 1.
        z = inside ? 0 : 1;
        forced = !inside;
        if (z == 0 && group.max_burst >= 2) {
          Session& session = sessions_.at(p.session);
          const auto& ladder = group.plant->cert.ladder;
          for (std::size_t k = group.max_burst; k >= 2; --k) {
            if (ladder[k - 1].contains(p.req->x)) {
              session.burst_remaining = k - 1;
              break;
            }
          }
        }
        break;
      }
    }
    res.kind = Response::Kind::kDecision;
    res.z = z;
    res.forced = forced;
    ++group.tick_counters.decisions;
    if (z == 0) ++group.tick_counters.skipped;
    if (forced) ++group.tick_counters.forced;
  }
}

}  // namespace oic::serve
