#include "serve/server.hpp"

#include <utility>

#include "common/error.hpp"

namespace oic::serve {

void Connection::submit(std::vector<Request> batch) {
  OIC_REQUIRE(!server_->down_.load(), "oic-serve: server is shut down");
  server_->inbox_.push(Server::Envelope{shared_from_this(), std::move(batch)});
}

bool Connection::await_any(std::vector<Response>& out) {
  return responses_.drain(out);
}

std::vector<Response> Connection::await(std::size_t n) {
  std::vector<Response> out;
  out.reserve(n);
  if (!responses_.pop_n(n, out)) {
    throw NumericalError("oic-serve: server shut down before responding");
  }
  return out;
}

Server::Server(const eval::ScenarioRegistry& registry, ServiceConfig config)
    : service_(registry, std::move(config)) {
  worker_ = std::thread([this] { run(); });
}

Server::~Server() { shutdown(); }

std::shared_ptr<Connection> Server::connect() {
  auto conn = std::shared_ptr<Connection>(new Connection(this));
  std::lock_guard<std::mutex> lock(connections_mu_);
  // Checked under connections_mu_: shutdown() closes the response channels
  // of every registered connection while holding this lock, so a connection
  // registered here is guaranteed to be seen by shutdown() (or the server
  // is already down and we refuse).
  OIC_REQUIRE(!down_.load(), "oic-serve: server is shut down");
  connections_.push_back(conn);
  return conn;
}

void Server::shutdown() {
  bool expected = false;
  if (!down_.compare_exchange_strong(expected, true)) return;
  inbox_.close();
  if (worker_.joinable()) worker_.join();
  std::lock_guard<std::mutex> lock(connections_mu_);
  for (auto& weak : connections_) {
    if (auto conn = weak.lock()) conn->responses_.close();
  }
}

void Server::run() {
  std::vector<Envelope> envelopes;
  std::vector<Request> all;
  std::vector<Response> responses;
  // Bounded condition-variable wait: the tick thread sleeps while the
  // inbox is empty (no core burned polling) but wakes at a bounded
  // cadence, so shutdown and any future idle housekeeping are never more
  // than one period away even if a notification is missed.
  constexpr std::chrono::milliseconds kIdleWait{50};
  for (;;) {
    const DrainStatus status = inbox_.drain_for(envelopes, kIdleWait);
    if (status == DrainStatus::kClosed) break;
    if (status == DrainStatus::kTimeout) continue;
    all.clear();
    for (const Envelope& env : envelopes) {
      all.insert(all.end(), env.batch.begin(), env.batch.end());
    }
    // serve() answers malformed requests individually; this is the backstop
    // for anything unexpected -- fail the whole tick's requests rather than
    // letting an exception escape the tick thread (std::terminate) and
    // wedging every waiting client.
    auto fail_tick = [&](const char* what) {
      responses.assign(all.size(), Response{});
      for (std::size_t i = 0; i < all.size(); ++i) {
        responses[i].kind = Response::Kind::kError;
        responses[i].ref = all[i].ref;
        responses[i].session = all[i].session;
        responses[i].error = what;
      }
    };
    try {
      service_.serve(all, responses);
    } catch (const std::exception& e) {
      fail_tick(e.what());
    } catch (...) {
      fail_tick("oic-serve: unknown error while serving tick");
    }
    std::size_t cursor = 0;
    for (Envelope& env : envelopes) {
      std::vector<Response> slice(responses.begin() + static_cast<long>(cursor),
                                  responses.begin() +
                                      static_cast<long>(cursor + env.batch.size()));
      cursor += env.batch.size();
      env.conn->responses_.push_all(std::move(slice));
    }
    ticks_.fetch_add(1);
    envelopes.clear();
  }
}

}  // namespace oic::serve
