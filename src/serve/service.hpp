#pragma once
/// \file service.hpp
/// The multi-session monitor core: a session table keyed by
/// (plant, certificate, policy) whose per-tick decision pass is batched.
///
/// Each serve() call is one tick.  Phase 1 walks the request batch in
/// order: opens/closes mutate the session table, reloads re-resolve
/// certificates and agents through the cert::Store hash guards (sessions
/// keep their state across a swap), and decides are validated (residual
/// reconstruction exactly mirrors IntermittentController::record_transition)
/// and queued on their session's group.  Phase 2 runs each group's pending
/// decisions as one fused SoA batch: the XI / X' membership checks go
/// through linalg::batch_max_violation (bit-identical per row to
/// HPolytope::violation, chunked over the service thread pool) and a DRL
/// group's policy consultations run as a single Mlp::forward_batch_into
/// pass.  With tick_workers > 1 the independent group batches of one tick
/// run concurrently (see ServiceConfig::tick_workers for why the result
/// stays bit-identical).  burst:<k> sessions inside their certified skip
/// countdown are answered straight from a per-session counter in phase 1
/// -- no membership row, no group batch -- exactly the per-session burst
/// branch.  The resulting z/forced stream is bit-identical to driving a
/// per-session IntermittentController with the same states and inputs --
/// the property tests/test_serve.cpp asserts.
///
/// The service itself is single-caller (the Server's tick thread); it is
/// not internally thread-safe.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "cert/store.hpp"
#include "common/parallel.hpp"
#include "core/w_history.hpp"
#include "eval/policy_spec.hpp"
#include "eval/registry.hpp"
#include "rl/mlp.hpp"
#include "serve/api.hpp"

namespace oic::serve {

/// Service configuration.
struct ServiceConfig {
  /// Certificate cache directory (cert::Store).  Empty = synthesize every
  /// plant's artifacts fresh at first open; set, plants resolve through
  /// the store and `reload` requests pick up hash-fresh rewrites.
  std::string cert_dir;
  std::size_t workers = 0;  ///< membership-check pool width; 0 = hardware
  /// Tick-shard pool width: independent (plant, cert, policy) group
  /// batches of one tick run concurrently, one worker job per group.
  /// Groups are data-disjoint (each owns its SoA workspace, its pending
  /// rows land in disjoint response slots, and a session belongs to
  /// exactly one group), and per-group side effects (counters, sessions
  /// closed for leaving XI) are buffered and merged in group creation
  /// order after the join -- so the decision stream is bit-identical for
  /// any worker count.  1 = serve groups serially; 0 = hardware.
  std::size_t tick_workers = 1;
  std::size_t max_sessions = 1u << 20;
};

/// Cumulative service statistics.
struct ServiceCounters {
  std::uint64_t decisions = 0;        ///< decision responses issued
  std::uint64_t skipped = 0;          ///< decisions with z = 0
  std::uint64_t burst_skips = 0;      ///< skips answered from a burst countdown
  std::uint64_t forced = 0;           ///< monitor overrides (x outside X')
  std::uint64_t errors = 0;           ///< error responses issued
  std::uint64_t invariant_errors = 0; ///< sessions closed for leaving XI
  std::uint64_t reloads = 0;          ///< reload requests handled
  std::uint64_t cert_swaps = 0;       ///< certificates hot-swapped
  std::uint64_t agent_swaps = 0;      ///< agents hot-swapped
};

/// The batched multi-session monitor (see file comment).
class Service {
 public:
  /// The registry must outlive the service.
  Service(const eval::ScenarioRegistry& registry, ServiceConfig config);
  ~Service();

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// One tick: answer every request, responses 1:1 in request order.
  /// Never throws on malformed requests -- each becomes an error response.
  void serve(const std::vector<Request>& in, std::vector<Response>& out);

  const ServiceCounters& counters() const { return counters_; }
  std::size_t open_sessions() const { return sessions_.size(); }

 private:
  struct PlantEntry;
  struct Group;

  /// One live control session.  The disturbance history and its residual
  /// scratch mirror the per-session framework exactly (w_memory = the
  /// episode constant kEpisodeWMemory); only periodic policies carry
  /// per-session policy state.
  struct Session {
    std::size_t group = 0;           ///< index into groups_
    bool seeded = false;             ///< first decide arrived
    linalg::Vector x_prev;           ///< state of the previous decision
    core::WHistory whist;            ///< residual ring, oldest first
    linalg::Vector ew_scratch;       ///< record_transition residual scratch
    std::unique_ptr<core::SkipPolicy> policy;  ///< periodic state only
    /// Certified-skip countdown (burst groups): while positive, decides
    /// are answered z = 0 straight from phase 1 -- no XI / X' membership
    /// work, no group batch row -- exactly the per-session burst branch
    /// of IntermittentController::decide_at.
    std::uint64_t burst_remaining = 0;
    /// Tick serial of this session's last accepted decide; the
    /// decide-at-most-once-per-batch guard in O(1) (the pending-list scan
    /// it replaces was quadratic in the tick's decide count).
    std::uint64_t last_decide_tick = 0;
  };

  /// Sentinel group index for a failed resolve (error holds the reason).
  static constexpr std::size_t kNoGroup = static_cast<std::size_t>(-1);

  PlantEntry* resolve_plant(const std::string& plant_id, std::string& error);
  std::size_t resolve_group(const std::string& plant_id, const std::string& policy,
                            std::string& error);
  /// Hot-reload pass: hash-fresh certificate rewrites and changed agent
  /// files swap in; sessions keep their state; invalid files keep the old
  /// artifact.  Never throws.
  void reload(std::uint64_t& certs_swapped, std::uint64_t& agents_swapped);
  /// Run one group's fused batch.  Side effects land in the group's
  /// per-tick outcome buffer (counters, sessions to close), never in the
  /// shared table -- callable concurrently for distinct groups.
  /// `allow_pool` gates the intra-group membership chunking over pool_
  /// (safe only when this is the sole run_group in flight).
  void run_group(Group& group, std::vector<Response>& out, bool allow_pool);

  const eval::ScenarioRegistry& registry_;
  ServiceConfig config_;
  std::unique_ptr<cert::Store> store_;
  cert::Provider provider_;
  std::unique_ptr<ThreadPool> pool_;       ///< intra-group membership chunks
  std::unique_ptr<ThreadPool> tick_pool_;  ///< inter-group tick shards
  ServiceCounters counters_;
  std::uint64_t tick_serial_ = 0;  ///< serve() calls; decide-dup stamps

  /// Plant cache: one model + certificate per plant id, shared across
  /// groups (node-stable addresses; groups hold PlantEntry*).
  std::unordered_map<std::string, std::unique_ptr<PlantEntry>> plants_;
  /// Groups keyed (plant id, policy text), creation order.
  std::vector<std::unique_ptr<Group>> groups_;
  std::unordered_map<std::string, std::size_t> group_index_;
  std::unordered_map<std::uint64_t, Session> sessions_;
};

}  // namespace oic::serve
