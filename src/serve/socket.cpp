#include "serve/socket.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <arpa/inet.h>

#include <atomic>
#include <cstring>
#include <istream>
#include <mutex>
#include <ostream>
#include <streambuf>
#include <thread>
#include <utility>

#include "common/error.hpp"
#include "serve/server.hpp"

namespace oic::serve {

namespace {

/// Read-side streambuf over a socket fd, so the strict api.hpp parsers
/// run unchanged against the wire.
class FdInBuf final : public std::streambuf {
 public:
  explicit FdInBuf(int fd) : fd_(fd) { setg(buf_, buf_, buf_); }

 private:
  int_type underflow() override {
    if (gptr() < egptr()) return traits_type::to_int_type(*gptr());
    ssize_t n;
    do {
      n = ::read(fd_, buf_, sizeof(buf_));
    } while (n < 0 && errno == EINTR);
    if (n <= 0) return traits_type::eof();
    setg(buf_, buf_, buf_ + n);
    return traits_type::to_int_type(*gptr());
  }

  int fd_;
  char buf_[1 << 16];
};

/// Write-side streambuf over a socket fd.  send(MSG_NOSIGNAL) instead of
/// write(): a peer that vanished mid-response must surface as a stream
/// error on this connection's writer, not a process-wide SIGPIPE.
class FdOutBuf final : public std::streambuf {
 public:
  explicit FdOutBuf(int fd) : fd_(fd) { setp(buf_, buf_ + sizeof(buf_)); }

 private:
  bool flush_buffer() {
    const char* p = pbase();
    std::size_t left = static_cast<std::size_t>(pptr() - pbase());
    while (left > 0) {
      ssize_t n;
      do {
        n = ::send(fd_, p, left, MSG_NOSIGNAL);
      } while (n < 0 && errno == EINTR);
      if (n <= 0) return false;
      p += n;
      left -= static_cast<std::size_t>(n);
    }
    setp(buf_, buf_ + sizeof(buf_));
    return true;
  }

  int_type overflow(int_type ch) override {
    if (!flush_buffer()) return traits_type::eof();
    if (!traits_type::eq_int_type(ch, traits_type::eof())) {
      *pptr() = traits_type::to_char_type(ch);
      pbump(1);
    }
    return traits_type::not_eof(ch);
  }

  int sync() override { return flush_buffer() ? 0 : -1; }

  int fd_;
  char buf_[1 << 16];
};

void set_nodelay(int fd) {
  // The protocol is small request documents answered promptly; Nagle
  // coalescing would serialize round trips behind delayed ACKs.
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

void close_fd(int fd) {
  if (fd >= 0) ::close(fd);
}

}  // namespace

// ---------------------------------------------------------------------------
// SocketListener
// ---------------------------------------------------------------------------

struct SocketListener::Impl {
  Server& server;
  int listen_fd = -1;
  std::uint16_t port = 0;
  std::atomic<bool> stopping{false};
  std::atomic<std::uint64_t> accepted{0};
  std::thread acceptor;
  std::mutex mu;                       // guards conns + handlers
  std::vector<int> conns;              // live connection fds (for stop())
  std::vector<std::thread> handlers;   // one reader thread per connection

  explicit Impl(Server& s) : server(s) {}

  void handle(int fd);
  void accept_loop();
  void stop();
};

void SocketListener::Impl::handle(int fd) {
  set_nodelay(fd);
  FdInBuf in_buf(fd);
  FdOutBuf out_buf(fd);
  std::istream is(&in_buf);
  std::ostream os(&out_buf);

  std::shared_ptr<Connection> conn;
  try {
    conn = server.connect();
  } catch (const Error&) {
    close_fd(fd);  // server already shut down
    return;
  }

  // The writer answers batches strictly in submission order: the reader
  // hands it each submitted batch's size over this channel, and per-batch
  // framing on the wire therefore matches the stdio front end byte for
  // byte.
  Channel<std::size_t> batch_sizes;
  std::thread writer([&] {
    std::vector<std::size_t> n(0);
    try {
      while (batch_sizes.pop_n(1, n)) {
        const std::vector<Response> responses = conn->await(n.front());
        n.clear();
        write_response_batch(responses, os);
        if (!os.flush()) return;  // peer went away
      }
    } catch (const Error&) {
      // Server shut down with batches in flight; drop the connection.
    }
  });

  std::vector<Request> batch;
  try {
    RequestReader reader(is);
    while (reader.read(batch)) {
      const std::size_t n = batch.size();
      conn->submit(std::move(batch));
      batch.clear();
      batch_sizes.push(n);
    }
  } catch (const Error&) {
    // Malformed document or submit-after-shutdown: poison only this
    // connection.  Everything already submitted still gets answered.
  }
  batch_sizes.close();
  writer.join();
  ::shutdown(fd, SHUT_RDWR);
  close_fd(fd);
}

void SocketListener::Impl::accept_loop() {
  while (!stopping.load()) {
    struct pollfd pfd;
    pfd.fd = listen_fd;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/200);
    if (stopping.load()) break;
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) continue;
    accepted.fetch_add(1);
    std::lock_guard<std::mutex> lock(mu);
    if (stopping.load()) {
      close_fd(fd);
      break;
    }
    conns.push_back(fd);
    handlers.emplace_back([this, fd] { handle(fd); });
  }
}

void SocketListener::Impl::stop() {
  if (stopping.exchange(true)) return;
  if (acceptor.joinable()) acceptor.join();
  {
    std::lock_guard<std::mutex> lock(mu);
    // Readers blocked in ::read see EOF and wind their connection down.
    for (int fd : conns) ::shutdown(fd, SHUT_RDWR);
  }
  for (auto& t : handlers) t.join();
  handlers.clear();
  conns.clear();
  close_fd(listen_fd);
  listen_fd = -1;
}

SocketListener::SocketListener(Server& server, std::uint16_t port)
    : impl_(std::make_unique<Impl>(server)) {
  impl_->listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  OIC_REQUIRE(impl_->listen_fd >= 0, "oic-serve: cannot create listen socket");
  int one = 1;
  ::setsockopt(impl_->listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(impl_->listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(impl_->listen_fd, 64) != 0) {
    close_fd(impl_->listen_fd);
    throw PreconditionError("oic-serve: cannot bind 127.0.0.1:" +
                            std::to_string(port));
  }
  socklen_t len = sizeof(addr);
  ::getsockname(impl_->listen_fd, reinterpret_cast<sockaddr*>(&addr), &len);
  impl_->port = ntohs(addr.sin_port);
  impl_->acceptor = std::thread([this] { impl_->accept_loop(); });
}

SocketListener::~SocketListener() { stop(); }

std::uint16_t SocketListener::port() const { return impl_->port; }

void SocketListener::stop() { impl_->stop(); }

std::uint64_t SocketListener::connections_accepted() const {
  return impl_->accepted.load();
}

// ---------------------------------------------------------------------------
// SocketClient
// ---------------------------------------------------------------------------

struct SocketClient::Impl {
  int fd = -1;
  std::unique_ptr<FdOutBuf> out_buf;
  std::unique_ptr<std::ostream> os;
  Channel<Response> responses;
  std::thread reader;

  ~Impl() {
    responses.close();
    if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
    if (reader.joinable()) reader.join();
    close_fd(fd);
  }
};

SocketClient::SocketClient(const std::string& host, std::uint16_t port)
    : impl_(std::make_unique<Impl>()) {
  impl_->fd = ::socket(AF_INET, SOCK_STREAM, 0);
  OIC_REQUIRE(impl_->fd >= 0, "oic-serve: cannot create client socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  OIC_REQUIRE(::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1,
              "oic-serve: '" + host + "' is not an IPv4 address");
  if (::connect(impl_->fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close_fd(impl_->fd);
    impl_->fd = -1;
    throw PreconditionError("oic-serve: cannot connect to " + host + ":" +
                            std::to_string(port));
  }
  set_nodelay(impl_->fd);
  impl_->out_buf = std::make_unique<FdOutBuf>(impl_->fd);
  impl_->os = std::make_unique<std::ostream>(impl_->out_buf.get());
  impl_->reader = std::thread([impl = impl_.get()] {
    FdInBuf in_buf(impl->fd);
    std::istream is(&in_buf);
    std::vector<Response> batch;
    try {
      ResponseReader reader(is);
      while (reader.read(batch)) {
        impl->responses.push_all(std::move(batch));
        batch.clear();
      }
    } catch (const Error&) {
      // Torn stream (server died mid-response); deliver what arrived.
    }
    impl->responses.close();
  });
}

SocketClient::~SocketClient() = default;

void SocketClient::submit(const std::vector<Request>& batch) {
  write_request_batch(batch, *impl_->os);
  OIC_REQUIRE(static_cast<bool>(impl_->os->flush()),
              "oic-serve: connection lost while submitting");
}

bool SocketClient::await_any(std::vector<Response>& out) {
  return impl_->responses.drain(out);
}

std::vector<Response> SocketClient::await(std::size_t n) {
  std::vector<Response> out;
  out.reserve(n);
  if (!impl_->responses.pop_n(n, out)) {
    throw NumericalError("oic-serve: connection closed before responding");
  }
  return out;
}

void SocketClient::close_send() {
  impl_->os->flush();
  ::shutdown(impl_->fd, SHUT_WR);
}

}  // namespace oic::serve
