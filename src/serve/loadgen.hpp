#pragma once
/// \file loadgen.hpp
/// The serve layer's client of record: a multi-threaded load generator
/// replaying mc::ScenarioFamily traffic against a Server, plus the
/// batched-vs-per-session parity check the bit-identity guarantee is
/// asserted with.
///
/// Each loadgen client owns a contiguous partition of the session space,
/// drives every session like a real plant-side deployment would -- open,
/// then one decide per control period carrying the previously actuated
/// input and the measured state, close at the end -- and actuates the
/// server's decisions through its own copy of the plant's tube RMPC.
/// Latency is sampled per submit/await round trip.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "eval/registry.hpp"
#include "serve/server.hpp"

namespace oic::serve {

/// Load-generator configuration.
struct LoadgenConfig {
  std::vector<std::string> plants;   ///< registry ids; empty = all
  std::string family = "mixed";      ///< mc::ScenarioFamily id
  std::string policy = "bang-bang";  ///< policy spec every session opens with
  std::size_t sessions = 10000;      ///< concurrent sessions
  std::size_t steps = 10;            ///< control periods per session
  std::size_t clients = 4;           ///< client threads
  /// Largest request batch submitted per round trip (0 = whole partition).
  /// Submitting each client's full partition as ONE envelope per control
  /// period convoys the server: the tick thread serializes a handful of
  /// giant batches, and the last client's round trip stacks up behind the
  /// other partitions (~7x p50 at 10k sessions).  Bounded chunks interleave
  /// fairly in the inbox, so each fused pass stays near
  /// clients * max_batch decisions and the measured latency is a decision
  /// latency, not a whole-tick barrier.
  std::size_t max_batch = 512;
  std::uint64_t seed = 20200406;
  std::string cert_dir;              ///< client-side plant builds (cert::Store)
  std::string emit_path;             ///< capture submitted request batches
};

/// Latency distribution of one control period's decide round trips,
/// aggregated across every client (chunked submissions give each client
/// several samples per tick).
struct TickLatency {
  std::size_t tick = 0;     ///< control period index
  std::size_t samples = 0;  ///< round trips measured
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
};

/// Aggregated load-generation outcome.
struct LoadgenResult {
  std::size_t sessions = 0;
  std::size_t steps = 0;
  std::uint64_t decisions = 0;
  std::uint64_t skipped = 0;
  std::uint64_t forced = 0;
  std::uint64_t errors = 0;
  double wall_s = 0.0;
  /// Decision-latency percentiles over every decide round trip
  /// (submit -> await).  Open/close round trips are session setup and
  /// teardown, not decision latency, and are excluded -- the serve-layer
  /// contract is about how long a plant waits for a decision.
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  /// Per-control-period decide-latency histogram (ticks with no decide
  /// round trips -- all sessions dead -- are omitted).
  std::vector<TickLatency> tick_latency;
  double decisions_per_s = 0.0;
  /// Sessions the measured rate sustains at one decision per control
  /// period and one period per second -- numerically the decision rate;
  /// reported separately so capacity reads directly off the bench table.
  double sessions_per_s = 0.0;
};

/// Drive `server` with cfg.sessions concurrent sessions (see file comment).
/// Throws PreconditionError on unknown plant/family ids.
LoadgenResult run_loadgen(Server& server, const eval::ScenarioRegistry& registry,
                          const LoadgenConfig& cfg);

/// Outcome of the batched-vs-per-session comparison.
struct ParityReport {
  bool identical = true;
  std::size_t decisions = 0;  ///< decision pairs compared
  std::string detail;         ///< first divergence, empty when identical
};

/// Drive a Service directly with `sessions` interleaved sessions on one
/// plant (policies assigned round-robin) and compare every decision --
/// z, forced, the actuated input, and the full state trajectory, all
/// bitwise -- against a per-session IntermittentController reference fed
/// the same disturbances.  Both paths actuate cold tube-MPC solves
/// (reset_solver before every control), so the input is a deterministic
/// function of the state on each side and any divergence is attributable
/// to the batched monitor/policy pass.
ParityReport check_batched_parity(const eval::ScenarioRegistry& registry,
                                  const std::string& plant_id,
                                  const std::vector<std::string>& policies,
                                  std::size_t sessions, std::size_t steps,
                                  std::uint64_t seed,
                                  const std::string& cert_dir = "");

}  // namespace oic::serve
