#pragma once
/// \file loadgen.hpp
/// The serve layer's client of record: a multi-threaded load generator
/// replaying mc::ScenarioFamily traffic against a Server, plus the
/// batched-vs-per-session parity check the bit-identity guarantee is
/// asserted with.
///
/// Each loadgen client owns a contiguous partition of the session space,
/// drives every session like a real plant-side deployment would -- open,
/// then one decide per control period carrying the previously actuated
/// input and the measured state, close at the end -- and actuates the
/// server's decisions through its own copy of the plant's tube RMPC.
/// Within a control period the client keeps a bounded window of chunks in
/// flight (submitting the next chunk the moment one completes) and
/// correlates each response to its session by `ref` (never by arrival
/// order), so one slow chunk cannot convoy the submission of the rest and
/// a late chunk's round trip stays a decision latency rather than a tick
/// barrier.  Latency is sampled per chunk round trip, split into submit
/// and wait components.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "eval/registry.hpp"
#include "serve/server.hpp"

namespace oic::serve {

/// Load-generator configuration.
struct LoadgenConfig {
  std::vector<std::string> plants;   ///< registry ids; empty = all
  std::string family = "mixed";      ///< mc::ScenarioFamily id
  /// Policy spec(s) sessions open with: a single spec, or a
  /// comma-separated list assigned round-robin by global session index
  /// (e.g. "bang-bang,burst:4" alternates monitor-only and burst
  /// sessions -- the mixed-fleet shape the serve layer batches per
  /// (plant, policy) group).
  std::string policy = "bang-bang";
  /// Transport between the clients and the server: "inproc" submits
  /// straight into the server's envelope inbox; "socket" stands up a
  /// loopback SocketListener and connects one SocketClient per client
  /// thread, so measured latency includes the real wire (serialization,
  /// TCP, parse).
  std::string transport = "inproc";
  /// How clients actuate a z=1 decision: "rmpc" runs the plant's tube
  /// RMPC (warm-started; the realistic deployment cost), "gain" applies
  /// the same controller's ancillary gain u = K x (one small gemv).  The
  /// gain mode exists for capacity measurement: on a machine where the
  /// clients and the server share cores, per-client LP solves otherwise
  /// dominate the wall clock and the serving loop under test idles.
  std::string actuation = "rmpc";
  std::size_t sessions = 10000;      ///< concurrent sessions
  std::size_t steps = 10;            ///< control periods per session
  std::size_t clients = 4;           ///< client threads
  /// Largest request batch submitted per round trip (0 = whole partition).
  /// Submitting each client's full partition as ONE envelope per control
  /// period convoys the server: the tick thread serializes a handful of
  /// giant batches, and the last client's round trip stacks up behind the
  /// other partitions (~7x p50 at 10k sessions).  Bounded chunks interleave
  /// fairly in the inbox, so each fused pass stays near
  /// clients * max_batch decisions and the measured latency is a decision
  /// latency, not a whole-tick barrier.
  std::size_t max_batch = 512;
  /// Chunks each client keeps in flight within a control period (0 = all
  /// of them).  A window of 1 is lock-step; larger windows overlap chunk
  /// serving with response actuation at the price of queueing delay in
  /// the measured round trip -- with an unbounded window the last chunk's
  /// latency degenerates into the whole period's wall time.
  std::size_t pipeline_window = 2;
  std::uint64_t seed = 20200406;
  std::string cert_dir;              ///< client-side plant builds (cert::Store)
  std::string emit_path;             ///< capture submitted request batches
};

/// Latency distribution of one control period's decide round trips,
/// aggregated across every client (chunked submissions give each client
/// several samples per tick).  Each sample is one chunk's full round
/// trip, split into its submit->enqueue component (serialize + hand the
/// batch to the transport; for a socket that is the wire write) and its
/// enqueue->response component (inbox queueing + the fused tick + the
/// response path), so transport cost reads directly against tick cost
/// across stdio vs socket runs.
struct TickLatency {
  std::size_t tick = 0;     ///< control period index
  std::size_t samples = 0;  ///< round trips measured
  double p50_ms = 0.0;      ///< full round trip (submit + wait)
  double p99_ms = 0.0;
  double max_ms = 0.0;
  double submit_p50_ms = 0.0;  ///< submit->enqueue component
  double submit_p99_ms = 0.0;
  double wait_p50_ms = 0.0;    ///< enqueue->response component
  double wait_p99_ms = 0.0;
};

/// Aggregated load-generation outcome.
struct LoadgenResult {
  std::size_t sessions = 0;
  std::size_t steps = 0;
  std::uint64_t decisions = 0;
  std::uint64_t skipped = 0;
  std::uint64_t forced = 0;
  std::uint64_t errors = 0;
  double wall_s = 0.0;
  /// Decision-latency percentiles over every decide round trip
  /// (submit -> await).  Open/close round trips are session setup and
  /// teardown, not decision latency, and are excluded -- the serve-layer
  /// contract is about how long a plant waits for a decision.
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  /// Component percentiles of the same samples (see TickLatency).
  double submit_p50_ms = 0.0;
  double submit_p99_ms = 0.0;
  double wait_p50_ms = 0.0;
  double wait_p99_ms = 0.0;
  /// Sessions opened with a burst:<k> spec (certified-skip countdowns).
  std::size_t burst_sessions = 0;
  /// Per-control-period decide-latency histogram (ticks with no decide
  /// round trips -- all sessions dead -- are omitted).
  std::vector<TickLatency> tick_latency;
  double decisions_per_s = 0.0;
  /// Sessions the measured rate sustains at one decision per control
  /// period and one period per second -- numerically the decision rate;
  /// reported separately so capacity reads directly off the bench table.
  double sessions_per_s = 0.0;
};

/// Drive `server` with cfg.sessions concurrent sessions (see file
/// comment).  cfg.transport == "socket" wraps the server in a loopback
/// SocketListener for the run.  Throws PreconditionError on unknown
/// plant/family/transport ids.
LoadgenResult run_loadgen(Server& server, const eval::ScenarioRegistry& registry,
                          const LoadgenConfig& cfg);

/// Same traffic against an EXTERNAL `oic-serve --listen` process at
/// `host`:`port` (always the socket transport; cfg.transport is ignored).
LoadgenResult run_loadgen_connect(const eval::ScenarioRegistry& registry,
                                  const LoadgenConfig& cfg,
                                  const std::string& host, std::uint16_t port);

/// Outcome of the batched-vs-per-session comparison.
struct ParityReport {
  bool identical = true;
  std::size_t decisions = 0;  ///< decision pairs compared
  std::string detail;         ///< first divergence, empty when identical
};

/// Drive a Service directly with `sessions` interleaved sessions on one
/// plant (policies assigned round-robin) and compare every decision --
/// z, forced, the actuated input, and the full state trajectory, all
/// bitwise -- against a per-session IntermittentController reference fed
/// the same disturbances.  Both paths actuate cold tube-MPC solves
/// (reset_solver before every control), so the input is a deterministic
/// function of the state on each side and any divergence is attributable
/// to the batched monitor/policy pass.
ParityReport check_batched_parity(const eval::ScenarioRegistry& registry,
                                  const std::string& plant_id,
                                  const std::vector<std::string>& policies,
                                  std::size_t sessions, std::size_t steps,
                                  std::uint64_t seed,
                                  const std::string& cert_dir = "");

}  // namespace oic::serve
