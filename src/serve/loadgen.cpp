#include "serve/loadgen.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>

#include "common/error.hpp"
#include "control/tube_mpc.hpp"
#include "core/intermittent.hpp"
#include "eval/harness.hpp"
#include "eval/policy_spec.hpp"
#include "mc/family.hpp"
#include "serve/service.hpp"
#include "serve/socket.hpp"

namespace oic::serve {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

/// Cold-solving wrapper over the plant's tube RMPC: reset_solver() before
/// every control() drops the carried warm-start basis, making the input a
/// deterministic function of the state alone.  Both parity paths (and the
/// loadgen clients) actuate through this so input streams are comparable
/// across processes and orderings.
class ColdKappa final : public control::Controller {
 public:
  explicit ColdKappa(const control::TubeMpc& mpc) : mpc_(mpc) {}

  linalg::Vector control(const linalg::Vector& x) override {
    count_invocation();
    mpc_.reset_solver();
    return mpc_.control(x);
  }
  std::size_t state_dim() const override { return mpc_.state_dim(); }
  std::size_t input_dim() const override { return mpc_.input_dim(); }
  std::string name() const override { return "cold-" + mpc_.name(); }

 private:
  control::TubeMpc mpc_;
};

bool bit_equal_vec(const linalg::Vector& a, const linalg::Vector& b) {
  return a.size() == b.size() &&
         (a.size() == 0 || std::memcmp(a.data().data(), b.data().data(),
                                       a.size() * sizeof(double)) == 0);
}

/// One loadgen-driven session's plant-side state.
struct ClientSession {
  std::uint64_t sid = 0;
  std::size_t plant_index = 0;
  std::unique_ptr<sim::VelocityProfile> profile;
  linalg::Vector x;
  linalg::Vector u;
  linalg::Vector w;
  linalg::Vector xnext;
  bool alive = true;
  bool first = true;
};

/// Shared capture stream for --emit (clients interleave whole batches; the
/// format is self-framed, so the capture replays through oic_serve).
struct EmitSink {
  std::ofstream os;
  std::mutex mu;

  void write(const std::vector<Request>& batch) {
    std::lock_guard<std::mutex> lock(mu);
    write_request_batch(batch, os);
  }
};

/// One control period's chunk round-trip samples (parallel arrays).
struct TickSamples {
  std::vector<double> total;   ///< submit + wait, the headline latency
  std::vector<double> submit;  ///< submit->enqueue component
  std::vector<double> wait;    ///< enqueue->response component
};

struct ClientStats {
  std::uint64_t decisions = 0;
  std::uint64_t skipped = 0;
  std::uint64_t forced = 0;
  std::uint64_t errors = 0;
  std::vector<TickSamples> tick_ms;  ///< decide samples per period
};

double percentile(const std::vector<double>& sorted, std::size_t pct) {
  const std::size_t idx = (sorted.size() * pct) / 100;
  return sorted[idx >= sorted.size() ? sorted.size() - 1 : idx];
}

/// Transport seam for a loadgen client: hand one batch to the server,
/// consume response batches as they arrive.  Responses are correlated by
/// `ref` downstream, never by arrival order.
class Endpoint {
 public:
  virtual ~Endpoint() = default;
  virtual void submit(std::vector<Request> batch) = 0;
  virtual bool await_any(std::vector<Response>& out) = 0;
};

class InprocEndpoint final : public Endpoint {
 public:
  explicit InprocEndpoint(std::shared_ptr<Connection> conn)
      : conn_(std::move(conn)) {}
  void submit(std::vector<Request> batch) override {
    conn_->submit(std::move(batch));
  }
  bool await_any(std::vector<Response>& out) override {
    return conn_->await_any(out);
  }

 private:
  std::shared_ptr<Connection> conn_;
};

class SocketEndpoint final : public Endpoint {
 public:
  SocketEndpoint(const std::string& host, std::uint16_t port)
      : client_(host, port) {}
  void submit(std::vector<Request> batch) override { client_.submit(batch); }
  bool await_any(std::vector<Response>& out) override {
    return client_.await_any(out);
  }

 private:
  SocketClient client_;
};

}  // namespace

namespace {

/// The transport-agnostic client fleet: `make_endpoint` is invoked once
/// per client thread.
LoadgenResult run_clients(const eval::ScenarioRegistry& registry,
                          const LoadgenConfig& cfg,
                          const std::function<std::unique_ptr<Endpoint>()>&
                              make_endpoint) {
  OIC_REQUIRE(cfg.sessions >= 1, "run_loadgen: need at least one session");
  OIC_REQUIRE(cfg.steps >= 1, "run_loadgen: need at least one step");
  const std::size_t clients = std::max<std::size_t>(1, cfg.clients);

  // Policy specs round-robin by global session index; parse each up front
  // so a typo fails the run with one diagnostic instead of `sessions`
  // open errors.
  std::vector<std::string> specs;
  std::vector<bool> spec_burst;
  {
    std::size_t pos = 0;
    while (true) {
      const std::size_t comma = cfg.policy.find(',', pos);
      const std::string spec = cfg.policy.substr(
          pos, comma == std::string::npos ? std::string::npos : comma - pos);
      OIC_REQUIRE(!spec.empty(),
                  "run_loadgen: empty policy spec in '" + cfg.policy + "'");
      spec_burst.push_back(eval::parse_policy_spec(spec).kind ==
                           eval::PolicySpec::Kind::kBurst);
      specs.push_back(spec);
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
  }

  const bool gain_actuation = cfg.actuation == "gain";
  OIC_REQUIRE(gain_actuation || cfg.actuation == "rmpc",
              "run_loadgen: unknown actuation '" + cfg.actuation +
                  "' (known: rmpc, gain)");

  const std::vector<std::string> plant_ids =
      cfg.plants.empty() ? registry.production_plant_ids() : cfg.plants;
  OIC_REQUIRE(!plant_ids.empty(), "run_loadgen: registry is empty");

  std::unique_ptr<cert::Store> store;
  cert::Provider provider;
  if (!cfg.cert_dir.empty()) {
    store = std::make_unique<cert::Store>(cfg.cert_dir);
    provider = store->provider();
  }

  // The plant-side fleet: one shared plant build per id (clients read the
  // const surface and copy the RMPC), one family per id.
  std::vector<std::unique_ptr<eval::PlantCase>> plants;
  std::vector<mc::ScenarioFamily> families;
  for (const auto& pid : plant_ids) {
    const eval::PlantInfo& info = registry.plant(pid);
    plants.push_back(info.make_plant(provider));
    families.push_back(mc::family_by_id(info.signal_band, cfg.family));
  }

  std::unique_ptr<EmitSink> emit;
  if (!cfg.emit_path.empty()) {
    emit = std::make_unique<EmitSink>();
    emit->os.open(cfg.emit_path);
    OIC_REQUIRE(emit->os.good(),
                "run_loadgen: cannot open emit file '" + cfg.emit_path + "'");
  }

  std::vector<ClientStats> stats(clients);
  std::vector<std::thread> threads;
  const auto t0 = Clock::now();

  for (std::size_t c = 0; c < clients; ++c) {
    // Contiguous session partition per client; sid is the global index + 1
    // so a captured stream replays through a fresh server.
    const std::size_t base = cfg.sessions / clients, rem = cfg.sessions % clients;
    const std::size_t begin = c * base + std::min(c, rem);
    const std::size_t end = begin + base + (c < rem ? 1 : 0);
    threads.emplace_back([&, c, begin, end] {
      ClientStats& st = stats[c];
      std::vector<ClientSession> sessions;
      try {
        const std::unique_ptr<Endpoint> endpoint = make_endpoint();

        std::vector<control::TubeMpc> mpcs;
        for (const auto& plant : plants) mpcs.emplace_back(plant->rmpc());

        for (std::size_t i = begin; i < end; ++i) {
          ClientSession s;
          s.sid = i + 1;
          s.plant_index = i % plants.size();
          const eval::PlantCase& plant = *plants[s.plant_index];
          Rng rng(derive_stream(cfg.seed, i));
          Rng x0_rng = rng.split();
          s.x = plant.sample_x0(x0_rng);
          eval::Scenario scenario = families[s.plant_index].sample(rng);
          s.profile = scenario.profile->clone();
          s.profile->reset(rng.split());
          s.w = linalg::Vector(plant.system().nw());
          sessions.push_back(std::move(s));
        }

        st.tick_ms.resize(cfg.steps);

        // Ref -> (batch row, chunk) correlation scratch: the partition's
        // sids are contiguous [begin+1, end], so the maps are flat arrays.
        const std::uint64_t first_sid = begin + 1;
        std::vector<std::uint32_t> row_of(end - begin, 0);
        std::vector<std::uint32_t> chunk_of(end - begin, 0);

        // Windowed pipelining: keep at most cfg.pipeline_window chunks of
        // cfg.max_batch requests in flight, submitting the next chunk the
        // moment one completes and consuming responses as they arrive,
        // correlated to their batch row by `ref` (never arrival order).
        // Unbounded pipelining would maximize overlap but makes a late
        // chunk's round trip span the whole control period -- every chunk
        // ahead of it has to be served AND actuated first -- so the window
        // is what keeps the measured latency a decision latency instead of
        // a tick barrier.  on_response sees (row index into `batch`,
        // response).
        auto pipelined = [&](std::vector<Request> batch, TickSamples* samples,
                             auto&& on_response) {
          const std::size_t total = batch.size();
          if (total == 0) return;
          const std::size_t chunk = cfg.max_batch == 0 ? total : cfg.max_batch;
          const std::size_t window =
              cfg.pipeline_window == 0 ? total : cfg.pipeline_window;
          for (std::size_t row = 0; row < total; ++row) {
            row_of[batch[row].ref - first_sid] = static_cast<std::uint32_t>(row);
          }
          struct ChunkState {
            double submit_ms = 0.0;
            Clock::time_point enqueued{};
            std::size_t remaining = 0;
          };
          std::vector<ChunkState> chunks;
          chunks.reserve((total + chunk - 1) / chunk);
          std::size_t off = 0;         // next unsubmitted row
          std::size_t in_flight = 0;   // submitted chunks not fully answered
          auto submit_next = [&] {
            const std::size_t m = std::min(chunk, total - off);
            const auto first = batch.begin() + static_cast<std::ptrdiff_t>(off);
            for (std::size_t k = 0; k < m; ++k) {
              chunk_of[(first + static_cast<std::ptrdiff_t>(k))->ref - first_sid] =
                  static_cast<std::uint32_t>(chunks.size());
            }
            std::vector<Request> sub;
            sub.reserve(m);
            std::move(first, first + static_cast<std::ptrdiff_t>(m),
                      std::back_inserter(sub));
            if (emit) emit->write(sub);
            const auto t0 = Clock::now();
            endpoint->submit(std::move(sub));
            ChunkState cs;
            cs.submit_ms = ms_since(t0);
            cs.enqueued = Clock::now();
            cs.remaining = m;
            chunks.push_back(cs);
            off += m;
            ++in_flight;
          };
          while (off < total && in_flight < window) submit_next();
          std::size_t outstanding = total;
          std::vector<Response> res;
          while (outstanding > 0) {
            if (!endpoint->await_any(res)) {
              throw NumericalError(
                  "run_loadgen: stream closed with " +
                  std::to_string(outstanding) + " responses outstanding");
            }
            for (const Response& r : res) {
              if (r.ref < first_sid || r.ref - first_sid >= row_of.size()) {
                ++st.errors;  // echoed ref we never submitted
                continue;
              }
              const std::size_t slot = r.ref - first_sid;
              on_response(row_of[slot], r);
              ChunkState& cs = chunks[chunk_of[slot]];
              if (--cs.remaining == 0) {
                if (samples) {
                  const double wait_ms = ms_since(cs.enqueued);
                  samples->submit.push_back(cs.submit_ms);
                  samples->wait.push_back(wait_ms);
                  samples->total.push_back(cs.submit_ms + wait_ms);
                }
                --in_flight;
                // Refill the window before draining the rest: the server
                // should never sit idle waiting for the next chunk.
                if (off < total) submit_next();
              }
              --outstanding;
            }
          }
        };

        // Open every session.
        std::vector<Request> batch;
        for (std::size_t i = 0; i < sessions.size(); ++i) {
          const ClientSession& s = sessions[i];
          Request r;
          r.kind = Request::Kind::kOpen;
          r.ref = s.sid;
          r.session = s.sid;
          r.plant = plants[s.plant_index]->name();
          r.policy = specs[(begin + i) % specs.size()];
          batch.push_back(std::move(r));
        }
        pipelined(std::move(batch), nullptr,
                  [&](std::size_t i, const Response& r) {
          if (r.kind != Response::Kind::kOpened) {
            ++st.errors;
            sessions[i].alive = false;
          }
        });

        // One decide per session per control period.
        for (std::size_t t = 0; t < cfg.steps; ++t) {
          batch.clear();
          std::vector<std::size_t> index;  // batch row -> session
          for (std::size_t i = 0; i < sessions.size(); ++i) {
            ClientSession& s = sessions[i];
            if (!s.alive) continue;
            Request r;
            r.kind = Request::Kind::kDecide;
            r.ref = s.sid;
            r.session = s.sid;
            if (!s.first) {
              r.has_u = true;
              r.u = s.u;
            }
            r.x = s.x;
            batch.push_back(std::move(r));
            index.push_back(i);
          }
          if (batch.empty()) break;
          pipelined(std::move(batch), &st.tick_ms[t],
                    [&](std::size_t k, const Response& res) {
            ClientSession& s = sessions[index[k]];
            const eval::PlantCase& plant = *plants[s.plant_index];
            if (res.kind != Response::Kind::kDecision) {
              ++st.errors;
              s.alive = false;
              return;
            }
            ++st.decisions;
            if (res.z == 0) ++st.skipped;
            if (res.forced) ++st.forced;
            if (res.z == 1) {
              if (gain_actuation) {
                // u = K x with the controller's own ancillary gain.
                const linalg::Matrix& k = mpcs[s.plant_index].local_gain();
                if (s.u.size() != k.rows()) s.u = linalg::Vector(k.rows());
                for (std::size_t r = 0; r < k.rows(); ++r) {
                  const double* row = k.row_data(r);
                  double acc = 0.0;
                  for (std::size_t j = 0; j < k.cols(); ++j) acc += row[j] * s.x[j];
                  s.u[r] = acc;
                }
              } else {
                try {
                  s.u = mpcs[s.plant_index].control(s.x);
                } catch (const NumericalError&) {
                  ++st.errors;
                  s.alive = false;
                  return;
                }
              }
            } else {
              s.u = plant.u_skip();
            }
            plant.signal_to_w(s.profile->next(), s.w);
            plant.system().step_into(s.x, s.u, s.w, s.xnext);
            s.x = s.xnext;
            s.first = false;
          });
        }

        // Close what survived.
        batch.clear();
        for (const auto& s : sessions) {
          if (!s.alive) continue;
          Request r;
          r.kind = Request::Kind::kClose;
          r.ref = s.sid;
          r.session = s.sid;
          batch.push_back(std::move(r));
        }
        pipelined(std::move(batch), nullptr,
                  [&](std::size_t, const Response& r) {
          if (r.kind != Response::Kind::kClosed) ++st.errors;
        });
      } catch (const Error&) {
        // The transport collapsed under this client (connect refused,
        // server shut down mid-run): every session still alive never got
        // its responses.
        if (sessions.empty()) {
          st.errors += end - begin;
        } else {
          for (const auto& s : sessions) {
            if (s.alive) ++st.errors;
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  LoadgenResult out;
  out.sessions = cfg.sessions;
  out.steps = cfg.steps;
  out.wall_s = std::chrono::duration<double>(Clock::now() - t0).count();
  for (std::size_t i = 0; i < cfg.sessions; ++i) {
    if (spec_burst[i % specs.size()]) ++out.burst_sessions;
  }
  for (const ClientStats& st : stats) {
    out.decisions += st.decisions;
    out.skipped += st.skipped;
    out.forced += st.forced;
    out.errors += st.errors;
  }
  std::vector<double> latency, submit_all, wait_all;  // headline samples
  for (std::size_t t = 0; t < cfg.steps; ++t) {
    std::vector<double> tick, submit, wait;
    for (const ClientStats& st : stats) {
      if (t >= st.tick_ms.size()) continue;
      const TickSamples& ts = st.tick_ms[t];
      tick.insert(tick.end(), ts.total.begin(), ts.total.end());
      submit.insert(submit.end(), ts.submit.begin(), ts.submit.end());
      wait.insert(wait.end(), ts.wait.begin(), ts.wait.end());
    }
    if (tick.empty()) continue;  // every session already dead
    latency.insert(latency.end(), tick.begin(), tick.end());
    submit_all.insert(submit_all.end(), submit.begin(), submit.end());
    wait_all.insert(wait_all.end(), wait.begin(), wait.end());
    std::sort(tick.begin(), tick.end());
    std::sort(submit.begin(), submit.end());
    std::sort(wait.begin(), wait.end());
    TickLatency tl;
    tl.tick = t;
    tl.samples = tick.size();
    tl.p50_ms = percentile(tick, 50);
    tl.p99_ms = percentile(tick, 99);
    tl.max_ms = tick.back();
    tl.submit_p50_ms = percentile(submit, 50);
    tl.submit_p99_ms = percentile(submit, 99);
    tl.wait_p50_ms = percentile(wait, 50);
    tl.wait_p99_ms = percentile(wait, 99);
    out.tick_latency.push_back(tl);
  }
  if (!latency.empty()) {
    std::sort(latency.begin(), latency.end());
    std::sort(submit_all.begin(), submit_all.end());
    std::sort(wait_all.begin(), wait_all.end());
    out.p50_ms = percentile(latency, 50);
    out.p99_ms = percentile(latency, 99);
    out.submit_p50_ms = percentile(submit_all, 50);
    out.submit_p99_ms = percentile(submit_all, 99);
    out.wait_p50_ms = percentile(wait_all, 50);
    out.wait_p99_ms = percentile(wait_all, 99);
  }
  if (out.wall_s > 0.0) {
    out.decisions_per_s = static_cast<double>(out.decisions) / out.wall_s;
    out.sessions_per_s = out.decisions_per_s;
  }
  return out;
}

}  // namespace

LoadgenResult run_loadgen(Server& server, const eval::ScenarioRegistry& registry,
                          const LoadgenConfig& cfg) {
  if (cfg.transport == "inproc") {
    return run_clients(registry, cfg, [&server]() -> std::unique_ptr<Endpoint> {
      return std::make_unique<InprocEndpoint>(server.connect());
    });
  }
  OIC_REQUIRE(cfg.transport == "socket",
              "run_loadgen: unknown transport '" + cfg.transport +
                  "' (known: inproc, socket)");
  // Loopback listener wrapping the caller's server: every client speaks
  // real TCP, so measured latency includes serialization and the wire.
  SocketListener listener(server, 0);
  const std::uint16_t port = listener.port();
  LoadgenResult out =
      run_clients(registry, cfg, [port]() -> std::unique_ptr<Endpoint> {
        return std::make_unique<SocketEndpoint>("127.0.0.1", port);
      });
  listener.stop();
  return out;
}

LoadgenResult run_loadgen_connect(const eval::ScenarioRegistry& registry,
                                  const LoadgenConfig& cfg,
                                  const std::string& host, std::uint16_t port) {
  return run_clients(registry, cfg, [&host, port]() -> std::unique_ptr<Endpoint> {
    return std::make_unique<SocketEndpoint>(host, port);
  });
}

ParityReport check_batched_parity(const eval::ScenarioRegistry& registry,
                                  const std::string& plant_id,
                                  const std::vector<std::string>& policies,
                                  std::size_t sessions, std::size_t steps,
                                  std::uint64_t seed,
                                  const std::string& cert_dir) {
  OIC_REQUIRE(!policies.empty(), "check_batched_parity: need at least one policy");
  OIC_REQUIRE(sessions >= 1, "check_batched_parity: need at least one session");

  cert::Provider provider;
  std::unique_ptr<cert::Store> store;
  if (!cert_dir.empty()) {
    store = std::make_unique<cert::Store>(cert_dir);
    provider = store->provider();
  }
  const std::unique_ptr<eval::PlantCase> plant =
      registry.make_plant(plant_id, provider);
  const control::AffineLTI& sys = plant->system();
  const mc::ScenarioFamily family =
      mc::family_by_id(registry.plant(plant_id).signal_band, "mixed");

  ServiceConfig scfg;
  scfg.cert_dir = cert_dir;
  Service service(registry, scfg);

  ParityReport report;
  auto mismatch = [&](const std::string& what) {
    if (report.identical) report.detail = what;
    report.identical = false;
  };

  // Per-session reference machinery: an IntermittentController over a
  // cold-solving RMPC copy, the exact per-session configuration the
  // episode harness wires (make_intermittent_config).
  struct RefSession {
    std::unique_ptr<core::SkipPolicy> policy;
    std::unique_ptr<ColdKappa> kappa_ref;   ///< actuates the reference path
    std::unique_ptr<ColdKappa> kappa_srv;   ///< actuates the served path
    std::unique_ptr<core::IntermittentController> ctrl;
    std::unique_ptr<sim::VelocityProfile> profile;
    linalg::Vector x_ref, x_srv, u_srv, w, xnext;
    bool alive = true;
    bool first = true;
  };
  std::vector<RefSession> refs(sessions);

  std::vector<Request> batch;
  std::vector<Response> res;
  for (std::size_t i = 0; i < sessions; ++i) {
    RefSession& s = refs[i];
    s.policy = eval::make_policy(policies[i % policies.size()]);
    s.kappa_ref = std::make_unique<ColdKappa>(plant->rmpc());
    s.kappa_srv = std::make_unique<ColdKappa>(plant->rmpc());
    s.ctrl = std::make_unique<core::IntermittentController>(
        sys, plant->sets(), *s.kappa_ref, *s.policy,
        eval::make_intermittent_config(*plant, *s.policy));
    Rng rng(derive_stream(seed, i));
    Rng x0_rng = rng.split();
    s.x_ref = plant->sample_x0(x0_rng);
    s.x_srv = s.x_ref;
    eval::Scenario scenario = family.sample(rng);
    s.profile = scenario.profile->clone();
    s.profile->reset(rng.split());
    s.w = linalg::Vector(sys.nw());

    Request r;
    r.kind = Request::Kind::kOpen;
    r.ref = i + 1;
    r.session = i + 1;
    r.plant = plant_id;
    r.policy = policies[i % policies.size()];
    batch.push_back(std::move(r));
  }
  service.serve(batch, res);
  for (std::size_t i = 0; i < res.size(); ++i) {
    if (res[i].kind != Response::Kind::kOpened) {
      mismatch("open of session " + std::to_string(i + 1) + " failed: " +
               res[i].error);
      refs[i].alive = false;
    }
  }

  for (std::size_t t = 0; t < steps && report.identical; ++t) {
    batch.clear();
    std::vector<std::size_t> index;
    for (std::size_t i = 0; i < sessions; ++i) {
      RefSession& s = refs[i];
      if (!s.alive) continue;
      Request r;
      r.kind = Request::Kind::kDecide;
      r.ref = i + 1;
      r.session = i + 1;
      if (!s.first) {
        r.has_u = true;
        r.u = s.u_srv;
      }
      r.x = s.x_srv;
      batch.push_back(std::move(r));
      index.push_back(i);
    }
    if (batch.empty()) break;
    service.serve(batch, res);
    for (std::size_t k = 0; k < res.size(); ++k) {
      RefSession& s = refs[index[k]];
      const std::string tag = "session " + std::to_string(index[k] + 1) +
                              " step " + std::to_string(t);
      core::StepDecision d;
      bool ref_abort = false;
      try {
        d = s.ctrl->decide(s.x_ref);
      } catch (const NumericalError&) {
        ref_abort = true;
      }
      const bool srv_abort = res[k].kind != Response::Kind::kDecision;
      if (ref_abort != srv_abort) {
        mismatch(tag + ": abort mismatch (reference " +
                 (ref_abort ? "aborted" : "continued") + ", server " +
                 (srv_abort ? "errored" : "answered") + ")");
        s.alive = false;
        continue;
      }
      if (ref_abort) {
        s.alive = false;  // both paths closed the session
        continue;
      }
      ++report.decisions;
      if (d.z != res[k].z || d.forced != res[k].forced) {
        mismatch(tag + ": decision mismatch (reference z=" + std::to_string(d.z) +
                 " forced=" + std::to_string(d.forced) + ", server z=" +
                 std::to_string(res[k].z) + " forced=" +
                 std::to_string(res[k].forced) + ")");
        s.alive = false;
        continue;
      }
      s.u_srv = res[k].z == 1 ? s.kappa_srv->control(s.x_srv) : plant->u_skip();
      if (!bit_equal_vec(d.u, s.u_srv)) {
        mismatch(tag + ": actuated input diverged");
        s.alive = false;
        continue;
      }
      plant->signal_to_w(s.profile->next(), s.w);
      sys.step_into(s.x_ref, d.u, s.w, s.xnext);
      s.ctrl->record_transition(s.x_ref, d.u, s.xnext);
      s.x_ref = s.xnext;
      sys.step_into(s.x_srv, s.u_srv, s.w, s.xnext);
      s.x_srv = s.xnext;
      if (!bit_equal_vec(s.x_ref, s.x_srv)) {
        mismatch(tag + ": state trajectory diverged");
        s.alive = false;
      }
      s.first = false;
    }
  }
  return report;
}

}  // namespace oic::serve
