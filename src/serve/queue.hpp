#pragma once
/// \file queue.hpp
/// Minimal blocking channel used for the server's MPSC request inbox and
/// each connection's SPSC response stream.  Producers push batches; the
/// consumer drains everything pending in one lock acquisition, which is
/// exactly the shape the tick loop wants (gather all pending requests,
/// answer them in one fused batch).

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <utility>
#include <vector>

namespace oic::serve {

/// Outcome of a bounded-wait drain (Channel::drain_for).
enum class DrainStatus {
  kItems,    ///< at least one item was delivered
  kTimeout,  ///< the wait expired with nothing pending (channel still open)
  kClosed,   ///< closed and fully drained; no more items will ever arrive
};

template <typename T>
class Channel {
 public:
  /// Enqueue one item.  No-op after close().
  void push(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) return;
      items_.push_back(std::move(item));
    }
    cv_.notify_all();
  }

  /// Enqueue a batch in one lock acquisition.  No-op after close().
  void push_all(std::vector<T>&& items) {
    if (items.empty()) return;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) return;
      for (T& item : items) items_.push_back(std::move(item));
    }
    items.clear();
    cv_.notify_all();
  }

  /// Block until at least one item is pending (or the channel closes), then
  /// move everything pending into `out` (cleared first).  Returns false only
  /// when the channel is closed and drained.
  bool drain(std::vector<T>& out) {
    out.clear();
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;
    out.swap(items_);
    return true;
  }

  /// Bounded-wait drain: like drain(), but give up after `timeout` when
  /// nothing arrives.  The consumer loop blocks on the condition variable
  /// (no spinning) yet regains control at a bounded cadence, which is what
  /// a tick thread wants: sleep while idle, still notice shutdown and do
  /// periodic housekeeping.  Pending items always win over both closure
  /// and the deadline, so a closed channel drains fully before kClosed.
  DrainStatus drain_for(std::vector<T>& out, std::chrono::milliseconds timeout) {
    out.clear();
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait_for(lock, timeout, [&] { return closed_ || !items_.empty(); });
    if (!items_.empty()) {
      out.swap(items_);
      return DrainStatus::kItems;
    }
    return closed_ ? DrainStatus::kClosed : DrainStatus::kTimeout;
  }

  /// Block until `n` items arrived, then append them to `out` in one splice.
  /// Returns false if the channel closed before all `n` were available; in
  /// that case neither the queue nor `out` is touched, so a caller that can
  /// tolerate partial delivery may still drain() the remainder.
  bool pop_n(std::size_t n, std::vector<T>& out) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return closed_ || items_.size() >= n; });
    if (items_.size() < n) return false;
    for (std::size_t i = 0; i < n; ++i) out.push_back(std::move(items_[i]));
    items_.erase(items_.begin(), items_.begin() + static_cast<long>(n));
    return true;
  }

  /// Wake all blocked consumers; pending items stay drainable.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<T> items_;
  bool closed_ = false;
};

}  // namespace oic::serve
