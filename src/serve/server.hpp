#pragma once
/// \file server.hpp
/// The long-running monitor server: one tick thread servicing an MPSC
/// request inbox, answering each connection through its own SPSC response
/// channel.
///
/// Clients connect(), submit() request batches, and await() the matching
/// responses (1:1, request order).  The tick thread drains *everything*
/// pending in one pass and hands it to Service::serve as one concatenated
/// batch, so decision requests from many connections share each tick's
/// fused SoA monitor/policy pass.  shutdown() closes the inbox, joins the
/// tick thread, and closes every live response channel (await() then
/// throws instead of hanging).

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/queue.hpp"
#include "serve/service.hpp"

namespace oic::serve {

class Server;

/// One client's SPSC response stream.  Create via Server::connect().
class Connection : public std::enable_shared_from_this<Connection> {
 public:
  /// Enqueue a request batch (thread-safe; many connections may submit
  /// concurrently).  Throws PreconditionError after server shutdown.
  void submit(std::vector<Request> batch);

  /// Block until `n` responses arrived and return them in service order.
  /// Throws NumericalError when the server shuts down first.
  std::vector<Response> await(std::size_t n);

  /// Block until at least one response is pending and move everything
  /// pending into `out`.  Returns false when the server shut down and the
  /// stream is fully drained.  This is the out-of-order consumption path:
  /// a client with several batches in flight correlates each response by
  /// its `ref` instead of assuming arrival order, so one slow batch never
  /// convoys the responses of the others through an await(n) barrier.
  bool await_any(std::vector<Response>& out);

 private:
  friend class Server;
  explicit Connection(Server* server) : server_(server) {}

  Server* server_;
  Channel<Response> responses_;
};

/// The monitor server (see file comment).
class Server {
 public:
  Server(const eval::ScenarioRegistry& registry, ServiceConfig config);
  ~Server();  ///< implies shutdown()

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  std::shared_ptr<Connection> connect();

  /// Stop accepting work, join the tick thread, release every blocked
  /// await().  Idempotent.
  void shutdown();

  /// Service statistics.  The tick thread owns them while running; read
  /// them after shutdown() (or between submissions you know are drained).
  const ServiceCounters& counters() const { return service_.counters(); }
  std::size_t open_sessions() const { return service_.open_sessions(); }

  /// Ticks executed (each tick = one fused Service::serve pass).
  std::uint64_t ticks() const { return ticks_.load(); }

 private:
  friend class Connection;
  struct Envelope {
    std::shared_ptr<Connection> conn;
    std::vector<Request> batch;
  };

  void run();

  Service service_;
  Channel<Envelope> inbox_;
  std::mutex connections_mu_;
  std::vector<std::weak_ptr<Connection>> connections_;
  std::atomic<std::uint64_t> ticks_{0};
  std::atomic<bool> down_{false};
  std::thread worker_;
};

}  // namespace oic::serve
