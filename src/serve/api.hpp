#pragma once
/// \file api.hpp
/// The `oic-serve v1` request/response surface: versioned plain structs and
/// the text-framed wire grammar the server, the CLIs, and the loadgen
/// driver all share.
///
/// Framing follows the cert/agent formats (line-oriented, versioned magic,
/// explicit `end` sentinel so truncation is detectable):
///
///   oic-serve v1
///   requests <n>
///   open <ref> session <sid> plant <id> policy <spec>
///   decide <ref> session <sid> x <nx> <v...>
///   decide <ref> session <sid> u <nu> <v...> x <nx> <v...>
///   close <ref> session <sid>
///   reload <ref>
///   end
///
///   oic-serve v1
///   responses <n>
///   opened <ref> session <sid>
///   decision <ref> session <sid> z <0|1> forced <0|1>
///   closed <ref> session <sid>
///   reloaded <ref> certs <n> agents <m>
///   error <ref> message <text...>
///   end
///
/// `ref` is a client-chosen correlation id echoed verbatim; `sid` is the
/// CLIENT-assigned session id (so a recorded request stream replays through
/// a fresh server -- loadgen partitions the sid space per client).  The
/// first decide of a session carries only the measured state x; every
/// subsequent decide also carries the input u actually actuated since the
/// previous decision, which is what lets the server reconstruct the
/// realized disturbance exactly like the per-session framework.  Plant ids
/// and policy specs are single whitespace-free tokens.
///
/// Readers are strict (the PR-5 parser-fuzz discipline): unknown verbs,
/// non-finite or malformed numbers, oversized counts, missing fields,
/// trailing tokens, and truncation all raise NumericalError.  A clean EOF
/// before a magic line is the normal end-of-stream and not an error.

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "linalg/vector.hpp"

namespace oic::serve {

/// Wire format magic + version line.
inline constexpr const char* kMagic = "oic-serve v1";

/// Hard caps the readers enforce before allocating anything: batch sizes
/// and vector dimensions far beyond any real deployment are rejected as
/// malformed rather than honoured with a giant reserve().
inline constexpr std::uint64_t kMaxBatchRequests = 1u << 20;
inline constexpr std::uint64_t kMaxDim = 64;
inline constexpr std::size_t kMaxTokenLength = 256;

/// One client request (versioned plain struct; see the file grammar).
struct Request {
  enum class Kind { kOpen, kDecide, kClose, kReload };
  Kind kind = Kind::kDecide;
  std::uint64_t ref = 0;      ///< client correlation id, echoed in the response
  std::uint64_t session = 0;  ///< client-assigned session id (unused by reload)
  std::string plant;          ///< open: registry plant id
  std::string policy;         ///< open: eval::make_policy spec (one token)
  bool has_u = false;         ///< decide: carries the previously actuated input
  linalg::Vector u;           ///< decide: input actuated since the last decision
  linalg::Vector x;           ///< decide: measured state
};

/// One server response (1:1 with the submitted requests, same order).
struct Response {
  enum class Kind { kOpened, kDecision, kClosed, kReloaded, kError };
  Kind kind = Kind::kError;
  std::uint64_t ref = 0;
  std::uint64_t session = 0;
  int z = 1;             ///< decision: the monitor/policy skipping choice
  bool forced = false;   ///< decision: monitor overrode the policy (x outside X')
  std::uint64_t certs = 0;   ///< reloaded: certificates swapped
  std::uint64_t agents = 0;  ///< reloaded: agents swapped
  std::string error;         ///< error: diagnostic (single line)
};

/// Read one request batch.  Returns false on clean EOF before a magic line
/// (end of stream); throws NumericalError on any malformed document.
bool read_request_batch(std::istream& is, std::vector<Request>& out);

/// Write one request batch (round-trips through read_request_batch).
/// Throws PreconditionError when a request violates the grammar caps
/// (oversized batch/dimension, plant/policy not a single token).
void write_request_batch(const std::vector<Request>& batch, std::ostream& os);

/// Read one response batch; same EOF/throw contract as read_request_batch.
bool read_response_batch(std::istream& is, std::vector<Response>& out);

/// Write one response batch.  Error texts are sanitized to a single line.
void write_response_batch(const std::vector<Response>& batch, std::ostream& os);

/// Stateful batch reader over a stream the caller owns for the stream's
/// whole lifetime.  Parses the identical grammar with the identical
/// strictness as read_request_batch, but pulls bytes from the underlying
/// streambuf in blocks (blocking only for the first byte of a refill) and
/// splits lines itself instead of paying std::getline's char-at-a-time
/// walk per line -- on the socket transport the per-line read is
/// otherwise a measurable slice of every decision.
///
/// Because a reader may buffer bytes beyond the batch it just returned,
/// exactly one reader must consume a given stream: mixing RequestReader
/// calls with direct reads of the same stream loses data.
class RequestReader {
 public:
  explicit RequestReader(std::istream& is);
  ~RequestReader();
  /// Same contract as read_request_batch: false on clean EOF before a
  /// magic line, NumericalError on malformed input.
  bool read(std::vector<Request>& out);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Response-direction twin of RequestReader (same ownership rule).
class ResponseReader {
 public:
  explicit ResponseReader(std::istream& is);
  ~ResponseReader();
  bool read(std::vector<Response>& out);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace oic::serve
