#pragma once
/// \file scenarios.hpp
/// The driving scenarios of the paper's evaluation (Sec. IV):
///
///   * fig4_scenario()    -- Equation (8) sinusoid: ve = 40, af = 9,
///                           disturbance w in [-1, 1] (Fig. 4 and Ex.10);
///   * range_scenario(i)  -- Ex.1..Ex.5 of Table I: bounded-acceleration
///                           random vf over shrinking ranges;
///   * regularity_scenario(i) -- Ex.6..Ex.10 of Fig. 6: from pure random
///                           to clean sinusoid.
///
/// Each scenario owns a VelocityProfile prototype; experiments clone and
/// reseed it per test case.

#include <memory>
#include <string>

#include "acc/acc.hpp"
#include "eval/plant.hpp"
#include "sim/profile.hpp"

namespace oic::acc {

/// One experiment configuration ("Fig.4", "Ex.1", ..., "Ex.10"); the
/// generic struct lives with the plant-generic evaluation layer.
using Scenario = eval::Scenario;

/// The Fig. 4 workload: sinusoidal front vehicle with minor disturbance
/// (Equation 8, ve = 40, af = 9, w in [-1, 1]).
Scenario fig4_scenario(const AccParams& params);

/// Table I / Fig. 5 workloads Ex.1 .. Ex.5: vf ranges
/// [30,50], [32.5,47.5], [35,45], [38,42], [39,41]; front acceleration
/// bounded by 20 m/s^2.
Scenario range_scenario(int index, const AccParams& params);

/// Fig. 6 workloads Ex.6 .. Ex.10 (increasing regularity):
///   Ex.6  -- vf uniformly random in [30, 50] each step;
///   Ex.7  -- Ex.1 (continuous random);
///   Ex.8  -- sinusoid af = 5, noise [-5, 5];
///   Ex.9  -- sinusoid af = 8, noise [-2, 2];
///   Ex.10 -- sinusoid af = 9, noise [-1, 1].
Scenario regularity_scenario(int index, const AccParams& params);

/// A stop-and-go traffic-jam scenario from the paper's introduction
/// (motivating example; used by examples and extension benches).
Scenario stop_and_go_scenario(const AccParams& params);

}  // namespace oic::acc
