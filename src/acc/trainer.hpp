#pragma once
/// \file trainer.hpp
/// ACC-named view of the plant-generic DQN trainer (src/train).
///
/// The training loop used to live here, welded to AccCase; it was lifted
/// into train/ when training went plant-generic (mirroring the PR-2 eval
/// lift).  The ACC benches, examples, and tests keep their historical
/// oic::acc:: spellings through these aliases -- the code path is the
/// shared one, and tests/test_train.cpp pins the ACC agent it produces to
/// the pre-lift trainer bit for bit.
///
/// Note EnergyMode: the generic enumerator for "train on the running-cost
/// metric" is kCost; for the ACC that metric is the fuel map (the
/// historical kFuel), via AccCase::train_cost_rate.

#include "acc/acc.hpp"
#include "acc/scenarios.hpp"
#include "train/trainer.hpp"

namespace oic::acc {

using train::EnergyMode;
using train::TrainedAgent;
using train::Trainer;
using train::TrainerConfig;
using train::TrainingLog;

using train::train_dqn;

}  // namespace oic::acc
