#pragma once
/// \file trainer.hpp
/// DQN training loop for the ACC skipping agent (Sec. III-B.2 / Sec. IV).
///
/// The agent interacts with the intermittent framework every step: inside
/// X' its action is executed; outside, the monitor overrides to z = 1 and
/// the stored transition carries the executed action, so the agent both
/// observes the override and pays the paper's energy penalty for it.
/// Reward weights default to the paper's w1 = 0.01, w2 = 0.0001 with
/// disturbance memory r = 1.

#include <memory>

#include "acc/acc.hpp"
#include "acc/scenarios.hpp"
#include "core/drl_policy.hpp"
#include "rl/dqn.hpp"

namespace oic::acc {

/// How R2, "the reward for the current energy cost" (Sec. III-B.2), is
/// measured.  The paper's formula uses ||kappa(x1)||_1; its experiments
/// *evaluate* SUMO fuel.  kFuel aligns the training signal with the fuel
/// map the evaluation uses (see EXPERIMENTS.md for the discussion); both
/// are safe by Theorem 1 regardless.
enum class EnergyMode {
  kKappaNorm,  ///< R2 = ||kappa(x1)||_1 exactly as printed in the paper
  kFuel,       ///< R2 = fuel consumed this step (the evaluation metric)
};

/// Training hyper-parameters.
struct TrainerConfig {
  std::size_t episodes = 200;
  std::size_t steps_per_episode = 100;  ///< paper evaluates 100-step episodes
  double w1 = 0.01;    ///< weight of the out-of-X' penalty (paper Sec. IV)
  double w2 = 0.0001;  ///< weight of the energy penalty (paper Sec. IV)
  EnergyMode energy_mode = EnergyMode::kFuel;
  /// Disturbance memory r.  The paper quotes r = 1; we default to r = 2
  /// because one sample of the sinusoidal vf leaves its phase ambiguous
  /// (rising vs falling) -- two samples give the derivative and measurably
  /// better skipping decisions (see EXPERIMENTS.md).
  std::size_t memory = 2;
  std::uint64_t seed = 20200607;
  rl::DqnConfig dqn = default_dqn();

  /// DQN defaults sized to the training budget above.
  static rl::DqnConfig default_dqn();
};

/// Progress record per episode (returned for learning-curve benches).
struct TrainingLog {
  std::vector<double> episode_reward;
  std::vector<double> episode_skip_ratio;
  std::vector<double> episode_energy;
};

/// A trained skipping agent plus everything needed to deploy it.
struct TrainedAgent {
  std::shared_ptr<rl::DoubleDqn> agent;
  linalg::Vector state_scale;  ///< normalization used during training
  std::size_t memory = 1;      ///< disturbance memory r

  /// Build the inference-side policy wired exactly like training.
  std::unique_ptr<core::DrlPolicy> make_policy() const;
};

/// Train a double-DQN skipping agent on the given scenario.  Deterministic
/// for a fixed config.  Fills `log` when non-null.
TrainedAgent train_dqn(AccCase& acc, const Scenario& scenario,
                       const TrainerConfig& config = {}, TrainingLog* log = nullptr);

}  // namespace oic::acc
