#include "acc/acc.hpp"

#include "common/error.hpp"

namespace oic::acc {

using control::AffineLTI;
using linalg::Matrix;
using linalg::Vector;
using poly::HPolytope;

control::RmpcConfig AccCase::default_rmpc() {
  control::RmpcConfig cfg;
  cfg.horizon = 10;      // Sec. IV: "prediction horizon set to 10"
  cfg.state_weight = 1.0;
  cfg.input_weight = 1.0;
  return cfg;
}

AffineLTI AccCase::build_system(const AccParams& p) {
  OIC_REQUIRE(p.delta > 0.0, "AccCase: control period must be positive");
  OIC_REQUIRE(p.s_min < p.s_max && p.v_min < p.v_max && p.u_min < p.u_max &&
                  p.vf_min < p.vf_max,
              "AccCase: degenerate constraint ranges");
  const double d = p.delta;
  Matrix a{{1.0, -d}, {0.0, 1.0 - p.drag * d}};
  Matrix b{{0.0}, {d}};
  Matrix e{{d}, {0.0}};

  const double sr = p.s_ref();
  const double vr = p.v_ref();
  const double ue = p.u_eq();
  const HPolytope x = HPolytope::box(Vector{p.s_min - sr, p.v_min - vr},
                                     Vector{p.s_max - sr, p.v_max - vr});
  const HPolytope u = HPolytope::box(Vector{p.u_min - ue}, Vector{p.u_max - ue});
  const HPolytope w = HPolytope::box(Vector{p.vf_min - vr}, Vector{p.vf_max - vr});
  return AffineLTI(a, b, e, Vector{0.0, 0.0}, x, u, w);
}

cert::PlantModel AccCase::model(const AccParams& params,
                                const control::RmpcConfig& rmpc) {
  // Unit LQR weights for the local stabilizing gain; skip actuates raw
  // u = 0, i.e. shifted u~ = -u_eq.
  return cert::PlantModel{"acc",          build_system(params),
                          Matrix::identity(2), Matrix{{1.0}},
                          rmpc,           Vector{-params.u_eq()}};
}

AccCase::AccCase(AccParams params, control::RmpcConfig rmpc,
                 const cert::Provider& provider)
    : params_(params), sys_(build_system(params)) {
  // The declarative model is the single source of the skip input: the
  // certificate (X', ladder) is synthesized for m.u_skip, and the monitor
  // must apply exactly that input or the certificate proves nothing.
  const cert::PlantModel m = model(params_, rmpc);
  u_skip_ = m.u_skip;                          // raw u = 0, i.e. u~ = -u_eq
  energy_offset_ = Vector{-params_.u_eq()};    // ||u_raw||_1 = ||u~ + u_eq||_1

  // Offline artifacts (LQR gain, tightened/terminal sets, XI per Prop. 1,
  // X' per Definition 3, the skip ladder) come from the certificate layer:
  // synthesized fresh by default, read from a cert::Store cache otherwise.
  rt_ = eval::build_plant_runtime(m, provider);

  // Fuel map: the ACC's u already includes the tractive force per unit
  // mass net of nothing -- the drag k v is modelled separately in the
  // dynamics -- so the fuel power is the engine power m v u alone (drag and
  // rolling terms are zeroed to avoid double counting).
  sim::FuelParams fp;
  fp.drag_coeff = 0.0;
  fp.rolling_coeff = 0.0;
  fuel_ = sim::FuelModel(fp);
}

double AccCase::energy_raw(const Vector& u_shifted) const {
  return (u_shifted - energy_offset_).norm1();
}

Vector AccCase::to_shifted(double s, double v) const {
  return Vector{s - params_.s_ref(), v - params_.v_ref()};
}

std::pair<double, double> AccCase::from_shifted(const Vector& x) const {
  OIC_REQUIRE(x.size() == 2, "AccCase::from_shifted: state must be planar");
  return {x[0] + params_.s_ref(), x[1] + params_.v_ref()};
}

double AccCase::u_raw(const Vector& u_shifted) const {
  OIC_REQUIRE(u_shifted.size() == 1, "AccCase::u_raw: input must be scalar");
  return u_shifted[0] + params_.u_eq();
}

double AccCase::fuel_step(const Vector& x, const Vector& u) const {
  const auto [s, v] = from_shifted(x);
  (void)s;
  const double a_engine = u_raw(u);  // engine-commanded acceleration
  return fuel_.consume(v, a_engine, params_.delta);
}

Vector AccCase::sample_x0(Rng& rng) const {
  // Same per-coordinate draw order as the historical 2-D sampler, so the
  // case streams are unchanged.
  return eval::sample_from_set(rt_.sets.x_prime, rng, "AccCase::sample_x0");
}

}  // namespace oic::acc
