#pragma once
/// \file acc.hpp
/// The adaptive cruise control case study of Sec. IV.
///
/// Two vehicles drive in a lane; the ego vehicle controls its acceleration
/// u against a velocity-proportional drag k v, the front vehicle moves at
/// vf(t) in [30, 50].  With gap s and ego speed v (Fig. 3):
///
///   s(t+1) = s(t) - (v(t) - vf(t)) delta,
///   v(t+1) = v(t) - (k v(t) - u(t)) delta,
///
/// delta = 0.1, k = 0.2, safety s in [120, 180], v in [25, 55],
/// u in [-40, 40].
///
/// The paper's framework wants 0 in X, U, W (Sec. II), so the model is
/// shifted to the equilibrium (s, v, u, vf) = (150, 40, k*40, 40):
///   x = (s - 150, v - 40),  u~ = u - 8,  w = vf - 40 in [-10, 10],
/// giving  x+ = A x + B u~ + E w  with
///   A = [[1, -delta], [0, 1 - k delta]],  B = [0, delta]^T,
///   E = [delta, 0]^T.
/// Skipping actuates raw u = 0, i.e. u~ = -8 -- the framework's designated
/// skip input; physical energy is ||u||_1 = ||u~ + 8||_1.

#include <memory>

#include "common/random.hpp"
#include "control/tube_mpc.hpp"
#include "core/safe_sets.hpp"
#include "eval/plant.hpp"
#include "sim/fuel.hpp"

namespace oic::acc {

/// Physical constants of the case study (paper values by default).
struct AccParams {
  double delta = 0.1;   ///< control period [s]
  double drag = 0.2;    ///< drag coefficient k [1/s]
  double s_min = 120.0; ///< safe gap lower bound [m]
  double s_max = 180.0; ///< safe gap upper bound [m]
  double v_min = 25.0;  ///< ego speed lower bound [m/s]
  double v_max = 55.0;  ///< ego speed upper bound [m/s]
  double u_min = -40.0; ///< actuation lower bound
  double u_max = 40.0;  ///< actuation upper bound
  double vf_min = 30.0; ///< front-vehicle speed lower bound [m/s]
  double vf_max = 50.0; ///< front-vehicle speed upper bound [m/s]

  /// Reference (shift) point: gap mid-range and front nominal speed.
  double s_ref() const { return 0.5 * (s_min + s_max); }
  double v_ref() const { return 0.5 * (vf_min + vf_max); }
  /// Equilibrium input balancing drag at the reference speed.
  double u_eq() const { return drag * v_ref(); }
};

/// Everything the experiments need, built once: the shifted LTI model, the
/// tube RMPC kappa_R, its robust-invariant feasible set XI (Prop. 1), and
/// the strengthened safe set X' (Definition 3).  Implements the generic
/// eval::PlantCase contract -- the ACC is the first plant of the scenario
/// registry, and all its harness/engine machinery now lives in src/eval.
class AccCase final : public eval::PlantCase {
 public:
  /// Build with the paper's parameters; `rmpc` defaults to horizon 10 with
  /// unit 1-norm weights (Sec. IV).  The safety artifacts are resolved
  /// through `provider` (empty = fresh cert::synthesize; pass a
  /// cert::Store provider to make construction file-read-bound).
  explicit AccCase(AccParams params = {}, control::RmpcConfig rmpc = default_rmpc(),
                   const cert::Provider& provider = {});

  /// The paper's RMPC configuration (N = 10, P = Q = 1).
  static control::RmpcConfig default_rmpc();

  /// Declarative model (certificate synthesis inputs) for these params:
  /// the shifted dynamics, unit LQR weights, and the raw-u = 0 skip input.
  static cert::PlantModel model(const AccParams& params = {},
                                const control::RmpcConfig& rmpc = default_rmpc());

  /// Registry id.
  std::string name() const override { return "acc"; }

  /// Physical constants.
  const AccParams& params() const { return params_; }

  /// Shifted-coordinate plant model.
  const control::AffineLTI& system() const override { return sys_; }

  /// The underlying safe controller kappa_R (tube RMPC).
  control::TubeMpc& rmpc() override { return *rt_.rmpc; }
  const control::TubeMpc& rmpc() const override { return *rt_.rmpc; }

  /// Local LQR gain used inside the RMPC (also a valid analytic kappa for
  /// the model-based policy).
  const linalg::Matrix& lqr_gain() const { return rt_.k_lqr; }

  /// X, XI = X_F (Prop. 1), X' (Definition 3), all in shifted coordinates.
  const core::SafeSets& sets() const override { return rt_.sets; }

  /// Certified k-step skip ladder (X'_1 == X').
  const std::vector<poly::HPolytope>& ladder() const override { return rt_.ladder; }

  /// Skip input in shifted coordinates (raw u = 0 => u~ = -u_eq).
  const linalg::Vector& u_skip() const override { return u_skip_; }

  /// Energy offset such that physical energy = || u~ - offset ||_1.
  const linalg::Vector& energy_offset() const { return energy_offset_; }

  /// Physical actuation energy of a shifted input.
  double energy_raw(const linalg::Vector& u_shifted) const override;

  // ---- coordinate helpers -------------------------------------------------

  /// (s, v) -> shifted state.
  linalg::Vector to_shifted(double s, double v) const;
  /// Shifted state -> (s, v).
  std::pair<double, double> from_shifted(const linalg::Vector& x) const;
  /// Raw input from shifted input.
  double u_raw(const linalg::Vector& u_shifted) const;
  /// Front-vehicle speed -> scalar disturbance w = vf - v_ref.
  double w_from_vf(double vf) const { return vf - params_.v_ref(); }

  /// PlantCase signal map: the ACC's scenario signal is the front-vehicle
  /// speed, so w = vf - v_ref.
  void signal_to_w(double vf, linalg::Vector& w) const override {
    w[0] = w_from_vf(vf);
  }

  // ---- experiment utilities ----------------------------------------------

  /// Fuel consumed over one control period at shifted state x actuating
  /// shifted input u (SUMO/HBEFA-style map; see sim/fuel.hpp).
  double fuel_step(const linalg::Vector& x, const linalg::Vector& u) const;

  /// PlantCase running cost: the ACC reports fuel (the skipping saving is
  /// physical -- coasting vs drag-compensating actuation -- so the per-run
  /// flag is ignored).
  double cost_step(const linalg::Vector& x, const linalg::Vector& u,
                   bool /*controller_ran*/) const override {
    return fuel_step(x, u);
  }

  /// Trainer energy hook: fuel rate (fuel per period / period), aligning
  /// the training signal with the fuel metric the evaluation reports.
  double train_cost_rate(const linalg::Vector& x,
                         const linalg::Vector& u) const override {
    return fuel_step(x, u) / params_.delta;
  }

  /// Uniform sample from the strengthened safe set X' (rejection sampling
  /// from its bounding box).
  linalg::Vector sample_x0(Rng& rng) const override;

  /// The fuel model in use.
  const sim::FuelModel& fuel_model() const { return fuel_; }

 private:
  AccParams params_;
  control::AffineLTI sys_;
  eval::PlantRuntime rt_;
  linalg::Vector u_skip_;
  linalg::Vector energy_offset_;
  sim::FuelModel fuel_;

  static control::AffineLTI build_system(const AccParams& p);
};

}  // namespace oic::acc
