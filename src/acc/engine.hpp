#pragma once
/// \file engine.hpp
/// ACC-named view of the plant-generic episode engine (src/eval).
///
/// EpisodeEngine and compare_policies_parallel were lifted into eval/ when
/// the evaluation went plant-generic; see eval/engine.hpp for the hoisting
/// and bit-parity story.  The ACC spellings below keep the historical
/// oic::acc:: call sites (benches, tests) on the shared code path.

#include "acc/harness.hpp"
#include "eval/engine.hpp"

namespace oic::acc {

using eval::EpisodeEngine;
using eval::PolicySetFactory;
using eval::SweepConfig;

using eval::compare_policies_parallel;

}  // namespace oic::acc
