#pragma once
/// \file harness.hpp
/// ACC-named view of the plant-generic evaluation harness (src/eval).
///
/// The shared harness used to live here; it was lifted into eval/ when the
/// evaluation went plant-generic (AccCase is an eval::PlantCase now).  The
/// ACC benches, examples, and trainer keep their historical oic::acc::
/// spelling through these aliases -- the code paths are the eval ones, so
/// ACC numbers and registry-driven sweeps can never drift apart.
///
/// Note CaseData's signal field: for the ACC it is the front-vehicle speed
/// trace (previously named `vf`).

#include "acc/acc.hpp"
#include "acc/scenarios.hpp"
#include "eval/harness.hpp"

namespace oic::acc {

using eval::CaseData;
using eval::ComparisonResult;
using eval::EpisodeResult;
using eval::kEpisodeWMemory;

using eval::compare_policies;
using eval::fuel_saving;
using eval::make_case;
using eval::run_episode;

}  // namespace oic::acc
