#include "acc/harness.hpp"

#include "common/error.hpp"

namespace oic::acc {

using linalg::Vector;

CaseData make_case(const AccCase& acc, const Scenario& scenario, Rng& rng,
                   std::size_t steps) {
  CaseData data;
  Rng x0_rng = rng.split();
  // sample_x0 needs a non-const AccCase only for rng; it is logically const.
  data.x0 = acc.sample_x0(x0_rng);
  auto profile = scenario.profile->clone();
  profile->reset(rng.split());
  data.vf.reserve(steps);
  for (std::size_t t = 0; t < steps; ++t) data.vf.push_back(profile->next());
  return data;
}

EpisodeResult run_episode(AccCase& acc, core::SkipPolicy& policy, const CaseData& data) {
  core::IntermittentConfig icfg;
  icfg.u_skip = acc.u_skip();
  icfg.w_memory = kEpisodeWMemory;  // policies use what they need of it
  core::IntermittentController ic(acc.system(), acc.sets(), acc.rmpc(), policy, icfg);
  ic.reset();
  // Episodes are independent by contract (fresh controller runtime above);
  // drop the RMPC's carried warm-start basis for the same reason.
  acc.rmpc().reset_solver();

  core::RunConfig rcfg;
  rcfg.steps = data.vf.size();

  double fuel = 0.0;
  double energy = 0.0;
  const auto hook = [&](sim::TraceStep& step, const Vector&) {
    step.fuel = acc.fuel_step(step.x, step.u);
    fuel += step.fuel;
    energy += acc.energy_raw(step.u);
  };
  const auto disturbance = [&](std::size_t t) {
    return Vector{acc.w_from_vf(data.vf[t])};
  };

  const core::RunResult rr =
      core::run_closed_loop(acc.system(), ic, data.x0, disturbance, rcfg, hook);

  EpisodeResult out;
  out.fuel = fuel;
  out.energy = energy;
  out.skipped = rr.trace.skipped_steps();
  out.forced = rr.trace.forced_steps();
  out.steps = rr.trace.size();
  out.left_x = rr.left_x;
  out.left_xi = rr.left_xi;
  return out;
}

double fuel_saving(const EpisodeResult& baseline, const EpisodeResult& ours) {
  OIC_REQUIRE(baseline.fuel > 0.0, "fuel_saving: baseline consumed no fuel");
  return (baseline.fuel - ours.fuel) / baseline.fuel;
}

ComparisonResult compare_policies(AccCase& acc, const Scenario& scenario,
                                  const std::vector<core::SkipPolicy*>& policies,
                                  std::size_t cases, std::size_t steps,
                                  std::uint64_t seed) {
  OIC_REQUIRE(!policies.empty(), "compare_policies: need at least one policy");
  ComparisonResult out;
  out.policy_names.reserve(policies.size());
  for (const auto* p : policies) out.policy_names.push_back(p->name());
  out.savings.assign(policies.size(), {});
  out.mean_skipped.assign(policies.size(), 0.0);
  out.any_violation.assign(policies.size(), false);

  core::AlwaysRunPolicy baseline;
  Rng rng(seed);
  for (std::size_t c = 0; c < cases; ++c) {
    const CaseData data = make_case(acc, scenario, rng, steps);
    const EpisodeResult base = run_episode(acc, baseline, data);
    for (std::size_t p = 0; p < policies.size(); ++p) {
      const EpisodeResult r = run_episode(acc, *policies[p], data);
      out.savings[p].push_back(fuel_saving(base, r));
      out.mean_skipped[p] += static_cast<double>(r.skipped);
      if (r.left_x || r.left_xi) out.any_violation[p] = true;
    }
  }
  for (auto& m : out.mean_skipped) m /= static_cast<double>(cases);
  return out;
}

}  // namespace oic::acc
