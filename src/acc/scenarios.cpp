#include "acc/scenarios.hpp"

#include <cstdio>

#include "common/error.hpp"

namespace oic::acc {

Scenario fig4_scenario(const AccParams& p) {
  return Scenario(
      "Fig.4", "sinusoidal vf (Eq. 8): ve=40, af=9, w in [-1,1]",
      std::make_unique<sim::SinusoidalProfile>(p.v_ref(), 9.0, p.delta, 1.0, p.vf_min,
                                               p.vf_max));
}

Scenario range_scenario(int index, const AccParams& p) {
  OIC_REQUIRE(index >= 1 && index <= 5, "range_scenario: index must be 1..5");
  // Table I.
  static constexpr double kLo[5] = {30.0, 32.5, 35.0, 38.0, 39.0};
  static constexpr double kHi[5] = {50.0, 47.5, 45.0, 42.0, 41.0};
  const double lo = kLo[index - 1];
  const double hi = kHi[index - 1];
  char desc[64];
  std::snprintf(desc, sizeof desc, "bounded-accel vf in [%.1f, %.1f], |v'f| <= 20", lo,
                hi);
  return Scenario("Ex." + std::to_string(index), desc,
                  std::make_unique<sim::BoundedAccelProfile>(lo, hi, 20.0, p.delta));
}

Scenario regularity_scenario(int index, const AccParams& p) {
  OIC_REQUIRE(index >= 6 && index <= 10, "regularity_scenario: index must be 6..10");
  switch (index) {
    case 6:
      return Scenario("Ex.6", "vf uniformly random in [30, 50] (no continuity)",
                      std::make_unique<sim::UniformRandomProfile>(p.vf_min, p.vf_max));
    case 7: {
      Scenario s = range_scenario(1, p);
      s.id = "Ex.7";
      return s;
    }
    case 8:
      return Scenario("Ex.8", "sinusoid af=5, noise [-5, 5]",
                      std::make_unique<sim::SinusoidalProfile>(p.v_ref(), 5.0, p.delta,
                                                               5.0, p.vf_min, p.vf_max));
    case 9:
      return Scenario("Ex.9", "sinusoid af=8, noise [-2, 2]",
                      std::make_unique<sim::SinusoidalProfile>(p.v_ref(), 8.0, p.delta,
                                                               2.0, p.vf_min, p.vf_max));
    case 10:
    default:
      return Scenario("Ex.10", "sinusoid af=9, noise [-1, 1]",
                      std::make_unique<sim::SinusoidalProfile>(p.v_ref(), 9.0, p.delta,
                                                               1.0, p.vf_min, p.vf_max));
  }
}

Scenario stop_and_go_scenario(const AccParams& /*params*/) {
  return Scenario("Jam", "stop-and-go traffic: dwell/ramp between 32 and 48 m/s",
                  std::make_unique<sim::StopAndGoProfile>(32.0, 48.0, 25, 15, 0.3));
}

}  // namespace oic::acc
