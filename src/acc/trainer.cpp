#include "acc/trainer.hpp"

#include "common/error.hpp"
#include "core/drl_policy.hpp"

namespace oic::acc {

using linalg::Vector;

rl::DqnConfig TrainerConfig::default_dqn() {
  rl::DqnConfig cfg;
  cfg.hidden = {64, 64};
  cfg.learning_rate = 1e-3;
  // The fuel-relevant horizon is the ~40-step sinusoid period, so the
  // discount must keep several tens of steps in view.
  cfg.gamma = 0.99;
  cfg.batch_size = 32;
  cfg.replay_capacity = 20000;
  cfg.min_replay = 500;
  cfg.target_sync_interval = 500;
  cfg.epsilon_start = 1.0;
  cfg.epsilon_end = 0.05;
  cfg.epsilon_decay_steps = 8000;
  return cfg;
}

std::unique_ptr<core::DrlPolicy> TrainedAgent::make_policy() const {
  OIC_REQUIRE(agent != nullptr, "TrainedAgent::make_policy: no agent");
  const std::size_t nx = (state_scale.size()) / (memory + 1);
  return std::make_unique<core::DrlPolicy>(agent, memory, nx, state_scale);
}

TrainedAgent train_dqn(AccCase& acc, const Scenario& scenario,
                       const TrainerConfig& cfg, TrainingLog* log) {
  OIC_REQUIRE(cfg.episodes >= 1 && cfg.steps_per_episode >= 2,
              "train_dqn: degenerate training budget");
  const std::size_t nx = acc.system().nx();
  const std::size_t state_dim = core::drl_state_dim(nx, nx, cfg.memory);
  const linalg::Vector scale = core::drl_state_scale(acc.system(), cfg.memory);

  Rng master(cfg.seed);
  // Fit the exploration schedule to the training budget: decay over ~60 %
  // of all action selections so the final third of training is near-greedy.
  rl::DqnConfig dqn_cfg = cfg.dqn;
  const std::size_t budget = cfg.episodes * cfg.steps_per_episode;
  dqn_cfg.epsilon_decay_steps =
      std::max<std::size_t>(500, std::min(dqn_cfg.epsilon_decay_steps, budget * 6 / 10));
  auto agent = std::make_shared<rl::DoubleDqn>(state_dim, 2, dqn_cfg, master.split());

  const auto& sets = acc.sets();
  const Vector u_skip = acc.u_skip();

  for (std::size_t ep = 0; ep < cfg.episodes; ++ep) {
    Rng ep_rng = master.split();
    // Training episodes are independent like evaluation episodes: drop the
    // RMPC's carried warm-start basis so trajectories do not depend on
    // episode ordering (run_episode and the engine do the same).
    acc.rmpc().reset_solver();
    Vector x = acc.sample_x0(ep_rng);
    auto profile = scenario.profile->clone();
    profile->reset(ep_rng.split());

    core::WHistory w_history(cfg.memory);  // state-space disturbances, oldest first
    double ep_reward = 0.0;
    double ep_energy = 0.0;
    std::size_t ep_skips = 0;

    for (std::size_t t = 0; t < cfg.steps_per_episode; ++t) {
      const Vector s1 = core::apply_state_scale(
          core::build_drl_state(x, w_history, cfg.memory, nx), scale);
      const bool in_xprime = sets.x_prime.contains(x);

      // The agent is consulted every step; the monitor overrides outside X'.
      const int desired = agent->select_action(s1);
      const int z = in_xprime ? desired : 1;

      Vector u;
      double kappa_energy = 0.0;
      if (z == 1) {
        u = acc.rmpc().control(x);
        kappa_energy = cfg.energy_mode == EnergyMode::kFuel
                           ? acc.fuel_step(x, u) / acc.params().delta
                           : acc.energy_raw(u);
      } else {
        u = u_skip;
        ++ep_skips;
      }
      ep_energy += acc.energy_raw(u);

      const double vf = profile->next();
      const Vector w{acc.w_from_vf(vf)};
      const Vector x_next = acc.system().step(x, u, w);

      // Observed state-space disturbance for the next agent state.
      const Vector ew =
          x_next - acc.system().a() * x - acc.system().b() * u - acc.system().c();
      w_history.push(ew);

      const double reward =
          core::skipping_reward(sets, x, z, x_next, kappa_energy, cfg.w1, cfg.w2);
      ep_reward += reward;

      const Vector s2 = core::apply_state_scale(
          core::build_drl_state(x_next, w_history, cfg.memory, nx), scale);
      rl::Transition tr;
      tr.state = s1;
      tr.action = z;
      tr.reward = reward;
      tr.next_state = s2;
      tr.terminal = false;  // time-limit truncation: keep bootstrapping
      agent->observe(std::move(tr));

      x = x_next;
    }

    if (log != nullptr) {
      log->episode_reward.push_back(ep_reward);
      log->episode_skip_ratio.push_back(static_cast<double>(ep_skips) /
                                        static_cast<double>(cfg.steps_per_episode));
      log->episode_energy.push_back(ep_energy);
    }
  }
  TrainedAgent out;
  out.agent = agent;
  out.state_scale = scale;
  out.memory = cfg.memory;
  return out;
}

}  // namespace oic::acc
