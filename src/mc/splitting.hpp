#pragma once
/// \file splitting.hpp
/// Importance splitting (fixed-effort multilevel splitting) for rare
/// violation events.
///
/// A crude campaign that sees zero violations in 10^6 episodes only buys a
/// ~3.7e-6 Wilson upper bound -- far short of the 1e-9-class targets a
/// production monitor must certify.  Multilevel splitting estimates such
/// probabilities directly: a *level function* measures how close an episode
/// comes to the constraint boundary, a ladder of intermediate levels
/// L_1 < L_2 < ... < 0 decomposes the rare event {reach 0} into a product
/// of conditional events {reach L_k | reached L_(k-1)}, and each stage
/// re-clones the trajectories that reached the last level so every stage
/// estimates a *moderate* conditional probability with fixed effort N.
///
///   p_hat = prod_k S_k / N,   S_k = survivors of stage k,
///
/// with the asymptotic log-scale variance  sigma_log^2 =
/// sum_k (1 - p_k) / (N p_k)  and the 95% CI
/// [p_hat e^{-z sigma}, p_hat e^{+z sigma}] (see docs/mc_stats.md).
///
/// Cloning is by *lineage replay*, not state snapshotting: a trajectory is
/// a pure function of its Lineage -- an ordered list of (from_step, seed)
/// random-stream hand-offs -- so a clone of a parent at crossing step t is
/// simply the parent's lineage truncated to entries with from_step <= t
/// plus one fresh entry (t + 1, new seed).  Replaying a lineage costs one
/// episode, needs no controller/solver serialization, and keeps the PR-5
/// contract for free: estimates are bit-identical for any worker count and
/// across checkpoint/resume boundaries, because every trajectory is a pure
/// function of (spec seed, stage, trial index).
///
/// The analytic `rare1d` bed (registered test-only in the scenario
/// registry) pins the estimator *statistically*: its violation probability
/// has a closed form at the 1e-8 scale, and tests assert the splitting
/// estimate lands inside its own 95% CI across seeds.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/random.hpp"
#include "common/stats.hpp"
#include "core/policy.hpp"
#include "eval/plant.hpp"
#include "mc/family.hpp"
#include "poly/hpolytope.hpp"

namespace oic::mc {

/// Normalized signed distance to a polytope's boundary:
///
///   level(x) = max_i (a_i . x - b_i) / ||a_i||_2 ,
///
/// negative strictly inside, zero exactly on the boundary, positive
/// outside.  This is the row-normalized variant of HPolytope::violation():
/// dividing by the facet-normal norms makes the value a geometric distance
/// (exact for the nearest facet, conservative at corners), so one level
/// ladder is meaningful across plants with differently scaled constraint
/// rows.  Rows with (near-)zero norm contribute b_i-sign only, matching
/// the trivial-halfspace semantics of HPolytope.
class LevelFunction {
 public:
  explicit LevelFunction(const poly::HPolytope& set);

  double operator()(const linalg::Vector& x) const;

  std::size_t dim() const { return a_.cols(); }

 private:
  linalg::Matrix a_;
  linalg::Vector b_;
  std::vector<double> inv_norm_;
};

/// One random-stream hand-off of a splitting trajectory: from `from_step`
/// on, the episode's stochastic draws come from a fresh Rng(seed).  The
/// first entry of every lineage has from_step == 0 (the root stream).
struct LineageEntry {
  std::size_t from_step = 0;
  std::uint64_t seed = 0;
};
using Lineage = std::vector<LineageEntry>;

/// Throws PreconditionError unless `lin` is a well-formed lineage for an
/// episode of `steps` steps: non-empty, first entry at step 0, strictly
/// increasing from_steps, none beyond `steps`.
void validate_lineage(const Lineage& lin, std::size_t steps);

/// A rare-event process the splitting engine can clone by lineage replay.
/// Implementations are stateful simulators (one per worker; not
/// thread-safe), but trace() must be a *pure function* of the lineage:
/// the same lineage yields the bit-identical trace on every call.
class SplitProcess {
 public:
  virtual ~SplitProcess() = default;

  /// Episode length in steps (>= 1).
  virtual std::size_t steps() const = 0;

  /// Simulate the episode defined by `lineage` and fill `levels` with the
  /// RUNNING MAXIMUM of the level function after each step (size steps(),
  /// monotone non-decreasing).  levels[t] >= L means the trajectory
  /// crossed L at or before step t; the trajectory violates iff
  /// levels.back() >= 0.
  virtual void trace(const Lineage& lineage, std::vector<double>& levels) = 0;
};

/// Builds one per-worker SplitProcess instance.  Must be callable
/// concurrently and every instance must trace identically.
using SplitProcessFactory = std::function<std::unique_ptr<SplitProcess>()>;

/// Fixed-effort splitting configuration.
struct SplitConfig {
  /// Trials (clones) per stage PER BATCH -- the fixed effort N.  >= 1.
  std::uint64_t trials = 256;
  /// Independent batches (replicate splitting runs).  The combined point
  /// estimate is the arithmetic batch mean and the 95% CI is EMPIRICAL
  /// across batches -- within one population, cloned trajectories share
  /// ancestors (and branch times), which correlates the stage estimates
  /// and makes the textbook independent-stage variance optimistic; only
  /// genuinely independent replicates measure that correlation honestly.
  /// >= 2 (one replicate carries no spread information).
  std::uint64_t batches = 16;
  /// Hard cap on the number of stages per batch (adaptive ladders only; an
  /// explicit ladder of m levels always runs exactly m + 1 stages).
  std::uint64_t max_stages = 24;
  /// Explicit level ladder: strictly increasing, finite, all < 0.  Empty =
  /// adaptive placement (next level = the order statistic keeping
  /// `quantile` of the stage's trials; on ties it ratchets to the smallest
  /// strictly better trial max, and clamps to 0 when nothing progressed).
  std::vector<double> levels;
  /// Adaptive survivor fraction target, in (0, 1).
  double quantile = 0.25;
  /// Root stream; batch b derives derive_stream(seed, b), and every
  /// stage/trial seed derives from that.
  std::uint64_t seed = 0;
  /// Worker count; 0 = hardware concurrency.  Never affects results.
  std::size_t workers = 0;
};

/// Throws PreconditionError unless `levels` is a valid explicit ladder:
/// every entry finite and < 0, strictly increasing.  (Empty is valid: it
/// selects adaptive placement.)
void validate_levels(const std::vector<double>& levels);

/// Parse a comma-separated `--levels` ladder ("-0.5,-0.25,-0.1").  Strict:
/// every item must be a full double literal, and the result must pass
/// validate_levels (NaN/inf thresholds, non-monotone ladders, and values
/// >= 0 are all rejected with a diagnostic).
std::vector<double> parse_levels(const std::string& text);

/// Outcome of ONE BATCH of splitting.  levels/survivors are parallel
/// arrays, one entry per completed stage; the ladder ends at 0.0 unless
/// the run went extinct on an intermediate explicit level first.  The
/// estimate and its within-batch CI are *derived* from these integers
/// (plus trials), which is what makes checkpoint resume bit-exact: only
/// counts are serialized, never floating-point aggregates.
struct SplitEstimate {
  std::vector<double> levels;            ///< stage levels, strictly increasing
  std::vector<std::uint64_t> survivors;  ///< trials that reached levels[k]
  std::uint64_t trials = 0;              ///< fixed effort N per stage
  std::uint64_t episodes = 0;            ///< total trajectory simulations

  /// True when some stage lost every clone (p_hat() == 0).
  bool extinct() const;

  /// prod_k survivors[k] / trials; 0 before any stage completed.
  double p_hat() const;

  /// NOMINAL log-scale standard error sqrt(sum_k (1 - p_k) / (N p_k)); 0
  /// when no stage completed, infinity when extinct.  This is the
  /// independent-stage formula -- optimistic under clone correlation, so
  /// the combined SplitState CI uses the empirical batch spread instead.
  double log_sigma() const;

  /// Within-batch nominal 95% CI.  Regular runs: [p_hat e^{-z sigma},
  /// min(1, p_hat e^{+z sigma})].  Extinct runs: [0, (prod of
  /// pre-extinction p_k) * Wilson upper bound of 0/N] -- the honest "no
  /// survivor seen" statement.
  Interval ci95() const;
};

/// One batch's resumable progress: the completed stages plus the next
/// stage's trial lineages.
struct SplitBatch {
  SplitEstimate estimate;
  std::vector<Lineage> frontier;  ///< next stage's trials (empty when done)
  bool done = false;
};

/// Resumable progress of a batched splitting estimation.  A
/// default-constructed state is "not started"; advance() bootstraps the
/// batch vector on first call.  The state is a pure function of (config,
/// completed stage counts), so serializing (per-batch estimate, frontier)
/// and resuming is bit-identical to never stopping.
struct SplitState {
  std::vector<SplitBatch> batches;
  bool done = false;

  /// Arithmetic mean of batch p_hat values -- unbiased, since every batch
  /// estimate is.  0 before any batch completed a stage.
  double p_hat() const;

  /// Total trajectory simulations across batches.
  std::uint64_t episodes() const;

  /// Batches whose run lost every clone at some stage.
  std::size_t extinct_batches() const;

  /// Total completed stages across batches (the campaign's budget unit).
  std::uint64_t stages_done() const;

  /// Combined 95% CI across batches.  All batches alive: Cox's interval
  /// for a lognormal mean over the batch log-estimates (a splitting batch
  /// estimate is a product of many stage ratios, so its log is
  /// CLT-normal):  exp(m + s^2/2 -+ t_{B-1} sqrt(s^2/B + s^4 / (2(B-1)))).
  /// Any batch extinct: the two-sided statement is gone; returns [0, max
  /// of a raw-scale t upper bound and the worst extinct batch's Wilson
  /// bound].  No completed stages anywhere: the vacuous [0, 1].
  Interval ci95() const;
};

/// The fixed-effort splitting engine.  Owns lazily-built per-worker
/// process instances, so a campaign can advance one state stage-by-stage
/// (checkpointing between stages) without rebuilding simulators.
class SplitRunner {
 public:
  /// Validates cfg (trials >= 1, batches >= 2, max_stages >= 1, quantile
  /// in (0,1), ladder via validate_levels) and captures the factory.
  SplitRunner(SplitProcessFactory factory, SplitConfig cfg);

  const SplitConfig& config() const { return cfg_; }

  /// Run ONE stage of the first unfinished batch: simulate its frontier,
  /// place the next level, count survivors, build the next frontier (or
  /// mark the batch done).  Marks the state done when every batch is.
  /// No-op on a done state.  Results are bit-identical for any worker
  /// count and across stop/resume at any stage boundary.
  void advance(SplitState& state);

  /// Run a fresh state to completion.
  SplitState run();

 private:
  void advance_batch(std::size_t index, SplitBatch& batch);

  SplitProcessFactory factory_;
  SplitConfig cfg_;
  std::vector<std::unique_ptr<SplitProcess>> slots_;
};

// ---- The analytic ground-truth bed ("rare1d") ------------------------------

/// Registry id of the test-only analytic plant.
inline constexpr const char* kRare1dPlantId = "rare1d";

/// The rare1d process:  x_t = c s_t + sigma g_t  i.i.d. per step, with
/// s_t = +/-1 equiprobable (a bounded excitation) and g_t ~ N(0, 1).  A
/// step is a HIT when x_t >= threshold; the monitored violation is
/// "at least `hits` hit steps in one episode".  The hit count is the
/// process's persistent Markov state -- exactly the structure importance
/// splitting needs: every accumulated hit is retained progress a clone
/// keeps, and the conditional probability of one more hit in the
/// remaining steps is moderate at every stage.  (The naive alternative,
/// max_t x_t over i.i.d. steps, makes splitting DEGENERATE: one extreme
/// draw crosses every intermediate level at once, clones inherit it as a
/// frozen atom, and the population collapses onto the single best
/// ancestral draw.  The counting event keeps the i.i.d. closed form
/// without that pathology -- see docs/mc_stats.md.)
///
/// The level function is (count - hits) / hits: -1 at zero hits, 0 exactly
/// at the violation, monotone along the episode (so the trace IS its own
/// running max).  The episode violation probability is an exact binomial
/// tail (rare1d_episode_p); the defaults put it at the ~1e-8 scale over
/// 100 steps.
struct Rare1dParams {
  double c = 0.5;          ///< bounded excitation magnitude
  double sigma = 0.1;      ///< Gaussian component stddev (> 0)
  double threshold = 0.66; ///< per-step hit level
  std::uint64_t hits = 16; ///< hit steps per episode = violation (>= 1)
};

/// Per-step hit probability
///   p = 1/2 [ Phi_bar((T - c)/sigma) + Phi_bar((T + c)/sigma) ],
/// Phi_bar the standard normal upper tail (via erfc).
double rare1d_step_p(const Rare1dParams& p);

/// Episode violation probability over `steps` i.i.d. steps: the exact
/// binomial tail  P(Bin(steps, p_step) >= hits), summed upward from the
/// dominant term (all terms positive -- no cancellation, full relative
/// precision at the 1e-8 scale).
double rare1d_episode_p(const Rare1dParams& p, std::size_t steps);

/// Build the analytic process (level = (hit count - hits) / hits).
std::unique_ptr<SplitProcess> make_rare1d_process(const Rare1dParams& params,
                                                  std::size_t steps);

// ---- Harness-backed processes ----------------------------------------------

/// Build a process that traces one (plant, family, policy) cell through
/// the real episode engine: each root lineage samples a scenario from
/// `family` and a case exactly like a campaign episode (same split()
/// stream order as eval::make_case), later lineage entries reseed the
/// MixtureProfile mid-episode (state-preserving; sim::VelocityProfile::
/// reseed), and the level trace is the running max of LevelFunction over
/// the plant's hard safe set X, collected through the engine's per-step
/// observer.  `policy` may be null for the always-run baseline; the
/// process takes ownership.  The plant must outlive the process.
std::unique_ptr<SplitProcess> make_plant_split_process(
    const eval::PlantCase& plant, ScenarioFamily family,
    std::unique_ptr<core::SkipPolicy> policy, std::size_t steps);

}  // namespace oic::mc
