#pragma once
/// \file falsify.hpp
/// Adversarial falsification: cross-entropy (CE) search over
/// mc::MixtureProfile parameters that actively maximizes near-violation.
///
/// A splitting ladder is only as good as its level placement, and a
/// "defensible small-probability estimate" should come with the most
/// dangerous disturbance the family can express.  The falsifier searches
/// the MixtureParams space of one (plant x family) cell for the profile
/// maximizing the episode's peak level (LevelFunction over the hard safe
/// set X), evaluated under the always-run baseline AND every campaign
/// policy on common-random-number probe episodes -- so candidates are
/// compared on identical luck, and a profile that only endangers a
/// skipping policy still scores.
///
/// The search is gradient-free CE: a Gaussian over a fixed 10-coordinate
/// parameterization (sine amplitude/period, filtered-noise gain/pole,
/// burst rate/amplitude/length, ramp rate/span/slew), initialized from
/// pilot samples of the family itself (so the search starts inside the
/// family's own distribution), elites re-fit mean/stddev each iteration
/// with a stddev floor.  Every coordinate maps into the profile's
/// validity region and the profile clips to the plant's signal band, so
/// the falsifier can never leave the certified disturbance envelope W.
///
/// All randomness derives from FalsifyConfig::seed via splitmix64 streams:
/// results are bit-identical for any worker count, and the observed
/// peak-level distribution seeds a splitting ladder (suggested_levels).

#include <cstddef>
#include <cstdint>
#include <vector>

#include "eval/engine.hpp"
#include "mc/family.hpp"
#include "mc/profile.hpp"

namespace oic::mc {

/// CE search configuration.
struct FalsifyConfig {
  std::uint64_t iterations = 6;   ///< CE refits
  std::uint64_t population = 24;  ///< candidates per iteration
  std::uint64_t elites = 6;       ///< refit sample (<= population)
  std::uint64_t probes = 3;       ///< CRN episodes per candidate evaluation
  std::size_t steps = 100;        ///< episode length
  std::uint64_t seed = 0;         ///< sole randomness knob
  std::size_t workers = 0;        ///< 0 = hardware concurrency
};

/// Search outcome for one (plant x family) cell.
struct FalsifyResult {
  MixtureParams worst;        ///< most dangerous profile found
  double worst_level = 0.0;   ///< its objective (peak level; >= 0 = violation!)
  bool violation = false;     ///< worst_level >= 0: an actual counterexample
  /// Strictly increasing, strictly negative peak-level quantiles of the
  /// whole evaluated population -- a data-driven splitting ladder seed.
  /// May be empty (e.g. every candidate violated).
  std::vector<double> suggested_levels;
  std::uint64_t episodes = 0;  ///< episodes simulated by the search
};

/// Run the CE search (see file comment).  `policies` builds the campaign
/// policy set (the baseline is always added); it must be stable across
/// calls.  Throws PreconditionError on a degenerate config (zero
/// population/elites/probes, elites > population).
FalsifyResult run_falsification(const eval::PlantCase& plant,
                                const ScenarioFamily& family,
                                const eval::PolicySetFactory& policies,
                                const FalsifyConfig& cfg);

}  // namespace oic::mc
