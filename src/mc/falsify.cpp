#include "mc/falsify.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <numeric>
#include <thread>
#include <utility>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "core/policy.hpp"
#include "eval/harness.hpp"
#include "mc/splitting.hpp"

namespace oic::mc {
namespace {

constexpr std::size_t kDim = 10;
constexpr double kTwoPi = 6.283185307179586476925286766559;

double clamp(double v, double lo, double hi) {
  return v < lo ? lo : (v > hi ? hi : v);
}

/// Map an unconstrained CE coordinate vector into a *valid* MixtureParams
/// for the band: every coordinate is clamped into MixtureProfile's
/// validity region, so CE can wander freely in R^10 and still always
/// produce a constructible profile that clips to the band.
///
/// Coordinates: 0 sine amplitude, 1 sine period [steps], 2 noise gain,
/// 3 noise pole alpha, 4 burst rate, 5 burst amplitude, 6 burst length,
/// 7 ramp rate, 8 ramp span, 9 ramp slew.
MixtureParams params_from_theta(const eval::SignalBand& band,
                                const std::vector<double>& theta) {
  const double h = band.halfwidth();
  MixtureParams p;
  p.label = "falsify";
  p.center = band.center();
  p.lo = band.lo;
  p.hi = band.hi;

  SineComponent s;
  s.amplitude = clamp(theta[0], 0.0, 2.0 * h);
  s.omega = kTwoPi / clamp(theta[1], 4.0, 240.0);
  s.phase = 0.0;
  p.sines.push_back(s);

  p.noise_gain = clamp(theta[2], 0.0, 2.0 * h);
  p.noise_alpha = clamp(theta[3], 0.0, 0.98);

  p.burst_rate = clamp(theta[4], 0.0, 0.5);
  p.burst_amp = clamp(theta[5], 0.0, 2.0 * h);
  p.burst_len_min = 3;
  p.burst_len_max = static_cast<std::size_t>(
      clamp(std::round(theta[6]), 3.0, 60.0));

  p.ramp_rate = clamp(theta[7], 0.0, 0.5);
  p.ramp_span = clamp(theta[8], 0.0, 2.0 * h);
  p.ramp_slew = clamp(theta[9], 1e-3 * h, h);
  return p;
}

/// Inverse map for pilot initialization: project a family-sampled
/// MixtureParams back onto the CE coordinates (collapsing a sine mixture
/// onto its dominant component).
std::vector<double> theta_from_params(const MixtureParams& p) {
  std::vector<double> th(kDim, 0.0);
  double amp = 0.0;
  for (const auto& s : p.sines) amp += s.amplitude;
  double dom_omega = 0.0;
  double dom_amp = -1.0;
  for (const auto& s : p.sines) {
    if (s.amplitude > dom_amp) {
      dom_amp = s.amplitude;
      dom_omega = s.omega;
    }
  }
  th[0] = amp;
  th[1] = dom_omega > 1e-12 ? kTwoPi / dom_omega : 60.0;
  th[2] = p.noise_gain;
  th[3] = p.noise_alpha;
  th[4] = p.burst_rate;
  th[5] = p.burst_amp;
  th[6] = static_cast<double>(p.burst_len_max == 0 ? 8 : p.burst_len_max);
  th[7] = p.ramp_rate;
  th[8] = p.ramp_span;
  th[9] = p.ramp_slew;
  return th;
}

/// Per-coordinate CE stddev floors: keep the search alive even when the
/// elites collapse (premature convergence is the classic CE failure mode).
std::vector<double> std_floors(double h) {
  return {0.05 * h, 4.0,      0.05 * h, 0.02,     0.01,
          0.05 * h, 1.0,      0.01,     0.05 * h, 0.01 * h};
}

/// Per-worker evaluation context: the baseline + policy engines, built
/// once per slot (controller construction runs nesting-verification LPs).
struct EvalCtx {
  core::AlwaysRunPolicy baseline;
  std::vector<std::unique_ptr<core::SkipPolicy>> policies;
  std::vector<std::unique_ptr<eval::EpisodeEngine>> engines;  ///< baseline first

  EvalCtx(const eval::PlantCase& plant, const eval::PolicySetFactory& factory,
          std::size_t num_policies) {
    if (factory) {
      policies = factory();
      OIC_REQUIRE(policies.size() == num_policies,
                  "run_falsification: policy factory is not stable");
    }
    engines.reserve(1 + policies.size());
    engines.push_back(std::make_unique<eval::EpisodeEngine>(plant, baseline));
    for (auto& p : policies) {
      engines.push_back(std::make_unique<eval::EpisodeEngine>(plant, *p));
    }
  }
};

}  // namespace

FalsifyResult run_falsification(const eval::PlantCase& plant,
                                const ScenarioFamily& family,
                                const eval::PolicySetFactory& policies,
                                const FalsifyConfig& cfg) {
  OIC_REQUIRE(cfg.iterations >= 1, "run_falsification: need >= 1 iteration");
  OIC_REQUIRE(cfg.population >= 2, "run_falsification: need population >= 2");
  OIC_REQUIRE(cfg.elites >= 1 && cfg.elites <= cfg.population,
              "run_falsification: need 1 <= elites <= population");
  OIC_REQUIRE(cfg.probes >= 1, "run_falsification: need >= 1 probe");
  OIC_REQUIRE(cfg.steps >= 1, "run_falsification: need >= 1 step");
  const eval::SignalBand& band = family.band();
  OIC_REQUIRE(band.hi > band.lo, "run_falsification: degenerate signal band");

  // Policy count probe (factory invoked once on the calling thread).
  std::size_t num_policies = 0;
  if (policies) num_policies = policies().size();

  const LevelFunction level(plant.sets().x);

  // Pilot: initialize the CE Gaussian from the family's own samples, so
  // iteration 0 explores the certified distribution and CE only then
  // drifts toward its dangerous corner.
  std::vector<double> mean(kDim, 0.0);
  std::vector<double> stddev(kDim, 0.0);
  {
    Rng pilot(derive_stream(cfg.seed, 0));
    std::vector<std::vector<double>> pilots;
    pilots.reserve(cfg.population);
    for (std::uint64_t i = 0; i < cfg.population; ++i) {
      eval::Scenario sc = family.sample(pilot);
      const auto* mp = dynamic_cast<const MixtureProfile*>(sc.profile.get());
      OIC_REQUIRE(mp != nullptr,
                  "run_falsification: family sample is not a MixtureProfile");
      pilots.push_back(theta_from_params(mp->params()));
    }
    for (std::size_t c = 0; c < kDim; ++c) {
      double m = 0.0;
      for (const auto& th : pilots) m += th[c];
      m /= static_cast<double>(pilots.size());
      double v = 0.0;
      for (const auto& th : pilots) v += (th[c] - m) * (th[c] - m);
      v /= static_cast<double>(pilots.size());
      mean[c] = m;
      stddev[c] = std::sqrt(v);
    }
  }
  const std::vector<double> floors = std_floors(band.halfwidth());
  for (std::size_t c = 0; c < kDim; ++c) {
    stddev[c] = std::max(stddev[c], floors[c]);
  }

  // Common random numbers: one fixed probe-seed set, shared by every
  // candidate in every iteration, so objective differences are parameter
  // differences and never luck.
  std::vector<std::uint64_t> probe_seeds;
  probe_seeds.reserve(cfg.probes);
  {
    const std::uint64_t probe_root = derive_stream(cfg.seed, 2);
    for (std::uint64_t k = 0; k < cfg.probes; ++k) {
      probe_seeds.push_back(derive_stream(probe_root, k));
    }
  }

  FalsifyResult out;
  out.worst_level = -std::numeric_limits<double>::infinity();
  std::vector<double> all_objs;  // deterministic order: iteration-major
  all_objs.reserve(cfg.iterations * cfg.population);

  std::vector<std::unique_ptr<EvalCtx>> slots(
      cfg.workers != 0 ? cfg.workers
                       : std::max(1u, std::thread::hardware_concurrency()));

  for (std::uint64_t it = 0; it < cfg.iterations; ++it) {
    // Candidate generation is serial on a per-iteration stream: the
    // population is a pure function of (seed, iteration, mean, stddev).
    Rng cand_rng(derive_stream(derive_stream(cfg.seed, 1), it));
    std::vector<std::vector<double>> thetas(cfg.population);
    for (auto& th : thetas) {
      th.resize(kDim);
      for (std::size_t c = 0; c < kDim; ++c) {
        th[c] = mean[c] + stddev[c] * cand_rng.normal(0.0, 1.0);
      }
    }

    // Evaluation is embarrassingly parallel: each candidate's objective is
    // a pure function of (theta, probe seeds).
    std::vector<double> objs(cfg.population, 0.0);
    run_chunked(cfg.population, cfg.workers,
                [&](std::size_t chunk, std::size_t begin, std::size_t end) {
                  if (!slots[chunk]) {
                    slots[chunk] =
                        std::make_unique<EvalCtx>(plant, policies, num_policies);
                  }
                  EvalCtx& ctx = *slots[chunk];
                  for (std::size_t j = begin; j < end; ++j) {
                    const MixtureParams params =
                        params_from_theta(band, thetas[j]);
                    eval::Scenario sc("falsify", "CE candidate",
                                      std::make_unique<MixtureProfile>(params));
                    double obj = -std::numeric_limits<double>::infinity();
                    for (std::uint64_t k = 0; k < cfg.probes; ++k) {
                      Rng pr(probe_seeds[k]);
                      const eval::CaseData data =
                          eval::make_case(plant, sc, pr, cfg.steps);
                      obj = std::max(obj, level(data.x0));
                      for (auto& engine : ctx.engines) {
                        double peak = level(data.x0);
                        engine->set_observer(
                            [&](std::size_t, const linalg::Vector& x) {
                              peak = std::max(peak, level(x));
                            });
                        engine->run(data);
                        engine->set_observer({});
                        obj = std::max(obj, peak);
                      }
                    }
                    objs[j] = obj;
                  }
                });
    out.episodes += cfg.population * cfg.probes *
                    static_cast<std::uint64_t>(1 + num_policies);

    // Deterministic elite selection: objective descending, index ascending.
    std::vector<std::size_t> order(cfg.population);
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      if (objs[a] != objs[b]) return objs[a] > objs[b];
      return a < b;
    });

    if (objs[order[0]] > out.worst_level) {
      out.worst_level = objs[order[0]];
      out.worst = params_from_theta(band, thetas[order[0]]);
    }
    for (std::uint64_t j = 0; j < cfg.population; ++j) {
      all_objs.push_back(objs[j]);
    }

    // Refit the Gaussian on the elites, stddev floored.
    for (std::size_t c = 0; c < kDim; ++c) {
      double m = 0.0;
      for (std::uint64_t e = 0; e < cfg.elites; ++e) {
        m += thetas[order[e]][c];
      }
      m /= static_cast<double>(cfg.elites);
      double v = 0.0;
      for (std::uint64_t e = 0; e < cfg.elites; ++e) {
        const double d = thetas[order[e]][c] - m;
        v += d * d;
      }
      v /= static_cast<double>(cfg.elites);
      mean[c] = m;
      stddev[c] = std::max(std::sqrt(v), floors[c]);
    }
  }

  out.violation = out.worst_level >= 0.0;

  // Ladder seed: strictly negative, strictly increasing quantiles of the
  // whole evaluated population.  A violating population contributes
  // nothing above 0 (those runs need no splitting help).
  std::vector<double> neg;
  neg.reserve(all_objs.size());
  for (double o : all_objs) {
    if (std::isfinite(o) && o < 0.0) neg.push_back(o);
  }
  std::sort(neg.begin(), neg.end());
  if (!neg.empty()) {
    const double qs[] = {0.25, 0.5, 0.75, 0.9};
    for (double q : qs) {
      const auto idx = static_cast<std::size_t>(
          q * static_cast<double>(neg.size() - 1));
      const double lv = neg[idx];
      if (out.suggested_levels.empty() || lv > out.suggested_levels.back()) {
        out.suggested_levels.push_back(lv);
      }
    }
  }
  return out;
}

}  // namespace oic::mc
