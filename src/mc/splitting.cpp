#include "mc/splitting.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <thread>
#include <utility>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "eval/engine.hpp"

namespace oic::mc {

// ---------------------------------------------------------------- level

LevelFunction::LevelFunction(const poly::HPolytope& set)
    : a_(set.a()), b_(set.b()) {
  OIC_REQUIRE(a_.rows() > 0, "LevelFunction: set has no constraints");
  inv_norm_.reserve(a_.rows());
  for (std::size_t i = 0; i < a_.rows(); ++i) {
    double s = 0.0;
    const double* row = a_.row_data(i);
    for (std::size_t j = 0; j < a_.cols(); ++j) s += row[j] * row[j];
    const double norm = std::sqrt(s);
    inv_norm_.push_back(norm > 0.0 ? 1.0 / norm : 1.0);
  }
}

double LevelFunction::operator()(const linalg::Vector& x) const {
  OIC_REQUIRE(x.size() == a_.cols(), "LevelFunction: dimension mismatch");
  double best = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < a_.rows(); ++i) {
    const double* row = a_.row_data(i);
    double dot = 0.0;
    for (std::size_t j = 0; j < a_.cols(); ++j) dot += row[j] * x[j];
    best = std::max(best, (dot - b_[i]) * inv_norm_[i]);
  }
  return best;
}

// ---------------------------------------------------------------- lineage

void validate_lineage(const Lineage& lin, std::size_t steps) {
  OIC_REQUIRE(!lin.empty(), "splitting: empty lineage");
  OIC_REQUIRE(lin.front().from_step == 0,
              "splitting: lineage must start at step 0");
  for (std::size_t i = 1; i < lin.size(); ++i) {
    OIC_REQUIRE(lin[i].from_step > lin[i - 1].from_step,
                "splitting: lineage steps must be strictly increasing");
    OIC_REQUIRE(lin[i].from_step <= steps,
                "splitting: lineage step beyond the episode");
  }
}

// ---------------------------------------------------------------- ladders

void validate_levels(const std::vector<double>& levels) {
  for (std::size_t i = 0; i < levels.size(); ++i) {
    OIC_REQUIRE(std::isfinite(levels[i]),
                "splitting: level thresholds must be finite");
    OIC_REQUIRE(levels[i] < 0.0,
                "splitting: level thresholds must be negative (0 is the "
                "violation boundary)");
    OIC_REQUIRE(i == 0 || levels[i] > levels[i - 1],
                "splitting: level ladder must be strictly increasing");
  }
}

std::vector<double> parse_levels(const std::string& text) {
  std::vector<double> out;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t comma = std::min(text.find(',', pos), text.size());
    const std::string item = text.substr(pos, comma - pos);
    OIC_REQUIRE(!item.empty(), "parse_levels: empty level in '" + text + "'");
    const char* begin = item.c_str();
    char* end = nullptr;
    const double v = std::strtod(begin, &end);
    OIC_REQUIRE(end == begin + item.size(),
                "parse_levels: malformed level '" + item + "'");
    out.push_back(v);
    OIC_REQUIRE(out.size() <= 64, "parse_levels: more than 64 levels");
    pos = comma + 1;
    if (comma == text.size()) break;
  }
  validate_levels(out);
  return out;
}

// ---------------------------------------------------------------- estimate

bool SplitEstimate::extinct() const {
  for (std::uint64_t s : survivors) {
    if (s == 0) return true;
  }
  return false;
}

double SplitEstimate::p_hat() const {
  if (survivors.empty()) return 0.0;
  double p = 1.0;
  for (std::uint64_t s : survivors) {
    p *= static_cast<double>(s) / static_cast<double>(trials);
  }
  return p;
}

double SplitEstimate::log_sigma() const {
  if (survivors.empty()) return 0.0;
  double var = 0.0;
  for (std::uint64_t s : survivors) {
    if (s == 0) return std::numeric_limits<double>::infinity();
    const double p = static_cast<double>(s) / static_cast<double>(trials);
    var += (1.0 - p) / (static_cast<double>(trials) * p);
  }
  return std::sqrt(var);
}

Interval SplitEstimate::ci95() const {
  if (survivors.empty()) return Interval{0.0, 1.0};
  if (extinct()) {
    // Survivor product of the stages before extinction, times the Wilson
    // upper bound of the 0-of-N extinction stage.
    double prefix = 1.0;
    for (std::uint64_t s : survivors) {
      if (s == 0) break;
      prefix *= static_cast<double>(s) / static_cast<double>(trials);
    }
    return Interval{0.0, prefix * wilson_interval(0, trials).hi};
  }
  const double p = p_hat();
  const double s = log_sigma();
  return Interval{p * std::exp(-kZ95 * s), std::min(1.0, p * std::exp(kZ95 * s))};
}

// ---------------------------------------------------------------- state

double SplitState::p_hat() const {
  double sum = 0.0;
  std::size_t counted = 0;
  for (const SplitBatch& b : batches) {
    if (b.estimate.survivors.empty()) continue;
    sum += b.estimate.p_hat();
    ++counted;
  }
  return counted ? sum / static_cast<double>(counted) : 0.0;
}

std::uint64_t SplitState::episodes() const {
  std::uint64_t sum = 0;
  for (const SplitBatch& b : batches) sum += b.estimate.episodes;
  return sum;
}

std::size_t SplitState::extinct_batches() const {
  std::size_t count = 0;
  for (const SplitBatch& b : batches) count += b.estimate.extinct() ? 1 : 0;
  return count;
}

std::uint64_t SplitState::stages_done() const {
  std::uint64_t sum = 0;
  for (const SplitBatch& b : batches) sum += b.estimate.levels.size();
  return sum;
}

Interval SplitState::ci95() const {
  std::vector<double> ps;
  double extinct_hi = 0.0;
  bool any_extinct = false;
  for (const SplitBatch& b : batches) {
    if (b.estimate.survivors.empty()) continue;
    ps.push_back(b.estimate.p_hat());
    if (b.estimate.extinct()) {
      any_extinct = true;
      extinct_hi = std::max(extinct_hi, b.estimate.ci95().hi);
    }
  }
  if (ps.empty()) return Interval{0.0, 1.0};
  if (ps.size() == 1) {
    // One batch carries no spread information; report its nominal CI.
    for (const SplitBatch& b : batches) {
      if (!b.estimate.survivors.empty()) return b.estimate.ci95();
    }
  }
  const double nb = static_cast<double>(ps.size());
  const double t = t_quantile_975(ps.size() - 1);
  if (any_extinct) {
    // An extinct batch saw zero survivors at some level -- no two-sided
    // log-scale statement survives that.  Conservative upper bound: the
    // larger of the raw-scale t bound (zeros included) and the worst
    // extinct batch's own Wilson-style bound.
    double m = 0.0;
    for (double p : ps) m += p;
    m /= nb;
    double s2 = 0.0;
    for (double p : ps) s2 += (p - m) * (p - m);
    s2 /= nb - 1.0;
    const double hi = m + t * std::sqrt(s2 / nb);
    return Interval{0.0, std::min(1.0, std::max(hi, extinct_hi))};
  }
  double ml = 0.0;
  for (double p : ps) ml += std::log(p);
  ml /= nb;
  double sl2 = 0.0;
  for (double p : ps) sl2 += (std::log(p) - ml) * (std::log(p) - ml);
  sl2 /= nb - 1.0;
  const double center = ml + 0.5 * sl2;
  const double se = std::sqrt(sl2 / nb + sl2 * sl2 / (2.0 * (nb - 1.0)));
  return Interval{std::exp(center - t * se),
                  std::min(1.0, std::exp(center + t * se))};
}

// ---------------------------------------------------------------- runner

namespace {

/// Seed of trial j of stage k, derived from the batch's root seed.
std::uint64_t trial_seed(std::uint64_t seed, std::size_t stage, std::size_t trial) {
  return derive_stream(derive_stream(seed, stage), trial);
}

}  // namespace

SplitRunner::SplitRunner(SplitProcessFactory factory, SplitConfig cfg)
    : factory_(std::move(factory)), cfg_(std::move(cfg)) {
  OIC_REQUIRE(static_cast<bool>(factory_), "SplitRunner: process factory required");
  OIC_REQUIRE(cfg_.trials >= 1,
              "SplitRunner: need at least one trial per stage (zero clone "
              "counts are rejected)");
  OIC_REQUIRE(cfg_.batches >= 2,
              "SplitRunner: need at least two batches (the combined CI is "
              "the empirical spread across independent replicates)");
  OIC_REQUIRE(cfg_.max_stages >= 1, "SplitRunner: need at least one stage");
  OIC_REQUIRE(cfg_.quantile > 0.0 && cfg_.quantile < 1.0,
              "SplitRunner: quantile must lie in (0, 1)");
  validate_levels(cfg_.levels);
  const std::size_t hw = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  slots_.resize(cfg_.workers ? cfg_.workers : hw);
}

void SplitRunner::advance(SplitState& state) {
  if (state.done) return;
  if (state.batches.empty()) {
    state.batches.resize(static_cast<std::size_t>(cfg_.batches));
  }
  OIC_CHECK(state.batches.size() == cfg_.batches,
            "SplitRunner: batch count drifted");
  for (std::size_t b = 0; b < state.batches.size(); ++b) {
    if (state.batches[b].done) continue;
    advance_batch(b, state.batches[b]);
    break;
  }
  state.done = true;
  for (const SplitBatch& b : state.batches) {
    if (!b.done) state.done = false;
  }
}

void SplitRunner::advance_batch(std::size_t index, SplitBatch& state) {
  const std::uint64_t batch_seed = derive_stream(cfg_.seed, index);
  const std::size_t n = static_cast<std::size_t>(cfg_.trials);
  const std::size_t stage = state.estimate.levels.size();
  state.estimate.trials = cfg_.trials;

  // Bootstrap the root frontier: trial j runs on its own derived stream.
  if (stage == 0 && state.frontier.empty()) {
    state.frontier.reserve(n);
    for (std::size_t j = 0; j < n; ++j) {
      state.frontier.push_back({{0, trial_seed(batch_seed, 0, j)}});
    }
  }
  OIC_CHECK(state.frontier.size() == n, "SplitRunner: frontier size drifted");

  // Simulate every frontier trial; traces land in index-addressed slots,
  // so the result is a pure function of the lineages for any worker count.
  std::vector<std::vector<double>> traces(n);
  run_chunked(n, cfg_.workers, [&](std::size_t chunk, std::size_t b, std::size_t e) {
    OIC_CHECK(chunk < slots_.size(), "SplitRunner: chunk exceeds worker slots");
    if (!slots_[chunk]) slots_[chunk] = factory_();
    SplitProcess& proc = *slots_[chunk];
    for (std::size_t j = b; j < e; ++j) {
      validate_lineage(state.frontier[j], proc.steps());
      proc.trace(state.frontier[j], traces[j]);
      OIC_CHECK(traces[j].size() == proc.steps(),
                "SplitRunner: trace length mismatch");
    }
  });
  state.estimate.episodes += n;

  // Place this stage's level.  Explicit ladders append the final 0-level
  // stage after the listed levels; adaptive placement keeps the
  // `quantile` fraction of trials alive, clamping at the boundary, and
  // degrades to the final stage on stall (no progress past the previous
  // level) or when the stage budget is exhausted.
  double level = 0.0;
  if (stage < cfg_.levels.size()) {
    level = cfg_.levels[stage];
  } else if (cfg_.levels.empty() && stage + 1 < cfg_.max_stages) {
    std::vector<double> maxes(n);
    for (std::size_t j = 0; j < n; ++j) maxes[j] = traces[j].back();
    std::sort(maxes.begin(), maxes.end(), std::greater<double>());
    const std::size_t keep = std::max<std::size_t>(
        1, static_cast<std::size_t>(cfg_.quantile * static_cast<double>(n)));
    const double prev = stage == 0 ? -std::numeric_limits<double>::infinity()
                                   : state.estimate.levels.back();
    double cand = maxes[keep - 1];
    if (!(cand < 0.0 && cand > prev)) {
      // The quantile stalled on a tie -- discrete level structures (and
      // clone pile-ups on one ancestral value) put big atoms in the max
      // distribution.  Ratchet: take the smallest strictly better value
      // any trial achieved rather than jumping straight to the boundary.
      cand = std::numeric_limits<double>::infinity();
      for (double m : maxes) {
        if (m > prev && m < 0.0) cand = std::min(cand, m);
      }
    }
    if (cand < 0.0 && cand > prev) level = cand;
  }

  std::uint64_t survivors = 0;
  for (std::size_t j = 0; j < n; ++j) {
    if (traces[j].back() >= level) ++survivors;
  }
  state.estimate.levels.push_back(level);
  state.estimate.survivors.push_back(survivors);

  if (level >= 0.0 || survivors == 0) {
    state.done = true;
    state.frontier.clear();
    return;
  }

  // Build the next frontier: clone the survivors round-robin, branching
  // each clone at its parent's first crossing of this stage's level.
  std::vector<std::size_t> surv;
  surv.reserve(static_cast<std::size_t>(survivors));
  for (std::size_t j = 0; j < n; ++j) {
    if (traces[j].back() >= level) surv.push_back(j);
  }
  std::vector<Lineage> next;
  next.reserve(n);
  for (std::size_t j = 0; j < n; ++j) {
    const std::size_t parent = surv[j % surv.size()];
    const std::vector<double>& trace = traces[parent];
    std::size_t cross = 0;
    while (trace[cross] < level) ++cross;  // guaranteed: back() >= level
    Lineage child;
    for (const LineageEntry& entry : state.frontier[parent]) {
      if (entry.from_step > cross) break;  // lineage steps are increasing
      child.push_back(entry);
    }
    // cross + 1 <= steps always holds (cross indexes the trace), and a
    // from_step == steps entry is a valid no-op: a parent that crossed at
    // the very last step clones to an exact replay of itself.
    child.push_back({cross + 1, trial_seed(batch_seed, stage + 1, j)});
    next.push_back(std::move(child));
  }
  state.frontier = std::move(next);
}

SplitState SplitRunner::run() {
  SplitState state;
  while (!state.done) advance(state);
  return state;
}

// ---------------------------------------------------------------- rare1d

double rare1d_step_p(const Rare1dParams& p) {
  OIC_REQUIRE(p.sigma > 0.0, "rare1d: sigma must be positive");
  OIC_REQUIRE(p.hits >= 1, "rare1d: need at least one hit");
  OIC_REQUIRE(std::isfinite(p.c) && std::isfinite(p.threshold),
              "rare1d: parameters must be finite");
  const auto upper_tail = [](double z) {
    return 0.5 * std::erfc(z / std::sqrt(2.0));
  };
  return 0.5 * (upper_tail((p.threshold - p.c) / p.sigma) +
                upper_tail((p.threshold + p.c) / p.sigma));
}

double rare1d_episode_p(const Rare1dParams& p, std::size_t steps) {
  OIC_REQUIRE(steps >= 1, "rare1d: need at least one step");
  const double ps = rare1d_step_p(p);
  if (p.hits > steps) return 0.0;
  if (ps <= 0.0) return 0.0;
  if (ps >= 1.0) return 1.0;
  // Exact binomial tail P(Bin(steps, ps) >= hits): dominant term P(= hits)
  // in log space, then the exact term-ratio recursion upward.  Every term
  // is positive, so the sum keeps full relative precision at 1e-8 scales.
  const double n = static_cast<double>(steps);
  const double k = static_cast<double>(p.hits);
  double term = std::exp(std::lgamma(n + 1.0) - std::lgamma(k + 1.0) -
                         std::lgamma(n - k + 1.0) + k * std::log(ps) +
                         (n - k) * std::log1p(-ps));
  double sum = term;
  const double odds = ps / (1.0 - ps);
  for (std::uint64_t j = p.hits; j < steps; ++j) {
    term *= (n - static_cast<double>(j)) / (static_cast<double>(j) + 1.0) * odds;
    sum += term;
    if (term < sum * 1e-18) break;
  }
  return std::min(1.0, sum);
}

namespace {

class Rare1dProcess final : public SplitProcess {
 public:
  Rare1dProcess(const Rare1dParams& params, std::size_t steps)
      : p_(params), steps_(steps) {
    OIC_REQUIRE(steps_ >= 1, "rare1d: need at least one step");
    (void)rare1d_step_p(p_);  // parameter validation
  }

  std::size_t steps() const override { return steps_; }

  void trace(const Lineage& lineage, std::vector<double>& levels) override {
    validate_lineage(lineage, steps_);
    levels.assign(steps_, 0.0);
    Rng rng(lineage[0].seed);
    std::size_t next = 1;
    const double denom = static_cast<double>(p_.hits);
    std::uint64_t count = 0;  // hit steps so far -- the persistent state
    for (std::size_t t = 0; t < steps_; ++t) {
      if (next < lineage.size() && lineage[next].from_step == t) {
        rng = Rng(lineage[next].seed);
        ++next;
      }
      const double s = rng.bernoulli(0.5) ? 1.0 : -1.0;
      const double x = p_.c * s + p_.sigma * rng.normal(0.0, 1.0);
      if (x >= p_.threshold) ++count;
      levels[t] = (static_cast<double>(count) - denom) / denom;
    }
  }

 private:
  Rare1dParams p_;
  std::size_t steps_;
};

}  // namespace

std::unique_ptr<SplitProcess> make_rare1d_process(const Rare1dParams& params,
                                                  std::size_t steps) {
  return std::make_unique<Rare1dProcess>(params, steps);
}

// ---------------------------------------------------------------- plants

namespace {

class PlantSplitProcess final : public SplitProcess {
 public:
  PlantSplitProcess(const eval::PlantCase& plant, ScenarioFamily family,
                    std::unique_ptr<core::SkipPolicy> policy, std::size_t steps)
      : plant_(plant),
        family_(std::move(family)),
        policy_(std::move(policy)),
        engine_(plant, policy_ ? *policy_ : static_cast<core::SkipPolicy&>(baseline_)),
        level_(plant.sets().x),
        steps_(steps) {
    OIC_REQUIRE(steps_ >= 1, "PlantSplitProcess: need at least one step");
  }

  std::size_t steps() const override { return steps_; }

  void trace(const Lineage& lineage, std::vector<double>& levels) override {
    validate_lineage(lineage, steps_);
    // The root stream replays a campaign episode exactly (same split()
    // order as the campaign loop: family.sample, then make_case's x0 and
    // profile splits), so a single-entry lineage IS the campaign episode
    // of that seed.  Clone entries swap the profile's stream only -- the
    // scenario parameters, x0, and the signal prefix stay the parent's.
    Rng ep(lineage[0].seed);
    const eval::Scenario scenario = family_.sample(ep);
    OIC_REQUIRE(scenario.profile && scenario.profile->supports_reseed(),
                "PlantSplitProcess: family profile cannot be reseeded");
    eval::CaseData data;
    Rng x0_rng = ep.split();
    data.x0 = plant_.sample_x0(x0_rng);
    std::unique_ptr<sim::VelocityProfile> profile = scenario.profile->clone();
    profile->reset(ep.split());
    data.signal.reserve(steps_);
    std::size_t next = 1;
    for (std::size_t t = 0; t < steps_; ++t) {
      if (next < lineage.size() && lineage[next].from_step == t) {
        profile->reseed(Rng(lineage[next].seed));
        ++next;
      }
      data.signal.push_back(profile->next());
    }

    levels.assign(steps_, 0.0);
    double running = level_(data.x0);
    engine_.set_observer([&](std::size_t t, const linalg::Vector& x) {
      running = std::max(running, level_(x));
      levels[t] = running;
    });
    (void)engine_.run(data);
    engine_.set_observer({});
  }

 private:
  const eval::PlantCase& plant_;
  ScenarioFamily family_;
  std::unique_ptr<core::SkipPolicy> policy_;  // null = baseline
  core::AlwaysRunPolicy baseline_;
  eval::EpisodeEngine engine_;
  LevelFunction level_;
  std::size_t steps_;
};

}  // namespace

std::unique_ptr<SplitProcess> make_plant_split_process(
    const eval::PlantCase& plant, ScenarioFamily family,
    std::unique_ptr<core::SkipPolicy> policy, std::size_t steps) {
  return std::make_unique<PlantSplitProcess>(plant, std::move(family),
                                             std::move(policy), steps);
}

}  // namespace oic::mc
