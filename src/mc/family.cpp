#include "mc/family.hpp"

#include <cmath>
#include <memory>
#include <utility>

#include "common/error.hpp"

namespace oic::mc {

namespace {

constexpr double kTwoPi = 6.283185307179586;

/// Draw `count` sine components whose amplitudes sum to `budget`:
/// unnormalized weights first, then one scale, so relative shapes and the
/// total excursion are independent draws.  Periods span 8..120 steps --
/// from near the skip-policy's reaction time to several episode lengths.
std::vector<SineComponent> draw_sines(Rng& rng, int count, double budget) {
  std::vector<double> weights;
  double total = 0.0;
  for (int i = 0; i < count; ++i) {
    weights.push_back(rng.uniform(0.2, 1.0));
    total += weights.back();
  }
  std::vector<SineComponent> sines;
  for (int i = 0; i < count; ++i) {
    SineComponent s;
    s.amplitude = budget * weights[static_cast<std::size_t>(i)] / total;
    s.omega = kTwoPi / rng.uniform(8.0, 120.0);
    s.phase = rng.uniform(0.0, kTwoPi);
    sines.push_back(s);
  }
  return sines;
}

}  // namespace

ScenarioFamily::ScenarioFamily(std::string id, std::string description,
                               FamilyKind kind, eval::SignalBand band)
    : id_(std::move(id)),
      description_(std::move(description)),
      kind_(kind),
      band_(band) {
  OIC_REQUIRE(!id_.empty(), "ScenarioFamily: empty id");
  OIC_REQUIRE(band_.hi > band_.lo, "ScenarioFamily: degenerate signal band");
}

eval::Scenario ScenarioFamily::sample(Rng& rng) const {
  const double h = band_.halfwidth();
  MixtureParams p;
  p.label = id_;
  p.center = band_.center();
  p.lo = band_.lo;
  p.hi = band_.hi;

  // Each kind draws its parameters in a fixed order (determinism contract;
  // see header).  Magnitudes are fractions of the halfwidth, so the same
  // family stresses the ACC's 10 m/s speed window and a 0.5 m/s^2 gust
  // band proportionally.
  switch (kind_) {
    case FamilyKind::kSineMix: {
      const int count = rng.uniform_int(1, 3);
      const double budget = 0.85 * h * rng.uniform(0.5, 1.0);
      p.sines = draw_sines(rng, count, budget);
      p.noise_gain = h * rng.uniform(0.05, 0.15);
      p.noise_alpha = rng.uniform(0.4, 0.9);
      break;
    }
    case FamilyKind::kFilteredNoise: {
      p.noise_gain = h * rng.uniform(0.5, 1.0);
      p.noise_alpha = rng.uniform(0.7, 0.98);
      break;
    }
    case FamilyKind::kBursts: {
      p.sines = draw_sines(rng, 1, 0.2 * h * rng.uniform(0.3, 1.0));
      p.noise_gain = h * rng.uniform(0.02, 0.08);
      p.noise_alpha = rng.uniform(0.4, 0.8);
      p.burst_rate = rng.uniform(0.01, 0.06);
      p.burst_len_min = 3;
      p.burst_len_max = static_cast<std::size_t>(rng.uniform_int(6, 20));
      p.burst_amp = h * rng.uniform(0.4, 0.8);
      break;
    }
    case FamilyKind::kRamps: {
      p.noise_gain = h * rng.uniform(0.02, 0.08);
      p.noise_alpha = rng.uniform(0.4, 0.8);
      p.ramp_rate = rng.uniform(0.02, 0.08);
      p.ramp_span = h * rng.uniform(0.5, 0.9);
      p.ramp_slew = h * rng.uniform(0.03, 0.12);
      break;
    }
    case FamilyKind::kMixed: {
      const int count = rng.uniform_int(1, 2);
      p.sines = draw_sines(rng, count, 0.4 * h * rng.uniform(0.4, 1.0));
      p.noise_gain = h * rng.uniform(0.1, 0.3);
      p.noise_alpha = rng.uniform(0.6, 0.95);
      p.burst_rate = rng.uniform(0.005, 0.03);
      p.burst_len_min = 3;
      p.burst_len_max = static_cast<std::size_t>(rng.uniform_int(6, 15));
      p.burst_amp = h * rng.uniform(0.2, 0.4);
      p.ramp_rate = rng.uniform(0.01, 0.05);
      p.ramp_span = 0.3 * h;
      p.ramp_slew = 0.05 * h;
      break;
    }
  }
  return eval::Scenario(id_, description_, std::make_unique<MixtureProfile>(p));
}

std::vector<std::string> standard_family_ids() {
  return {"sine-mix", "filtered-noise", "bursts", "ramps", "mixed"};
}

std::vector<ScenarioFamily> standard_families(const eval::SignalBand& band) {
  return {
      ScenarioFamily("sine-mix", "bounded mixture of 1..3 sines + light noise",
                     FamilyKind::kSineMix, band),
      ScenarioFamily("filtered-noise", "one-pole filtered white noise over the band",
                     FamilyKind::kFilteredNoise, band),
      ScenarioFamily("bursts", "quiet base + random constant-offset bursts",
                     FamilyKind::kBursts, band),
      ScenarioFamily("ramps", "slew-limited walk between random targets",
                     FamilyKind::kRamps, band),
      ScenarioFamily("mixed", "moderated superposition of all family shapes",
                     FamilyKind::kMixed, band),
  };
}

ScenarioFamily family_by_id(const eval::SignalBand& band, const std::string& id) {
  for (auto& fam : standard_families(band)) {
    if (fam.id() == id) return fam;
  }
  std::string known;
  for (const auto& fid : standard_family_ids()) {
    if (!known.empty()) known += ", ";
    known += fid;
  }
  throw PreconditionError("unknown scenario family '" + id + "' (known: " + known +
                          ")");
}

}  // namespace oic::mc
