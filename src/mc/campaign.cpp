#include "mc/campaign.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <istream>
#include <memory>
#include <ostream>
#include <sstream>
#include <thread>
#include <utility>

#include "cert/store.hpp"
#include "common/buildinfo.hpp"
#include "common/error.hpp"
#include "common/hash.hpp"
#include "common/jsonout.hpp"
#include "common/parallel.hpp"
#include "eval/engine.hpp"
#include "eval/sweep.hpp"

namespace oic::mc {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Resolved campaign grid: plant-major (plant, family) cells.
struct Grid {
  std::vector<std::string> plants;
  std::vector<std::string> families;
  std::size_t cells() const { return plants.size() * families.size(); }
};

Grid resolve_grid(const eval::ScenarioRegistry& registry, const CampaignSpec& spec) {
  Grid grid;
  // Defaulted grids take the production catalogue only: test-only plants
  // (the rare1d analytic bed) must be named explicitly.
  grid.plants = spec.plants.empty() ? registry.production_plant_ids() : spec.plants;
  OIC_REQUIRE(!grid.plants.empty(), "run_campaign: registry is empty");
  for (const auto& pid : grid.plants) (void)registry.plant(pid);  // typo check
  const bool rare = std::find(grid.plants.begin(), grid.plants.end(),
                              std::string(kRare1dPlantId)) != grid.plants.end();
  if (rare) {
    // The analytic bed has no real scenario families (its episodes are
    // i.i.d. by construction); it forms exactly one cell.
    OIC_REQUIRE(grid.plants.size() == 1,
                "run_campaign: the rare1d analytic bed cannot share a grid "
                "with other plants");
    grid.families = spec.families.empty() ? std::vector<std::string>{"analytic"}
                                          : spec.families;
    OIC_REQUIRE(grid.families == std::vector<std::string>{"analytic"},
                "run_campaign: rare1d supports only the 'analytic' "
                "pseudo-family");
    return grid;
  }
  grid.families = spec.families.empty() ? standard_family_ids() : spec.families;
  // Families are band-generic; validate the ids once against any band.
  const eval::SignalBand& band = registry.plant(grid.plants.front()).signal_band;
  for (const auto& fid : grid.families) (void)family_by_id(band, fid);
  return grid;
}

void check_token(const std::string& s, const char* what) {
  OIC_REQUIRE(!s.empty() && s.find_first_of(" \t\n\r") == std::string::npos,
              std::string("mc checkpoint: ") + what +
                  " must be a non-empty whitespace-free token, got '" + s + "'");
}

void write_welford(std::ostream& os, const Welford& w) {
  os << ' ' << w.count() << ' ' << w.mean() << ' ' << w.m2();
  if (w.count() > 0) {
    os << ' ' << w.min() << ' ' << w.max();
  } else {
    os << " 0 0";
  }
}

Welford read_welford(std::istream& is) {
  std::uint64_t n = 0;
  double mean = 0.0, m2 = 0.0, lo = 0.0, hi = 0.0;
  if (!(is >> n >> mean >> m2 >> lo >> hi)) {
    throw NumericalError("mc checkpoint: truncated accumulator");
  }
  // Same discipline as cert::io / rl::serialize: no legitimate
  // accumulator state is non-finite, and istream acceptance of
  // "nan"/"inf" tokens is implementation-defined -- reject explicitly so
  // a corrupted checkpoint cannot poison resumed statistics.
  if (!std::isfinite(mean) || !std::isfinite(m2) || !std::isfinite(lo) ||
      !std::isfinite(hi)) {
    throw NumericalError("mc checkpoint: non-finite accumulator value");
  }
  return Welford(n, mean, m2, lo, hi);
}

void write_policy_stats(std::ostream& os, const PolicyStats& ps) {
  check_token(ps.name, "policy name");
  os << "stats " << ps.name << ' ' << ps.episodes << ' ' << ps.violations << ' '
     << ps.left_x_episodes << ' ' << ps.steps << ' ' << ps.degraded_steps << ' '
     << ps.stale_forced << ' ' << ps.policy_unavail << ' ' << ps.meas_dropped
     << ' ' << ps.act_dropped;
  write_welford(os, ps.saving);
  write_welford(os, ps.cost);
  write_welford(os, ps.skipped);
  write_welford(os, ps.degraded);
  os << '\n';
}

PolicyStats read_policy_stats(std::istream& is) {
  std::string tag;
  PolicyStats ps;
  if (!(is >> tag) || tag != "stats" || !(is >> ps.name)) {
    throw NumericalError("mc checkpoint: expected a stats line");
  }
  if (!(is >> ps.episodes >> ps.violations >> ps.left_x_episodes)) {
    throw NumericalError("mc checkpoint: truncated stats counters");
  }
  if (!(is >> ps.steps >> ps.degraded_steps >> ps.stale_forced >>
        ps.policy_unavail >> ps.meas_dropped >> ps.act_dropped)) {
    throw NumericalError("mc checkpoint: truncated fault counters");
  }
  OIC_REQUIRE(ps.violations <= ps.episodes && ps.left_x_episodes <= ps.violations,
              "mc checkpoint: inconsistent violation counters");
  OIC_REQUIRE(ps.degraded_steps <= ps.steps && ps.stale_forced <= ps.degraded_steps &&
                  ps.policy_unavail <= ps.degraded_steps &&
                  ps.meas_dropped <= ps.steps && ps.act_dropped <= ps.steps,
              "mc checkpoint: inconsistent fault counters");
  ps.saving = read_welford(is);
  ps.cost = read_welford(is);
  ps.skipped = read_welford(is);
  ps.degraded = read_welford(is);
  return ps;
}

double read_finite(std::istream& is, const char* what) {
  double v = 0.0;
  if (!(is >> v)) {
    throw NumericalError(std::string("mc checkpoint: truncated ") + what);
  }
  if (!std::isfinite(v)) {
    throw NumericalError(std::string("mc checkpoint: non-finite ") + what);
  }
  return v;
}

/// Read a level ladder of `n` entries and reject non-monotone / NaN /
/// non-negative ladders (validate_levels) -- a corrupted checkpoint must
/// not seed a nonsense splitting run.
std::vector<double> read_ladder(std::istream& is, std::size_t n, const char* what) {
  if (n > 64) {
    throw NumericalError(std::string("mc checkpoint: oversized ") + what);
  }
  std::vector<double> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(read_finite(is, what));
  validate_levels(out);
  return out;
}

void write_split_cell(std::ostream& os, const SplitCellResult& sc) {
  check_token(sc.plant, "plant id");
  check_token(sc.family, "family id");
  os << "scell " << sc.plant << ' ' << sc.family << ' ' << (sc.falsified ? 1 : 0)
     << ' ' << sc.seeded_levels.size();
  for (double lv : sc.seeded_levels) os << ' ' << lv;
  os << ' ' << sc.units.size() << '\n';
  if (sc.falsified) {
    const FalsifyResult& f = sc.falsify;
    os << "falsify " << f.worst_level << ' ' << (f.violation ? 1 : 0) << ' '
       << f.episodes << ' ' << f.suggested_levels.size();
    for (double lv : f.suggested_levels) os << ' ' << lv;
    os << '\n';
    const MixtureParams& p = f.worst;
    check_token(p.label, "falsify label");
    os << "params " << p.label << ' ' << p.center << ' ' << p.lo << ' ' << p.hi
       << ' ' << p.noise_gain << ' ' << p.noise_alpha << ' ' << p.burst_rate
       << ' ' << p.burst_len_min << ' ' << p.burst_len_max << ' ' << p.burst_amp
       << ' ' << p.ramp_rate << ' ' << p.ramp_span << ' ' << p.ramp_slew << ' '
       << p.sines.size();
    for (const auto& s : p.sines) {
      os << ' ' << s.amplitude << ' ' << s.omega << ' ' << s.phase;
    }
    os << '\n';
  }
  for (const auto& unit : sc.units) {
    check_token(unit.policy, "unit policy name");
    std::uint64_t trials = 0;
    for (const SplitBatch& b : unit.state.batches) {
      trials = std::max(trials, b.estimate.trials);
    }
    os << "unit " << unit.policy << ' ' << (unit.state.done ? 1 : 0) << ' '
       << trials << ' ' << unit.state.batches.size() << '\n';
    for (const SplitBatch& b : unit.state.batches) {
      const SplitEstimate& e = b.estimate;
      os << "batch " << (b.done ? 1 : 0) << ' ' << e.episodes << ' '
         << e.levels.size() << '\n';
      for (std::size_t k = 0; k < e.levels.size(); ++k) {
        os << "stage " << e.levels[k] << ' ' << e.survivors[k] << '\n';
      }
      os << "frontier " << b.frontier.size() << '\n';
      for (const Lineage& lin : b.frontier) {
        os << "lin " << lin.size();
        for (const LineageEntry& le : lin) {
          os << ' ' << le.from_step << ' ' << le.seed;
        }
        os << '\n';
      }
    }
  }
}

SplitCellResult read_split_cell(std::istream& is) {
  std::string tag;
  SplitCellResult sc;
  int falsified = 0;
  std::size_t nseeded = 0;
  if (!(is >> tag) || tag != "scell" ||
      !(is >> sc.plant >> sc.family >> falsified >> nseeded) ||
      (falsified != 0 && falsified != 1)) {
    throw NumericalError("mc checkpoint: bad splitting cell header");
  }
  sc.falsified = falsified == 1;
  sc.seeded_levels = read_ladder(is, nseeded, "seeded ladder");
  std::size_t nunits = 0;
  if (!(is >> nunits) || nunits > 256) {
    throw NumericalError("mc checkpoint: bad splitting unit count");
  }
  if (sc.falsified) {
    FalsifyResult& f = sc.falsify;
    int viol = 0;
    std::size_t nsug = 0;
    if (!(is >> tag) || tag != "falsify") {
      throw NumericalError("mc checkpoint: expected a falsify line");
    }
    f.worst_level = read_finite(is, "falsify objective");
    if (!(is >> viol >> f.episodes >> nsug) || (viol != 0 && viol != 1)) {
      throw NumericalError("mc checkpoint: truncated falsify line");
    }
    f.violation = viol == 1;
    OIC_REQUIRE(f.violation == (f.worst_level >= 0.0),
                "mc checkpoint: falsify violation flag disagrees with the "
                "objective");
    f.suggested_levels = read_ladder(is, nsug, "suggested ladder");
    MixtureParams& p = f.worst;
    if (!(is >> tag) || tag != "params" || !(is >> p.label)) {
      throw NumericalError("mc checkpoint: expected a params line");
    }
    p.center = read_finite(is, "falsify params");
    p.lo = read_finite(is, "falsify params");
    p.hi = read_finite(is, "falsify params");
    p.noise_gain = read_finite(is, "falsify params");
    p.noise_alpha = read_finite(is, "falsify params");
    p.burst_rate = read_finite(is, "falsify params");
    std::size_t nsines = 0;
    if (!(is >> p.burst_len_min >> p.burst_len_max)) {
      throw NumericalError("mc checkpoint: truncated params line");
    }
    p.burst_amp = read_finite(is, "falsify params");
    p.ramp_rate = read_finite(is, "falsify params");
    p.ramp_span = read_finite(is, "falsify params");
    p.ramp_slew = read_finite(is, "falsify params");
    if (!(is >> nsines) || nsines > 16) {
      throw NumericalError("mc checkpoint: bad sine count");
    }
    for (std::size_t i = 0; i < nsines; ++i) {
      SineComponent s;
      s.amplitude = read_finite(is, "sine component");
      s.omega = read_finite(is, "sine component");
      s.phase = read_finite(is, "sine component");
      p.sines.push_back(s);
    }
    // Constructing the profile runs the full MixtureParams validation, so
    // a corrupted parameter vector is rejected here and not at use time.
    (void)MixtureProfile(p);
  }
  for (std::size_t u = 0; u < nunits; ++u) {
    SplitUnitResult unit;
    int done = 0;
    std::uint64_t trials = 0;
    std::size_t nbatches = 0;
    if (!(is >> tag) || tag != "unit" ||
        !(is >> unit.policy >> done >> trials >> nbatches) ||
        (done != 0 && done != 1) || nbatches > 4096) {
      throw NumericalError("mc checkpoint: bad splitting unit header");
    }
    unit.state.done = done == 1;
    OIC_REQUIRE(nbatches == 0 || trials >= 1,
                "mc checkpoint: splitting unit with batches but zero trials");
    OIC_REQUIRE(!unit.state.done || nbatches > 0,
                "mc checkpoint: a done unit must carry its batches");
    for (std::size_t bi = 0; bi < nbatches; ++bi) {
      SplitBatch batch;
      SplitEstimate& e = batch.estimate;
      e.trials = trials;
      int bdone = 0;
      std::size_t nstages = 0;
      if (!(is >> tag) || tag != "batch" ||
          !(is >> bdone >> e.episodes >> nstages) ||
          (bdone != 0 && bdone != 1) || nstages > 4096) {
        throw NumericalError("mc checkpoint: bad splitting batch header");
      }
      batch.done = bdone == 1;
      for (std::size_t k = 0; k < nstages; ++k) {
        std::uint64_t survivors = 0;
        if (!(is >> tag) || tag != "stage") {
          throw NumericalError("mc checkpoint: expected a stage line");
        }
        const double level = read_finite(is, "stage level");
        if (!(is >> survivors)) {
          throw NumericalError("mc checkpoint: truncated stage line");
        }
        OIC_REQUIRE(survivors <= e.trials,
                    "mc checkpoint: stage survivors exceed the trial count");
        OIC_REQUIRE(level <= 0.0, "mc checkpoint: stage level above the boundary");
        OIC_REQUIRE(e.levels.empty() || level > e.levels.back(),
                    "mc checkpoint: stage ladder must be strictly increasing");
        e.levels.push_back(level);
        e.survivors.push_back(survivors);
      }
      std::size_t nfront = 0;
      if (!(is >> tag) || tag != "frontier" || !(is >> nfront) || nfront > 65536) {
        throw NumericalError("mc checkpoint: bad frontier header");
      }
      OIC_REQUIRE(nfront == 0 || nfront == e.trials,
                  "mc checkpoint: frontier size must be 0 or the trial count");
      OIC_REQUIRE(!batch.done || nfront == 0,
                  "mc checkpoint: a done batch cannot carry a frontier");
      for (std::size_t j = 0; j < nfront; ++j) {
        std::size_t nentries = 0;
        if (!(is >> tag) || tag != "lin" || !(is >> nentries) || nentries > 4096) {
          throw NumericalError("mc checkpoint: bad lineage header");
        }
        Lineage lin;
        lin.reserve(nentries);
        for (std::size_t i = 0; i < nentries; ++i) {
          LineageEntry le;
          if (!(is >> le.from_step >> le.seed)) {
            throw NumericalError("mc checkpoint: truncated lineage");
          }
          lin.push_back(le);
        }
        // Structural validation only; the episode-length bound is enforced
        // against the resuming spec in run_campaign.
        validate_lineage(lin, static_cast<std::size_t>(1) << 20);
        batch.frontier.push_back(std::move(lin));
      }
      OIC_REQUIRE(!unit.state.done || batch.done,
                  "mc checkpoint: a done unit cannot carry an unfinished batch");
      unit.state.batches.push_back(std::move(batch));
    }
    sc.units.push_back(std::move(unit));
  }
  return sc;
}

/// Accumulate the fault accounting of one episode (all zero when the
/// campaign runs fault-free, so the counters stay zero there).
void add_fault_accounting(PolicyStats& ps, const eval::EpisodeResult& r) {
  ps.degraded.add(static_cast<double>(r.degraded_steps));
  ps.steps += r.steps;
  ps.degraded_steps += r.degraded_steps;
  ps.stale_forced += r.stale_forced;
  ps.policy_unavail += r.policy_unavail;
  ps.meas_dropped += r.meas_dropped;
  ps.act_dropped += r.act_dropped;
}

/// Accumulate one baseline episode result.
void add_baseline(PolicyStats& ps, const eval::EpisodeResult& r) {
  ps.cost.add(r.fuel);
  ps.skipped.add(static_cast<double>(r.skipped));
  if (r.left_x || r.left_xi) ++ps.violations;
  if (r.left_x) ++ps.left_x_episodes;
  ++ps.episodes;
  add_fault_accounting(ps, r);
}

/// Accumulate one policy episode result (paired against `base`).
void add_policy(PolicyStats& ps, const eval::EpisodeResult& base,
                const eval::EpisodeResult& r) {
  ps.saving.add(eval::fuel_saving(base, r));
  ps.cost.add(r.fuel);
  ps.skipped.add(static_cast<double>(r.skipped));
  if (r.left_x || r.left_xi) ++ps.violations;
  if (r.left_x) ++ps.left_x_episodes;
  ++ps.episodes;
  add_fault_accounting(ps, r);
}

void merge_cell(CellStats& into, const CellStats& block) {
  into.baseline.merge(block.baseline);
  OIC_CHECK(into.policies.size() == block.policies.size(),
            "merge_cell: policy count drifted");
  for (std::size_t p = 0; p < into.policies.size(); ++p) {
    into.policies[p].merge(block.policies[p]);
  }
}

/// Per-worker evaluation context: one policy set plus one EpisodeEngine
/// per policy (and the always-run baseline).  Engine construction runs
/// the nesting-verification LPs and drl:<path> policies re-read their
/// agent file, so contexts are built lazily per worker slot and reused
/// across every round of a cell -- engines reset all carried state per
/// run, which is exactly the bit-parity contract that makes reuse safe.
struct WorkerCtx {
  std::vector<std::unique_ptr<core::SkipPolicy>> policies;
  core::AlwaysRunPolicy baseline;
  eval::EpisodeEngine base_engine;
  std::vector<std::unique_ptr<eval::EpisodeEngine>> engines;

  WorkerCtx(const eval::PlantCase& plant, const eval::PolicySetFactory& factory,
            std::size_t num_policies, const fault::FaultSpec& faults)
      : policies(factory()), base_engine(plant, baseline, faults) {
    OIC_REQUIRE(policies.size() == num_policies,
                "run_campaign: policy factory is not stable");
    engines.reserve(policies.size());
    for (auto& p : policies) {
      engines.push_back(std::make_unique<eval::EpisodeEngine>(plant, *p, faults));
    }
  }
};

/// Emit one Welford + CI group: {"mean":, "stddev":, "min":, "max":,
/// "ci95": [lo, hi]}.
void append_welford_json(std::string& out, const Welford& w) {
  using jsonout::append_format;
  append_format(out, "{\"mean\": %.17g, \"stddev\": %.17g, ", w.mean(), w.stddev());
  append_format(out, "\"min\": %.17g, \"max\": %.17g, ", w.min(), w.max());
  const Interval ci = normal_interval(w);
  append_format(out, "\"ci95\": [%.17g, %.17g]}", ci.lo, ci.hi);
}

/// Emit the violation counters + Wilson interval fields shared by the
/// baseline and policy objects.
void append_violation_json(std::string& out, const PolicyStats& ps) {
  using jsonout::append_format;
  append_format(out, "\"violations\": %llu, \"left_x_episodes\": %llu, ",
                static_cast<unsigned long long>(ps.violations),
                static_cast<unsigned long long>(ps.left_x_episodes));
  const Interval wilson = wilson_interval(ps.violations, ps.episodes);
  append_format(out, "\"violation_rate\": %.17g, \"violation_ci95\": [%.17g, %.17g]",
                ps.violation_rate(), wilson.lo, wilson.hi);
}

/// Emit the per-step fault accounting: raw counters plus the Wilson
/// interval of the degraded-step rate over all aggregated control periods
/// (all zeros on fault-free campaigns -- the keys are unconditional so one
/// schema covers both modes).
void append_fault_json(std::string& out, const PolicyStats& ps) {
  using jsonout::append_format;
  append_format(out,
                "\"steps\": %llu, \"degraded_steps\": %llu, "
                "\"stale_forced\": %llu, \"policy_unavail\": %llu, "
                "\"meas_dropped\": %llu, \"act_dropped\": %llu, ",
                static_cast<unsigned long long>(ps.steps),
                static_cast<unsigned long long>(ps.degraded_steps),
                static_cast<unsigned long long>(ps.stale_forced),
                static_cast<unsigned long long>(ps.policy_unavail),
                static_cast<unsigned long long>(ps.meas_dropped),
                static_cast<unsigned long long>(ps.act_dropped));
  const Interval wilson = wilson_interval(ps.degraded_steps, ps.steps);
  append_format(out, "\"degraded_rate\": %.17g, \"degraded_ci95\": [%.17g, %.17g]",
                ps.degraded_rate(), wilson.lo, wilson.hi);
}

void append_double_array(std::string& out, const std::vector<double>& v) {
  out += '[';
  for (std::size_t i = 0; i < v.size(); ++i) {
    jsonout::append_format(out, i ? ", %.17g" : "%.17g", v[i]);
  }
  out += ']';
}

void append_u64_array(std::string& out, const std::vector<std::uint64_t>& v) {
  out += '[';
  for (std::size_t i = 0; i < v.size(); ++i) {
    jsonout::append_format(out, i ? ", %llu" : "%llu",
                           static_cast<unsigned long long>(v[i]));
  }
  out += ']';
}

}  // namespace

void PolicyStats::merge(const PolicyStats& other) {
  OIC_CHECK(name == other.name, "PolicyStats::merge: policy name mismatch");
  saving.merge(other.saving);
  cost.merge(other.cost);
  skipped.merge(other.skipped);
  degraded.merge(other.degraded);
  violations += other.violations;
  left_x_episodes += other.left_x_episodes;
  episodes += other.episodes;
  degraded_steps += other.degraded_steps;
  stale_forced += other.stale_forced;
  policy_unavail += other.policy_unavail;
  meas_dropped += other.meas_dropped;
  act_dropped += other.act_dropped;
  steps += other.steps;
}

std::uint64_t spec_fingerprint(const eval::ScenarioRegistry& registry,
                               const CampaignSpec& spec) {
  const Grid grid = resolve_grid(registry, spec);
  Fnv1a h;
  h.str("oic-mc");
  h.u64(spec.seed);
  h.u64(spec.episodes);
  h.u64(spec.steps);
  h.u64(spec.block);
  h.u64(grid.plants.size());
  for (const auto& pid : grid.plants) h.str(pid);
  h.u64(grid.families.size());
  for (const auto& fid : grid.families) h.str(fid);
  h.u64(spec.policies.size());
  for (const auto& p : spec.policies) h.str(p);
  // The CANONICAL fault string, so equal fault models always fingerprint
  // equally regardless of CLI spelling ("" for fault-free campaigns).  A
  // lossless checkpoint can then never resume a lossy campaign.
  h.str(registry.resolve_faults(spec.faults).canonical());
  // Rare-event mode joins the fingerprint only when active, so every
  // pre-splitting checkpoint keeps its historical fingerprint.
  if (spec.splitting || spec.falsify) {
    h.str("split");
    h.u64(spec.splitting ? 1 : 0);
    h.u64(spec.falsify ? 1 : 0);
    h.u64(spec.split_trials);
    h.u64(spec.split_batches);
    h.u64(spec.split_stages);
    h.f64(spec.split_quantile);
    h.u64(spec.levels.size());
    for (double lv : spec.levels) h.f64(lv);
    h.u64(spec.falsify_iterations);
    h.u64(spec.falsify_population);
    h.u64(spec.falsify_elites);
    h.u64(spec.falsify_probes);
  }
  return h.value();
}

void save_checkpoint(const Checkpoint& ck, std::ostream& os) {
  os << "oic-mc-checkpoint v2\n";
  os << std::setprecision(17);
  os << "fingerprint " << ck.fingerprint << '\n';
  os << "cells " << ck.cells.size() << '\n';
  for (const auto& cell : ck.cells) {
    check_token(cell.plant, "plant id");
    check_token(cell.family, "family id");
    os << "cell " << cell.plant << ' ' << cell.family << ' ' << cell.blocks_done
       << ' ' << cell.episodes << ' ' << cell.policies.size() << '\n';
    write_policy_stats(os, cell.baseline);
    for (const auto& ps : cell.policies) write_policy_stats(os, ps);
  }
  if (!ck.split_cells.empty()) {
    os << "splitting " << ck.split_cells.size() << '\n';
    for (const auto& sc : ck.split_cells) write_split_cell(os, sc);
  }
  os << "end\n";
  if (!os) throw NumericalError("save_checkpoint: stream write failed");
}

Checkpoint load_checkpoint(std::istream& is) {
  std::string magic, version;
  is >> magic >> version;
  if (!is || magic != "oic-mc-checkpoint" || version != "v2") {
    throw NumericalError("load_checkpoint: bad magic/version header (v2 "
                         "required; v1 checkpoints predate fault accounting "
                         "-- delete and rerun)");
  }
  std::string tag;
  Checkpoint ck;
  if (!(is >> tag >> ck.fingerprint) || tag != "fingerprint") {
    throw NumericalError("load_checkpoint: missing fingerprint");
  }
  std::size_t cells = 0;
  if (!(is >> tag >> cells) || tag != "cells" || cells > 65536) {
    throw NumericalError("load_checkpoint: bad cell count");
  }
  for (std::size_t c = 0; c < cells; ++c) {
    CellStats cell;
    std::size_t policies = 0;
    if (!(is >> tag) || tag != "cell" ||
        !(is >> cell.plant >> cell.family >> cell.blocks_done >> cell.episodes >>
          policies) ||
        policies > 256) {
      throw NumericalError("load_checkpoint: bad cell header");
    }
    cell.baseline = read_policy_stats(is);
    for (std::size_t p = 0; p < policies; ++p) {
      cell.policies.push_back(read_policy_stats(is));
    }
    ck.cells.push_back(std::move(cell));
  }
  if (!(is >> tag)) {
    throw NumericalError("load_checkpoint: truncated document (missing end)");
  }
  if (tag == "splitting") {
    std::size_t n = 0;
    if (!(is >> n) || n > 65536) {
      throw NumericalError("load_checkpoint: bad splitting cell count");
    }
    for (std::size_t c = 0; c < n; ++c) {
      ck.split_cells.push_back(read_split_cell(is));
    }
    if (!(is >> tag)) {
      throw NumericalError("load_checkpoint: truncated document (missing end)");
    }
  }
  if (tag != "end") {
    throw NumericalError("load_checkpoint: truncated document (missing end)");
  }
  return ck;
}

void save_checkpoint_file(const Checkpoint& ck, const std::string& path) {
  // Temp-file rename, so a crash (or any failure below) never destroys the
  // previous resumable state (the same discipline as cert::Store::persist):
  // `path` is only ever replaced by a complete, flushed document, and a
  // failed attempt removes its temp file instead of leaking it.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::trunc);
    if (!os) {
      throw NumericalError("save_checkpoint_file: cannot open '" + tmp +
                           "' (unwritable directory?); the previous checkpoint, "
                           "if any, is intact");
    }
    try {
      save_checkpoint(ck, os);
      os.flush();
      if (!os) {
        throw NumericalError("save_checkpoint_file: write to '" + tmp +
                             "' failed (disk full?); the previous checkpoint, "
                             "if any, is intact");
      }
    } catch (...) {
      os.close();
      std::error_code rm;
      std::filesystem::remove(tmp, rm);  // best effort; the throw wins
      throw;
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::error_code rm;
    std::filesystem::remove(tmp, rm);
    throw NumericalError("save_checkpoint_file: rename to '" + path +
                         "' failed: " + ec.message() +
                         "; the previous checkpoint, if any, is intact");
  }
}

Checkpoint load_checkpoint_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw NumericalError("load_checkpoint_file: cannot open " + path);
  return load_checkpoint(is);
}

namespace {

/// The rare-event campaign body (spec.splitting || spec.falsify): per
/// (plant, family) cell, optionally run the CE falsifier, then estimate
/// each unit (always-run baseline + every policy; the rare1d bed has one
/// analytic unit) by fixed-effort splitting.  The checkpoint granularity
/// is one splitting stage (or one falsifier run), and max_blocks counts
/// stages -- the determinism contract of the crude campaign carries over
/// because every trajectory is a pure function of (seed, cell, unit,
/// stage, trial).
CampaignResult run_split_campaign(const eval::ScenarioRegistry& registry,
                                  const CampaignSpec& spec) {
  OIC_REQUIRE(spec.steps >= 1, "run_campaign: need at least one step");
  OIC_REQUIRE(spec.split_trials >= 1,
              "run_campaign: need at least one splitting trial per stage");
  OIC_REQUIRE(spec.split_stages >= 1,
              "run_campaign: need at least one splitting stage");
  OIC_REQUIRE(spec.split_quantile > 0.0 && spec.split_quantile < 1.0,
              "run_campaign: split quantile must lie in (0, 1)");
  validate_levels(spec.levels);
  OIC_REQUIRE(spec.max_blocks == 0 || !spec.checkpoint.empty(),
              "run_campaign: max_blocks without a checkpoint discards the "
              "executed blocks; set spec.checkpoint to make slices resumable");
  const fault::FaultSpec faults = registry.resolve_faults(spec.faults);
  OIC_REQUIRE(!faults.active(),
              "run_campaign: splitting/falsification requires fault-free "
              "episodes (lineage replay carries no fault-stream hand-off)");

  const Grid grid = resolve_grid(registry, spec);
  const bool rare = grid.plants.front() == kRare1dPlantId;
  OIC_REQUIRE(spec.splitting || !rare,
              "run_campaign: the rare1d analytic bed is splitting-only "
              "(enable spec.splitting)");

  const eval::PolicySetFactory factory = eval::make_policy_factory(spec.policies);
  const std::size_t num_policies = spec.policies.size();
  std::vector<std::string> policy_names;
  if (!rare) {
    eval::require_policies_trained_for(spec.policies, grid.plants, "run_campaign");
    const auto probe = factory();
    for (const auto& p : probe) policy_names.push_back(p->name());
  }

  std::unique_ptr<cert::Store> store;
  cert::Provider provider;
  if (!spec.cert_dir.empty()) {
    store = std::make_unique<cert::Store>(spec.cert_dir);
    provider = store->provider();
  }

  const std::uint64_t fingerprint = spec_fingerprint(registry, spec);
  Checkpoint restored;
  bool have_checkpoint = false;
  if (!spec.checkpoint.empty() && std::filesystem::exists(spec.checkpoint)) {
    restored = load_checkpoint_file(spec.checkpoint);
    OIC_REQUIRE(restored.fingerprint == fingerprint,
                "run_campaign: checkpoint '" + spec.checkpoint +
                    "' belongs to a different campaign (fingerprint mismatch); "
                    "delete it or fix the spec");
    have_checkpoint = true;
  }

  CampaignResult out;
  out.faults = faults;
  const auto t0 = Clock::now();
  std::unique_ptr<eval::PlantCase> plant;
  std::string plant_built;
  std::size_t cell_index = 0;
  std::uint64_t budget_used = 0;
  bool stopped = false;

  const auto write_ck = [&](const SplitCellResult& current) {
    if (spec.checkpoint.empty()) return;
    Checkpoint ck;
    ck.fingerprint = fingerprint;
    ck.split_cells = out.split_cells;
    ck.split_cells.push_back(current);
    save_checkpoint_file(ck, spec.checkpoint);
  };
  const auto budget_tick = [&] {
    ++budget_used;
    if (spec.max_blocks > 0 && budget_used >= spec.max_blocks) stopped = true;
  };

  for (const auto& pid : grid.plants) {
    const eval::PlantInfo& info = registry.plant(pid);
    for (const auto& fid : grid.families) {
      SplitCellResult cell;
      if (have_checkpoint && cell_index < restored.split_cells.size()) {
        cell = restored.split_cells[cell_index];
        OIC_REQUIRE(cell.plant == pid && cell.family == fid,
                    "run_campaign: checkpoint cell grid mismatch");
        if (cell.falsified) ++out.resumed_blocks;
        for (const auto& unit : cell.units) {
          out.resumed_blocks += unit.state.stages_done();
          for (const SplitBatch& batch : unit.state.batches) {
            for (const Lineage& lin : batch.frontier) {
              validate_lineage(lin, spec.steps);
            }
          }
        }
      } else {
        cell.plant = pid;
        cell.family = fid;
      }
      const std::uint64_t cell_seed = derive_stream(spec.seed, cell_index);

      if (rare) {
        cell.p_true = rare1d_episode_p(Rare1dParams{}, spec.steps);
        if (cell.units.empty()) cell.units.push_back({"analytic", {}});
        OIC_REQUIRE(cell.units.size() == 1 && cell.units[0].policy == "analytic",
                    "run_campaign: checkpoint unit set mismatch");
        cell.seeded_levels = spec.levels;
      } else {
        if (plant_built != pid) {
          plant = info.make_plant(provider);
          plant_built = pid;
        }
        const ScenarioFamily family = family_by_id(info.signal_band, fid);
        if (spec.falsify && !cell.falsified && !stopped) {
          FalsifyConfig fc;
          fc.iterations = spec.falsify_iterations;
          fc.population = spec.falsify_population;
          fc.elites = spec.falsify_elites;
          fc.probes = spec.falsify_probes;
          fc.steps = spec.steps;
          fc.workers = spec.workers;
          // Own stream tag, so falsification never perturbs unit seeds.
          fc.seed = derive_stream(cell_seed, 0xFA15);
          cell.falsify = run_falsification(*plant, family, factory, fc);
          cell.falsified = true;
          out.episodes_run += cell.falsify.episodes;
          write_ck(cell);
          budget_tick();
        }
        if (spec.splitting) {
          if (cell.units.empty()) {
            cell.units.push_back({"always-run", {}});
            for (const auto& name : policy_names) cell.units.push_back({name, {}});
          }
          OIC_REQUIRE(cell.units.size() == 1 + num_policies &&
                          cell.units[0].policy == "always-run",
                      "run_campaign: checkpoint unit set mismatch");
          for (std::size_t p = 0; p < num_policies; ++p) {
            OIC_REQUIRE(cell.units[1 + p].policy == policy_names[p],
                        "run_campaign: checkpoint policy set mismatch");
          }
          if (cell.seeded_levels.empty()) {
            cell.seeded_levels = !spec.levels.empty()
                                     ? spec.levels
                                     : (cell.falsified
                                            ? cell.falsify.suggested_levels
                                            : std::vector<double>{});
          }
        }
      }

      if (spec.splitting) {
        for (std::size_t u = 0; u < cell.units.size() && !stopped; ++u) {
          SplitUnitResult& unit = cell.units[u];
          if (unit.state.done) continue;
          SplitConfig scfg;
          scfg.trials = spec.split_trials;
          scfg.batches = spec.split_batches;
          scfg.max_stages = spec.split_stages;
          scfg.levels = cell.seeded_levels;
          scfg.quantile = spec.split_quantile;
          scfg.seed = derive_stream(cell_seed, 0x5147 + u);
          scfg.workers = spec.workers;
          SplitProcessFactory pf;
          if (rare) {
            pf = [steps = spec.steps] {
              return make_rare1d_process(Rare1dParams{}, steps);
            };
          } else {
            pf = [&plant = *plant, &factory, u, steps = spec.steps,
                  &info, &fid] {
              const ScenarioFamily fam = family_by_id(info.signal_band, fid);
              std::unique_ptr<core::SkipPolicy> pol;
              if (u > 0) {
                auto set = factory();
                pol = std::move(set[u - 1]);
              }
              return make_plant_split_process(plant, fam, std::move(pol), steps);
            };
          }
          SplitRunner runner(std::move(pf), scfg);
          while (!unit.state.done && !stopped) {
            const std::uint64_t before = unit.state.episodes();
            runner.advance(unit.state);
            out.episodes_run += unit.state.episodes() - before;
            write_ck(cell);
            budget_tick();
          }
        }
      }

      out.split_cells.push_back(std::move(cell));
      ++cell_index;
      if (stopped) break;
    }
    if (stopped) break;
  }

  out.wall_s = seconds_since(t0);
  out.total_steps = out.episodes_run * spec.steps;
  for (const auto& cell : out.split_cells) {
    if (cell.falsified) out.episodes += cell.falsify.episodes;
    const bool analytic = cell.p_true >= 0.0;
    if (cell.falsified && cell.falsify.violation) out.safety_violations = true;
    for (const auto& unit : cell.units) {
      out.episodes += unit.state.episodes();
      // A real plant reaching the violation boundary with a surviving
      // clone is a hard safety violation (Theorem 1 says: never).  The
      // rare1d bed is *supposed* to violate -- that is the ground truth.
      if (analytic) continue;
      for (const SplitBatch& b : unit.state.batches) {
        const SplitEstimate& e = b.estimate;
        if (!e.levels.empty() && e.levels.back() >= 0.0 &&
            e.survivors.back() > 0) {
          out.safety_violations = true;
        }
      }
    }
  }
  return out;
}

}  // namespace

CampaignResult run_campaign(const eval::ScenarioRegistry& registry,
                            const CampaignSpec& spec) {
  if (spec.splitting || spec.falsify) return run_split_campaign(registry, spec);
  OIC_REQUIRE(spec.episodes >= 1, "run_campaign: need at least one episode");
  OIC_REQUIRE(spec.steps >= 1, "run_campaign: need at least one step");
  OIC_REQUIRE(spec.block >= 1, "run_campaign: need a positive block size");
  OIC_REQUIRE(spec.checkpoint_blocks >= 1,
              "run_campaign: need a positive checkpoint cadence");
  // A block budget without a checkpoint would throw the executed work
  // away and report partial statistics as a finished campaign.
  OIC_REQUIRE(spec.max_blocks == 0 || !spec.checkpoint.empty(),
              "run_campaign: max_blocks without a checkpoint discards the "
              "executed blocks; set spec.checkpoint to make slices resumable");

  const Grid grid = resolve_grid(registry, spec);
  const eval::PolicySetFactory factory = eval::make_policy_factory(spec.policies);
  const std::size_t num_policies = spec.policies.size();
  // Resolve the fault model once (preset id or raw grammar); every engine
  // and every per-episode fault stream below derives from it.
  const fault::FaultSpec faults = registry.resolve_faults(spec.faults);
  const bool faulted = faults.active();

  // Trained agents are plant-specific: a drl:<path> policy with
  // provenance pins the whole grid to its plant (shared rule with
  // eval::run_sweep).
  eval::require_policies_trained_for(spec.policies, grid.plants, "run_campaign");

  // Policy display names, probed once (block accumulators and restored
  // checkpoints must agree on them).
  std::vector<std::string> policy_names;
  {
    const auto probe = factory();
    for (const auto& p : probe) policy_names.push_back(p->name());
  }

  std::unique_ptr<cert::Store> store;
  cert::Provider provider;
  if (!spec.cert_dir.empty()) {
    store = std::make_unique<cert::Store>(spec.cert_dir);
    provider = store->provider();
  }

  const std::uint64_t fingerprint = spec_fingerprint(registry, spec);
  Checkpoint restored;
  bool have_checkpoint = false;
  if (!spec.checkpoint.empty() && std::filesystem::exists(spec.checkpoint)) {
    restored = load_checkpoint_file(spec.checkpoint);
    OIC_REQUIRE(restored.fingerprint == fingerprint,
                "run_campaign: checkpoint '" + spec.checkpoint +
                    "' belongs to a different campaign (fingerprint mismatch); "
                    "delete it or fix the spec");
    have_checkpoint = true;
  }

  const std::uint64_t total_blocks = (spec.episodes + spec.block - 1) / spec.block;

  CampaignResult out;
  const auto t0 = Clock::now();
  std::unique_ptr<eval::PlantCase> plant;
  std::string plant_built;
  std::size_t cell_index = 0;
  std::uint64_t blocks_budget_used = 0;
  bool stopped = false;
  for (const auto& pid : grid.plants) {
    const eval::PlantInfo& info = registry.plant(pid);
    for (const auto& fid : grid.families) {
      const ScenarioFamily family = family_by_id(info.signal_band, fid);
      CellStats cell;
      if (have_checkpoint && cell_index < restored.cells.size()) {
        cell = restored.cells[cell_index];
        OIC_REQUIRE(cell.plant == pid && cell.family == fid &&
                        cell.policies.size() == num_policies,
                    "run_campaign: checkpoint cell grid mismatch");
        for (std::size_t p = 0; p < num_policies; ++p) {
          OIC_REQUIRE(cell.policies[p].name == policy_names[p],
                      "run_campaign: checkpoint policy set mismatch");
        }
        out.resumed_blocks += cell.blocks_done;
      } else {
        cell.plant = pid;
        cell.family = fid;
        cell.baseline.name = "always-run";
        cell.policies.resize(num_policies);
        for (std::size_t p = 0; p < num_policies; ++p) {
          cell.policies[p].name = policy_names[p];
        }
      }

      const std::uint64_t cell_seed = derive_stream(spec.seed, cell_index);
      // Worker slots for this cell, built lazily once the plant exists
      // and reused across rounds (slot == chunk index; a round never
      // assigns one slot to two concurrent chunks).
      std::vector<std::unique_ptr<WorkerCtx>> worker_ctxs(
          spec.workers ? spec.workers
                       : std::max<std::size_t>(1, std::thread::hardware_concurrency()));
      while (!stopped && cell.blocks_done < total_blocks) {
        if (plant_built != pid) {
          plant = info.make_plant(provider);
          plant_built = pid;
        }
        // A round is what runs before the next checkpoint write: all
        // remaining blocks when checkpointing is off.  The per-process
        // block budget (max_blocks) caps it further.
        std::uint64_t round = total_blocks - cell.blocks_done;
        if (!spec.checkpoint.empty()) {
          round = std::min(round, spec.checkpoint_blocks);
        }
        if (spec.max_blocks > 0) {
          OIC_CHECK(spec.max_blocks > blocks_budget_used,
                    "run_campaign: block budget accounting drifted");
          round = std::min(round, spec.max_blocks - blocks_budget_used);
        }
        const std::uint64_t first_block = cell.blocks_done;

        // Per-block partial accumulators, merged in block order below:
        // the block is the floating-point association unit, so results
        // cannot depend on the worker partition.
        std::vector<CellStats> blocks(round);
        run_chunked(
            static_cast<std::size_t>(round), spec.workers,
            [&](std::size_t chunk, std::size_t b0, std::size_t b1) {
              OIC_CHECK(chunk < worker_ctxs.size(),
                        "run_campaign: chunk index exceeds worker slots");
              if (!worker_ctxs[chunk]) {
                worker_ctxs[chunk] =
                    std::make_unique<WorkerCtx>(*plant, factory, num_policies, faults);
              }
              WorkerCtx& ctx = *worker_ctxs[chunk];
              eval::EpisodeEngine& base_engine = ctx.base_engine;
              auto& engines = ctx.engines;
              for (std::size_t b = b0; b < b1; ++b) {
                CellStats& acc = blocks[b];
                acc.baseline.name = "always-run";
                acc.policies.resize(num_policies);
                for (std::size_t p = 0; p < num_policies; ++p) {
                  acc.policies[p].name = policy_names[p];
                }
                const std::uint64_t e0 = (first_block + b) * spec.block;
                const std::uint64_t e1 = std::min(spec.episodes, e0 + spec.block);
                for (std::uint64_t e = e0; e < e1; ++e) {
                  // The episode stream is a pure function of
                  // (seed, cell, episode); scenario parameters and the
                  // case realization both come from it.
                  Rng ep_rng(derive_stream(cell_seed, e));
                  const eval::Scenario scenario = family.sample(ep_rng);
                  const eval::CaseData data =
                      eval::make_case(*plant, scenario, ep_rng, spec.steps, faulted);
                  const eval::EpisodeResult base = base_engine.run(data);
                  add_baseline(acc.baseline, base);
                  for (std::size_t p = 0; p < num_policies; ++p) {
                    add_policy(acc.policies[p], base, engines[p]->run(data));
                  }
                }
              }
            });
        for (std::uint64_t b = 0; b < round; ++b) {
          merge_cell(cell, blocks[static_cast<std::size_t>(b)]);
          out.episodes_run +=
              blocks[static_cast<std::size_t>(b)].baseline.episodes *
              (num_policies + 1);
        }
        cell.blocks_done += round;
        cell.episodes = cell.baseline.episodes;
        blocks_budget_used += round;

        if (!spec.checkpoint.empty()) {
          Checkpoint ck;
          ck.fingerprint = fingerprint;
          ck.cells = out.cells;  // completed cells so far
          ck.cells.push_back(cell);
          save_checkpoint_file(ck, spec.checkpoint);
        }
        if (spec.max_blocks > 0 && blocks_budget_used >= spec.max_blocks) {
          stopped = true;
        }
      }
      out.cells.push_back(std::move(cell));
      ++cell_index;
      if (stopped) break;
    }
    if (stopped) break;
  }
  out.wall_s = seconds_since(t0);
  out.total_steps = out.episodes_run * spec.steps;
  out.faults = faults;
  // Fault-free campaigns: any violation (left_x or left_xi) is a bug
  // (Theorem 1).  Faulted campaigns: XI excursions are the measured
  // degradation; only leaving the hard safe set X counts as a violation.
  for (const auto& cell : out.cells) {
    out.episodes += cell.baseline.episodes;
    out.safety_violations =
        out.safety_violations ||
        (faulted ? cell.baseline.left_x_episodes > 0 : cell.baseline.violations > 0);
    for (const auto& ps : cell.policies) {
      out.episodes += ps.episodes;
      out.safety_violations =
          out.safety_violations ||
          (faulted ? ps.left_x_episodes > 0 : ps.violations > 0);
    }
  }
  return out;
}

std::string campaign_json(const CampaignSpec& spec, const CampaignResult& result) {
  using jsonout::append_format;
  using jsonout::append_string;
  using jsonout::append_string_array;

  jsonout::Doc doc("oic_mc");
  std::string& out = doc.body();

  append_format(out,
                "  \"config\": {\"episodes\": %llu, \"steps\": %zu, "
                "\"workers\": %zu, \"block\": %llu, ",
                static_cast<unsigned long long>(spec.episodes), spec.steps,
                spec.workers, static_cast<unsigned long long>(spec.block));
  out += "\"policies\": ";
  append_string_array(out, spec.policies);
  append_format(out, ", \"seed\": %llu, \"plants\": ",
                static_cast<unsigned long long>(spec.seed));
  append_string_array(out, spec.plants);
  out += ", \"families\": ";
  append_string_array(out, spec.families);
  out += ", \"cert_dir\": ";
  append_string(out, spec.cert_dir);
  out += ", \"checkpoint\": ";
  append_string(out, spec.checkpoint);
  out += ", \"faults\": ";
  append_string(out, result.faults.canonical());
  out += ", \"splitting\": ";
  out += spec.splitting ? "true" : "false";
  out += ", \"falsify\": ";
  out += spec.falsify ? "true" : "false";
  append_format(out,
                ", \"split_trials\": %llu, \"split_batches\": %llu, "
                "\"split_stages\": %llu, "
                "\"split_quantile\": %.17g, \"levels\": ",
                static_cast<unsigned long long>(spec.split_trials),
                static_cast<unsigned long long>(spec.split_batches),
                static_cast<unsigned long long>(spec.split_stages),
                spec.split_quantile);
  append_double_array(out, spec.levels);
  out += "},\n";

  append_format(out,
                "  \"campaign\": {\"wall_s\": %.6f, \"episodes\": %llu, "
                "\"episodes_run\": %llu, \"episodes_per_s\": %.3f, "
                "\"step_ns\": %.1f, \"cells\": %zu, \"resumed_blocks\": %llu},\n",
                result.wall_s, static_cast<unsigned long long>(result.episodes),
                static_cast<unsigned long long>(result.episodes_run),
                result.episodes_per_s(), result.step_ns(), result.cells.size(),
                static_cast<unsigned long long>(result.resumed_blocks));

  if (spec.splitting || spec.falsify) {
    out += "  \"mc_splitting\": {\"cells\": [\n";
    for (std::size_t i = 0; i < result.split_cells.size(); ++i) {
      const SplitCellResult& cell = result.split_cells[i];
      out += "    {\"plant\": ";
      append_string(out, cell.plant);
      out += ", \"family\": ";
      append_string(out, cell.family);
      if (cell.p_true >= 0.0) {
        append_format(out, ", \"p_true\": %.17g", cell.p_true);
      }
      out += ", \"seeded_levels\": ";
      append_double_array(out, cell.seeded_levels);
      if (cell.falsified) {
        const FalsifyResult& f = cell.falsify;
        append_format(out,
                      ",\n     \"falsify\": {\"worst_level\": %.17g, "
                      "\"violation\": %s, \"episodes\": %llu, "
                      "\"suggested_levels\": ",
                      f.worst_level, f.violation ? "true" : "false",
                      static_cast<unsigned long long>(f.episodes));
        append_double_array(out, f.suggested_levels);
        const MixtureParams& p = f.worst;
        out += ", \"worst\": {\"label\": ";
        append_string(out, p.label);
        append_format(out, ", \"center\": %.17g, \"sines\": [", p.center);
        for (std::size_t s = 0; s < p.sines.size(); ++s) {
          append_format(out, s ? ", [%.17g, %.17g, %.17g]" : "[%.17g, %.17g, %.17g]",
                        p.sines[s].amplitude, p.sines[s].omega, p.sines[s].phase);
        }
        append_format(out,
                      "], \"noise_gain\": %.17g, \"noise_alpha\": %.17g, "
                      "\"burst_rate\": %.17g, \"burst_len\": [%zu, %zu], "
                      "\"burst_amp\": %.17g, \"ramp_rate\": %.17g, "
                      "\"ramp_span\": %.17g, \"ramp_slew\": %.17g}}",
                      p.noise_gain, p.noise_alpha, p.burst_rate, p.burst_len_min,
                      p.burst_len_max, p.burst_amp, p.ramp_rate, p.ramp_span,
                      p.ramp_slew);
      }
      out += ",\n     \"units\": [\n";
      for (std::size_t u = 0; u < cell.units.size(); ++u) {
        const SplitUnitResult& unit = cell.units[u];
        const SplitState& st = unit.state;
        std::uint64_t trials = 0;
        for (const SplitBatch& b : st.batches) {
          trials = std::max(trials, b.estimate.trials);
        }
        out += "      {\"policy\": ";
        append_string(out, unit.policy);
        const Interval ci = st.ci95();
        append_format(out,
                      ", \"done\": %s, \"trials\": %llu, "
                      "\"episodes\": %llu, \"extinct_batches\": %zu,\n       "
                      "\"p_hat\": %.17g, \"ci95\": [%.17g, %.17g], "
                      "\"batches\": [\n",
                      st.done ? "true" : "false",
                      static_cast<unsigned long long>(trials),
                      static_cast<unsigned long long>(st.episodes()),
                      st.extinct_batches(), st.p_hat(), ci.lo, ci.hi);
        for (std::size_t b = 0; b < st.batches.size(); ++b) {
          const SplitEstimate& e = st.batches[b].estimate;
          append_format(out,
                        "        {\"done\": %s, \"extinct\": %s, "
                        "\"p_hat\": %.17g, \"log_sigma\": ",
                        st.batches[b].done ? "true" : "false",
                        e.extinct() ? "true" : "false", e.p_hat());
          const double ls = e.log_sigma();
          if (std::isfinite(ls)) {
            append_format(out, "%.17g", ls);
          } else {
            out += "null";  // extinct runs: the log-scale error is unbounded
          }
          out += ", \"levels\": ";
          append_double_array(out, e.levels);
          out += ", \"survivors\": ";
          append_u64_array(out, e.survivors);
          out += (b + 1 < st.batches.size()) ? "},\n" : "}\n";
        }
        out += "       ]";
        out += (u + 1 < cell.units.size()) ? "},\n" : "}\n";
      }
      out += (i + 1 < result.split_cells.size()) ? "     ]},\n" : "     ]}\n";
    }
    out += "  ]},\n";
  }

  out += "  \"results\": [\n";
  for (std::size_t i = 0; i < result.cells.size(); ++i) {
    const CellStats& cell = result.cells[i];
    out += "    {\"plant\": ";
    append_string(out, cell.plant);
    out += ", \"family\": ";
    append_string(out, cell.family);
    append_format(out, ", \"episodes\": %llu,\n",
                  static_cast<unsigned long long>(cell.episodes));
    out += "     \"baseline\": {\"cost\": ";
    append_welford_json(out, cell.baseline.cost);
    out += ", ";
    append_violation_json(out, cell.baseline);
    out += ",\n      ";
    append_fault_json(out, cell.baseline);
    out += "},\n     \"policies\": [\n";
    for (std::size_t p = 0; p < cell.policies.size(); ++p) {
      const PolicyStats& ps = cell.policies[p];
      out += "      {\"name\": ";
      append_string(out, ps.name);
      append_format(out, ", \"episodes\": %llu, \"saving\": ",
                    static_cast<unsigned long long>(ps.episodes));
      append_welford_json(out, ps.saving);
      out += ", \"cost\": ";
      append_welford_json(out, ps.cost);
      out += ", \"skipped\": ";
      append_welford_json(out, ps.skipped);
      out += ", \"degraded\": ";
      append_welford_json(out, ps.degraded);
      out += ",\n       ";
      append_violation_json(out, ps);
      out += ",\n       ";
      append_fault_json(out, ps);
      out += (p + 1 < cell.policies.size()) ? "},\n" : "}\n";
    }
    out += (i + 1 < result.cells.size()) ? "    ]},\n" : "    ]}\n";
  }
  out += "  ],\n";
  return std::move(doc).finish(result.safety_violations);
}

}  // namespace oic::mc
