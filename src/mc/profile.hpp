#pragma once
/// \file profile.hpp
/// The randomized-campaign signal generator: one profile whose parameter
/// vector spans everything the scenario families need -- bounded sine
/// mixtures, one-pole filtered white noise, burst overlays, and
/// slew-limited ramp walks -- so a single class realizes every family and
/// arbitrary mixtures of them.
///
/// The split of randomness mirrors the prototype-clone-reset contract of
/// the fixed sim:: profiles: a ScenarioFamily *samples the parameters*
/// (amplitudes, frequencies, rates) from its own Rng child stream, while
/// the per-episode Rng passed to reset() drives only the stochastic
/// realization (noise draws, burst arrivals, ramp retargets).  A
/// realization is therefore a pure function of (parameters, reset seed).

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "common/random.hpp"
#include "sim/profile.hpp"

namespace oic::mc {

/// One bounded sinusoid: amplitude * sin(omega * t + phase), t in steps.
struct SineComponent {
  double amplitude = 0.0;
  double omega = 0.0;
  double phase = 0.0;
};

/// Full parameter vector of a MixtureProfile.  Every term is additive on
/// top of `center` and the sum is clipped to [lo, hi], so any parameter
/// draw yields a signal that respects the plant's registered band.
struct MixtureParams {
  std::string label = "mixture";  ///< diagnostic name (family id)
  double center = 0.0;            ///< signal operating point
  double lo = 0.0;                ///< hard clip range (the plant's band)
  double hi = 0.0;

  std::vector<SineComponent> sines;  ///< bounded sine mixture

  double noise_gain = 0.0;   ///< filtered-white-noise amplitude
  double noise_alpha = 0.0;  ///< one-pole low-pass coefficient in [0, 1)

  double burst_rate = 0.0;        ///< per-step burst start probability
  std::size_t burst_len_min = 0;  ///< burst duration bounds [steps]
  std::size_t burst_len_max = 0;
  double burst_amp = 0.0;  ///< burst offset magnitude (sign drawn per burst)

  double ramp_rate = 0.0;  ///< per-step retarget probability
  double ramp_span = 0.0;  ///< ramp targets drawn in [-span, span]
  double ramp_slew = 0.0;  ///< max ramp-offset change per step
};

/// sim::VelocityProfile over a MixtureParams (see file comment).
class MixtureProfile final : public sim::VelocityProfile {
 public:
  /// Validates the parameter vector (lo < hi, center inside, coefficients
  /// in range); throws PreconditionError on nonsense.
  explicit MixtureProfile(MixtureParams params);

  void reset(Rng rng) override;
  double next() override;
  std::string name() const override { return params_.label; }
  std::unique_ptr<sim::VelocityProfile> clone() const override;
  double v_min() const override { return params_.lo; }
  double v_max() const override { return params_.hi; }

  /// Mid-episode stream swap for splitting clones: replaces only the Rng;
  /// the clock, filter state, and any active burst/ramp carry over, so a
  /// child trajectory diverges from its parent exactly at the branch step.
  bool supports_reseed() const override { return true; }
  void reseed(Rng rng) override { rng_ = rng; }

  const MixtureParams& params() const { return params_; }

 private:
  MixtureParams params_;
  std::size_t t_ = 0;
  double noise_state_ = 0.0;
  std::size_t burst_left_ = 0;
  double burst_offset_ = 0.0;
  double ramp_offset_ = 0.0;
  double ramp_target_ = 0.0;
  Rng rng_{0};
};

}  // namespace oic::mc
