#pragma once
/// \file campaign.hpp
/// Monte Carlo campaign engine: randomized N-episode safety/saving
/// estimation over the plant registry, in constant memory.
///
/// A campaign sweeps (plant x family) cells.  Each cell runs `episodes`
/// independent episodes: episode e derives its own Rng stream as
/// derive_stream(derive_stream(seed, cell), e), samples a fresh scenario
/// from the cell's ScenarioFamily, draws a case (x0 + signal realization),
/// and evaluates the always-run baseline plus every policy on it through
/// per-worker eval::EpisodeEngines.  Nothing per-episode is stored:
/// results stream into Welford accumulators (mean/variance/extrema of
/// saving, cost, skipped steps) and violation counters, from which the
/// report derives Wilson intervals for the violation rate and normal
/// intervals for saving/cost -- so N = 10^6 costs the same memory as
/// N = 10.
///
/// Determinism contract: episodes are aggregated in *blocks* of
/// `spec.block` episodes.  A block is accumulated sequentially in episode
/// order, blocks are merged into the cell strictly in block order, and
/// the episode seeds are pure functions of (seed, cell, episode) -- so
/// campaign results are bit-identical for any worker count and across
/// checkpoint/resume boundaries (the block, never the worker chunk, is
/// the floating-point association unit).
///
/// Checkpointing: with spec.checkpoint set, the accumulated cell stats
/// are serialized (text, 17 significant digits => doubles round-trip bit
/// for bit) every `checkpoint_blocks` completed blocks.  A fresh run
/// whose spec fingerprint matches an existing checkpoint resumes from the
/// recorded block boundary and finishes with bit-identical statistics.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "eval/registry.hpp"
#include "mc/falsify.hpp"
#include "mc/family.hpp"
#include "mc/splitting.hpp"

namespace oic::mc {

/// Campaign configuration (the oic_mc CLI surface).
struct CampaignSpec {
  std::vector<std::string> plants;    ///< registry ids; empty = all
  std::vector<std::string> families;  ///< family ids; empty = all standard
  std::vector<std::string> policies = {"bang-bang", "periodic-5"};
  std::uint64_t episodes = 1000;  ///< episodes per (plant, family) cell
  std::size_t steps = 100;        ///< control periods per episode
  std::uint64_t seed = 20200406;  ///< sole randomness knob
  std::size_t workers = 0;        ///< 0 = hardware concurrency
  /// Episodes per aggregation block -- the merge unit that fixes the
  /// floating-point association (see file comment).  Part of the spec
  /// fingerprint: changing it changes the (still valid) statistics.
  std::uint64_t block = 256;
  std::string cert_dir;    ///< certificate cache (cert::Store); "" = fresh
  std::string checkpoint;  ///< stats checkpoint path; "" = disabled
  std::uint64_t checkpoint_blocks = 64;  ///< write cadence in blocks
  /// Block budget for THIS process: stop (after a checkpoint write) once
  /// this many blocks have executed, 0 = run to completion.  Long
  /// campaigns run in slices -- each slice resumes the checkpoint and
  /// burns its budget -- and the final statistics are bit-identical to a
  /// single uninterrupted run.  Not part of the fingerprint.
  std::uint64_t max_blocks = 0;
  /// Fault model for every episode: "" / "off" (default), a registered
  /// preset id, or the fault::FaultSpec::parse grammar.  The CANONICAL
  /// spec string is part of the fingerprint (a checkpoint from a lossless
  /// campaign must not resume a lossy one), and the per-episode fault
  /// stream is a pure function of (seed, cell, episode) -- worker-count
  /// and resume bit-invariance hold with faults on.
  std::string faults;

  // ---- Rare-event mode (splitting / falsification) -------------------
  // These fields select an alternative campaign body: instead of crude
  // per-episode violation counting, each (plant, family) cell is estimated
  // by fixed-effort multilevel splitting (mc/splitting.hpp) and/or probed
  // by the CE falsifier (mc/falsify.hpp).  All of them (when either mode
  // is on) join the spec fingerprint; fault models must be inactive
  // (lineage replay carries no fault-stream hand-off).

  /// Estimate violation probabilities by importance splitting.
  bool splitting = false;
  /// Run the cross-entropy falsifier per cell.  Combined with `splitting`
  /// its peak-level quantiles seed the ladder when `levels` is empty;
  /// alone it reports the worst-case profile per cell.
  bool falsify = false;
  /// Explicit splitting ladder (strictly increasing, finite, all < 0);
  /// empty = falsify-seeded (when enabled) else adaptive placement.
  std::vector<double> levels;
  std::uint64_t split_trials = 256;   ///< fixed effort N per stage PER BATCH
  /// Independent splitting replicates per unit (>= 2).  The combined CI is
  /// the empirical spread across batches (see mc::SplitState::ci95), which
  /// is what makes it honest under clone correlation.
  std::uint64_t split_batches = 16;
  std::uint64_t split_stages = 24;   ///< adaptive stage cap per batch
  double split_quantile = 0.25;      ///< adaptive survivor fraction
  std::uint64_t falsify_iterations = 6;
  std::uint64_t falsify_population = 24;
  std::uint64_t falsify_elites = 6;
  std::uint64_t falsify_probes = 3;
};

/// Streaming statistics of one policy within one cell.
struct PolicyStats {
  std::string name;  ///< policy display name (core::SkipPolicy::name())
  Welford saving;    ///< paired running-cost saving vs always-run
  Welford cost;      ///< running-cost total per episode
  Welford skipped;   ///< skipped steps per episode
  Welford degraded;  ///< degraded-mode steps per episode (faulted runs)
  std::uint64_t violations = 0;       ///< episodes with left_x || left_xi
  std::uint64_t left_x_episodes = 0;  ///< episodes with left_x (Theorem 1)
  std::uint64_t episodes = 0;
  /// Fault accounting over all aggregated control periods (zero on
  /// fault-free campaigns).  `steps` is the Wilson-interval denominator
  /// for the per-step degradation rates.
  std::uint64_t degraded_steps = 0;
  std::uint64_t stale_forced = 0;
  std::uint64_t policy_unavail = 0;
  std::uint64_t meas_dropped = 0;
  std::uint64_t act_dropped = 0;
  std::uint64_t steps = 0;

  double violation_rate() const {
    return episodes ? static_cast<double>(violations) / static_cast<double>(episodes)
                    : 0.0;
  }
  double degraded_rate() const {
    return steps ? static_cast<double>(degraded_steps) / static_cast<double>(steps)
                 : 0.0;
  }

  /// Fold `other` into this (fixed order: callers merge in block order).
  void merge(const PolicyStats& other);
};

/// One (plant, family) cell: the always-run baseline plus every policy.
/// The baseline's `saving`/`skipped` accumulators stay empty.
struct CellStats {
  std::string plant;
  std::string family;
  PolicyStats baseline;
  std::vector<PolicyStats> policies;
  std::uint64_t blocks_done = 0;  ///< completed aggregation blocks
  std::uint64_t episodes = 0;     ///< episodes aggregated (per policy)
};

/// One splitting estimation unit inside a cell: the always-run baseline,
/// one policy, or the rare1d analytic bed.  Carries the full resumable
/// SplitState so checkpoints can stop between stages and resume with
/// bit-identical results.
struct SplitUnitResult {
  std::string policy;  ///< "always-run", a policy display name, or "analytic"
  SplitState state;
};

/// One (plant, family) cell of a splitting / falsification campaign.
struct SplitCellResult {
  std::string plant;
  std::string family;
  bool falsified = false;  ///< the falsifier ran (falsify below is valid)
  FalsifyResult falsify;
  /// The explicit ladder the units ran with (spec levels, else the
  /// falsifier's suggestion); empty = adaptive placement.
  std::vector<double> seeded_levels;
  /// Analytic ground-truth violation probability; < 0 = none (real plants).
  /// The rare1d bed sets it, and tests assert the estimate's CI covers it.
  double p_true = -1.0;
  std::vector<SplitUnitResult> units;
};

/// Whole-campaign outcome.
struct CampaignResult {
  std::vector<CellStats> cells;
  /// Splitting / falsification cells (empty unless spec.splitting or
  /// spec.falsify; `cells` is empty in that mode).
  std::vector<SplitCellResult> split_cells;
  double wall_s = 0.0;
  std::uint64_t episodes = 0;       ///< episode runs aggregated (incl. baseline)
  std::uint64_t episodes_run = 0;   ///< episode runs executed this process
  std::uint64_t total_steps = 0;    ///< control periods executed this process
  std::uint64_t resumed_blocks = 0; ///< blocks restored from a checkpoint
  /// Fault-free campaigns: any left_x / left_xi anywhere (Theorem 1:
  /// never).  Faulted campaigns: any left_x (hard safe-set violation) --
  /// XI excursions are the measured degradation there, not a bug.
  bool safety_violations = false;
  fault::FaultSpec faults;          ///< resolved fault model (inactive = none)

  double episodes_per_s() const {
    return wall_s > 0.0 ? static_cast<double>(episodes_run) / wall_s : 0.0;
  }
  double step_ns() const {
    return total_steps ? 1e9 * wall_s / static_cast<double>(total_steps) : 0.0;
  }
};

/// Fingerprint over the statistics-shaping spec fields (seed, episodes,
/// steps, block, plants, families, policies, canonical fault spec -- NOT
/// workers / cert_dir / checkpoint cadence, which cannot change results).
/// Guards checkpoint resumption against a mismatched campaign.
std::uint64_t spec_fingerprint(const eval::ScenarioRegistry& registry,
                               const CampaignSpec& spec);

/// Serialized campaign progress (the `oic-mc-checkpoint v2` text format;
/// v2 added the per-policy fault accounting, so v1 files are rejected).
/// Splitting / falsification campaigns append an optional `splitting`
/// section before the end sentinel: per-cell falsifier outcomes plus each
/// unit's per-batch completed-stage counters and frontier lineages --
/// integers and levels only; every estimate is re-derived from them on
/// load, which is what makes resume bit-exact.
struct Checkpoint {
  std::uint64_t fingerprint = 0;
  std::vector<CellStats> cells;             ///< prefix of cells with progress
  std::vector<SplitCellResult> split_cells; ///< splitting-mode progress
};

void save_checkpoint(const Checkpoint& ck, std::ostream& os);
Checkpoint load_checkpoint(std::istream& is);
void save_checkpoint_file(const Checkpoint& ck, const std::string& path);
Checkpoint load_checkpoint_file(const std::string& path);

/// Run the campaign (see file comment).  Resumes from spec.checkpoint when
/// the file exists and its fingerprint matches; throws PreconditionError
/// when it exists but belongs to a different campaign.  Throws on unknown
/// plant/family/policy ids or empty grids.
CampaignResult run_campaign(const eval::ScenarioRegistry& registry,
                            const CampaignSpec& spec);

/// Render the campaign as a JSON document (schema conventions shared with
/// oic_eval / bench_throughput: "bench" tag, "meta" provenance, "config",
/// a "campaign" timing block, per-cell "results", "safety_violations").
std::string campaign_json(const CampaignSpec& spec, const CampaignResult& result);

}  // namespace oic::mc
