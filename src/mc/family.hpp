#pragma once
/// \file family.hpp
/// Parameterized random scenario families.
///
/// A fixed scenario (eval::Scenario) is one disturbance-signal generator;
/// a ScenarioFamily is a *distribution over scenarios*: sample() draws a
/// fresh parameter vector (sine mixture shapes, noise filters, burst and
/// ramp statistics) from the caller's Rng and returns a concrete Scenario
/// whose MixtureProfile realizes it.  Campaigns derive one Rng child
/// stream per episode (common/random.hpp derive_stream), sample a
/// scenario, then realize it -- so a million-episode campaign explores a
/// million distinct workloads and is still fully determined by one seed.
///
/// Families are plant-generic: they are synthesized from the signal band
/// (eval::SignalBand) every registry plant registers alongside its fixed
/// scenario catalogue, so any plant supports the standard family ids
/// ("sine-mix", "filtered-noise", "bursts", "ramps", "mixed") without
/// plant-specific code.

#include <string>
#include <vector>

#include "common/random.hpp"
#include "eval/plant.hpp"
#include "mc/profile.hpp"

namespace oic::mc {

/// The standard family shapes (see sample() for the parameter ranges).
enum class FamilyKind {
  kSineMix,        ///< 1..3 bounded sines + light filtered noise
  kFilteredNoise,  ///< one-pole filtered white noise over the band
  kBursts,         ///< quiet base signal + random constant-offset bursts
  kRamps,          ///< slew-limited walk between random targets
  kMixed,          ///< moderated superposition of all of the above
};

/// A named distribution over scenarios inside one plant's signal band.
class ScenarioFamily {
 public:
  ScenarioFamily(std::string id, std::string description, FamilyKind kind,
                 eval::SignalBand band);

  const std::string& id() const { return id_; }
  const std::string& description() const { return description_; }
  FamilyKind kind() const { return kind_; }
  const eval::SignalBand& band() const { return band_; }

  /// Draw one concrete scenario.  All parameter randomness comes from
  /// `rng` (a fixed draw order per kind), so a sample is a pure function
  /// of the rng state -- the campaign reproducibility contract.
  eval::Scenario sample(Rng& rng) const;

 private:
  std::string id_;
  std::string description_;
  FamilyKind kind_;
  eval::SignalBand band_;
};

/// The standard family ids, in catalogue order.
std::vector<std::string> standard_family_ids();

/// The standard catalogue instantiated for one plant's band.
std::vector<ScenarioFamily> standard_families(const eval::SignalBand& band);

/// One standard family by id; throws PreconditionError for unknown ids
/// (message lists the known ones -- the CLI surfaces it verbatim).
ScenarioFamily family_by_id(const eval::SignalBand& band, const std::string& id);

}  // namespace oic::mc
