#include "mc/profile.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace oic::mc {

MixtureProfile::MixtureProfile(MixtureParams params) : params_(std::move(params)) {
  const MixtureParams& p = params_;
  OIC_REQUIRE(p.hi > p.lo, "MixtureProfile: hi must exceed lo");
  OIC_REQUIRE(p.center >= p.lo && p.center <= p.hi,
              "MixtureProfile: center must lie inside [lo, hi]");
  for (const auto& s : p.sines) {
    OIC_REQUIRE(s.amplitude >= 0.0 && s.omega >= 0.0,
                "MixtureProfile: sine amplitude/omega must be non-negative");
  }
  OIC_REQUIRE(p.noise_gain >= 0.0, "MixtureProfile: noise gain must be non-negative");
  OIC_REQUIRE(p.noise_alpha >= 0.0 && p.noise_alpha < 1.0,
              "MixtureProfile: noise alpha must be in [0, 1)");
  OIC_REQUIRE(p.burst_rate >= 0.0 && p.burst_rate <= 1.0,
              "MixtureProfile: burst rate must be a probability");
  OIC_REQUIRE(p.burst_rate == 0.0 ||
                  (p.burst_len_min >= 1 && p.burst_len_min <= p.burst_len_max),
              "MixtureProfile: burst length bounds must satisfy 1 <= min <= max");
  OIC_REQUIRE(p.burst_amp >= 0.0, "MixtureProfile: burst amplitude must be "
                                  "non-negative");
  OIC_REQUIRE(p.ramp_rate >= 0.0 && p.ramp_rate <= 1.0,
              "MixtureProfile: ramp rate must be a probability");
  OIC_REQUIRE(p.ramp_span >= 0.0 && p.ramp_slew >= 0.0,
              "MixtureProfile: ramp span/slew must be non-negative");
}

void MixtureProfile::reset(Rng rng) {
  rng_ = rng;
  t_ = 0;
  noise_state_ = 0.0;
  burst_left_ = 0;
  burst_offset_ = 0.0;
  ramp_offset_ = 0.0;
  ramp_target_ = 0.0;
}

double MixtureProfile::next() {
  const MixtureParams& p = params_;
  double v = p.center;
  const double t = static_cast<double>(t_);
  for (const auto& s : p.sines) v += s.amplitude * std::sin(s.omega * t + s.phase);

  // One-pole low-pass over uniform white noise; the filter state stays in
  // [-1, 1], so the term is bounded by noise_gain.
  if (p.noise_gain > 0.0) {
    const double u = rng_.uniform(-1.0, 1.0);
    noise_state_ = p.noise_alpha * noise_state_ + (1.0 - p.noise_alpha) * u;
    v += p.noise_gain * noise_state_;
  }

  // Bursts: a Bernoulli arrival starts a constant offset of random sign
  // held for a random number of steps.
  if (p.burst_rate > 0.0) {
    if (burst_left_ == 0 && rng_.bernoulli(p.burst_rate)) {
      burst_left_ = static_cast<std::size_t>(rng_.uniform_int(
          static_cast<int>(p.burst_len_min), static_cast<int>(p.burst_len_max)));
      burst_offset_ = rng_.bernoulli(0.5) ? p.burst_amp : -p.burst_amp;
    }
    if (burst_left_ > 0) {
      v += burst_offset_;
      --burst_left_;
    }
  }

  // Ramps: a slew-limited walk toward occasionally re-drawn targets.
  if (p.ramp_rate > 0.0) {
    if (rng_.bernoulli(p.ramp_rate)) {
      ramp_target_ = rng_.uniform(-p.ramp_span, p.ramp_span);
    }
    const double dv =
        std::clamp(ramp_target_ - ramp_offset_, -p.ramp_slew, p.ramp_slew);
    ramp_offset_ += dv;
    v += ramp_offset_;
  }

  ++t_;
  return std::clamp(v, p.lo, p.hi);
}

std::unique_ptr<sim::VelocityProfile> MixtureProfile::clone() const {
  return std::make_unique<MixtureProfile>(*this);
}

}  // namespace oic::mc
