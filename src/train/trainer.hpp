#pragma once
/// \file trainer.hpp
/// Plant-generic DQN training for the learned skipping policy
/// (Sec. III-B.2 / Algorithm 1's offline half), lifted from the ACC-only
/// src/acc trainer exactly as PR 2 lifted the evaluation harness: the loop
/// is parameterized by eval::PlantCase, so every plant in the scenario
/// registry can train a skipping agent, not just the ACC.
///
/// The Trainer owns the three pieces the paper's training procedure adds on
/// top of a plant:
///
///   * reward shaping  R = -w1 [x2 outside X'] - w2 R2, with R2 either
///     ||kappa(x1)||_1 as printed (EnergyMode::kKappaNorm) or the plant's
///     running-cost rate (EnergyMode::kCost, via the
///     PlantCase::train_cost_rate hook -- the ACC's fuel map);
///   * disturbance-memory state construction {x(t), w(t-r+1..t)} with the
///     observed state-space disturbances and drl_state_scale normalization;
///   * the monitor-override transition logic: the agent is consulted every
///     step, the monitor overrides z = 1 outside X', and the stored
///     transition carries the *executed* action so the agent observes the
///     override and pays its energy penalty.
///
/// src/acc/trainer.hpp is a thin alias view of this layer; the ACC numbers
/// are pinned bit-for-bit by the golden test in tests/test_train.cpp.

#include <memory>
#include <vector>

#include "core/drl_policy.hpp"
#include "eval/plant.hpp"
#include "rl/dqn.hpp"
#include "rl/serialize.hpp"

namespace oic::train {

/// How R2, "the reward for the current energy cost" (Sec. III-B.2), is
/// measured.  The paper's formula uses ||kappa(x1)||_1; its experiments
/// *evaluate* the running-cost metric (SUMO fuel for the ACC).  kCost
/// aligns the training signal with the metric the evaluation reports (see
/// EXPERIMENTS.md for the discussion); both are safe by Theorem 1.
enum class EnergyMode {
  kKappaNorm,  ///< R2 = ||kappa(x1)||_1 exactly as printed in the paper
  kCost,       ///< R2 = the plant's running-cost rate (ACC: fuel)
};

/// Training hyper-parameters.
struct TrainerConfig {
  std::size_t episodes = 200;
  std::size_t steps_per_episode = 100;  ///< paper evaluates 100-step episodes
  double w1 = 0.01;    ///< weight of the out-of-X' penalty (paper Sec. IV)
  double w2 = 0.0001;  ///< weight of the energy penalty (paper Sec. IV)
  EnergyMode energy_mode = EnergyMode::kCost;
  /// Disturbance memory r.  The paper quotes r = 1; we default to r = 2
  /// because one sample of a sinusoidal signal leaves its phase ambiguous
  /// (rising vs falling) -- two samples give the derivative and measurably
  /// better skipping decisions (see EXPERIMENTS.md).
  std::size_t memory = 2;
  std::uint64_t seed = 20200607;
  rl::DqnConfig dqn = default_dqn();

  /// DQN defaults sized to the training budget above.
  static rl::DqnConfig default_dqn();
};

/// Progress record per episode (returned for learning-curve benches).
struct TrainingLog {
  std::vector<double> episode_reward;
  std::vector<double> episode_skip_ratio;
  std::vector<double> episode_energy;
  /// Any training state left X (Theorem 1 says: never; exported so the
  /// oic_train JSON can carry the same safety verdict as the eval benches).
  bool left_x = false;
};

/// A trained skipping agent plus everything needed to deploy it.
struct TrainedAgent {
  std::shared_ptr<rl::DoubleDqn> agent;
  linalg::Vector state_scale;  ///< normalization used during training
  std::size_t memory = 1;      ///< disturbance memory r
  std::string plant;           ///< registry id of the plant it was trained on

  /// Build the inference-side policy wired exactly like training.
  std::unique_ptr<core::DrlPolicy> make_policy() const;

  /// Serialize to / from the rl::AgentSnapshot file format, so trained
  /// agents flow into `oic_eval --policies drl:<path>` without retraining.
  rl::AgentSnapshot snapshot() const;
  static TrainedAgent from_snapshot(const rl::AgentSnapshot& snap);
};

/// Plant-generic DQN training driver.  Holds the plant (whose RMPC it
/// drives, like the evaluation's legacy path) and the configuration; each
/// train() call is deterministic for a fixed config and independent of
/// previous calls (all carried solver state is reset per episode).
class Trainer {
 public:
  /// The plant must outlive the trainer.  Throws PreconditionError on a
  /// degenerate training budget.
  explicit Trainer(eval::PlantCase& plant, TrainerConfig config = {});

  /// Train a double-DQN skipping agent on the given scenario.  Fills `log`
  /// when non-null.
  TrainedAgent train(const eval::Scenario& scenario, TrainingLog* log = nullptr);

  const TrainerConfig& config() const { return config_; }

 private:
  eval::PlantCase& plant_;
  TrainerConfig config_;
};

/// One-shot convenience wrapper (the historical acc::train_dqn shape).
TrainedAgent train_dqn(eval::PlantCase& plant, const eval::Scenario& scenario,
                       const TrainerConfig& config = {}, TrainingLog* log = nullptr);

}  // namespace oic::train
