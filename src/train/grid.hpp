#pragma once
/// \file grid.hpp
/// The oic_train driver: train plant x scenario x seed grids of skipping
/// agents through the scenario registry, sharded over the common thread
/// pool, and serialize the results for the evaluation side.
///
/// Mirrors eval/sweep.hpp deliberately: jobs are resolved and validated up
/// front (a typo fails before any expensive plant build), each worker owns
/// its private plant instances (training drives the plant's RMPC), and the
/// job partition is a pure function of (jobs, workers) -- so a grid's
/// agents and logs are bit-identical to the serial run at any worker count.
///
/// The JSON document shares the bench schema family (a "bench" tag, a
/// "config" object, "meta" build provenance, a final "safety_violations"
/// flag) so scripts/check_bench_json.py validates it like the others.

#include <cstdint>
#include <string>
#include <vector>

#include "eval/registry.hpp"
#include "train/trainer.hpp"

namespace oic::train {

/// One training job.
struct TrainJob {
  std::string plant;     ///< registry plant id
  std::string scenario;  ///< scenario id listed by that plant
  std::uint64_t seed = 0;
};

/// Grid specification.  Empty plant / scenario lists mean "all registered"
/// (scenario ids intersect per plant, as in eval::SweepSpec).
struct TrainGridSpec {
  std::vector<std::string> plants;
  std::vector<std::string> scenarios;
  std::vector<std::uint64_t> seeds = {20200607};
  TrainerConfig trainer;    ///< per-job seed overrides trainer.seed
  std::size_t workers = 0;  ///< 0 = hardware concurrency, 1 = inline
  /// Certificate cache directory (cert::Store); empty = synthesize every
  /// worker's plants fresh.  Set, per-worker plant builds load cached
  /// `oic-cert v1` files (concurrent cold-cache misses are write-race-safe:
  /// identical bytes through a temp-file rename).
  std::string cert_dir;
};

/// Outcome of one job.
struct TrainJobResult {
  TrainJob job;
  TrainedAgent agent;
  TrainingLog log;
  double wall_s = 0.0;
};

/// Whole-grid outcome.
struct TrainGridResult {
  std::vector<TrainJobResult> results;
  double wall_s = 0.0;
  bool safety_violations = false;  ///< any training step left X (Thm 1: never)
};

/// Expand a spec into the concrete job list (validates ids against the
/// registry; throws PreconditionError on unknown ids or an empty grid).
std::vector<TrainJob> expand_jobs(const eval::ScenarioRegistry& registry,
                                  const TrainGridSpec& spec);

/// Train every job, sharded over the thread pool with per-worker plant
/// instances.  Agents and logs are bit-identical to workers = 1 for any
/// worker count (each job is self-contained and seeded by job.seed).
/// `cert_dir` (optional) caches plant certificates across workers and
/// process runs; loaded certificates are bit-identical to fresh synthesis,
/// so it cannot change any agent either.
TrainGridResult train_grid_parallel(const eval::ScenarioRegistry& registry,
                                    const std::vector<TrainJob>& jobs,
                                    const TrainerConfig& base, std::size_t workers,
                                    const std::string& cert_dir = "");

/// Canonical agent filename for a job: "<plant>__<scenario>__seed<seed>.agent".
std::string agent_filename(const TrainJob& job);

/// Mean of the final stretch of a learning curve (last 25 %, at least one
/// episode): the "converged" tail the summaries and the JSON report.
double tail_mean(const std::vector<double>& xs);

/// Render a finished grid as a JSON document (bench schema family; carries
/// per-job learning-curve tails and agent paths).
std::string grid_json(const TrainGridSpec& spec, const std::vector<TrainJob>& jobs,
                      const TrainGridResult& result,
                      const std::vector<std::string>& agent_paths);

}  // namespace oic::train
