#include "train/trainer.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace oic::train {

using linalg::Vector;

rl::DqnConfig TrainerConfig::default_dqn() {
  rl::DqnConfig cfg;
  cfg.hidden = {64, 64};
  cfg.learning_rate = 1e-3;
  // The cost-relevant horizon is the scenario's dominant period (tens of
  // steps for the sinusoidal workloads), so the discount must keep several
  // tens of steps in view.
  cfg.gamma = 0.99;
  cfg.batch_size = 32;
  cfg.replay_capacity = 20000;
  cfg.min_replay = 500;
  cfg.target_sync_interval = 500;
  cfg.epsilon_start = 1.0;
  cfg.epsilon_end = 0.05;
  cfg.epsilon_decay_steps = 8000;
  return cfg;
}

std::unique_ptr<core::DrlPolicy> TrainedAgent::make_policy() const {
  OIC_REQUIRE(agent != nullptr, "TrainedAgent::make_policy: no agent");
  const std::size_t nx = (state_scale.size()) / (memory + 1);
  return std::make_unique<core::DrlPolicy>(agent, memory, nx, state_scale);
}

rl::AgentSnapshot TrainedAgent::snapshot() const {
  OIC_REQUIRE(agent != nullptr, "TrainedAgent::snapshot: no agent");
  return rl::AgentSnapshot{plant, memory, state_scale, agent->online()};
}

TrainedAgent TrainedAgent::from_snapshot(const rl::AgentSnapshot& snap) {
  const auto& sizes = snap.net.sizes();
  OIC_REQUIRE(sizes.size() >= 2, "TrainedAgent::from_snapshot: malformed network");
  rl::DqnConfig cfg;
  cfg.hidden.assign(sizes.begin() + 1, sizes.end() - 1);
  Rng dummy(0);
  auto agent =
      std::make_shared<rl::DoubleDqn>(sizes.front(), sizes.back(), cfg, dummy.split());
  agent->load_online(snap.net);
  TrainedAgent out;
  out.agent = std::move(agent);
  out.state_scale = snap.state_scale;
  out.memory = snap.memory;
  out.plant = snap.plant;
  return out;
}

Trainer::Trainer(eval::PlantCase& plant, TrainerConfig config)
    : plant_(plant), config_(std::move(config)) {
  OIC_REQUIRE(config_.episodes >= 1 && config_.steps_per_episode >= 2,
              "Trainer: degenerate training budget");
  OIC_REQUIRE(config_.memory >= 1, "Trainer: memory length must be positive");
}

TrainedAgent Trainer::train(const eval::Scenario& scenario, TrainingLog* log) {
  const TrainerConfig& cfg = config_;
  const std::size_t nx = plant_.system().nx();
  const std::size_t nw = plant_.system().nw();
  const std::size_t state_dim = core::drl_state_dim(nx, nx, cfg.memory);
  const Vector scale = core::drl_state_scale(plant_.system(), cfg.memory);

  Rng master(cfg.seed);
  // Fit the exploration schedule to the training budget: decay over ~60 %
  // of all action selections so the final third of training is near-greedy.
  rl::DqnConfig dqn_cfg = cfg.dqn;
  const std::size_t budget = cfg.episodes * cfg.steps_per_episode;
  dqn_cfg.epsilon_decay_steps =
      std::max<std::size_t>(500, std::min(dqn_cfg.epsilon_decay_steps, budget * 6 / 10));
  auto agent = std::make_shared<rl::DoubleDqn>(state_dim, 2, dqn_cfg, master.split());

  const auto& sets = plant_.sets();
  const Vector u_skip = plant_.u_skip();
  Vector w(nw);

  for (std::size_t ep = 0; ep < cfg.episodes; ++ep) {
    Rng ep_rng = master.split();
    // Training episodes are independent like evaluation episodes: drop the
    // RMPC's carried warm-start basis so trajectories do not depend on
    // episode ordering (run_episode and the engine do the same).
    plant_.rmpc().reset_solver();
    Vector x = plant_.sample_x0(ep_rng);
    auto profile = scenario.profile->clone();
    profile->reset(ep_rng.split());

    core::WHistory w_history(cfg.memory);  // state-space disturbances, oldest first
    double ep_reward = 0.0;
    double ep_energy = 0.0;
    std::size_t ep_skips = 0;

    for (std::size_t t = 0; t < cfg.steps_per_episode; ++t) {
      const Vector s1 = core::apply_state_scale(
          core::build_drl_state(x, w_history, cfg.memory, nx), scale);
      const bool in_xprime = sets.x_prime.contains(x);

      // The agent is consulted every step; the monitor overrides outside X'.
      const int desired = agent->select_action(s1);
      const int z = in_xprime ? desired : 1;

      Vector u;
      double kappa_energy = 0.0;
      if (z == 1) {
        u = plant_.rmpc().control(x);
        kappa_energy = cfg.energy_mode == EnergyMode::kCost
                           ? plant_.train_cost_rate(x, u)
                           : plant_.energy_raw(u);
      } else {
        u = u_skip;
        ++ep_skips;
      }
      ep_energy += plant_.energy_raw(u);

      plant_.signal_to_w(profile->next(), w);
      const Vector x_next = plant_.system().step(x, u, w);

      // Observed state-space disturbance for the next agent state.
      const Vector ew = x_next - plant_.system().a() * x - plant_.system().b() * u -
                        plant_.system().c();
      w_history.push(ew);

      const double reward =
          core::skipping_reward(sets, x, z, x_next, kappa_energy, cfg.w1, cfg.w2);
      ep_reward += reward;

      const Vector s2 = core::apply_state_scale(
          core::build_drl_state(x_next, w_history, cfg.memory, nx), scale);
      rl::Transition tr;
      tr.state = s1;
      tr.action = z;
      tr.reward = reward;
      tr.next_state = s2;
      tr.terminal = false;  // time-limit truncation: keep bootstrapping
      agent->observe(std::move(tr));

      if (log != nullptr && !log->left_x && !sets.x.contains(x_next, 1e-6)) {
        log->left_x = true;
      }
      x = x_next;
    }

    if (log != nullptr) {
      log->episode_reward.push_back(ep_reward);
      log->episode_skip_ratio.push_back(static_cast<double>(ep_skips) /
                                        static_cast<double>(cfg.steps_per_episode));
      log->episode_energy.push_back(ep_energy);
    }
  }
  TrainedAgent out;
  out.agent = agent;
  out.state_scale = scale;
  out.memory = cfg.memory;
  out.plant = plant_.name();
  return out;
}

TrainedAgent train_dqn(eval::PlantCase& plant, const eval::Scenario& scenario,
                       const TrainerConfig& config, TrainingLog* log) {
  return Trainer(plant, config).train(scenario, log);
}

}  // namespace oic::train
