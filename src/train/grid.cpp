#include "train/grid.hpp"

#include <algorithm>
#include <chrono>
#include <map>
#include <memory>

#include "cert/store.hpp"
#include "common/buildinfo.hpp"
#include "common/error.hpp"
#include "common/jsonout.hpp"
#include "common/parallel.hpp"

namespace oic::train {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

using jsonout::append_format;
using jsonout::append_string_array;

}  // namespace

double tail_mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  const std::size_t tail = std::max<std::size_t>(1, xs.size() / 4);
  double s = 0.0;
  for (std::size_t i = xs.size() - tail; i < xs.size(); ++i) s += xs[i];
  return s / static_cast<double>(tail);
}

std::vector<TrainJob> expand_jobs(const eval::ScenarioRegistry& registry,
                                  const TrainGridSpec& spec) {
  OIC_REQUIRE(!spec.seeds.empty(), "expand_jobs: need at least one seed");
  const bool plants_defaulted = spec.plants.empty();
  const std::vector<std::string> plant_ids =
      plants_defaulted ? registry.production_plant_ids() : spec.plants;
  OIC_REQUIRE(!plant_ids.empty(), "expand_jobs: registry is empty");

  // Same per-plant scenario intersection semantics as eval::run_sweep: a
  // named plant must list every requested scenario, a defaulted plant that
  // lacks one is skipped.
  std::vector<TrainJob> jobs;
  for (const auto& pid : plant_ids) {
    const eval::PlantInfo& info = registry.plant(pid);
    std::vector<std::string> scenario_ids;
    if (spec.scenarios.empty()) {
      scenario_ids = info.scenario_ids;
    } else {
      for (const auto& sid : spec.scenarios) {
        const bool listed = std::find(info.scenario_ids.begin(),
                                      info.scenario_ids.end(),
                                      sid) != info.scenario_ids.end();
        if (listed) {
          scenario_ids.push_back(sid);
        } else if (!plants_defaulted) {
          (void)registry.make_scenario(pid, sid);  // throws with the known ids
        }
      }
    }
    for (const auto& sid : scenario_ids) {
      for (const std::uint64_t seed : spec.seeds) {
        jobs.push_back(TrainJob{pid, sid, seed});
      }
    }
  }
  OIC_REQUIRE(!jobs.empty(),
              "expand_jobs: no registered plant lists the requested scenarios");
  return jobs;
}

TrainGridResult train_grid_parallel(const eval::ScenarioRegistry& registry,
                                    const std::vector<TrainJob>& jobs,
                                    const TrainerConfig& base, std::size_t workers,
                                    const std::string& cert_dir) {
  OIC_REQUIRE(!jobs.empty(), "train_grid_parallel: need at least one job");
  for (const auto& job : jobs) {
    // Validate before any expensive plant build; also rejects scenarios a
    // plant does not list.
    (void)registry.make_scenario(job.plant, job.scenario);
  }

  // Shared certificate cache: workers race benignly on a cold cache (the
  // Store's temp-file rename keeps entries complete) and all warm builds
  // are file-read-bound.
  std::unique_ptr<cert::Store> store;
  cert::Provider provider;
  if (!cert_dir.empty()) {
    store = std::make_unique<cert::Store>(cert_dir);
    provider = store->provider();
  }

  TrainGridResult out;
  out.results.resize(jobs.size());
  const auto t0 = Clock::now();
  run_chunked(jobs.size(), workers,
              [&](std::size_t /*chunk*/, std::size_t begin, std::size_t end) {
                // Per-worker plants: training drives the plant's RMPC, so
                // workers must not share instances.  Each distinct plant id
                // in the chunk is built once and reused across its jobs
                // (the trainer resets all carried solver state per
                // episode, so reuse cannot leak state across jobs).
                std::map<std::string, std::unique_ptr<eval::PlantCase>> plants;
                for (std::size_t j = begin; j < end; ++j) {
                  const TrainJob& job = jobs[j];
                  auto it = plants.find(job.plant);
                  if (it == plants.end()) {
                    it = plants
                             .emplace(job.plant,
                                      registry.make_plant(job.plant, provider))
                             .first;
                  }
                  const eval::Scenario scenario =
                      registry.make_scenario(job.plant, job.scenario);
                  TrainerConfig cfg = base;
                  cfg.seed = job.seed;

                  TrainJobResult& r = out.results[j];
                  r.job = job;
                  const auto job_t0 = Clock::now();
                  r.agent = Trainer(*it->second, cfg).train(scenario, &r.log);
                  r.wall_s = seconds_since(job_t0);
                }
              });
  out.wall_s = seconds_since(t0);
  for (const auto& r : out.results) {
    out.safety_violations = out.safety_violations || r.log.left_x;
  }
  return out;
}

std::string agent_filename(const TrainJob& job) {
  return job.plant + "__" + job.scenario + "__seed" + std::to_string(job.seed) +
         ".agent";
}

std::string grid_json(const TrainGridSpec& spec, const std::vector<TrainJob>& jobs,
                      const TrainGridResult& result,
                      const std::vector<std::string>& agent_paths) {
  OIC_REQUIRE(jobs.size() == result.results.size(),
              "grid_json: job/result count mismatch");
  OIC_REQUIRE(agent_paths.empty() || agent_paths.size() == jobs.size(),
              "grid_json: agent path count mismatch");
  jsonout::Doc doc("oic_train");
  std::string& out = doc.body();

  append_format(out,
                "  \"config\": {\"episodes\": %zu, \"steps\": %zu, \"workers\": %zu, "
                "\"memory\": %zu, \"w1\": %.17g, \"w2\": %.17g, ",
                spec.trainer.episodes, spec.trainer.steps_per_episode, spec.workers,
                spec.trainer.memory, spec.trainer.w1, spec.trainer.w2);
  out += "\"energy_mode\": \"";
  out += spec.trainer.energy_mode == EnergyMode::kCost ? "cost" : "kappa-norm";
  out += "\", \"seeds\": [";
  for (std::size_t i = 0; i < spec.seeds.size(); ++i) {
    if (i) out += ", ";
    append_format(out, "%llu", static_cast<unsigned long long>(spec.seeds[i]));
  }
  out += "], \"plants\": ";
  append_string_array(out, spec.plants);
  out += ", \"scenarios\": ";
  append_string_array(out, spec.scenarios);
  out += "},\n";

  append_format(out, "  \"grid\": {\"wall_s\": %.6f, \"jobs\": %zu},\n", result.wall_s,
                jobs.size());

  out += "  \"results\": [\n";
  for (std::size_t j = 0; j < result.results.size(); ++j) {
    const TrainJobResult& r = result.results[j];
    // Variable-length strings (ids, agent paths) are appended escaped and
    // outside the fixed-buffer formatter so they can never truncate or
    // break the document.
    out += "    {\"plant\": ";
    jsonout::append_string(out, r.job.plant);
    out += ", \"scenario\": ";
    jsonout::append_string(out, r.job.scenario);
    out += ", ";
    append_format(out,
                  "\"seed\": %llu, \"wall_s\": %.6f, \"episodes\": %zu, "
                  "\"train_steps\": %zu, \"final_reward\": %.17g, "
                  "\"final_skip_ratio\": %.17g, \"final_energy\": %.17g, "
                  "\"left_x\": %s, ",
                  static_cast<unsigned long long>(r.job.seed), r.wall_s,
                  r.log.episode_reward.size(),
                  r.agent.agent ? r.agent.agent->train_steps() : 0,
                  tail_mean(r.log.episode_reward), tail_mean(r.log.episode_skip_ratio),
                  tail_mean(r.log.episode_energy), r.log.left_x ? "true" : "false");
    out += "\"agent\": ";
    jsonout::append_string(out,
                           agent_paths.empty() ? std::string() : agent_paths[j]);
    out += "}";
    out += (j + 1 < result.results.size()) ? ",\n" : "\n";
  }
  out += "  ],\n";
  return std::move(doc).finish(result.safety_violations);
}

}  // namespace oic::train
