#include "lp/problem.hpp"

#include "common/error.hpp"

namespace oic::lp {

Problem::Problem(std::size_t num_vars)
    : c_(num_vars), lo_(num_vars, -kInf), hi_(num_vars, kInf) {}

std::size_t Problem::add_variable(double lo, double hi) {
  OIC_REQUIRE(lo <= hi, "Problem::add_variable: empty bound interval");
  lo_.push_back(lo);
  hi_.push_back(hi);
  linalg::Vector c(num_vars());
  for (std::size_t j = 0; j + 1 < num_vars(); ++j) c[j] = c_[j];
  c_ = c;
  for (auto& row : rows_) {
    linalg::Vector a(num_vars());
    for (std::size_t j = 0; j + 1 < num_vars(); ++j) a[j] = row.coeffs[j];
    row.coeffs = a;
  }
  return num_vars() - 1;
}

void Problem::set_bounds(std::size_t j, double lo, double hi) {
  OIC_REQUIRE(j < num_vars(), "Problem::set_bounds: variable out of range");
  OIC_REQUIRE(lo <= hi, "Problem::set_bounds: empty bound interval");
  lo_[j] = lo;
  hi_[j] = hi;
}

double Problem::lower(std::size_t j) const {
  OIC_REQUIRE(j < num_vars(), "Problem::lower: variable out of range");
  return lo_[j];
}

double Problem::upper(std::size_t j) const {
  OIC_REQUIRE(j < num_vars(), "Problem::upper: variable out of range");
  return hi_[j];
}

void Problem::set_objective_coeff(std::size_t j, double cj) {
  OIC_REQUIRE(j < num_vars(), "Problem::set_objective_coeff: variable out of range");
  c_[j] = cj;
}

void Problem::set_objective(const linalg::Vector& c) {
  OIC_REQUIRE(c.size() == num_vars(), "Problem::set_objective: dimension mismatch");
  c_ = c;
}

void Problem::add_constraint(const linalg::Vector& coeffs, Relation rel, double rhs) {
  OIC_REQUIRE(coeffs.size() == num_vars(),
              "Problem::add_constraint: coefficient dimension mismatch");
  rows_.push_back(Constraint{coeffs, rel, rhs});
}

void Problem::add_constraint(const double* coeffs, std::size_t n, Relation rel,
                             double rhs) {
  OIC_REQUIRE(coeffs != nullptr && n == num_vars(),
              "Problem::add_constraint: coefficient dimension mismatch");
  rows_.push_back(
      Constraint{linalg::Vector(std::vector<double>(coeffs, coeffs + n)), rel, rhs});
}

const Constraint& Problem::constraint(std::size_t i) const {
  OIC_REQUIRE(i < rows_.size(), "Problem::constraint: row out of range");
  return rows_[i];
}

}  // namespace oic::lp
