#pragma once
/// \file problem.hpp
/// Linear-program model builder.
///
/// A Problem is the user-facing description:
///   minimize    c^T x
///   subject to  a_i^T x  (<= | >= | =)  b_i        for every constraint i
///               lo_j <= x_j <= hi_j                for every variable j
/// Bounds may be infinite (use Problem::kInf / -Problem::kInf).
/// The solver (simplex.hpp) consumes this structure.

#include <cstddef>
#include <limits>
#include <vector>

#include "linalg/vector.hpp"

namespace oic::lp {

/// Direction of a linear constraint row.
enum class Relation {
  kLessEq,     ///< a^T x <= b
  kGreaterEq,  ///< a^T x >= b
  kEqual,      ///< a^T x  = b
};

/// One dense constraint row.
struct Constraint {
  linalg::Vector coeffs;  ///< dense coefficient row a (dimension = num variables)
  Relation rel = Relation::kLessEq;
  double rhs = 0.0;
};

/// LP model builder; see the file comment for the canonical form.
class Problem {
 public:
  /// Convention for "no bound".
  static constexpr double kInf = std::numeric_limits<double>::infinity();

  /// Create a problem with `num_vars` variables, all free, zero objective.
  explicit Problem(std::size_t num_vars);

  /// Number of variables.
  std::size_t num_vars() const { return lo_.size(); }
  /// Number of constraint rows.
  std::size_t num_constraints() const { return rows_.size(); }

  /// Add a variable with bounds [lo, hi]; returns its index.
  std::size_t add_variable(double lo = -kInf, double hi = kInf);

  /// Set the bounds of an existing variable.
  void set_bounds(std::size_t j, double lo, double hi);
  /// Lower bound of variable j.
  double lower(std::size_t j) const;
  /// Upper bound of variable j.
  double upper(std::size_t j) const;

  /// Set one objective coefficient (objective is minimized).
  void set_objective_coeff(std::size_t j, double cj);
  /// Replace the whole objective vector; dimension must equal num_vars().
  void set_objective(const linalg::Vector& c);
  /// Current objective vector (always dimension num_vars()).
  const linalg::Vector& objective() const { return c_; }

  /// Append a dense constraint row; `coeffs` must have num_vars() entries.
  void add_constraint(const linalg::Vector& coeffs, Relation rel, double rhs);
  /// Same, reading `num_vars()` coefficients from raw storage (lets callers
  /// feed matrix rows without materializing a Vector per row).
  void add_constraint(const double* coeffs, std::size_t n, Relation rel, double rhs);
  /// Constraint row i.
  const Constraint& constraint(std::size_t i) const;

 private:
  linalg::Vector c_;
  std::vector<double> lo_;
  std::vector<double> hi_;
  std::vector<Constraint> rows_;
};

}  // namespace oic::lp
