#include "lp/simplex.hpp"

#include <cmath>
#include <limits>
#include <vector>

#include "common/error.hpp"

namespace oic::lp {

const char* to_string(Status s) {
  switch (s) {
    case Status::kOptimal:
      return "optimal";
    case Status::kInfeasible:
      return "infeasible";
    case Status::kUnbounded:
      return "unbounded";
    case Status::kIterLimit:
      return "iteration-limit";
  }
  return "unknown";
}

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// How an original variable maps into the standard-form columns.
struct VarMap {
  enum class Kind { kShiftedLow, kShiftedHigh, kSplit } kind;
  std::size_t col = 0;   // primary standard column
  std::size_t col2 = 0;  // negative part for kSplit
  double offset = 0.0;   // x = offset + y (kShiftedLow) or x = offset - y (kShiftedHigh)
};

/// Dense standard-form tableau: minimize c.y s.t. T y = rhs, y >= 0.
struct Tableau {
  std::size_t m = 0;  // rows
  std::size_t n = 0;  // columns (excluding rhs)
  std::vector<double> a;  // m x n row-major
  std::vector<double> rhs;
  std::vector<double> cost;       // phase-2 costs over standard columns
  std::vector<std::size_t> basis; // basis[i] = column basic in row i
  std::vector<bool> blocked;      // columns barred from entering (artificials)

  double& at(std::size_t r, std::size_t c) { return a[r * n + c]; }
  double at(std::size_t r, std::size_t c) const { return a[r * n + c]; }
};

/// One simplex phase over explicit reduced costs computed from `phase_cost`.
/// Returns kOptimal when reduced costs are non-negative, kUnbounded when an
/// entering column has no blocking row, kIterLimit otherwise.
Status run_phase(Tableau& t, const std::vector<double>& phase_cost,
                 const SimplexOptions& opt) {
  const std::size_t m = t.m;
  const std::size_t n = t.n;

  // Reduced-cost row (dual form): z_j = phase_cost_j - sum_i y_i * a_ij where
  // y solves B^T y = c_B.  With a tableau kept in "basis = identity" form the
  // reduced costs can be maintained by direct elimination, which is what we
  // do: `z` mirrors the classical bottom row.
  std::vector<double> z = phase_cost;
  double obj = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    const double cb = phase_cost[t.basis[i]];
    if (cb == 0.0) continue;
    obj += cb * t.rhs[i];
    for (std::size_t j = 0; j < n; ++j) z[j] -= cb * t.at(i, j);
  }

  std::size_t stall = 0;
  double best_obj = obj;
  bool use_bland = false;

  for (std::size_t iter = 0; iter < opt.max_iterations; ++iter) {
    // --- Choose the entering column ---
    std::size_t enter = n;
    if (use_bland) {
      for (std::size_t j = 0; j < n; ++j) {
        if (!t.blocked[j] && z[j] < -opt.cost_tol) {
          enter = j;
          break;
        }
      }
    } else {
      double best = -opt.cost_tol;
      for (std::size_t j = 0; j < n; ++j) {
        if (!t.blocked[j] && z[j] < best) {
          best = z[j];
          enter = j;
        }
      }
    }
    if (enter == n) return Status::kOptimal;

    // --- Ratio test ---
    std::size_t leave = m;
    double best_ratio = kInf;
    for (std::size_t i = 0; i < m; ++i) {
      const double aie = t.at(i, enter);
      if (aie > opt.pivot_tol) {
        const double ratio = t.rhs[i] / aie;
        if (ratio < best_ratio - 1e-12 ||
            (ratio < best_ratio + 1e-12 && leave != m &&
             t.basis[i] < t.basis[leave])) {
          best_ratio = ratio;
          leave = i;
        }
      }
    }
    if (leave == m) return Status::kUnbounded;

    // --- Pivot ---
    const double piv = t.at(leave, enter);
    OIC_CHECK(std::fabs(piv) > opt.pivot_tol, "simplex: degenerate pivot slipped through");
    const double inv = 1.0 / piv;
    for (std::size_t j = 0; j < n; ++j) t.at(leave, j) *= inv;
    t.rhs[leave] *= inv;
    t.at(leave, enter) = 1.0;  // clean exact value

    for (std::size_t i = 0; i < m; ++i) {
      if (i == leave) continue;
      const double f = t.at(i, enter);
      if (f == 0.0) continue;
      for (std::size_t j = 0; j < n; ++j) t.at(i, j) -= f * t.at(leave, j);
      t.at(i, enter) = 0.0;
      t.rhs[i] -= f * t.rhs[leave];
      if (t.rhs[i] < 0.0 && t.rhs[i] > -1e-11) t.rhs[i] = 0.0;
    }
    const double fz = z[enter];
    if (fz != 0.0) {
      for (std::size_t j = 0; j < n; ++j) z[j] -= fz * t.at(leave, j);
      z[enter] = 0.0;
      obj -= fz * t.rhs[leave];
    }
    t.basis[leave] = enter;

    // --- Anti-cycling bookkeeping ---
    if (obj < best_obj - 1e-12) {
      best_obj = obj;
      stall = 0;
      use_bland = false;
    } else if (++stall >= opt.stall_limit) {
      use_bland = true;
    }
  }
  return Status::kIterLimit;
}

}  // namespace

Result solve(const Problem& p, const SimplexOptions& opt) {
  const std::size_t nv = p.num_vars();
  const std::size_t mc = p.num_constraints();

  // ---------- Standard-form conversion ----------
  // Variables become non-negative columns; finite upper bounds on shifted
  // variables become extra <= rows appended after the user's rows.
  std::vector<VarMap> vmap(nv);
  std::size_t ncols = 0;
  struct BoundRow {
    std::size_t col;
    double rhs;
  };
  std::vector<BoundRow> bound_rows;

  for (std::size_t j = 0; j < nv; ++j) {
    const double lo = p.lower(j);
    const double hi = p.upper(j);
    if (std::isfinite(lo)) {
      vmap[j] = {VarMap::Kind::kShiftedLow, ncols, 0, lo};
      ++ncols;
      if (std::isfinite(hi)) bound_rows.push_back({vmap[j].col, hi - lo});
    } else if (std::isfinite(hi)) {
      vmap[j] = {VarMap::Kind::kShiftedHigh, ncols, 0, hi};
      ++ncols;
    } else {
      vmap[j] = {VarMap::Kind::kSplit, ncols, ncols + 1, 0.0};
      ncols += 2;
    }
  }

  const std::size_t m = mc + bound_rows.size();
  // Each row gets a slack/surplus and possibly an artificial; reserve both.
  const std::size_t max_cols = ncols + 2 * m;

  Tableau t;
  t.m = m;
  t.n = max_cols;
  t.a.assign(m * max_cols, 0.0);
  t.rhs.assign(m, 0.0);
  t.cost.assign(max_cols, 0.0);
  t.basis.assign(m, 0);
  t.blocked.assign(max_cols, false);

  // Objective over standard columns.
  for (std::size_t j = 0; j < nv; ++j) {
    const double cj = p.objective()[j];
    if (cj == 0.0) continue;
    switch (vmap[j].kind) {
      case VarMap::Kind::kShiftedLow:
        t.cost[vmap[j].col] += cj;
        break;
      case VarMap::Kind::kShiftedHigh:
        t.cost[vmap[j].col] -= cj;
        break;
      case VarMap::Kind::kSplit:
        t.cost[vmap[j].col] += cj;
        t.cost[vmap[j].col2] -= cj;
        break;
    }
  }
  // Constant objective offset from shifted variables.
  double obj_offset = 0.0;
  for (std::size_t j = 0; j < nv; ++j) {
    if (vmap[j].kind != VarMap::Kind::kSplit) obj_offset += p.objective()[j] * vmap[j].offset;
  }

  // Fill constraint rows (user rows then bound rows).
  std::size_t next_extra = ncols;  // next free column for slack/artificial
  std::vector<std::size_t> artificial_cols;
  std::vector<double> phase1_cost(max_cols, 0.0);

  auto emit_row = [&](std::size_t r, const linalg::Vector* coeffs, Relation rel,
                      double rhs, const BoundRow* brow) {
    double b = rhs;
    if (coeffs != nullptr) {
      for (std::size_t j = 0; j < nv; ++j) {
        const double aij = (*coeffs)[j];
        if (aij == 0.0) continue;
        switch (vmap[j].kind) {
          case VarMap::Kind::kShiftedLow:
            t.at(r, vmap[j].col) += aij;
            b -= aij * vmap[j].offset;
            break;
          case VarMap::Kind::kShiftedHigh:
            t.at(r, vmap[j].col) -= aij;
            b -= aij * vmap[j].offset;
            break;
          case VarMap::Kind::kSplit:
            t.at(r, vmap[j].col) += aij;
            t.at(r, vmap[j].col2) -= aij;
            break;
        }
      }
    } else {
      t.at(r, brow->col) = 1.0;
      b = brow->rhs;
      rel = Relation::kLessEq;
    }

    // Normalize to b >= 0.
    bool flipped = false;
    if (b < 0.0) {
      for (std::size_t j = 0; j < ncols; ++j) t.at(r, j) = -t.at(r, j);
      b = -b;
      flipped = true;
      if (rel == Relation::kLessEq)
        rel = Relation::kGreaterEq;
      else if (rel == Relation::kGreaterEq)
        rel = Relation::kLessEq;
    }
    (void)flipped;
    t.rhs[r] = b;

    if (rel == Relation::kLessEq) {
      const std::size_t s = next_extra++;
      t.at(r, s) = 1.0;
      t.basis[r] = s;
    } else if (rel == Relation::kGreaterEq) {
      const std::size_t s = next_extra++;
      t.at(r, s) = -1.0;
      const std::size_t art = next_extra++;
      t.at(r, art) = 1.0;
      t.basis[r] = art;
      artificial_cols.push_back(art);
      phase1_cost[art] = 1.0;
    } else {  // kEqual
      const std::size_t art = next_extra++;
      t.at(r, art) = 1.0;
      t.basis[r] = art;
      artificial_cols.push_back(art);
      phase1_cost[art] = 1.0;
    }
  };

  for (std::size_t i = 0; i < mc; ++i) {
    const Constraint& row = p.constraint(i);
    emit_row(i, &row.coeffs, row.rel, row.rhs, nullptr);
  }
  for (std::size_t i = 0; i < bound_rows.size(); ++i) {
    emit_row(mc + i, nullptr, Relation::kLessEq, 0.0, &bound_rows[i]);
  }

  // Shrink to the columns actually used.
  const std::size_t used = next_extra;
  if (used < max_cols) {
    std::vector<double> a2(m * used);
    for (std::size_t r = 0; r < m; ++r)
      for (std::size_t c = 0; c < used; ++c) a2[r * used + c] = t.at(r, c);
    t.a = std::move(a2);
    t.n = used;
    t.cost.resize(used);
    t.blocked.resize(used);
    phase1_cost.resize(used);
  }

  // ---------- Phase 1 ----------
  if (!artificial_cols.empty()) {
    const Status s1 = run_phase(t, phase1_cost, opt);
    if (s1 == Status::kIterLimit) return {Status::kIterLimit, 0.0, {}};
    OIC_CHECK(s1 != Status::kUnbounded, "simplex: phase 1 cannot be unbounded");
    // Residual infeasibility = sum of artificial basic values.
    double resid = 0.0;
    for (std::size_t i = 0; i < m; ++i) {
      if (phase1_cost[t.basis[i]] > 0.0) resid += t.rhs[i];
    }
    if (resid > opt.feas_tol) return {Status::kInfeasible, 0.0, {}};

    // Drive remaining zero-level artificials out of the basis where possible.
    for (std::size_t i = 0; i < m; ++i) {
      if (phase1_cost[t.basis[i]] == 0.0) continue;
      std::size_t piv_col = t.n;
      for (std::size_t j = 0; j < t.n; ++j) {
        if (phase1_cost[j] > 0.0) continue;  // never pivot in an artificial
        if (std::fabs(t.at(i, j)) > opt.pivot_tol) {
          piv_col = j;
          break;
        }
      }
      if (piv_col == t.n) continue;  // redundant row; artificial stays at zero
      const double piv = t.at(i, piv_col);
      const double inv = 1.0 / piv;
      for (std::size_t j = 0; j < t.n; ++j) t.at(i, j) *= inv;
      t.rhs[i] *= inv;
      for (std::size_t r = 0; r < m; ++r) {
        if (r == i) continue;
        const double f = t.at(r, piv_col);
        if (f == 0.0) continue;
        for (std::size_t j = 0; j < t.n; ++j) t.at(r, j) -= f * t.at(i, j);
        t.rhs[r] -= f * t.rhs[i];
      }
      t.basis[i] = piv_col;
    }
    // Bar artificials from ever entering again.
    for (std::size_t c : artificial_cols) t.blocked[c] = true;
  }

  // ---------- Phase 2 ----------
  const Status s2 = run_phase(t, t.cost, opt);
  if (s2 != Status::kOptimal) return {s2, 0.0, {}};

  // ---------- Recover the original variables ----------
  std::vector<double> y(t.n, 0.0);
  for (std::size_t i = 0; i < m; ++i) y[t.basis[i]] = t.rhs[i];

  linalg::Vector x(nv);
  for (std::size_t j = 0; j < nv; ++j) {
    switch (vmap[j].kind) {
      case VarMap::Kind::kShiftedLow:
        x[j] = vmap[j].offset + y[vmap[j].col];
        break;
      case VarMap::Kind::kShiftedHigh:
        x[j] = vmap[j].offset - y[vmap[j].col];
        break;
      case VarMap::Kind::kSplit:
        x[j] = y[vmap[j].col] - y[vmap[j].col2];
        break;
    }
  }
  // Recompute the objective from the original data; this is immune to any
  // accumulated tableau round-off.
  (void)obj_offset;
  const double obj = linalg::dot(p.objective(), x);
  return {Status::kOptimal, obj, std::move(x)};
}

}  // namespace oic::lp
