#include "lp/simplex.hpp"

#include "lp/prepared.hpp"

namespace oic::lp {

const char* to_string(Status s) {
  switch (s) {
    case Status::kOptimal:
      return "optimal";
    case Status::kInfeasible:
      return "infeasible";
    case Status::kUnbounded:
      return "unbounded";
    case Status::kIterLimit:
      return "iteration-limit";
  }
  return "unknown";
}

Result solve(const Problem& p, const SimplexOptions& opt) {
  // One-shot path: prepare, then solve by moving the template into the
  // phase driver (no tableau copy).  Hot loops that solve the same
  // structure repeatedly should hold a PreparedProblem + SolverWorkspace
  // instead (see lp/prepared.hpp); the phases and the arithmetic are
  // shared, so both paths return bit-identical results.
  return PreparedProblem(p).solve_once(opt);
}

}  // namespace oic::lp
