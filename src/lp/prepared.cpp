#include "lp/prepared.hpp"

#include <atomic>
#include <cmath>
#include <limits>
#include <utility>

#include "common/error.hpp"

namespace oic::lp {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Monotonic token source shared by problem identities and warm-state /
/// workspace pairing stamps.
std::atomic<std::uint64_t> g_serial{0};

/// The relation a row effectively has after the rhs-sign normalization
/// (negating a row swaps <= and >=; equality is orientation-free).  Every
/// cold/warm code path that reasons about a row's slack/artificial layout
/// must agree with this one definition.
Relation effective_relation(Relation rel, bool flipped) {
  if (!flipped) return rel;
  if (rel == Relation::kLessEq) return Relation::kGreaterEq;
  if (rel == Relation::kGreaterEq) return Relation::kLessEq;
  return Relation::kEqual;
}

/// One simplex phase over explicit reduced costs computed from `phase_cost`.
/// Identical to the classical tableau phase previously embedded in
/// lp::solve(); operates on the workspace copy of the tableau.  `blocked`
/// may be null (no columns barred).
Status run_phase(std::size_t m, std::size_t n, std::vector<double>& a,
                 std::vector<double>& rhs, std::vector<std::size_t>& basis,
                 const unsigned char* blocked, const std::vector<double>& phase_cost,
                 std::vector<double>& z, const SimplexOptions& opt) {
  auto at = [&](std::size_t r, std::size_t c) -> double& { return a[r * n + c]; };

  // Reduced-cost row mirrors the classical bottom row.
  z.assign(phase_cost.begin(), phase_cost.end());
  double obj = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    const double cb = phase_cost[basis[i]];
    if (cb == 0.0) continue;
    obj += cb * rhs[i];
    for (std::size_t j = 0; j < n; ++j) z[j] -= cb * at(i, j);
  }

  std::size_t stall = 0;
  double best_obj = obj;
  bool use_bland = false;

  for (std::size_t iter = 0; iter < opt.max_iterations; ++iter) {
    // --- Choose the entering column ---
    std::size_t enter = n;
    if (use_bland) {
      for (std::size_t j = 0; j < n; ++j) {
        if (!(blocked && blocked[j]) && z[j] < -opt.cost_tol) {
          enter = j;
          break;
        }
      }
    } else {
      double best = -opt.cost_tol;
      for (std::size_t j = 0; j < n; ++j) {
        if (!(blocked && blocked[j]) && z[j] < best) {
          best = z[j];
          enter = j;
        }
      }
    }
    if (enter == n) return Status::kOptimal;

    // --- Ratio test ---
    std::size_t leave = m;
    double best_ratio = kInf;
    for (std::size_t i = 0; i < m; ++i) {
      const double aie = at(i, enter);
      if (aie > opt.pivot_tol) {
        const double ratio = rhs[i] / aie;
        if (ratio < best_ratio - 1e-12 ||
            (ratio < best_ratio + 1e-12 && leave != m && basis[i] < basis[leave])) {
          best_ratio = ratio;
          leave = i;
        }
      }
    }
    if (leave == m) return Status::kUnbounded;

    // --- Pivot ---
    const double piv = at(leave, enter);
    OIC_CHECK(std::fabs(piv) > opt.pivot_tol,
              "simplex: degenerate pivot slipped through");
    const double inv = 1.0 / piv;
    double* arow = &a[leave * n];
    for (std::size_t j = 0; j < n; ++j) arow[j] *= inv;
    rhs[leave] *= inv;
    arow[enter] = 1.0;  // clean exact value

    for (std::size_t i = 0; i < m; ++i) {
      if (i == leave) continue;
      double* irow = &a[i * n];
      const double f = irow[enter];
      if (f == 0.0) continue;
      for (std::size_t j = 0; j < n; ++j) irow[j] -= f * arow[j];
      irow[enter] = 0.0;
      rhs[i] -= f * rhs[leave];
      if (rhs[i] < 0.0 && rhs[i] > -1e-11) rhs[i] = 0.0;
    }
    const double fz = z[enter];
    if (fz != 0.0) {
      for (std::size_t j = 0; j < n; ++j) z[j] -= fz * arow[j];
      z[enter] = 0.0;
      obj -= fz * rhs[leave];
    }
    basis[leave] = enter;

    // --- Anti-cycling bookkeeping ---
    if (obj < best_obj - 1e-12) {
      best_obj = obj;
      stall = 0;
      use_bland = false;
    } else if (++stall >= opt.stall_limit) {
      use_bland = true;
    }
  }
  return Status::kIterLimit;
}

}  // namespace

void PreparedProblem::emit_structural(std::size_t r, const linalg::Vector& coeffs,
                                      double sign) {
  double* row = &a_[r * n_];
  for (std::size_t j = 0; j < ncols_; ++j) row[j] = 0.0;
  for (std::size_t j = 0; j < nv_; ++j) {
    const double aij = coeffs[j] * sign;
    if (aij == 0.0) continue;
    switch (vmap_[j].kind) {
      case VarMap::Kind::kShiftedLow:
        row[vmap_[j].col] += aij;
        break;
      case VarMap::Kind::kShiftedHigh:
        row[vmap_[j].col] -= aij;
        break;
      case VarMap::Kind::kSplit:
        row[vmap_[j].col] += aij;
        row[vmap_[j].col2] -= aij;
        break;
    }
  }
}

PreparedProblem::PreparedProblem(const Problem& p,
                                 const std::vector<std::size_t>& dynamic_rows) {
  problem_id_ = ++g_serial;
  nv_ = p.num_vars();
  mc_ = p.num_constraints();
  c_ = p.objective();

  // ---------- Variable mapping ----------
  // Variables become non-negative columns; finite upper bounds on shifted
  // variables become extra <= rows appended after the user's rows.
  vmap_.resize(nv_);
  ncols_ = 0;
  struct BoundRow {
    std::size_t col;
    double rhs;
  };
  std::vector<BoundRow> bound_rows;
  for (std::size_t j = 0; j < nv_; ++j) {
    const double lo = p.lower(j);
    const double hi = p.upper(j);
    if (std::isfinite(lo)) {
      vmap_[j] = {VarMap::Kind::kShiftedLow, ncols_, 0, lo};
      ++ncols_;
      if (std::isfinite(hi)) bound_rows.push_back({vmap_[j].col, hi - lo});
    } else if (std::isfinite(hi)) {
      vmap_[j] = {VarMap::Kind::kShiftedHigh, ncols_, 0, hi};
      ++ncols_;
    } else {
      vmap_[j] = {VarMap::Kind::kSplit, ncols_, ncols_ + 1, 0.0};
      ncols_ += 2;
    }
  }

  m_ = mc_ + bound_rows.size();
  rows_.assign(m_, RowInfo{});
  row_coeffs_.reserve(mc_);
  for (std::size_t i = 0; i < mc_; ++i) {
    const Constraint& row = p.constraint(i);
    OIC_REQUIRE(row.coeffs.size() == nv_, "PreparedProblem: ragged constraint row");
    row_coeffs_.push_back(row.coeffs);
    rows_[i].rel = row.rel;
  }
  for (std::size_t i : dynamic_rows) {
    OIC_REQUIRE(i < mc_, "PreparedProblem: dynamic row index out of range");
    rows_[i].dynamic = true;
  }

  // ---------- Column reservation ----------
  // Walk the rows in emission order assigning slack/artificial columns, so
  // the layout matches what a fresh conversion of the same Problem builds
  // (dynamic inequality rows additionally reserve an artificial up front).
  std::size_t next_extra = ncols_;
  for (std::size_t i = 0; i < mc_; ++i) {
    RowInfo& info = rows_[i];
    // The *effective* relation depends on the rhs sign at emission time.
    double b = p.constraint(i).rhs;
    const linalg::Vector& coeffs = row_coeffs_[i];
    for (std::size_t j = 0; j < nv_; ++j) {
      const double aij = coeffs[j];
      if (aij == 0.0) continue;
      if (vmap_[j].kind != VarMap::Kind::kSplit) b -= aij * vmap_[j].offset;
    }
    info.flipped = b < 0.0;
    const Relation eff = effective_relation(info.rel, info.flipped);
    if (eff == Relation::kEqual) {
      info.art_col = next_extra++;
    } else if (eff == Relation::kLessEq) {
      info.slack_col = next_extra++;
      if (info.dynamic) info.art_col = next_extra++;
    } else {  // kGreaterEq
      info.slack_col = next_extra++;
      info.art_col = next_extra++;
    }
  }
  for (std::size_t i = 0; i < bound_rows.size(); ++i) {
    rows_[mc_ + i].rel = Relation::kLessEq;
    rows_[mc_ + i].slack_col = next_extra++;
  }
  n_ = next_extra;

  // ---------- Template tableau ----------
  a_.assign(m_ * n_, 0.0);
  rhs_.assign(m_, 0.0);
  basis0_.assign(m_, 0);
  phase1_cost_.assign(n_, 0.0);
  blocked0_.assign(n_, 0);
  any_artificial_ = false;
  for (const RowInfo& info : rows_) {
    if (info.art_col != kNoCol) {
      blocked0_[info.art_col] = 1;
      any_artificial_ = true;  // column layout is fixed; never changes again
    }
  }
  for (std::size_t i = 0; i < mc_; ++i) set_rhs(i, p.constraint(i).rhs);
  for (std::size_t i = 0; i < bound_rows.size(); ++i) {
    const std::size_t r = mc_ + i;
    a_[r * n_ + bound_rows[i].col] = 1.0;
    a_[r * n_ + rows_[r].slack_col] = 1.0;
    rhs_[r] = bound_rows[i].rhs;
    basis0_[r] = rows_[r].slack_col;
  }

  set_objective(c_);
}

void PreparedProblem::set_rhs(std::size_t i, double rhs) {
  OIC_REQUIRE(i < mc_, "PreparedProblem::set_rhs: row index out of range");
  RowInfo& info = rows_[i];

  // Normalized right-hand side, accumulated in the same order as a fresh
  // standard-form conversion (bit-parity matters for reproducibility).
  double b = rhs;
  const linalg::Vector& coeffs = row_coeffs_[i];
  for (std::size_t j = 0; j < nv_; ++j) {
    const double aij = coeffs[j];
    if (aij == 0.0) continue;
    if (vmap_[j].kind != VarMap::Kind::kSplit) b -= aij * vmap_[j].offset;
  }
  const bool flip = b < 0.0;

  // Hot path: orientation unchanged -- the structural row, slack/artificial
  // layout, starting basis and phase-1 costs already in the template are
  // all still correct; only the scalar rhs moves.
  if (info.emitted && flip == info.flipped) {
    rhs_[i] = flip ? -b : b;
    return;
  }

  if (flip != info.flipped && info.rel != Relation::kEqual) {
    OIC_REQUIRE(info.dynamic,
                "PreparedProblem::set_rhs: rhs sign change on a non-dynamic "
                "inequality row would alter the standard-form structure; "
                "declare the row dynamic at construction");
  }
  info.flipped = flip;
  const Relation eff = effective_relation(info.rel, flip);

  emit_structural(i, coeffs, flip ? -1.0 : 1.0);
  double* row = &a_[i * n_];
  if (info.slack_col != kNoCol) row[info.slack_col] = 0.0;
  if (info.art_col != kNoCol) {
    row[info.art_col] = 0.0;
    phase1_cost_[info.art_col] = 0.0;
  }
  if (eff == Relation::kLessEq) {
    row[info.slack_col] = 1.0;
    basis0_[i] = info.slack_col;
  } else if (eff == Relation::kGreaterEq) {
    row[info.slack_col] = -1.0;
    row[info.art_col] = 1.0;
    basis0_[i] = info.art_col;
    phase1_cost_[info.art_col] = 1.0;
  } else {  // kEqual
    row[info.art_col] = 1.0;
    basis0_[i] = info.art_col;
    phase1_cost_[info.art_col] = 1.0;
  }
  rhs_[i] = flip ? -b : b;
  info.emitted = true;
}

void PreparedProblem::set_objective(const linalg::Vector& c) {
  OIC_REQUIRE(c.size() == nv_, "PreparedProblem::set_objective: dimension mismatch");
  ++objective_revision_;  // carried warm bases priced the old objective
  c_ = c;
  cost_.assign(n_, 0.0);
  for (std::size_t j = 0; j < nv_; ++j) {
    const double cj = c_[j];
    if (cj == 0.0) continue;
    switch (vmap_[j].kind) {
      case VarMap::Kind::kShiftedLow:
        cost_[vmap_[j].col] += cj;
        break;
      case VarMap::Kind::kShiftedHigh:
        cost_[vmap_[j].col] -= cj;
        break;
      case VarMap::Kind::kSplit:
        cost_[vmap_[j].col] += cj;
        cost_[vmap_[j].col2] -= cj;
        break;
    }
  }
}

Result PreparedProblem::solve(SolverWorkspace& ws, const SimplexOptions& opt) const {
  // Overwriting the tableau orphans any WarmState annotating this
  // workspace; clear the pairing token so solve_warm notices.
  ws.warm_serial = 0;
  // Working copies; std::vector::assign reuses capacity, so repeated solves
  // through one workspace do not allocate.
  ws.a.assign(a_.begin(), a_.end());
  ws.rhs.assign(rhs_.begin(), rhs_.end());
  ws.basis.assign(basis0_.begin(), basis0_.end());
  return run_phases(ws, opt);
}

Result PreparedProblem::solve_once(const SimplexOptions& opt) && {
  // The template will never be reused: hand its buffers to the phase
  // driver directly instead of copying them.
  SolverWorkspace ws;
  ws.a = std::move(a_);
  ws.rhs = std::move(rhs_);
  ws.basis = std::move(basis0_);
  return run_phases(ws, opt);
}

Result PreparedProblem::run_phases(SolverWorkspace& ws, const SimplexOptions& opt) const {
  // ---------- Phase 1 ----------
  if (any_artificial_) {
    const Status s1 = run_phase(m_, n_, ws.a, ws.rhs, ws.basis, nullptr, phase1_cost_,
                                ws.z, opt);
    if (s1 == Status::kIterLimit) return {Status::kIterLimit, 0.0, {}};
    OIC_CHECK(s1 != Status::kUnbounded, "simplex: phase 1 cannot be unbounded");
    // Residual infeasibility = sum of artificial basic values.
    double resid = 0.0;
    for (std::size_t i = 0; i < m_; ++i) {
      if (phase1_cost_[ws.basis[i]] > 0.0) resid += ws.rhs[i];
    }
    if (resid > opt.feas_tol) return {Status::kInfeasible, 0.0, {}};

    // Drive remaining zero-level artificials out of the basis where possible.
    for (std::size_t i = 0; i < m_; ++i) {
      if (phase1_cost_[ws.basis[i]] == 0.0) continue;
      std::size_t piv_col = n_;
      for (std::size_t j = 0; j < n_; ++j) {
        if (phase1_cost_[j] > 0.0) continue;  // never pivot in an artificial
        if (std::fabs(ws.a[i * n_ + j]) > opt.pivot_tol) {
          piv_col = j;
          break;
        }
      }
      if (piv_col == n_) continue;  // redundant row; artificial stays at zero
      const double piv = ws.a[i * n_ + piv_col];
      const double inv = 1.0 / piv;
      for (std::size_t j = 0; j < n_; ++j) ws.a[i * n_ + j] *= inv;
      ws.rhs[i] *= inv;
      for (std::size_t r = 0; r < m_; ++r) {
        if (r == i) continue;
        const double f = ws.a[r * n_ + piv_col];
        if (f == 0.0) continue;
        for (std::size_t j = 0; j < n_; ++j) ws.a[r * n_ + j] -= f * ws.a[i * n_ + j];
        ws.rhs[r] -= f * ws.rhs[i];
      }
      ws.basis[i] = piv_col;
    }
  }

  // ---------- Phase 2 ----------
  // Artificial columns are barred from entering (blocked0_ marks them).
  const Status s2 = run_phase(m_, n_, ws.a, ws.rhs, ws.basis,
                              any_artificial_ ? blocked0_.data() : nullptr, cost_,
                              ws.z, opt);
  if (s2 != Status::kOptimal) return {s2, 0.0, {}};

  return extract(ws);
}

Result PreparedProblem::extract(SolverWorkspace& ws) const {
  // Recover the original variables from the basic solution.
  ws.y.assign(n_, 0.0);
  for (std::size_t i = 0; i < m_; ++i) ws.y[ws.basis[i]] = ws.rhs[i];

  linalg::Vector x(nv_);
  for (std::size_t j = 0; j < nv_; ++j) {
    switch (vmap_[j].kind) {
      case VarMap::Kind::kShiftedLow:
        x[j] = vmap_[j].offset + ws.y[vmap_[j].col];
        break;
      case VarMap::Kind::kShiftedHigh:
        x[j] = vmap_[j].offset - ws.y[vmap_[j].col];
        break;
      case VarMap::Kind::kSplit:
        x[j] = ws.y[vmap_[j].col] - ws.y[vmap_[j].col2];
        break;
    }
  }
  // Recompute the objective from the original data; this is immune to any
  // accumulated tableau round-off.
  const double obj = linalg::dot(c_, x);
  return {Status::kOptimal, obj, std::move(x)};
}

Result PreparedProblem::solve_warm(SolverWorkspace& ws, WarmState& warm,
                                   const SimplexOptions& opt) const {
  if (warm.objective_revision != objective_revision_) warm.valid = false;
  // A valid WarmState annotates the tableau of the exact (problem,
  // workspace, solve) triple it was produced with; any mismatch -- fresh
  // workspace, foreign workspace of any shape, one since overwritten by
  // another solve, or a snapshot taken by a different PreparedProblem --
  // means the carried tableau is not ours: fall back cold.
  if (warm.serial == 0 || warm.serial != ws.warm_serial ||
      warm.problem_id != problem_id_) {
    warm.valid = false;
  }

  // Cold path: run both phases, then snapshot the optimum so the next call
  // can continue from it.
  if (!warm.valid) {
    const Result r = solve(ws, opt);
    if (r.status == Status::kOptimal) {
      warm.b.assign(rhs_.begin(), rhs_.end());
      warm.flip.resize(m_);
      for (std::size_t i = 0; i < m_; ++i) warm.flip[i] = rows_[i].flipped ? 1 : 0;
      warm.valid = true;
      warm.solves_since_cold = 0;
      warm.objective_revision = objective_revision_;
      warm.serial = ++g_serial;
      warm.problem_id = problem_id_;
      ws.warm_serial = warm.serial;
    }
    return r;
  }

  // ---- Rhs update in the carried basis ----
  // The tableau rows keep the orientation they had at snapshot time; a row
  // whose template orientation has since flipped (set_rhs crossed zero) is
  // accounted for by negating the target value.  Each row's standard-form
  // unit column -- the one that carried +1 at snapshot time: the slack for
  // an effectively-<= row, the artificial for >= and equality rows -- holds
  // the matching column of B^-1, so the basic solution shifts by
  // B^-1 e_r * delta_r.
  for (std::size_t r = 0; r < m_; ++r) {
    const double oriented =
        (rows_[r].flipped ? 1 : 0) == warm.flip[r] ? rhs_[r] : -rhs_[r];
    const double delta = oriented - warm.b[r];
    if (delta == 0.0) continue;
    const Relation eff_snap = effective_relation(rows_[r].rel, warm.flip[r] != 0);
    const std::size_t unit =
        eff_snap == Relation::kLessEq ? rows_[r].slack_col : rows_[r].art_col;
    for (std::size_t i = 0; i < m_; ++i) ws.rhs[i] += ws.a[i * n_ + unit] * delta;
    warm.b[r] = oriented;
  }

  // ---- Dual simplex: restore primal feasibility, keep dual feasibility ----
  const unsigned char* blocked = any_artificial_ ? blocked0_.data() : nullptr;
  const std::size_t max_dual_iters = m_ + 200;
  bool ok = false;
  for (std::size_t iter = 0; iter <= max_dual_iters; ++iter) {
    // Leaving row: most negative basic value.
    std::size_t leave = m_;
    double most_neg = -1e-9;
    for (std::size_t i = 0; i < m_; ++i) {
      if (ws.rhs[i] < most_neg) {
        most_neg = ws.rhs[i];
        leave = i;
      }
    }
    if (leave == m_) {
      ok = true;
      break;
    }
    if (iter == max_dual_iters) break;  // stalled; fall back to a cold solve

    // Entering column: dual ratio test over the leaving row's negative
    // entries (artificials stay barred).
    double* lrow = &ws.a[leave * n_];
    std::size_t enter = n_;
    double best_ratio = kInf;
    for (std::size_t j = 0; j < n_; ++j) {
      if (blocked && blocked[j]) continue;
      if (lrow[j] < -opt.pivot_tol) {
        const double ratio = ws.z[j] / -lrow[j];
        // Strict improvement only: near-ties keep the earlier (lowest)
        // column, since j scans ascending -- a Bland-style bias that
        // guards against dual cycling.
        if (ratio < best_ratio - 1e-12) {
          best_ratio = ratio;
          enter = j;
        }
      }
    }
    if (enter == n_) {
      // No entering column: the carried tableau says the patched LP is
      // primal infeasible.  The dual test triggers at a much tighter
      // tolerance than the cold path's phase-1 feas_tol, so confirm through
      // a cold solve rather than rejecting a marginally-feasible state the
      // two-phase path would accept.  (Infeasible queries are rare; the
      // extra cold solve is noise.)
      warm.valid = false;
      return solve_warm(ws, warm, opt);
    }

    // Pivot (identical mechanics to the primal phase).
    const double piv = lrow[enter];
    const double inv = 1.0 / piv;
    for (std::size_t j = 0; j < n_; ++j) lrow[j] *= inv;
    ws.rhs[leave] *= inv;
    lrow[enter] = 1.0;
    for (std::size_t i = 0; i < m_; ++i) {
      if (i == leave) continue;
      double* irow = &ws.a[i * n_];
      const double f = irow[enter];
      if (f == 0.0) continue;
      for (std::size_t j = 0; j < n_; ++j) irow[j] -= f * lrow[j];
      irow[enter] = 0.0;
      ws.rhs[i] -= f * ws.rhs[leave];
      if (ws.rhs[i] < 0.0 && ws.rhs[i] > -1e-11) ws.rhs[i] = 0.0;
    }
    const double fz = ws.z[enter];
    if (fz != 0.0) {
      for (std::size_t j = 0; j < n_; ++j) ws.z[j] -= fz * lrow[j];
      ws.z[enter] = 0.0;
    }
    ws.basis[leave] = enter;
  }

  if (!ok) {
    // Dual iteration stalled (degenerate cycling); redo a cold solve.
    warm.valid = false;
    return solve_warm(ws, warm, opt);
  }
  // Scheduled refactorization: bound accumulated round-off in the carried
  // tableau by forcing the next call through the cold path.
  if (++warm.solves_since_cold >= 64) warm.valid = false;
  return extract(ws);
}

}  // namespace oic::lp
