#include "lp/prepared.hpp"

#include <atomic>
#include <cmath>
#include <limits>
#include <utility>

#include "common/error.hpp"
#include "linalg/dispatch.hpp"

namespace oic::lp {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Scheduled-refactorization cadence for warm-started solving: after this
/// many warm continuations the carried tableau is rebuilt (from the
/// canonical seed when one exists, through the two-phase path otherwise)
/// to bound accumulated round-off.  At ~2 dual pivots per warm solve this
/// caps the pivots compounded into one tableau at a few hundred --
/// comfortable for the well-scaled MPC tableaus (the warm-vs-cold parity
/// tests in test_perf run far past one refactor window and stay at 1e-6).
constexpr std::size_t kRefactorEvery = 256;

/// Monotonic token source shared by problem identities and warm-state /
/// workspace pairing stamps.
std::atomic<std::uint64_t> g_serial{0};

/// The relation a row effectively has after the rhs-sign normalization
/// (negating a row swaps <= and >=; equality is orientation-free).  Every
/// cold/warm code path that reasons about a row's slack/artificial layout
/// must agree with this one definition.
Relation effective_relation(Relation rel, bool flipped) {
  if (!flipped) return rel;
  if (rel == Relation::kLessEq) return Relation::kGreaterEq;
  if (rel == Relation::kGreaterEq) return Relation::kLessEq;
  return Relation::kEqual;
}

/// One simplex phase over explicit reduced costs computed from `phase_cost`.
/// Semantically identical to the classical dense tableau phase this file
/// used to carry, rewritten on the sparse-packed pivot:
///
///   * pricing and the z updates run through the per-ISA dispatch kernels
///     (linalg/dispatch.hpp) -- the Dantzig scan is exactly "first index
///     of the global minimum below -cost_tol", which vectorizes without
///     changing which column wins;
///   * the entering column is gathered contiguously once per pivot and
///     feeds both the ratio test and the row-update factors (the dense
///     version walked the strided column twice);
///   * the pivot row is scaled skip-zero and packed as (index, value)
///     pairs; each touched row is then updated over the packed support
///     (~10% of the width on the MPC tableaus) or, above a density
///     threshold, through the vectorized dense kernel.
///
/// Every variant is bit-identical to the dense original: template zeros
/// are +0.0 and skip-zero scaling never manufactures -0.0, so a skipped
/// entry's dense update would have been an exact no-op
/// (x -= f*(+-0) == x for every value the tableau holds); the dense
/// kernel applies the identical mul+sub per element.  docs/perf.md spells
/// out the signed-zero argument.
Status run_phase(std::size_t m, std::size_t n, SolverWorkspace& ws,
                 const unsigned char* blocked, const std::vector<double>& phase_cost,
                 const SimplexOptions& opt) {
  const linalg::detail::KernelTable& kt = linalg::detail::table();
  std::vector<double>& a = ws.a;
  std::vector<double>& rhs = ws.rhs;
  std::vector<std::size_t>& basis = ws.basis;
  std::vector<double>& z = ws.z;

  // Reduced-cost row mirrors the classical bottom row.
  z.assign(phase_cost.begin(), phase_cost.end());
  double obj = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    const double cb = phase_cost[basis[i]];
    if (cb == 0.0) continue;
    obj += cb * rhs[i];
    kt.lp_row_sub_scaled(z.data(), &a[i * n], cb, n);
  }

  ws.col.resize(m);
  ws.nz.resize(n);
  ws.nzv.resize(n);
  double* col = ws.col.data();
  std::uint32_t* nzi = ws.nz.data();
  double* nzv = ws.nzv.data();

  std::size_t stall = 0;
  double best_obj = obj;
  bool use_bland = false;

  for (std::size_t iter = 0; iter < opt.max_iterations; ++iter) {
    // --- Choose the entering column ---
    std::size_t enter = n;
    if (use_bland) {
      for (std::size_t j = 0; j < n; ++j) {
        if (!(blocked && blocked[j]) && z[j] < -opt.cost_tol) {
          enter = j;
          break;
        }
      }
    } else {
      const std::ptrdiff_t e = kt.lp_argmin_masked(z.data(), blocked, n, -opt.cost_tol);
      if (e >= 0) enter = static_cast<std::size_t>(e);
    }
    if (enter == n) return Status::kOptimal;

    // --- Gather the entering column; ratio test over it ---
    for (std::size_t i = 0; i < m; ++i) col[i] = a[i * n + enter];

    std::size_t leave = m;
    double best_ratio = kInf;
    for (std::size_t i = 0; i < m; ++i) {
      const double aie = col[i];
      if (aie > opt.pivot_tol) {
        const double ratio = rhs[i] / aie;
        if (ratio < best_ratio - 1e-12 ||
            (ratio < best_ratio + 1e-12 && leave != m && basis[i] < basis[leave])) {
          best_ratio = ratio;
          leave = i;
        }
      }
    }
    if (leave == m) return Status::kUnbounded;

    // --- Pivot: skip-zero scale + pack the pivot row ---
    const double piv = col[leave];
    OIC_CHECK(std::fabs(piv) > opt.pivot_tol,
              "simplex: degenerate pivot slipped through");
    const double inv = 1.0 / piv;
    double* arow = &a[leave * n];
    std::size_t nnz = 0;
    for (std::size_t j = 0; j < n; ++j) {
      const double v = arow[j];
      if (v == 0.0) continue;
      const double sv = (j == enter) ? 1.0 : v * inv;  // clean exact unit entry
      arow[j] = sv;
      nzi[nnz] = static_cast<std::uint32_t>(j);
      nzv[nnz] = sv;
      ++nnz;
    }
    rhs[leave] *= inv;
    const bool dense_update = nnz * 4 > n;

    for (std::size_t i = 0; i < m; ++i) {
      if (i == leave) continue;
      const double f = col[i];
      if (f == 0.0) continue;
      double* irow = &a[i * n];
      if (dense_update) {
        kt.lp_row_sub_scaled(irow, arow, f, n);
      } else {
        for (std::size_t k = 0; k < nnz; ++k) irow[nzi[k]] -= f * nzv[k];
      }
      irow[enter] = 0.0;
      rhs[i] -= f * rhs[leave];
      if (rhs[i] < 0.0 && rhs[i] > -1e-11) rhs[i] = 0.0;
    }
    const double fz = z[enter];
    if (fz != 0.0) {
      if (dense_update) {
        kt.lp_row_sub_scaled(z.data(), arow, fz, n);
      } else {
        for (std::size_t k = 0; k < nnz; ++k) z[nzi[k]] -= fz * nzv[k];
      }
      z[enter] = 0.0;
      obj -= fz * rhs[leave];
    }
    basis[leave] = enter;

    // --- Anti-cycling bookkeeping ---
    if (obj < best_obj - 1e-12) {
      best_obj = obj;
      stall = 0;
      use_bland = false;
    } else if (++stall >= opt.stall_limit) {
      use_bland = true;
    }
  }
  return Status::kIterLimit;
}

}  // namespace

void PreparedProblem::emit_structural(std::size_t r, const linalg::Vector& coeffs,
                                      double sign) {
  double* row = &a_[r * n_];
  for (std::size_t j = 0; j < ncols_; ++j) row[j] = 0.0;
  for (std::size_t j = 0; j < nv_; ++j) {
    const double aij = coeffs[j] * sign;
    if (aij == 0.0) continue;
    switch (vmap_[j].kind) {
      case VarMap::Kind::kShiftedLow:
        row[vmap_[j].col] += aij;
        break;
      case VarMap::Kind::kShiftedHigh:
        row[vmap_[j].col] -= aij;
        break;
      case VarMap::Kind::kSplit:
        row[vmap_[j].col] += aij;
        row[vmap_[j].col2] -= aij;
        break;
    }
  }
}

PreparedProblem::PreparedProblem(const Problem& p,
                                 const std::vector<std::size_t>& dynamic_rows) {
  problem_id_ = ++g_serial;
  nv_ = p.num_vars();
  mc_ = p.num_constraints();
  c_ = p.objective();

  // ---------- Variable mapping ----------
  // Variables become non-negative columns; finite upper bounds on shifted
  // variables become extra <= rows appended after the user's rows.
  vmap_.resize(nv_);
  ncols_ = 0;
  struct BoundRow {
    std::size_t col;
    double rhs;
  };
  std::vector<BoundRow> bound_rows;
  for (std::size_t j = 0; j < nv_; ++j) {
    const double lo = p.lower(j);
    const double hi = p.upper(j);
    if (std::isfinite(lo)) {
      vmap_[j] = {VarMap::Kind::kShiftedLow, ncols_, 0, lo};
      ++ncols_;
      if (std::isfinite(hi)) bound_rows.push_back({vmap_[j].col, hi - lo});
    } else if (std::isfinite(hi)) {
      vmap_[j] = {VarMap::Kind::kShiftedHigh, ncols_, 0, hi};
      ++ncols_;
    } else {
      vmap_[j] = {VarMap::Kind::kSplit, ncols_, ncols_ + 1, 0.0};
      ncols_ += 2;
    }
  }

  m_ = mc_ + bound_rows.size();
  rows_.assign(m_, RowInfo{});
  row_coeffs_.reserve(mc_);
  for (std::size_t i = 0; i < mc_; ++i) {
    const Constraint& row = p.constraint(i);
    OIC_REQUIRE(row.coeffs.size() == nv_, "PreparedProblem: ragged constraint row");
    row_coeffs_.push_back(row.coeffs);
    rows_[i].rel = row.rel;
  }
  for (std::size_t i : dynamic_rows) {
    OIC_REQUIRE(i < mc_, "PreparedProblem: dynamic row index out of range");
    rows_[i].dynamic = true;
  }

  // ---------- Column reservation ----------
  // Walk the rows in emission order assigning slack/artificial columns, so
  // the layout matches what a fresh conversion of the same Problem builds
  // (dynamic inequality rows additionally reserve an artificial up front).
  std::size_t next_extra = ncols_;
  for (std::size_t i = 0; i < mc_; ++i) {
    RowInfo& info = rows_[i];
    // The *effective* relation depends on the rhs sign at emission time.
    double b = p.constraint(i).rhs;
    const linalg::Vector& coeffs = row_coeffs_[i];
    for (std::size_t j = 0; j < nv_; ++j) {
      const double aij = coeffs[j];
      if (aij == 0.0) continue;
      if (vmap_[j].kind != VarMap::Kind::kSplit) b -= aij * vmap_[j].offset;
    }
    info.flipped = b < 0.0;
    const Relation eff = effective_relation(info.rel, info.flipped);
    if (eff == Relation::kEqual) {
      info.art_col = next_extra++;
    } else if (eff == Relation::kLessEq) {
      info.slack_col = next_extra++;
      if (info.dynamic) info.art_col = next_extra++;
    } else {  // kGreaterEq
      info.slack_col = next_extra++;
      info.art_col = next_extra++;
    }
  }
  for (std::size_t i = 0; i < bound_rows.size(); ++i) {
    rows_[mc_ + i].rel = Relation::kLessEq;
    rows_[mc_ + i].slack_col = next_extra++;
  }
  n_ = next_extra;

  // ---------- Template tableau ----------
  a_.assign(m_ * n_, 0.0);
  rhs_.assign(m_, 0.0);
  basis0_.assign(m_, 0);
  phase1_cost_.assign(n_, 0.0);
  blocked0_.assign(n_, 0);
  any_artificial_ = false;
  for (const RowInfo& info : rows_) {
    if (info.art_col != kNoCol) {
      blocked0_[info.art_col] = 1;
      any_artificial_ = true;  // column layout is fixed; never changes again
    }
  }
  for (std::size_t i = 0; i < mc_; ++i) set_rhs(i, p.constraint(i).rhs);
  for (std::size_t i = 0; i < bound_rows.size(); ++i) {
    const std::size_t r = mc_ + i;
    a_[r * n_ + bound_rows[i].col] = 1.0;
    a_[r * n_ + rows_[r].slack_col] = 1.0;
    rhs_[r] = bound_rows[i].rhs;
    basis0_[r] = rows_[r].slack_col;
  }

  set_objective(c_);
}

void PreparedProblem::set_rhs(std::size_t i, double rhs) {
  OIC_REQUIRE(i < mc_, "PreparedProblem::set_rhs: row index out of range");
  RowInfo& info = rows_[i];

  // Normalized right-hand side, accumulated in the same order as a fresh
  // standard-form conversion (bit-parity matters for reproducibility).
  double b = rhs;
  const linalg::Vector& coeffs = row_coeffs_[i];
  for (std::size_t j = 0; j < nv_; ++j) {
    const double aij = coeffs[j];
    if (aij == 0.0) continue;
    if (vmap_[j].kind != VarMap::Kind::kSplit) b -= aij * vmap_[j].offset;
  }
  const bool flip = b < 0.0;

  // Hot path: orientation unchanged -- the structural row, slack/artificial
  // layout, starting basis and phase-1 costs already in the template are
  // all still correct; only the scalar rhs moves.
  if (info.emitted && flip == info.flipped) {
    rhs_[i] = flip ? -b : b;
    return;
  }

  if (flip != info.flipped && info.rel != Relation::kEqual) {
    OIC_REQUIRE(info.dynamic,
                "PreparedProblem::set_rhs: rhs sign change on a non-dynamic "
                "inequality row would alter the standard-form structure; "
                "declare the row dynamic at construction");
  }
  info.flipped = flip;
  const Relation eff = effective_relation(info.rel, flip);

  emit_structural(i, coeffs, flip ? -1.0 : 1.0);
  double* row = &a_[i * n_];
  if (info.slack_col != kNoCol) row[info.slack_col] = 0.0;
  if (info.art_col != kNoCol) {
    row[info.art_col] = 0.0;
    phase1_cost_[info.art_col] = 0.0;
  }
  if (eff == Relation::kLessEq) {
    row[info.slack_col] = 1.0;
    basis0_[i] = info.slack_col;
  } else if (eff == Relation::kGreaterEq) {
    row[info.slack_col] = -1.0;
    row[info.art_col] = 1.0;
    basis0_[i] = info.art_col;
    phase1_cost_[info.art_col] = 1.0;
  } else {  // kEqual
    row[info.art_col] = 1.0;
    basis0_[i] = info.art_col;
    phase1_cost_[info.art_col] = 1.0;
  }
  rhs_[i] = flip ? -b : b;
  info.emitted = true;
}

void PreparedProblem::set_objective(const linalg::Vector& c) {
  OIC_REQUIRE(c.size() == nv_, "PreparedProblem::set_objective: dimension mismatch");
  ++objective_revision_;  // carried warm bases priced the old objective
  c_ = c;
  cost_.assign(n_, 0.0);
  for (std::size_t j = 0; j < nv_; ++j) {
    const double cj = c_[j];
    if (cj == 0.0) continue;
    switch (vmap_[j].kind) {
      case VarMap::Kind::kShiftedLow:
        cost_[vmap_[j].col] += cj;
        break;
      case VarMap::Kind::kShiftedHigh:
        cost_[vmap_[j].col] -= cj;
        break;
      case VarMap::Kind::kSplit:
        cost_[vmap_[j].col] += cj;
        cost_[vmap_[j].col2] -= cj;
        break;
    }
  }
}

void PreparedProblem::set_hot_rows(const std::vector<std::size_t>& rows) {
  for (std::size_t r : rows) {
    OIC_REQUIRE(r < m_, "PreparedProblem::set_hot_rows: row index out of range");
  }

  // Canonical-seed capture: snapshot the template as it stands right now.
  // Callers invoke this immediately after construction (before any set_rhs
  // patch), so the seed is a pure function of the problem structure and
  // every copy of the problem shares one canonical restart point -- the
  // property that keeps parallel-worker episode schedules bit-identical.
  seed_src_a_ = a_;
  seed_src_rhs_ = rhs_;
  seed_src_basis_ = basis0_;
  seed_flip_.resize(m_);
  for (std::size_t i = 0; i < m_; ++i) seed_flip_[i] = rows_[i].flipped ? 1 : 0;
  seed_obj_revision_ = objective_revision_;
  seed_captured_ = true;
  seed_built_ = false;
  seed_ok_ = false;
}

Result PreparedProblem::solve(SolverWorkspace& ws, const SimplexOptions& opt) const {
  // Overwriting the tableau orphans any WarmState annotating this
  // workspace; clear the pairing token so solve_warm notices.
  ws.warm_serial = 0;
  // Working copies; std::vector::assign reuses capacity, so repeated solves
  // through one workspace do not allocate.
  ws.a.assign(a_.begin(), a_.end());
  ws.rhs.assign(rhs_.begin(), rhs_.end());
  ws.basis.assign(basis0_.begin(), basis0_.end());
  return run_phases(ws, opt);
}

Result PreparedProblem::solve_once(const SimplexOptions& opt) && {
  // The template will never be reused: hand its buffers to the phase
  // driver directly instead of copying them.
  SolverWorkspace ws;
  ws.a = std::move(a_);
  ws.rhs = std::move(rhs_);
  ws.basis = std::move(basis0_);
  return run_phases(ws, opt);
}

Result PreparedProblem::run_phases(SolverWorkspace& ws, const SimplexOptions& opt) const {
  // ---------- Phase 1 ----------
  if (any_artificial_) {
    const Status s1 = run_phase(m_, n_, ws, nullptr, phase1_cost_, opt);
    if (s1 == Status::kIterLimit) return {Status::kIterLimit, 0.0, {}};
    OIC_CHECK(s1 != Status::kUnbounded, "simplex: phase 1 cannot be unbounded");
    // Residual infeasibility = sum of artificial basic values.
    double resid = 0.0;
    for (std::size_t i = 0; i < m_; ++i) {
      if (phase1_cost_[ws.basis[i]] > 0.0) resid += ws.rhs[i];
    }
    if (resid > opt.feas_tol) return {Status::kInfeasible, 0.0, {}};

    // Drive remaining zero-level artificials out of the basis where possible.
    const linalg::detail::KernelTable& kt = linalg::detail::table();
    for (std::size_t i = 0; i < m_; ++i) {
      if (phase1_cost_[ws.basis[i]] == 0.0) continue;
      std::size_t piv_col = n_;
      for (std::size_t j = 0; j < n_; ++j) {
        if (phase1_cost_[j] > 0.0) continue;  // never pivot in an artificial
        if (std::fabs(ws.a[i * n_ + j]) > opt.pivot_tol) {
          piv_col = j;
          break;
        }
      }
      if (piv_col == n_) continue;  // redundant row; artificial stays at zero
      const double piv = ws.a[i * n_ + piv_col];
      const double inv = 1.0 / piv;
      double* prow = &ws.a[i * n_];
      // Skip-zero scale (zeros stay +0.0); the historical dense loop's only
      // difference was scaling zeros, an exact no-op by value.
      for (std::size_t j = 0; j < n_; ++j) {
        if (prow[j] != 0.0) prow[j] *= inv;
      }
      ws.rhs[i] *= inv;
      for (std::size_t r = 0; r < m_; ++r) {
        if (r == i) continue;
        const double f = ws.a[r * n_ + piv_col];
        if (f == 0.0) continue;
        kt.lp_row_sub_scaled(&ws.a[r * n_], prow, f, n_);
        ws.rhs[r] -= f * ws.rhs[i];
      }
      ws.basis[i] = piv_col;
    }
  }

  // ---------- Phase 2 ----------
  // Artificial columns are barred from entering (blocked0_ marks them).
  const Status s2 = run_phase(m_, n_, ws, any_artificial_ ? blocked0_.data() : nullptr,
                              cost_, opt);
  if (s2 != Status::kOptimal) return {s2, 0.0, {}};

  return extract(ws);
}

Result PreparedProblem::extract(SolverWorkspace& ws) const {
  // Recover the original variables from the basic solution.
  ws.y.assign(n_, 0.0);
  for (std::size_t i = 0; i < m_; ++i) ws.y[ws.basis[i]] = ws.rhs[i];

  linalg::Vector x(nv_);
  for (std::size_t j = 0; j < nv_; ++j) {
    switch (vmap_[j].kind) {
      case VarMap::Kind::kShiftedLow:
        x[j] = vmap_[j].offset + ws.y[vmap_[j].col];
        break;
      case VarMap::Kind::kShiftedHigh:
        x[j] = vmap_[j].offset - ws.y[vmap_[j].col];
        break;
      case VarMap::Kind::kSplit:
        x[j] = ws.y[vmap_[j].col] - ws.y[vmap_[j].col2];
        break;
    }
  }
  // Recompute the objective from the original data; this is immune to any
  // accumulated tableau round-off.
  const double obj = linalg::dot(c_, x);
  return {Status::kOptimal, obj, std::move(x)};
}

void PreparedProblem::transpose_into(SolverWorkspace& ws) const {
  // Row-major ws.a -> column-major ws.at (column j occupies
  // [j*m_, (j+1)*m_)).  Runs only on the rare true-cold transitions; the
  // hot seed restarts copy the pre-transposed seed_at_ directly.
  ws.at.resize(n_ * m_);
  for (std::size_t i = 0; i < m_; ++i) {
    const double* row = &ws.a[i * n_];
    for (std::size_t j = 0; j < n_; ++j) ws.at[j * m_ + i] = row[j];
  }
}

void PreparedProblem::build_seed(SolverWorkspace& ws, const SimplexOptions& opt) const {
  seed_built_ = true;  // one attempt; failures fall back to two-phase colds
  ws.warm_serial = 0;
  ws.a = seed_src_a_;
  ws.rhs = seed_src_rhs_;
  ws.basis = seed_src_basis_;
  const Result r = run_phases(ws, opt);
  if (r.status != Status::kOptimal) return;
  // Store the canonical optimum pre-transposed: every restart then copies
  // straight into the column-major working tableau.
  transpose_into(ws);
  seed_at_ = ws.at;
  seed_rhs_ = ws.rhs;
  seed_z_ = ws.z;
  seed_basis_ = ws.basis;
  seed_b_ = std::move(seed_src_rhs_);  // canonical pre-solve rhs
  seed_ok_ = true;
  seed_src_a_ = {};
  seed_src_rhs_ = {};
  seed_src_basis_ = {};
}

Result PreparedProblem::solve_warm(SolverWorkspace& ws, WarmState& warm,
                                   const SimplexOptions& opt) const {
  return solve_warm_inner(ws, warm, opt, /*allow_seed=*/true);
}

Result PreparedProblem::solve_warm_inner(SolverWorkspace& ws, WarmState& warm,
                                         const SimplexOptions& opt,
                                         bool allow_seed) const {
  if (warm.objective_revision != objective_revision_) warm.valid = false;
  // A valid WarmState annotates the tableau of the exact (problem,
  // workspace, solve) triple it was produced with; any mismatch -- fresh
  // workspace, foreign workspace of any shape, one since overwritten by
  // another solve, or a snapshot taken by a different PreparedProblem --
  // means the carried tableau is not ours: fall back cold.
  if (warm.serial == 0 || warm.serial != ws.warm_serial ||
      warm.problem_id != problem_id_) {
    warm.valid = false;
  }

  // Cold path: re-anchor on the canonical seed when one was captured
  // (set_hot_rows), otherwise run both phases; either way snapshot the
  // optimum so the next call can continue from it.
  if (!warm.valid) {
    const bool seed_usable =
        allow_seed && seed_captured_ && seed_obj_revision_ == objective_revision_;
    if (seed_usable && !seed_built_) build_seed(ws, opt);
    const bool from_seed = seed_usable && seed_ok_;
    if (from_seed) {
      // Canonical-seed restart: adopt the canonical optimum as the warm
      // snapshot, then fall through to the ordinary rhs-update + dual
      // continuation, which patches it to the CURRENT rhs.  The restart
      // point depends only on the problem structure, never on solve
      // history -- every copy of the problem lands on the same tableau.
      ws.at.assign(seed_at_.begin(), seed_at_.end());
      ws.rhs.assign(seed_rhs_.begin(), seed_rhs_.end());
      ws.z.assign(seed_z_.begin(), seed_z_.end());
      ws.basis.assign(seed_basis_.begin(), seed_basis_.end());
      warm.b.assign(seed_b_.begin(), seed_b_.end());
      warm.flip.assign(seed_flip_.begin(), seed_flip_.end());
    } else {
      const Result r = solve(ws, opt);
      if (r.status != Status::kOptimal) return r;
      transpose_into(ws);
      warm.b.assign(rhs_.begin(), rhs_.end());
      warm.flip.resize(m_);
      for (std::size_t i = 0; i < m_; ++i) warm.flip[i] = rows_[i].flipped ? 1 : 0;
    }
    warm.valid = true;
    warm.solves_since_cold = 0;
    warm.objective_revision = objective_revision_;
    warm.serial = ++g_serial;
    warm.problem_id = problem_id_;
    ws.warm_serial = warm.serial;
    // A plain cold solve already sits at the optimum for the current rhs;
    // only a seed restart needs the continuation below to patch it.
    if (!from_seed) return extract(ws);
  }

  const linalg::detail::KernelTable& kt = linalg::detail::table();

  // ---- Rhs update in the carried basis ----
  // The tableau rows keep the orientation they had at snapshot time; a row
  // whose template orientation has since flipped (set_rhs crossed zero) is
  // accounted for by negating the target value.  Each row's standard-form
  // unit column -- the one that carried +1 at snapshot time: the slack for
  // an effectively-<= row, the artificial for >= and equality rows -- holds
  // the matching column of B^-1, so the basic solution shifts by
  // B^-1 e_r * delta_r.  In the transposed layout that column is one
  // contiguous streaming axpy.
  for (std::size_t r = 0; r < m_; ++r) {
    const double oriented =
        (rows_[r].flipped ? 1 : 0) == warm.flip[r] ? rhs_[r] : -rhs_[r];
    const double delta = oriented - warm.b[r];
    if (delta == 0.0) continue;
    const Relation eff_snap = effective_relation(rows_[r].rel, warm.flip[r] != 0);
    const std::size_t unit =
        eff_snap == Relation::kLessEq ? rows_[r].slack_col : rows_[r].art_col;
    kt.lp_row_add_scaled(ws.rhs.data(), &ws.at[unit * m_], delta, m_);
    warm.b[r] = oriented;
  }

  // ---- Dual simplex: restore primal feasibility, keep dual feasibility ----
  // Runs entirely on the transposed tableau: the rank-1 pivot update
  // becomes one contiguous streaming axpy per pivot-row support column
  // (the pivot row is ~10% dense on the MPC tableaus) instead of a
  // scattered read-modify-write walk over every touched row -- the memory
  // pattern the row-major layout cannot provide.  Element-for-element the
  // update performs the identical single mul+sub on the identical
  // operands, so the transposition changes no bits (docs/perf.md).
  const unsigned char* blocked = any_artificial_ ? blocked0_.data() : nullptr;
  const std::size_t max_dual_iters = m_ + 200;
  ws.nz.resize(n_);
  ws.nzv.resize(n_);
  std::uint32_t* nzi = ws.nz.data();
  double* nzv = ws.nzv.data();
  bool ok = false;
  for (std::size_t iter = 0; iter <= max_dual_iters; ++iter) {
    // Leaving row: most negative basic value (argmin kernel == the
    // sequential scan seeded at -1e-9).
    const std::ptrdiff_t lv = kt.lp_argmin(ws.rhs.data(), m_, -1e-9);
    if (lv < 0) {
      ok = true;
      break;
    }
    const std::size_t leave = static_cast<std::size_t>(lv);
    if (iter == max_dual_iters) break;  // stalled; fall back to a cold solve

    // Pack the leaving row's nonzeros once (fixed-stride gather across the
    // columns); the dual ratio test and the pivot both run over the
    // packed support.
    std::size_t nnz = 0;
    for (std::size_t j = 0; j < n_; ++j) {
      const double v = ws.at[j * m_ + leave];
      if (v == 0.0) continue;
      nzi[nnz] = static_cast<std::uint32_t>(j);
      nzv[nnz] = v;
      ++nnz;
    }

    // Entering column: dual ratio test over the leaving row's negative
    // entries (artificials stay barred).  Strict improvement only:
    // near-ties keep the earlier (lowest) column, since the packed
    // support scans ascending -- a Bland-style bias that guards against
    // dual cycling.
    std::size_t enter = n_;
    double best_ratio = kInf;
    for (std::size_t k = 0; k < nnz; ++k) {
      const std::size_t j = nzi[k];
      if (blocked && blocked[j]) continue;
      const double v = nzv[k];
      if (v < -opt.pivot_tol) {
        const double ratio = ws.z[j] / -v;
        if (ratio < best_ratio - 1e-12) {
          best_ratio = ratio;
          enter = j;
        }
      }
    }
    if (enter == n_) {
      // No entering column: the carried tableau says the patched LP is
      // primal infeasible.  The dual test triggers at a much tighter
      // tolerance than the cold path's phase-1 feas_tol, so confirm through
      // a cold solve rather than rejecting a marginally-feasible state the
      // two-phase path would accept.  (Infeasible queries are rare; the
      // extra cold solve is noise.  allow_seed=false keeps the retry from
      // re-anchoring on the seed and looping.)
      warm.valid = false;
      return solve_warm_inner(ws, warm, opt, /*allow_seed=*/false);
    }

    // --- Pivot over the packed support ---
    // The live entering column holds every row's update factor; it is read
    // by all the axpys below and zeroed only afterwards.
    const double* ecol = &ws.at[enter * m_];
    const double piv = ecol[leave];
    const double inv = 1.0 / piv;
    for (std::size_t k = 0; k < nnz; ++k) {
      const std::size_t j = nzi[k];
      if (j == enter) {
        nzv[k] = 1.0;  // clean exact unit entry (as the row-major scale wrote)
        continue;      // the column itself becomes the unit column below
      }
      const double sv = nzv[k] * inv;
      nzv[k] = sv;
      double* cj = &ws.at[j * m_];
      // Classical update: cj[i] -= f_i * sv for every row i != leave with
      // f_i != 0.  The axpy also runs the skipped cases -- f_i == 0 rows
      // (subtracting sv*0.0 == +-0.0 is an exact no-op on a -0.0-free
      // tableau) and the pivot row (overwritten right after with the
      // scaled value, exactly what the row-major scale step stored).
      kt.lp_row_sub_scaled(cj, ecol, sv, m_);
      cj[leave] = sv;
    }
    ws.rhs[leave] *= inv;
    for (std::size_t i = 0; i < m_; ++i) {
      if (i == leave) continue;
      const double f = ecol[i];
      if (f == 0.0) continue;  // untouched rows must NOT see the clamp
      ws.rhs[i] -= f * ws.rhs[leave];
      if (ws.rhs[i] < 0.0 && ws.rhs[i] > -1e-11) ws.rhs[i] = 0.0;
    }
    const double fz = ws.z[enter];
    if (fz != 0.0) {
      for (std::size_t k = 0; k < nnz; ++k) ws.z[nzi[k]] -= fz * nzv[k];
      ws.z[enter] = 0.0;
    }
    // The entering column becomes a unit column: every row the update
    // touched (f != 0) is explicitly zeroed, untouched rows already held
    // +0.0, and the pivot row gets the clean 1.0.
    {
      double* ce = &ws.at[enter * m_];
      for (std::size_t i = 0; i < m_; ++i) ce[i] = 0.0;
      ce[leave] = 1.0;
    }
    ws.basis[leave] = enter;
  }

  if (!ok) {
    // Dual iteration stalled (degenerate cycling); redo a cold solve
    // through the two-phase path (not the seed, which could stall again).
    warm.valid = false;
    return solve_warm_inner(ws, warm, opt, /*allow_seed=*/false);
  }
  // Scheduled refactorization: bound accumulated round-off in the carried
  // tableau by forcing the next call through the cold path.
  if (++warm.solves_since_cold >= kRefactorEvery) warm.valid = false;
  return extract(ws);
}

}  // namespace oic::lp
