#pragma once
/// \file prepared.hpp
/// Workspace-reuse LP solving.
///
/// lp::solve() converts the Problem to a standard-form tableau from scratch
/// on every call.  That conversion (column mapping, row normalization,
/// slack/artificial placement) depends only on the problem *structure*, not
/// on the numbers, yet it dominates the cost of the small LPs this library
/// solves in inner loops (MPC steps, support functions).
///
/// A PreparedProblem performs the conversion once and caches the resulting
/// tableau as an immutable template.  Each solve copies the template into a
/// caller-provided SolverWorkspace (a pair of buffer reuses, no allocation
/// after warm-up) and runs the identical two-phase simplex, so results are
/// bit-for-bit the same as a fresh lp::solve() of the same Problem.
///
/// Between solves the caller may patch
///   * the objective (set_objective)           -- any values, and
///   * individual constraint right-hand sides (set_rhs) -- for kEqual rows
///     always; for inequality rows only while the normalized rhs keeps its
///     sign (the standard-form column structure would change otherwise;
///     declare such rows "dynamic" at construction to reserve the extra
///     slack+artificial columns up front).
///
/// The warm continuation (solve_warm) runs on a TRANSPOSED (column-major)
/// copy of the working tableau: the dual pivot's rank-1 update touches only
/// the pivot row's support columns (~10% dense on the MPC tableaus), and in
/// column-major storage each of those is one contiguous streaming axpy
/// instead of a scattered read-modify-write walk over every touched row.
/// Receding-horizon callers that re-solve the same structure thousands of
/// times additionally call set_hot_rows: this snapshots the
/// construction-time template as a canonical warm-start seed -- every
/// "cold" restart (episode reset, scheduled refactorization) then continues
/// from the canonical optimum with a few dual pivots instead of re-running
/// both phases.  See docs/perf.md.
///
/// This is the engine behind poly::SupportSolver (repeated support queries
/// on one polytope) and the TubeMpc per-step solve (only the x(0) = x0
/// equality rows change between control periods).

#include <cstddef>
#include <cstdint>
#include <vector>

#include "linalg/vector.hpp"
#include "lp/problem.hpp"
#include "lp/simplex.hpp"

namespace oic::lp {

/// Reusable solve-time scratch memory.  One workspace may be shared by any
/// number of PreparedProblems, but not by concurrent solves; give each
/// thread its own.
struct SolverWorkspace {
  std::vector<double> a;       ///< working tableau, m x n row-major
  std::vector<double> rhs;
  std::vector<double> z;       ///< reduced-cost row
  std::vector<std::size_t> basis;
  std::vector<double> y;       ///< basic-solution scratch for recovery
  std::uint64_t warm_serial = 0;  ///< pairing token; see WarmState::serial

  // Pivot scratch: the entering column gathered contiguously once per
  // pivot, and the pivot row's nonzeros packed as (index, value) pairs so
  // row updates touch only the ~10%-dense support instead of the full
  // width (lp/prepared.cpp; bit-identical by the signed-zero argument in
  // docs/perf.md).
  std::vector<double> col;
  std::vector<std::uint32_t> nz;
  std::vector<double> nzv;

  /// Transposed (column-major) working tableau for the warm continuation:
  /// column j occupies [j*m, (j+1)*m).  Maintained bit-exactly through
  /// every dual pivot; refreshed from `a` on true-cold transitions.
  std::vector<double> at;
};

/// A Problem converted to standard form once, solvable many times.
class PreparedProblem {
 public:
  /// Convert `p`.  `dynamic_rows` lists constraint rows whose rhs will be
  /// patched with set_rhs to values that may flip the sign of the
  /// normalized right-hand side; such inequality rows get both a slack and
  /// an artificial column reserved eagerly.  kEqual rows never need to be
  /// declared (their structure is sign-independent).  The Problem is copied
  /// from; it may be destroyed afterwards.
  explicit PreparedProblem(const Problem& p,
                           const std::vector<std::size_t>& dynamic_rows = {});

  /// Number of original variables.
  std::size_t num_vars() const { return nv_; }
  /// Number of original constraint rows.
  std::size_t num_constraints() const { return mc_; }

  /// Patch the right-hand side of constraint row `i`.  See the class
  /// comment for which rows accept which values.
  void set_rhs(std::size_t i, double rhs);

  /// Replace the objective vector (minimized); dimension must be num_vars().
  void set_objective(const linalg::Vector& c);

  /// Declare the constraint rows whose right-hand sides change between
  /// warm solves (e.g. the x(0) = x0 equalities of an MPC step).  The
  /// template AS IT STANDS RIGHT NOW is snapshotted as the canonical
  /// warm-start seed: the first cold solve_warm lazily solves it once, and
  /// every later cold restart (reset, scheduled refactorization)
  /// re-anchors on that optimum with a short dual continuation instead of
  /// a full two-phase solve.  Transparent to results up to LP argmin
  /// selection on non-unique optima.
  /// Call immediately after construction, BEFORE any set_rhs patch, so the
  /// captured seed is a pure function of the problem structure -- that is
  /// what keeps parallel-worker episode schedules bit-identical (every
  /// copy of the controller shares one canonical restart point).  A later
  /// set_objective disables the seed (restarts fall back to the two-phase
  /// path).
  void set_hot_rows(const std::vector<std::size_t>& rows);

  /// Solve with the current objective/rhs.  Identical semantics to
  /// lp::solve() of the equivalent Problem.
  Result solve(SolverWorkspace& ws, const SimplexOptions& options = {}) const;

  /// Warm-start continuation state for solve_warm.  Owned by the caller
  /// alongside the SolverWorkspace whose tableau it annotates.
  struct WarmState {
    bool valid = false;
    std::vector<double> b;            ///< rhs snapshot, fixed row orientation
    std::vector<unsigned char> flip;  ///< row orientation at snapshot time
    std::size_t solves_since_cold = 0;
    std::size_t objective_revision = 0;
    /// Pairing token stamped into both this state and the workspace whose
    /// tableau it annotates; a mismatch (foreign or reused workspace, even
    /// of identical dimensions) forces the cold path instead of continuing
    /// from an unrelated tableau.
    std::uint64_t serial = 0;
    /// Identity of the PreparedProblem the snapshot belongs to; a warm
    /// state handed to a different problem instance falls back cold.
    std::uint64_t problem_id = 0;
  };

  /// Solve like solve(), but when `warm` holds the optimum of a previous
  /// solve through the same workspace, continue from that basis with the
  /// dual simplex instead of restarting both phases.
  ///
  /// Rationale: between successive solves of a receding-horizon controller
  /// only a few right-hand sides change.  The old optimal basis stays dual
  /// feasible (the objective is unchanged), and the standard-form unit
  /// columns of the final tableau hold B^-1, so the new basic solution is a
  /// rank-k rhs update followed by a handful of dual pivots -- versus ~50
  /// two-phase pivots for a cold MPC solve.  Falls back to the cold path on
  /// any numerical trouble, after an objective change, or every
  /// kRefactorEvery solves (bounds round-off drift in the carried
  /// tableau); when set_hot_rows captured a canonical seed, those cold
  /// restarts are themselves dual continuations from the seed optimum.
  /// The result is an exact optimum either way; it may differ from the
  /// cold solve's argmin only when the optimum is non-unique.
  Result solve_warm(SolverWorkspace& ws, WarmState& warm,
                    const SimplexOptions& options = {}) const;

  /// One-shot solve for a PreparedProblem that will not be reused: moves
  /// the template tableau into the phase driver instead of copying it.
  /// Rvalue-qualified -- only callable on a temporary; leaves the object
  /// unusable.  This is lp::solve()'s backend.
  Result solve_once(const SimplexOptions& options = {}) &&;

  /// Columns of the standard-form tableau (diagnostics / sizing).
  std::size_t num_cols() const { return n_; }
  /// Rows of the standard-form tableau (constraints + bound rows).
  std::size_t num_rows() const { return m_; }

 private:
  /// How an original variable maps into the standard-form columns.
  struct VarMap {
    enum class Kind { kShiftedLow, kShiftedHigh, kSplit } kind = Kind::kSplit;
    std::size_t col = 0;   ///< primary standard column
    std::size_t col2 = 0;  ///< negative part for kSplit
    double offset = 0.0;   ///< x = offset + y (kShiftedLow) / offset - y (kShiftedHigh)
  };

  /// Per-row patch metadata.
  struct RowInfo {
    Relation rel = Relation::kLessEq;
    bool flipped = false;        ///< row was negated to make rhs >= 0
    bool dynamic = false;        ///< eager slack+artificial columns reserved
    bool emitted = false;        ///< structural row written into the template
    std::size_t slack_col = kNoCol;
    std::size_t art_col = kNoCol;
  };
  static constexpr std::size_t kNoCol = static_cast<std::size_t>(-1);

  void emit_structural(std::size_t r, const linalg::Vector& coeffs, double sign);

  std::size_t nv_ = 0;  ///< original variables
  std::size_t mc_ = 0;  ///< original constraint rows
  std::size_t m_ = 0;   ///< tableau rows (mc_ + bound rows)
  std::size_t n_ = 0;   ///< tableau columns
  std::size_t ncols_ = 0;  ///< structural columns (before slack/artificial)

  std::vector<VarMap> vmap_;
  std::vector<RowInfo> rows_;
  std::vector<linalg::Vector> row_coeffs_;  ///< original rows (for re-emission)

  // Immutable-per-structure template; rhs/cost blocks mutate via setters.
  std::vector<double> a_;             ///< m_ x n_ template tableau
  std::vector<double> rhs_;
  std::vector<double> cost_;          ///< phase-2 costs over standard columns
  std::vector<double> phase1_cost_;
  std::vector<std::size_t> basis0_;   ///< starting basis
  std::vector<unsigned char> blocked0_;
  bool any_artificial_ = false;
  std::size_t objective_revision_ = 0;  ///< bumped by set_objective (invalidates warm)
  std::uint64_t problem_id_ = 0;        ///< unique per instance (warm-state pairing)

  linalg::Vector c_;  ///< original objective (objective recovery)

  // ---- canonical warm-start seed (set_hot_rows) ----
  // All seed state is mutable: it is a lazily materialized pure function
  // of the structure captured by set_hot_rows, and PreparedProblem's
  // concurrency contract is already per-instance single-threaded.
  bool seed_captured_ = false;
  std::size_t seed_obj_revision_ = 0;
  mutable bool seed_built_ = false;  ///< build attempted (ok or not)
  mutable bool seed_ok_ = false;     ///< canonical solve reached optimality
  // Canonical template capture (freed once the seed is built).
  mutable std::vector<double> seed_src_a_, seed_src_rhs_;
  mutable std::vector<std::size_t> seed_src_basis_;
  // Canonical optimum: transposed tableau/rhs/z/basis plus the pre-solve
  // rhs+orientation it answers for (the warm snapshot every restart
  // re-anchors on).
  mutable std::vector<double> seed_at_, seed_rhs_, seed_z_, seed_b_;
  mutable std::vector<std::size_t> seed_basis_;
  mutable std::vector<unsigned char> seed_flip_;

  Result run_phases(SolverWorkspace& ws, const SimplexOptions& options) const;
  Result extract(SolverWorkspace& ws) const;
  Result solve_warm_inner(SolverWorkspace& ws, WarmState& warm,
                          const SimplexOptions& options, bool allow_seed) const;
  void build_seed(SolverWorkspace& ws, const SimplexOptions& options) const;
  void transpose_into(SolverWorkspace& ws) const;
};

}  // namespace oic::lp
