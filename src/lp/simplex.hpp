#pragma once
/// \file simplex.hpp
/// Dense two-phase primal simplex.
///
/// This is the single LP engine behind every polytope operation (support
/// functions, redundancy removal, containment, Chebyshev centers), the
/// 1-norm tube-MPC solve, and the MIP branch-and-bound relaxations.  The
/// LPs in this domain are small (tens to a few hundred rows), so a dense
/// tableau with an anti-cycling fallback is both simple and fast enough.

#include <cstddef>

#include "linalg/vector.hpp"
#include "lp/problem.hpp"

namespace oic::lp {

/// Outcome of an LP solve.
enum class Status {
  kOptimal,    ///< finite optimum found
  kInfeasible, ///< constraint system has no solution
  kUnbounded,  ///< objective decreases without bound over the feasible set
  kIterLimit,  ///< iteration budget exhausted before convergence
};

/// Human-readable status name (for logs and test diagnostics).
const char* to_string(Status s);

/// Solver knobs.  Defaults are tuned for the small, well-scaled LPs this
/// library generates; they rarely need changing.
struct SimplexOptions {
  std::size_t max_iterations = 20000;  ///< per phase
  double cost_tol = 1e-9;              ///< reduced-cost optimality tolerance
  double pivot_tol = 1e-10;            ///< minimum acceptable pivot magnitude
  double feas_tol = 1e-7;              ///< phase-1 residual counted as feasible
  /// After this many non-improving iterations the solver switches from the
  /// Dantzig rule to Bland's rule, which provably cannot cycle.
  std::size_t stall_limit = 200;
};

/// Solution report.
struct Result {
  Status status = Status::kIterLimit;
  double objective = 0.0;  ///< valid only when status == kOptimal
  linalg::Vector x;        ///< valid only when status == kOptimal
};

/// Solve the given LP (minimization).  Never throws on infeasible/unbounded
/// models -- that is reported via Result::status; throws PreconditionError
/// only for malformed input.
Result solve(const Problem& problem, const SimplexOptions& options = {});

}  // namespace oic::lp
