#pragma once
/// \file dispatch.hpp
/// Per-ISA kernel function table behind linalg/kernels.hpp and the
/// lp/prepared.cpp tableau primitives.
///
/// Each entry has one scalar reference implementation (kernels.hpp,
/// namespace scalar) and, when the AVX2 TU is compiled in, a vectorized
/// implementation that is bit-identical to the scalar one (see
/// docs/perf.md for the per-kernel contract).  table() returns the table
/// for simd::active(); table_for() lets tests and microbenches pin one.
///
/// The within-row dot-product kernels (gemv, gemv_sub, gemv_bias) stay
/// scalar in EVERY table: vectorizing a single j-ascending reduction
/// changes the accumulation order (and therefore bits), and the row
/// lengths on the hot path (nx <= 12) are too short to win anything.
/// They are still routed through the table so the microbench and parity
/// suite exercise one uniform surface.

#include <cstddef>

#include "linalg/simd.hpp"

namespace oic::linalg {

class Matrix;

namespace detail {

struct KernelTable {
  // ---- fused MLP / membership kernels (linalg/kernels.hpp surface) ----
  void (*gemv)(const Matrix& a, const double* x, double* y);
  void (*gemv_sub)(const Matrix& a, const double* x, double* y);
  void (*gemv_bias)(const Matrix& a, const double* x, const double* b, double* y,
                    bool relu);
  void (*gemm_bias)(const Matrix& a, const double* x, std::size_t batch,
                    std::size_t ldx, const double* b, double* y, std::size_t ldy,
                    bool relu);
  void (*gemm_transpose)(const Matrix& a, const double* d, std::size_t batch,
                         std::size_t ldd, double* dp, std::size_t ldp);
  void (*gemm_grad_accum)(const double* d, std::size_t batch, std::size_t ldd,
                          const double* x, std::size_t ldx, Matrix& dw, double* db);
  void (*batch_max_violation)(const Matrix& a, const double* b, const double* x,
                              std::size_t batch, std::size_t ldx, double* worst);

  // ---- LP tableau primitives (lp/prepared.cpp hot loops) ----
  /// dst[j] -= f * src[j] for j in [0, n): dense pivot row update and the
  /// reduced-cost / phase-1 z updates.  Element-wise independent, so the
  /// vector form is bit-identical to the scalar loop.
  void (*lp_row_sub_scaled)(double* dst, const double* src, double f, std::size_t n);
  /// dst[i] += src[i] * f for i in [0, n): warm-start rhs shift along a
  /// contiguous B^-1 panel column.
  void (*lp_row_add_scaled)(double* dst, const double* src, double f, std::size_t n);
  /// First index attaining min(v[0..n)) when that min is strictly below
  /// `thresh`; -1 otherwise.  Equivalent to the sequential
  /// "if (v[j] < best) best = v[j], pick = j" scan seeded with
  /// best = thresh (ties keep the earliest index).  Used for the dual
  /// leaving-row scan (most negative basic value).
  std::ptrdiff_t (*lp_argmin)(const double* v, std::size_t n, double thresh);
  /// lp_argmin restricted to columns with !blocked[j]; `blocked` may be
  /// null (no columns barred).  Used for Dantzig pricing.
  std::ptrdiff_t (*lp_argmin_masked)(const double* v, const unsigned char* blocked,
                                     std::size_t n, double thresh);
};

/// Table for the currently active ISA (simd::active()).
const KernelTable& table();

/// Table for a specific ISA; requests for an unavailable ISA fall back to
/// the scalar table.
const KernelTable& table_for(simd::Isa isa);

}  // namespace detail
}  // namespace oic::linalg
