#pragma once
/// \file qr.hpp
/// Householder QR factorization and least-squares solves.  Used by the RL
/// module's diagnostics and available as a numerically robust alternative
/// to LU for tall systems.

#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"

namespace oic::linalg {

/// Thin Householder QR of an m-by-n matrix with m >= n.
class QR {
 public:
  /// Factor `a`; requires rows >= cols.
  explicit QR(const Matrix& a);

  /// True when a diagonal entry of R is (near) zero, i.e. rank-deficient.
  bool rank_deficient(double tol = 1e-10) const;

  /// Minimum-residual solution of A x = b (least squares when m > n).
  /// Throws NumericalError when rank-deficient.
  Vector solve(const Vector& b) const;

  /// The upper-triangular factor R (n-by-n).
  Matrix r() const;

  /// Apply Q^T to a vector of length m.
  Vector qt_mul(const Vector& b) const;

 private:
  std::size_t m_ = 0;
  std::size_t n_ = 0;
  Matrix qr_;           // Householder vectors below diagonal, R on/above
  std::vector<double> beta_;
};

/// Convenience least-squares solve: argmin_x ||A x - b||_2.
Vector lstsq(const Matrix& a, const Vector& b);

}  // namespace oic::linalg
