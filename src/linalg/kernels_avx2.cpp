/// \file kernels_avx2.cpp
/// AVX2 implementations of the dispatch-table kernels.
///
/// This is the only TU compiled with -mavx2 -mfma; it is reached solely
/// through the dispatch table after the cpuid check.  Two rules keep every
/// kernel bit-identical to the scalar reference (the contract docs/perf.md
/// states and tests/test_simd.cpp enforces):
///
///   1. Vectorize ACROSS independent outputs only -- 4 batch rows of a
///      minibatch, 4 matrix columns of an update -- never within a single
///      j-ascending reduction.  Each SIMD lane then executes exactly the
///      scalar operation sequence for its output element.
///   2. No fused multiply-add anywhere: every a*b+c is an explicit
///      _mm256_mul_pd followed by _mm256_add_pd/_mm256_sub_pd, and the TU
///      is built with -ffp-contract=off so the compiler cannot fuse them
///      behind our back.  (-mfma stays on only so the feature check
///      matches what future kernels may use explicitly.)
///
/// Comparisons use _CMP_*_OQ predicates plus blends instead of
/// vmaxpd/vminpd, reproducing the scalar `<`/`>` semantics exactly for
/// NaN and signed-zero inputs (std::max keeps the first argument on NaN;
/// vmaxpd would keep the second).

#include <cstdint>
#include <cstring>
#include <immintrin.h>
#include <limits>
#include <vector>

#include "linalg/dispatch.hpp"
#include "linalg/kernels.hpp"
#include "linalg/matrix.hpp"

namespace oic::linalg::detail {

namespace {

/// Reusable per-thread pack buffer for the batch-transposed (SoA) panels
/// of gemm_bias / batch_max_violation.  Grows once per thread, then every
/// call is allocation-free.
std::vector<double>& pack_buffer() {
  thread_local std::vector<double> buf;
  return buf;
}

/// Pack 4 batch rows of width `cols` (stride ldx) into column-major
/// xt[j*4 + lane], so the inner product loop can broadcast one matrix
/// entry against 4 sessions per step.
inline void pack4(const double* x, std::size_t cols, std::size_t ldx, double* xt) {
  const double* r0 = x;
  const double* r1 = x + ldx;
  const double* r2 = x + 2 * ldx;
  const double* r3 = x + 3 * ldx;
  for (std::size_t j = 0; j < cols; ++j) {
    xt[4 * j + 0] = r0[j];
    xt[4 * j + 1] = r1[j];
    xt[4 * j + 2] = r2[j];
    xt[4 * j + 3] = r3[j];
  }
}

// ---- batched MLP kernels: vectorized across the batch axis -------------

void gemm_bias_avx2(const Matrix& a, const double* x, std::size_t batch,
                    std::size_t ldx, const double* b, double* y, std::size_t ldy,
                    bool relu) {
  const std::size_t rows = a.rows(), cols = a.cols();
  std::vector<double>& pack = pack_buffer();
  if (pack.size() < 4 * cols) pack.resize(4 * cols);
  double* xt = pack.data();
  const __m256d zero = _mm256_setzero_pd();

  std::size_t r = 0;
  for (; r + 4 <= batch; r += 4, x += 4 * ldx, y += 4 * ldy) {
    pack4(x, cols, ldx, xt);
    const double* p = a.data();
    for (std::size_t i = 0; i < rows; ++i, p += cols) {
      __m256d acc = zero;
      for (std::size_t j = 0; j < cols; ++j) {
        const __m256d aij = _mm256_set1_pd(p[j]);
        const __m256d xv = _mm256_loadu_pd(xt + 4 * j);
        acc = _mm256_add_pd(acc, _mm256_mul_pd(aij, xv));
      }
      acc = _mm256_add_pd(acc, _mm256_set1_pd(b[i]));
      if (relu) {
        // s > 0 ? s : 0.0 -- GT_OQ is false for NaN and -0.0, matching the
        // scalar clamp exactly.
        const __m256d gt = _mm256_cmp_pd(acc, zero, _CMP_GT_OQ);
        acc = _mm256_blendv_pd(zero, acc, gt);
      }
      double lanes[4];
      _mm256_storeu_pd(lanes, acc);
      y[0 * ldy + i] = lanes[0];
      y[1 * ldy + i] = lanes[1];
      y[2 * ldy + i] = lanes[2];
      y[3 * ldy + i] = lanes[3];
    }
  }
  if (r < batch) scalar::gemm_bias(a, x, batch - r, ldx, b, y, ldy, relu);
}

void gemm_transpose_avx2(const Matrix& a, const double* d, std::size_t batch,
                         std::size_t ldd, double* dp, std::size_t ldp) {
  const std::size_t rows = a.rows(), cols = a.cols();
  const std::size_t cols4 = cols & ~std::size_t{3};
  for (std::size_t r = 0; r < batch; ++r, d += ldd, dp += ldp) {
    std::size_t j = 0;
    const __m256d zero = _mm256_setzero_pd();
    for (; j < cols4; j += 4) _mm256_storeu_pd(dp + j, zero);
    for (; j < cols; ++j) dp[j] = 0.0;
    const double* p = a.data();
    for (std::size_t i = 0; i < rows; ++i, p += cols) {
      const double di = d[i];
      if (di == 0.0) continue;
      const __m256d dv = _mm256_set1_pd(di);
      j = 0;
      for (; j < cols4; j += 4) {
        const __m256d pv = _mm256_loadu_pd(p + j);
        const __m256d cur = _mm256_loadu_pd(dp + j);
        _mm256_storeu_pd(dp + j, _mm256_add_pd(cur, _mm256_mul_pd(pv, dv)));
      }
      for (; j < cols; ++j) dp[j] += p[j] * di;
    }
  }
}

void gemm_grad_accum_avx2(const double* d, std::size_t batch, std::size_t ldd,
                          const double* x, std::size_t ldx, Matrix& dw, double* db) {
  const std::size_t rows = dw.rows(), cols = dw.cols();
  const std::size_t cols4 = cols & ~std::size_t{3};
  for (std::size_t r = 0; r < batch; ++r, d += ldd, x += ldx) {
    double* p = dw.data();
    for (std::size_t i = 0; i < rows; ++i, p += cols) {
      const double di = d[i];
      db[i] += di;
      if (di == 0.0) continue;
      const __m256d dv = _mm256_set1_pd(di);
      std::size_t j = 0;
      for (; j < cols4; j += 4) {
        const __m256d xv = _mm256_loadu_pd(x + j);
        const __m256d cur = _mm256_loadu_pd(p + j);
        _mm256_storeu_pd(p + j, _mm256_add_pd(cur, _mm256_mul_pd(dv, xv)));
      }
      for (; j < cols; ++j) p[j] += di * x[j];
    }
  }
}

void batch_max_violation_avx2(const Matrix& a, const double* b, const double* x,
                              std::size_t batch, std::size_t ldx, double* worst) {
  const std::size_t rows = a.rows(), cols = a.cols();
  if (rows == 0) {
    for (std::size_t r = 0; r < batch; ++r) worst[r] = 0.0;
    return;
  }
  std::vector<double>& pack = pack_buffer();
  if (pack.size() < 4 * cols) pack.resize(4 * cols);
  double* xt = pack.data();

  std::size_t r = 0;
  for (; r + 4 <= batch; r += 4, x += 4 * ldx) {
    pack4(x, cols, ldx, xt);
    __m256d w = _mm256_set1_pd(-std::numeric_limits<double>::infinity());
    const double* p = a.data();
    for (std::size_t i = 0; i < rows; ++i, p += cols) {
      __m256d s = _mm256_set1_pd(-b[i]);
      for (std::size_t j = 0; j < cols; ++j) {
        const __m256d aij = _mm256_set1_pd(p[j]);
        const __m256d xv = _mm256_loadu_pd(xt + 4 * j);
        s = _mm256_add_pd(s, _mm256_mul_pd(aij, xv));
      }
      // w = std::max(w, s) == (w < s) ? s : w; LT_OQ is false on NaN, so a
      // NaN row sum leaves w unchanged exactly like the scalar kernel.
      const __m256d lt = _mm256_cmp_pd(w, s, _CMP_LT_OQ);
      w = _mm256_blendv_pd(w, s, lt);
    }
    _mm256_storeu_pd(worst + r, w);
  }
  if (r < batch) scalar::batch_max_violation(a, b, x, batch - r, ldx, worst + r);
}

// ---- LP tableau primitives --------------------------------------------

void lp_row_sub_scaled_avx2(double* dst, const double* src, double f,
                            std::size_t n) {
  const __m256d fv = _mm256_set1_pd(f);
  const std::size_t n4 = n & ~std::size_t{3};
  std::size_t j = 0;
  for (; j < n4; j += 4) {
    const __m256d sv = _mm256_loadu_pd(src + j);
    const __m256d dv = _mm256_loadu_pd(dst + j);
    _mm256_storeu_pd(dst + j, _mm256_sub_pd(dv, _mm256_mul_pd(fv, sv)));
  }
  for (; j < n; ++j) dst[j] -= f * src[j];
}

void lp_row_add_scaled_avx2(double* dst, const double* src, double f,
                            std::size_t n) {
  const __m256d fv = _mm256_set1_pd(f);
  const std::size_t n4 = n & ~std::size_t{3};
  std::size_t j = 0;
  for (; j < n4; j += 4) {
    const __m256d sv = _mm256_loadu_pd(src + j);
    const __m256d dv = _mm256_loadu_pd(dst + j);
    _mm256_storeu_pd(dst + j, _mm256_add_pd(dv, _mm256_mul_pd(sv, fv)));
  }
  for (; j < n; ++j) dst[j] += src[j] * f;
}

/// All-ones lanes where blocked[j + lane] != 0.
inline __m256d blocked_mask4(const unsigned char* blocked, std::size_t j) {
  std::uint32_t raw;
  std::memcpy(&raw, blocked + j, 4);
  const __m128i bytes = _mm_cvtsi32_si128(static_cast<int>(raw));
  const __m256i wide = _mm256_cvtepu8_epi64(bytes);
  return _mm256_castsi256_pd(_mm256_cmpgt_epi64(wide, _mm256_setzero_si256()));
}

/// Two-pass argmin: the sequential "v[j] < best, ties keep earliest" scan
/// picks the FIRST index attaining the global minimum, provided that
/// minimum is strictly below `thresh` -- a property of the final result,
/// not of the scan order.  Pass 1 computes the min with compare+blend
/// (NaN never selected, as in the scalar scan); pass 2 finds its first
/// index.  Bit-equal values tie exactly like the scalar scan (including
/// -0.0 == +0.0: both scans keep the first zero seen).
std::ptrdiff_t lp_argmin_core(const double* v, const unsigned char* blocked,
                              std::size_t n, double thresh) {
  const std::size_t n4 = n & ~std::size_t{3};
  const __m256d tv = _mm256_set1_pd(thresh);
  __m256d bestv = tv;
  std::size_t j = 0;
  for (; j < n4; j += 4) {
    __m256d w = _mm256_loadu_pd(v + j);
    if (blocked) {
      // Barred columns contribute `thresh`, which can never win the
      // strict < comparison.
      w = _mm256_blendv_pd(w, tv, blocked_mask4(blocked, j));
    }
    const __m256d lt = _mm256_cmp_pd(w, bestv, _CMP_LT_OQ);
    bestv = _mm256_blendv_pd(bestv, w, lt);
  }
  double lanes[4];
  _mm256_storeu_pd(lanes, bestv);
  double best = thresh;
  bool found = false;
  for (int l = 0; l < 4; ++l) {
    if (lanes[l] < best) {
      best = lanes[l];
      found = true;
    }
  }
  for (; j < n; ++j) {
    if (blocked && blocked[j]) continue;
    if (v[j] < best) {
      best = v[j];
      found = true;
    }
  }
  if (!found) return -1;

  // Pass 2: first index equal to the minimum (skipping barred columns).
  const __m256d bv = _mm256_set1_pd(best);
  for (j = 0; j < n4; j += 4) {
    __m256d eq = _mm256_cmp_pd(_mm256_loadu_pd(v + j), bv, _CMP_EQ_OQ);
    if (blocked) eq = _mm256_andnot_pd(blocked_mask4(blocked, j), eq);
    const int mask = _mm256_movemask_pd(eq);
    if (mask != 0) {
      return static_cast<std::ptrdiff_t>(j) + __builtin_ctz(static_cast<unsigned>(mask));
    }
  }
  for (; j < n; ++j) {
    if (blocked && blocked[j]) continue;
    if (v[j] == best) return static_cast<std::ptrdiff_t>(j);
  }
  return -1;  // unreachable: `best` was read from the array
}

std::ptrdiff_t lp_argmin_avx2(const double* v, std::size_t n, double thresh) {
  return lp_argmin_core(v, nullptr, n, thresh);
}

std::ptrdiff_t lp_argmin_masked_avx2(const double* v, const unsigned char* blocked,
                                     std::size_t n, double thresh) {
  return lp_argmin_core(v, blocked, n, thresh);
}

constexpr KernelTable kAvx2Table = {
    // Within-row reductions stay scalar at every ISA (see dispatch.hpp).
    &scalar::gemv,
    &scalar::gemv_sub,
    &scalar::gemv_bias,
    &gemm_bias_avx2,
    &gemm_transpose_avx2,
    &gemm_grad_accum_avx2,
    &batch_max_violation_avx2,
    &lp_row_sub_scaled_avx2,
    &lp_row_add_scaled_avx2,
    &lp_argmin_avx2,
    &lp_argmin_masked_avx2,
};

}  // namespace

const KernelTable& avx2_table() { return kAvx2Table; }

}  // namespace oic::linalg::detail
