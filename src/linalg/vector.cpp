#include "linalg/vector.hpp"

#include <cmath>
#include <ostream>

#include "common/error.hpp"

namespace oic::linalg {

double& Vector::operator[](std::size_t i) {
  OIC_REQUIRE(i < data_.size(), "Vector: index out of range");
  return data_[i];
}

double Vector::operator[](std::size_t i) const {
  OIC_REQUIRE(i < data_.size(), "Vector: index out of range");
  return data_[i];
}

Vector& Vector::operator+=(const Vector& rhs) {
  OIC_REQUIRE(size() == rhs.size(), "Vector+=: dimension mismatch");
  for (std::size_t i = 0; i < size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Vector& Vector::operator-=(const Vector& rhs) {
  OIC_REQUIRE(size() == rhs.size(), "Vector-=: dimension mismatch");
  for (std::size_t i = 0; i < size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

Vector& Vector::operator*=(double s) {
  for (double& x : data_) x *= s;
  return *this;
}

Vector& Vector::operator/=(double s) {
  OIC_REQUIRE(s != 0.0, "Vector/=: division by zero");
  for (double& x : data_) x /= s;
  return *this;
}

double Vector::norm2() const {
  double s = 0.0;
  for (double x : data_) s += x * x;
  return std::sqrt(s);
}

double Vector::norm1() const {
  double s = 0.0;
  for (double x : data_) s += std::fabs(x);
  return s;
}

double Vector::norm_inf() const {
  double s = 0.0;
  for (double x : data_) s = std::max(s, std::fabs(x));
  return s;
}

Vector operator+(Vector lhs, const Vector& rhs) {
  lhs += rhs;
  return lhs;
}

Vector operator-(Vector lhs, const Vector& rhs) {
  lhs -= rhs;
  return lhs;
}

Vector operator*(double s, Vector v) {
  v *= s;
  return v;
}

Vector operator*(Vector v, double s) {
  v *= s;
  return v;
}

Vector operator/(Vector v, double s) {
  v /= s;
  return v;
}

Vector operator-(Vector v) {
  v *= -1.0;
  return v;
}

double dot(const Vector& a, const Vector& b) {
  OIC_REQUIRE(a.size() == b.size(), "dot: dimension mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

Vector concat(const Vector& a, const Vector& b) {
  Vector out(a.size() + b.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i];
  for (std::size_t i = 0; i < b.size(); ++i) out[a.size() + i] = b[i];
  return out;
}

bool approx_equal(const Vector& a, const Vector& b, double tol) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::fabs(a[i] - b[i]) > tol) return false;
  }
  return true;
}

std::ostream& operator<<(std::ostream& os, const Vector& v) {
  os << "[";
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i > 0) os << ", ";
    os << v[i];
  }
  return os << "]";
}

}  // namespace oic::linalg
