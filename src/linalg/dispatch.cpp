/// \file dispatch.cpp
/// Runtime ISA resolution and the per-ISA kernel tables.
///
/// Compiled WITHOUT any ISA-specific flags: everything here must run on
/// the x86-64 baseline.  The AVX2 implementations live in their own TU
/// (kernels_avx2.cpp, compiled with -mavx2 -mfma -ffp-contract=off) and
/// are reached only through the table pointer after the cpuid check, so
/// an unsupported machine never executes a VEX instruction.

#include "linalg/dispatch.hpp"

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <string>

#include "linalg/kernels.hpp"

namespace oic::linalg::detail {

namespace {

constexpr KernelTable kScalarTable = {
    &scalar::gemv,
    &scalar::gemv_sub,
    &scalar::gemv_bias,
    &scalar::gemm_bias,
    &scalar::gemm_transpose,
    &scalar::gemm_grad_accum,
    &scalar::batch_max_violation,
    &scalar::lp_row_sub_scaled,
    &scalar::lp_row_add_scaled,
    &scalar::lp_argmin,
    &scalar::lp_argmin_masked,
};

}  // namespace

#ifdef OIC_HAVE_AVX2
// Defined in kernels_avx2.cpp.
const KernelTable& avx2_table();
#endif

const KernelTable& table_for(simd::Isa isa) {
#ifdef OIC_HAVE_AVX2
  if (isa == simd::Isa::kAvx2) return avx2_table();
#else
  (void)isa;
#endif
  return kScalarTable;
}

const KernelTable& table() { return table_for(simd::active()); }

}  // namespace oic::linalg::detail

namespace oic::linalg::simd {

namespace {

/// -1 = unresolved; otherwise the cached static_cast<int>(Isa).
std::atomic<int> g_active{-1};

Isa resolve_from_env_and_cpu() {
  Isa detected = (compiled_avx2() && cpu_has_avx2()) ? Isa::kAvx2 : Isa::kScalar;
  const char* env = std::getenv("OIC_SIMD");
  if (!env) return detected;
  std::string v(env);
  for (char& c : v) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  if (v == "off" || v == "0" || v == "scalar" || v == "none") return Isa::kScalar;
  if (v == "avx2") return detected;  // request degrades to scalar when absent
  return detected;                   // "auto", "on", "1", unknown values
}

}  // namespace

bool cpu_has_avx2() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

bool compiled_avx2() {
#ifdef OIC_HAVE_AVX2
  return true;
#else
  return false;
#endif
}

Isa active() {
  int v = g_active.load(std::memory_order_relaxed);
  if (v < 0) {
    v = static_cast<int>(resolve_from_env_and_cpu());
    g_active.store(v, std::memory_order_relaxed);
  }
  return static_cast<Isa>(v);
}

bool force(Isa isa) {
  if (isa == Isa::kAvx2 && !(compiled_avx2() && cpu_has_avx2())) return false;
  g_active.store(static_cast<int>(isa), std::memory_order_relaxed);
  return true;
}

void reset() { g_active.store(-1, std::memory_order_relaxed); }

const char* isa_name(Isa isa) {
  switch (isa) {
    case Isa::kAvx2:
      return "avx2";
    case Isa::kScalar:
      break;
  }
  return "scalar";
}

const char* active_isa_name() { return isa_name(active()); }

}  // namespace oic::linalg::simd
