#pragma once
/// \file simd.hpp
/// Runtime ISA selection for the vectorized kernel tier.
///
/// The hot kernels (linalg/kernels.hpp, the lp/prepared.cpp tableau
/// primitives) dispatch through a per-ISA function table picked once at
/// startup: AVX2 when the CPU reports avx2+fma and the AVX2 translation
/// unit was compiled in, scalar otherwise.  The scalar reference path is
/// always built, so binaries stay portable -- no -march=native anywhere.
///
/// Selection order:
///   1. OIC_SIMD environment variable: "off"/"0"/"scalar" pins the scalar
///      path (kill switch); "avx2" requests AVX2 (silently degrades to
///      scalar when the CPU or build lacks it); "auto"/unset detects.
///   2. cpuid (via __builtin_cpu_supports): both avx2 and fma must be
///      present -- the AVX2 TU is compiled with -mfma enabled even though
///      the kernels avoid fused contractions, so the stricter check keeps
///      the dispatch decision conservative.
///
/// force()/reset() exist for tests (scalar-vs-SIMD parity suites) and for
/// benchmarks that measure both paths in one process.  They are
/// thread-safe but not synchronized against concurrently running kernels;
/// flip them only between batches.

namespace oic::linalg::simd {

enum class Isa {
  kScalar = 0,  ///< portable reference path, always available
  kAvx2 = 1,    ///< AVX2 path (compiled separately, cpuid-gated)
};

/// The ISA the kernel dispatch table currently resolves to.  Resolved
/// lazily on first use from OIC_SIMD + cpuid, then cached.
Isa active();

/// Pin the active ISA (test/bench hook).  Returns false -- leaving the
/// selection unchanged -- when the requested ISA is not available on this
/// CPU/build.
bool force(Isa isa);

/// Drop any cached/forced selection; the next active() re-resolves from
/// the environment and cpuid.
void reset();

/// Stable lowercase name for JSON provenance ("scalar", "avx2").
const char* isa_name(Isa isa);

/// isa_name(active()).
const char* active_isa_name();

/// True when the CPU reports avx2 and fma.
bool cpu_has_avx2();

/// True when the AVX2 translation unit was compiled into this binary
/// (CMake option OIC_SIMD, default ON when the compiler supports it).
bool compiled_avx2();

}  // namespace oic::linalg::simd
