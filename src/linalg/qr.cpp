#include "linalg/qr.hpp"

#include <cmath>

#include "common/error.hpp"

namespace oic::linalg {

QR::QR(const Matrix& a) : m_(a.rows()), n_(a.cols()), qr_(a), beta_(a.cols(), 0.0) {
  OIC_REQUIRE(m_ >= n_, "QR: requires rows >= cols");
  for (std::size_t k = 0; k < n_; ++k) {
    // Build the Householder reflector for column k.
    double norm = 0.0;
    for (std::size_t i = k; i < m_; ++i) norm += qr_(i, k) * qr_(i, k);
    norm = std::sqrt(norm);
    if (norm == 0.0) {
      beta_[k] = 0.0;
      continue;
    }
    const double alpha = qr_(k, k) >= 0.0 ? -norm : norm;
    double vnorm2 = 0.0;
    qr_(k, k) -= alpha;  // v = x - alpha*e1 stored in place
    for (std::size_t i = k; i < m_; ++i) vnorm2 += qr_(i, k) * qr_(i, k);
    beta_[k] = vnorm2 == 0.0 ? 0.0 : 2.0 / vnorm2;

    // Apply the reflector to the trailing columns.
    for (std::size_t j = k + 1; j < n_; ++j) {
      double s = 0.0;
      for (std::size_t i = k; i < m_; ++i) s += qr_(i, k) * qr_(i, j);
      s *= beta_[k];
      for (std::size_t i = k; i < m_; ++i) qr_(i, j) -= s * qr_(i, k);
    }
    // Stash alpha (the R diagonal) where the solve expects it: we keep v in
    // the strict lower part and remember R(k,k) separately via the diagonal
    // trick of storing it after application.  Here we simply re-store alpha.
    // To keep both, move v_k (the diagonal element of v) into beta bookkeeping:
    // we store R(k,k) = alpha and scale v so its k-th entry is implicit.
    const double vk = qr_(k, k);
    if (vk != 0.0) {
      for (std::size_t i = k + 1; i < m_; ++i) qr_(i, k) /= vk;
      beta_[k] = beta_[k] * vk * vk;  // beta for normalized v with v_k = 1
    }
    qr_(k, k) = alpha;
  }
}

bool QR::rank_deficient(double tol) const {
  for (std::size_t k = 0; k < n_; ++k)
    if (std::fabs(qr_(k, k)) < tol) return true;
  return false;
}

Vector QR::qt_mul(const Vector& b) const {
  OIC_REQUIRE(b.size() == m_, "QR::qt_mul: dimension mismatch");
  Vector y = b;
  for (std::size_t k = 0; k < n_; ++k) {
    if (beta_[k] == 0.0) continue;
    // v has implicit v_k = 1 and explicit tail in the strict lower triangle.
    double s = y[k];
    for (std::size_t i = k + 1; i < m_; ++i) s += qr_(i, k) * y[i];
    s *= beta_[k];
    y[k] -= s;
    for (std::size_t i = k + 1; i < m_; ++i) y[i] -= s * qr_(i, k);
  }
  return y;
}

Vector QR::solve(const Vector& b) const {
  if (rank_deficient()) throw NumericalError("QR::solve: rank-deficient matrix");
  Vector y = qt_mul(b);
  Vector x(n_);
  for (std::size_t ii = n_; ii-- > 0;) {
    double s = y[ii];
    for (std::size_t j = ii + 1; j < n_; ++j) s -= qr_(ii, j) * x[j];
    x[ii] = s / qr_(ii, ii);
  }
  return x;
}

Matrix QR::r() const {
  Matrix r(n_, n_);
  for (std::size_t i = 0; i < n_; ++i)
    for (std::size_t j = i; j < n_; ++j) r(i, j) = qr_(i, j);
  return r;
}

Vector lstsq(const Matrix& a, const Vector& b) { return QR(a).solve(b); }

}  // namespace oic::linalg
