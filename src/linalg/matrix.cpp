#include "linalg/matrix.hpp"

#include <cmath>
#include <ostream>

#include "common/error.hpp"

namespace oic::linalg {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    OIC_REQUIRE(r.size() == cols_, "Matrix: ragged initializer list");
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::zero(std::size_t rows, std::size_t cols) { return Matrix(rows, cols); }

Matrix Matrix::diag(const Vector& d) {
  Matrix m(d.size(), d.size());
  for (std::size_t i = 0; i < d.size(); ++i) m(i, i) = d[i];
  return m;
}

Matrix Matrix::from_rows(const std::vector<Vector>& rows) {
  if (rows.empty()) return Matrix();
  Matrix m(rows.size(), rows[0].size());
  for (std::size_t r = 0; r < rows.size(); ++r) m.set_row(r, rows[r]);
  return m;
}

double& Matrix::operator()(std::size_t r, std::size_t c) {
  OIC_REQUIRE(r < rows_ && c < cols_, "Matrix: index out of range");
  return data_[r * cols_ + c];
}

double Matrix::operator()(std::size_t r, std::size_t c) const {
  OIC_REQUIRE(r < rows_ && c < cols_, "Matrix: index out of range");
  return data_[r * cols_ + c];
}

Vector Matrix::row(std::size_t r) const {
  OIC_REQUIRE(r < rows_, "Matrix::row: index out of range");
  Vector v(cols_);
  for (std::size_t c = 0; c < cols_; ++c) v[c] = data_[r * cols_ + c];
  return v;
}

Vector Matrix::col(std::size_t c) const {
  OIC_REQUIRE(c < cols_, "Matrix::col: index out of range");
  Vector v(rows_);
  for (std::size_t r = 0; r < rows_; ++r) v[r] = data_[r * cols_ + c];
  return v;
}

void Matrix::set_row(std::size_t r, const Vector& v) {
  OIC_REQUIRE(r < rows_, "Matrix::set_row: index out of range");
  OIC_REQUIRE(v.size() == cols_, "Matrix::set_row: dimension mismatch");
  for (std::size_t c = 0; c < cols_; ++c) data_[r * cols_ + c] = v[c];
}

void Matrix::set_col(std::size_t c, const Vector& v) {
  OIC_REQUIRE(c < cols_, "Matrix::set_col: index out of range");
  OIC_REQUIRE(v.size() == rows_, "Matrix::set_col: dimension mismatch");
  for (std::size_t r = 0; r < rows_; ++r) data_[r * cols_ + c] = v[r];
}

Matrix& Matrix::operator+=(const Matrix& rhs) {
  OIC_REQUIRE(rows_ == rhs.rows_ && cols_ == rhs.cols_, "Matrix+=: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& rhs) {
  OIC_REQUIRE(rows_ == rhs.rows_ && cols_ == rhs.cols_, "Matrix-=: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (double& x : data_) x *= s;
  return *this;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = data_[r * cols_ + c];
  return t;
}

double Matrix::norm_inf_elem() const {
  double s = 0.0;
  for (double x : data_) s = std::max(s, std::fabs(x));
  return s;
}

double Matrix::norm_fro() const {
  double s = 0.0;
  for (double x : data_) s += x * x;
  return std::sqrt(s);
}

Matrix operator+(Matrix lhs, const Matrix& rhs) {
  lhs += rhs;
  return lhs;
}

Matrix operator-(Matrix lhs, const Matrix& rhs) {
  lhs -= rhs;
  return lhs;
}

Matrix operator*(double s, Matrix m) {
  m *= s;
  return m;
}

Matrix operator*(Matrix m, double s) {
  m *= s;
  return m;
}

Matrix operator*(const Matrix& a, const Matrix& b) {
  OIC_REQUIRE(a.cols() == b.rows(), "Matrix*: inner dimension mismatch");
  Matrix c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < b.cols(); ++j) c(i, j) += aik * b(k, j);
    }
  }
  return c;
}

Vector operator*(const Matrix& a, const Vector& x) {
  OIC_REQUIRE(a.cols() == x.size(), "Matrix*Vector: dimension mismatch");
  Vector y(a.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < a.cols(); ++j) s += a(i, j) * x[j];
    y[i] = s;
  }
  return y;
}

Matrix operator-(Matrix m) {
  m *= -1.0;
  return m;
}

Vector transpose_mul(const Matrix& a, const Vector& x) {
  OIC_REQUIRE(a.rows() == x.size(), "transpose_mul: dimension mismatch");
  Vector y(a.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double xi = x[i];
    if (xi == 0.0) continue;
    for (std::size_t j = 0; j < a.cols(); ++j) y[j] += a(i, j) * xi;
  }
  return y;
}

Matrix pow(const Matrix& a, unsigned k) {
  OIC_REQUIRE(a.rows() == a.cols(), "pow: matrix must be square");
  Matrix result = Matrix::identity(a.rows());
  Matrix base = a;
  while (k > 0) {
    if (k & 1u) result = result * base;
    base = base * base;
    k >>= 1u;
  }
  return result;
}

bool approx_equal(const Matrix& a, const Matrix& b, double tol) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  for (std::size_t r = 0; r < a.rows(); ++r)
    for (std::size_t c = 0; c < a.cols(); ++c)
      if (std::fabs(a(r, c) - b(r, c)) > tol) return false;
  return true;
}

Matrix hcat(const Matrix& a, const Matrix& b) {
  OIC_REQUIRE(a.rows() == b.rows(), "hcat: row count mismatch");
  Matrix m(a.rows(), a.cols() + b.cols());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < a.cols(); ++c) m(r, c) = a(r, c);
    for (std::size_t c = 0; c < b.cols(); ++c) m(r, a.cols() + c) = b(r, c);
  }
  return m;
}

Matrix vcat(const Matrix& a, const Matrix& b) {
  OIC_REQUIRE(a.cols() == b.cols(), "vcat: column count mismatch");
  Matrix m(a.rows() + b.rows(), a.cols());
  for (std::size_t r = 0; r < a.rows(); ++r)
    for (std::size_t c = 0; c < a.cols(); ++c) m(r, c) = a(r, c);
  for (std::size_t r = 0; r < b.rows(); ++r)
    for (std::size_t c = 0; c < b.cols(); ++c) m(a.rows() + r, c) = b(r, c);
  return m;
}

std::ostream& operator<<(std::ostream& os, const Matrix& m) {
  for (std::size_t r = 0; r < m.rows(); ++r) {
    os << (r == 0 ? "[[" : " [");
    for (std::size_t c = 0; c < m.cols(); ++c) {
      if (c > 0) os << ", ";
      os << m(r, c);
    }
    os << (r + 1 == m.rows() ? "]]" : "]\n");
  }
  return os;
}

}  // namespace oic::linalg
