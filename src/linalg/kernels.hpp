#pragma once
/// \file kernels.hpp
/// Allocation-free dense kernels for the per-step hot paths.
///
/// The Matrix/Vector operators return fresh values -- right for safe-set
/// algebra, wasteful inside closed-loop inner loops that run millions of
/// times per evaluation sweep.  These kernels write into caller-provided
/// raw buffers and fuse the GEMV + bias (+ ReLU) chain of an MLP layer into
/// one pass.  Accumulation order matches the operator forms exactly
/// ((sum_j a_ij x_j) + b_i, j ascending), so results are bit-identical to
/// the allocating expressions they replace.
///
/// Every public kernel dispatches through the per-ISA function table
/// (linalg/dispatch.hpp): an AVX2 path when the CPU and build support it,
/// otherwise the scalar reference implementations below (namespace
/// scalar).  The vectorized paths preserve each output element's scalar
/// operation sequence exactly -- vectorization runs across independent
/// outputs (batch rows, matrix columns), never across a single reduction
/// -- so every table produces bit-identical results.  tests/test_simd.cpp
/// asserts this exhaustively; docs/perf.md states the per-kernel contract.

#include <algorithm>
#include <cstddef>
#include <limits>

#include "linalg/dispatch.hpp"
#include "linalg/matrix.hpp"

namespace oic::linalg {

/// Portable reference implementations -- the numeric ground truth every
/// vectorized path must reproduce bit-for-bit.  Public so the parity
/// suite and the microbench can pin them explicitly.
namespace scalar {

/// y = A x.  `x` must have a.cols() entries, `y` a.rows(); no aliasing.
inline void gemv(const Matrix& a, const double* x, double* y) {
  const std::size_t rows = a.rows(), cols = a.cols();
  const double* p = a.data();
  for (std::size_t i = 0; i < rows; ++i, p += cols) {
    double s = 0.0;
    for (std::size_t j = 0; j < cols; ++j) s += p[j] * x[j];
    y[i] = s;
  }
}

/// y -= A x (residual accumulation, e.g. w = x_next - A x - B u - c).
inline void gemv_sub(const Matrix& a, const double* x, double* y) {
  const std::size_t rows = a.rows(), cols = a.cols();
  const double* p = a.data();
  for (std::size_t i = 0; i < rows; ++i, p += cols) {
    double s = 0.0;
    for (std::size_t j = 0; j < cols; ++j) s += p[j] * x[j];
    y[i] -= s;
  }
}

/// y = A x + b, optionally ReLU-clamped: one fused pass per layer.
inline void gemv_bias(const Matrix& a, const double* x, const double* b, double* y,
                      bool relu) {
  const std::size_t rows = a.rows(), cols = a.cols();
  const double* p = a.data();
  for (std::size_t i = 0; i < rows; ++i, p += cols) {
    double s = 0.0;
    for (std::size_t j = 0; j < cols; ++j) s += p[j] * x[j];
    s += b[i];
    y[i] = relu ? (s > 0.0 ? s : 0.0) : s;  // same clamp as the reference ReLU
  }
}

/// Y[r,:] = A X[r,:] + b for every row r, optionally ReLU-clamped.
/// X has `batch` rows of a.cols() valid entries with stride ldx; Y gets
/// `batch` rows of a.rows() entries with stride ldy.  No aliasing.
inline void gemm_bias(const Matrix& a, const double* x, std::size_t batch,
                      std::size_t ldx, const double* b, double* y, std::size_t ldy,
                      bool relu) {
  const std::size_t rows = a.rows(), cols = a.cols();
  for (std::size_t r = 0; r < batch; ++r, x += ldx, y += ldy) {
    const double* p = a.data();
    for (std::size_t i = 0; i < rows; ++i, p += cols) {
      double s = 0.0;
      for (std::size_t j = 0; j < cols; ++j) s += p[j] * x[j];
      s += b[i];
      y[i] = relu ? (s > 0.0 ? s : 0.0) : s;
    }
  }
}

/// Back-propagate a batch of deltas through A: DP[r,:] = A^T D[r,:] per row.
/// Matches transpose_mul's accumulation (i ascending, zero rows skipped).
inline void gemm_transpose(const Matrix& a, const double* d, std::size_t batch,
                           std::size_t ldd, double* dp, std::size_t ldp) {
  const std::size_t rows = a.rows(), cols = a.cols();
  for (std::size_t r = 0; r < batch; ++r, d += ldd, dp += ldp) {
    for (std::size_t j = 0; j < cols; ++j) dp[j] = 0.0;
    const double* p = a.data();
    for (std::size_t i = 0; i < rows; ++i, p += cols) {
      const double di = d[i];
      if (di == 0.0) continue;
      for (std::size_t j = 0; j < cols; ++j) dp[j] += p[j] * di;
    }
  }
}

/// Accumulate layer gradients over a minibatch: dW += sum_r D[r,:] X[r,:]^T
/// and db += sum_r D[r,:], batch as the outermost loop.
inline void gemm_grad_accum(const double* d, std::size_t batch, std::size_t ldd,
                            const double* x, std::size_t ldx, Matrix& dw,
                            double* db) {
  const std::size_t rows = dw.rows(), cols = dw.cols();
  for (std::size_t r = 0; r < batch; ++r, d += ldd, x += ldx) {
    double* p = dw.data();
    for (std::size_t i = 0; i < rows; ++i, p += cols) {
      const double di = d[i];
      db[i] += di;
      if (di == 0.0) continue;
      for (std::size_t j = 0; j < cols; ++j) p[j] += di * x[j];
    }
  }
}

/// Batched polytope membership: worst[r] = max_i (a_i . X[r,:] - b_i).
inline void batch_max_violation(const Matrix& a, const double* b, const double* x,
                                std::size_t batch, std::size_t ldx, double* worst) {
  const std::size_t rows = a.rows(), cols = a.cols();
  for (std::size_t r = 0; r < batch; ++r, x += ldx) {
    if (rows == 0) {
      worst[r] = 0.0;
      continue;
    }
    double w = -std::numeric_limits<double>::infinity();
    const double* p = a.data();
    for (std::size_t i = 0; i < rows; ++i, p += cols) {
      double s = -b[i];
      for (std::size_t j = 0; j < cols; ++j) s += p[j] * x[j];
      w = std::max(w, s);
    }
    worst[r] = w;
  }
}

// ---- LP tableau primitives (reference forms of the dispatch entries) ----

/// dst[j] -= f * src[j].
inline void lp_row_sub_scaled(double* dst, const double* src, double f,
                              std::size_t n) {
  for (std::size_t j = 0; j < n; ++j) dst[j] -= f * src[j];
}

/// dst[i] += src[i] * f.
inline void lp_row_add_scaled(double* dst, const double* src, double f,
                              std::size_t n) {
  for (std::size_t j = 0; j < n; ++j) dst[j] += src[j] * f;
}

/// First index attaining the minimum of v when min < thresh, else -1.
/// Exactly the sequential "v[j] < best" scan seeded with best = thresh
/// (ties keep the earliest index).
inline std::ptrdiff_t lp_argmin(const double* v, std::size_t n, double thresh) {
  std::ptrdiff_t pick = -1;
  double best = thresh;
  for (std::size_t j = 0; j < n; ++j) {
    if (v[j] < best) {
      best = v[j];
      pick = static_cast<std::ptrdiff_t>(j);
    }
  }
  return pick;
}

/// lp_argmin over the columns with !blocked[j]; blocked may be null.
inline std::ptrdiff_t lp_argmin_masked(const double* v, const unsigned char* blocked,
                                       std::size_t n, double thresh) {
  if (!blocked) return lp_argmin(v, n, thresh);
  std::ptrdiff_t pick = -1;
  double best = thresh;
  for (std::size_t j = 0; j < n; ++j) {
    if (!blocked[j] && v[j] < best) {
      best = v[j];
      pick = static_cast<std::ptrdiff_t>(j);
    }
  }
  return pick;
}

}  // namespace scalar

// ---- public dispatching surface (signatures unchanged from the scalar
// tier; every caller picks up runtime ISA selection transparently) ----

inline void gemv(const Matrix& a, const double* x, double* y) {
  detail::table().gemv(a, x, y);
}

inline void gemv_sub(const Matrix& a, const double* x, double* y) {
  detail::table().gemv_sub(a, x, y);
}

inline void gemv_bias(const Matrix& a, const double* x, const double* b, double* y,
                      bool relu) {
  detail::table().gemv_bias(a, x, b, y, relu);
}

/// One MLP layer over a whole minibatch in a single fused pass.  Batches
/// are stored row-major (one sample per row) with an explicit leading
/// dimension, so callers can ping-pong through one max-width scratch
/// buffer.  Every per-row accumulation runs in exactly the per-sample
/// kernel's order (j ascending, then + bias), so a batched pass is
/// bit-identical to looping the per-sample kernels over the rows -- the
/// property the DQN's batched training path relies on for its parity
/// guarantee.  (The AVX2 path vectorizes ACROSS batch rows, keeping each
/// row's scalar reduction order.)
inline void gemm_bias(const Matrix& a, const double* x, std::size_t batch,
                      std::size_t ldx, const double* b, double* y, std::size_t ldy,
                      bool relu) {
  detail::table().gemm_bias(a, x, batch, ldx, b, y, ldy, relu);
}

/// Back-propagate a batch of deltas through A: DP[r,:] = A^T D[r,:] per row.
/// Matches transpose_mul's accumulation (i ascending, zero rows skipped).
/// D has `batch` rows of a.rows() entries (stride ldd); DP gets a.cols()
/// entries per row (stride ldp), overwritten.
inline void gemm_transpose(const Matrix& a, const double* d, std::size_t batch,
                           std::size_t ldd, double* dp, std::size_t ldp) {
  detail::table().gemm_transpose(a, d, batch, ldd, dp, ldp);
}

/// Accumulate layer gradients over a minibatch: dW += sum_r D[r,:] X[r,:]^T
/// and db += sum_r D[r,:], with the batch as the outermost loop -- the same
/// order in which the per-sample path adds one sample gradient at a time
/// (and with the same skip of zero delta entries), so the sums are
/// bit-identical to per-sample accumulation.
inline void gemm_grad_accum(const double* d, std::size_t batch, std::size_t ldd,
                            const double* x, std::size_t ldx, Matrix& dw,
                            double* db) {
  detail::table().gemm_grad_accum(d, batch, ldd, x, ldx, dw, db);
}

/// Batched polytope membership: worst[r] = max_i (a_i . X[r,:] - b_i) for
/// every row r of an SoA state batch (stride ldx).  Per row this runs the
/// exact accumulation of HPolytope::violation (s starts at -b_i, then
/// j-ascending adds, running max), so worst[r] is bit-identical to calling
/// violation on row r -- the property the multi-session monitor relies on
/// to keep batched safe-set checks equal to the per-session path.  An empty
/// constraint system reports 0.0, matching the scalar kernel.  (The AVX2
/// path streams the constraint matrix once per 4-session group, SoA
/// row-blocked, with compare+blend so NaN/inf handling matches std::max.)
inline void batch_max_violation(const Matrix& a, const double* b, const double* x,
                                std::size_t batch, std::size_t ldx, double* worst) {
  detail::table().batch_max_violation(a, b, x, batch, ldx, worst);
}

}  // namespace oic::linalg
