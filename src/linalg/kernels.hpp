#pragma once
/// \file kernels.hpp
/// Allocation-free dense kernels for the per-step hot paths.
///
/// The Matrix/Vector operators return fresh values -- right for safe-set
/// algebra, wasteful inside closed-loop inner loops that run millions of
/// times per evaluation sweep.  These kernels write into caller-provided
/// raw buffers and fuse the GEMV + bias (+ ReLU) chain of an MLP layer into
/// one pass.  Accumulation order matches the operator forms exactly
/// ((sum_j a_ij x_j) + b_i, j ascending), so results are bit-identical to
/// the allocating expressions they replace.

#include <cstddef>

#include "linalg/matrix.hpp"

namespace oic::linalg {

/// y = A x.  `x` must have a.cols() entries, `y` a.rows(); no aliasing.
inline void gemv(const Matrix& a, const double* x, double* y) {
  const std::size_t rows = a.rows(), cols = a.cols();
  const double* p = a.data();
  for (std::size_t i = 0; i < rows; ++i, p += cols) {
    double s = 0.0;
    for (std::size_t j = 0; j < cols; ++j) s += p[j] * x[j];
    y[i] = s;
  }
}

/// y -= A x (residual accumulation, e.g. w = x_next - A x - B u - c).
inline void gemv_sub(const Matrix& a, const double* x, double* y) {
  const std::size_t rows = a.rows(), cols = a.cols();
  const double* p = a.data();
  for (std::size_t i = 0; i < rows; ++i, p += cols) {
    double s = 0.0;
    for (std::size_t j = 0; j < cols; ++j) s += p[j] * x[j];
    y[i] -= s;
  }
}

/// y = A x + b, optionally ReLU-clamped: one fused pass per layer.
inline void gemv_bias(const Matrix& a, const double* x, const double* b, double* y,
                      bool relu) {
  const std::size_t rows = a.rows(), cols = a.cols();
  const double* p = a.data();
  for (std::size_t i = 0; i < rows; ++i, p += cols) {
    double s = 0.0;
    for (std::size_t j = 0; j < cols; ++j) s += p[j] * x[j];
    s += b[i];
    y[i] = relu ? (s > 0.0 ? s : 0.0) : s;  // same clamp as the reference ReLU
  }
}

}  // namespace oic::linalg
