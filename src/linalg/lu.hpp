#pragma once
/// \file lu.hpp
/// LU factorization with partial pivoting.  Backs matrix inversion for
/// backward-reachability preimages and linear solves inside the simplex and
/// Riccati routines.

#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"

namespace oic::linalg {

/// PA = LU factorization of a square matrix with partial (row) pivoting.
///
/// Construction performs the factorization once; solve/inverse reuse it.
/// A matrix whose pivot falls below `pivot_tol` is reported singular rather
/// than silently producing garbage.
class LU {
 public:
  /// Factor `a` (must be square).  Does not throw on singular input; check
  /// singular() before calling solve()/inverse().
  explicit LU(const Matrix& a, double pivot_tol = 1e-12);

  /// True when a near-zero pivot was encountered.
  bool singular() const { return singular_; }

  /// Dimension of the factored matrix.
  std::size_t size() const { return n_; }

  /// Determinant of the original matrix (0 when singular() is true only if
  /// an exactly-zero pivot occurred; otherwise the signed product of pivots).
  double det() const;

  /// Solve A x = b.  Throws NumericalError when singular().
  Vector solve(const Vector& b) const;

  /// Solve A X = B column-by-column.  Throws NumericalError when singular().
  Matrix solve(const Matrix& b) const;

  /// A^{-1}.  Throws NumericalError when singular().
  Matrix inverse() const;

 private:
  std::size_t n_ = 0;
  Matrix lu_;                    // packed L (unit diagonal) and U
  std::vector<std::size_t> piv_; // row permutation
  int sign_ = 1;                 // permutation sign for det()
  bool singular_ = false;
};

/// Convenience: solve A x = b in one call.  Throws NumericalError if A is
/// singular.
Vector solve(const Matrix& a, const Vector& b);

/// Convenience: A^{-1}.  Throws NumericalError if A is singular.
Matrix inverse(const Matrix& a);

/// Convenience: determinant of a square matrix.
double det(const Matrix& a);

}  // namespace oic::linalg
