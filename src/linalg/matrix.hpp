#pragma once
/// \file matrix.hpp
/// Dense row-major matrix.  System matrices in this library are small
/// (states n <= ~20, MPC horizons <= ~30), so the implementation is a plain
/// checked dense type; no expression templates, no allocator games.

#include <cstddef>
#include <initializer_list>
#include <iosfwd>
#include <vector>

#include "linalg/vector.hpp"

namespace oic::linalg {

/// Dense matrix of doubles with value semantics, row-major storage.
class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() = default;

  /// Zero matrix of the given shape.
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  /// Matrix of the given shape filled with `value`.
  Matrix(std::size_t rows, std::size_t cols, double value)
      : rows_(rows), cols_(cols), data_(rows * cols, value) {}

  /// Construct from nested braces, e.g. Matrix{{1,2},{3,4}}.  All rows must
  /// have equal length.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  /// n-by-n identity.
  static Matrix identity(std::size_t n);
  /// Zero matrix (alias of the shape constructor, reads better at call sites).
  static Matrix zero(std::size_t rows, std::size_t cols);
  /// Diagonal matrix from a vector of diagonal entries.
  static Matrix diag(const Vector& d);
  /// Build a matrix from explicit rows.
  static Matrix from_rows(const std::vector<Vector>& rows);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  /// Checked element access.
  double& operator()(std::size_t r, std::size_t c);
  double operator()(std::size_t r, std::size_t c) const;

  /// Raw row-major storage (hot loops; bounds are the caller's problem).
  const double* data() const { return data_.data(); }
  double* data() { return data_.data(); }
  /// Pointer to the first element of row r (contiguous cols() doubles).
  const double* row_data(std::size_t r) const { return data_.data() + r * cols_; }
  double* row_data(std::size_t r) { return data_.data() + r * cols_; }

  /// Copy of row r as a Vector.
  Vector row(std::size_t r) const;
  /// Copy of column c as a Vector.
  Vector col(std::size_t c) const;
  /// Overwrite row r.
  void set_row(std::size_t r, const Vector& v);
  /// Overwrite column c.
  void set_col(std::size_t c, const Vector& v);

  /// In-place arithmetic; shapes must match.
  Matrix& operator+=(const Matrix& rhs);
  Matrix& operator-=(const Matrix& rhs);
  Matrix& operator*=(double s);

  /// Transposed copy.
  Matrix transposed() const;

  /// Max absolute entry (used for convergence tests on Riccati iterations).
  double norm_inf_elem() const;

  /// Frobenius norm.
  double norm_fro() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Matrix sum; shapes must match.
Matrix operator+(Matrix lhs, const Matrix& rhs);
/// Matrix difference; shapes must match.
Matrix operator-(Matrix lhs, const Matrix& rhs);
/// Scalar product.
Matrix operator*(double s, Matrix m);
/// Scalar product.
Matrix operator*(Matrix m, double s);
/// Matrix product; inner dimensions must match.
Matrix operator*(const Matrix& a, const Matrix& b);
/// Matrix-vector product; dimensions must match.
Vector operator*(const Matrix& a, const Vector& x);
/// Negation.
Matrix operator-(Matrix m);

/// a^T * x for a row extracted implicitly: y = x^T * A, returned as Vector.
Vector transpose_mul(const Matrix& a, const Vector& x);

/// Integer matrix power A^k (k >= 0); A must be square.
Matrix pow(const Matrix& a, unsigned k);

/// Approximate elementwise equality within tolerance.
bool approx_equal(const Matrix& a, const Matrix& b, double tol);

/// Horizontal concatenation [A | B]; row counts must match.
Matrix hcat(const Matrix& a, const Matrix& b);
/// Vertical concatenation [A ; B]; column counts must match.
Matrix vcat(const Matrix& a, const Matrix& b);

/// Stream in a human-readable multi-line form.
std::ostream& operator<<(std::ostream& os, const Matrix& m);

}  // namespace oic::linalg
