#include "linalg/lu.hpp"

#include <cmath>

#include "common/error.hpp"

namespace oic::linalg {

LU::LU(const Matrix& a, double pivot_tol) : n_(a.rows()), lu_(a), piv_(a.rows()) {
  OIC_REQUIRE(a.rows() == a.cols(), "LU: matrix must be square");
  for (std::size_t i = 0; i < n_; ++i) piv_[i] = i;

  for (std::size_t k = 0; k < n_; ++k) {
    // Partial pivoting: pick the largest magnitude entry in column k.
    std::size_t p = k;
    double best = std::fabs(lu_(k, k));
    for (std::size_t i = k + 1; i < n_; ++i) {
      const double v = std::fabs(lu_(i, k));
      if (v > best) {
        best = v;
        p = i;
      }
    }
    if (best < pivot_tol) {
      singular_ = true;
      continue;  // keep factoring the remaining columns for det() fidelity
    }
    if (p != k) {
      for (std::size_t c = 0; c < n_; ++c) std::swap(lu_(p, c), lu_(k, c));
      std::swap(piv_[p], piv_[k]);
      sign_ = -sign_;
    }
    for (std::size_t i = k + 1; i < n_; ++i) {
      lu_(i, k) /= lu_(k, k);
      const double m = lu_(i, k);
      if (m == 0.0) continue;
      for (std::size_t c = k + 1; c < n_; ++c) lu_(i, c) -= m * lu_(k, c);
    }
  }
}

double LU::det() const {
  double d = static_cast<double>(sign_);
  for (std::size_t i = 0; i < n_; ++i) d *= lu_(i, i);
  return d;
}

Vector LU::solve(const Vector& b) const {
  OIC_REQUIRE(b.size() == n_, "LU::solve: dimension mismatch");
  if (singular_) throw NumericalError("LU::solve: matrix is singular");
  // Apply permutation, then forward/back substitution.
  Vector y(n_);
  for (std::size_t i = 0; i < n_; ++i) y[i] = b[piv_[i]];
  for (std::size_t i = 0; i < n_; ++i)
    for (std::size_t j = 0; j < i; ++j) y[i] -= lu_(i, j) * y[j];
  for (std::size_t ii = n_; ii-- > 0;) {
    for (std::size_t j = ii + 1; j < n_; ++j) y[ii] -= lu_(ii, j) * y[j];
    y[ii] /= lu_(ii, ii);
  }
  return y;
}

Matrix LU::solve(const Matrix& b) const {
  OIC_REQUIRE(b.rows() == n_, "LU::solve: dimension mismatch");
  Matrix x(n_, b.cols());
  for (std::size_t c = 0; c < b.cols(); ++c) x.set_col(c, solve(b.col(c)));
  return x;
}

Matrix LU::inverse() const { return solve(Matrix::identity(n_)); }

Vector solve(const Matrix& a, const Vector& b) { return LU(a).solve(b); }

Matrix inverse(const Matrix& a) { return LU(a).inverse(); }

double det(const Matrix& a) { return LU(a).det(); }

}  // namespace oic::linalg
