#pragma once
/// \file vector.hpp
/// Dense real vector used throughout the library for states, inputs and
/// disturbances.  Sizes in this domain are tiny (n <= ~20), so the design
/// favours clarity and checked access over SIMD cleverness.

#include <cstddef>
#include <initializer_list>
#include <iosfwd>
#include <vector>

namespace oic::linalg {

/// Dense column vector of doubles with value semantics.
class Vector {
 public:
  /// Empty (dimension-0) vector.
  Vector() = default;

  /// Zero vector of dimension n.
  explicit Vector(std::size_t n) : data_(n, 0.0) {}

  /// Vector of dimension n filled with `value`.
  Vector(std::size_t n, double value) : data_(n, value) {}

  /// Construct from a braced list, e.g. Vector{1.0, 2.0}.
  Vector(std::initializer_list<double> xs) : data_(xs) {}

  /// Construct by copying a std::vector.
  explicit Vector(std::vector<double> xs) : data_(std::move(xs)) {}

  /// Dimension.
  std::size_t size() const { return data_.size(); }

  /// True when the dimension is zero.
  bool empty() const { return data_.empty(); }

  /// Checked element access.
  double& operator[](std::size_t i);
  double operator[](std::size_t i) const;

  /// Raw storage (for interop with the LP solver's dense rows).
  const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

  /// In-place arithmetic; dimensions must match.
  Vector& operator+=(const Vector& rhs);
  Vector& operator-=(const Vector& rhs);
  Vector& operator*=(double s);
  Vector& operator/=(double s);

  /// Euclidean norm.
  double norm2() const;
  /// 1-norm (the paper's actuation-energy measure, Sec. II).
  double norm1() const;
  /// Infinity norm.
  double norm_inf() const;

  /// Iteration support.
  auto begin() { return data_.begin(); }
  auto end() { return data_.end(); }
  auto begin() const { return data_.begin(); }
  auto end() const { return data_.end(); }

 private:
  std::vector<double> data_;
};

/// Elementwise sum; dimensions must match.
Vector operator+(Vector lhs, const Vector& rhs);
/// Elementwise difference; dimensions must match.
Vector operator-(Vector lhs, const Vector& rhs);
/// Scalar product.
Vector operator*(double s, Vector v);
/// Scalar product.
Vector operator*(Vector v, double s);
/// Scalar division.
Vector operator/(Vector v, double s);
/// Negation.
Vector operator-(Vector v);
/// Inner product; dimensions must match.
double dot(const Vector& a, const Vector& b);
/// Concatenate two vectors (used to build stacked LP variables and the DQN
/// state {x, w-history}).
Vector concat(const Vector& a, const Vector& b);
/// Approximate equality within absolute tolerance `tol` in every coordinate.
bool approx_equal(const Vector& a, const Vector& b, double tol);

/// Stream a vector as "[x0, x1, ...]".
std::ostream& operator<<(std::ostream& os, const Vector& v);

}  // namespace oic::linalg
