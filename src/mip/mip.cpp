#include "mip/mip.hpp"

#include <cmath>
#include <limits>
#include <queue>

#include "common/error.hpp"

namespace oic::mip {

void MipProblem::set_integer(std::size_t j, bool flag) {
  OIC_REQUIRE(j < integer_.size(), "MipProblem::set_integer: variable out of range");
  integer_[j] = flag;
}

void MipProblem::set_binary(std::size_t j) {
  OIC_REQUIRE(j < integer_.size(), "MipProblem::set_binary: variable out of range");
  integer_[j] = true;
  lp_.set_bounds(j, 0.0, 1.0);
}

bool MipProblem::is_integer(std::size_t j) const {
  OIC_REQUIRE(j < integer_.size(), "MipProblem::is_integer: variable out of range");
  return integer_[j];
}

const char* to_string(MipStatus s) {
  switch (s) {
    case MipStatus::kOptimal:
      return "optimal";
    case MipStatus::kInfeasible:
      return "infeasible";
    case MipStatus::kUnbounded:
      return "unbounded";
    case MipStatus::kNodeLimit:
      return "node-limit";
  }
  return "unknown";
}

namespace {

/// A branch node: extra variable-bound overrides on top of the root LP.
struct Node {
  std::vector<std::pair<std::size_t, std::pair<double, double>>> bounds;
  double lp_bound;  // objective of the parent relaxation (lower bound)
};

struct NodeOrder {
  bool operator()(const Node& a, const Node& b) const {
    return a.lp_bound > b.lp_bound;  // best-first: smallest bound on top
  }
};

/// Find the integer-marked variable whose relaxation value is farthest from
/// integral; returns num_vars when the point is integral within tol.
std::size_t most_fractional(const MipProblem& p, const linalg::Vector& x,
                            double int_tol) {
  std::size_t best = p.num_vars();
  double best_frac = int_tol;
  for (std::size_t j = 0; j < p.num_vars(); ++j) {
    if (!p.is_integer(j)) continue;
    const double f = x[j] - std::floor(x[j]);
    const double dist = std::min(f, 1.0 - f);
    if (dist > best_frac) {
      best_frac = dist;
      best = j;
    }
  }
  return best;
}

}  // namespace

MipResult solve(const MipProblem& problem, const MipOptions& opt) {
  MipResult out;

  // Root relaxation.
  {
    const lp::Result root = lp::solve(problem.lp(), opt.lp_options);
    if (root.status == lp::Status::kInfeasible) {
      out.status = MipStatus::kInfeasible;
      return out;
    }
    if (root.status == lp::Status::kUnbounded) {
      out.status = MipStatus::kUnbounded;
      return out;
    }
    OIC_CHECK(root.status == lp::Status::kOptimal, "mip: root LP did not solve");
  }

  std::priority_queue<Node, std::vector<Node>, NodeOrder> open;
  open.push(Node{{}, -std::numeric_limits<double>::infinity()});

  double incumbent_obj = std::numeric_limits<double>::infinity();
  linalg::Vector incumbent_x;
  bool have_incumbent = false;

  while (!open.empty()) {
    if (out.nodes_explored >= opt.max_nodes) {
      out.status = MipStatus::kNodeLimit;
      out.has_incumbent = have_incumbent;
      if (have_incumbent) {
        out.objective = incumbent_obj;
        out.x = incumbent_x;
      }
      return out;
    }
    Node node = open.top();
    open.pop();
    if (node.lp_bound >= incumbent_obj - opt.gap_tol) continue;  // pruned

    ++out.nodes_explored;

    // Build the node LP: root problem plus bound overrides.
    lp::Problem node_lp = problem.lp();
    bool empty_domain = false;
    for (const auto& [j, lohl] : node.bounds) {
      const double lo = std::max(node_lp.lower(j), lohl.first);
      const double hi = std::min(node_lp.upper(j), lohl.second);
      if (lo > hi) {
        empty_domain = true;
        break;
      }
      node_lp.set_bounds(j, lo, hi);
    }
    if (empty_domain) continue;

    const lp::Result rel = lp::solve(node_lp, opt.lp_options);
    if (rel.status == lp::Status::kInfeasible) continue;
    if (rel.status == lp::Status::kUnbounded) {
      // An unbounded node with bounded binaries means the continuous part is
      // unbounded; report conservatively.
      out.status = MipStatus::kUnbounded;
      return out;
    }
    OIC_CHECK(rel.status == lp::Status::kOptimal, "mip: node LP did not solve");
    if (rel.objective >= incumbent_obj - opt.gap_tol) continue;  // bound prune

    const std::size_t frac = most_fractional(problem, rel.x, opt.int_tol);
    if (frac == problem.num_vars()) {
      // Integral: new incumbent (round to kill numerical fuzz).
      linalg::Vector xi = rel.x;
      for (std::size_t j = 0; j < problem.num_vars(); ++j) {
        if (problem.is_integer(j)) xi[j] = std::round(xi[j]);
      }
      incumbent_obj = rel.objective;
      incumbent_x = std::move(xi);
      have_incumbent = true;
      continue;
    }

    // Branch.
    const double v = rel.x[frac];
    Node down = node;
    down.lp_bound = rel.objective;
    down.bounds.emplace_back(frac,
                             std::make_pair(-std::numeric_limits<double>::infinity(),
                                            std::floor(v)));
    Node up = node;
    up.lp_bound = rel.objective;
    up.bounds.emplace_back(
        frac, std::make_pair(std::ceil(v), std::numeric_limits<double>::infinity()));
    open.push(std::move(down));
    open.push(std::move(up));
  }

  if (have_incumbent) {
    out.status = MipStatus::kOptimal;
    out.has_incumbent = true;
    out.objective = incumbent_obj;
    out.x = incumbent_x;
  } else {
    out.status = MipStatus::kInfeasible;
  }
  return out;
}

}  // namespace oic::mip
