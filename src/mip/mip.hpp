#pragma once
/// \file mip.hpp
/// Mixed-integer linear programming by LP-based branch & bound.
///
/// The paper's model-based skipping decision (Equation 6) is a MIP over
/// binary skip variables z(k|t).  This solver is the general-purpose engine
/// for that formulation; core/model_based.hpp also offers a specialized
/// exact search that exploits the fact that fixing z determines the whole
/// trajectory (ablated against this solver in bench_ablation_horizon).

#include <cstddef>
#include <vector>

#include "linalg/vector.hpp"
#include "lp/problem.hpp"
#include "lp/simplex.hpp"

namespace oic::mip {

/// A mixed-integer LP: an lp::Problem plus integrality marks.
class MipProblem {
 public:
  /// Create a problem with `num_vars` variables, all continuous and free.
  explicit MipProblem(std::size_t num_vars) : lp_(num_vars), integer_(num_vars, false) {}

  /// Access the underlying LP model (objective, constraints, bounds).
  lp::Problem& lp() { return lp_; }
  const lp::Problem& lp() const { return lp_; }

  /// Mark variable j as integer-valued.
  void set_integer(std::size_t j, bool flag = true);

  /// Mark variable j as binary: integer with bounds [0, 1].
  void set_binary(std::size_t j);

  /// True when variable j must take an integer value.
  bool is_integer(std::size_t j) const;

  /// Number of variables.
  std::size_t num_vars() const { return integer_.size(); }

 private:
  lp::Problem lp_;
  std::vector<bool> integer_;
};

/// Branch & bound outcome.
enum class MipStatus {
  kOptimal,    ///< proven optimal integer solution
  kInfeasible, ///< no integer-feasible point exists
  kUnbounded,  ///< LP relaxation unbounded (reported conservatively)
  kNodeLimit,  ///< node budget exhausted; best incumbent (if any) returned
};

/// Human-readable status name.
const char* to_string(MipStatus s);

/// Solver knobs.
struct MipOptions {
  double int_tol = 1e-6;        ///< how close to integral counts as integral
  double gap_tol = 1e-9;        ///< absolute optimality gap for pruning
  std::size_t max_nodes = 200000;
  lp::SimplexOptions lp_options = {};
};

/// Solution report.
struct MipResult {
  MipStatus status = MipStatus::kNodeLimit;
  bool has_incumbent = false;   ///< true when x/objective hold a feasible point
  double objective = 0.0;
  linalg::Vector x;
  std::size_t nodes_explored = 0;
};

/// Solve the MIP (minimization) by best-first branch & bound with
/// most-fractional branching.  Deterministic for a fixed problem.
MipResult solve(const MipProblem& problem, const MipOptions& options = {});

}  // namespace oic::mip
