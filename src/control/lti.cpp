#include "control/lti.hpp"

#include "common/error.hpp"
#include "linalg/lu.hpp"
#include "poly/ops.hpp"

namespace oic::control {

using linalg::Matrix;
using linalg::Vector;
using poly::HPolytope;

AffineLTI::AffineLTI(Matrix a, Matrix b, Matrix e, Vector c, HPolytope x_set,
                     HPolytope u_set, HPolytope w_set)
    : a_(std::move(a)),
      b_(std::move(b)),
      e_(std::move(e)),
      c_(std::move(c)),
      x_set_(std::move(x_set)),
      u_set_(std::move(u_set)),
      w_set_(std::move(w_set)) {
  OIC_REQUIRE(a_.rows() == a_.cols(), "AffineLTI: A must be square");
  OIC_REQUIRE(b_.rows() == a_.rows(), "AffineLTI: B row count must match A");
  OIC_REQUIRE(e_.rows() == a_.rows(), "AffineLTI: E row count must match A");
  OIC_REQUIRE(c_.size() == a_.rows(), "AffineLTI: c dimension must match A");
  OIC_REQUIRE(x_set_.dim() == nx(), "AffineLTI: X dimension mismatch");
  OIC_REQUIRE(u_set_.dim() == nu(), "AffineLTI: U dimension mismatch");
  OIC_REQUIRE(w_set_.dim() == nw(), "AffineLTI: W dimension mismatch");
}

AffineLTI AffineLTI::canonical(Matrix a, Matrix b, HPolytope x_set, HPolytope u_set,
                               HPolytope w_set) {
  const std::size_t n = a.rows();
  return AffineLTI(std::move(a), std::move(b), Matrix::identity(n), Vector(n),
                   std::move(x_set), std::move(u_set), std::move(w_set));
}

Vector AffineLTI::step(const Vector& x, const Vector& u, const Vector& w) const {
  OIC_REQUIRE(x.size() == nx(), "AffineLTI::step: state dimension mismatch");
  OIC_REQUIRE(u.size() == nu(), "AffineLTI::step: input dimension mismatch");
  OIC_REQUIRE(w.size() == nw(), "AffineLTI::step: disturbance dimension mismatch");
  return a_ * x + b_ * u + e_ * w + c_;
}

Vector AffineLTI::step_nominal(const Vector& x, const Vector& u) const {
  OIC_REQUIRE(x.size() == nx(), "AffineLTI::step_nominal: state dimension mismatch");
  OIC_REQUIRE(u.size() == nu(), "AffineLTI::step_nominal: input dimension mismatch");
  return a_ * x + b_ * u + c_;
}

HPolytope AffineLTI::disturbance_in_state_space() const {
  // E W as a polytope in R^nx.  For square invertible E the image is exact;
  // otherwise project the graph (handles rectangular / singular E).
  if (e_.rows() == e_.cols()) {
    const linalg::LU lu(e_);
    if (!lu.singular()) {
      return w_set_.affine_image_invertible(e_, Vector(nx()));
    }
  }
  return poly::affine_image_projection(w_set_, e_, Vector(nx()));
}

}  // namespace oic::control
