#include "control/lti.hpp"

#include "common/error.hpp"
#include "linalg/lu.hpp"
#include "poly/ops.hpp"

namespace oic::control {

using linalg::Matrix;
using linalg::Vector;
using poly::HPolytope;

AffineLTI::AffineLTI(Matrix a, Matrix b, Matrix e, Vector c, HPolytope x_set,
                     HPolytope u_set, HPolytope w_set)
    : a_(std::move(a)),
      b_(std::move(b)),
      e_(std::move(e)),
      c_(std::move(c)),
      x_set_(std::move(x_set)),
      u_set_(std::move(u_set)),
      w_set_(std::move(w_set)) {
  OIC_REQUIRE(a_.rows() == a_.cols(), "AffineLTI: A must be square");
  OIC_REQUIRE(b_.rows() == a_.rows(), "AffineLTI: B row count must match A");
  OIC_REQUIRE(e_.rows() == a_.rows(), "AffineLTI: E row count must match A");
  OIC_REQUIRE(c_.size() == a_.rows(), "AffineLTI: c dimension must match A");
  OIC_REQUIRE(x_set_.dim() == nx(), "AffineLTI: X dimension mismatch");
  OIC_REQUIRE(u_set_.dim() == nu(), "AffineLTI: U dimension mismatch");
  OIC_REQUIRE(w_set_.dim() == nw(), "AffineLTI: W dimension mismatch");
}

AffineLTI AffineLTI::canonical(Matrix a, Matrix b, HPolytope x_set, HPolytope u_set,
                               HPolytope w_set) {
  const std::size_t n = a.rows();
  return AffineLTI(std::move(a), std::move(b), Matrix::identity(n), Vector(n),
                   std::move(x_set), std::move(u_set), std::move(w_set));
}

Vector AffineLTI::step(const Vector& x, const Vector& u, const Vector& w) const {
  OIC_REQUIRE(x.size() == nx(), "AffineLTI::step: state dimension mismatch");
  OIC_REQUIRE(u.size() == nu(), "AffineLTI::step: input dimension mismatch");
  OIC_REQUIRE(w.size() == nw(), "AffineLTI::step: disturbance dimension mismatch");
  return a_ * x + b_ * u + e_ * w + c_;
}

void AffineLTI::step_into(const Vector& x, const Vector& u, const Vector& w,
                          Vector& out) const {
  OIC_REQUIRE(x.size() == nx(), "AffineLTI::step_into: state dimension mismatch");
  OIC_REQUIRE(u.size() == nu(), "AffineLTI::step_into: input dimension mismatch");
  OIC_REQUIRE(w.size() == nw(), "AffineLTI::step_into: disturbance dimension mismatch");
  OIC_REQUIRE(&out != &x && &out != &u && &out != &w,
              "AffineLTI::step_into: out must not alias an input (row i reads "
              "entries the loop has already overwritten)");
  out.data().resize(nx());
  const double* xp = x.data().data();
  const double* up = u.data().data();
  const double* wp = w.data().data();
  // Same per-row grouping as step()'s ((A x + B u) + E w) + c.
  for (std::size_t i = 0; i < nx(); ++i) {
    double ax = 0.0, bu = 0.0, ew = 0.0;
    const double* ar = a_.row_data(i);
    for (std::size_t j = 0; j < nx(); ++j) ax += ar[j] * xp[j];
    const double* br = b_.row_data(i);
    for (std::size_t j = 0; j < nu(); ++j) bu += br[j] * up[j];
    const double* er = e_.row_data(i);
    for (std::size_t j = 0; j < nw(); ++j) ew += er[j] * wp[j];
    out[i] = ((ax + bu) + ew) + c_[i];
  }
}

Vector AffineLTI::step_nominal(const Vector& x, const Vector& u) const {
  OIC_REQUIRE(x.size() == nx(), "AffineLTI::step_nominal: state dimension mismatch");
  OIC_REQUIRE(u.size() == nu(), "AffineLTI::step_nominal: input dimension mismatch");
  return a_ * x + b_ * u + c_;
}

HPolytope AffineLTI::disturbance_in_state_space() const {
  // E W as a polytope in R^nx.  For square invertible E the image is exact;
  // otherwise project the graph (handles rectangular / singular E).
  if (e_.rows() == e_.cols()) {
    const linalg::LU lu(e_);
    if (!lu.singular()) {
      return w_set_.affine_image_invertible(e_, Vector(nx()));
    }
  }
  return poly::affine_image_projection(w_set_, e_, Vector(nx()));
}

}  // namespace oic::control
