#pragma once
/// \file invariant.hpp
/// Robust invariant-set computations (Sec. III-A of the paper):
///
///  * mrpi_outer      -- the Rakovic et al. outer approximation of the
///                       minimal robust positively invariant set
///                       alpha-scaled sum  W (+) A_K W (+) ... (+) A_K^{n-1} W,
///                       used when kappa is linear feedback;
///  * maximal_rpi     -- the maximal robust positively invariant subset of a
///                       constraint polytope under autonomous dynamics,
///                       used for MPC terminal sets;
///  * maximal_robust_control_invariant -- the maximal robust control
///                       invariant subset of X under a *given* feedback law,
///                       the fixed point of the Pre-iteration.

#include <cstddef>
#include <vector>

#include "control/lti.hpp"
#include "poly/hpolytope.hpp"

namespace oic::control {

/// Options for the mRPI outer approximation.
struct MrpiOptions {
  /// Contraction target: the order n is raised until A_K^n W is inside
  /// alpha * W (support-function check).  Smaller alpha => tighter set but
  /// higher order.
  double alpha = 0.05;
  /// Hard cap on the sum order.
  std::size_t max_order = 60;
  /// Template directions for materializing the set; empty selects a default
  /// (uniform for 2-D, box+diagonals otherwise).
  std::vector<linalg::Vector> directions;
};

/// Result of the mRPI computation.
struct MrpiResult {
  poly::HPolytope set;   ///< outer approximation, scaled by 1/(1-alpha)
  std::size_t order = 0; ///< number of Minkowski terms used
  double alpha = 0.0;    ///< achieved contraction factor bound
};

/// Outer approximation of the minimal RPI set of  x+ = A_cl x + d,
/// d in D (Rakovic et al. 2005; the formula quoted in Sec. III-A).
/// A_cl must be strictly stable or the order cap will be hit
/// (NumericalError).
MrpiResult mrpi_outer(const linalg::Matrix& a_cl, const poly::HPolytope& d,
                      const MrpiOptions& options = {});

/// Options for the maximal-RPI fixed-point iterations.
struct InvariantOptions {
  std::size_t max_iterations = 100;
  double tol = 1e-7;   ///< set-equality tolerance declaring the fixed point
  bool prune = true;   ///< remove redundant rows each sweep
};

/// Result of a fixed-point invariant computation.
struct InvariantResult {
  poly::HPolytope set;
  bool converged = false;
  std::size_t iterations = 0;
};

/// Maximal robust positively invariant subset of `constraint` for the
/// autonomous affine dynamics  x+ = A_cl x + c + d,  d in D:
///   Omega_0 = constraint,  Omega_{i+1} = Omega_i  intersect  Pre(Omega_i),
/// with Pre(S) = { x | A_cl x + c + d in S for all d in D }.
InvariantResult maximal_rpi(const linalg::Matrix& a_cl, const linalg::Vector& c,
                            const poly::HPolytope& d, const poly::HPolytope& constraint,
                            const InvariantOptions& options = {});

/// Maximal robust control invariant subset of X under the *fixed* feedback
/// law u = K x + k0 (Definition 1 instantiated with kappa = linear
/// feedback):  states from which the closed loop respects X and U forever,
/// for every disturbance.  Input admissibility K x + k0 in U is enforced as
/// part of the constraint polytope.
InvariantResult maximal_robust_control_invariant(const AffineLTI& sys,
                                                 const linalg::Matrix& k,
                                                 const linalg::Vector& k0,
                                                 const InvariantOptions& options = {});

/// Check Definition 1 directly on a candidate set: for each vertex-direction
/// sample... (exact check): XI is robust invariant under u = Kx + k0 iff
///   (A + BK) XI + (B k0 + c) (+) E W  is contained in  XI,
/// verified via support functions.  Used by tests and by callers that build
/// XI by other means.
bool is_robust_invariant(const AffineLTI& sys, const linalg::Matrix& k,
                         const linalg::Vector& k0, const poly::HPolytope& xi,
                         double tol = 1e-6);

}  // namespace oic::control
