#pragma once
/// \file lti.hpp
/// The plant model of the paper (Sec. II):
///   x(t+1) = A x(t) + B u(t) + E w(t) + c,   x in X, u in U, w in W,
/// with X, U, W polytopes.  The affine term c and the disturbance input
/// matrix E generalize Equation (1) just enough to express case studies in
/// their natural (unshifted) coordinates; set E = I and c = 0 to recover
/// the paper's exact form.

#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"
#include "poly/hpolytope.hpp"

namespace oic::control {

/// Discrete-time affine LTI system with polytopic constraint sets.
class AffineLTI {
 public:
  /// Construct with full generality.  Dimensions are validated:
  /// A: nx-by-nx, B: nx-by-nu, E: nx-by-nw, c: nx,
  /// X in R^nx, U in R^nu, W in R^nw.
  AffineLTI(linalg::Matrix a, linalg::Matrix b, linalg::Matrix e, linalg::Vector c,
            poly::HPolytope x_set, poly::HPolytope u_set, poly::HPolytope w_set);

  /// Convenience: the paper's Equation (1) exactly (E = I, c = 0).
  static AffineLTI canonical(linalg::Matrix a, linalg::Matrix b, poly::HPolytope x_set,
                             poly::HPolytope u_set, poly::HPolytope w_set);

  std::size_t nx() const { return a_.rows(); }
  std::size_t nu() const { return b_.cols(); }
  std::size_t nw() const { return e_.cols(); }

  const linalg::Matrix& a() const { return a_; }
  const linalg::Matrix& b() const { return b_; }
  const linalg::Matrix& e() const { return e_; }
  const linalg::Vector& c() const { return c_; }

  /// State constraint polytope X (the paper's original safe set).
  const poly::HPolytope& x_set() const { return x_set_; }
  /// Input constraint polytope U.
  const poly::HPolytope& u_set() const { return u_set_; }
  /// Disturbance polytope W.
  const poly::HPolytope& w_set() const { return w_set_; }

  /// One exact step of the dynamics.
  linalg::Vector step(const linalg::Vector& x, const linalg::Vector& u,
                      const linalg::Vector& w) const;

  /// One exact step into a caller-owned vector (allocation-free once `out`
  /// is warm); bit-identical to step().
  void step_into(const linalg::Vector& x, const linalg::Vector& u,
                 const linalg::Vector& w, linalg::Vector& out) const;

  /// Nominal step (w = 0).
  linalg::Vector step_nominal(const linalg::Vector& x, const linalg::Vector& u) const;

  /// The disturbance set mapped into state space, E W, materialized as a
  /// polytope (exact for invertible E; template-based outer approximation
  /// otherwise -- exact in all library use cases where E selects coordinates).
  poly::HPolytope disturbance_in_state_space() const;

 private:
  linalg::Matrix a_, b_, e_;
  linalg::Vector c_;
  poly::HPolytope x_set_, u_set_, w_set_;
};

}  // namespace oic::control
