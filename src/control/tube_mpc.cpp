#include "control/tube_mpc.hpp"

#include "common/error.hpp"
#include "control/reach.hpp"
#include "lp/simplex.hpp"
#include "poly/ops.hpp"

namespace oic::control {

using linalg::Matrix;
using linalg::Vector;
using poly::HPolytope;

TubeMpc::TubeMpc(AffineLTI sys, Matrix k_local, RmpcConfig config)
    : sys_(std::move(sys)), k_local_(std::move(k_local)), config_(config) {
  OIC_REQUIRE(config_.horizon >= 1, "TubeMpc: horizon must be at least 1");
  OIC_REQUIRE(k_local_.rows() == sys_.nu() && k_local_.cols() == sys_.nx(),
              "TubeMpc: local gain shape mismatch");

  const std::size_t n = config_.horizon;
  const HPolytope d = sys_.disturbance_in_state_space();
  const Matrix m_tighten =
      config_.closed_loop_tightening ? sys_.a() + sys_.b() * k_local_ : sys_.a();

  // X(0) = X;  X(k) = X(k-1) (-) M^{k-1} D.
  tightened_.clear();
  tightened_.push_back(sys_.x_set().remove_redundancy());
  Matrix mpow = Matrix::identity(sys_.nx());  // M^{k-1} for k = 1 is I
  for (std::size_t k = 1; k <= n; ++k) {
    // Materialize M^{k-1} D.
    const HPolytope dk = [&]() {
      if (sys_.nx() == 2) {
        const auto verts = d.vertices_2d();
        OIC_CHECK(!verts.empty(), "TubeMpc: disturbance set has no vertices");
        std::vector<Vector> imgs;
        imgs.reserve(verts.size());
        for (const auto& v : verts) imgs.push_back(mpow * v);
        return HPolytope::from_vertices_2d(imgs);
      }
      return poly::affine_image_projection(d, mpow, Vector(sys_.nx()));
    }();
    HPolytope next = tightened_.back().pontryagin_diff(dk).remove_redundancy();
    OIC_REQUIRE(!next.is_empty(),
                "TubeMpc: constraint tightening emptied X(k); disturbance too large "
                "for this horizon");
    tightened_.push_back(std::move(next));
    mpow = mpow * m_tighten;
  }

  // Terminal set: maximal RPI of the nominal closed loop x+ = (A+BK)x + c
  // under the residual disturbance M^N D, inside the most-tightened state
  // set intersected with input admissibility { x | K x in U }.
  const Matrix a_cl = sys_.a() + sys_.b() * k_local_;
  const HPolytope d_residual = [&]() {
    if (sys_.nx() == 2) {
      const auto verts = d.vertices_2d();
      std::vector<Vector> imgs;
      imgs.reserve(verts.size());
      for (const auto& v : verts) imgs.push_back(mpow * v);  // mpow == M^N here
      return HPolytope::from_vertices_2d(imgs);
    }
    return poly::affine_image_projection(d, mpow, Vector(sys_.nx()));
  }();
  const HPolytope input_ok = sys_.u_set().affine_preimage(k_local_, Vector(sys_.nu()));
  const HPolytope constraint = tightened_.back().intersect(input_ok);
  const InvariantResult terminal =
      maximal_rpi(a_cl, sys_.c(), d_residual, constraint, config_.terminal_options);
  OIC_REQUIRE(terminal.converged, "TubeMpc: terminal-set iteration did not converge");
  OIC_REQUIRE(!terminal.set.is_empty(),
              "TubeMpc: terminal set is empty; loosen constraints or shorten horizon");
  terminal_ = terminal.set;
}

TubeMpc::TubeMpc(AffineLTI sys, Matrix k_local, RmpcConfig config,
                 std::vector<HPolytope> tightened, HPolytope terminal)
    : sys_(std::move(sys)),
      k_local_(std::move(k_local)),
      config_(config),
      tightened_(std::move(tightened)),
      terminal_(std::move(terminal)) {
  OIC_REQUIRE(config_.horizon >= 1, "TubeMpc: horizon must be at least 1");
  OIC_REQUIRE(k_local_.rows() == sys_.nu() && k_local_.cols() == sys_.nx(),
              "TubeMpc: local gain shape mismatch");
  OIC_REQUIRE(tightened_.size() == config_.horizon + 1,
              "TubeMpc: need one tightened set per step X(0)..X(N)");
  for (const auto& t : tightened_) {
    OIC_REQUIRE(t.dim() == sys_.nx(), "TubeMpc: tightened-set dimension mismatch");
  }
  OIC_REQUIRE(terminal_.dim() == sys_.nx() && !terminal_.is_empty(),
              "TubeMpc: terminal set must be a non-empty state-space polytope");
}

TubeMpc::TubeMpc(const TubeMpc& other)
    : Controller(other),
      sys_(other.sys_),
      k_local_(other.k_local_),
      config_(other.config_),
      tightened_(other.tightened_),
      terminal_(other.terminal_),
      last_(other.last_) {
  // prepared_/ws_ are per-instance solver state; rebuilt lazily.
}

TubeMpc& TubeMpc::operator=(const TubeMpc& other) {
  if (this == &other) return *this;
  Controller::operator=(other);
  sys_ = other.sys_;
  k_local_ = other.k_local_;
  config_ = other.config_;
  tightened_ = other.tightened_;
  terminal_ = other.terminal_;
  last_ = other.last_;
  prepared_.reset();
  ws_ = lp::SolverWorkspace{};
  warm_ = lp::PreparedProblem::WarmState{};
  return *this;
}

void TubeMpc::reset_solver() { warm_.valid = false; }

const HPolytope& TubeMpc::tightened(std::size_t k) const {
  OIC_REQUIRE(k < tightened_.size(), "TubeMpc::tightened: index out of range");
  return tightened_[k];
}

TubeMpc::LpLayout TubeMpc::make_layout(bool with_objective) const {
  const std::size_t nx = sys_.nx();
  const std::size_t nu = sys_.nu();
  const std::size_t n = config_.horizon;
  // Variable blocks: states x(0..N), inputs u(0..N-1), then (only when the
  // objective is wanted) auxiliaries tx(0..N-1) >= |x| and tu(0..N-1) >= |u|.
  LpLayout layout;
  layout.x0 = 0;
  layout.u0 = nx * (n + 1);
  layout.tx0 = layout.u0 + nu * n;
  layout.tu0 = layout.tx0 + (with_objective ? nx * n : 0);
  layout.total = layout.tu0 + (with_objective ? nu * n : 0);
  return layout;
}

lp::Problem TubeMpc::build_lp(const Vector& x0, bool with_objective,
                              LpLayout& layout) const {
  const std::size_t nx = sys_.nx();
  const std::size_t nu = sys_.nu();
  const std::size_t n = config_.horizon;

  layout = make_layout(with_objective);

  lp::Problem p(layout.total);
  auto xv = [&](std::size_t k, std::size_t i) { return layout.x0 + k * nx + i; };
  auto uv = [&](std::size_t k, std::size_t i) { return layout.u0 + k * nu + i; };
  auto txv = [&](std::size_t k, std::size_t i) { return layout.tx0 + k * nx + i; };
  auto tuv = [&](std::size_t k, std::size_t i) { return layout.tu0 + k * nu + i; };

  if (with_objective) {
    for (std::size_t k = 0; k < n; ++k) {
      for (std::size_t i = 0; i < nx; ++i) {
        p.set_objective_coeff(txv(k, i), config_.state_weight);
        p.set_bounds(txv(k, i), 0.0, lp::Problem::kInf);
      }
      for (std::size_t i = 0; i < nu; ++i) {
        p.set_objective_coeff(tuv(k, i), config_.input_weight);
        p.set_bounds(tuv(k, i), 0.0, lp::Problem::kInf);
      }
    }
  }

  auto dense_row = [&](std::initializer_list<std::pair<std::size_t, double>> entries) {
    Vector row(layout.total);
    for (const auto& [idx, val] : entries) row[idx] = val;
    return row;
  };

  // x(0) = x0.
  for (std::size_t i = 0; i < nx; ++i) {
    p.add_constraint(dense_row({{xv(0, i), 1.0}}), lp::Relation::kEqual, x0[i]);
  }

  // Nominal dynamics x(k+1) = A x(k) + B u(k) + c.
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t i = 0; i < nx; ++i) {
      Vector row(layout.total);
      row[xv(k + 1, i)] = 1.0;
      for (std::size_t j = 0; j < nx; ++j) row[xv(k, j)] -= sys_.a()(i, j);
      for (std::size_t j = 0; j < nu; ++j) row[uv(k, j)] -= sys_.b()(i, j);
      p.add_constraint(row, lp::Relation::kEqual, sys_.c()[i]);
    }
  }

  // Tightened state constraints x(k) in X(k) for 1 <= k <= N-1 (k = 0 is
  // pinned by the equality; k = N is covered by the terminal set, which was
  // built inside X(N)).  Including k = 0 rows would only re-test x0.
  for (std::size_t k = 1; k < n; ++k) {
    const HPolytope& xk = tightened_[k];
    for (std::size_t r = 0; r < xk.num_constraints(); ++r) {
      Vector row(layout.total);
      for (std::size_t j = 0; j < nx; ++j) row[xv(k, j)] = xk.a()(r, j);
      p.add_constraint(row, lp::Relation::kLessEq, xk.b()[r]);
    }
  }

  // Terminal constraint x(N) in X_t.
  for (std::size_t r = 0; r < terminal_.num_constraints(); ++r) {
    Vector row(layout.total);
    for (std::size_t j = 0; j < nx; ++j) row[xv(n, j)] = terminal_.a()(r, j);
    p.add_constraint(row, lp::Relation::kLessEq, terminal_.b()[r]);
  }

  // Input constraints u(k) in U.
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t r = 0; r < sys_.u_set().num_constraints(); ++r) {
      Vector row(layout.total);
      for (std::size_t j = 0; j < nu; ++j) row[uv(k, j)] = sys_.u_set().a()(r, j);
      p.add_constraint(row, lp::Relation::kLessEq, sys_.u_set().b()[r]);
    }
  }

  // 1-norm epigraph rows: tx >= x, tx >= -x (and likewise for u).
  if (with_objective) {
    for (std::size_t k = 0; k < n; ++k) {
      for (std::size_t i = 0; i < nx; ++i) {
        p.add_constraint(dense_row({{xv(k, i), 1.0}, {txv(k, i), -1.0}}),
                         lp::Relation::kLessEq, 0.0);
        p.add_constraint(dense_row({{xv(k, i), -1.0}, {txv(k, i), -1.0}}),
                         lp::Relation::kLessEq, 0.0);
      }
      for (std::size_t i = 0; i < nu; ++i) {
        p.add_constraint(dense_row({{uv(k, i), 1.0}, {tuv(k, i), -1.0}}),
                         lp::Relation::kLessEq, 0.0);
        p.add_constraint(dense_row({{uv(k, i), -1.0}, {tuv(k, i), -1.0}}),
                         lp::Relation::kLessEq, 0.0);
      }
    }
  }
  return p;
}

Vector TubeMpc::control(const Vector& x) {
  OIC_REQUIRE(x.size() == sys_.nx(), "TubeMpc::control: state dimension mismatch");
  count_invocation();

  // The LP structure is state-independent: x enters Equation (5) only via
  // the x(0) = x equality right-hand sides (the first nx constraint rows of
  // build_lp).  With reuse_lp the standard-form tableau is prepared once and
  // each step patches those nx values and re-solves through the workspace.
  // The cold re-solve is bit-identical to rebuilding the Problem from
  // scratch; with warm_start the dual-simplex continuation returns the same
  // optimal value but may pick a different argmin where the optimum is
  // non-unique (see RmpcConfig::warm_start).
  LpLayout layout = make_layout(/*with_objective=*/true);
  lp::Result r;
  if (config_.reuse_lp) {
    if (!prepared_) {
      // Build from the CANONICAL zero-state template, not from x: the x(0)
      // equality rows enter the LP only through their right-hand sides (the
      // structure is state-independent), and a state-independent template
      // lets set_hot_rows capture one canonical warm-start seed shared by
      // every copy of this controller -- which keeps parallel-worker
      // episode schedules bit-identical to serial (see lp/prepared.hpp).
      const lp::Problem p = build_lp(Vector(sys_.nx()), /*with_objective=*/true, layout);
      prepared_ = std::make_unique<lp::PreparedProblem>(p);
      std::vector<std::size_t> x0_rows(sys_.nx());
      for (std::size_t i = 0; i < sys_.nx(); ++i) x0_rows[i] = i;
      prepared_->set_hot_rows(x0_rows);
    }
    for (std::size_t i = 0; i < sys_.nx(); ++i) prepared_->set_rhs(i, x[i]);
    r = config_.warm_start ? prepared_->solve_warm(ws_, warm_) : prepared_->solve(ws_);
  } else {
    const lp::Problem p = build_lp(x, /*with_objective=*/true, layout);
    r = lp::solve(p);
  }
  if (r.status == lp::Status::kInfeasible) {
    throw NumericalError("TubeMpc::control: optimization infeasible at this state");
  }
  OIC_CHECK(r.status == lp::Status::kOptimal, "TubeMpc::control: unexpected LP status");

  const std::size_t nx = sys_.nx();
  const std::size_t nu = sys_.nu();
  const std::size_t n = config_.horizon;
  last_.cost = r.objective;
  // Overwrite the previous plan in place: at serve throughput control()
  // runs tens of thousands of times per second and reallocating ~2N small
  // vectors per solve is measurable against the solve itself.
  if (last_.planned_x.size() != n + 1) last_.planned_x.assign(n + 1, Vector(nx));
  if (last_.planned_u.size() != n) last_.planned_u.assign(n, Vector(nu));
  for (std::size_t k = 0; k <= n; ++k) {
    Vector& xs = last_.planned_x[k];
    if (xs.size() != nx) xs = Vector(nx);
    for (std::size_t i = 0; i < nx; ++i) xs[i] = r.x[layout.x0 + k * nx + i];
  }
  for (std::size_t k = 0; k < n; ++k) {
    Vector& us = last_.planned_u[k];
    if (us.size() != nu) us = Vector(nu);
    for (std::size_t i = 0; i < nu; ++i) us[i] = r.x[layout.u0 + k * nu + i];
  }
  return last_.planned_u.front();
}

bool TubeMpc::feasible(const Vector& x) const {
  OIC_REQUIRE(x.size() == sys_.nx(), "TubeMpc::feasible: state dimension mismatch");
  LpLayout layout;
  const lp::Problem p = build_lp(x, /*with_objective=*/false, layout);
  return lp::solve(p).status != lp::Status::kInfeasible;
}

HPolytope TubeMpc::compute_feasible_set() const {
  // Backward controllability recursion over the nominal dynamics:
  //   C_0 = X_t,   C_{j+1} = { x in X(N-j-1) | exists u in U : A x + B u + c in C_j }.
  // C_N is the feasible region X_F of Equation (5), and by Prop. 1 the
  // robust control invariant set of this controller.
  HPolytope c = terminal_;
  const std::size_t n = config_.horizon;
  for (std::size_t j = 0; j < n; ++j) {
    const HPolytope& xk = tightened_[n - j - 1];
    c = pre_exists_input_nominal(sys_, c, xk, sys_.u_set());
  }
  return c.remove_redundancy();
}

}  // namespace oic::control
