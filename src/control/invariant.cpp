#include "control/invariant.hpp"

#include "common/error.hpp"
#include "poly/ops.hpp"
#include "poly/support_sum.hpp"

namespace oic::control {

using linalg::Matrix;
using linalg::Vector;
using poly::HPolytope;

MrpiResult mrpi_outer(const Matrix& a_cl, const HPolytope& d, const MrpiOptions& opt) {
  OIC_REQUIRE(a_cl.rows() == a_cl.cols(), "mrpi_outer: A_cl must be square");
  OIC_REQUIRE(d.dim() == a_cl.rows(), "mrpi_outer: disturbance dimension mismatch");
  OIC_REQUIRE(opt.alpha > 0.0 && opt.alpha < 1.0, "mrpi_outer: alpha must be in (0,1)");
  OIC_REQUIRE(!d.is_empty(), "mrpi_outer: disturbance set is empty");
  OIC_REQUIRE(d.is_bounded(), "mrpi_outer: disturbance set must be bounded");

  const std::size_t n = a_cl.rows();

  // Find the smallest order s with  A_cl^s D  inside  alpha * D:
  //   h_{A^s D}(d_i) = h_D((A^s)^T d_i) <= alpha * b_i  for every facet i of D.
  std::size_t order = 0;
  Matrix apow = Matrix::identity(n);
  bool contracted = false;
  for (order = 1; order <= opt.max_order; ++order) {
    apow = apow * a_cl;
    bool ok = true;
    for (std::size_t i = 0; i < d.num_constraints() && ok; ++i) {
      const Vector dir = linalg::transpose_mul(apow, d.normal(i));
      const auto s = d.support(dir);
      OIC_CHECK(s.bounded && s.feasible, "mrpi_outer: support evaluation failed");
      ok = s.value <= opt.alpha * d.offset(i) + 1e-12;
    }
    if (ok) {
      contracted = true;
      break;
    }
  }
  if (!contracted) {
    throw NumericalError(
        "mrpi_outer: A_cl^n W did not contract below alpha*W within the order cap; "
        "is the closed loop stable?");
  }

  // F_s = W (+) A W (+) ... (+) A^{s-1} W, materialized over template
  // directions and scaled by 1/(1-alpha).
  poly::SupportSum chain;
  Matrix m = Matrix::identity(n);
  for (std::size_t i = 0; i < order; ++i) {
    chain.add_term(m, d);
    m = m * a_cl;
  }
  chain.set_scale(1.0 / (1.0 - opt.alpha));

  std::vector<Vector> dirs = opt.directions;
  if (dirs.empty()) {
    dirs = (n == 2) ? poly::uniform_directions_2d(32) : poly::box_diag_directions(n);
  }

  // The template outer approximation of an RPI set is not itself RPI (it is
  // exact only along template directions).  Restore true invariance by
  // taking the maximal RPI subset of the template polytope: it still
  // contains the exact mRPI (which is invariant and inside the template
  // set), so the sandwich  mRPI  subset  result  subset  (1/(1-alpha)) F_s
  // is preserved while Definition 1 holds exactly.
  const HPolytope outer = chain.outer_polytope(dirs).remove_redundancy();
  InvariantOptions fix_opt;
  fix_opt.max_iterations = 200;
  const InvariantResult fixed = maximal_rpi(a_cl, Vector(n), d, outer, fix_opt);
  if (!fixed.converged || fixed.set.is_empty()) {
    throw NumericalError(
        "mrpi_outer: invariance restoration did not converge; increase the "
        "template direction count or lower alpha");
  }

  MrpiResult out;
  out.set = fixed.set;
  out.order = order;
  out.alpha = opt.alpha;
  return out;
}

InvariantResult maximal_rpi(const Matrix& a_cl, const Vector& c, const HPolytope& d,
                            const HPolytope& constraint, const InvariantOptions& opt) {
  OIC_REQUIRE(a_cl.rows() == a_cl.cols(), "maximal_rpi: A_cl must be square");
  OIC_REQUIRE(c.size() == a_cl.rows(), "maximal_rpi: offset dimension mismatch");
  OIC_REQUIRE(d.dim() == a_cl.rows(), "maximal_rpi: disturbance dimension mismatch");
  OIC_REQUIRE(constraint.dim() == a_cl.rows(),
              "maximal_rpi: constraint dimension mismatch");

  InvariantResult out;
  HPolytope omega = opt.prune ? constraint.remove_redundancy() : constraint;
  for (std::size_t it = 0; it < opt.max_iterations; ++it) {
    out.iterations = it + 1;
    // Pre(Omega) = { x | A x + c + d in Omega for all d in D }
    //            = preimage of (Omega (-) D) under x -> A x + c.
    const HPolytope shrunk = omega.pontryagin_diff(d);
    const HPolytope pre = shrunk.affine_preimage(a_cl, c);
    HPolytope next = omega.intersect(pre);
    if (opt.prune) next = next.remove_redundancy();
    if (next.is_empty()) {
      out.set = next;
      out.converged = true;  // fixed point: the empty set is (vacuously) invariant
      return out;
    }
    // Omega_{i+1} subset Omega_i holds by construction; the fixed point is
    // reached when the reverse inclusion holds too.
    if (poly::contains_polytope(next, omega, opt.tol)) {
      out.set = next;
      out.converged = true;
      return out;
    }
    omega = std::move(next);
  }
  out.set = omega;
  out.converged = false;
  return out;
}

InvariantResult maximal_robust_control_invariant(const AffineLTI& sys, const Matrix& k,
                                                 const Vector& k0,
                                                 const InvariantOptions& opt) {
  OIC_REQUIRE(k.rows() == sys.nu() && k.cols() == sys.nx(),
              "maximal_robust_control_invariant: gain shape mismatch");
  OIC_REQUIRE(k0.size() == sys.nu(),
              "maximal_robust_control_invariant: offset dimension mismatch");

  const Matrix a_cl = sys.a() + sys.b() * k;
  const Vector c_cl = sys.c() + sys.b() * k0;
  const HPolytope d = sys.disturbance_in_state_space();
  // States where the law itself is admissible: K x + k0 in U.
  const HPolytope input_ok = sys.u_set().affine_preimage(k, k0);
  const HPolytope constraint = sys.x_set().intersect(input_ok);
  return maximal_rpi(a_cl, c_cl, d, constraint, opt);
}

bool is_robust_invariant(const AffineLTI& sys, const Matrix& k, const Vector& k0,
                         const HPolytope& xi, double tol) {
  OIC_REQUIRE(xi.dim() == sys.nx(), "is_robust_invariant: set dimension mismatch");
  if (xi.is_empty()) return true;

  const Matrix a_cl = sys.a() + sys.b() * k;
  const Vector c_cl = sys.c() + sys.b() * k0;
  const HPolytope d = sys.disturbance_in_state_space();

  // (A_cl XI + c_cl) (+) D inside XI, via support functions facet by facet.
  for (std::size_t i = 0; i < xi.num_constraints(); ++i) {
    const Vector ai = xi.normal(i);
    const auto s_state = xi.support(linalg::transpose_mul(a_cl, ai));
    const auto s_dist = d.support(ai);
    if (!s_state.bounded || !s_dist.bounded) return false;
    const double reach = s_state.value + linalg::dot(ai, c_cl) + s_dist.value;
    if (reach > xi.offset(i) + tol) return false;
  }
  // Input admissibility over XI: K x + k0 in U for every x in XI.
  for (std::size_t j = 0; j < sys.u_set().num_constraints(); ++j) {
    const Vector gj = sys.u_set().normal(j);
    const auto s = xi.support(linalg::transpose_mul(k, gj));
    if (!s.bounded) return false;
    if (s.value + linalg::dot(gj, k0) > sys.u_set().offset(j) + tol) return false;
  }
  // State admissibility: XI inside X.
  return poly::contains_polytope(sys.x_set(), xi, tol);
}

}  // namespace oic::control
