#pragma once
/// \file controller.hpp
/// The safe-controller abstraction kappa of the paper, plus the linear
/// state-feedback implementation.  Advanced controllers (TubeMpc) implement
/// the same interface, which is what lets the intermittent framework treat
/// "run kappa" as a black box (Sec. III).

#include <cstddef>
#include <memory>
#include <string>

#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"

namespace oic::control {

/// Abstract feedback controller u = kappa(x).
///
/// control() is non-const on purpose: real controllers keep internal state
/// (warm starts, solve counters) and the framework's computation-saving
/// claim is precisely about avoiding these calls.
class Controller {
 public:
  virtual ~Controller() = default;

  /// Compute the control input for the given state.  Implementations throw
  /// NumericalError when the control law is undefined at x (e.g. an MPC
  /// whose optimization is infeasible outside its feasible region).
  virtual linalg::Vector control(const linalg::Vector& x) = 0;

  /// State dimension this controller expects.
  virtual std::size_t state_dim() const = 0;

  /// Input dimension this controller produces.
  virtual std::size_t input_dim() const = 0;

  /// Diagnostic name for logs and experiment tables.
  virtual std::string name() const = 0;

  /// Number of control() invocations so far -- the measure behind the
  /// paper's computation-saving statistic (Sec. IV-A).
  std::size_t invocations() const { return invocations_; }

 protected:
  /// Implementations call this at the top of control().
  void count_invocation() { ++invocations_; }

 private:
  std::size_t invocations_ = 0;
};

/// Linear (affine) state feedback u = K x + k0.
class LinearFeedback : public Controller {
 public:
  /// Pure linear feedback u = K x.
  explicit LinearFeedback(linalg::Matrix k);

  /// Affine feedback u = K x + k0.
  LinearFeedback(linalg::Matrix k, linalg::Vector k0);

  linalg::Vector control(const linalg::Vector& x) override;
  std::size_t state_dim() const override { return k_.cols(); }
  std::size_t input_dim() const override { return k_.rows(); }
  std::string name() const override { return "linear-feedback"; }

  /// Gain matrix K.
  const linalg::Matrix& gain() const { return k_; }
  /// Affine offset k0.
  const linalg::Vector& offset() const { return k0_; }

 private:
  linalg::Matrix k_;
  linalg::Vector k0_;
};

}  // namespace oic::control
