#pragma once
/// \file reach.hpp
/// Backward reachable sets (Definition 2) and Pre-operators.
///
/// B(Y, z) is the set of states guaranteed to land in Y at the next step
/// for *every* disturbance, under the control implied by the skipping
/// choice z: the fixed skip input (z = 0) or a linear feedback law (z = 1).
/// The strengthened safe set of the paper is X' = B(XI, 0) intersect XI
/// (Definition 3); see core/safe_sets.hpp.

#include "control/lti.hpp"
#include "poly/hpolytope.hpp"

namespace oic::control {

/// B(Y, 0) with a designated constant skip input u_skip (the paper uses
/// u_skip = 0):  { x | A x + B u_skip + c + E w in Y  for all w in W }.
poly::HPolytope backward_reach_const_input(const AffineLTI& sys,
                                           const poly::HPolytope& y,
                                           const linalg::Vector& u_skip);

/// B(Y, 1) for an affine feedback law u = K x + k0:
///   { x | (A + B K) x + B k0 + c + E w in Y  for all w in W }.
poly::HPolytope backward_reach_feedback(const AffineLTI& sys, const poly::HPolytope& y,
                                        const linalg::Matrix& k,
                                        const linalg::Vector& k0);

/// Robust Pre with an existentially quantified admissible input:
///   { x in X_k | exists u in U :  A x + B u + c + E w in Y for all w in W },
/// computed by Fourier-Motzkin elimination of u.  `state_constraint` is
/// intersected into the result (pass sys.x_set() or a tightened X(k)).
/// This is the controllability-set operator used to build the RMPC feasible
/// region (Prop. 1).
poly::HPolytope pre_exists_input(const AffineLTI& sys, const poly::HPolytope& y,
                                 const poly::HPolytope& state_constraint,
                                 const poly::HPolytope& input_constraint);

/// Nominal (disturbance-free) variant of pre_exists_input:
///   { x in X_k | exists u in U :  A x + B u + c in Y }.
/// The Chisci-style RMPC handles disturbances through constraint
/// tightening, so its feasible-set recursion uses the *nominal* Pre.
poly::HPolytope pre_exists_input_nominal(const AffineLTI& sys, const poly::HPolytope& y,
                                         const poly::HPolytope& state_constraint,
                                         const poly::HPolytope& input_constraint);

/// Forward one-step reachable set of a polytope under constant input:
///   A S + B u + c (+) E W,  materialized exactly for planar systems and by
/// template outer approximation otherwise.  Used by tests to cross-check
/// backward sets and by examples for visualization.
poly::HPolytope forward_reach_const_input(const AffineLTI& sys, const poly::HPolytope& s,
                                          const linalg::Vector& u);

}  // namespace oic::control
