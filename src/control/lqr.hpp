#pragma once
/// \file lqr.hpp
/// Discrete-time LQR synthesis via fixed-point iteration of the algebraic
/// Riccati equation.  Used to produce the stabilizing gain K that the
/// paper's set pipeline needs: the mRPI construction for linear feedback
/// (Sec. III-A) and the tube-MPC terminal controller kappa_L.

#include "linalg/matrix.hpp"

namespace oic::control {

/// Result of a Riccati solve.
struct LqrResult {
  linalg::Matrix k;  ///< feedback gain, convention u = K x (K includes the minus sign)
  linalg::Matrix p;  ///< stabilizing solution of the DARE
  bool converged = false;
  std::size_t iterations = 0;
};

/// Solve the discrete algebraic Riccati equation
///   P = Q + A' P A - A' P B (R + B' P B)^{-1} B' P A
/// by value iteration and return the gain K = -(R + B' P B)^{-1} B' P A.
///
/// Q must be positive semidefinite and R positive definite (only symmetry
/// and invertibility of R + B'PB are checked at runtime).  Convergence is
/// declared when successive P iterates differ by less than `tol` in the
/// max-abs norm.
LqrResult dlqr(const linalg::Matrix& a, const linalg::Matrix& b,
               const linalg::Matrix& q, const linalg::Matrix& r, double tol = 1e-10,
               std::size_t max_iterations = 10000);

/// Spectral radius estimate of a square matrix by power iteration on A A^T
/// pairs -- used by tests to assert closed-loop stability of A + B K.
double spectral_radius_estimate(const linalg::Matrix& a, std::size_t iterations = 200);

}  // namespace oic::control
