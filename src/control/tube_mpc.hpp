#pragma once
/// \file tube_mpc.hpp
/// Robust MPC with constraint tightening, after Chisci et al. [1] as quoted
/// in Equation (5) of the paper: at each step solve
///
///   J(x(t)) = min  sum_{k=0}^{N-1}  P ||x(k|t)||_1 + Q ||u(k|t)||_1
///        s.t.  x(k+1|t) = A x(k|t) + B u(k|t) + c        (nominal dynamics)
///              x(k|t) in X(k),  u(k|t) in U,  x(N|t) in X_t,
///              x(0|t) = x(t),
///
/// with recursively tightened state sets
///   X(0) = X,   X(k) = X(k-1) (-) M^{k-1} E W,
/// where M = A reproduces the paper's recursion verbatim and M = A + B K
/// gives the classical closed-loop (Chisci) tightening -- selectable, and
/// ablated in bench_sets.  The terminal set X_t is the maximal RPI set of
/// the local feedback u = K x inside the most-tightened constraints, which
/// provides the stability property Prop. 1 relies on.

#include <memory>
#include <vector>

#include "control/controller.hpp"
#include "control/invariant.hpp"
#include "control/lti.hpp"
#include "lp/prepared.hpp"
#include "lp/problem.hpp"
#include "poly/hpolytope.hpp"

namespace oic::control {

/// Tube-MPC configuration.
struct RmpcConfig {
  std::size_t horizon = 10;   ///< N; the ACC case study uses 10 (Sec. IV)
  double state_weight = 1.0;  ///< P in Equation (5)
  double input_weight = 1.0;  ///< Q in Equation (5)
  /// false: tighten with open-loop powers A^{k-1} (the paper's recursion);
  /// true: tighten with closed-loop powers (A+BK)^{k-1} (Chisci's original).
  bool closed_loop_tightening = false;
  /// Fixed-point options for the terminal-set computation.
  InvariantOptions terminal_options = {};
  /// Reuse a prepared LP across control() calls: the constraint tableau is
  /// built once and only the x(0) = x(t) right-hand sides are patched per
  /// step.  Bit-identical results to rebuilding; ~2x faster per solve.
  /// false recovers the historical rebuild-every-step path (benchmarking).
  bool reuse_lp = true;
  /// Continue each solve from the previous step's optimal basis with the
  /// dual simplex (requires reuse_lp).  A receding-horizon solve then costs
  /// a few dual pivots instead of a full two-phase restart.  The optimum is
  /// exact either way; the argmin can differ from a cold solve only where
  /// the LP has multiple optima.  reset_solver() drops the carried basis.
  bool warm_start = true;
};

/// Diagnostics of the most recent successful solve.
struct MpcSolveInfo {
  double cost = 0.0;                        ///< optimal objective J(x)
  std::vector<linalg::Vector> planned_x;    ///< x(0|t) ... x(N|t)
  std::vector<linalg::Vector> planned_u;    ///< u(0|t) ... u(N-1|t)
};

/// Robust tube MPC; implements Controller so the intermittent framework can
/// wrap it as the underlying safe controller kappa.
class TubeMpc : public Controller {
 public:
  /// Build the controller: computes tightened sets and the terminal set.
  /// `k_local` is the stabilizing local gain (u = K x) used for tightening
  /// (when closed-loop) and for the terminal RPI set; obtain one from dlqr.
  /// Throws NumericalError if the terminal set comes out empty (horizon too
  /// long / disturbance too large for the constraints).
  TubeMpc(AffineLTI sys, linalg::Matrix k_local, RmpcConfig config = {});

  /// Rehydrate from precomputed tightened / terminal sets (the certificate
  /// load path, src/cert): skips every synthesis LP and Minkowski
  /// difference, so construction is allocation-and-validation only.  The
  /// sets must be what the synthesizing constructor produced for the same
  /// (sys, k_local, config) -- shapes and counts are validated here, the
  /// semantic properties by cert::verify.
  TubeMpc(AffineLTI sys, linalg::Matrix k_local, RmpcConfig config,
          std::vector<poly::HPolytope> tightened, poly::HPolytope terminal);

  /// Copyable: each copy gets independent solver state (cached LP, solve
  /// diagnostics), which is what lets evaluation workers run concurrently
  /// on private controller instances without re-deriving the tightened and
  /// terminal sets.
  TubeMpc(const TubeMpc& other);
  TubeMpc& operator=(const TubeMpc& other);

  /// Solve Equation (5) and return u*(0|t).  Throws NumericalError when the
  /// optimization is infeasible at x (i.e. x outside the feasible region).
  linalg::Vector control(const linalg::Vector& x) override;

  std::size_t state_dim() const override { return sys_.nx(); }
  std::size_t input_dim() const override { return sys_.nu(); }
  std::string name() const override { return "tube-rmpc"; }

  /// LP feasibility of the MPC optimization at x (no objective solve).
  bool feasible(const linalg::Vector& x) const;

  /// Tightened state set X(k), 0 <= k <= horizon.
  const poly::HPolytope& tightened(std::size_t k) const;

  /// Terminal set X_t.
  const poly::HPolytope& terminal_set() const { return terminal_; }

  /// Diagnostics of the last successful control() call.
  const MpcSolveInfo& last_solve() const { return last_; }

  /// The underlying plant model.
  const AffineLTI& system() const { return sys_; }

  /// The stabilizing local gain (u = K x) the tube was tightened with.
  /// Degraded-mode consumers use it as a saturated recovery feedback when
  /// the optimization is infeasible at the state estimate.
  const linalg::Matrix& local_gain() const { return k_local_; }

  /// Configuration in effect.
  const RmpcConfig& config() const { return config_; }

  /// Drop per-instance solver state carried between control() calls (the
  /// warm-started basis).  Call at episode boundaries when runs must be
  /// independent of what the controller solved before (the evaluation
  /// engine does this so sharded and serial sweeps are bit-identical).
  void reset_solver();

  /// The exact feasible region X_F of the optimization, computed by the
  /// N-step nominal controllability recursion with tightened constraints
  /// (Fourier-Motzkin).  By Prop. 1 this set is also the robust control
  /// invariant set XI of the controller.  Expensive; compute once and cache
  /// at the call site.
  poly::HPolytope compute_feasible_set() const;

 private:
  AffineLTI sys_;
  linalg::Matrix k_local_;
  RmpcConfig config_;
  std::vector<poly::HPolytope> tightened_;  // X(0) ... X(N)
  poly::HPolytope terminal_;
  MpcSolveInfo last_;
  /// Prepared Equation-(5) LP (built lazily on the first control() call
  /// when config_.reuse_lp): only the first nx right-hand sides depend on
  /// the query state, so each step is a rhs patch + workspace solve.
  std::unique_ptr<lp::PreparedProblem> prepared_;
  lp::SolverWorkspace ws_;
  lp::PreparedProblem::WarmState warm_;

  /// Build the LP; when `with_objective` is false the objective is zero
  /// (pure feasibility test).  Returns the LP and records the variable
  /// layout (state/input block offsets) in the out-parameters.
  struct LpLayout {
    std::size_t x0 = 0;      ///< first state-variable column
    std::size_t u0 = 0;      ///< first input-variable column
    std::size_t tx0 = 0;     ///< first |x| auxiliary column
    std::size_t tu0 = 0;     ///< first |u| auxiliary column
    std::size_t total = 0;   ///< total variable count
  };
  LpLayout make_layout(bool with_objective) const;
  lp::Problem build_lp(const linalg::Vector& x0, bool with_objective,
                       LpLayout& layout) const;
};

}  // namespace oic::control
