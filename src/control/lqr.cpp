#include "control/lqr.hpp"

#include <cmath>

#include "common/error.hpp"
#include "linalg/lu.hpp"

namespace oic::control {

using linalg::Matrix;
using linalg::Vector;

LqrResult dlqr(const Matrix& a, const Matrix& b, const Matrix& q, const Matrix& r,
               double tol, std::size_t max_iterations) {
  const std::size_t n = a.rows();
  const std::size_t m = b.cols();
  OIC_REQUIRE(a.cols() == n, "dlqr: A must be square");
  OIC_REQUIRE(b.rows() == n, "dlqr: B row count mismatch");
  OIC_REQUIRE(q.rows() == n && q.cols() == n, "dlqr: Q shape mismatch");
  OIC_REQUIRE(r.rows() == m && r.cols() == m, "dlqr: R shape mismatch");

  Matrix p = q;
  LqrResult out;
  for (std::size_t it = 0; it < max_iterations; ++it) {
    // K_it = (R + B'PB)^{-1} B'PA
    const Matrix bt = b.transposed();
    const Matrix btp = bt * p;
    const Matrix gram = r + btp * b;
    const linalg::LU lu(gram);
    if (lu.singular()) throw NumericalError("dlqr: R + B'PB is singular");
    const Matrix kbar = lu.solve(btp * a);  // without the minus sign
    const Matrix at = a.transposed();
    const Matrix p_next = q + at * p * a - at * p * b * kbar;

    const double delta = (p_next - p).norm_inf_elem();
    p = p_next;
    if (delta < tol) {
      out.converged = true;
      out.iterations = it + 1;
      break;
    }
    out.iterations = it + 1;
  }

  const Matrix bt = b.transposed();
  const Matrix gram = r + bt * p * b;
  const linalg::LU lu(gram);
  if (lu.singular()) {
    throw NumericalError("dlqr: R + B'PB is singular at the fixed point");
  }
  out.k = -(lu.solve(bt * p * a));
  out.p = p;
  return out;
}

double spectral_radius_estimate(const Matrix& a, std::size_t iterations) {
  OIC_REQUIRE(a.rows() == a.cols(), "spectral_radius_estimate: matrix must be square");
  // rho(A) = lim_k ||A^k||_F^{1/k}.  Repeated squaring with renormalization
  // reaches k = 2^iterations applications in `iterations` multiplies.
  Matrix m = a;
  double log_scale = 0.0;  // log ||A^k|| accumulated across renormalizations
  double k = 1.0;
  for (std::size_t it = 0; it < std::min<std::size_t>(iterations, 40); ++it) {
    const double nf = m.norm_fro();
    if (nf == 0.0) return 0.0;
    m *= 1.0 / nf;
    log_scale += std::log(nf);
    const double estimate = std::exp(log_scale / k);
    m = m * m;
    log_scale *= 2.0;
    k *= 2.0;
    if (it > 8 && estimate < 1e-12) return 0.0;
  }
  const double nf = m.norm_fro();
  if (nf == 0.0) return 0.0;
  return std::exp((log_scale + std::log(nf)) / k);
}

}  // namespace oic::control
