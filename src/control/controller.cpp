#include "control/controller.hpp"

#include "common/error.hpp"

namespace oic::control {

LinearFeedback::LinearFeedback(linalg::Matrix k)
    : k_(std::move(k)), k0_(k_.rows()) {}

LinearFeedback::LinearFeedback(linalg::Matrix k, linalg::Vector k0)
    : k_(std::move(k)), k0_(std::move(k0)) {
  OIC_REQUIRE(k0_.size() == k_.rows(), "LinearFeedback: offset dimension mismatch");
}

linalg::Vector LinearFeedback::control(const linalg::Vector& x) {
  OIC_REQUIRE(x.size() == k_.cols(), "LinearFeedback: state dimension mismatch");
  count_invocation();
  return k_ * x + k0_;
}

}  // namespace oic::control
