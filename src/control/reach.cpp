#include "control/reach.hpp"

#include "common/error.hpp"
#include "poly/fourier_motzkin.hpp"
#include "poly/ops.hpp"

namespace oic::control {

using linalg::Matrix;
using linalg::Vector;
using poly::HPolytope;

HPolytope backward_reach_const_input(const AffineLTI& sys, const HPolytope& y,
                                     const Vector& u_skip) {
  OIC_REQUIRE(y.dim() == sys.nx(), "backward_reach_const_input: set dimension mismatch");
  OIC_REQUIRE(u_skip.size() == sys.nu(),
              "backward_reach_const_input: input dimension mismatch");
  // { x | A x + (B u_skip + c) in Y (-) EW }.
  const HPolytope shrunk = y.pontryagin_diff(sys.disturbance_in_state_space());
  const Vector offset = sys.b() * u_skip + sys.c();
  return shrunk.affine_preimage(sys.a(), offset);
}

HPolytope backward_reach_feedback(const AffineLTI& sys, const HPolytope& y,
                                  const Matrix& k, const Vector& k0) {
  OIC_REQUIRE(y.dim() == sys.nx(), "backward_reach_feedback: set dimension mismatch");
  OIC_REQUIRE(k.rows() == sys.nu() && k.cols() == sys.nx(),
              "backward_reach_feedback: gain shape mismatch");
  OIC_REQUIRE(k0.size() == sys.nu(), "backward_reach_feedback: offset mismatch");
  const HPolytope shrunk = y.pontryagin_diff(sys.disturbance_in_state_space());
  const Matrix a_cl = sys.a() + sys.b() * k;
  const Vector offset = sys.b() * k0 + sys.c();
  return shrunk.affine_preimage(a_cl, offset);
}

namespace {

/// Shared implementation of the exists-u Pre operator; `target` is the set
/// the successor must reach (already disturbance-shrunk when robust).
HPolytope pre_exists_impl(const AffineLTI& sys, const HPolytope& target,
                          const HPolytope& state_constraint,
                          const HPolytope& input_constraint) {
  const std::size_t nx = sys.nx();
  const std::size_t nu = sys.nu();

  // Lifted polytope over (x, u):
  //   H_t (A x + B u + c) <= b_t,   H_u u <= b_u,   H_x x <= b_x.
  const std::size_t rows =
      target.num_constraints() + input_constraint.num_constraints() +
      state_constraint.num_constraints();
  Matrix a(rows, nx + nu);
  Vector b(rows);
  std::size_t r = 0;
  const Matrix ha = target.a() * sys.a();
  const Matrix hb = target.a() * sys.b();
  const Vector hc = target.a() * sys.c();
  for (std::size_t i = 0; i < target.num_constraints(); ++i, ++r) {
    for (std::size_t j = 0; j < nx; ++j) a(r, j) = ha(i, j);
    for (std::size_t j = 0; j < nu; ++j) a(r, nx + j) = hb(i, j);
    b[r] = target.b()[i] - hc[i];
  }
  for (std::size_t i = 0; i < input_constraint.num_constraints(); ++i, ++r) {
    for (std::size_t j = 0; j < nu; ++j) a(r, nx + j) = input_constraint.a()(i, j);
    b[r] = input_constraint.b()[i];
  }
  for (std::size_t i = 0; i < state_constraint.num_constraints(); ++i, ++r) {
    for (std::size_t j = 0; j < nx; ++j) a(r, j) = state_constraint.a()(i, j);
    b[r] = state_constraint.b()[i];
  }

  const HPolytope lifted(std::move(a), std::move(b));
  return poly::project_prefix(lifted, nx);
}

}  // namespace

HPolytope pre_exists_input(const AffineLTI& sys, const HPolytope& y,
                           const HPolytope& state_constraint,
                           const HPolytope& input_constraint) {
  OIC_REQUIRE(y.dim() == sys.nx(), "pre_exists_input: set dimension mismatch");
  const HPolytope shrunk = y.pontryagin_diff(sys.disturbance_in_state_space());
  return pre_exists_impl(sys, shrunk, state_constraint, input_constraint);
}

HPolytope pre_exists_input_nominal(const AffineLTI& sys, const HPolytope& y,
                                   const HPolytope& state_constraint,
                                   const HPolytope& input_constraint) {
  OIC_REQUIRE(y.dim() == sys.nx(), "pre_exists_input_nominal: set dimension mismatch");
  return pre_exists_impl(sys, y, state_constraint, input_constraint);
}

HPolytope forward_reach_const_input(const AffineLTI& sys, const HPolytope& s,
                                    const Vector& u) {
  OIC_REQUIRE(s.dim() == sys.nx(), "forward_reach_const_input: set dimension mismatch");
  OIC_REQUIRE(u.size() == sys.nu(), "forward_reach_const_input: input mismatch");
  const Vector offset = sys.b() * u + sys.c();
  // A S + offset.
  HPolytope mapped = [&] {
    if (sys.nx() == 2) {
      // Exact planar path through vertices.
      const auto verts = s.vertices_2d();
      OIC_REQUIRE(!verts.empty(), "forward_reach_const_input: source set unbounded");
      std::vector<Vector> imgs;
      imgs.reserve(verts.size());
      for (const auto& v : verts) imgs.push_back(sys.a() * v + offset);
      return HPolytope::from_vertices_2d(imgs);
    }
    return poly::affine_image_projection(s, sys.a(), offset);
  }();
  return poly::minkowski_sum(mapped, sys.disturbance_in_state_space());
}

}  // namespace oic::control
