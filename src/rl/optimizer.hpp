#pragma once
/// \file optimizer.hpp
/// First-order optimizers for the Mlp parameters: SGD (with momentum) and
/// Adam.  DQN training in the paper uses Adam-style adaptive steps; SGD is
/// kept for ablations and tests.

#include "rl/mlp.hpp"

namespace oic::rl {

/// Plain SGD with optional momentum:  v <- mu v + g;  theta <- theta - lr v.
class Sgd {
 public:
  explicit Sgd(double learning_rate, double momentum = 0.0);

  /// Apply one update from the given gradients.
  void step(Mlp& net, const Gradients& g);

 private:
  double lr_;
  double momentum_;
  bool initialized_ = false;
  Gradients velocity_;
};

/// Adam (Kingma & Ba) with bias correction.
class Adam {
 public:
  explicit Adam(double learning_rate = 1e-3, double beta1 = 0.9, double beta2 = 0.999,
                double eps = 1e-8);

  /// Apply one update from the given gradients.
  void step(Mlp& net, const Gradients& g);

  /// Number of updates applied so far.
  std::size_t steps() const { return t_; }

 private:
  double lr_, beta1_, beta2_, eps_;
  std::size_t t_ = 0;
  bool initialized_ = false;
  Gradients m_;
  Gradients v_;
};

}  // namespace oic::rl
