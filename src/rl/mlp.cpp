#include "rl/mlp.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/error.hpp"
#include "linalg/kernels.hpp"

namespace oic::rl {

using linalg::Matrix;
using linalg::Vector;

void Gradients::add(const Gradients& other) {
  OIC_REQUIRE(dw.size() == other.dw.size(), "Gradients::add: layer count mismatch");
  for (std::size_t l = 0; l < dw.size(); ++l) {
    dw[l] += other.dw[l];
    db[l] += other.db[l];
  }
}

void Gradients::scale(double s) {
  for (auto& m : dw) m *= s;
  for (auto& v : db) v *= s;
}

void Gradients::zero() {
  for (auto& m : dw) std::fill(m.data(), m.data() + m.rows() * m.cols(), 0.0);
  for (auto& v : db) std::fill(v.data().begin(), v.data().end(), 0.0);
}

double Gradients::norm_inf() const {
  double n = 0.0;
  for (const auto& m : dw) n = std::max(n, m.norm_inf_elem());
  for (const auto& v : db) n = std::max(n, v.norm_inf());
  return n;
}

Mlp::Mlp(std::vector<std::size_t> sizes, Rng& rng) : sizes_(std::move(sizes)) {
  OIC_REQUIRE(sizes_.size() >= 2, "Mlp: need at least input and output sizes");
  for (std::size_t s : sizes_) OIC_REQUIRE(s >= 1, "Mlp: zero-width layer");
  for (std::size_t l = 0; l + 1 < sizes_.size(); ++l) {
    const std::size_t in = sizes_[l];
    const std::size_t out = sizes_[l + 1];
    Matrix w(out, in);
    const double std_dev = std::sqrt(2.0 / static_cast<double>(in));  // He init
    for (std::size_t i = 0; i < out; ++i)
      for (std::size_t j = 0; j < in; ++j) w(i, j) = rng.normal(0.0, std_dev);
    w_.push_back(std::move(w));
    b_.emplace_back(out);
  }
}

Vector Mlp::forward(const Vector& in) const {
  OIC_REQUIRE(in.size() == sizes_.front(), "Mlp::forward: input dimension mismatch");
  Vector h = in;
  for (std::size_t l = 0; l < w_.size(); ++l) {
    h = w_[l] * h + b_[l];
    if (l + 1 < w_.size()) {
      for (double& v : h) v = v > 0.0 ? v : 0.0;  // ReLU on hidden layers
    }
  }
  return h;
}

const Vector& Mlp::forward_into(const Vector& in, MlpWorkspace& ws) const {
  OIC_REQUIRE(in.size() == sizes_.front(), "Mlp::forward_into: input dimension mismatch");
  std::size_t widest = 0;
  for (std::size_t s : sizes_) widest = std::max(widest, s);
  if (ws.ping.size() < widest) ws.ping.resize(widest);
  if (ws.pong.size() < widest) ws.pong.resize(widest);

  const double* src = in.data().data();
  for (std::size_t l = 0; l < w_.size(); ++l) {
    // Alternate destinations so a layer never writes the buffer it reads.
    double* dst = l % 2 == 0 ? ws.pong.data() : ws.ping.data();
    linalg::gemv_bias(w_[l], src, b_[l].data().data(), dst,
                      /*relu=*/l + 1 < w_.size());
    src = dst;
  }
  // src points at the output layer's activations; copy into the stable
  // result vector (assign reuses its capacity).
  ws.out.data().assign(src, src + sizes_.back());
  return ws.out;
}

namespace {

/// Grow-only reshape: keep the allocation when the shape already matches.
void ensure_shape(Matrix& m, std::size_t rows, std::size_t cols) {
  if (m.rows() != rows || m.cols() != cols) m = Matrix(rows, cols);
}

}  // namespace

const Matrix& Mlp::forward_batch_into(const Matrix& in, BatchWorkspace& ws) const {
  OIC_REQUIRE(in.cols() == sizes_.front(),
              "Mlp::forward_batch_into: input dimension mismatch");
  const std::size_t batch = in.rows();
  std::size_t widest = 0;
  for (std::size_t s : sizes_) widest = std::max(widest, s);
  ensure_shape(ws.ping, batch, widest);
  ensure_shape(ws.pong, batch, widest);

  const double* src = in.data();
  std::size_t ld_src = in.cols();
  for (std::size_t l = 0; l < w_.size(); ++l) {
    // Alternate destinations so a layer never writes the buffer it reads.
    double* dst = (l % 2 == 0 ? ws.pong : ws.ping).data();
    linalg::gemm_bias(w_[l], src, batch, ld_src, b_[l].data().data(), dst, widest,
                      /*relu=*/l + 1 < w_.size());
    src = dst;
    ld_src = widest;
  }
  ensure_shape(ws.out, batch, sizes_.back());
  for (std::size_t r = 0; r < batch; ++r) {
    const double* row = src + r * ld_src;
    std::copy(row, row + sizes_.back(), ws.out.row_data(r));
  }
  return ws.out;
}

const Matrix& Mlp::forward_batch_cached(const Matrix& in,
                                        BatchForwardCache& cache) const {
  OIC_REQUIRE(in.cols() == sizes_.front(),
              "Mlp::forward_batch_cached: input dimension mismatch");
  const std::size_t batch = in.rows();
  cache.pre.resize(w_.size());
  cache.post.resize(w_.size() + 1);
  cache.post[0] = in;
  for (std::size_t l = 0; l < w_.size(); ++l) {
    const std::size_t out_dim = sizes_[l + 1];
    ensure_shape(cache.pre[l], batch, out_dim);
    ensure_shape(cache.post[l + 1], batch, out_dim);
    linalg::gemm_bias(w_[l], cache.post[l].data(), batch, sizes_[l],
                      b_[l].data().data(), cache.pre[l].data(), out_dim,
                      /*relu=*/false);
    const double* z = cache.pre[l].data();
    double* h = cache.post[l + 1].data();
    const bool relu = l + 1 < w_.size();
    for (std::size_t k = 0; k < batch * out_dim; ++k) {
      h[k] = relu ? (z[k] > 0.0 ? z[k] : 0.0) : z[k];
    }
  }
  return cache.post.back();
}

void Mlp::backward_batch(const BatchForwardCache& cache, const Matrix& dout,
                         BatchWorkspace& ws, Gradients& g) const {
  OIC_REQUIRE(cache.pre.size() == w_.size(),
              "Mlp::backward_batch: cache layer mismatch");
  OIC_REQUIRE(dout.cols() == sizes_.back(),
              "Mlp::backward_batch: output grad mismatch");
  OIC_REQUIRE(g.dw.size() == w_.size(), "Mlp::backward_batch: gradient shape mismatch");
  const std::size_t batch = dout.rows();
  std::size_t widest = 0;
  for (std::size_t s : sizes_) widest = std::max(widest, s);
  ensure_shape(ws.delta, batch, widest);
  ensure_shape(ws.delta_prev, batch, widest);

  // delta holds dLoss/d pre-activation of the current layer, one row per
  // sample (stride = widest); starts as a copy of dout.
  for (std::size_t r = 0; r < batch; ++r) {
    std::copy(dout.row_data(r), dout.row_data(r) + dout.cols(),
              ws.delta.data() + r * widest);
  }
  double* delta = ws.delta.data();
  double* delta_prev = ws.delta_prev.data();
  for (std::size_t li = w_.size(); li-- > 0;) {
    const std::size_t out_dim = sizes_[li + 1];
    if (li + 1 < w_.size()) {
      // Coming from a ReLU layer above: gate by its pre-activation sign.
      const double* pre = cache.pre[li].data();
      for (std::size_t r = 0; r < batch; ++r) {
        double* d = delta + r * widest;
        const double* z = pre + r * out_dim;
        for (std::size_t i = 0; i < out_dim; ++i) {
          if (z[i] <= 0.0) d[i] = 0.0;
        }
      }
    }
    linalg::gemm_grad_accum(delta, batch, widest, cache.post[li].data(), sizes_[li],
                            g.dw[li], g.db[li].data().data());
    if (li > 0) {
      linalg::gemm_transpose(w_[li], delta, batch, widest, delta_prev, widest);
      std::swap(delta, delta_prev);
    }
  }
}

Vector Mlp::forward_cached(const Vector& in, ForwardCache& cache) const {
  OIC_REQUIRE(in.size() == sizes_.front(),
              "Mlp::forward_cached: input dimension mismatch");
  cache.pre.clear();
  cache.post.clear();
  cache.post.push_back(in);
  Vector h = in;
  for (std::size_t l = 0; l < w_.size(); ++l) {
    Vector z = w_[l] * h + b_[l];
    cache.pre.push_back(z);
    if (l + 1 < w_.size()) {
      for (double& v : z) v = v > 0.0 ? v : 0.0;
    }
    cache.post.push_back(z);
    h = std::move(z);
  }
  return h;
}

Gradients Mlp::backward(const ForwardCache& cache, const Vector& dout) const {
  OIC_REQUIRE(cache.pre.size() == w_.size(), "Mlp::backward: cache layer mismatch");
  OIC_REQUIRE(dout.size() == sizes_.back(), "Mlp::backward: output grad mismatch");

  Gradients g = zero_gradients();
  Vector delta = dout;  // dLoss/d pre-activation of the current layer
  for (std::size_t li = w_.size(); li-- > 0;) {
    if (li + 1 < w_.size()) {
      // Coming from a ReLU layer above: gate by its pre-activation sign.
      // (delta currently holds dLoss/d post-activation of layer li.)
      for (std::size_t i = 0; i < delta.size(); ++i) {
        if (cache.pre[li][i] <= 0.0) delta[i] = 0.0;
      }
    }
    // dW = delta * input^T ; db = delta.
    const Vector& input = cache.post[li];
    for (std::size_t i = 0; i < delta.size(); ++i) {
      if (delta[i] == 0.0) continue;
      for (std::size_t j = 0; j < input.size(); ++j) {
        g.dw[li](i, j) += delta[i] * input[j];
      }
    }
    g.db[li] += delta;
    if (li > 0) delta = linalg::transpose_mul(w_[li], delta);
  }
  return g;
}

Gradients Mlp::zero_gradients() const {
  Gradients g;
  for (std::size_t l = 0; l < w_.size(); ++l) {
    g.dw.emplace_back(w_[l].rows(), w_[l].cols());
    g.db.emplace_back(b_[l].size());
  }
  return g;
}

void Mlp::copy_from(const Mlp& other) {
  OIC_REQUIRE(sizes_ == other.sizes_, "Mlp::copy_from: architecture mismatch");
  w_ = other.w_;
  b_ = other.b_;
}

void Mlp::soft_update_from(const Mlp& other, double tau) {
  OIC_REQUIRE(sizes_ == other.sizes_, "Mlp::soft_update_from: architecture mismatch");
  OIC_REQUIRE(tau >= 0.0 && tau <= 1.0, "Mlp::soft_update_from: tau out of range");
  for (std::size_t l = 0; l < w_.size(); ++l) {
    w_[l] = tau * other.w_[l] + (1.0 - tau) * w_[l];
    b_[l] = tau * other.b_[l] + (1.0 - tau) * b_[l];
  }
}

std::size_t Mlp::num_params() const {
  std::size_t n = 0;
  for (std::size_t l = 0; l < w_.size(); ++l) {
    n += w_[l].rows() * w_[l].cols() + b_[l].size();
  }
  return n;
}

}  // namespace oic::rl
