#include "rl/mlp.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/error.hpp"
#include "linalg/kernels.hpp"

namespace oic::rl {

using linalg::Matrix;
using linalg::Vector;

void Gradients::add(const Gradients& other) {
  OIC_REQUIRE(dw.size() == other.dw.size(), "Gradients::add: layer count mismatch");
  for (std::size_t l = 0; l < dw.size(); ++l) {
    dw[l] += other.dw[l];
    db[l] += other.db[l];
  }
}

void Gradients::scale(double s) {
  for (auto& m : dw) m *= s;
  for (auto& v : db) v *= s;
}

double Gradients::norm_inf() const {
  double n = 0.0;
  for (const auto& m : dw) n = std::max(n, m.norm_inf_elem());
  for (const auto& v : db) n = std::max(n, v.norm_inf());
  return n;
}

Mlp::Mlp(std::vector<std::size_t> sizes, Rng& rng) : sizes_(std::move(sizes)) {
  OIC_REQUIRE(sizes_.size() >= 2, "Mlp: need at least input and output sizes");
  for (std::size_t s : sizes_) OIC_REQUIRE(s >= 1, "Mlp: zero-width layer");
  for (std::size_t l = 0; l + 1 < sizes_.size(); ++l) {
    const std::size_t in = sizes_[l];
    const std::size_t out = sizes_[l + 1];
    Matrix w(out, in);
    const double std_dev = std::sqrt(2.0 / static_cast<double>(in));  // He init
    for (std::size_t i = 0; i < out; ++i)
      for (std::size_t j = 0; j < in; ++j) w(i, j) = rng.normal(0.0, std_dev);
    w_.push_back(std::move(w));
    b_.emplace_back(out);
  }
}

Vector Mlp::forward(const Vector& in) const {
  OIC_REQUIRE(in.size() == sizes_.front(), "Mlp::forward: input dimension mismatch");
  Vector h = in;
  for (std::size_t l = 0; l < w_.size(); ++l) {
    h = w_[l] * h + b_[l];
    if (l + 1 < w_.size()) {
      for (double& v : h) v = v > 0.0 ? v : 0.0;  // ReLU on hidden layers
    }
  }
  return h;
}

const Vector& Mlp::forward_into(const Vector& in, MlpWorkspace& ws) const {
  OIC_REQUIRE(in.size() == sizes_.front(), "Mlp::forward_into: input dimension mismatch");
  std::size_t widest = 0;
  for (std::size_t s : sizes_) widest = std::max(widest, s);
  if (ws.ping.size() < widest) ws.ping.resize(widest);
  if (ws.pong.size() < widest) ws.pong.resize(widest);

  const double* src = in.data().data();
  for (std::size_t l = 0; l < w_.size(); ++l) {
    // Alternate destinations so a layer never writes the buffer it reads.
    double* dst = l % 2 == 0 ? ws.pong.data() : ws.ping.data();
    linalg::gemv_bias(w_[l], src, b_[l].data().data(), dst,
                      /*relu=*/l + 1 < w_.size());
    src = dst;
  }
  // src points at the output layer's activations; copy into the stable
  // result vector (assign reuses its capacity).
  ws.out.data().assign(src, src + sizes_.back());
  return ws.out;
}

Vector Mlp::forward_cached(const Vector& in, ForwardCache& cache) const {
  OIC_REQUIRE(in.size() == sizes_.front(),
              "Mlp::forward_cached: input dimension mismatch");
  cache.pre.clear();
  cache.post.clear();
  cache.post.push_back(in);
  Vector h = in;
  for (std::size_t l = 0; l < w_.size(); ++l) {
    Vector z = w_[l] * h + b_[l];
    cache.pre.push_back(z);
    if (l + 1 < w_.size()) {
      for (double& v : z) v = v > 0.0 ? v : 0.0;
    }
    cache.post.push_back(z);
    h = std::move(z);
  }
  return h;
}

Gradients Mlp::backward(const ForwardCache& cache, const Vector& dout) const {
  OIC_REQUIRE(cache.pre.size() == w_.size(), "Mlp::backward: cache layer mismatch");
  OIC_REQUIRE(dout.size() == sizes_.back(), "Mlp::backward: output grad mismatch");

  Gradients g = zero_gradients();
  Vector delta = dout;  // dLoss/d pre-activation of the current layer
  for (std::size_t li = w_.size(); li-- > 0;) {
    if (li + 1 < w_.size()) {
      // Coming from a ReLU layer above: gate by its pre-activation sign.
      // (delta currently holds dLoss/d post-activation of layer li.)
      for (std::size_t i = 0; i < delta.size(); ++i) {
        if (cache.pre[li][i] <= 0.0) delta[i] = 0.0;
      }
    }
    // dW = delta * input^T ; db = delta.
    const Vector& input = cache.post[li];
    for (std::size_t i = 0; i < delta.size(); ++i) {
      if (delta[i] == 0.0) continue;
      for (std::size_t j = 0; j < input.size(); ++j) {
        g.dw[li](i, j) += delta[i] * input[j];
      }
    }
    g.db[li] += delta;
    if (li > 0) delta = linalg::transpose_mul(w_[li], delta);
  }
  return g;
}

Gradients Mlp::zero_gradients() const {
  Gradients g;
  for (std::size_t l = 0; l < w_.size(); ++l) {
    g.dw.emplace_back(w_[l].rows(), w_[l].cols());
    g.db.emplace_back(b_[l].size());
  }
  return g;
}

void Mlp::copy_from(const Mlp& other) {
  OIC_REQUIRE(sizes_ == other.sizes_, "Mlp::copy_from: architecture mismatch");
  w_ = other.w_;
  b_ = other.b_;
}

void Mlp::soft_update_from(const Mlp& other, double tau) {
  OIC_REQUIRE(sizes_ == other.sizes_, "Mlp::soft_update_from: architecture mismatch");
  OIC_REQUIRE(tau >= 0.0 && tau <= 1.0, "Mlp::soft_update_from: tau out of range");
  for (std::size_t l = 0; l < w_.size(); ++l) {
    w_[l] = tau * other.w_[l] + (1.0 - tau) * w_[l];
    b_[l] = tau * other.b_[l] + (1.0 - tau) * b_[l];
  }
}

std::size_t Mlp::num_params() const {
  std::size_t n = 0;
  for (std::size_t l = 0; l < w_.size(); ++l) n += w_[l].rows() * w_[l].cols() + b_[l].size();
  return n;
}

}  // namespace oic::rl
