#pragma once
/// \file serialize.hpp
/// Plain-text serialization of Mlp parameters so trained skipping agents
/// can be stored and deployed without retraining (the paper trains offline
/// and deploys the frozen policy online -- this is the "deploy" half).
///
/// Format (line-oriented, locale-independent, versioned):
///   oic-mlp v1
///   sizes: n0 n1 ... nk
///   <weights layer 0 row-major> <biases layer 0> ... (one value per token)

#include <iosfwd>
#include <string>

#include "rl/mlp.hpp"

namespace oic::rl {

/// Write the network to a stream.  Throws on I/O failure.
void save_mlp(const Mlp& net, std::ostream& os);

/// Read a network written by save_mlp.  Throws NumericalError on malformed
/// input (wrong magic, dimension mismatch, truncated data).
Mlp load_mlp(std::istream& is);

/// Convenience file wrappers.
void save_mlp_file(const Mlp& net, const std::string& path);
Mlp load_mlp_file(const std::string& path);

}  // namespace oic::rl
