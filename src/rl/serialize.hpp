#pragma once
/// \file serialize.hpp
/// Plain-text serialization of Mlp parameters so trained skipping agents
/// can be stored and deployed without retraining (the paper trains offline
/// and deploys the frozen policy online -- this is the "deploy" half).
///
/// Format (line-oriented, locale-independent, versioned):
///   oic-mlp v1
///   sizes: n0 n1 ... nk
///   <weights layer 0 row-major> <biases layer 0> ... (one value per token)
///   end
/// The `end` sentinel makes trailing truncation detectable (the payload
/// length is otherwise implied by the sizes header); readers reject
/// non-finite values, zero/oversized layer sizes, and malformed headers.

#include <iosfwd>
#include <string>

#include "rl/mlp.hpp"

namespace oic::rl {

/// Write the network to a stream.  Throws on I/O failure.
void save_mlp(const Mlp& net, std::ostream& os);

/// Read a network written by save_mlp.  Throws NumericalError on malformed
/// input (wrong magic, dimension mismatch, truncated data).
Mlp load_mlp(std::istream& is);

/// Convenience file wrappers.
void save_mlp_file(const Mlp& net, const std::string& path);
Mlp load_mlp_file(const std::string& path);

/// A deployable skipping agent: the trained online network plus the
/// inference-side wiring (disturbance memory r, state normalization, and
/// the plant it was trained for).  This is what `oic_train` writes and
/// `oic_eval --policies drl:<path>` reads; the train layer converts to /
/// from its TrainedAgent.
///
/// Format (extends the Mlp format with a header):
///   oic-agent v1
///   plant: <registry id>
///   memory: <r>
///   scale: s0 s1 ... (state_dim values; empty line-tail = no scaling)
///   <embedded oic-mlp v1 document>
struct AgentSnapshot {
  std::string plant;           ///< registry id ("acc", "lane-keep", ...)
  std::size_t memory = 1;      ///< disturbance memory r
  linalg::Vector state_scale;  ///< training-time normalization
  Mlp net;                     ///< online network
};

/// Write / read an agent snapshot.  Throws NumericalError on I/O failure
/// or malformed input.
void save_agent(const AgentSnapshot& snap, std::ostream& os);
AgentSnapshot load_agent(std::istream& is);
void save_agent_file(const AgentSnapshot& snap, const std::string& path);
AgentSnapshot load_agent_file(const std::string& path);

/// Agent-file header without the network payload (provenance checks read
/// this instead of re-parsing hundreds of KB of weight text).
struct AgentHeader {
  std::string plant;
  std::size_t memory = 1;
};

/// Read just the header of an agent file.  Throws NumericalError on
/// malformed input.
AgentHeader load_agent_header_file(const std::string& path);

}  // namespace oic::rl
