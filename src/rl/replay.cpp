#include "rl/replay.hpp"

#include "common/error.hpp"

namespace oic::rl {

ReplayBuffer::ReplayBuffer(std::size_t capacity) : storage_(capacity) {
  OIC_REQUIRE(capacity >= 1, "ReplayBuffer: capacity must be positive");
}

void ReplayBuffer::add(Transition t) {
  storage_[head_] = std::move(t);
  head_ = (head_ + 1) % storage_.size();
  if (size_ < storage_.size()) ++size_;
}

std::vector<const Transition*> ReplayBuffer::sample(std::size_t batch, Rng& rng) const {
  OIC_REQUIRE(size_ > 0, "ReplayBuffer::sample: buffer is empty");
  std::vector<const Transition*> out;
  out.reserve(batch);
  for (std::size_t i = 0; i < batch; ++i) {
    const std::size_t idx =
        static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(size_) - 1));
    out.push_back(&storage_[idx]);
  }
  return out;
}

const Transition& ReplayBuffer::at(std::size_t i) const {
  OIC_REQUIRE(i < size_, "ReplayBuffer::at: index out of range");
  return storage_[i];
}

}  // namespace oic::rl
