#pragma once
/// \file replay.hpp
/// Uniform experience-replay buffer for DQN training.

#include <cstddef>
#include <vector>

#include "common/random.hpp"
#include "linalg/vector.hpp"

namespace oic::rl {

/// One environment interaction (s, a, r, s', terminal).
struct Transition {
  linalg::Vector state;
  int action = 0;
  double reward = 0.0;
  linalg::Vector next_state;
  bool terminal = false;
};

/// Fixed-capacity ring buffer with uniform sampling.
class ReplayBuffer {
 public:
  /// Create a buffer holding at most `capacity` transitions.
  explicit ReplayBuffer(std::size_t capacity);

  /// Insert one transition (overwrites the oldest once full).
  void add(Transition t);

  /// Number of stored transitions.
  std::size_t size() const { return size_; }

  /// Maximum capacity.
  std::size_t capacity() const { return storage_.size(); }

  /// Sample `batch` transitions uniformly with replacement.  Requires a
  /// non-empty buffer.
  std::vector<const Transition*> sample(std::size_t batch, Rng& rng) const;

  /// Access by age-agnostic index (tests).
  const Transition& at(std::size_t i) const;

 private:
  std::vector<Transition> storage_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace oic::rl
