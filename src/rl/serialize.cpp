#include "rl/serialize.hpp"

#include <cmath>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "common/error.hpp"

namespace oic::rl {

namespace {

/// Caps on parsed shapes: a corrupted or adversarial header must fail
/// before it turns into a multi-gigabyte allocation.  Real skipping agents
/// are a few layers of at most a few hundred units.
constexpr std::size_t kMaxLayerSize = 4096;
constexpr std::size_t kMaxLayers = 64;
constexpr std::size_t kMaxMemory = 4096;

/// Weight/bias/scale payload read: truncation and non-finite tokens both
/// reject (istream behaviour on "nan"/"inf" is implementation-defined, so
/// the finiteness check is explicit).
double read_finite(std::istream& is, const char* what) {
  double v = 0.0;
  if (!(is >> v)) {
    throw NumericalError(std::string("rl::serialize: truncated ") + what);
  }
  if (!std::isfinite(v)) {
    throw NumericalError(std::string("rl::serialize: non-finite ") + what +
                         " value");
  }
  return v;
}

}  // namespace

void save_mlp(const Mlp& net, std::ostream& os) {
  os << "oic-mlp v1\n";
  os << "sizes:";
  for (std::size_t s : net.sizes()) os << ' ' << s;
  os << '\n';
  os << std::setprecision(17);
  for (std::size_t l = 0; l < net.num_layers(); ++l) {
    const auto& w = net.weight(l);
    for (std::size_t i = 0; i < w.rows(); ++i)
      for (std::size_t j = 0; j < w.cols(); ++j) os << w(i, j) << '\n';
    const auto& b = net.bias(l);
    for (std::size_t i = 0; i < b.size(); ++i) os << b[i] << '\n';
  }
  // End sentinel: the payload length is implied by the sizes header, so
  // without it a file truncated *inside the final value* would still
  // parse (as a different number).  The sentinel makes every truncation
  // detectable.
  os << "end\n";
  if (!os) throw NumericalError("save_mlp: stream write failed");
}

Mlp load_mlp(std::istream& is) {
  std::string magic, version;
  is >> magic >> version;
  if (!is || magic != "oic-mlp" || version != "v1") {
    throw NumericalError("load_mlp: bad magic/version header");
  }
  std::string sizes_tag;
  is >> sizes_tag;
  if (!is || sizes_tag != "sizes:") throw NumericalError("load_mlp: missing sizes");
  std::vector<std::size_t> sizes;
  {
    std::string line;
    std::getline(is, line);
    std::istringstream ls(line);
    std::size_t v;
    while (ls >> v) sizes.push_back(v);
    // The whole line must be layer sizes: a stray token would silently
    // reinterpret the network with a shorter shape.
    std::string rest;
    ls.clear();
    if (ls >> rest) {
      throw NumericalError("load_mlp: malformed sizes line near '" + rest + "'");
    }
  }
  if (sizes.size() < 2) throw NumericalError("load_mlp: need at least two layer sizes");
  if (sizes.size() > kMaxLayers) {
    throw NumericalError("load_mlp: layer count exceeds " +
                         std::to_string(kMaxLayers));
  }
  for (const std::size_t s : sizes) {
    if (s < 1 || s > kMaxLayerSize) {
      throw NumericalError("load_mlp: layer size " + std::to_string(s) +
                           " outside [1, " + std::to_string(kMaxLayerSize) + "]");
    }
  }

  Rng dummy(0);
  Mlp net(sizes, dummy);
  for (std::size_t l = 0; l < net.num_layers(); ++l) {
    auto& w = net.weight(l);
    for (std::size_t i = 0; i < w.rows(); ++i)
      for (std::size_t j = 0; j < w.cols(); ++j) w(i, j) = read_finite(is, "weights");
    auto& b = net.bias(l);
    for (std::size_t i = 0; i < b.size(); ++i) b[i] = read_finite(is, "biases");
  }
  std::string sentinel;
  if (!(is >> sentinel) || sentinel != "end") {
    throw NumericalError("load_mlp: truncated document (missing end sentinel)");
  }
  return net;
}

void save_agent(const AgentSnapshot& snap, std::ostream& os) {
  if (snap.plant.find_first_of(" \t\n") != std::string::npos) {
    throw NumericalError("save_agent: plant id must not contain whitespace");
  }
  os << "oic-agent v1\n";
  os << "plant: " << (snap.plant.empty() ? "?" : snap.plant) << '\n';
  os << "memory: " << snap.memory << '\n';
  os << std::setprecision(17);
  os << "scale:";
  for (std::size_t i = 0; i < snap.state_scale.size(); ++i) {
    os << ' ' << snap.state_scale[i];
  }
  os << '\n';
  save_mlp(snap.net, os);
  if (!os) throw NumericalError("save_agent: stream write failed");
}

namespace {

AgentHeader read_agent_header(std::istream& is) {
  std::string magic, version;
  is >> magic >> version;
  if (!is || magic != "oic-agent" || version != "v1") {
    throw NumericalError("load_agent: bad magic/version header");
  }
  std::string tag, plant;
  is >> tag >> plant;
  if (!is || tag != "plant:") throw NumericalError("load_agent: missing plant id");
  std::size_t memory = 0;
  is >> tag >> memory;
  if (!is || tag != "memory:" || memory < 1 || memory > kMaxMemory) {
    throw NumericalError("load_agent: bad memory length");
  }
  return AgentHeader{plant == "?" ? std::string() : plant, memory};
}

}  // namespace

AgentHeader load_agent_header_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw NumericalError("load_agent_header_file: cannot open " + path);
  return read_agent_header(is);
}

AgentSnapshot load_agent(std::istream& is) {
  const AgentHeader header = read_agent_header(is);
  std::string tag;
  is >> tag;
  if (!is || tag != "scale:") throw NumericalError("load_agent: missing scale");
  linalg::Vector scale;
  {
    std::string line;
    std::getline(is, line);
    std::istringstream ls(line);
    double v = 0.0;
    while (ls >> v) {
      if (!std::isfinite(v)) {
        throw NumericalError("load_agent: non-finite scale value");
      }
      scale.data().push_back(v);
    }
    // The line must have been consumed entirely as numbers; stray tokens
    // ("nan", a duplicated section header) are corruption, not padding.
    std::string rest;
    if (ls.clear(), ls >> rest) {
      throw NumericalError("load_agent: malformed scale line near '" + rest + "'");
    }
  }
  return AgentSnapshot{header.plant, header.memory, std::move(scale), load_mlp(is)};
}

void save_agent_file(const AgentSnapshot& snap, const std::string& path) {
  std::ofstream os(path);
  if (!os) throw NumericalError("save_agent_file: cannot open " + path);
  save_agent(snap, os);
}

AgentSnapshot load_agent_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw NumericalError("load_agent_file: cannot open " + path);
  return load_agent(is);
}

void save_mlp_file(const Mlp& net, const std::string& path) {
  std::ofstream os(path);
  if (!os) throw NumericalError("save_mlp_file: cannot open " + path);
  save_mlp(net, os);
}

Mlp load_mlp_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw NumericalError("load_mlp_file: cannot open " + path);
  return load_mlp(is);
}

}  // namespace oic::rl
