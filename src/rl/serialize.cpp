#include "rl/serialize.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>

#include "common/error.hpp"

namespace oic::rl {

void save_mlp(const Mlp& net, std::ostream& os) {
  os << "oic-mlp v1\n";
  os << "sizes:";
  for (std::size_t s : net.sizes()) os << ' ' << s;
  os << '\n';
  os << std::setprecision(17);
  for (std::size_t l = 0; l < net.num_layers(); ++l) {
    const auto& w = net.weight(l);
    for (std::size_t i = 0; i < w.rows(); ++i)
      for (std::size_t j = 0; j < w.cols(); ++j) os << w(i, j) << '\n';
    const auto& b = net.bias(l);
    for (std::size_t i = 0; i < b.size(); ++i) os << b[i] << '\n';
  }
  if (!os) throw NumericalError("save_mlp: stream write failed");
}

Mlp load_mlp(std::istream& is) {
  std::string magic, version;
  is >> magic >> version;
  if (!is || magic != "oic-mlp" || version != "v1") {
    throw NumericalError("load_mlp: bad magic/version header");
  }
  std::string sizes_tag;
  is >> sizes_tag;
  if (!is || sizes_tag != "sizes:") throw NumericalError("load_mlp: missing sizes");
  std::vector<std::size_t> sizes;
  {
    std::string line;
    std::getline(is, line);
    std::istringstream ls(line);
    std::size_t v;
    while (ls >> v) sizes.push_back(v);
  }
  if (sizes.size() < 2) throw NumericalError("load_mlp: need at least two layer sizes");

  Rng dummy(0);
  Mlp net(sizes, dummy);
  for (std::size_t l = 0; l < net.num_layers(); ++l) {
    auto& w = net.weight(l);
    for (std::size_t i = 0; i < w.rows(); ++i)
      for (std::size_t j = 0; j < w.cols(); ++j)
        if (!(is >> w(i, j))) throw NumericalError("load_mlp: truncated weights");
    auto& b = net.bias(l);
    for (std::size_t i = 0; i < b.size(); ++i)
      if (!(is >> b[i])) throw NumericalError("load_mlp: truncated biases");
  }
  return net;
}

void save_mlp_file(const Mlp& net, const std::string& path) {
  std::ofstream os(path);
  if (!os) throw NumericalError("save_mlp_file: cannot open " + path);
  save_mlp(net, os);
}

Mlp load_mlp_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw NumericalError("load_mlp_file: cannot open " + path);
  return load_mlp(is);
}

}  // namespace oic::rl
