#pragma once
/// \file dqn.hpp
/// Double deep Q-learning (van Hasselt et al. [24] in the paper), the
/// learner behind the DRL-based skipping decision of Sec. III-B.2.
///
/// The action set is discrete and tiny ({skip, run} = {0, 1} in the
/// framework), states are small dense vectors {x(t), w(t-r+1..t)}.  The
/// implementation therefore favours a transparent, fully deterministic
/// single-threaded design over throughput tricks.

#include <cstddef>

#include "common/random.hpp"
#include "rl/mlp.hpp"
#include "rl/optimizer.hpp"
#include "rl/replay.hpp"

namespace oic::rl {

/// Linearly decaying epsilon-greedy exploration schedule.
class EpsilonSchedule {
 public:
  /// Decay from `start` to `end` over `decay_steps` action selections.
  EpsilonSchedule(double start, double end, std::size_t decay_steps);

  /// Epsilon after `step` selections.
  double at(std::size_t step) const;

 private:
  double start_, end_;
  std::size_t decay_steps_;
};

/// DQN hyper-parameters.  Defaults mirror the scale of the paper's ACC agent.
struct DqnConfig {
  std::vector<std::size_t> hidden = {64, 64};  ///< hidden layer widths
  double learning_rate = 1e-3;
  double gamma = 0.95;                 ///< discount factor
  std::size_t batch_size = 32;
  std::size_t replay_capacity = 20000;
  std::size_t min_replay = 200;        ///< transitions before learning starts
  std::size_t target_sync_interval = 250;  ///< hard target-net sync period
  double epsilon_start = 1.0;
  double epsilon_end = 0.05;
  std::size_t epsilon_decay_steps = 5000;
  double grad_clip = 10.0;             ///< max-abs gradient clip (0 = off)
  /// Run minibatch updates through the batched forward/backward path
  /// (contiguous SoA minibatch, fused batched GEMM, zero steady-state
  /// allocation).  Bit-identical to the per-sample path -- `false` keeps
  /// the original per-transition loop for parity tests and ablations.
  bool batched = true;
};

/// Double DQN agent over a discrete action set {0, ..., num_actions-1}.
class DoubleDqn {
 public:
  /// Create an agent for `state_dim`-dimensional states and `num_actions`
  /// actions; network weights drawn from `rng`.
  DoubleDqn(std::size_t state_dim, std::size_t num_actions, DqnConfig config, Rng rng);

  /// Epsilon-greedy action (training mode); advances the exploration clock.
  int select_action(const linalg::Vector& state);

  /// Greedy action (evaluation mode); does not advance exploration.
  int greedy_action(const linalg::Vector& state) const;

  /// Greedy action through caller-owned scratch: allocation-free and safe
  /// for concurrent evaluation workers sharing one (const) agent, each with
  /// its own workspace.
  int greedy_action(const linalg::Vector& state, MlpWorkspace& ws) const;

  /// Q-values of the online network.
  linalg::Vector q_values(const linalg::Vector& state) const;

  /// Store a transition and perform one training step (once the replay
  /// buffer has warmed up).  Returns the TD loss of the minibatch, or 0
  /// while warming up.
  double observe(Transition t);

  /// Force a hard target-network sync (also happens automatically on the
  /// configured interval).
  void sync_target();

  /// Overwrite the online network's parameters (and re-sync the target) --
  /// the "deploy" path: load a serialized agent without retraining.
  /// Architecture must match.
  void load_online(const Mlp& net);

  /// Number of gradient updates performed.
  std::size_t train_steps() const { return train_steps_; }

  /// Number of action selections (exploration clock).
  std::size_t action_steps() const { return action_steps_; }

  /// Current exploration rate.
  double epsilon() const;

  /// Config in effect.
  const DqnConfig& config() const { return config_; }

  /// Online network (tests / serialization).
  const Mlp& online() const { return online_; }
  /// Target network (tests).
  const Mlp& target() const { return target_; }

 private:
  std::size_t state_dim_;
  std::size_t num_actions_;
  DqnConfig config_;
  Rng rng_;
  Mlp online_;
  Mlp target_;
  Adam optimizer_;
  ReplayBuffer replay_;
  EpsilonSchedule epsilon_schedule_;
  std::size_t action_steps_ = 0;
  std::size_t train_steps_ = 0;

  // Batched-update scratch, reused across minibatches (empty when
  // config_.batched is off).
  linalg::Matrix batch_states_;   ///< SoA minibatch: one state per row
  linalg::Matrix batch_next_;     ///< next states, same layout
  linalg::Matrix batch_dout_;     ///< per-sample dLoss/dQ rows
  std::vector<int> batch_actions_;
  std::vector<double> batch_rewards_;
  std::vector<unsigned char> batch_terminal_;
  BatchWorkspace ws_next_online_;
  BatchWorkspace ws_next_target_;
  BatchWorkspace ws_backward_;
  BatchForwardCache batch_cache_;
  Gradients grad_scratch_;

  double train_minibatch();
  double train_minibatch_batched();
};

}  // namespace oic::rl
