#include "rl/dqn.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace oic::rl {

using linalg::Vector;

EpsilonSchedule::EpsilonSchedule(double start, double end, std::size_t decay_steps)
    : start_(start), end_(end), decay_steps_(decay_steps) {
  OIC_REQUIRE(start >= 0.0 && start <= 1.0, "EpsilonSchedule: start out of range");
  OIC_REQUIRE(end >= 0.0 && end <= 1.0, "EpsilonSchedule: end out of range");
  OIC_REQUIRE(decay_steps >= 1, "EpsilonSchedule: decay_steps must be positive");
}

double EpsilonSchedule::at(std::size_t step) const {
  if (step >= decay_steps_) return end_;
  const double t = static_cast<double>(step) / static_cast<double>(decay_steps_);
  return start_ + t * (end_ - start_);
}

namespace {

std::vector<std::size_t> net_sizes(std::size_t in, const std::vector<std::size_t>& hidden,
                                   std::size_t out) {
  std::vector<std::size_t> sizes;
  sizes.push_back(in);
  sizes.insert(sizes.end(), hidden.begin(), hidden.end());
  sizes.push_back(out);
  return sizes;
}

std::size_t argmax(const Vector& q) {
  std::size_t best = 0;
  for (std::size_t i = 1; i < q.size(); ++i) {
    if (q[i] > q[best]) best = i;
  }
  return best;
}

}  // namespace

DoubleDqn::DoubleDqn(std::size_t state_dim, std::size_t num_actions, DqnConfig config,
                     Rng rng)
    : state_dim_(state_dim),
      num_actions_(num_actions),
      config_(std::move(config)),
      rng_(rng),
      online_(net_sizes(state_dim, config_.hidden, num_actions), rng_),
      target_(net_sizes(state_dim, config_.hidden, num_actions), rng_),
      optimizer_(config_.learning_rate),
      replay_(config_.replay_capacity),
      epsilon_schedule_(config_.epsilon_start, config_.epsilon_end,
                        config_.epsilon_decay_steps) {
  OIC_REQUIRE(num_actions >= 2, "DoubleDqn: need at least two actions");
  OIC_REQUIRE(state_dim >= 1, "DoubleDqn: state dimension must be positive");
  target_.copy_from(online_);
}

int DoubleDqn::select_action(const Vector& state) {
  OIC_REQUIRE(state.size() == state_dim_, "DoubleDqn::select_action: state mismatch");
  const double eps = epsilon_schedule_.at(action_steps_);
  ++action_steps_;
  if (rng_.bernoulli(eps)) {
    return rng_.uniform_int(0, static_cast<int>(num_actions_) - 1);
  }
  return static_cast<int>(argmax(online_.forward(state)));
}

int DoubleDqn::greedy_action(const Vector& state) const {
  OIC_REQUIRE(state.size() == state_dim_, "DoubleDqn::greedy_action: state mismatch");
  return static_cast<int>(argmax(online_.forward(state)));
}

int DoubleDqn::greedy_action(const Vector& state, MlpWorkspace& ws) const {
  OIC_REQUIRE(state.size() == state_dim_, "DoubleDqn::greedy_action: state mismatch");
  return static_cast<int>(argmax(online_.forward_into(state, ws)));
}

Vector DoubleDqn::q_values(const Vector& state) const {
  OIC_REQUIRE(state.size() == state_dim_, "DoubleDqn::q_values: state mismatch");
  return online_.forward(state);
}

double DoubleDqn::observe(Transition t) {
  OIC_REQUIRE(t.state.size() == state_dim_, "DoubleDqn::observe: state mismatch");
  OIC_REQUIRE(t.next_state.size() == state_dim_,
              "DoubleDqn::observe: next-state mismatch");
  OIC_REQUIRE(t.action >= 0 && t.action < static_cast<int>(num_actions_),
              "DoubleDqn::observe: action out of range");
  replay_.add(std::move(t));
  if (replay_.size() < std::max<std::size_t>(config_.min_replay, config_.batch_size)) {
    return 0.0;
  }
  const double loss = config_.batched ? train_minibatch_batched() : train_minibatch();
  if (config_.target_sync_interval > 0 &&
      train_steps_ % config_.target_sync_interval == 0) {
    sync_target();
  }
  return loss;
}

double DoubleDqn::train_minibatch() {
  const auto batch = replay_.sample(config_.batch_size, rng_);
  Gradients grad = online_.zero_gradients();
  double loss = 0.0;

  for (const Transition* tr : batch) {
    ForwardCache cache;
    const Vector q = online_.forward_cached(tr->state, cache);

    // Double-DQN target: evaluate the online argmax under the target net.
    double target_value = tr->reward;
    if (!tr->terminal) {
      const Vector q_next_online = online_.forward(tr->next_state);
      const std::size_t a_star = argmax(q_next_online);
      const Vector q_next_target = target_.forward(tr->next_state);
      target_value += config_.gamma * q_next_target[a_star];
    }

    const double td = q[static_cast<std::size_t>(tr->action)] - target_value;
    loss += td * td;

    // dLoss/dq is nonzero only at the taken action (MSE/2 convention).
    Vector dout(q.size());
    dout[static_cast<std::size_t>(tr->action)] = td;
    grad.add(online_.backward(cache, dout));
  }

  grad.scale(1.0 / static_cast<double>(batch.size()));
  if (config_.grad_clip > 0.0) {
    const double n = grad.norm_inf();
    if (n > config_.grad_clip) grad.scale(config_.grad_clip / n);
  }
  optimizer_.step(online_, grad);
  ++train_steps_;
  return loss / static_cast<double>(batch.size());
}

double DoubleDqn::train_minibatch_batched() {
  // Same update as train_minibatch, streamed through the batched kernels:
  // one contiguous SoA minibatch, three batched forwards, one batched
  // backward.  All accumulation orders match the per-sample path (see
  // linalg/kernels.hpp), so the resulting weights are bit-identical; the
  // difference is purely the per-sample allocation traffic this avoids
  // (three allocating forwards plus a full Gradients per transition).
  const auto batch = replay_.sample(config_.batch_size, rng_);
  const std::size_t bsz = batch.size();
  if (batch_states_.rows() != bsz || batch_states_.cols() != state_dim_) {
    batch_states_ = linalg::Matrix(bsz, state_dim_);
    batch_next_ = linalg::Matrix(bsz, state_dim_);
    batch_dout_ = linalg::Matrix(bsz, num_actions_);
    batch_actions_.assign(bsz, 0);
    batch_rewards_.assign(bsz, 0.0);
    batch_terminal_.assign(bsz, 0);
  }
  for (std::size_t b = 0; b < bsz; ++b) {
    const Transition& tr = *batch[b];
    std::copy(tr.state.data().begin(), tr.state.data().end(),
              batch_states_.row_data(b));
    std::copy(tr.next_state.data().begin(), tr.next_state.data().end(),
              batch_next_.row_data(b));
    batch_actions_[b] = tr.action;
    batch_rewards_[b] = tr.reward;
    batch_terminal_[b] = tr.terminal ? 1 : 0;
  }

  const linalg::Matrix& q_next_online =
      online_.forward_batch_into(batch_next_, ws_next_online_);
  const linalg::Matrix& q_next_target =
      target_.forward_batch_into(batch_next_, ws_next_target_);
  const linalg::Matrix& q = online_.forward_batch_cached(batch_states_, batch_cache_);

  std::fill(batch_dout_.data(), batch_dout_.data() + bsz * num_actions_, 0.0);
  double loss = 0.0;
  for (std::size_t b = 0; b < bsz; ++b) {
    double target_value = batch_rewards_[b];
    if (!batch_terminal_[b]) {
      // Double-DQN target: evaluate the online argmax under the target net.
      const double* row = q_next_online.row_data(b);
      std::size_t a_star = 0;
      for (std::size_t a = 1; a < num_actions_; ++a) {
        if (row[a] > row[a_star]) a_star = a;
      }
      target_value += config_.gamma * q_next_target(b, a_star);
    }
    const std::size_t a_taken = static_cast<std::size_t>(batch_actions_[b]);
    const double td = q(b, a_taken) - target_value;
    loss += td * td;
    batch_dout_(b, a_taken) = td;
  }

  if (grad_scratch_.dw.empty()) grad_scratch_ = online_.zero_gradients();
  grad_scratch_.zero();
  online_.backward_batch(batch_cache_, batch_dout_, ws_backward_, grad_scratch_);

  grad_scratch_.scale(1.0 / static_cast<double>(bsz));
  if (config_.grad_clip > 0.0) {
    const double n = grad_scratch_.norm_inf();
    if (n > config_.grad_clip) grad_scratch_.scale(config_.grad_clip / n);
  }
  optimizer_.step(online_, grad_scratch_);
  ++train_steps_;
  return loss / static_cast<double>(bsz);
}

void DoubleDqn::sync_target() { target_.copy_from(online_); }

void DoubleDqn::load_online(const Mlp& net) {
  online_.copy_from(net);
  target_.copy_from(net);
}

double DoubleDqn::epsilon() const { return epsilon_schedule_.at(action_steps_); }

}  // namespace oic::rl
