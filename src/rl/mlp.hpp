#pragma once
/// \file mlp.hpp
/// Minimal fully-connected network with ReLU hidden activations and a
/// linear output layer, with hand-written backpropagation.  Sized for the
/// paper's DQN: the ACC agent maps {x(t), w-history} (3 inputs) to two
/// Q-values, so a dependency-free dense net is the right tool.

#include <cstddef>
#include <vector>

#include "common/random.hpp"
#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"

namespace oic::rl {

/// Per-layer parameter gradients produced by Mlp::backward.
struct Gradients {
  std::vector<linalg::Matrix> dw;
  std::vector<linalg::Vector> db;

  /// Accumulate another gradient (for minibatch averaging).
  void add(const Gradients& other);
  /// Scale all entries (e.g. by 1/batch).
  void scale(double s);
  /// Reset every entry to +0.0 (reuse a buffer across minibatches).
  void zero();
  /// Max-abs entry across all blocks (for gradient-clipping and tests).
  double norm_inf() const;
};

/// Forward-pass activations retained for backprop.
struct ForwardCache {
  std::vector<linalg::Vector> pre;   ///< pre-activations per layer
  std::vector<linalg::Vector> post;  ///< post-activations (post[0] = input)
};

/// Scratch buffers for the allocation-free forward pass.  One workspace per
/// thread; it grows to the widest layer on first use and never shrinks.
struct MlpWorkspace {
  std::vector<double> ping;
  std::vector<double> pong;
  linalg::Vector out;  ///< forward_into's result lives here
};

/// Scratch for the batched (minibatch) passes: layer activations ping-pong
/// through two batch-by-widest buffers; backward ping-pongs deltas the same
/// way.  Sized on first use for the largest (batch, net) seen, then reused
/// allocation-free.
struct BatchWorkspace {
  linalg::Matrix ping;   ///< forward activations (batch x widest layer)
  linalg::Matrix pong;
  linalg::Matrix out;    ///< forward_batch_into's result (batch x out_dim)
  linalg::Matrix delta;  ///< backward dLoss/d pre-activation ping
  linalg::Matrix delta_prev;  ///< backward delta pong
};

/// Batched forward activations retained for backward_batch: one matrix per
/// layer, one sample per row (post[0] = the input batch).  Shapes are exact
/// per layer so backward can stream them without stride bookkeeping.
struct BatchForwardCache {
  std::vector<linalg::Matrix> pre;
  std::vector<linalg::Matrix> post;
};

/// Dense feed-forward network: sizes = {in, h1, ..., out}.
class Mlp {
 public:
  /// He-initialized network; biases start at zero.
  Mlp(std::vector<std::size_t> sizes, Rng& rng);

  /// Layer sizes as given at construction.
  const std::vector<std::size_t>& sizes() const { return sizes_; }

  /// Plain inference.
  linalg::Vector forward(const linalg::Vector& in) const;

  /// Inference into caller-owned buffers: no allocation once `ws` has
  /// warmed up (fused GEMV+bias+ReLU per layer, ping-pong scratch).  The
  /// returned reference aliases ws.out and is bit-identical to forward().
  const linalg::Vector& forward_into(const linalg::Vector& in, MlpWorkspace& ws) const;

  /// Inference that records activations for a subsequent backward().
  linalg::Vector forward_cached(const linalg::Vector& in, ForwardCache& cache) const;

  /// Backpropagate dLoss/dOutput through the cached activations; returns
  /// parameter gradients (does not modify the network).
  Gradients backward(const ForwardCache& cache, const linalg::Vector& dout) const;

  // ---- batched (minibatch) passes -----------------------------------------
  // One sample per row of `in` (in.cols() == input dim).  Row r of every
  // result is bit-identical to the corresponding per-sample pass on row r:
  // the batched kernels reuse the per-sample accumulation order exactly
  // (see linalg/kernels.hpp), they just stream the whole minibatch through
  // fused loops with zero steady-state allocation.

  /// Batched inference; the returned reference aliases ws.out (batch rows,
  /// output-dim columns).
  const linalg::Matrix& forward_batch_into(const linalg::Matrix& in,
                                           BatchWorkspace& ws) const;

  /// Batched inference recording per-layer activations for backward_batch.
  /// Returns the output batch (aliases cache.post.back()).
  const linalg::Matrix& forward_batch_cached(const linalg::Matrix& in,
                                             BatchForwardCache& cache) const;

  /// Backpropagate a batch of output gradients through the cached
  /// activations, *accumulating* into `g` (callers zero() it first).  The
  /// result is bit-identical to backward()-ing each row and Gradients::add-
  /// ing the per-sample gradients in row order.
  void backward_batch(const BatchForwardCache& cache, const linalg::Matrix& dout,
                      BatchWorkspace& ws, Gradients& g) const;

  /// Zero-initialized gradient buffer with this network's shapes.
  Gradients zero_gradients() const;

  /// Overwrite parameters from another network of identical shape (target-
  /// network sync in DQN).
  void copy_from(const Mlp& other);

  /// Soft update: theta <- tau * other + (1 - tau) * theta.
  void soft_update_from(const Mlp& other, double tau);

  /// Number of layers (weight matrices).
  std::size_t num_layers() const { return w_.size(); }
  /// Weight matrix of layer l (out-by-in).
  const linalg::Matrix& weight(std::size_t l) const { return w_[l]; }
  linalg::Matrix& weight(std::size_t l) { return w_[l]; }
  /// Bias vector of layer l.
  const linalg::Vector& bias(std::size_t l) const { return b_[l]; }
  linalg::Vector& bias(std::size_t l) { return b_[l]; }

  /// Total scalar parameter count.
  std::size_t num_params() const;

 private:
  std::vector<std::size_t> sizes_;
  std::vector<linalg::Matrix> w_;
  std::vector<linalg::Vector> b_;
};

}  // namespace oic::rl
