#pragma once
/// \file mlp.hpp
/// Minimal fully-connected network with ReLU hidden activations and a
/// linear output layer, with hand-written backpropagation.  Sized for the
/// paper's DQN: the ACC agent maps {x(t), w-history} (3 inputs) to two
/// Q-values, so a dependency-free dense net is the right tool.

#include <cstddef>
#include <vector>

#include "common/random.hpp"
#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"

namespace oic::rl {

/// Per-layer parameter gradients produced by Mlp::backward.
struct Gradients {
  std::vector<linalg::Matrix> dw;
  std::vector<linalg::Vector> db;

  /// Accumulate another gradient (for minibatch averaging).
  void add(const Gradients& other);
  /// Scale all entries (e.g. by 1/batch).
  void scale(double s);
  /// Max-abs entry across all blocks (for gradient-clipping and tests).
  double norm_inf() const;
};

/// Forward-pass activations retained for backprop.
struct ForwardCache {
  std::vector<linalg::Vector> pre;   ///< pre-activations per layer
  std::vector<linalg::Vector> post;  ///< post-activations (post[0] = input)
};

/// Scratch buffers for the allocation-free forward pass.  One workspace per
/// thread; it grows to the widest layer on first use and never shrinks.
struct MlpWorkspace {
  std::vector<double> ping;
  std::vector<double> pong;
  linalg::Vector out;  ///< forward_into's result lives here
};

/// Dense feed-forward network: sizes = {in, h1, ..., out}.
class Mlp {
 public:
  /// He-initialized network; biases start at zero.
  Mlp(std::vector<std::size_t> sizes, Rng& rng);

  /// Layer sizes as given at construction.
  const std::vector<std::size_t>& sizes() const { return sizes_; }

  /// Plain inference.
  linalg::Vector forward(const linalg::Vector& in) const;

  /// Inference into caller-owned buffers: no allocation once `ws` has
  /// warmed up (fused GEMV+bias+ReLU per layer, ping-pong scratch).  The
  /// returned reference aliases ws.out and is bit-identical to forward().
  const linalg::Vector& forward_into(const linalg::Vector& in, MlpWorkspace& ws) const;

  /// Inference that records activations for a subsequent backward().
  linalg::Vector forward_cached(const linalg::Vector& in, ForwardCache& cache) const;

  /// Backpropagate dLoss/dOutput through the cached activations; returns
  /// parameter gradients (does not modify the network).
  Gradients backward(const ForwardCache& cache, const linalg::Vector& dout) const;

  /// Zero-initialized gradient buffer with this network's shapes.
  Gradients zero_gradients() const;

  /// Overwrite parameters from another network of identical shape (target-
  /// network sync in DQN).
  void copy_from(const Mlp& other);

  /// Soft update: theta <- tau * other + (1 - tau) * theta.
  void soft_update_from(const Mlp& other, double tau);

  /// Number of layers (weight matrices).
  std::size_t num_layers() const { return w_.size(); }
  /// Weight matrix of layer l (out-by-in).
  const linalg::Matrix& weight(std::size_t l) const { return w_[l]; }
  linalg::Matrix& weight(std::size_t l) { return w_[l]; }
  /// Bias vector of layer l.
  const linalg::Vector& bias(std::size_t l) const { return b_[l]; }
  linalg::Vector& bias(std::size_t l) { return b_[l]; }

  /// Total scalar parameter count.
  std::size_t num_params() const;

 private:
  std::vector<std::size_t> sizes_;
  std::vector<linalg::Matrix> w_;
  std::vector<linalg::Vector> b_;
};

}  // namespace oic::rl
