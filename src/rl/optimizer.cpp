#include "rl/optimizer.hpp"

#include <cmath>

#include "common/error.hpp"

namespace oic::rl {

Sgd::Sgd(double learning_rate, double momentum)
    : lr_(learning_rate), momentum_(momentum) {
  OIC_REQUIRE(learning_rate > 0.0, "Sgd: learning rate must be positive");
  OIC_REQUIRE(momentum >= 0.0 && momentum < 1.0, "Sgd: momentum out of range");
}

void Sgd::step(Mlp& net, const Gradients& g) {
  if (!initialized_) {
    velocity_ = net.zero_gradients();
    initialized_ = true;
  }
  OIC_REQUIRE(velocity_.dw.size() == g.dw.size(), "Sgd::step: gradient shape mismatch");
  for (std::size_t l = 0; l < g.dw.size(); ++l) {
    velocity_.dw[l] = momentum_ * velocity_.dw[l] + g.dw[l];
    velocity_.db[l] = momentum_ * velocity_.db[l] + g.db[l];
    net.weight(l) -= lr_ * velocity_.dw[l];
    net.bias(l) -= lr_ * velocity_.db[l];
  }
}

Adam::Adam(double learning_rate, double beta1, double beta2, double eps)
    : lr_(learning_rate), beta1_(beta1), beta2_(beta2), eps_(eps) {
  OIC_REQUIRE(learning_rate > 0.0, "Adam: learning rate must be positive");
  OIC_REQUIRE(beta1 >= 0.0 && beta1 < 1.0, "Adam: beta1 out of range");
  OIC_REQUIRE(beta2 >= 0.0 && beta2 < 1.0, "Adam: beta2 out of range");
}

void Adam::step(Mlp& net, const Gradients& g) {
  if (!initialized_) {
    m_ = net.zero_gradients();
    v_ = net.zero_gradients();
    initialized_ = true;
  }
  OIC_REQUIRE(m_.dw.size() == g.dw.size(), "Adam::step: gradient shape mismatch");
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (std::size_t l = 0; l < g.dw.size(); ++l) {
    auto& w = net.weight(l);
    auto& b = net.bias(l);
    for (std::size_t i = 0; i < w.rows(); ++i) {
      for (std::size_t j = 0; j < w.cols(); ++j) {
        const double grad = g.dw[l](i, j);
        double& m = m_.dw[l](i, j);
        double& v = v_.dw[l](i, j);
        m = beta1_ * m + (1.0 - beta1_) * grad;
        v = beta2_ * v + (1.0 - beta2_) * grad * grad;
        w(i, j) -= lr_ * (m / bc1) / (std::sqrt(v / bc2) + eps_);
      }
    }
    for (std::size_t i = 0; i < b.size(); ++i) {
      const double grad = g.db[l][i];
      double& m = m_.db[l][i];
      double& v = v_.db[l][i];
      m = beta1_ * m + (1.0 - beta1_) * grad;
      v = beta2_ * v + (1.0 - beta2_) * grad * grad;
      b[i] -= lr_ * (m / bc1) / (std::sqrt(v / bc2) + eps_);
    }
  }
}

}  // namespace oic::rl
