#include "poly/support_sum.hpp"

#include "common/error.hpp"
#include "poly/support_solver.hpp"

namespace oic::poly {

using linalg::Matrix;
using linalg::Vector;

void SupportSum::add_term(Matrix m, HPolytope w) {
  OIC_REQUIRE(m.cols() == w.dim(), "SupportSum::add_term: map domain mismatch");
  if (!ms_.empty())
    OIC_REQUIRE(m.rows() == ms_.front().rows(),
                "SupportSum::add_term: term range dimension mismatch");
  ms_.push_back(std::move(m));
  ws_.push_back(std::move(w));
}

void SupportSum::set_scale(double s) {
  OIC_REQUIRE(s > 0.0, "SupportSum::set_scale: scale must be positive");
  scale_ = s;
}

double SupportSum::support(const Vector& d) const {
  OIC_REQUIRE(!ms_.empty(), "SupportSum::support: empty chain");
  OIC_REQUIRE(d.size() == dim(), "SupportSum::support: dimension mismatch");
  double h = 0.0;
  for (std::size_t i = 0; i < ms_.size(); ++i) {
    const Vector dt = linalg::transpose_mul(ms_[i], d);  // M^T d
    const Support s = ws_[i].support(dt);
    OIC_REQUIRE(s.feasible, "SupportSum::support: empty term polytope");
    if (!s.bounded) throw NumericalError("SupportSum::support: unbounded term");
    h += s.value;
  }
  return scale_ * h;
}

HPolytope SupportSum::outer_polytope(const std::vector<Vector>& dirs) const {
  OIC_REQUIRE(!ms_.empty(), "SupportSum::outer_polytope: empty chain");
  OIC_REQUIRE(!dirs.empty(), "SupportSum::outer_polytope: need directions");
  Matrix a(dirs.size(), dim());
  for (std::size_t i = 0; i < dirs.size(); ++i) {
    OIC_REQUIRE(dirs[i].size() == dim(),
                "SupportSum::outer_polytope: dimension mismatch");
    a.set_row(i, dirs[i]);
  }
  // Term-major batching: one SupportSolver per term answers all directions
  // before moving on, so each term's constraint system is prepared once
  // instead of dirs.size() times.  The per-direction accumulation still
  // runs in term order (acc[i] += h_t(d_i) for t = 0,1,...), which keeps
  // every offset bit-identical to the direction-major support() loop.
  Vector acc(dirs.size());
  for (std::size_t t = 0; t < ms_.size(); ++t) {
    Matrix td(dirs.size(), ms_[t].cols());
    for (std::size_t i = 0; i < dirs.size(); ++i) {
      td.set_row(i, linalg::transpose_mul(ms_[t], dirs[i]));  // M^T d_i
    }
    SupportSolver solver(ws_[t]);
    const std::vector<Support> sup = solver.support_batch(td);
    for (std::size_t i = 0; i < dirs.size(); ++i) {
      OIC_REQUIRE(sup[i].feasible, "SupportSum::support: empty term polytope");
      if (!sup[i].bounded)
        throw NumericalError("SupportSum::support: unbounded term");
      acc[i] += sup[i].value;
    }
  }
  Vector b(dirs.size());
  for (std::size_t i = 0; i < dirs.size(); ++i) b[i] = scale_ * acc[i];
  return HPolytope(std::move(a), std::move(b));
}

std::size_t SupportSum::dim() const { return ms_.empty() ? 0 : ms_.front().rows(); }

}  // namespace oic::poly
