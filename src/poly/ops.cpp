#include "poly/ops.hpp"

#include <cmath>

#include "common/error.hpp"
#include "poly/fourier_motzkin.hpp"

namespace oic::poly {

using linalg::Matrix;
using linalg::Vector;

namespace {

/// Minkowski sum via the graph construction in (x, s) space with s = x + y:
/// { s | exists x : A_p x <= b_p, A_q (s - x) <= b_q }, projected onto s.
HPolytope minkowski_sum_projection(const HPolytope& p, const HPolytope& q) {
  const std::size_t n = p.dim();
  // Variables: (s, x) stacked, dimension 2n; keep the first n.
  Matrix a(p.num_constraints() + q.num_constraints(), 2 * n);
  Vector b(p.num_constraints() + q.num_constraints());
  for (std::size_t i = 0; i < p.num_constraints(); ++i) {
    for (std::size_t j = 0; j < n; ++j) a(i, n + j) = p.a()(i, j);
    b[i] = p.b()[i];
  }
  for (std::size_t i = 0; i < q.num_constraints(); ++i) {
    const std::size_t r = p.num_constraints() + i;
    for (std::size_t j = 0; j < n; ++j) {
      a(r, j) = q.a()(i, j);       // on s
      a(r, n + j) = -q.a()(i, j);  // on -x
    }
    b[r] = q.b()[i];
  }
  return project_prefix(HPolytope(std::move(a), std::move(b)), n);
}

}  // namespace

HPolytope minkowski_sum(const HPolytope& p, const HPolytope& q) {
  OIC_REQUIRE(p.dim() == q.dim(), "minkowski_sum: dimension mismatch");
  OIC_REQUIRE(p.dim() >= 1, "minkowski_sum: zero-dimensional operands");
  if (p.dim() == 2) {
    // Fast exact path: sum of vertex clouds, then the hull of the sums.
    const auto vp = p.vertices_2d();
    const auto vq = q.vertices_2d();
    OIC_REQUIRE(!vp.empty() && !vq.empty(),
                "minkowski_sum: planar operands must be bounded and non-empty");
    std::vector<Vector> sums;
    sums.reserve(vp.size() * vq.size());
    for (const auto& u : vp)
      for (const auto& v : vq) sums.push_back(u + v);
    return HPolytope::from_vertices_2d(sums);
  }
  return minkowski_sum_projection(p, q);
}

HPolytope affine_image_projection(const HPolytope& p, const Matrix& m,
                                  const Vector& t) {
  OIC_REQUIRE(m.cols() == p.dim(), "affine_image_projection: map domain mismatch");
  OIC_REQUIRE(t.size() == m.rows(), "affine_image_projection: offset mismatch");
  const std::size_t n = p.dim();
  const std::size_t k = m.rows();
  // Variables (y, x); constraints A x <= b plus y - Mx = t as two inequalities.
  const std::size_t rows = p.num_constraints() + 2 * k;
  Matrix a(rows, k + n);
  Vector b(rows);
  for (std::size_t i = 0; i < p.num_constraints(); ++i) {
    for (std::size_t j = 0; j < n; ++j) a(i, k + j) = p.a()(i, j);
    b[i] = p.b()[i];
  }
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t r1 = p.num_constraints() + 2 * i;
    const std::size_t r2 = r1 + 1;
    a(r1, i) = 1.0;
    a(r2, i) = -1.0;
    for (std::size_t j = 0; j < n; ++j) {
      a(r1, k + j) = -m(i, j);
      a(r2, k + j) = m(i, j);
    }
    b[r1] = t[i];
    b[r2] = -t[i];
  }
  return project_prefix(HPolytope(std::move(a), std::move(b)), k);
}

std::vector<Vector> uniform_directions_2d(std::size_t count) {
  OIC_REQUIRE(count >= 3, "uniform_directions_2d: need at least 3 directions");
  std::vector<Vector> dirs;
  dirs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const double th = 2.0 * M_PI * static_cast<double>(i) / static_cast<double>(count);
    dirs.push_back(Vector{std::cos(th), std::sin(th)});
  }
  return dirs;
}

std::vector<Vector> box_diag_directions(std::size_t dim) {
  OIC_REQUIRE(dim >= 1, "box_diag_directions: dimension must be positive");
  std::vector<Vector> dirs;
  // Axis directions.
  for (std::size_t j = 0; j < dim; ++j) {
    Vector d(dim);
    d[j] = 1.0;
    dirs.push_back(d);
    d[j] = -1.0;
    dirs.push_back(d);
  }
  // All +-1 diagonals (2^dim of them), skipping dim == 1 where they coincide
  // with the axes.
  if (dim >= 2) {
    const std::size_t total = std::size_t{1} << dim;
    for (std::size_t mask = 0; mask < total; ++mask) {
      Vector d(dim);
      for (std::size_t j = 0; j < dim; ++j) d[j] = ((mask >> j) & 1u) ? 1.0 : -1.0;
      const double nrm = d.norm2();
      d /= nrm;
      dirs.push_back(d);
    }
  }
  return dirs;
}

}  // namespace oic::poly
