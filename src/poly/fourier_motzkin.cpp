#include "poly/fourier_motzkin.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace oic::poly {

using linalg::Matrix;
using linalg::Vector;

HPolytope eliminate_variable(const HPolytope& p, std::size_t var,
                             const FourierMotzkinOptions& opt) {
  OIC_REQUIRE(var < p.dim(), "eliminate_variable: variable out of range");
  const std::size_t n = p.dim();
  const std::size_t m = p.num_constraints();

  // Classify rows by the sign of the coefficient on `var`.
  std::vector<std::size_t> pos, neg, zer;
  for (std::size_t i = 0; i < m; ++i) {
    const double c = p.a()(i, var);
    if (c > opt.zero_tol)
      pos.push_back(i);
    else if (c < -opt.zero_tol)
      neg.push_back(i);
    else
      zer.push_back(i);
  }

  const std::size_t out_rows = zer.size() + pos.size() * neg.size();
  OIC_CHECK(out_rows <= opt.max_rows,
            "eliminate_variable: intermediate row count exceeds cap");

  Matrix a(out_rows, n - 1);
  Vector b(out_rows);
  std::size_t r = 0;

  auto copy_without_var = [&](std::size_t src_row, double scale, std::size_t dst_row) {
    std::size_t dst_col = 0;
    for (std::size_t c = 0; c < n; ++c) {
      if (c == var) continue;
      a(dst_row, dst_col) += scale * p.a()(src_row, c);
      ++dst_col;
    }
  };

  for (std::size_t i : zer) {
    copy_without_var(i, 1.0, r);
    b[r] = p.b()[i];
    ++r;
  }
  // Combine p (coef > 0) with q (coef < 0):
  //   (1/cp) row_p + (-1/cq) row_q eliminates the variable.
  for (std::size_t ip : pos) {
    const double cp = p.a()(ip, var);
    for (std::size_t iq : neg) {
      const double cq = p.a()(iq, var);
      copy_without_var(ip, 1.0 / cp, r);
      copy_without_var(iq, -1.0 / cq, r);
      b[r] = p.b()[ip] / cp - p.b()[iq] / cq;
      ++r;
    }
  }
  OIC_CHECK(r == out_rows, "eliminate_variable: row bookkeeping mismatch");

  HPolytope out(std::move(a), std::move(b));
  if (opt.prune) out = out.remove_redundancy();
  return out;
}

HPolytope project(const HPolytope& p, const std::vector<std::size_t>& keep,
                  const FourierMotzkinOptions& opt) {
  const std::size_t n = p.dim();
  for (std::size_t k : keep)
    OIC_REQUIRE(k < n, "project: kept coordinate out of range");

  // Reorder columns so the kept coordinates come first in the requested
  // order, then eliminate the tail one variable at a time (from the last
  // column inward, so indices stay stable).
  std::vector<bool> kept(n, false);
  for (std::size_t k : keep) {
    OIC_REQUIRE(!kept[k], "project: duplicate kept coordinate");
    kept[k] = true;
  }
  std::vector<std::size_t> order = keep;
  for (std::size_t j = 0; j < n; ++j)
    if (!kept[j]) order.push_back(j);

  Matrix a(p.num_constraints(), n);
  for (std::size_t newc = 0; newc < n; ++newc) a.set_col(newc, p.a().col(order[newc]));
  HPolytope q(std::move(a), p.b());

  for (std::size_t col = n; col-- > keep.size();) {
    q = eliminate_variable(q, col, opt);
  }
  return q;
}

HPolytope project_prefix(const HPolytope& p, std::size_t k,
                         const FourierMotzkinOptions& opt) {
  OIC_REQUIRE(k <= p.dim(), "project_prefix: prefix longer than dimension");
  std::vector<std::size_t> keep(k);
  for (std::size_t i = 0; i < k; ++i) keep[i] = i;
  return project(p, keep, opt);
}

}  // namespace oic::poly
