#pragma once
/// \file ops.hpp
/// Higher-level polytope operations composed from HPolytope primitives and
/// Fourier-Motzkin projection: Minkowski sums, general affine images, and
/// template-direction outer approximations.

#include <vector>

#include "poly/hpolytope.hpp"

namespace oic::poly {

/// Exact Minkowski sum P (+) Q.
///
/// Planar inputs use the fast path (vertex clouds + convex hull); higher
/// dimensions fall back to projecting { (x, y) | y - x in Q_shifted ... }
/// via Fourier-Motzkin.  Both operands must be bounded.
HPolytope minkowski_sum(const HPolytope& p, const HPolytope& q);

/// Exact image of P under an arbitrary affine map x -> M x + t (M may be
/// rectangular or singular), computed by projecting the graph polytope
/// { (y, x) | A x <= b, y = M x + t } onto y.
HPolytope affine_image_projection(const HPolytope& p, const linalg::Matrix& m,
                                  const linalg::Vector& t);

/// Outer approximation of any support-function-evaluable set by template
/// directions: { x | d_i . x <= h(d_i) }.  `support_fn` must return the
/// exact support value in the given direction.
template <typename SupportFn>
HPolytope template_outer(std::size_t dim, const std::vector<linalg::Vector>& dirs,
                         SupportFn&& support_fn) {
  linalg::Matrix a(dirs.size(), dim);
  linalg::Vector b(dirs.size());
  for (std::size_t i = 0; i < dirs.size(); ++i) {
    a.set_row(i, dirs[i]);
    b[i] = support_fn(dirs[i]);
  }
  return HPolytope(std::move(a), std::move(b));
}

/// `count` unit directions uniformly spaced on the plane (count >= 3).
std::vector<linalg::Vector> uniform_directions_2d(std::size_t count);

/// The +/- axis directions plus all +/-1 diagonal sign patterns in R^n
/// (octahedral template), a good default template in low dimension.
std::vector<linalg::Vector> box_diag_directions(std::size_t dim);

}  // namespace oic::poly
