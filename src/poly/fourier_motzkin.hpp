#pragma once
/// \file fourier_motzkin.hpp
/// Fourier-Motzkin variable elimination (polytope projection).
///
/// Projection is the workhorse behind two pieces of the paper's set
/// pipeline: the Pre-operator with an existentially quantified input
/// ({x | exists u in U : A x + B u in Y}) used to compute the RMPC feasible
/// region (Prop. 1), and exact Minkowski sums / affine images of
/// low-dimensional polytopes.  Each elimination step is followed by LP
/// redundancy removal to keep the row count from exploding.

#include <cstddef>
#include <vector>

#include "poly/hpolytope.hpp"

namespace oic::poly {

/// Options for the eliminator.
struct FourierMotzkinOptions {
  /// Remove redundant rows after each elimination step.  Disable only in
  /// micro-benchmarks; real use without pruning grows doubly exponentially.
  bool prune = true;
  /// Coefficient magnitudes below this are treated as zero when classifying
  /// rows by the sign of the eliminated variable.
  double zero_tol = 1e-11;
  /// Safety cap on the intermediate row count; exceeded => InternalError.
  std::size_t max_rows = 100000;
};

/// Eliminate the single variable `var` from P, producing its projection
/// onto the remaining coordinates (dimension drops by one, coordinate
/// order of the remaining variables is preserved).
HPolytope eliminate_variable(const HPolytope& p, std::size_t var,
                             const FourierMotzkinOptions& opt = {});

/// Project P onto the coordinates listed in `keep` (in the given order),
/// eliminating every other variable.
HPolytope project(const HPolytope& p, const std::vector<std::size_t>& keep,
                  const FourierMotzkinOptions& opt = {});

/// Project onto the first `k` coordinates.
HPolytope project_prefix(const HPolytope& p, std::size_t k,
                         const FourierMotzkinOptions& opt = {});

}  // namespace oic::poly
