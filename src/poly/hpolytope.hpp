#pragma once
/// \file hpolytope.hpp
/// Convex polyhedra in halfspace representation: P = { x | A x <= b }.
///
/// Every safe set in the paper (X, the robust invariant XI, the strengthened
/// set X', the MPC's tightened constraint sets and terminal set) is such a
/// polytope, and every set operation the paper needs (Sec. III-A) reduces to
/// LPs over this representation.

#include <cstddef>
#include <iosfwd>
#include <optional>

#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"

namespace oic::poly {

/// Result of a support-function evaluation  h_P(d) = max { d.x | x in P }.
struct Support {
  bool bounded = false;     ///< false when the LP is unbounded in direction d
  bool feasible = true;     ///< false when P is empty
  double value = 0.0;       ///< h_P(d), valid when bounded && feasible
  linalg::Vector maximizer; ///< an argmax, valid when bounded && feasible
};

/// Chebyshev ball: the largest inscribed ball's center and radius.
struct ChebyshevBall {
  bool feasible = false;  ///< false when the polytope is empty
  linalg::Vector center;
  double radius = 0.0;    ///< negative radius never returned; 0 => flat/empty interior
};

/// A convex polytope (possibly unbounded polyhedron) { x | A x <= b }.
///
/// The representation is intentionally not kept minimal on every mutation;
/// call remove_redundancy() after composing many operations.  All queries
/// are exact up to LP tolerances.
class HPolytope {
 public:
  /// The empty 0-dimensional polytope.
  HPolytope() = default;

  /// Construct from A (m-by-n) and b (m).  Rows with all-zero coefficients
  /// are rejected unless their rhs is non-negative (0 <= b is trivially
  /// true) -- a 0 <= b row with b < 0 denotes the empty set and is kept.
  HPolytope(linalg::Matrix a, linalg::Vector b);

  /// Whole space R^n (no constraints).
  static HPolytope universe(std::size_t dim);
  /// Axis-aligned box given by per-coordinate bounds.
  static HPolytope box(const linalg::Vector& lo, const linalg::Vector& hi);
  /// Symmetric box { |x_i| <= r_i }.
  static HPolytope sym_box(const linalg::Vector& r);
  /// 1-norm ball of radius r in the given dimension (cross-polytope).
  /// The H-representation has 2^dim facets, so dim is capped at
  /// kL1BallMaxDim; larger requests throw PreconditionError.
  static HPolytope l1_ball(std::size_t dim, double r);
  /// Largest dimension l1_ball accepts (2^16 = 65536 facet rows).
  static constexpr std::size_t kL1BallMaxDim = 16;
  /// Convex hull of 2-D points (exact, via monotone chain).  Degenerate
  /// inputs (all collinear) produce the corresponding flat polytope.
  static HPolytope from_vertices_2d(const std::vector<linalg::Vector>& pts);

  /// State-space dimension n.
  std::size_t dim() const { return a_.cols(); }
  /// Number of halfspaces m.
  std::size_t num_constraints() const { return a_.rows(); }
  /// Constraint matrix A.
  const linalg::Matrix& a() const { return a_; }
  /// Offset vector b.
  const linalg::Vector& b() const { return b_; }
  /// Normal of facet i.
  linalg::Vector normal(std::size_t i) const { return a_.row(i); }
  /// Offset of facet i.
  double offset(std::size_t i) const { return b_[i]; }

  /// Membership test with absolute slack tolerance.
  bool contains(const linalg::Vector& x, double tol = 1e-9) const;

  /// Worst constraint violation at x: max_i (a_i.x - b_i); <= 0 inside.
  double violation(const linalg::Vector& x) const;

  /// Emptiness via phase-1 LP.
  bool is_empty() const;

  /// True when P is bounded (support finite along +/- every axis).
  bool is_bounded() const;

  /// Support function in direction d.
  Support support(const linalg::Vector& d) const;

  /// Largest inscribed ball (LP).  Useful for sampling interior points and
  /// for measuring how much margin a safe set retains.
  ChebyshevBall chebyshev() const;

  /// Intersection: concatenates constraint rows (call remove_redundancy()
  /// afterwards if a minimal description matters).
  HPolytope intersect(const HPolytope& other) const;

  /// Preimage under the affine map x -> M x + t:
  ///   { x | M x + t in P }  =  { x | (A M) x <= b - A t }.
  /// This is how backward reachable sets B(Y, z) are computed (Sec. III-A)
  /// without inverting the dynamics matrix.
  HPolytope affine_preimage(const linalg::Matrix& m, const linalg::Vector& t) const;

  /// Exact image under an *invertible* affine map x -> M x + t.
  /// Throws NumericalError when M is singular; use ops.hpp's
  /// affine_image_projection for the general case.
  HPolytope affine_image_invertible(const linalg::Matrix& m,
                                    const linalg::Vector& t) const;

  /// Pontryagin (Minkowski) difference P (-) Q = { x | x + q in P for all q in Q }:
  /// shrinks every facet by the support of Q in its normal direction.
  HPolytope pontryagin_diff(const HPolytope& q) const;

  /// Translate by t.
  HPolytope translate(const linalg::Vector& t) const;

  /// Scale about the origin by factor s > 0.
  HPolytope scale(double s) const;

  /// Drop rows implied by the others (one LP per row).  Also drops exact
  /// duplicates.  The result describes the same set.
  HPolytope remove_redundancy(double tol = 1e-9) const;

  /// Tight axis-aligned bounding box; nullopt when empty or unbounded.
  std::optional<std::pair<linalg::Vector, linalg::Vector>> bounding_box() const;

  /// Vertices of a bounded 2-D polytope in counter-clockwise order.
  /// Requires dim() == 2; throws PreconditionError otherwise.
  std::vector<linalg::Vector> vertices_2d(double tol = 1e-7) const;

 private:
  linalg::Matrix a_;
  linalg::Vector b_;
};

/// True when P is a subset of Q up to tolerance (support of P along each
/// facet normal of Q stays below Q's offsets).  An empty P is contained in
/// everything.
bool contains_polytope(const HPolytope& outer, const HPolytope& inner,
                       double tol = 1e-7);

/// Approximate set equality (mutual containment).
bool approx_equal(const HPolytope& p, const HPolytope& q, double tol = 1e-7);

/// Stream as "HPolytope{m constraints in R^n}".
std::ostream& operator<<(std::ostream& os, const HPolytope& p);

}  // namespace oic::poly
