#include "poly/hpolytope.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "common/error.hpp"
#include "linalg/lu.hpp"
#include "lp/problem.hpp"
#include "lp/simplex.hpp"
#include "poly/support_solver.hpp"

namespace oic::poly {

using linalg::Matrix;
using linalg::Vector;

HPolytope::HPolytope(Matrix a, Vector b) : a_(std::move(a)), b_(std::move(b)) {
  OIC_REQUIRE(a_.rows() == b_.size(), "HPolytope: A rows must match b size");
}

HPolytope HPolytope::universe(std::size_t dim) {
  return HPolytope(Matrix(0, dim), Vector(0));
}

HPolytope HPolytope::box(const Vector& lo, const Vector& hi) {
  OIC_REQUIRE(lo.size() == hi.size(), "HPolytope::box: bound dimension mismatch");
  const std::size_t n = lo.size();
  Matrix a(2 * n, n);
  Vector b(2 * n);
  for (std::size_t i = 0; i < n; ++i) {
    OIC_REQUIRE(lo[i] <= hi[i], "HPolytope::box: empty interval");
    a(2 * i, i) = 1.0;
    b[2 * i] = hi[i];
    a(2 * i + 1, i) = -1.0;
    b[2 * i + 1] = -lo[i];
  }
  return HPolytope(std::move(a), std::move(b));
}

HPolytope HPolytope::sym_box(const Vector& r) {
  Vector lo = r, hi = r;
  for (std::size_t i = 0; i < r.size(); ++i) {
    OIC_REQUIRE(r[i] >= 0.0, "HPolytope::sym_box: radii must be non-negative");
    lo[i] = -r[i];
  }
  return box(lo, hi);
}

HPolytope HPolytope::l1_ball(std::size_t dim, double r) {
  OIC_REQUIRE(dim >= 1, "HPolytope::l1_ball: dimension must be positive");
  // The halfspace description of a cross-polytope needs one row per sign
  // pattern -- 2^dim rows.  Beyond ~16 dimensions that is no longer a
  // usable representation (65k+ rows), only a memory bomb; refuse early.
  OIC_REQUIRE(dim <= kL1BallMaxDim,
              "HPolytope::l1_ball: dimension too large (2^dim facet rows; "
              "use sym_box or a custom template for high dimensions)");
  OIC_REQUIRE(r >= 0.0, "HPolytope::l1_ball: radius must be non-negative");
  // All sign patterns of sum(+-x_i) <= r.
  const std::size_t rows = std::size_t{1} << dim;
  Matrix a(rows, dim);
  Vector b(rows);
  for (std::size_t mask = 0; mask < rows; ++mask) {
    for (std::size_t i = 0; i < dim; ++i)
      a(mask, i) = (mask >> i) & 1u ? 1.0 : -1.0;
    b[mask] = r;
  }
  return HPolytope(std::move(a), std::move(b));
}

bool HPolytope::contains(const Vector& x, double tol) const {
  OIC_REQUIRE(x.size() == dim(), "HPolytope::contains: dimension mismatch");
  return violation(x) <= tol;
}

double HPolytope::violation(const Vector& x) const {
  OIC_REQUIRE(x.size() == dim(), "HPolytope::violation: dimension mismatch");
  double worst = -std::numeric_limits<double>::infinity();
  if (num_constraints() == 0) return 0.0;
  for (std::size_t i = 0; i < num_constraints(); ++i) {
    double s = -b_[i];
    for (std::size_t j = 0; j < dim(); ++j) s += a_(i, j) * x[j];
    worst = std::max(worst, s);
  }
  return worst;
}

bool HPolytope::is_empty() const {
  if (num_constraints() == 0) return false;
  lp::Problem p(dim());
  for (std::size_t i = 0; i < num_constraints(); ++i)
    p.add_constraint(a_.row(i), lp::Relation::kLessEq, b_[i]);
  const lp::Result r = lp::solve(p);
  return r.status == lp::Status::kInfeasible;
}

bool HPolytope::is_bounded() const {
  // Axis directions +-e_j, in the same order the per-direction loop asked
  // them (+e_j before -e_j); one batched sweep over the shared tableau.
  linalg::Matrix dirs(2 * dim(), dim());
  for (std::size_t j = 0; j < dim(); ++j) {
    dirs(2 * j, j) = 1.0;
    dirs(2 * j + 1, j) = -1.0;
  }
  SupportSolver solver(*this);
  for (const Support& s : solver.support_batch(dirs)) {
    if (!s.bounded) return false;
  }
  return true;
}

Support HPolytope::support(const Vector& d) const {
  OIC_REQUIRE(d.size() == dim(), "HPolytope::support: dimension mismatch");
  lp::Problem p(dim());
  p.set_objective(-d);  // maximize d.x == minimize -d.x
  for (std::size_t i = 0; i < num_constraints(); ++i)
    p.add_constraint(a_.row(i), lp::Relation::kLessEq, b_[i]);
  const lp::Result r = lp::solve(p);
  Support s;
  switch (r.status) {
    case lp::Status::kOptimal:
      s.bounded = true;
      s.feasible = true;
      s.value = -r.objective;
      s.maximizer = r.x;
      break;
    case lp::Status::kUnbounded:
      s.bounded = false;
      s.feasible = true;
      break;
    case lp::Status::kInfeasible:
      s.bounded = true;
      s.feasible = false;
      break;
    case lp::Status::kIterLimit:
      throw NumericalError("HPolytope::support: simplex iteration limit");
  }
  return s;
}

ChebyshevBall HPolytope::chebyshev() const {
  // max r  s.t.  a_i.x + ||a_i||_2 r <= b_i,  r >= 0.
  lp::Problem p(dim() + 1);
  p.set_objective_coeff(dim(), -1.0);  // maximize r
  p.set_bounds(dim(), 0.0, lp::Problem::kInf);
  for (std::size_t i = 0; i < num_constraints(); ++i) {
    Vector row(dim() + 1);
    const Vector ai = a_.row(i);
    for (std::size_t j = 0; j < dim(); ++j) row[j] = ai[j];
    row[dim()] = ai.norm2();
    p.add_constraint(row, lp::Relation::kLessEq, b_[i]);
  }
  const lp::Result r = lp::solve(p);
  ChebyshevBall ball;
  if (r.status == lp::Status::kInfeasible) return ball;
  if (r.status == lp::Status::kUnbounded) {
    // Unbounded radius: the polyhedron contains arbitrarily large balls.
    // Report feasibility with an infinite radius at an arbitrary feasible
    // point found by a bounded re-solve.
    lp::Problem p2(dim() + 1);
    for (std::size_t i = 0; i < num_constraints(); ++i)
      p2.add_constraint(p.constraint(i).coeffs, lp::Relation::kLessEq,
                        p.constraint(i).rhs);
    p2.set_bounds(dim(), 0.0, 1e9);
    p2.set_objective_coeff(dim(), -1.0);
    const lp::Result r2 = lp::solve(p2);
    OIC_CHECK(r2.status == lp::Status::kOptimal,
              "HPolytope::chebyshev: bounded re-solve failed");
    ball.feasible = true;
    ball.radius = std::numeric_limits<double>::infinity();
    ball.center = Vector(dim());
    for (std::size_t j = 0; j < dim(); ++j) ball.center[j] = r2.x[j];
    return ball;
  }
  OIC_CHECK(r.status == lp::Status::kOptimal,
            "HPolytope::chebyshev: simplex iteration limit");
  ball.feasible = true;
  ball.radius = r.x[dim()];
  ball.center = Vector(dim());
  for (std::size_t j = 0; j < dim(); ++j) ball.center[j] = r.x[j];
  return ball;
}

HPolytope HPolytope::intersect(const HPolytope& other) const {
  OIC_REQUIRE(dim() == other.dim(), "HPolytope::intersect: dimension mismatch");
  return HPolytope(linalg::vcat(a_, other.a_), linalg::concat(b_, other.b_));
}

HPolytope HPolytope::affine_preimage(const Matrix& m, const Vector& t) const {
  OIC_REQUIRE(m.rows() == dim(), "HPolytope::affine_preimage: map range mismatch");
  OIC_REQUIRE(t.size() == dim(), "HPolytope::affine_preimage: offset mismatch");
  return HPolytope(a_ * m, b_ - a_ * t);
}

HPolytope HPolytope::affine_image_invertible(const Matrix& m, const Vector& t) const {
  OIC_REQUIRE(m.rows() == m.cols() && m.rows() == dim(),
              "HPolytope::affine_image_invertible: map must be square of matching size");
  const Matrix minv = linalg::inverse(m);  // throws NumericalError if singular
  // y = Mx + t  =>  x = M^{-1}(y - t);  A x <= b  =>  (A M^{-1}) y <= b + A M^{-1} t.
  return HPolytope(a_ * minv, b_ + (a_ * minv) * t);
}

HPolytope HPolytope::pontryagin_diff(const HPolytope& q) const {
  OIC_REQUIRE(dim() == q.dim(), "HPolytope::pontryagin_diff: dimension mismatch");
  // One LP per facet, all over Q's constraint system: the facet-normal
  // matrix goes straight into the batched entry (build Q's tableau once,
  // swap objectives, no per-row Vector copies).
  SupportSolver q_support(q);
  const std::vector<Support> sup = q_support.support_batch(a_);
  Vector b2 = b_;
  for (std::size_t i = 0; i < num_constraints(); ++i) {
    const Support& s = sup[i];
    OIC_REQUIRE(s.feasible, "pontryagin_diff: subtrahend is empty");
    OIC_REQUIRE(s.bounded, "pontryagin_diff: subtrahend unbounded along a facet normal");
    b2[i] -= s.value;
  }
  return HPolytope(a_, b2);
}

HPolytope HPolytope::translate(const Vector& t) const {
  OIC_REQUIRE(t.size() == dim(), "HPolytope::translate: dimension mismatch");
  return HPolytope(a_, b_ + a_ * t);
}

HPolytope HPolytope::scale(double s) const {
  OIC_REQUIRE(s > 0.0, "HPolytope::scale: factor must be positive");
  Vector b2 = b_;
  b2 *= s;
  return HPolytope(a_, b2);
}

HPolytope HPolytope::remove_redundancy(double tol) const {
  const std::size_t m = num_constraints();
  if (m == 0) return *this;

  std::vector<bool> keep(m, true);
  // Exact-duplicate pass first (cheap), then the LP pass.
  for (std::size_t i = 0; i < m; ++i) {
    if (!keep[i]) continue;
    for (std::size_t j = i + 1; j < m; ++j) {
      if (!keep[j]) continue;
      bool same = std::fabs(b_[i] - b_[j]) <= 1e-12;
      for (std::size_t c = 0; same && c < dim(); ++c)
        same = std::fabs(a_(i, c) - a_(j, c)) <= 1e-12;
      if (same) keep[j] = false;
    }
  }

  // LP pass: row i is redundant iff maximizing a_i.x subject to all *other*
  // kept rows cannot exceed b_i.
  for (std::size_t i = 0; i < m; ++i) {
    if (!keep[i]) continue;
    lp::Problem p(dim());
    p.set_objective(-a_.row(i));
    bool any = false;
    for (std::size_t j = 0; j < m; ++j) {
      if (j == i || !keep[j]) continue;
      p.add_constraint(a_.row(j), lp::Relation::kLessEq, b_[j]);
      any = true;
    }
    if (!any) continue;  // last remaining row is never redundant
    // Relaxation trick: also cap by b_i + 1 to keep the LP bounded when the
    // row is the only bound in its direction.
    p.add_constraint(a_.row(i), lp::Relation::kLessEq, b_[i] + 1.0);
    const lp::Result r = lp::solve(p);
    if (r.status == lp::Status::kInfeasible) {
      // The remaining rows are already empty; any row can be dropped safely,
      // but keep it to preserve the (empty) description conservatively.
      continue;
    }
    OIC_CHECK(r.status == lp::Status::kOptimal,
              "remove_redundancy: unexpected LP status");
    if (-r.objective <= b_[i] + tol) keep[i] = false;
  }

  std::size_t kept = 0;
  for (bool k : keep) kept += k ? 1 : 0;
  Matrix a2(kept, dim());
  Vector b2(kept);
  std::size_t r2 = 0;
  for (std::size_t i = 0; i < m; ++i) {
    if (!keep[i]) continue;
    a2.set_row(r2, a_.row(i));
    b2[r2] = b_[i];
    ++r2;
  }
  return HPolytope(std::move(a2), std::move(b2));
}

std::optional<std::pair<Vector, Vector>> HPolytope::bounding_box() const {
  // Axis sweep +-e_j per coordinate, batched over the shared tableau in
  // the same order the per-direction loop issued (+e_j before -e_j).
  linalg::Matrix dirs(2 * dim(), dim());
  for (std::size_t j = 0; j < dim(); ++j) {
    dirs(2 * j, j) = 1.0;
    dirs(2 * j + 1, j) = -1.0;
  }
  SupportSolver solver(*this);
  const std::vector<Support> sup = solver.support_batch(dirs);
  Vector lo(dim()), hi(dim());
  for (std::size_t j = 0; j < dim(); ++j) {
    const Support& up = sup[2 * j];
    const Support& dn = sup[2 * j + 1];
    if (!up.feasible || !up.bounded) return std::nullopt;
    if (!dn.feasible || !dn.bounded) return std::nullopt;
    hi[j] = up.value;
    lo[j] = -dn.value;
  }
  return std::make_pair(lo, hi);
}

std::vector<Vector> HPolytope::vertices_2d(double tol) const {
  OIC_REQUIRE(dim() == 2, "vertices_2d: only implemented for planar polytopes");
  const HPolytope p = remove_redundancy();
  const std::size_t m = p.num_constraints();
  std::vector<Vector> verts;
  // Intersect every facet pair; keep feasible intersection points.
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = i + 1; j < m; ++j) {
      const double a11 = p.a()(i, 0), a12 = p.a()(i, 1);
      const double a21 = p.a()(j, 0), a22 = p.a()(j, 1);
      const double det = a11 * a22 - a12 * a21;
      if (std::fabs(det) < 1e-12) continue;
      Vector v(2);
      v[0] = (p.b()[i] * a22 - a12 * p.b()[j]) / det;
      v[1] = (a11 * p.b()[j] - p.b()[i] * a21) / det;
      if (p.contains(v, tol)) verts.push_back(v);
    }
  }
  if (verts.empty()) return verts;
  // Deduplicate and order counter-clockwise around the centroid.
  Vector c(2);
  for (const auto& v : verts) c += v;
  c /= static_cast<double>(verts.size());
  std::sort(verts.begin(), verts.end(), [&](const Vector& u, const Vector& v) {
    return std::atan2(u[1] - c[1], u[0] - c[0]) < std::atan2(v[1] - c[1], v[0] - c[0]);
  });
  std::vector<Vector> out;
  for (const auto& v : verts) {
    if (out.empty() || (v - out.back()).norm_inf() > 1e-8) out.push_back(v);
  }
  if (out.size() > 1 && (out.front() - out.back()).norm_inf() <= 1e-8) out.pop_back();
  return out;
}

HPolytope HPolytope::from_vertices_2d(const std::vector<Vector>& pts) {
  OIC_REQUIRE(!pts.empty(), "from_vertices_2d: need at least one point");
  for (const auto& p : pts)
    OIC_REQUIRE(p.size() == 2, "from_vertices_2d: points must be planar");

  // Andrew's monotone chain convex hull.
  std::vector<Vector> s = pts;
  std::sort(s.begin(), s.end(), [](const Vector& a, const Vector& b) {
    return a[0] < b[0] || (a[0] == b[0] && a[1] < b[1]);
  });
  s.erase(std::unique(s.begin(), s.end(),
                      [](const Vector& a, const Vector& b) {
                        return (a - b).norm_inf() < 1e-12;
                      }),
          s.end());
  auto cross = [](const Vector& o, const Vector& a, const Vector& b) {
    return (a[0] - o[0]) * (b[1] - o[1]) - (a[1] - o[1]) * (b[0] - o[0]);
  };
  std::vector<Vector> hull;
  if (s.size() <= 2) {
    hull = s;
  } else {
    std::vector<Vector> lower, upper;
    for (const auto& p : s) {
      while (lower.size() >= 2 && cross(lower[lower.size() - 2], lower.back(), p) <= 0)
        lower.pop_back();
      lower.push_back(p);
    }
    for (auto it = s.rbegin(); it != s.rend(); ++it) {
      while (upper.size() >= 2 && cross(upper[upper.size() - 2], upper.back(), *it) <= 0)
        upper.pop_back();
      upper.push_back(*it);
    }
    lower.pop_back();
    upper.pop_back();
    hull = lower;
    hull.insert(hull.end(), upper.begin(), upper.end());
  }

  if (hull.size() == 1) {
    // A single point {v}: x == v as two inequalities per coordinate.
    return box(hull[0], hull[0]);
  }
  if (hull.size() == 2) {
    // A segment: equality along the normal, bounds along the tangent.
    const Vector& u = hull[0];
    const Vector& v = hull[1];
    Vector tdir = v - u;
    const double len = tdir.norm2();
    OIC_CHECK(len > 0.0, "from_vertices_2d: degenerate segment");
    tdir /= len;
    Vector ndir{-tdir[1], tdir[0]};
    Matrix a(4, 2);
    Vector b(4);
    a.set_row(0, ndir);
    b[0] = linalg::dot(ndir, u);
    a.set_row(1, -ndir);
    b[1] = -linalg::dot(ndir, u);
    a.set_row(2, tdir);
    b[2] = std::max(linalg::dot(tdir, u), linalg::dot(tdir, v));
    a.set_row(3, -tdir);
    b[3] = -std::min(linalg::dot(tdir, u), linalg::dot(tdir, v));
    return HPolytope(std::move(a), std::move(b));
  }

  // Hull edges (ccw) -> outward halfspaces.
  Matrix a(hull.size(), 2);
  Vector b(hull.size());
  for (std::size_t i = 0; i < hull.size(); ++i) {
    const Vector& u = hull[i];
    const Vector& v = hull[(i + 1) % hull.size()];
    // Edge direction (v-u); outward normal for a ccw polygon is (dy, -dx).
    Vector nrm{v[1] - u[1], -(v[0] - u[0])};
    const double len = nrm.norm2();
    OIC_CHECK(len > 0.0, "from_vertices_2d: zero-length hull edge");
    nrm /= len;
    a.set_row(i, nrm);
    b[i] = linalg::dot(nrm, u);
  }
  return HPolytope(std::move(a), std::move(b));
}

bool contains_polytope(const HPolytope& outer, const HPolytope& inner, double tol) {
  OIC_REQUIRE(outer.dim() == inner.dim(), "contains_polytope: dimension mismatch");
  if (inner.is_empty()) return true;
  // The outer face normals are exactly the rows of outer.a(): hand the
  // matrix to the batched entry without per-row copies.
  SupportSolver inner_support(inner);
  const std::vector<Support> sup = inner_support.support_batch(outer.a());
  for (std::size_t i = 0; i < sup.size(); ++i) {
    if (!sup[i].bounded) return false;
    if (sup[i].value > outer.offset(i) + tol) return false;
  }
  return true;
}

bool approx_equal(const HPolytope& p, const HPolytope& q, double tol) {
  return contains_polytope(p, q, tol) && contains_polytope(q, p, tol);
}

std::ostream& operator<<(std::ostream& os, const HPolytope& p) {
  return os << "HPolytope{" << p.num_constraints() << " constraints in R^" << p.dim()
            << "}";
}

}  // namespace oic::poly
