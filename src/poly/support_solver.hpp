#pragma once
/// \file support_solver.hpp
/// Repeated support-function queries on one polytope.
///
/// HPolytope::support() builds a fresh lp::Problem (copying every
/// constraint row through Matrix::row()) and converts it to a simplex
/// tableau on every call.  The polytope operations the paper leans on --
/// pontryagin_diff, contains_polytope, bounding_box, is_bounded -- all ask
/// for supports of the *same* polytope in many directions, so the rebuild
/// is pure waste.
///
/// A SupportSolver captures the constraint system once (rows read straight
/// from the matrix storage, no per-row Vector copies) and answers each
/// query by swapping the objective and re-solving through a reused
/// workspace.  Answers are bit-identical to HPolytope::support(): the same
/// Problem rows feed the same simplex.

#include <vector>

#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"
#include "lp/prepared.hpp"
#include "poly/hpolytope.hpp"

namespace oic::poly {

/// Reusable support-function evaluator bound to one polytope's constraint
/// system.  Not thread-safe (owns a solver workspace); copy per thread.
class SupportSolver {
 public:
  /// Captures A and b; the polytope may be destroyed afterwards.
  explicit SupportSolver(const HPolytope& p);

  /// h_P(d) = max { d.x | A x <= b }, exactly as HPolytope::support().
  Support support(const linalg::Vector& d);

  /// Batched multi-direction queries: row i of `dirs` is direction d_i.
  /// Answer i is bit-identical to support(d_i) -- the directions share the
  /// prepared tableau and workspace but each solve is independent (no
  /// cross-direction state), so callers may batch or not without changing
  /// results.  This is the natural entry for per-facet sweeps
  /// (pontryagin_diff, contains_polytope, bounding_box, the stale-mode
  /// inflation ladder): the direction set usually already lives in a
  /// constraint matrix, which is handed over without per-row copies.
  std::vector<Support> support_batch(const linalg::Matrix& dirs);

  /// Dimension of the underlying polytope.
  std::size_t dim() const { return dim_; }

 private:
  /// Runs one query for the objective currently staged in obj_.
  Support query();

  std::size_t dim_;
  lp::PreparedProblem prep_;
  lp::SolverWorkspace ws_;
  linalg::Vector obj_;  ///< scratch for -d (the LP minimizes)
};

}  // namespace oic::poly
