#pragma once
/// \file support_sum.hpp
/// Lazy Minkowski-sum chains represented through their support function.
///
/// The minimal robust positively invariant (mRPI) approximation of
/// Sec. III-A is alpha-scaled sum  W (+) A_K W (+) ... (+) A_K^{n-1} W.
/// Materializing that sum exactly is wasteful; its support function is just
///   h(d) = sum_i h_W(M_i^T d),
/// which this class evaluates exactly (one small LP per term) and converts
/// to an H-polytope over caller-chosen template directions.

#include <vector>

#include "linalg/matrix.hpp"
#include "poly/hpolytope.hpp"

namespace oic::poly {

/// The set  scale * ( M_0 W_0 (+) M_1 W_1 (+) ... )  accessed through its
/// support function.
class SupportSum {
 public:
  /// Empty chain; represents {0} until terms are added.
  SupportSum() = default;

  /// Append a term M * W to the chain.
  void add_term(linalg::Matrix m, HPolytope w);

  /// Number of terms.
  std::size_t terms() const { return ms_.size(); }

  /// Multiply the whole chain by a positive factor.
  void set_scale(double s);

  /// Current scale factor.
  double scale() const { return scale_; }

  /// Exact support value  h(d) = scale * sum_i h_{W_i}(M_i^T d).
  /// Throws NumericalError when any term is unbounded in the direction.
  double support(const linalg::Vector& d) const;

  /// Outer H-polytope over the given template directions.  Exact (tight) on
  /// every template direction; an over-approximation elsewhere.
  HPolytope outer_polytope(const std::vector<linalg::Vector>& dirs) const;

  /// Dimension of the represented set (0 when no terms yet).
  std::size_t dim() const;

 private:
  std::vector<linalg::Matrix> ms_;
  std::vector<HPolytope> ws_;
  double scale_ = 1.0;
};

}  // namespace oic::poly
