#include "poly/support_solver.hpp"

#include "common/error.hpp"

namespace oic::poly {

namespace {

lp::Problem constraint_system(const HPolytope& p) {
  lp::Problem lp(p.dim());
  const linalg::Matrix& a = p.a();
  for (std::size_t i = 0; i < p.num_constraints(); ++i) {
    lp.add_constraint(a.row_data(i), a.cols(), lp::Relation::kLessEq, p.b()[i]);
  }
  return lp;
}

}  // namespace

SupportSolver::SupportSolver(const HPolytope& p)
    : dim_(p.dim()), prep_(constraint_system(p)), obj_(p.dim()) {}

Support SupportSolver::query() {
  prep_.set_objective(obj_);
  const lp::Result r = prep_.solve(ws_);
  Support s;
  switch (r.status) {
    case lp::Status::kOptimal:
      s.bounded = true;
      s.feasible = true;
      s.value = -r.objective;
      s.maximizer = r.x;
      break;
    case lp::Status::kUnbounded:
      s.bounded = false;
      s.feasible = true;
      break;
    case lp::Status::kInfeasible:
      s.bounded = true;
      s.feasible = false;
      break;
    case lp::Status::kIterLimit:
      throw NumericalError("SupportSolver::support: simplex iteration limit");
  }
  return s;
}

Support SupportSolver::support(const linalg::Vector& d) {
  OIC_REQUIRE(d.size() == dim_, "SupportSolver::support: dimension mismatch");
  // maximize d.x == minimize -d.x
  for (std::size_t j = 0; j < dim_; ++j) obj_[j] = -d[j];
  return query();
}

std::vector<Support> SupportSolver::support_batch(const linalg::Matrix& dirs) {
  OIC_REQUIRE(dirs.cols() == dim_,
              "SupportSolver::support_batch: direction dimension mismatch");
  std::vector<Support> out;
  out.reserve(dirs.rows());
  for (std::size_t i = 0; i < dirs.rows(); ++i) {
    const double* row = dirs.row_data(i);
    for (std::size_t j = 0; j < dim_; ++j) obj_[j] = -row[j];
    out.push_back(query());
  }
  return out;
}

}  // namespace oic::poly
