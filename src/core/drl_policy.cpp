#include "core/drl_policy.hpp"

#include "common/error.hpp"

namespace oic::core {

using linalg::Vector;

void build_drl_state_into(Vector& out, const Vector& x, const WHistory& w_history,
                          std::size_t r, std::size_t w_dim) {
  OIC_REQUIRE(r >= 1, "build_drl_state: memory length must be positive");
  out.data().assign(x.size() + r * w_dim, 0.0);
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = x[i];
  // Most recent r observations, oldest first, front-padded with zeros.
  const std::size_t have = std::min(r, w_history.size());
  const std::size_t pad = r - have;
  for (std::size_t k = 0; k < have; ++k) {
    const Vector& w = w_history[w_history.size() - have + k];
    OIC_REQUIRE(w.size() == w_dim, "build_drl_state: disturbance dimension mismatch");
    for (std::size_t i = 0; i < w_dim; ++i) {
      out[x.size() + (pad + k) * w_dim + i] = w[i];
    }
  }
}

Vector build_drl_state(const Vector& x, const WHistory& w_history, std::size_t r,
                       std::size_t w_dim) {
  Vector s;
  build_drl_state_into(s, x, w_history, r, w_dim);
  return s;
}

std::size_t drl_state_dim(std::size_t nx, std::size_t w_dim, std::size_t r) {
  return nx + r * w_dim;
}

Vector drl_state_scale(const control::AffineLTI& sys, std::size_t r) {
  const std::size_t nx = sys.nx();
  Vector scale(drl_state_dim(nx, nx, r), 1.0);

  auto half_widths = [](const poly::HPolytope& p) {
    Vector hw(p.dim(), 0.0);
    const auto bb = p.bounding_box();
    if (!bb.has_value()) return hw;
    for (std::size_t i = 0; i < p.dim(); ++i) {
      hw[i] = 0.5 * (bb->second[i] - bb->first[i]);
    }
    return hw;
  };
  const Vector hx = half_widths(sys.x_set());
  const Vector hw = half_widths(sys.disturbance_in_state_space());
  for (std::size_t i = 0; i < nx; ++i) {
    if (hx[i] > 1e-9) scale[i] = 1.0 / hx[i];
  }
  for (std::size_t k = 0; k < r; ++k) {
    for (std::size_t i = 0; i < nx; ++i) {
      if (hw[i] > 1e-9) scale[nx + k * nx + i] = 1.0 / hw[i];
    }
  }
  return scale;
}

void apply_state_scale_inplace(Vector& state, const Vector& scale) {
  if (scale.empty()) return;
  OIC_REQUIRE(scale.size() == state.size(),
              "apply_state_scale: scale dimension mismatch");
  for (std::size_t i = 0; i < state.size(); ++i) state[i] *= scale[i];
}

Vector apply_state_scale(Vector state, const Vector& scale) {
  apply_state_scale_inplace(state, scale);
  return state;
}

double skipping_reward(const SafeSets& sets, const Vector& x1, int z, const Vector& x2,
                       double kappa_energy, double w1, double w2) {
  const double r1 = sets.x_prime.contains(x2) ? 0.0 : 1.0;
  const bool free_skip = (z == 0) && sets.x_prime.contains(x1);
  const double r2 = free_skip ? 0.0 : kappa_energy;
  return -w1 * r1 - w2 * r2;
}

DrlPolicy::DrlPolicy(std::shared_ptr<const rl::DoubleDqn> agent, std::size_t r,
                     std::size_t w_dim, Vector state_scale)
    : DrlPolicy(agent != nullptr
                    // Aliasing pointer: shares the agent's lifetime, points
                    // at its online network.
                    ? std::shared_ptr<const rl::Mlp>(agent, &agent->online())
                    : nullptr,
                r, w_dim, std::move(state_scale), "drl-dqn") {}

DrlPolicy::DrlPolicy(std::shared_ptr<const rl::Mlp> net, std::size_t r,
                     std::size_t w_dim, Vector state_scale, std::string label)
    : net_(std::move(net)), r_(r), w_dim_(w_dim),
      state_scale_(std::move(state_scale)), label_(std::move(label)) {
  OIC_REQUIRE(net_ != nullptr, "DrlPolicy: agent must not be null");
  OIC_REQUIRE(r_ >= 1, "DrlPolicy: memory length must be positive");
  OIC_REQUIRE(!label_.empty(), "DrlPolicy: empty label");
}

std::unique_ptr<DrlPolicy> DrlPolicy::from_network(std::shared_ptr<const rl::Mlp> net,
                                                   std::size_t r, std::size_t w_dim,
                                                   Vector state_scale,
                                                   std::string label) {
  return std::unique_ptr<DrlPolicy>(new DrlPolicy(
      std::move(net), r, w_dim, std::move(state_scale), std::move(label)));
}

int DrlPolicy::decide(const Vector& x, const WHistory& w_history) {
  build_drl_state_into(state_scratch_, x, w_history, r_, w_dim_);
  apply_state_scale_inplace(state_scratch_, state_scale_);
  // Same computation as DoubleDqn::greedy_action on the online network.
  const Vector& q = net_->forward_into(state_scratch_, mlp_ws_);
  std::size_t best = 0;
  for (std::size_t i = 1; i < q.size(); ++i) {
    if (q[i] > q[best]) best = i;
  }
  return static_cast<int>(best);
}

}  // namespace oic::core
