#pragma once
/// \file safe_sets.hpp
/// The three nested safe sets of the paper (Fig. 1 / Sec. III-A):
///
///   X   -- original safe set (given with the plant),
///   XI  -- a robust control invariant set of the underlying controller,
///   X'  -- strengthened safe set  X' = B(XI, 0) intersect XI (Definition 3):
///          states from which even the *skip* input keeps the successor
///          inside XI for every disturbance.
///
/// Theorem 1: with the monitor of Algorithm 1 the closed loop never leaves
/// XI, for ANY skipping decision function.  verify_* helpers below let
/// tests and callers check the premises explicitly.

#include "control/lti.hpp"
#include "poly/hpolytope.hpp"

namespace oic::core {

/// The nested triple X' subset XI subset X.
struct SafeSets {
  poly::HPolytope x;        ///< original safe set
  poly::HPolytope xi;       ///< robust control invariant set of kappa
  poly::HPolytope x_prime;  ///< strengthened safe set
};

/// Build the strengthened safe set from a robust control invariant set XI
/// of the underlying controller:  X' = B(XI, u_skip) intersect XI, with
/// B(., z=0) the robust backward reachable set under the constant skip
/// input (Definition 2).  Throws PreconditionError when XI is empty or not
/// inside X; the invariance of XI itself is the caller's certificate (use
/// control::is_robust_invariant or TubeMpc::compute_feasible_set).
SafeSets compute_safe_sets(const control::AffineLTI& sys, const poly::HPolytope& xi,
                           const linalg::Vector& u_skip);

/// Check the nesting X' subset XI subset X (up to tolerance).
bool verify_nesting(const SafeSets& sets, double tol = 1e-6);

/// Check Definition 3's defining property on the computed X': for every
/// vertex-sampled x in X' and every disturbance vertex, the skip-input
/// successor stays in XI.  Exact for linear maps because the extremes are
/// attained at vertices.  (2-D sets only; returns true vacuously otherwise.)
bool verify_strengthened_property(const control::AffineLTI& sys, const SafeSets& sets,
                                  const linalg::Vector& u_skip, double tol = 1e-6);

/// Extension beyond the paper: k-step strengthened safe sets
///   X'_1 = B(XI, 0) n XI        (the paper's X'),
///   X'_k = B(X'_{k-1}, 0) n XI  for k >= 2,
/// i.e. states from which k consecutive *skipped* periods are guaranteed to
/// stay inside XI under every disturbance sequence.  Enables burst skipping
/// with a safety certificate for the whole burst, amortizing the monitor
/// check itself.  Returns sets[0] = X'_1, ..., sets[k-1] = X'_k; the chain
/// is nested (X'_k subset X'_{k-1}) and may become empty -- computation
/// stops early and returns the non-empty prefix.
std::vector<poly::HPolytope> compute_multi_step_safe_sets(
    const control::AffineLTI& sys, const poly::HPolytope& xi,
    const linalg::Vector& u_skip, std::size_t k);

}  // namespace oic::core
