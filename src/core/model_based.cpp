#include "core/model_based.hpp"

#include <cmath>
#include <sstream>

#include "common/error.hpp"

namespace oic::core {

using linalg::Matrix;
using linalg::Vector;
using poly::HPolytope;

SequenceOracle::SequenceOracle(std::vector<Vector> seq) : seq_(std::move(seq)) {
  OIC_REQUIRE(!seq_.empty(), "SequenceOracle: need at least one sample");
}

Vector SequenceOracle::at(std::size_t t) const {
  return t < seq_.size() ? seq_[t] : seq_.back();
}

ModelBasedPolicy::ModelBasedPolicy(const control::AffineLTI& sys, const SafeSets& sets,
                                   const control::LinearFeedback& kappa,
                                   Vector u_skip, const DisturbanceOracle& oracle,
                                   ModelBasedConfig config)
    : sys_(sys),
      sets_(sets),
      kappa_(kappa),
      u_skip_(std::move(u_skip)),
      oracle_(oracle),
      config_(std::move(config)) {
  OIC_REQUIRE(config_.horizon >= 1, "ModelBasedPolicy: horizon must be positive");
  OIC_REQUIRE(u_skip_.size() == sys_.nu(), "ModelBasedPolicy: skip input mismatch");
  if (config_.energy_offset.empty()) config_.energy_offset = Vector(sys_.nu());
  OIC_REQUIRE(config_.energy_offset.size() == sys_.nu(),
              "ModelBasedPolicy: energy offset dimension mismatch");
}

double ModelBasedPolicy::energy(const Vector& u) const {
  return (u - config_.energy_offset).norm1();
}

std::string ModelBasedPolicy::name() const {
  std::ostringstream os;
  os << "model-based(H=" << config_.horizon << ","
     << (config_.solver == ModelBasedConfig::Solver::kExactSearch ? "exact" : "mip")
     << ")";
  return os.str();
}

int ModelBasedPolicy::decide(const Vector& x, const core::WHistory&) {
  OIC_REQUIRE(x.size() == sys_.nx(), "ModelBasedPolicy::decide: state mismatch");
  const int z = config_.solver == ModelBasedConfig::Solver::kExactSearch
                    ? decide_exact(x)
                    : decide_mip(x);
  ++t_;
  return z;
}

// --------------------------------------------------------------- exact DFS

int ModelBasedPolicy::decide_exact(const Vector& x) {
  const std::size_t h = config_.horizon;
  last_ = ModelBasedInfo{};

  // Controller feedback is affine, the disturbance is known, so fixing the
  // binary sequence determines the whole trajectory; branch-and-prune on
  // accumulated energy.
  double best_cost = std::numeric_limits<double>::infinity();
  std::vector<int> best_z;
  std::vector<int> cur_z(h, 0);
  std::size_t nodes = 0;

  // Recursive lambda via explicit function object to keep the stack shallow.
  auto dfs = [&](auto&& self, std::size_t k, const Vector& xs, double cost) -> void {
    ++nodes;
    if (cost >= best_cost) return;
    if (k == h) {
      best_cost = cost;
      best_z = cur_z;
      return;
    }
    const Vector w = oracle_.at(t_ + k);

    // Candidate inputs for z = 0 / z = 1, ordered cheapest-first so the
    // first incumbent is strong and pruning bites early.
    struct Option {
      int z;
      Vector u;
      double e;
    };
    Option opts[2] = {{0, u_skip_, energy(u_skip_)}, {1, {}, 0.0}};
    {
      Vector uk = kappa_.gain() * xs + kappa_.offset();
      opts[1].e = energy(uk);
      opts[1].u = std::move(uk);
    }
    if (opts[1].e < opts[0].e) std::swap(opts[0], opts[1]);

    for (const Option& o : opts) {
      if (!sys_.u_set().contains(o.u, 1e-9)) continue;
      const Vector xn = sys_.step(xs, o.u, w);
      if (!sets_.x_prime.contains(xn, 1e-9)) continue;
      cur_z[k] = o.z;
      self(self, k + 1, xn, cost + o.e);
    }
  };
  dfs(dfs, 0, x, 0.0);

  last_.nodes_explored = nodes;
  if (best_z.empty()) {
    // No sequence keeps the prediction inside X'; run the controller and
    // let the monitor/XI machinery take over (always safe by Theorem 1).
    last_.feasible = false;
    return 1;
  }
  last_.feasible = true;
  last_.planned_cost = best_cost;
  last_.planned_z = best_z;
  return best_z.front();
}

// --------------------------------------------------------------- big-M MIP

int ModelBasedPolicy::decide_mip(const Vector& x) {
  const std::size_t h = config_.horizon;
  const std::size_t nx = sys_.nx();
  const std::size_t nu = sys_.nu();
  last_ = ModelBasedInfo{};

  // Automatic big-M: bound |kappa(x)|, |u|, |u_skip| over X' and U.
  double big_m = config_.big_m;
  if (big_m <= 0.0) {
    double m = u_skip_.norm_inf() + 1.0;
    for (std::size_t i = 0; i < nu; ++i) {
      const Vector ki = kappa_.gain().row(i);
      const auto up = sets_.x_prime.support(ki);
      const auto dn = sets_.x_prime.support(-ki);
      OIC_REQUIRE(up.bounded && dn.bounded,
                  "ModelBasedPolicy: X' unbounded; cannot derive big-M");
      m = std::max(m, std::max(std::fabs(up.value), std::fabs(dn.value)) +
                          std::fabs(kappa_.offset()[i]) + u_skip_.norm_inf() + 1.0);
    }
    const auto ubb = sys_.u_set().bounding_box();
    OIC_REQUIRE(ubb.has_value(), "ModelBasedPolicy: U unbounded; cannot derive big-M");
    for (std::size_t i = 0; i < nu; ++i)
      m = std::max(m, std::max(std::fabs(ubb->first[i]), std::fabs(ubb->second[i])) +
                          u_skip_.norm_inf() + 1.0);
    big_m = 2.0 * m;
  }

  // Variable layout: [ z(0..H-1) | u blocks | x(1..H) blocks | e blocks ].
  const std::size_t zofs = 0;
  const std::size_t uofs = h;
  const std::size_t xofs = uofs + h * nu;
  const std::size_t eofs = xofs + h * nx;
  const std::size_t total = eofs + h * nu;

  mip::MipProblem mp(total);
  for (std::size_t k = 0; k < h; ++k) mp.set_binary(zofs + k);
  for (std::size_t k = 0; k < h; ++k)
    for (std::size_t i = 0; i < nu; ++i) {
      mp.lp().set_objective_coeff(eofs + k * nu + i, 1.0);
      mp.lp().set_bounds(eofs + k * nu + i, 0.0, lp::Problem::kInf);
    }

  auto uvar = [&](std::size_t k, std::size_t i) { return uofs + k * nu + i; };
  auto xvar = [&](std::size_t k, std::size_t i) {  // k in 1..H
    return xofs + (k - 1) * nx + i;
  };
  auto evar = [&](std::size_t k, std::size_t i) { return eofs + k * nu + i; };
  auto row = [&]() { return Vector(total); };

  // Dynamics: x(k+1) - A x(k) - B u(k) = E w(t+k) + c, with x(0) = x fixed.
  for (std::size_t k = 0; k < h; ++k) {
    const Vector wk = oracle_.at(t_ + k);
    const Vector affine = sys_.e() * wk + sys_.c();
    for (std::size_t i = 0; i < nx; ++i) {
      Vector r = row();
      r[xvar(k + 1, i)] = 1.0;
      for (std::size_t j = 0; j < nu; ++j) r[uvar(k, j)] -= sys_.b()(i, j);
      double rhs = affine[i];
      if (k == 0) {
        for (std::size_t j = 0; j < nx; ++j) rhs += sys_.a()(i, j) * x[j];
      } else {
        for (std::size_t j = 0; j < nx; ++j) r[xvar(k, j)] -= sys_.a()(i, j);
      }
      mp.lp().add_constraint(r, lp::Relation::kEqual, rhs);
    }
  }

  // Successors inside X'.
  for (std::size_t k = 1; k <= h; ++k) {
    for (std::size_t ci = 0; ci < sets_.x_prime.num_constraints(); ++ci) {
      Vector r = row();
      for (std::size_t j = 0; j < nx; ++j) r[xvar(k, j)] = sets_.x_prime.a()(ci, j);
      mp.lp().add_constraint(r, lp::Relation::kLessEq, sets_.x_prime.b()[ci]);
    }
  }

  // Inputs inside U.
  for (std::size_t k = 0; k < h; ++k) {
    for (std::size_t ci = 0; ci < sys_.u_set().num_constraints(); ++ci) {
      Vector r = row();
      for (std::size_t j = 0; j < nu; ++j) r[uvar(k, j)] = sys_.u_set().a()(ci, j);
      mp.lp().add_constraint(r, lp::Relation::kLessEq, sys_.u_set().b()[ci]);
    }
  }

  // Input selection by big-M:
  //   |u(k) - kappa(x(k))| <= M (1 - z(k)),    |u(k) - u_skip| <= M z(k).
  for (std::size_t k = 0; k < h; ++k) {
    for (std::size_t i = 0; i < nu; ++i) {
      // u - K x - k0 - M(1-z) <= 0  and  -(u - K x - k0) - M(1-z) <= 0.
      for (const double sign : {1.0, -1.0}) {
        Vector r = row();
        r[uvar(k, i)] = sign;
        double rhs = big_m + sign * kappa_.offset()[i];
        if (k == 0) {
          for (std::size_t j = 0; j < nx; ++j)
            rhs += sign * kappa_.gain()(i, j) * x[j];
        } else {
          for (std::size_t j = 0; j < nx; ++j)
            r[xvar(k, j)] -= sign * kappa_.gain()(i, j);
        }
        r[zofs + k] = big_m;
        mp.lp().add_constraint(r, lp::Relation::kLessEq, rhs);
      }
      // |u - u_skip| <= M z.
      for (const double sign : {1.0, -1.0}) {
        Vector r = row();
        r[uvar(k, i)] = sign;
        r[zofs + k] = -big_m;
        mp.lp().add_constraint(r, lp::Relation::kLessEq, sign * u_skip_[i]);
      }
      // Energy epigraph: e >= +-(u - offset).
      for (const double sign : {1.0, -1.0}) {
        Vector r = row();
        r[uvar(k, i)] = sign;
        r[evar(k, i)] = -1.0;
        mp.lp().add_constraint(r, lp::Relation::kLessEq,
                               sign * config_.energy_offset[i]);
      }
    }
  }

  const mip::MipResult res = mip::solve(mp, config_.mip_options);
  last_.nodes_explored = res.nodes_explored;
  if (!res.has_incumbent) {
    last_.feasible = false;
    return 1;  // same safe fallback as the exact search
  }
  last_.feasible = true;
  last_.planned_cost = res.objective;
  last_.planned_z.resize(h);
  for (std::size_t k = 0; k < h; ++k)
    last_.planned_z[k] = static_cast<int>(std::lround(res.x[zofs + k]));
  return last_.planned_z.front();
}

}  // namespace oic::core
