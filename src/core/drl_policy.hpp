#pragma once
/// \file drl_policy.hpp
/// DRL-based skipping policy (Sec. III-B.2): a double-DQN agent maps
/// {x(t), w(t-r+1), ..., w(t)} to the skipping choice z(t).  This header
/// holds the inference-side policy plus the pieces shared with training:
/// the DQN state builder and the paper's reward function.

#include <memory>

#include "core/policy.hpp"
#include "core/safe_sets.hpp"
#include "rl/dqn.hpp"

namespace oic::core {

/// Assemble the DQN state vector {x, w-history} with memory length r:
/// the r most recent state-space disturbance observations, zero-padded at
/// the front when the episode is younger than r (the paper initializes
/// w(-r+1..-1) = 0).
linalg::Vector build_drl_state(const linalg::Vector& x, const WHistory& w_history,
                               std::size_t r, std::size_t w_dim);

/// Allocation-free variant: writes into `out` (resized once, then reused).
void build_drl_state_into(linalg::Vector& out, const linalg::Vector& x,
                          const WHistory& w_history, std::size_t r, std::size_t w_dim);

/// Per-feature normalization for the DQN state: the reciprocal half-widths
/// of the state box X and the state-space disturbance set E W, so every
/// network input lands in roughly [-1, 1].  Tiny half-widths (degenerate
/// disturbance coordinates) get scale 1 -- the feature is constant anyway.
/// Unscaled inputs make the tiny disturbance features invisible next to
/// the large position coordinates and cripple pattern learning.
linalg::Vector drl_state_scale(const control::AffineLTI& sys, std::size_t r);

/// Elementwise product helper used by the trainer and DrlPolicy to apply
/// the normalization; `scale` may be empty (no scaling).
linalg::Vector apply_state_scale(linalg::Vector state, const linalg::Vector& scale);
/// Same normalization applied in place (the allocation-free inference path).
void apply_state_scale_inplace(linalg::Vector& state, const linalg::Vector& scale);

/// DQN state dimension for the given plant dimensions and memory length.
std::size_t drl_state_dim(std::size_t nx, std::size_t w_dim, std::size_t r);

/// The paper's reward (penalty) R(s1, z, s2) = -w1 R1 - w2 R2 with
///   R1 = [x2 outside X'] and R2 = ||kappa(x1)||_1 unless (z = 0 and x1 in X').
/// `kappa_energy` is ||kappa(x1)||_1 supplied by the caller (computing it
/// may require an extra controller invocation during training only).
double skipping_reward(const SafeSets& sets, const linalg::Vector& x1, int z,
                       const linalg::Vector& x2, double kappa_energy, double w1,
                       double w2);

/// Inference-side policy wrapping a trained agent (greedy actions).
class DrlPolicy final : public SkipPolicy {
 public:
  /// `agent` is shared with the trainer that produced it; `r` is the
  /// disturbance memory length (the paper's ACC study uses r = 1) and
  /// `w_dim` the dimension of the stored disturbance observations.
  /// `state_scale` must match the normalization used during training
  /// (drl_state_scale); pass an empty vector for raw states.
  DrlPolicy(std::shared_ptr<const rl::DoubleDqn> agent, std::size_t r,
            std::size_t w_dim, linalg::Vector state_scale = {});

  /// Deployment-side construction from a bare network (a serialized
  /// agent's online net): greedy decisions are identical to wrapping the
  /// full agent -- greedy_action is argmax over the online forward pass.
  /// `label` becomes name(), so sweeps over several loaded agents stay
  /// distinguishable in tables and JSON.
  static std::unique_ptr<DrlPolicy> from_network(std::shared_ptr<const rl::Mlp> net,
                                                 std::size_t r, std::size_t w_dim,
                                                 linalg::Vector state_scale = {},
                                                 std::string label = "drl-dqn");

  int decide(const linalg::Vector& x, const WHistory& w_history) override;
  std::string name() const override { return label_; }

  /// Memory length r.
  std::size_t memory() const { return r_; }

 private:
  DrlPolicy(std::shared_ptr<const rl::Mlp> net, std::size_t r, std::size_t w_dim,
            linalg::Vector state_scale, std::string label);

  /// Greedy decisions only need the online network; the aliasing pointer
  /// keeps a wrapped agent alive when one was supplied.
  std::shared_ptr<const rl::Mlp> net_;
  std::size_t r_;
  std::size_t w_dim_;
  linalg::Vector state_scale_;
  std::string label_ = "drl-dqn";
  // Per-policy inference scratch: the network may be shared across threads
  // (its inference is const); the mutable buffers live here so each worker
  // owns its own and a steady-state decide() allocates nothing.
  linalg::Vector state_scratch_;
  rl::MlpWorkspace mlp_ws_;
};

}  // namespace oic::core
