#pragma once
/// \file policy.hpp
/// The skipping decision function Omega of Algorithm 1 (line 6).
///
/// A SkipPolicy is consulted ONLY when the monitor has already established
/// x(t) in X', so any return value is safe (Theorem 1); policies differ
/// purely in how much actuation energy / computation they save.  The paper
/// provides a model-based policy (Equation 6, see model_based.hpp) and a
/// DRL policy (Sec. III-B.2, see drl_policy.hpp); this header holds the
/// interface and the trivial baselines.

#include <string>
#include <vector>

#include "core/w_history.hpp"
#include "linalg/vector.hpp"

namespace oic::core {

/// Skipping decision function Omega(x, w-history) -> z in {0, 1}.
class SkipPolicy {
 public:
  virtual ~SkipPolicy() = default;

  /// Decide the skipping variable for the current step.
  /// `w_history` holds the most recent observed state-space disturbances
  /// (E w), oldest first; it may be shorter than the policy's memory at the
  /// start of an episode.  Return 1 to run the underlying controller, 0 to
  /// skip and actuate the designated skip input.  (WHistory converts
  /// implicitly from a std::vector of observations and from {}.)
  virtual int decide(const linalg::Vector& x, const WHistory& w_history) = 0;

  /// Per-episode reset (clears internal clocks / caches).
  virtual void reset() {}

  /// Diagnostic name for experiment tables.
  virtual std::string name() const = 0;

  /// Certified burst depth this policy requests from the framework
  /// (IntermittentConfig::burst_depth; the engines wire the plant's k-step
  /// ladder when this is >= 1).  0 -- the default for every per-step
  /// policy -- leaves the paper's per-period monitor untouched.
  virtual std::size_t burst_depth() const { return 0; }
};

/// Never skip: recovers the traditional "controller only" baseline the
/// paper compares against (RMPC-only in Sec. IV-A).
class AlwaysRunPolicy final : public SkipPolicy {
 public:
  int decide(const linalg::Vector&, const WHistory&) override { return 1; }
  std::string name() const override { return "always-run"; }
};

/// Always skip when allowed.  Combined with the monitor this is exactly the
/// paper's bang-bang scheme (Equation 7): zero input whenever x in X',
/// controller input once the monitor sees x outside X'.
class BangBangPolicy final : public SkipPolicy {
 public:
  int decide(const linalg::Vector&, const WHistory&) override { return 0; }
  std::string name() const override { return "bang-bang"; }
};

/// Periodic duty-cycle baseline: run the controller every `period`-th step.
/// Not in the paper; used by ablation benches to show that pattern-blind
/// skipping underperforms the learned policies.
class PeriodicPolicy final : public SkipPolicy {
 public:
  explicit PeriodicPolicy(std::size_t period);

  int decide(const linalg::Vector&, const WHistory&) override;
  void reset() override { t_ = 0; }
  std::string name() const override;

 private:
  std::size_t period_;
  std::size_t t_ = 0;
};

/// Burst-skip policy (extension; see core/safe_sets.hpp's k-step ladder):
/// skips whenever consulted -- bang-bang's decision rule -- and requests
/// certified bursts of up to `depth` periods from the framework.  When the
/// monitor finds x in X'_k (deepest k <= depth), the whole k-step burst is
/// certified at once and the next k-1 periods skip without set membership
/// checks or policy consultations, amortizing the monitor itself.
class BurstSkipPolicy final : public SkipPolicy {
 public:
  /// Requires depth >= 1 (depth 1 degenerates to bang-bang).
  explicit BurstSkipPolicy(std::size_t depth);

  int decide(const linalg::Vector&, const WHistory&) override { return 0; }
  std::string name() const override;
  std::size_t burst_depth() const override { return depth_; }

 private:
  std::size_t depth_;
};

/// Weakly-hard (m, K) governor (the constraint family of the paper's
/// related-work section): wraps any skipping policy and guarantees at most
/// `m` skips in every window of `K` consecutive steps by overriding excess
/// skip decisions to z = 1.  Useful when a downstream schedulability or
/// stability argument is phrased in (m, K) terms; composes with the monitor
/// (which can only force z = 1, never break the bound).
class WeaklyHardPolicy final : public SkipPolicy {
 public:
  /// `inner` is consulted first; the caller owns its lifetime.
  /// Requires m <= K, K >= 1.
  WeaklyHardPolicy(SkipPolicy& inner, std::size_t m, std::size_t k);

  int decide(const linalg::Vector& x, const WHistory& w_history) override;
  void reset() override;
  std::string name() const override;

  /// Record an externally-forced decision (e.g. the monitor overrode the
  /// policy with z = 1) so the window stays accurate.  Calling decide()
  /// already records its own outcome.
  void note_forced_run();

  /// Number of skips in the current window (diagnostics).
  std::size_t skips_in_window() const;

 private:
  SkipPolicy& inner_;
  std::size_t m_;
  std::size_t k_;
  std::vector<int> window_;  // ring of the last K decisions
  std::size_t head_ = 0;
  std::size_t filled_ = 0;

  void push(int z);
};

}  // namespace oic::core
