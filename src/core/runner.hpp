#pragma once
/// \file runner.hpp
/// Generic closed-loop rollout of the intermittent framework against the
/// true (disturbed) plant: steps the plant, consults Algorithm 1, records a
/// sim::Trace, and flags safety violations.  Domain harnesses (the ACC case
/// study) hook per-step callbacks to add domain metrics such as fuel.

#include <functional>

#include "core/intermittent.hpp"
#include "fault/fault.hpp"
#include "sim/trace.hpp"

namespace oic::core {

/// Rollout configuration.
struct RunConfig {
  std::size_t steps = 100;  ///< the paper evaluates 100-step episodes
};

/// Rollout outcome.
struct RunResult {
  sim::Trace trace;
  bool left_x = false;            ///< original safe set violated (never, by Thm 1)
  bool left_xi = false;           ///< invariant set violated (model mismatch)
  std::size_t first_violation = 0;
  linalg::Vector final_state;
  /// Fault accounting (all zero on the fault-free path).
  std::size_t degraded_steps = 0;  ///< steps handled in degraded mode
  std::size_t stale_forced = 0;    ///< stale/missing measurement forced z = 1
  std::size_t policy_unavail = 0;  ///< conservative default for Omega outage
  std::size_t meas_dropped = 0;    ///< measurement packets lost on the link
  std::size_t act_dropped = 0;     ///< actuation packets lost on the link
};

/// Source of the true disturbance at each step, in W-space (dimension nw).
using DisturbanceFn = std::function<linalg::Vector(std::size_t t)>;

/// Optional per-step hook: called after the plant stepped; may annotate the
/// TraceStep (e.g. fuel) before it is committed to the trace.
using StepHook = std::function<void(sim::TraceStep&, const linalg::Vector& x_next)>;

/// Run `cfg.steps` periods of Algorithm 1 from x0.  The plant evolves with
/// the *true* disturbance from `disturbance`; the framework only observes
/// states.  Violations are recorded, not thrown (the runner is also used to
/// probe deliberately broken configurations in tests); configure the
/// controller with strict_invariant = false for such probes.
///
/// With a non-null, active fault `link` the loop routes every channel
/// through it: the monitor sees only measurements the link delivers
/// (decide_measured, degraded mode), the plant receives the link's applied
/// input (actuation drops), and the policy sees compute outages.  The
/// disturbance-history residual is reconstructed only between consecutive
/// FRESH measurements (from measured states and the commanded input): the
/// framework never peeks at the true state.  The link must be reset for
/// this episode's stream; configure strict_invariant = false (actuation
/// drops can push the true state out of XI -- that is what left_xi
/// accounts).  A null or inactive link takes the historical fault-free
/// path, bit for bit.
RunResult run_closed_loop(const control::AffineLTI& sys, IntermittentController& ic,
                          const linalg::Vector& x0, const DisturbanceFn& disturbance,
                          const RunConfig& cfg = {}, const StepHook& hook = {},
                          fault::Link* link = nullptr);

}  // namespace oic::core
