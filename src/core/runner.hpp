#pragma once
/// \file runner.hpp
/// Generic closed-loop rollout of the intermittent framework against the
/// true (disturbed) plant: steps the plant, consults Algorithm 1, records a
/// sim::Trace, and flags safety violations.  Domain harnesses (the ACC case
/// study) hook per-step callbacks to add domain metrics such as fuel.

#include <functional>

#include "core/intermittent.hpp"
#include "sim/trace.hpp"

namespace oic::core {

/// Rollout configuration.
struct RunConfig {
  std::size_t steps = 100;  ///< the paper evaluates 100-step episodes
};

/// Rollout outcome.
struct RunResult {
  sim::Trace trace;
  bool left_x = false;            ///< original safe set violated (never, by Thm 1)
  bool left_xi = false;           ///< invariant set violated (model mismatch)
  std::size_t first_violation = 0;
  linalg::Vector final_state;
};

/// Source of the true disturbance at each step, in W-space (dimension nw).
using DisturbanceFn = std::function<linalg::Vector(std::size_t t)>;

/// Optional per-step hook: called after the plant stepped; may annotate the
/// TraceStep (e.g. fuel) before it is committed to the trace.
using StepHook = std::function<void(sim::TraceStep&, const linalg::Vector& x_next)>;

/// Run `cfg.steps` periods of Algorithm 1 from x0.  The plant evolves with
/// the *true* disturbance from `disturbance`; the framework only observes
/// states.  Violations are recorded, not thrown (the runner is also used to
/// probe deliberately broken configurations in tests); configure the
/// controller with strict_invariant = false for such probes.
RunResult run_closed_loop(const control::AffineLTI& sys, IntermittentController& ic,
                          const linalg::Vector& x0, const DisturbanceFn& disturbance,
                          const RunConfig& cfg = {}, const StepHook& hook = {});

}  // namespace oic::core
