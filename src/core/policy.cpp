#include "core/policy.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"

namespace oic::core {

PeriodicPolicy::PeriodicPolicy(std::size_t period) : period_(period) {
  OIC_REQUIRE(period >= 1, "PeriodicPolicy: period must be positive");
}

int PeriodicPolicy::decide(const linalg::Vector&, const WHistory&) {
  const int z = (t_ % period_ == 0) ? 1 : 0;
  ++t_;
  return z;
}

std::string PeriodicPolicy::name() const {
  std::ostringstream os;
  os << "periodic(" << period_ << ")";
  return os.str();
}

BurstSkipPolicy::BurstSkipPolicy(std::size_t depth) : depth_(depth) {
  OIC_REQUIRE(depth >= 1, "BurstSkipPolicy: depth must be positive");
}

std::string BurstSkipPolicy::name() const {
  std::ostringstream os;
  os << "burst(" << depth_ << ")";
  return os.str();
}

WeaklyHardPolicy::WeaklyHardPolicy(SkipPolicy& inner, std::size_t m, std::size_t k)
    : inner_(inner), m_(m), k_(k), window_(k, 1) {
  OIC_REQUIRE(k >= 1, "WeaklyHardPolicy: window must be positive");
  OIC_REQUIRE(m <= k, "WeaklyHardPolicy: m must not exceed K");
}

std::size_t WeaklyHardPolicy::skips_in_window() const {
  std::size_t skips = 0;
  for (std::size_t i = 0; i < filled_; ++i) {
    if (window_[i] == 0) ++skips;
  }
  return skips;
}

void WeaklyHardPolicy::push(int z) {
  window_[head_] = z;
  head_ = (head_ + 1) % k_;
  filled_ = std::min(filled_ + 1, k_);
}

int WeaklyHardPolicy::decide(const linalg::Vector& x, const WHistory& w_history) {
  int z = inner_.decide(x, w_history) == 0 ? 0 : 1;
  if (z == 0 && skips_in_window() >= m_) z = 1;  // (m, K) bound would break
  push(z);
  return z;
}

void WeaklyHardPolicy::note_forced_run() { push(1); }

void WeaklyHardPolicy::reset() {
  inner_.reset();
  std::fill(window_.begin(), window_.end(), 1);
  head_ = 0;
  filled_ = 0;
}

std::string WeaklyHardPolicy::name() const {
  std::ostringstream os;
  os << "weakly-hard(" << m_ << "," << k_ << ")[" << inner_.name() << "]";
  return os.str();
}

}  // namespace oic::core
