#include "core/intermittent.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "linalg/kernels.hpp"

namespace oic::core {

using linalg::Vector;

IntermittentController::IntermittentController(const control::AffineLTI& sys,
                                               const SafeSets& sets,
                                               control::Controller& kappa,
                                               SkipPolicy& omega,
                                               IntermittentConfig config)
    : sys_(sys), sets_(sets), kappa_(kappa), omega_(omega), config_(std::move(config)) {
  OIC_REQUIRE(config_.u_skip.size() == sys_.nu(),
              "IntermittentController: skip input dimension mismatch");
  OIC_REQUIRE(config_.w_memory >= 1,
              "IntermittentController: disturbance memory must be positive");
  OIC_REQUIRE(kappa_.state_dim() == sys_.nx() && kappa_.input_dim() == sys_.nu(),
              "IntermittentController: controller dimensions mismatch");
  OIC_REQUIRE(verify_nesting(sets_),
              "IntermittentController: sets must satisfy X' subset XI subset X");
  OIC_REQUIRE(sys_.u_set().contains(config_.u_skip, 1e-9),
              "IntermittentController: skip input must be admissible (in U)");
  if (config_.burst_depth >= 1) {
    OIC_REQUIRE(!config_.ladder.empty(),
                "IntermittentController: burst mode needs the k-step ladder "
                "(certificate)");
    max_burst_ = std::min(config_.burst_depth, config_.ladder.size());
    for (const auto& rung : config_.ladder) {
      OIC_REQUIRE(rung.dim() == sys_.nx(),
                  "IntermittentController: ladder set dimension mismatch");
    }
    // The burst certificate composes with Theorem 1 only if the ladder's
    // base is inside X' (one certified skip implies the monitor would have
    // allowed it); deeper rungs must nest so "deepest containing rung"
    // searches are sound.  A certificate-fed ladder already carries both
    // properties (cert::synthesize is correct by construction, loads are
    // payload-hash-checked against it, cert::verify re-proves them), so
    // ladder_certified skips the LP-based re-checks -- the harness builds
    // one controller per episode and must not pay them per episode.
    if (!config_.ladder_certified) {
      OIC_REQUIRE(
          poly::contains_polytope(sets_.x_prime, config_.ladder.front(), 1e-6),
          "IntermittentController: ladder base X'_1 must be inside X'");
      for (std::size_t k = 1; k < max_burst_; ++k) {
        OIC_REQUIRE(poly::contains_polytope(config_.ladder[k - 1], config_.ladder[k],
                                            1e-6),
                    "IntermittentController: ladder chain must be nested");
      }
    }
  }
  w_history_.set_capacity(config_.w_memory);
}

StepDecision IntermittentController::decide(const Vector& x) {
  OIC_REQUIRE(x.size() == sys_.nx(), "IntermittentController::decide: state mismatch");
  ++total_steps_;

  StepDecision d;
  if (burst_remaining_ > 0) {
    // Inside a certified burst: the X'_k membership established when the
    // burst started guarantees this period's skip keeps the state in XI
    // for every disturbance, so neither the monitor nor the policy runs.
    --burst_remaining_;
    d.z = 0;
    d.u = config_.u_skip;
    ++skipped_steps_;
    ++burst_steps_;
    return d;
  }

  if (config_.strict_invariant && !sets_.xi.contains(x, 1e-6)) {
    throw NumericalError(
        "IntermittentController: state left the robust invariant set XI; the "
        "plant violates the model assumptions (Algorithm 1 precondition)");
  }

  if (sets_.x_prime.contains(x)) {
    // Line 6: the policy decides freely -- safety holds either way.
    d.policy_consulted = true;
    d.z = omega_.decide(x, w_history_) == 0 ? 0 : 1;
  } else {
    // Line 8: outside X' the controller must run.
    d.z = 1;
    d.forced = true;
    ++forced_steps_;
  }

  if (d.z == 1) {
    d.u = kappa_.control(x);
  } else {
    d.u = config_.u_skip;
    ++skipped_steps_;
    if (max_burst_ >= 2) {
      // Certify the deepest burst the ladder supports at this state: the
      // next k-1 periods then skip without any monitor work.
      for (std::size_t k = max_burst_; k >= 2; --k) {
        if (config_.ladder[k - 1].contains(x)) {
          burst_remaining_ = k - 1;
          break;
        }
      }
    }
  }
  return d;
}

void IntermittentController::record_transition(const Vector& x, const Vector& u,
                                               const Vector& x_next) {
  OIC_REQUIRE(x.size() == sys_.nx() && x_next.size() == sys_.nx() &&
                  u.size() == sys_.nu(),
              "IntermittentController::record_transition: dimension mismatch");
  // Realized disturbance E w = x_next - A x - B u - c, accumulated into the
  // scratch vector (same operation order as the expression form) and pushed
  // into the ring: no allocation in the steady state.
  ew_scratch_ = x_next;
  double* ew = ew_scratch_.data().data();
  linalg::gemv_sub(sys_.a(), x.data().data(), ew);
  linalg::gemv_sub(sys_.b(), u.data().data(), ew);
  for (std::size_t i = 0; i < ew_scratch_.size(); ++i) ew[i] -= sys_.c()[i];
  w_history_.push(ew_scratch_);
}

void IntermittentController::reset() {
  w_history_.clear();
  burst_remaining_ = 0;
  omega_.reset();
}

void IntermittentController::reset_stats() {
  total_steps_ = 0;
  skipped_steps_ = 0;
  forced_steps_ = 0;
  burst_steps_ = 0;
}

}  // namespace oic::core
