#include "core/intermittent.hpp"

#include "common/error.hpp"
#include "linalg/kernels.hpp"

namespace oic::core {

using linalg::Vector;

IntermittentController::IntermittentController(const control::AffineLTI& sys,
                                               const SafeSets& sets,
                                               control::Controller& kappa,
                                               SkipPolicy& omega,
                                               IntermittentConfig config)
    : sys_(sys), sets_(sets), kappa_(kappa), omega_(omega), config_(std::move(config)) {
  OIC_REQUIRE(config_.u_skip.size() == sys_.nu(),
              "IntermittentController: skip input dimension mismatch");
  OIC_REQUIRE(config_.w_memory >= 1,
              "IntermittentController: disturbance memory must be positive");
  OIC_REQUIRE(kappa_.state_dim() == sys_.nx() && kappa_.input_dim() == sys_.nu(),
              "IntermittentController: controller dimensions mismatch");
  OIC_REQUIRE(verify_nesting(sets_),
              "IntermittentController: sets must satisfy X' subset XI subset X");
  OIC_REQUIRE(sys_.u_set().contains(config_.u_skip, 1e-9),
              "IntermittentController: skip input must be admissible (in U)");
  w_history_.set_capacity(config_.w_memory);
}

StepDecision IntermittentController::decide(const Vector& x) {
  OIC_REQUIRE(x.size() == sys_.nx(), "IntermittentController::decide: state mismatch");
  ++total_steps_;

  StepDecision d;
  if (config_.strict_invariant && !sets_.xi.contains(x, 1e-6)) {
    throw NumericalError(
        "IntermittentController: state left the robust invariant set XI; the "
        "plant violates the model assumptions (Algorithm 1 precondition)");
  }

  if (sets_.x_prime.contains(x)) {
    // Line 6: the policy decides freely -- safety holds either way.
    d.policy_consulted = true;
    d.z = omega_.decide(x, w_history_) == 0 ? 0 : 1;
  } else {
    // Line 8: outside X' the controller must run.
    d.z = 1;
    d.forced = true;
    ++forced_steps_;
  }

  if (d.z == 1) {
    d.u = kappa_.control(x);
  } else {
    d.u = config_.u_skip;
    ++skipped_steps_;
  }
  return d;
}

void IntermittentController::record_transition(const Vector& x, const Vector& u,
                                               const Vector& x_next) {
  OIC_REQUIRE(x.size() == sys_.nx() && x_next.size() == sys_.nx() &&
                  u.size() == sys_.nu(),
              "IntermittentController::record_transition: dimension mismatch");
  // Realized disturbance E w = x_next - A x - B u - c, accumulated into the
  // scratch vector (same operation order as the expression form) and pushed
  // into the ring: no allocation in the steady state.
  ew_scratch_ = x_next;
  double* ew = ew_scratch_.data().data();
  linalg::gemv_sub(sys_.a(), x.data().data(), ew);
  linalg::gemv_sub(sys_.b(), u.data().data(), ew);
  for (std::size_t i = 0; i < ew_scratch_.size(); ++i) ew[i] -= sys_.c()[i];
  w_history_.push(ew_scratch_);
}

void IntermittentController::reset() {
  w_history_.clear();
  omega_.reset();
}

void IntermittentController::reset_stats() {
  total_steps_ = 0;
  skipped_steps_ = 0;
  forced_steps_ = 0;
}

}  // namespace oic::core
