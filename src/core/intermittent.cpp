#include "core/intermittent.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "linalg/kernels.hpp"
#include "lp/problem.hpp"
#include "lp/simplex.hpp"
#include "poly/support_solver.hpp"

namespace oic::core {

using linalg::Vector;

IntermittentController::IntermittentController(const control::AffineLTI& sys,
                                               const SafeSets& sets,
                                               control::Controller& kappa,
                                               SkipPolicy& omega,
                                               IntermittentConfig config)
    : sys_(sys), sets_(sets), kappa_(kappa), omega_(omega), config_(std::move(config)) {
  OIC_REQUIRE(config_.u_skip.size() == sys_.nu(),
              "IntermittentController: skip input dimension mismatch");
  OIC_REQUIRE(config_.w_memory >= 1,
              "IntermittentController: disturbance memory must be positive");
  OIC_REQUIRE(kappa_.state_dim() == sys_.nx() && kappa_.input_dim() == sys_.nu(),
              "IntermittentController: controller dimensions mismatch");
  OIC_REQUIRE(verify_nesting(sets_),
              "IntermittentController: sets must satisfy X' subset XI subset X");
  OIC_REQUIRE(sys_.u_set().contains(config_.u_skip, 1e-9),
              "IntermittentController: skip input must be admissible (in U)");
  OIC_REQUIRE(config_.recovery_gain.rows() == 0 ||
                  (config_.recovery_gain.rows() == sys_.nu() &&
                   config_.recovery_gain.cols() == sys_.nx()),
              "IntermittentController: recovery gain must be nu-by-nx");
  if (config_.burst_depth >= 1) {
    OIC_REQUIRE(!config_.ladder.empty(),
                "IntermittentController: burst mode needs the k-step ladder "
                "(certificate)");
    max_burst_ = std::min(config_.burst_depth, config_.ladder.size());
    for (const auto& rung : config_.ladder) {
      OIC_REQUIRE(rung.dim() == sys_.nx(),
                  "IntermittentController: ladder set dimension mismatch");
    }
    // The burst certificate composes with Theorem 1 only if the ladder's
    // base is inside X' (one certified skip implies the monitor would have
    // allowed it); deeper rungs must nest so "deepest containing rung"
    // searches are sound.  A certificate-fed ladder already carries both
    // properties (cert::synthesize is correct by construction, loads are
    // payload-hash-checked against it, cert::verify re-proves them), so
    // ladder_certified skips the LP-based re-checks -- the harness builds
    // one controller per episode and must not pay them per episode.
    if (!config_.ladder_certified) {
      OIC_REQUIRE(
          poly::contains_polytope(sets_.x_prime, config_.ladder.front(), 1e-6),
          "IntermittentController: ladder base X'_1 must be inside X'");
      for (std::size_t k = 1; k < max_burst_; ++k) {
        OIC_REQUIRE(poly::contains_polytope(config_.ladder[k - 1], config_.ladder[k],
                                            1e-6),
                    "IntermittentController: ladder chain must be nested");
      }
    }
  }
  w_history_.set_capacity(config_.w_memory);
}

StepDecision IntermittentController::decide(const Vector& x) {
  OIC_REQUIRE(x.size() == sys_.nx(), "IntermittentController::decide: state mismatch");
  return decide_at(x, /*policy_ok=*/true, /*graceful=*/false);
}

StepDecision IntermittentController::decide_at(const Vector& x, bool policy_ok,
                                               bool graceful) {
  ++total_steps_;

  StepDecision d;
  if (burst_remaining_ > 0) {
    // Inside a certified burst: the X'_k membership established when the
    // burst started guarantees this period's skip keeps the state in XI
    // for every disturbance, so neither the monitor nor the policy runs.
    --burst_remaining_;
    d.z = 0;
    d.u = config_.u_skip;
    ++skipped_steps_;
    ++burst_steps_;
    return d;
  }

  if (config_.strict_invariant && !sets_.xi.contains(x, 1e-6)) {
    throw NumericalError(
        "IntermittentController: state left the robust invariant set XI; the "
        "plant violates the model assumptions (Algorithm 1 precondition)");
  }

  if (sets_.x_prime.contains(x)) {
    if (policy_ok) {
      // Line 6: the policy decides freely -- safety holds either way.
      d.policy_consulted = true;
      d.z = omega_.decide(x, w_history_) == 0 ? 0 : 1;
    } else {
      // Degraded: the skip-policy compute is unavailable this period, and
      // the monitor never skips without Omega's say-so -- the conservative
      // default z = 1 keeps safety trivially (z = 1 is always safe).
      d.z = 1;
      d.degraded = true;
      ++degraded_steps_;
      ++policy_unavail_;
    }
  } else {
    // Line 8: outside X' the controller must run (no Omega consultation,
    // so a policy-compute outage does not degrade this branch).
    d.z = 1;
    d.forced = true;
    ++forced_steps_;
  }

  if (d.z == 1) {
    if (graceful) {
      // Under faults the true state can exit the controller's feasible
      // region (e.g. actuation drops); the saturated recovery feedback
      // keeps a restoring force on the loop so the MPC can take over
      // again, and the episode stays alive for the campaign to account
      // for the excursion.
      try {
        d.u = kappa_.control(x);
      } catch (const NumericalError&) {
        d.u = recovery_input(x);
        if (!d.degraded) {
          d.degraded = true;
          ++degraded_steps_;
        }
      }
    } else {
      d.u = kappa_.control(x);
    }
  } else {
    d.u = config_.u_skip;
    ++skipped_steps_;
    if (max_burst_ >= 2) {
      // Certify the deepest burst the ladder supports at this state: the
      // next k-1 periods then skip without any monitor work.
      for (std::size_t k = max_burst_; k >= 2; --k) {
        if (config_.ladder[k - 1].contains(x)) {
          burst_remaining_ = k - 1;
          break;
        }
      }
    }
  }
  return d;
}

void IntermittentController::seed_state(const Vector& x0) {
  OIC_REQUIRE(x0.size() == sys_.nx(),
              "IntermittentController::seed_state: state dimension mismatch");
  tracking_ = true;
  step_index_ = 0;
  x_hat_ = x0;
  seed_x0_ = x0;
  have_ew_hold_ = false;
  have_last_meas_ = false;
  last_meas_step_ = 0;
  const std::size_t ring = std::max<std::size_t>(config_.stale_limit, 1);
  if (issued_u_.size() != ring) issued_u_.assign(ring, Vector(sys_.nu()));
  if (!ew_set_ready_) {
    // The disturbance observer's clamp region, built once per controller:
    // only degraded-mode users (faulted episode loops) ever reach here.
    ew_set_ = sys_.disturbance_in_state_space();
    ew_set_ready_ = true;
  }
}

void IntermittentController::track_issued(const Vector& u) {
  issued_u_[step_index_ % issued_u_.size()] = u;
  // Prior for the next period: nominal step plus the held disturbance
  // estimate; a fresh measurement overwrites it, a stale one re-rolls from
  // its own sample.
  x_hat_ = sys_.step_nominal(x_hat_, u);
  if (have_ew_hold_) {
    for (std::size_t i = 0; i < x_hat_.size(); ++i) x_hat_[i] += ew_hold_[i];
  }
  ++step_index_;
}

void IntermittentController::observe_delivered(const Vector& x_meas,
                                               std::size_t age) {
  if (age > step_index_) return;  // pre-episode sample: nothing to anchor on
  const std::size_t sample = step_index_ - age;
  // One-step disturbance observer: two delivered samples of CONSECUTIVE
  // periods, with the input issued between them still in the ring, give
  // the realized state-space disturbance of that period exactly (modulo
  // spike corruption and actuation-drop mismatch -- the clamp below bounds
  // both):  E w(s-1) = x(s) - A x(s-1) - B u(s-1) - c.
  if (have_last_meas_ && sample == last_meas_step_ + 1 &&
      step_index_ - last_meas_step_ <= issued_u_.size()) {
    roll_scratch_ = sys_.step_nominal(last_meas_x_,
                                      issued_u_[last_meas_step_ % issued_u_.size()]);
    ew_hold_ = x_meas;
    for (std::size_t i = 0; i < ew_hold_.size(); ++i) ew_hold_[i] -= roll_scratch_[i];
    // Ray-clamp into E W: scale the estimate toward the origin until every
    // face of the disturbance set admits it.  A corrupted residual then
    // never feeds forward more than the worst-case disturbance it stands
    // in for (0 is in E W whenever the disturbance set admits rest, w = 0).
    double lam = 1.0;
    for (std::size_t i = 0; i < ew_set_.num_constraints(); ++i) {
      double dot = 0.0;
      for (std::size_t j = 0; j < ew_hold_.size(); ++j) {
        dot += ew_set_.a()(i, j) * ew_hold_[j];
      }
      const double bi = ew_set_.b()[i];
      if (dot > bi) lam = std::min(lam, bi > 0.0 ? bi / dot : 0.0);
    }
    if (lam < 1.0) {
      for (std::size_t i = 0; i < ew_hold_.size(); ++i) ew_hold_[i] *= lam;
    }
    have_ew_hold_ = true;
  }
  if (!have_last_meas_ || sample > last_meas_step_) {
    last_meas_x_ = x_meas;
    last_meas_step_ = sample;
    have_last_meas_ = true;
  }
}

StepDecision IntermittentController::decide_measured(const MeasuredState& m,
                                                     bool policy_ok) {
  OIC_REQUIRE(tracking_,
              "IntermittentController::decide_measured: seed_state() required");
  const bool fresh = m.available && m.age == 0;
  if (m.available) observe_delivered(m.x, m.age);

  StepDecision d;
  if (fresh) {
    x_hat_ = m.x;
    d = decide_at(x_hat_, policy_ok, /*graceful=*/true);
    track_issued(d.u);
    return d;
  }

  // Reconcile a stale-but-usable measurement: roll its sample forward
  // through the inputs issued since it was taken, feeding the observer's
  // held disturbance estimate forward each period.  Beyond stale_limit the
  // issued-input ring no longer covers the gap and the propagated estimate
  // carries on.
  if (m.available && m.age <= config_.stale_limit && m.age <= step_index_) {
    roll_scratch_ = m.x;
    for (std::size_t s = step_index_ - m.age; s < step_index_; ++s) {
      roll_scratch_ = sys_.step_nominal(roll_scratch_, issued_u_[s % issued_u_.size()]);
      if (have_ew_hold_) {
        for (std::size_t i = 0; i < roll_scratch_.size(); ++i) {
          roll_scratch_[i] += ew_hold_[i];
        }
      }
    }
    x_hat_ = roll_scratch_;
  }

  ++total_steps_;
  d.degraded = true;
  ++degraded_steps_;
  if (burst_remaining_ > 0) {
    // A certified burst covers a monitor blackout exactly: X'_k membership
    // at burst start bounds the whole burst inside XI for every
    // disturbance sequence, with no measurement needed.
    --burst_remaining_;
    d.z = 0;
    d.u = config_.u_skip;
    ++skipped_steps_;
    ++burst_steps_;
  } else {
    // The monitor cannot evaluate x in X' without a fresh measurement:
    // conservatively force the controller at the estimate (the tube bounds
    // the estimate error over the blackout); if even that is infeasible,
    // apply the saturated recovery feedback rather than killing the
    // episode.
    d.z = 1;
    d.forced = true;
    ++forced_steps_;
    ++stale_forced_;
    try {
      d.u = kappa_.control(x_hat_);
    } catch (const NumericalError&) {
      d.u = recovery_input(x_hat_);
    }
    // Stale-step robustification (active recovery only): the estimate
    // may stand for any state reachable under the unmeasured disturbance
    // periods AND the unconfirmed actuation drops behind the anchor --
    // kappa at the nominal estimate under-reacts exactly when one of
    // those realizations is near its bound, and by the time a delivered
    // sample reveals it the state has already coasted past XI across a
    // face the input cannot reach in one step.  Robust-check kappa's
    // plan against every counterfactual and substitute the
    // hypothesis-robust max-contraction input when the worst case
    // violates XI.
    if (config_.recovery_gain.rows() > 0) robustify_stale_input(d);
  }
  track_issued(d.u);
  return d;
}

bool IntermittentController::contraction_input(
    const std::vector<Vector>& states, const std::vector<double>* inflation,
    const double* nominal_cap, Vector& u_out) const {
  // One-step max-contraction: choose the admissible input minimizing the
  // worst-case predicted XI violation,
  //
  //   min_{u in U, t}  t   s.t.  a_i (A x_h + B u + c + ew_hat) - b_i
  //                                + inflation_i  <=  t,
  //
  // over every face i of XI and every candidate estimate x_h.  Unlike a
  // fixed feedback gain this uses the full actuation authority while the
  // estimate is outside XI (the gain's proportional pull can be far
  // weaker than U allows, letting the state coast deeper before
  // turning), and it hands over to kappa at exactly the feasible
  // region's edge since XI is kappa's feasible set.  With several
  // candidate estimates (actuation-drop counterfactuals) and `inflation`
  // (per-face supports of the accumulated disturbance-error set), the
  // minimized quantity is the violation of the WORST state the estimate
  // could stand for: the blind-window robust action.
  //
  // `nominal_cap` guards the minimax against unfixable hypotheses: with
  // it set, states[0] (the nominal estimate) additionally keeps its
  // predicted violation at or below the cap as a HARD constraint.
  // Without the cap, a counterfactual no input can rescue would let the
  // optimizer trade the nominal branch's safety away to equalize the
  // maximum -- actively steering the (almost certainly real) nominal
  // trajectory toward the boundary.  Callers pass the violation level of
  // the plan being replaced, so the cap is always achievable.
  const std::size_t nu = sys_.nu();
  const std::size_t nx = sys_.nx();
  const poly::HPolytope& xi = sets_.xi;
  const poly::HPolytope& u_set = sys_.u_set();
  lp::Problem prob(nu + 1);
  prob.set_objective_coeff(nu, 1.0);
  Vector row(nu + 1);
  for (std::size_t h = 0; h < states.size(); ++h) {
    Vector xpred = sys_.a() * states[h];
    for (std::size_t i = 0; i < nx; ++i) {
      xpred[i] += sys_.c()[i];
      if (have_ew_hold_) xpred[i] += ew_hold_[i];
    }
    for (std::size_t i = 0; i < xi.num_constraints(); ++i) {
      double rhs = xi.b()[i];
      if (inflation != nullptr) rhs -= (*inflation)[i];
      for (std::size_t k = 0; k < nx; ++k) rhs -= xi.a()(i, k) * xpred[k];
      for (std::size_t j = 0; j < nu; ++j) {
        double coeff = 0.0;
        for (std::size_t k = 0; k < nx; ++k) {
          coeff += xi.a()(i, k) * sys_.b()(k, j);
        }
        row[j] = coeff;
      }
      if (h == 0 && nominal_cap != nullptr) {
        // The nominal branch is purely constrained, never optimized: the
        // minimax objective ranges over the counterfactual branches only.
        row[nu] = 0.0;
        prob.add_constraint(row, lp::Relation::kLessEq, rhs + *nominal_cap);
      } else {
        row[nu] = -1.0;
        prob.add_constraint(row, lp::Relation::kLessEq, rhs);
      }
    }
  }
  for (std::size_t i = 0; i < u_set.num_constraints(); ++i) {
    for (std::size_t j = 0; j < nu; ++j) row[j] = u_set.a()(i, j);
    row[nu] = 0.0;
    prob.add_constraint(row, lp::Relation::kLessEq, u_set.b()[i]);
  }
  const lp::Result res = lp::solve(prob);
  if (res.status != lp::Status::kOptimal) return false;
  u_out = Vector(nu);
  for (std::size_t j = 0; j < nu; ++j) u_out[j] = res.x[j];
  return true;
}

void IntermittentController::robustify_stale_input(StepDecision& d) {
  // Anchor on the freshest delivered sample (the exact initial state
  // before anything arrives): every estimate hypothesis is a roll-forward
  // of the anchor through the issued-input ring.
  const Vector& anchor = have_last_meas_ ? last_meas_x_ : seed_x0_;
  const std::size_t s = have_last_meas_ ? last_meas_step_ : 0;
  const std::size_t g = step_index_ - s;
  if (g == 0 || g > config_.stale_limit) return;

  // Counterfactual estimates.  The sensor confirms states, never applied
  // inputs, so each of the g periods since the anchor may have silently
  // dropped its actuation: the receiver then re-applied its hold register
  // (the previously delivered input) or -- zero-input receivers and a
  // first-period drop -- nothing.  One roll per (period, candidate) whose
  // applied input would differ from the issued one; in steady state
  // consecutive issues coincide and the nominal roll is the only
  // hypothesis.  hyps[0] is the nominal roll (equal to x_hat_ whenever a
  // stale measurement was just reconciled).
  std::vector<Vector> hyps;
  const auto roll = [&](std::size_t drop_at, const Vector* applied) {
    Vector x = anchor;
    for (std::size_t j = s; j < step_index_; ++j) {
      const Vector& u = (applied != nullptr && j == drop_at)
                            ? *applied
                            : issued_u_[j % issued_u_.size()];
      x = sys_.step_nominal(x, u);
      if (have_ew_hold_) {
        for (std::size_t i = 0; i < x.size(); ++i) x[i] += ew_hold_[i];
      }
    }
    hyps.push_back(std::move(x));
  };
  roll(0, nullptr);
  const Vector zero_u(sys_.nu());
  for (std::size_t j = s; j < step_index_; ++j) {
    const Vector& issued = issued_u_[j % issued_u_.size()];
    const Vector* candidates[2] = {&zero_u, nullptr};
    // The hold register re-applies the previous issued input -- usable
    // only while that slot is still live in the ring.
    if (j >= 1 && step_index_ - (j - 1) <= issued_u_.size()) {
      candidates[1] = &issued_u_[(j - 1) % issued_u_.size()];
    }
    for (const Vector* cand : candidates) {
      if (cand == nullptr) continue;
      double delta = 0.0;
      for (std::size_t k = 0; k < issued.size(); ++k) {
        delta = std::max(delta, std::abs((*cand)[k] - issued[k]));
      }
      if (delta > 1e-9) roll(j, cand);
    }
  }
  // No counterfactual differs from the nominal roll: nothing an actuation
  // drop could hide.  Pure disturbance-accumulation uncertainty is kappa's
  // territory -- the tube margins absorb in-E W disturbances by design --
  // so overriding here would second-guess a controller with strictly more
  // lookahead than this one-step check.
  if (hyps.size() <= 1) return;

  // Robust-check the planned input: worst-case next-step XI violation
  // over the COUNTERFACTUAL hypotheses, each face inflated by the support
  // of the accumulated disturbance-error set S_{g+1} (g unmeasured periods
  // behind the anchor plus the step being decided).  The nominal branch
  // never arms the override (see above); it only sets the safety budget.
  //
  // Branches no input can rescue are dropped entirely: minimizing the max
  // over an unfixable branch just equalizes the achievable branches UP to
  // the hopeless one, actively steering the (overwhelmingly likely) real
  // trajectory toward the boundary for nothing.  The screen is the sound
  // lower bound  max_i [a_i (A x_h + c + ew_hat) + infl_i - b_i + p_i]
  // with p_i = min_{u in U} a_i B u  (a per-face constant, built lazily
  // below): a positive bound proves even full authority cannot bring the
  // branch inside XI this step.
  const std::vector<double>& infl = stale_inflation(g + 1);
  const poly::HPolytope& xi = sets_.xi;
  if (u_pull_.empty()) {
    const linalg::Matrix& b_mat = sys_.b();
    const std::size_t nu = sys_.nu();
    linalg::Matrix dirs(xi.num_constraints(), nu);
    for (std::size_t i = 0; i < xi.num_constraints(); ++i) {
      for (std::size_t j = 0; j < nu; ++j) {
        double v = 0.0;
        for (std::size_t k = 0; k < sys_.nx(); ++k) {
          v += xi.a()(i, k) * b_mat(k, j);
        }
        dirs(i, j) = -v;
      }
    }
    poly::SupportSolver u_solver(sys_.u_set());
    u_pull_.reserve(xi.num_constraints());
    for (const poly::Support& s : u_solver.support_batch(dirs)) {
      // U is bounded nonempty by construction; degrade to "never screen"
      // on a degenerate input set rather than excluding rescuable
      // branches.
      u_pull_.push_back((s.bounded && s.feasible) ? -s.value : -1e300);
    }
  }
  double worst = 0.0;
  double nominal = -1e300;
  std::vector<Vector> actionable;
  actionable.reserve(hyps.size());
  actionable.push_back(hyps[0]);
  const Vector no_input(sys_.nu());
  for (std::size_t h = 0; h < hyps.size(); ++h) {
    // Drift-only prediction (B u contributes nothing): base_i plus the
    // planned input's pull gives the violation under d.u; plus the best
    // pull, the fixability bound.
    roll_scratch_ = sys_.step_nominal(hyps[h], no_input);
    if (have_ew_hold_) {
      for (std::size_t i = 0; i < roll_scratch_.size(); ++i) {
        roll_scratch_[i] += ew_hold_[i];
      }
    }
    double v_planned = -1e300;
    double fix_bound = -1e300;
    for (std::size_t i = 0; i < xi.num_constraints(); ++i) {
      double base = infl[i] - xi.b()[i];
      for (std::size_t k = 0; k < roll_scratch_.size(); ++k) {
        base += xi.a()(i, k) * roll_scratch_[k];
      }
      double pull = 0.0;
      for (std::size_t j = 0; j < d.u.size(); ++j) {
        double coeff = 0.0;
        for (std::size_t k = 0; k < sys_.nx(); ++k) {
          coeff += xi.a()(i, k) * sys_.b()(k, j);
        }
        pull += coeff * d.u[j];
      }
      v_planned = std::max(v_planned, base + pull);
      fix_bound = std::max(fix_bound, base + u_pull_[i]);
    }
    if (h == 0) {
      nominal = v_planned;
      continue;
    }
    if (fix_bound > 0.0) continue;  // provably unfixable: excluded
    actionable.push_back(hyps[h]);
    worst = std::max(worst, v_planned);
  }
  if (worst > 0.0 && actionable.size() > 1) {
    hyps.swap(actionable);
    // The nominal branch may not end up worse off than under the plan
    // being replaced (and never pushed outside XI when the plan kept it
    // inside): the plan itself satisfies the cap, so the constrained
    // minimax is always feasible.
    const double cap = std::max(nominal, 0.0);
    Vector u_robust;
    if (contraction_input(hyps, &infl, &cap, u_robust)) d.u = u_robust;
  }
}

const std::vector<double>& IntermittentController::stale_inflation(
    std::size_t g) {
  const poly::HPolytope& xi = sets_.xi;
  const std::size_t faces = xi.num_constraints();
  const std::size_t nx = sys_.nx();
  if (infl_cache_.empty()) {
    infl_cache_.emplace_back(faces, 0.0);  // S_0 = {0}
    infl_dirs_ = xi.a();                   // (A^T)^0 a_i
  }
  if (infl_cache_.size() <= g) {
    // One solver over E W answers every face of every missing level; the
    // carried direction matrix feeds the batched entry as-is.
    poly::SupportSolver ew_solver(ew_set_);
    while (infl_cache_.size() <= g) {
      // Extend by one level: S_{L+1} = S_L + A^L E W, so each face gains
      // the support of E W along (A^T)^L a_i; then propagate the carried
      // directions by one more power of A (row-vector times A).
      std::vector<double> next = infl_cache_.back();
      const std::vector<poly::Support> sup = ew_solver.support_batch(infl_dirs_);
      for (std::size_t i = 0; i < faces; ++i) {
        const poly::Support& s = sup[i];
        // E W is a bounded nonempty polytope by construction; guard anyway
        // so a degenerate disturbance model degrades to no inflation
        // rather than poisoning the cache.
        next[i] += (s.bounded && s.feasible) ? s.value : 0.0;
      }
      linalg::Matrix propagated(faces, nx);
      for (std::size_t i = 0; i < faces; ++i) {
        for (std::size_t k = 0; k < nx; ++k) {
          double v = 0.0;
          for (std::size_t m = 0; m < nx; ++m) {
            v += infl_dirs_(i, m) * sys_.a()(m, k);
          }
          propagated(i, k) = v;
        }
      }
      infl_dirs_ = std::move(propagated);
      infl_cache_.push_back(std::move(next));
    }
  }
  return infl_cache_[g];
}

Vector IntermittentController::recovery_input(const Vector& x) const {
  if (config_.recovery_gain.rows() == 0) return config_.u_skip;
  Vector u;
  if (contraction_input({x}, nullptr, nullptr, u)) return u;
  // Fallback (solver iteration limit -- U is nonempty so the model is
  // never infeasible or unbounded): the saturated stabilizing gain.
  const poly::HPolytope& u_set = sys_.u_set();
  u = config_.recovery_gain * x;
  // Ray-saturate into U toward the skip input (admissible by the ctor
  // precondition): u <- u_skip + lam * (u - u_skip) with the largest
  // lam in [0, 1] every face of U admits.  Direction-preserving, so the
  // feedback keeps pointing where the stabilizing gain says even when the
  // estimate is far out and K x alone would violate the input limits.
  double lam = 1.0;
  for (std::size_t i = 0; i < u_set.num_constraints(); ++i) {
    double along = 0.0;
    double base = 0.0;
    for (std::size_t j = 0; j < u.size(); ++j) {
      along += u_set.a()(i, j) * (u[j] - config_.u_skip[j]);
      base += u_set.a()(i, j) * config_.u_skip[j];
    }
    const double room = u_set.b()[i] - base;
    if (along > room) lam = std::min(lam, room > 0.0 ? room / along : 0.0);
  }
  if (lam < 1.0) {
    for (std::size_t j = 0; j < u.size(); ++j) {
      u[j] = config_.u_skip[j] + lam * (u[j] - config_.u_skip[j]);
    }
  }
  return u;
}

void IntermittentController::record_transition(const Vector& x, const Vector& u,
                                               const Vector& x_next) {
  OIC_REQUIRE(x.size() == sys_.nx() && x_next.size() == sys_.nx() &&
                  u.size() == sys_.nu(),
              "IntermittentController::record_transition: dimension mismatch");
  // Realized disturbance E w = x_next - A x - B u - c, accumulated into the
  // scratch vector (same operation order as the expression form) and pushed
  // into the ring: no allocation in the steady state.
  ew_scratch_ = x_next;
  double* ew = ew_scratch_.data().data();
  linalg::gemv_sub(sys_.a(), x.data().data(), ew);
  linalg::gemv_sub(sys_.b(), u.data().data(), ew);
  for (std::size_t i = 0; i < ew_scratch_.size(); ++i) ew[i] -= sys_.c()[i];
  w_history_.push(ew_scratch_);
}

void IntermittentController::reset() {
  w_history_.clear();
  burst_remaining_ = 0;
  tracking_ = false;
  step_index_ = 0;
  omega_.reset();
}

void IntermittentController::reset_stats() {
  total_steps_ = 0;
  skipped_steps_ = 0;
  forced_steps_ = 0;
  burst_steps_ = 0;
  degraded_steps_ = 0;
  stale_forced_ = 0;
  policy_unavail_ = 0;
}

}  // namespace oic::core
