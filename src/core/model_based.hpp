#pragma once
/// \file model_based.hpp
/// Model-based skipping policy (Sec. III-B.1, Equation 6).
///
/// Applicable when the underlying controller has an analytic (affine)
/// expression u = K x + k0 and the disturbance trace w(t) is known ahead of
/// time.  At each step the policy solves the horizon-H problem
///
///   min  sum_k || u(k|t) ||_1
///   s.t. x(k+1|t) = A x(k|t) + B u(k|t) + E w(t+k) + c
///        x(k+1|t) in X',  u(k|t) in U,
///        u(k|t) = kappa(x(k|t)) if z(k) = 1,  u_skip if z(k) = 0,
///
/// and applies z*(0|t).  Two exact solvers are provided and ablated in
/// bench_ablation_horizon:
///   * kExactSearch -- branch-and-prune over the 2^H binary sequences;
///     with z fixed the trajectory is fully determined (kappa is a feedback
///     law and w is known), so each leaf costs one rollout.
///   * kBigMMip     -- the textbook big-M MIP formulation solved by
///     oic::mip branch & bound, faithful to the paper's "MIP program".

#include <memory>

#include "control/controller.hpp"
#include "control/lti.hpp"
#include "core/policy.hpp"
#include "core/safe_sets.hpp"
#include "mip/mip.hpp"

namespace oic::core {

/// Oracle providing the known disturbance w(t) (in W-space, dimension nw).
class DisturbanceOracle {
 public:
  virtual ~DisturbanceOracle() = default;
  /// Disturbance that will act at absolute step t.
  virtual linalg::Vector at(std::size_t t) const = 0;
};

/// Constant-disturbance oracle (w(t) = w0 for all t).
class ConstantOracle final : public DisturbanceOracle {
 public:
  explicit ConstantOracle(linalg::Vector w0) : w0_(std::move(w0)) {}
  linalg::Vector at(std::size_t) const override { return w0_; }

 private:
  linalg::Vector w0_;
};

/// Oracle backed by a recorded trace (repeats the last value past the end).
class SequenceOracle final : public DisturbanceOracle {
 public:
  explicit SequenceOracle(std::vector<linalg::Vector> seq);
  linalg::Vector at(std::size_t t) const override;

 private:
  std::vector<linalg::Vector> seq_;
};

/// Configuration of the model-based policy.
struct ModelBasedConfig {
  std::size_t horizon = 8;  ///< H in Equation 6
  enum class Solver { kExactSearch, kBigMMip } solver = Solver::kExactSearch;
  /// Energy is measured as || u - energy_offset ||_1; non-zero when the
  /// model is in shifted coordinates and the physical input is u + const.
  linalg::Vector energy_offset;
  /// Big-M constant for the MIP linearization; 0 selects an automatic value
  /// from the bounding boxes of X' and U.
  double big_m = 0.0;
  mip::MipOptions mip_options = {};
};

/// Diagnostics of the most recent decide() call.
struct ModelBasedInfo {
  bool feasible = false;          ///< some z-sequence satisfied all constraints
  double planned_cost = 0.0;      ///< optimal horizon cost
  std::vector<int> planned_z;     ///< optimal skip sequence z*(0..H-1)
  std::size_t nodes_explored = 0; ///< search/B&B nodes
};

/// The Equation-6 policy.  Holds a step clock advanced by each decide();
/// reset() rewinds it to 0 (start of an episode).
class ModelBasedPolicy final : public SkipPolicy {
 public:
  /// `kappa` must be the analytic controller (affine feedback).  The policy
  /// keeps references; the caller owns lifetime.
  ModelBasedPolicy(const control::AffineLTI& sys, const SafeSets& sets,
                   const control::LinearFeedback& kappa, linalg::Vector u_skip,
                   const DisturbanceOracle& oracle, ModelBasedConfig config = {});

  int decide(const linalg::Vector& x, const WHistory& w_history) override;
  void reset() override { t_ = 0; }
  std::string name() const override;

  /// Diagnostics of the last decide().
  const ModelBasedInfo& last() const { return last_; }

  /// Absolute step clock (number of decide() calls since reset).
  std::size_t clock() const { return t_; }

 private:
  const control::AffineLTI& sys_;
  const SafeSets& sets_;
  const control::LinearFeedback& kappa_;
  linalg::Vector u_skip_;
  const DisturbanceOracle& oracle_;
  ModelBasedConfig config_;
  std::size_t t_ = 0;
  ModelBasedInfo last_;

  double energy(const linalg::Vector& u) const;
  int decide_exact(const linalg::Vector& x);
  int decide_mip(const linalg::Vector& x);
};

}  // namespace oic::core
