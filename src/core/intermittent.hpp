#pragma once
/// \file intermittent.hpp
/// Algorithm 1: the online opportunistic intermittent-control framework.
///
/// Per control period the monitor checks x(t) against the strengthened
/// safe set X'.  Inside X' the skipping policy Omega chooses z(t) freely;
/// outside (but inside XI) the monitor forces z(t) = 1.  The actuated
/// input is kappa(x) when z = 1 and the designated skip input otherwise.
/// Theorem 1 guarantees the loop never leaves XI.

#include <memory>
#include <vector>

#include "control/controller.hpp"
#include "control/lti.hpp"
#include "core/policy.hpp"
#include "core/safe_sets.hpp"
#include "core/w_history.hpp"

namespace oic::core {

/// Framework configuration.
struct IntermittentConfig {
  linalg::Vector u_skip;      ///< input actuated on skipped steps (paper: 0)
  std::size_t w_memory = 1;   ///< disturbance observations retained (r)
  /// When true, a state outside XI raises NumericalError instead of
  /// silently running the controller -- XI membership is the framework's
  /// precondition (Algorithm 1 line 2) and losing it means the certificate
  /// was violated by the plant model.
  bool strict_invariant = true;
  /// Certified burst skipping (extension beyond the paper; the k-step
  /// ladder of core::compute_multi_step_safe_sets): ladder[k-1] = X'_k is
  /// the set of states from which k consecutive skipped periods provably
  /// stay inside XI for every disturbance sequence.  With burst_depth >= 1
  /// and a non-empty ladder, a skip decision at x in X'_k (deepest
  /// k <= burst_depth) certifies the whole burst: the next k-1 periods
  /// skip without membership checks or policy consultations, amortizing
  /// the monitor over the burst.  Default off (burst_depth = 0): the
  /// decision stream is bit-identical to the paper's per-period monitor.
  std::vector<poly::HPolytope> ladder;
  std::size_t burst_depth = 0;
  /// Set ONLY when `ladder` comes from a cert::PlantCertificate (correct
  /// by synthesis, or payload-hash-checked on load): skips the
  /// constructor's LP-based base/chain containment re-checks, which would
  /// otherwise run once per episode on the harness path.  Hand-assembled
  /// ladders must leave this false and pay for the validation.
  bool ladder_certified = false;
};

/// Outcome of one framework step.
struct StepDecision {
  linalg::Vector u;  ///< input to actuate
  int z = 1;         ///< skipping choice actually used
  bool forced = false;   ///< monitor overrode the policy (x outside X')
  bool policy_consulted = false;  ///< Omega was asked (x inside X')
};

/// The runtime of Algorithm 1.  Holds references to the plant description,
/// sets, controller, and policy; the caller owns their lifetimes.
class IntermittentController {
 public:
  IntermittentController(const control::AffineLTI& sys, const SafeSets& sets,
                         control::Controller& kappa, SkipPolicy& omega,
                         IntermittentConfig config);

  /// Lines 4-14 of Algorithm 1 for the current state.
  StepDecision decide(const linalg::Vector& x);

  /// Tell the framework what actually happened so it can reconstruct the
  /// realized disturbance  E w = x_next - A x - B u - c  and maintain the
  /// history consumed by learning-based policies.
  void record_transition(const linalg::Vector& x, const linalg::Vector& u,
                         const linalg::Vector& x_next);

  /// Observed state-space disturbances, oldest first (up to w_memory).
  const WHistory& w_history() const { return w_history_; }

  /// Reset per-episode state (history, counters stay cumulative; use
  /// reset_stats for those).  Also resets the policy.
  void reset();

  /// Zero the cumulative statistics.
  void reset_stats();

  /// Steps decided so far.
  std::size_t total_steps() const { return total_steps_; }
  /// Steps where the controller was skipped.
  std::size_t skipped_steps() const { return skipped_steps_; }
  /// Steps where the monitor forced z = 1.
  std::size_t forced_steps() const { return forced_steps_; }
  /// Skipped steps covered by a burst certificate (no per-step monitor
  /// check ran); always 0 with burst mode off.
  std::size_t burst_steps() const { return burst_steps_; }
  /// Remaining pre-certified skips of the burst in flight (diagnostics).
  std::size_t burst_remaining() const { return burst_remaining_; }

  /// The safe sets in use.
  const SafeSets& sets() const { return sets_; }
  /// The configured skip input.
  const linalg::Vector& u_skip() const { return config_.u_skip; }

 private:
  const control::AffineLTI& sys_;
  SafeSets sets_;
  control::Controller& kappa_;
  SkipPolicy& omega_;
  IntermittentConfig config_;
  WHistory w_history_;        ///< ring of the last w_memory observations
  linalg::Vector ew_scratch_; ///< residual scratch for record_transition
  std::size_t max_burst_ = 0; ///< effective depth: min(burst_depth, ladder size)
  std::size_t burst_remaining_ = 0;  ///< certified skips left in the burst
  std::size_t total_steps_ = 0;
  std::size_t skipped_steps_ = 0;
  std::size_t forced_steps_ = 0;
  std::size_t burst_steps_ = 0;
};

}  // namespace oic::core
