#pragma once
/// \file intermittent.hpp
/// Algorithm 1: the online opportunistic intermittent-control framework.
///
/// Per control period the monitor checks x(t) against the strengthened
/// safe set X'.  Inside X' the skipping policy Omega chooses z(t) freely;
/// outside (but inside XI) the monitor forces z(t) = 1.  The actuated
/// input is kappa(x) when z = 1 and the designated skip input otherwise.
/// Theorem 1 guarantees the loop never leaves XI.

#include <memory>
#include <vector>

#include "control/controller.hpp"
#include "control/lti.hpp"
#include "core/policy.hpp"
#include "core/safe_sets.hpp"
#include "core/w_history.hpp"

namespace oic::core {

/// Framework configuration.
struct IntermittentConfig {
  linalg::Vector u_skip;      ///< input actuated on skipped steps (paper: 0)
  std::size_t w_memory = 1;   ///< disturbance observations retained (r)
  /// When true, a state outside XI raises NumericalError instead of
  /// silently running the controller -- XI membership is the framework's
  /// precondition (Algorithm 1 line 2) and losing it means the certificate
  /// was violated by the plant model.
  bool strict_invariant = true;
  /// Certified burst skipping (extension beyond the paper; the k-step
  /// ladder of core::compute_multi_step_safe_sets): ladder[k-1] = X'_k is
  /// the set of states from which k consecutive skipped periods provably
  /// stay inside XI for every disturbance sequence.  With burst_depth >= 1
  /// and a non-empty ladder, a skip decision at x in X'_k (deepest
  /// k <= burst_depth) certifies the whole burst: the next k-1 periods
  /// skip without membership checks or policy consultations, amortizing
  /// the monitor over the burst.  Default off (burst_depth = 0): the
  /// decision stream is bit-identical to the paper's per-period monitor.
  std::vector<poly::HPolytope> ladder;
  std::size_t burst_depth = 0;
  /// Set ONLY when `ladder` comes from a cert::PlantCertificate (correct
  /// by synthesis, or payload-hash-checked on load): skips the
  /// constructor's LP-based base/chain containment re-checks, which would
  /// otherwise run once per episode on the harness path.  Hand-assembled
  /// ladders must leave this false and pay for the validation.
  bool ladder_certified = false;
  /// Degraded mode (decide_measured): maximum staleness, in periods, at
  /// which a delayed measurement is still rolled forward through the
  /// issued-input ring to refresh the state estimate.  Older measurements
  /// are discarded and the propagated estimate carries on.  Also sizes the
  /// issued-input ring.
  std::size_t stale_limit = 8;
  /// Degraded-mode recovery feedback (u = K x, nu-by-nx; empty = off).
  /// Non-empty enables active recovery when the controller is infeasible
  /// at the state estimate on a graceful path: the framework actuates the
  /// one-step max-contraction input (the admissible u minimizing the
  /// worst-case predicted XI violation, an LP over U) instead of the skip
  /// input -- the skip input is certified only INSIDE X', and holding it
  /// outside the feasible region leaves an excursion with no restoring
  /// force (an open-loop-unstable plant then diverges).  The gain itself
  /// -- the tube controller's own local gain -- is the ray-saturated
  /// fallback if the LP solver hits its iteration limit.  Only graceful
  /// (faulted) paths ever read it.
  linalg::Matrix recovery_gain;
};

/// Outcome of one framework step.
struct StepDecision {
  linalg::Vector u;  ///< input to actuate
  int z = 1;         ///< skipping choice actually used
  bool forced = false;   ///< monitor overrode the policy (x outside X')
  bool policy_consulted = false;  ///< Omega was asked (x inside X')
  /// The step ran in degraded mode: the measurement was stale or missing,
  /// the skip-policy compute was unavailable, or the controller was
  /// infeasible at the estimate and the skip input was substituted.  Never
  /// set on the fault-free decide() path.
  bool degraded = false;
};

/// The monitor's view of the state under a faulted sensor link: the
/// freshest measurement that has arrived, if any (mirrors
/// fault::Measurement without making core depend on the fault layer).
struct MeasuredState {
  bool available = false;  ///< anything arrived yet?
  std::size_t age = 0;     ///< staleness in periods (0 = fresh)
  linalg::Vector x;        ///< measured state (valid when available)
};

/// The runtime of Algorithm 1.  Holds references to the plant description,
/// sets, controller, and policy; the caller owns their lifetimes.
class IntermittentController {
 public:
  IntermittentController(const control::AffineLTI& sys, const SafeSets& sets,
                         control::Controller& kappa, SkipPolicy& omega,
                         IntermittentConfig config);

  /// Lines 4-14 of Algorithm 1 for the current state.
  StepDecision decide(const linalg::Vector& x);

  /// Arm degraded-mode state tracking from the known initial state.  Must
  /// be called (after reset()) before the first decide_measured(); the
  /// plain decide() path never needs it and pays nothing for it.
  void seed_state(const linalg::Vector& x0);

  /// Algorithm 1 under a faulted sensor/compute channel.  With a FRESH
  /// measurement and an available policy this is exactly decide() at the
  /// measured state (same branch structure, same counters).  Otherwise the
  /// monitor degrades conservatively:
  ///
  ///   * fresh measurement, policy compute unavailable: inside X' the
  ///     monitor substitutes the conservative default z = 1 (it will never
  ///     skip without Omega's say-so); outside X' the forced path never
  ///     needed Omega and is unchanged.
  ///   * stale or missing measurement, burst certificate in flight: the
  ///     certified skip already covers a monitor blackout -- X'_k
  ///     membership at burst start guarantees the whole burst stays in XI
  ///     for EVERY disturbance, measured or not -- so the burst rides out.
  ///   * stale or missing measurement otherwise: the monitor cannot
  ///     evaluate x in X', so it forces z = 1 against the state estimate
  ///     (stale measurements within stale_limit are rolled forward through
  ///     the issued-input ring; otherwise the nominally propagated
  ///     estimate carries on).  If the controller is infeasible at the
  ///     estimate the skip input is substituted rather than aborting the
  ///     episode.
  ///
  /// The estimate uses a one-step disturbance observer: whenever two
  /// delivered measurements sample CONSECUTIVE periods, their residual
  /// against the issued input reconstructs the realized state-space
  /// disturbance E w of that period, and the roll-forward feeds it forward
  /// (held constant) instead of assuming w = 0.  For slew-bounded
  /// disturbances this shrinks the estimate error from O(age * w_max) to
  /// O(age * slew); the estimate is ray-clamped into E W, so a residual
  /// corrupted by a measurement spike or an actuation drop can never
  /// inject more error than the worst-case disturbance it replaces.
  ///
  /// See docs/faults.md for the stale-state degradation contract.
  StepDecision decide_measured(const MeasuredState& m, bool policy_ok);

  /// Tell the framework what actually happened so it can reconstruct the
  /// realized disturbance  E w = x_next - A x - B u - c  and maintain the
  /// history consumed by learning-based policies.
  void record_transition(const linalg::Vector& x, const linalg::Vector& u,
                         const linalg::Vector& x_next);

  /// Observed state-space disturbances, oldest first (up to w_memory).
  const WHistory& w_history() const { return w_history_; }

  /// Reset per-episode state (history, counters stay cumulative; use
  /// reset_stats for those).  Also resets the policy.
  void reset();

  /// Zero the cumulative statistics.
  void reset_stats();

  /// Steps decided so far.
  std::size_t total_steps() const { return total_steps_; }
  /// Steps where the controller was skipped.
  std::size_t skipped_steps() const { return skipped_steps_; }
  /// Steps where the monitor forced z = 1.
  std::size_t forced_steps() const { return forced_steps_; }
  /// Skipped steps covered by a burst certificate (no per-step monitor
  /// check ran); always 0 with burst mode off.
  std::size_t burst_steps() const { return burst_steps_; }
  /// Remaining pre-certified skips of the burst in flight (diagnostics).
  std::size_t burst_remaining() const { return burst_remaining_; }
  /// Steps handled in degraded mode (stale/missing measurement, policy
  /// compute unavailable, or infeasible-controller fallback); always 0 on
  /// the fault-free decide() path.
  std::size_t degraded_steps() const { return degraded_steps_; }
  /// Degraded steps where a stale/missing measurement forced z = 1 at the
  /// state estimate (excludes blackouts covered by a burst certificate).
  std::size_t stale_forced() const { return stale_forced_; }
  /// Degraded steps where the policy compute was unavailable inside X' and
  /// the conservative default z = 1 was substituted.
  std::size_t policy_unavail() const { return policy_unavail_; }
  /// Current state estimate (valid after seed_state; degraded-mode
  /// diagnostics and tests).
  const linalg::Vector& state_estimate() const { return x_hat_; }

  /// The safe sets in use.
  const SafeSets& sets() const { return sets_; }
  /// The configured skip input.
  const linalg::Vector& u_skip() const { return config_.u_skip; }

 private:
  /// The shared per-period body: decide() is decide_at(x, true);
  /// decide_measured's fresh branch calls it with the channel's policy
  /// availability and graceful = true (controller infeasibility falls back
  /// to the skip input instead of propagating).
  StepDecision decide_at(const linalg::Vector& x, bool policy_ok, bool graceful);

  /// Advance the state estimate through the issued input
  /// (x_hat <- A x_hat + B u + c + ew_hold) and record u in the ring.
  void track_issued(const linalg::Vector& u);

  /// Feed one delivered (possibly stale) measurement to the one-step
  /// disturbance observer: consecutive-period sample pairs update the held
  /// E w estimate (ray-clamped into E W).
  void observe_delivered(const linalg::Vector& x_meas, std::size_t age);

  /// One-step max-contraction LP: the admissible input minimizing the
  /// worst-case predicted XI violation over every candidate estimate in
  /// `states` (full actuation authority; each face optionally inflated
  /// by `inflation` to robustify against estimate error).  With
  /// `nominal_cap`, states[0]'s predicted violation is additionally
  /// bounded by the cap as a hard constraint, so the minimax can never
  /// trade the nominal branch's safety away against an unfixable
  /// counterfactual.  Returns false when the solver hits its iteration
  /// limit (U nonempty and an achievable cap make the model always
  /// feasible and bounded otherwise).
  bool contraction_input(const std::vector<linalg::Vector>& states,
                         const std::vector<double>* inflation,
                         const double* nominal_cap,
                         linalg::Vector& u_out) const;

  /// Stale-step robustification: robust-check the planned input against
  /// every state the estimate could stand for -- the roll-forward from
  /// the freshest delivered sample under each unconfirmed
  /// actuation-drop counterfactual (issued input replaced by the
  /// receiver's hold/zero candidate), every face inflated by the
  /// accumulated disturbance-error support -- and substitute the
  /// hypothesis-robust max-contraction input when the worst case
  /// violates XI.  No-op while the anchor is fresh or beyond the ring.
  void robustify_stale_input(StepDecision& d);

  /// Graceful fallback input when kappa is infeasible at `x`: the
  /// one-step max-contraction LP, the configured recovery feedback K x
  /// ray-saturated into U if the solver hits its iteration limit, or the
  /// skip input itself with no gain set.
  linalg::Vector recovery_input(const linalg::Vector& x) const;

  /// Per-XI-face supports of the accumulated estimate-error set
  /// S_g = sum_{j=0}^{g-1} A^j E W (the reachable error of an estimate
  /// that has absorbed g unmeasured disturbance periods), computed
  /// lazily per level and cached for the controller's lifetime.
  /// stale_inflation(g)[i] added to face i's violation gives the
  /// worst-case violation over every state the estimate could stand for.
  const std::vector<double>& stale_inflation(std::size_t g);

  const control::AffineLTI& sys_;
  SafeSets sets_;
  control::Controller& kappa_;
  SkipPolicy& omega_;
  IntermittentConfig config_;
  WHistory w_history_;        ///< ring of the last w_memory observations
  linalg::Vector ew_scratch_; ///< residual scratch for record_transition
  std::size_t max_burst_ = 0; ///< effective depth: min(burst_depth, ladder size)
  std::size_t burst_remaining_ = 0;  ///< certified skips left in the burst
  std::size_t total_steps_ = 0;
  std::size_t skipped_steps_ = 0;
  std::size_t forced_steps_ = 0;
  std::size_t burst_steps_ = 0;

  // Degraded-mode state (inert until seed_state()).
  bool tracking_ = false;          ///< seed_state() called this episode
  std::size_t step_index_ = 0;     ///< periods consumed by decide_measured
  linalg::Vector x_hat_;           ///< nominal state estimate
  linalg::Vector seed_x0_;         ///< episode anchor before any delivery
  linalg::Vector roll_scratch_;    ///< stale-measurement roll-forward scratch
  std::vector<linalg::Vector> issued_u_;  ///< ring of issued inputs (by step)
  // One-step disturbance observer (see decide_measured): held state-space
  // disturbance estimate, the last delivered sample it differences
  // against, and the E W clamp (built once per controller, on first
  // seed_state -- the fault-free decide() path never pays for it).
  linalg::Vector ew_hold_;         ///< held E w estimate (state space)
  bool have_ew_hold_ = false;
  linalg::Vector last_meas_x_;     ///< last delivered measurement sample
  std::size_t last_meas_step_ = 0; ///< its absolute sample period
  bool have_last_meas_ = false;
  poly::HPolytope ew_set_;         ///< E W, the observer's clamp region
  bool ew_set_ready_ = false;
  // Blind-window robustification cache (see stale_inflation):
  // infl_cache_[g][i] = h_{S_g}(a_i) for XI face i; infl_dirs_ row i
  // carries (A^T)^{levels-1} a_i so extending by one level is one
  // support LP per face plus a row-times-A propagation.
  std::vector<std::vector<double>> infl_cache_;
  linalg::Matrix infl_dirs_;
  // u_pull_[i] = min_{u in U} a_i B u, the strongest per-face pull the
  // actuator offers toward XI face i.  Lazily built (one support LP per
  // face, once per controller); robustify_stale_input uses it to screen
  // out counterfactual branches no input can rescue.
  std::vector<double> u_pull_;
  std::size_t degraded_steps_ = 0;
  std::size_t stale_forced_ = 0;
  std::size_t policy_unavail_ = 0;
};

}  // namespace oic::core
