#include "core/safe_sets.hpp"

#include "common/error.hpp"
#include "control/reach.hpp"

namespace oic::core {

using linalg::Vector;
using poly::HPolytope;

SafeSets compute_safe_sets(const control::AffineLTI& sys, const HPolytope& xi,
                           const Vector& u_skip) {
  OIC_REQUIRE(xi.dim() == sys.nx(), "compute_safe_sets: XI dimension mismatch");
  OIC_REQUIRE(u_skip.size() == sys.nu(), "compute_safe_sets: skip-input mismatch");
  OIC_REQUIRE(!xi.is_empty(), "compute_safe_sets: XI is empty");
  OIC_REQUIRE(poly::contains_polytope(sys.x_set(), xi, 1e-6),
              "compute_safe_sets: XI must be inside the original safe set X");

  SafeSets sets;
  sets.x = sys.x_set();
  sets.xi = xi.remove_redundancy();
  const HPolytope b0 = control::backward_reach_const_input(sys, sets.xi, u_skip);
  sets.x_prime = b0.intersect(sets.xi).remove_redundancy();
  return sets;
}

bool verify_nesting(const SafeSets& sets, double tol) {
  return poly::contains_polytope(sets.xi, sets.x_prime, tol) &&
         poly::contains_polytope(sets.x, sets.xi, tol);
}

std::vector<HPolytope> compute_multi_step_safe_sets(const control::AffineLTI& sys,
                                                    const HPolytope& xi,
                                                    const Vector& u_skip,
                                                    std::size_t k) {
  OIC_REQUIRE(k >= 1, "compute_multi_step_safe_sets: need k >= 1");
  OIC_REQUIRE(!xi.is_empty(), "compute_multi_step_safe_sets: XI is empty");
  std::vector<HPolytope> chain;
  HPolytope target = xi.remove_redundancy();
  for (std::size_t i = 0; i < k; ++i) {
    const HPolytope pre = control::backward_reach_const_input(sys, target, u_skip);
    HPolytope next = pre.intersect(xi).remove_redundancy();
    if (next.is_empty()) break;
    chain.push_back(next);
    target = chain.back();
  }
  return chain;
}

bool verify_strengthened_property(const control::AffineLTI& sys, const SafeSets& sets,
                                  const Vector& u_skip, double tol) {
  if (sys.nx() != 2) return true;
  const auto xverts = sets.x_prime.vertices_2d();
  const auto wverts = sys.disturbance_in_state_space().vertices_2d();
  if (xverts.empty()) return !sets.x_prime.is_empty() ? false : true;
  for (const auto& x : xverts) {
    const Vector base = sys.a() * x + sys.b() * u_skip + sys.c();
    for (const auto& ew : wverts) {
      if (sets.xi.violation(base + ew) > tol) return false;
    }
  }
  return true;
}

}  // namespace oic::core
