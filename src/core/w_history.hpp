#pragma once
/// \file w_history.hpp
/// Fixed-capacity ring buffer of disturbance observations.
///
/// The intermittent framework retains the last r observed state-space
/// disturbances E w for the skipping policies (Sec. III-B).  The original
/// std::vector storage paid an O(r) erase-front plus a Vector allocation on
/// every step; the ring overwrites the oldest slot in place, so a steady-
/// state episode records transitions with zero allocation.
///
/// Indexing is oldest-first ([0] is the oldest retained observation), the
/// order the DRL state builder and the policy interface always used.

#include <cstddef>
#include <vector>

#include "common/error.hpp"
#include "linalg/vector.hpp"

namespace oic::core {

/// Ring buffer of the most recent disturbance observations, oldest first.
class WHistory {
 public:
  /// Empty history with no capacity (set_capacity before pushing).
  WHistory() = default;

  /// Ring of the given capacity (the framework's w_memory r).
  explicit WHistory(std::size_t capacity) { set_capacity(capacity); }

  /// Adapter for call sites holding a plain vector (tests, trainers): the
  /// values are copied, capacity = xs.size().  Intentionally implicit so
  /// `decide(x, {})` and `decide(x, history_vector)` keep compiling.
  WHistory(const std::vector<linalg::Vector>& xs)  // NOLINT(runtime/explicit)
      : slots_(xs), head_(0), size_(xs.size()) {}

  /// Same, from a braced list.
  WHistory(std::initializer_list<linalg::Vector> xs)
      : slots_(xs), head_(0), size_(slots_.size()) {}

  /// Reset the capacity (drops contents).
  void set_capacity(std::size_t capacity) {
    slots_.assign(capacity, linalg::Vector());
    head_ = 0;
    size_ = 0;
  }

  /// Retained observations (<= capacity).
  std::size_t size() const { return size_; }
  /// Maximum retained observations.
  std::size_t capacity() const { return slots_.size(); }
  /// True when nothing is retained.
  bool empty() const { return size_ == 0; }

  /// i-th retained observation, oldest first.
  const linalg::Vector& operator[](std::size_t i) const {
    OIC_REQUIRE(i < size_, "WHistory: index out of range");
    return slots_[(head_ + i) % slots_.size()];
  }

  /// Most recent observation; the history must be non-empty.
  const linalg::Vector& latest() const {
    OIC_REQUIRE(size_ > 0, "WHistory::latest: history is empty");
    return (*this)[size_ - 1];
  }

  /// Append, evicting the oldest observation when full.  Copy-assigns into
  /// the recycled slot: allocation-free once every slot has been sized.
  void push(const linalg::Vector& w) {
    if (slots_.empty()) return;  // capacity 0 retains nothing
    const std::size_t tail = (head_ + size_) % slots_.size();
    slots_[tail] = w;
    if (size_ < slots_.size()) {
      ++size_;
    } else {
      head_ = (head_ + 1) % slots_.size();
    }
  }

  /// Drop the contents, keep the capacity (and the slot allocations).
  void clear() {
    head_ = 0;
    size_ = 0;
  }

 private:
  std::vector<linalg::Vector> slots_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace oic::core
