#include "core/runner.hpp"

#include "common/error.hpp"

namespace oic::core {

using linalg::Vector;

RunResult run_closed_loop(const control::AffineLTI& sys, IntermittentController& ic,
                          const Vector& x0, const DisturbanceFn& disturbance,
                          const RunConfig& cfg, const StepHook& hook) {
  OIC_REQUIRE(x0.size() == sys.nx(), "run_closed_loop: initial state mismatch");
  OIC_REQUIRE(static_cast<bool>(disturbance), "run_closed_loop: disturbance fn required");

  RunResult out;
  Vector x = x0;
  for (std::size_t t = 0; t < cfg.steps; ++t) {
    const StepDecision d = ic.decide(x);
    const Vector w = disturbance(t);
    const Vector x_next = sys.step(x, d.u, w);
    ic.record_transition(x, d.u, x_next);

    sim::TraceStep step;
    step.t = t;
    step.x = x;
    step.u = d.u;
    step.z = d.z;
    step.forced = d.forced;
    step.disturbance = w.size() == 1 ? w[0] : w.norm2();
    if (hook) hook(step, x_next);
    out.trace.add(std::move(step));

    if (!out.left_xi && !ic.sets().xi.contains(x_next, 1e-6)) {
      out.left_xi = true;
      out.first_violation = t;
    }
    if (!out.left_x && !ic.sets().x.contains(x_next, 1e-6)) {
      out.left_x = true;
      if (!out.left_xi) out.first_violation = t;
    }
    x = x_next;
  }
  out.final_state = x;
  return out;
}

}  // namespace oic::core
