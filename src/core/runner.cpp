#include "core/runner.hpp"

#include "common/error.hpp"

namespace oic::core {

using linalg::Vector;

RunResult run_closed_loop(const control::AffineLTI& sys, IntermittentController& ic,
                          const Vector& x0, const DisturbanceFn& disturbance,
                          const RunConfig& cfg, const StepHook& hook,
                          fault::Link* link) {
  OIC_REQUIRE(x0.size() == sys.nx(), "run_closed_loop: initial state mismatch");
  OIC_REQUIRE(static_cast<bool>(disturbance), "run_closed_loop: disturbance fn required");

  RunResult out;
  Vector x = x0;

  if (link != nullptr && link->active()) {
    // Faulted loop: the framework observes only what the link delivers.
    const std::size_t degraded0 = ic.degraded_steps();
    const std::size_t stale0 = ic.stale_forced();
    const std::size_t policy0 = ic.policy_unavail();
    ic.seed_state(x0);

    MeasuredState m;
    Vector prev_meas_x;   // last fresh measured state (w-history endpoint)
    Vector prev_u_cmd;    // input commanded at that step
    bool prev_fresh = false;
    for (std::size_t t = 0; t < cfg.steps; ++t) {
      const fault::Measurement& meas = link->sense_and_observe(t, x);
      const bool fresh = meas.available && meas.age == 0;
      if (fresh && prev_fresh) {
        // Residual from measured endpoints and the COMMANDED input -- the
        // framework cannot know what the actuator really applied.
        ic.record_transition(prev_meas_x, prev_u_cmd, meas.x);
      }
      m.available = meas.available;
      m.age = meas.age;
      if (meas.available) m.x = meas.x;

      const StepDecision d = ic.decide_measured(m, link->policy_available(t));
      const Vector& u_applied = link->actuate(t, d.u);
      const Vector w = disturbance(t);
      const Vector x_next = sys.step(x, u_applied, w);

      sim::TraceStep step;
      step.t = t;
      step.x = x;
      step.u = u_applied;
      step.z = d.z;
      step.forced = d.forced;
      step.disturbance = w.size() == 1 ? w[0] : w.norm2();
      if (hook) hook(step, x_next);
      out.trace.add(std::move(step));

      if (!out.left_xi && !ic.sets().xi.contains(x_next, 1e-6)) {
        out.left_xi = true;
        out.first_violation = t;
      }
      if (!out.left_x && !ic.sets().x.contains(x_next, 1e-6)) {
        out.left_x = true;
        if (!out.left_xi) out.first_violation = t;
      }

      prev_fresh = fresh;
      if (fresh) {
        prev_meas_x = meas.x;
        prev_u_cmd = d.u;
      }
      x = x_next;
    }
    out.degraded_steps = ic.degraded_steps() - degraded0;
    out.stale_forced = ic.stale_forced() - stale0;
    out.policy_unavail = ic.policy_unavail() - policy0;
    out.meas_dropped = link->meas_dropped();
    out.act_dropped = link->act_dropped();
    out.final_state = x;
    return out;
  }

  for (std::size_t t = 0; t < cfg.steps; ++t) {
    const StepDecision d = ic.decide(x);
    const Vector w = disturbance(t);
    const Vector x_next = sys.step(x, d.u, w);
    ic.record_transition(x, d.u, x_next);

    sim::TraceStep step;
    step.t = t;
    step.x = x;
    step.u = d.u;
    step.z = d.z;
    step.forced = d.forced;
    step.disturbance = w.size() == 1 ? w[0] : w.norm2();
    if (hook) hook(step, x_next);
    out.trace.add(std::move(step));

    if (!out.left_xi && !ic.sets().xi.contains(x_next, 1e-6)) {
      out.left_xi = true;
      out.first_violation = t;
    }
    if (!out.left_x && !ic.sets().x.contains(x_next, 1e-6)) {
      out.left_x = true;
      if (!out.left_xi) out.first_violation = t;
    }
    x = x_next;
  }
  out.final_state = x;
  return out;
}

}  // namespace oic::core
