#pragma once
/// \file fault.hpp
/// Networked-control fault injection: the adversary model for the
/// intermittent framework's deployment assumptions.
///
/// Algorithm 1's safety argument silently assumes the monitor *sees* x(t)
/// every period and that its forced input *reaches* the plant.  A networked
/// deployment breaks exactly those assumptions first, on three channels:
///
///   * the measurement stream the monitor and the skip policy observe
///     (Bernoulli packet dropout, bounded delivery delay with jitter,
///     optional spike corruption of delivered samples),
///   * the actuation channel (Bernoulli packet drop with either
///     hold-last-input or zero-input receiver semantics),
///   * the skip-policy compute itself (a timeout makes Omega unavailable
///     for the period; the monitor must fall back to a conservative
///     default decision).
///
/// A FaultSpec declares the fault model (parsed from the CLI string
/// grammar, e.g. "meas_drop:0.05,meas_delay:2,act_drop:0.02,hold"); a Link
/// realizes one episode's fault streams deterministically from a single
/// 64-bit stream seed.  Each channel draws from its own substream
/// (derive_stream(stream, channel)) with a FIXED number of variates per
/// step, so (a) the realization is a pure function of (spec, stream) --
/// the Monte-Carlo layer's worker-count and checkpoint/resume
/// bit-invariance contracts survive faults -- and (b) enabling or tuning
/// one channel never perturbs another channel's stream.
///
/// The layer depends only on linalg/common: core::IntermittentController
/// consumes its Measurement view (degraded mode), and the episode loops in
/// core/runner and eval compose the two.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/random.hpp"
#include "linalg/vector.hpp"

namespace oic::fault {

/// Receiver semantics when an actuation packet is lost.
enum class ActDropMode {
  kZero,  ///< actuator applies zero input (fail-silent receiver)
  kHold,  ///< actuator re-applies the last delivered input (hold register)
};

/// Declarative fault model.  Default-constructed = no faults (every
/// channel ideal); active() is false and every consumer takes the exact
/// historical code path, bit for bit.
struct FaultSpec {
  double meas_drop = 0.0;        ///< P(measurement packet lost), in [0, 1]
  std::size_t meas_delay = 0;    ///< base delivery delay in control periods
  std::size_t meas_jitter = 0;   ///< extra random delay, uniform in {0..jitter}
  double meas_spike = 0.0;       ///< P(delivered sample spike-corrupted)
  double spike_gain = 0.5;       ///< relative spike magnitude (multiplicative)
  double act_drop = 0.0;         ///< P(actuation packet lost), in [0, 1]
  ActDropMode act_mode = ActDropMode::kZero;  ///< receiver drop semantics
  double policy_drop = 0.0;      ///< P(skip-policy compute unavailable)

  /// Any channel faulted?  False for the default spec: consumers branch to
  /// the historical fault-free code path (bit-identity guarantee).
  bool active() const;

  /// Canonical spec string: non-default fields in fixed key order (the
  /// parse() grammar), "" when inactive.  Feeds campaign fingerprints and
  /// the JSON "faults" config field, so equal fault models always
  /// fingerprint equally regardless of how the user spelled them.
  std::string canonical() const;

  /// Parse the CLI grammar: a comma-separated list of `key:value` tokens
  /// (meas_drop, meas_delay, meas_jitter, meas_spike, spike_gain,
  /// act_drop, policy_drop) plus the bare tokens `hold` / `zero` selecting
  /// the actuation drop semantics.  "" and "off" parse to the inactive
  /// spec.  Probabilities must lie in [0, 1], delays in [0, 64], gains
  /// must be finite and non-negative; anything else (unknown keys,
  /// duplicate keys, malformed numbers) throws PreconditionError.
  static FaultSpec parse(const std::string& text);
};

/// What the monitor observes at one step: the freshest measurement that
/// has arrived over the (lossy, delayed) sensor link, if any.
struct Measurement {
  bool available = false;  ///< anything arrived yet?
  std::size_t age = 0;     ///< staleness in steps (0 = taken this period)
  linalg::Vector x;        ///< measured state (possibly spike-corrupted)
};

/// One episode's deterministic fault realization (see file comment).
/// Not thread-safe; per-worker engines own their Link and re-arm it per
/// episode via reset().
class Link {
 public:
  /// Inactive link: every channel ideal, no substreams armed.
  Link() = default;

  Link(const FaultSpec& spec, std::uint64_t stream);

  const FaultSpec& spec() const { return spec_; }
  bool active() const { return spec_.active(); }

  /// Re-arm every channel substream for a new episode and clear the
  /// delivery queue, hold register, and counters.
  void reset(std::uint64_t stream);

  /// The sensor samples x_true at step t and transmits it; returns the
  /// freshest measurement that has ARRIVED by step t (possibly this one,
  /// possibly an older delayed packet, possibly nothing).  Steps must be
  /// consumed in order starting at t = 0.
  const Measurement& sense_and_observe(std::size_t t, const linalg::Vector& x_true);

  /// Skip-policy compute availability at step t (false = timeout; the
  /// monitor must substitute its conservative default decision).
  bool policy_available(std::size_t t);

  /// Push the commanded input through the actuation channel; returns the
  /// input the plant actually receives (the command, zero, or the held
  /// last delivery, per the spec's drop semantics).
  const linalg::Vector& actuate(std::size_t t, const linalg::Vector& u_cmd);

  /// Channel accounting for RunResult / EpisodeResult.
  std::size_t meas_dropped() const { return meas_dropped_; }
  std::size_t act_dropped() const { return act_dropped_; }
  std::size_t policy_dropped() const { return policy_dropped_; }

 private:
  struct Pending {
    std::size_t taken_at = 0;
    std::size_t arrives_at = 0;
    linalg::Vector x;
    bool in_flight = false;
  };

  FaultSpec spec_;
  Rng meas_rng_;    ///< measurement dropout channel
  Rng delay_rng_;   ///< delivery jitter channel
  Rng spike_rng_;   ///< spike corruption channel
  Rng act_rng_;     ///< actuation dropout channel
  Rng policy_rng_;  ///< policy-compute availability channel

  std::vector<Pending> queue_;  ///< in-flight measurements (ring by slot)
  Measurement observed_;        ///< freshest arrived measurement
  bool have_best_ = false;
  std::size_t best_taken_at_ = 0;

  linalg::Vector u_applied_;    ///< actuation scratch / hold register
  bool held_valid_ = false;

  std::size_t meas_dropped_ = 0;
  std::size_t act_dropped_ = 0;
  std::size_t policy_dropped_ = 0;
};

/// A named fault model for CLIs and docs ("lossy", "bursty-sensor", ...).
struct FaultPreset {
  std::string id;
  std::string description;
  std::string spec;  ///< FaultSpec::parse input
};

/// The standard preset catalogue (registered with eval::ScenarioRegistry;
/// `--faults <id>` resolves here before falling back to the raw grammar).
const std::vector<FaultPreset>& standard_fault_presets();

}  // namespace oic::fault
