#include "fault/fault.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "common/error.hpp"

namespace oic::fault {
namespace {

/// Channel indices for derive_stream(stream, channel): one fixed substream
/// per channel, so enabling or tuning one channel never perturbs another.
enum Channel : std::uint64_t {
  kMeasDropChannel = 0,
  kDelayChannel = 1,
  kSpikeChannel = 2,
  kActChannel = 3,
  kPolicyChannel = 4,
};

constexpr std::size_t kMaxDelay = 64;

double parse_prob(const std::string& key, const std::string& text) {
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  OIC_REQUIRE(end == text.c_str() + text.size() && !text.empty() && std::isfinite(v),
              "fault spec: '" + key + "' expects a number, got '" + text + "'");
  OIC_REQUIRE(v >= 0.0 && v <= 1.0,
              "fault spec: '" + key + "' must lie in [0, 1], got '" + text + "'");
  return v;
}

double parse_gain(const std::string& key, const std::string& text) {
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  OIC_REQUIRE(end == text.c_str() + text.size() && !text.empty() && std::isfinite(v),
              "fault spec: '" + key + "' expects a number, got '" + text + "'");
  OIC_REQUIRE(v >= 0.0,
              "fault spec: '" + key + "' must be non-negative, got '" + text + "'");
  return v;
}

std::size_t parse_delay(const std::string& key, const std::string& text) {
  OIC_REQUIRE(!text.empty() && text.size() <= 4, "fault spec: '" + key +
                  "' expects an integer in [0, 64], got '" + text + "'");
  for (const char c : text) {
    OIC_REQUIRE(c >= '0' && c <= '9', "fault spec: '" + key +
                    "' expects an integer in [0, 64], got '" + text + "'");
  }
  const unsigned long v = std::strtoul(text.c_str(), nullptr, 10);
  OIC_REQUIRE(v <= kMaxDelay,
              "fault spec: '" + key + "' must be at most 64, got '" + text + "'");
  return static_cast<std::size_t>(v);
}

/// Shortest decimal that round-trips through strtod; keeps canonical spec
/// strings human-readable ("0.05", not "0.05000000000000000277...").
std::string format_double(double v) {
  char buf[64];
  for (const int prec : {6, 9, 12, 17}) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

}  // namespace

bool FaultSpec::active() const {
  return meas_drop > 0.0 || meas_delay > 0 || meas_jitter > 0 || meas_spike > 0.0 ||
         act_drop > 0.0 || policy_drop > 0.0;
}

std::string FaultSpec::canonical() const {
  if (!active()) return "";
  std::string out;
  const auto add = [&out](const std::string& token) {
    if (!out.empty()) out += ",";
    out += token;
  };
  if (meas_drop > 0.0) add("meas_drop:" + format_double(meas_drop));
  if (meas_delay > 0) add("meas_delay:" + std::to_string(meas_delay));
  if (meas_jitter > 0) add("meas_jitter:" + std::to_string(meas_jitter));
  if (meas_spike > 0.0) {
    add("meas_spike:" + format_double(meas_spike));
    if (spike_gain != 0.5) add("spike_gain:" + format_double(spike_gain));
  }
  if (act_drop > 0.0) {
    add("act_drop:" + format_double(act_drop));
    if (act_mode == ActDropMode::kHold) add("hold");
  }
  if (policy_drop > 0.0) add("policy_drop:" + format_double(policy_drop));
  return out;
}

FaultSpec FaultSpec::parse(const std::string& text) {
  FaultSpec spec;
  if (text.empty() || text == "off") return spec;

  std::vector<std::string> seen;
  const auto once = [&seen](const std::string& key) {
    for (const auto& s : seen) {
      OIC_REQUIRE(s != key, "fault spec: duplicate key '" + key + "'");
    }
    seen.push_back(key);
  };

  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::string token = text.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    if (!token.empty()) {
      const std::size_t colon = token.find(':');
      if (colon == std::string::npos) {
        once(token);
        if (token == "hold") {
          spec.act_mode = ActDropMode::kHold;
        } else if (token == "zero") {
          spec.act_mode = ActDropMode::kZero;
        } else {
          OIC_REQUIRE(false, "fault spec: unknown token '" + token +
                                 "' (expected key:value, 'hold', or 'zero')");
        }
      } else {
        const std::string key = token.substr(0, colon);
        const std::string value = token.substr(colon + 1);
        once(key);
        if (key == "meas_drop") {
          spec.meas_drop = parse_prob(key, value);
        } else if (key == "meas_delay") {
          spec.meas_delay = parse_delay(key, value);
        } else if (key == "meas_jitter") {
          spec.meas_jitter = parse_delay(key, value);
        } else if (key == "meas_spike") {
          spec.meas_spike = parse_prob(key, value);
        } else if (key == "spike_gain") {
          spec.spike_gain = parse_gain(key, value);
        } else if (key == "act_drop") {
          spec.act_drop = parse_prob(key, value);
        } else if (key == "policy_drop") {
          spec.policy_drop = parse_prob(key, value);
        } else {
          OIC_REQUIRE(false, "fault spec: unknown key '" + key + "'");
        }
      }
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  const auto saw = [&seen](const char* key) {
    for (const auto& s : seen) {
      if (s == key) return true;
    }
    return false;
  };
  OIC_REQUIRE(!(saw("hold") && saw("zero")),
              "fault spec: 'hold' and 'zero' are mutually exclusive");
  return spec;
}

Link::Link(const FaultSpec& spec, std::uint64_t stream) : spec_(spec) {
  reset(stream);
}

void Link::reset(std::uint64_t stream) {
  meas_rng_ = Rng(derive_stream(stream, kMeasDropChannel));
  delay_rng_ = Rng(derive_stream(stream, kDelayChannel));
  spike_rng_ = Rng(derive_stream(stream, kSpikeChannel));
  act_rng_ = Rng(derive_stream(stream, kActChannel));
  policy_rng_ = Rng(derive_stream(stream, kPolicyChannel));
  for (auto& slot : queue_) slot.in_flight = false;
  observed_ = Measurement{};
  have_best_ = false;
  best_taken_at_ = 0;
  held_valid_ = false;
  meas_dropped_ = 0;
  act_dropped_ = 0;
  policy_dropped_ = 0;
}

const Measurement& Link::sense_and_observe(std::size_t t, const linalg::Vector& x_true) {
  // Transmit this period's sample (each channel draws at a fixed point in
  // its own substream, so the realization is a pure function of the spec
  // and the stream seed).
  const bool dropped = spec_.meas_drop > 0.0 && meas_rng_.bernoulli(spec_.meas_drop);
  const std::size_t jitter =
      spec_.meas_jitter > 0
          ? static_cast<std::size_t>(
                delay_rng_.uniform_int(0, static_cast<int>(spec_.meas_jitter)))
          : 0;
  if (dropped) {
    ++meas_dropped_;
  } else {
    Pending* slot = nullptr;
    for (auto& s : queue_) {
      if (!s.in_flight) {
        slot = &s;
        break;
      }
    }
    if (slot == nullptr) {
      queue_.emplace_back();
      slot = &queue_.back();
    }
    slot->taken_at = t;
    slot->arrives_at = t + spec_.meas_delay + jitter;
    slot->x = x_true;
    slot->in_flight = true;
    if (spec_.meas_spike > 0.0 && spike_rng_.bernoulli(spec_.meas_spike)) {
      // Multiplicative per-component corruption: scale-free across plants
      // whose state magnitudes differ by orders of magnitude.
      for (std::size_t i = 0; i < slot->x.size(); ++i) {
        slot->x[i] *= 1.0 + spec_.spike_gain * spike_rng_.normal();
      }
    }
  }

  // Deliver everything that has arrived by t; the freshest sample (by
  // taken_at) wins, so a delayed packet never overwrites newer data.
  for (auto& s : queue_) {
    if (!s.in_flight || s.arrives_at > t) continue;
    if (!have_best_ || s.taken_at >= best_taken_at_) {
      have_best_ = true;
      best_taken_at_ = s.taken_at;
      observed_.x = s.x;
    }
    s.in_flight = false;
  }
  observed_.available = have_best_;
  observed_.age = have_best_ ? t - best_taken_at_ : 0;
  return observed_;
}

bool Link::policy_available(std::size_t t) {
  (void)t;
  if (spec_.policy_drop <= 0.0) return true;
  const bool dropped = policy_rng_.bernoulli(spec_.policy_drop);
  if (dropped) ++policy_dropped_;
  return !dropped;
}

const linalg::Vector& Link::actuate(std::size_t t, const linalg::Vector& u_cmd) {
  (void)t;
  const bool dropped = spec_.act_drop > 0.0 && act_rng_.bernoulli(spec_.act_drop);
  if (!dropped) {
    u_applied_ = u_cmd;
    held_valid_ = true;
    return u_applied_;
  }
  ++act_dropped_;
  if (spec_.act_mode == ActDropMode::kHold && held_valid_) {
    return u_applied_;  // hold register keeps the last delivered input
  }
  u_applied_ = linalg::Vector(u_cmd.size());
  held_valid_ = false;
  return u_applied_;
}

const std::vector<FaultPreset>& standard_fault_presets() {
  static const std::vector<FaultPreset> presets = {
      {"lossy",
       "wireless-grade sensing and actuation: 5% measurement drop, 2-step "
       "delivery delay, 2% actuation drop with hold-last-input",
       "meas_drop:0.05,meas_delay:2,act_drop:0.02,hold"},
      {"bursty-sensor",
       "congested sensor link: 15% measurement drop with up to 3 steps of "
       "delivery jitter",
       "meas_drop:0.15,meas_jitter:3"},
      {"noisy-sensor",
       "EMI-corrupted sensing: 10% of delivered samples spike-corrupted at "
       "30% relative magnitude",
       "meas_spike:0.1,spike_gain:0.3"},
      {"weak-actuator",
       "fail-silent actuation: 5% actuation drop with zero-input semantics",
       "act_drop:0.05,zero"},
      {"overloaded",
       "shared compute under load: skip policy unavailable 10% of periods, "
       "2% measurement drop",
       "meas_drop:0.02,policy_drop:0.1"},
  };
  return presets;
}

}  // namespace oic::fault
