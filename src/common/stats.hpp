#pragma once
/// \file stats.hpp
/// Small statistics helpers used by the benchmark harnesses to aggregate
/// per-case results into the rows/series the paper reports, plus the
/// streaming estimators (Welford accumulators, Wilson / normal confidence
/// intervals) behind the Monte-Carlo campaign layer -- campaigns run
/// millions of episodes in constant memory, so nothing here stores
/// samples.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace oic {

/// Arithmetic mean; 0 for an empty sample.
double mean(const std::vector<double>& xs);

/// Unbiased sample standard deviation; 0 for fewer than two samples.
double stddev(const std::vector<double>& xs);

/// Smallest element; throws PreconditionError on an empty sample.
double min_of(const std::vector<double>& xs);

/// Largest element; throws PreconditionError on an empty sample.
double max_of(const std::vector<double>& xs);

/// Median (average of middle pair for even sizes); throws on empty sample.
double median(const std::vector<double>& xs);

/// Streaming mean / variance / extrema accumulator (Welford's algorithm):
/// numerically stable single-pass updates, O(1) state, and an exact-shape
/// merge (Chan's pairwise formula) so sharded campaign workers can
/// aggregate per-block and combine deterministically.  The campaign
/// checkpoint format serializes the raw state, so the restore constructor
/// must reproduce an accumulator bit for bit.
class Welford {
 public:
  Welford() = default;

  /// Restore from serialized state (checkpoint resume).  `m2` is the sum
  /// of squared deviations; for n == 0 the min/max arguments are ignored.
  Welford(std::uint64_t n, double mean, double m2, double min, double max);

  /// Add one sample.
  void add(double x);

  /// Fold another accumulator into this one.  The result equals what a
  /// single accumulator over (this stream, then other's stream) would hold
  /// up to floating-point association; a fixed merge order makes campaign
  /// results a pure function of the block partition.
  void merge(const Welford& other);

  std::uint64_t count() const { return n_; }
  /// Mean; 0 for an empty accumulator.
  double mean() const { return mean_; }
  /// Unbiased sample variance; 0 for fewer than two samples.
  double variance() const;
  /// sqrt(variance()).
  double stddev() const;
  /// Smallest / largest sample; throw PreconditionError when empty.
  double min() const;
  double max() const;
  /// Raw sum of squared deviations (checkpoint serialization).
  double m2() const { return m2_; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// A closed confidence interval [lo, hi].
struct Interval {
  double lo = 0.0;
  double hi = 0.0;
  double width() const { return hi - lo; }
};

/// Two-sided standard-normal quantile for 95% coverage (z_{0.975}).
inline constexpr double kZ95 = 1.959963984540054;

/// Two-sided Student-t quantile t_{dof, 0.975} for small-sample 95%
/// intervals over independent replicate estimates (the splitting layer's
/// batch combiner).  Exact table for dof <= 30, kZ95 asymptote above;
/// throws PreconditionError for dof == 0 (one replicate has no spread).
double t_quantile_975(std::size_t dof);

/// Wilson score interval for a binomial proportion: `successes` out of
/// `trials`, normal quantile `z`.  Well-behaved at the boundaries the
/// campaign layer cares about -- zero observed violations still yields a
/// strictly positive upper bound of order z^2 / n, which is the honest
/// "no violations seen over N episodes" statement.  Zero trials carry no
/// information, so trials == 0 returns the vacuous interval [0, 1].
/// Throws PreconditionError when successes > trials.
Interval wilson_interval(std::uint64_t successes, std::uint64_t trials,
                         double z = kZ95);

/// Normal-approximation interval for the mean of a Welford accumulator:
/// mean +/- z * stddev / sqrt(n).  Degenerates to [mean, mean] for n < 2.
/// Throws PreconditionError when the accumulator is empty.
Interval normal_interval(const Welford& w, double z = kZ95);

/// A fixed-width histogram over [lo, hi) with uniform bins, matching the
/// bucketed presentation of the paper's Figure 4 (e.g. 0-10 %, 10-20 %, ...).
class Histogram {
 public:
  /// Create `bins` uniform buckets spanning [lo, hi).
  Histogram(double lo, double hi, std::size_t bins);

  /// Add one sample.  Samples below lo clamp into the first bucket and
  /// samples at or above hi clamp into the last, so totals always equal the
  /// number of add() calls.
  void add(double x);

  /// Number of samples in bucket i.
  std::size_t count(std::size_t i) const;

  /// Number of buckets.
  std::size_t bins() const { return counts_.size(); }

  /// Total number of samples added.
  std::size_t total() const { return total_; }

  /// Human-readable label of bucket i, e.g. "10%-20%" with percent=true.
  std::string label(std::size_t i, bool percent) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace oic
