#pragma once
/// \file stats.hpp
/// Small statistics helpers used by the benchmark harnesses to aggregate
/// per-case results into the rows/series the paper reports.

#include <cstddef>
#include <string>
#include <vector>

namespace oic {

/// Arithmetic mean; 0 for an empty sample.
double mean(const std::vector<double>& xs);

/// Unbiased sample standard deviation; 0 for fewer than two samples.
double stddev(const std::vector<double>& xs);

/// Smallest element; throws PreconditionError on an empty sample.
double min_of(const std::vector<double>& xs);

/// Largest element; throws PreconditionError on an empty sample.
double max_of(const std::vector<double>& xs);

/// Median (average of middle pair for even sizes); throws on empty sample.
double median(const std::vector<double>& xs);

/// A fixed-width histogram over [lo, hi) with uniform bins, matching the
/// bucketed presentation of the paper's Figure 4 (e.g. 0-10 %, 10-20 %, ...).
class Histogram {
 public:
  /// Create `bins` uniform buckets spanning [lo, hi).
  Histogram(double lo, double hi, std::size_t bins);

  /// Add one sample.  Samples below lo clamp into the first bucket and
  /// samples at or above hi clamp into the last, so totals always equal the
  /// number of add() calls.
  void add(double x);

  /// Number of samples in bucket i.
  std::size_t count(std::size_t i) const;

  /// Number of buckets.
  std::size_t bins() const { return counts_.size(); }

  /// Total number of samples added.
  std::size_t total() const { return total_; }

  /// Human-readable label of bucket i, e.g. "10%-20%" with percent=true.
  std::string label(std::size_t i, bool percent) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace oic
