#include "common/random.hpp"

#include "common/error.hpp"

namespace oic {

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t derive_stream(std::uint64_t seed, std::uint64_t index) {
  std::uint64_t state = seed + index * 0x9e3779b97f4a7c15ull;
  return splitmix64(state);
}

double Rng::uniform(double lo, double hi) {
  OIC_REQUIRE(lo <= hi, "uniform: lo must not exceed hi");
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

int Rng::uniform_int(int lo, int hi) {
  OIC_REQUIRE(lo <= hi, "uniform_int: lo must not exceed hi");
  std::uniform_int_distribution<int> dist(lo, hi);
  return dist(engine_);
}

double Rng::normal(double mean, double stddev) {
  OIC_REQUIRE(stddev >= 0.0, "normal: stddev must be non-negative");
  std::normal_distribution<double> dist(mean, stddev);
  return dist(engine_);
}

bool Rng::bernoulli(double p) {
  OIC_REQUIRE(p >= 0.0 && p <= 1.0, "bernoulli: p must be a probability");
  std::bernoulli_distribution dist(p);
  return dist(engine_);
}

std::vector<double> Rng::uniform_box(const std::vector<double>& lo,
                                     const std::vector<double>& hi) {
  OIC_REQUIRE(lo.size() == hi.size(), "uniform_box: bound dimension mismatch");
  std::vector<double> x(lo.size());
  for (std::size_t i = 0; i < lo.size(); ++i) x[i] = uniform(lo[i], hi[i]);
  return x;
}

Rng Rng::split() {
  // Children come from the parent's dedicated splitmix64 stream (see the
  // header comment): finalized outputs make grandchild seeds of adjacent
  // children independent, and the sampling engine stays untouched.
  return Rng(splitmix64(stream_state_));
}

}  // namespace oic
