#pragma once
/// \file error.hpp
/// Error-handling primitives shared by every oic module.
///
/// The library reports contract violations with exceptions derived from
/// oic::Error so that callers can distinguish library failures from
/// standard-library ones.  OIC_REQUIRE is used for precondition checks on
/// public interfaces; OIC_CHECK for internal invariants (both always on:
/// this library computes safety certificates, silent corruption is worse
/// than the branch cost).

#include <stdexcept>
#include <string>

namespace oic {

/// Base class for all exceptions thrown by the oic library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a public-API precondition is violated (bad dimensions,
/// out-of-range arguments, ...).
class PreconditionError : public Error {
 public:
  explicit PreconditionError(const std::string& what) : Error(what) {}
};

/// Thrown when an internal invariant fails; indicates a library bug.
class InternalError : public Error {
 public:
  explicit InternalError(const std::string& what) : Error(what) {}
};

/// Thrown when a numerical routine cannot produce a trustworthy result
/// (singular matrix, unbounded LP asked for a finite optimum, ...).
class NumericalError : public Error {
 public:
  explicit NumericalError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] void throw_precondition(const char* expr, const char* file, int line,
                                     const std::string& msg);
[[noreturn]] void throw_internal(const char* expr, const char* file, int line,
                                 const std::string& msg);
}  // namespace detail

}  // namespace oic

/// Precondition check for public entry points.  Always enabled.
#define OIC_REQUIRE(expr, msg)                                             \
  do {                                                                     \
    if (!(expr)) {                                                         \
      ::oic::detail::throw_precondition(#expr, __FILE__, __LINE__, (msg)); \
    }                                                                      \
  } while (false)

/// Internal invariant check.  Always enabled.
#define OIC_CHECK(expr, msg)                                           \
  do {                                                                 \
    if (!(expr)) {                                                     \
      ::oic::detail::throw_internal(#expr, __FILE__, __LINE__, (msg)); \
    }                                                                  \
  } while (false)
