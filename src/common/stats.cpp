#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.hpp"

namespace oic {

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double stddev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size() - 1));
}

double min_of(const std::vector<double>& xs) {
  OIC_REQUIRE(!xs.empty(), "min_of: empty sample");
  return *std::min_element(xs.begin(), xs.end());
}

double max_of(const std::vector<double>& xs) {
  OIC_REQUIRE(!xs.empty(), "max_of: empty sample");
  return *std::max_element(xs.begin(), xs.end());
}

double median(const std::vector<double>& xs) {
  OIC_REQUIRE(!xs.empty(), "median: empty sample");
  std::vector<double> s = xs;
  std::sort(s.begin(), s.end());
  const std::size_t n = s.size();
  if (n % 2 == 1) return s[n / 2];
  return 0.5 * (s[n / 2 - 1] + s[n / 2]);
}

Welford::Welford(std::uint64_t n, double mean, double m2, double min, double max)
    : n_(n), mean_(n ? mean : 0.0), m2_(n ? m2 : 0.0) {
  OIC_REQUIRE(m2 >= 0.0 || n == 0, "Welford: m2 must be non-negative");
  if (n_ > 0) {
    OIC_REQUIRE(min <= max, "Welford: min must not exceed max");
    min_ = min;
    max_ = max;
  }
}

void Welford::add(double x) {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double d = x - mean_;
  mean_ += d / static_cast<double>(n_);
  m2_ += d * (x - mean_);
}

void Welford::merge(const Welford& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double d = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += d * nb / n;
  m2_ += other.m2_ + d * d * na * nb / n;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Welford::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double Welford::stddev() const { return std::sqrt(variance()); }

double Welford::min() const {
  OIC_REQUIRE(n_ > 0, "Welford::min: empty accumulator");
  return min_;
}

double Welford::max() const {
  OIC_REQUIRE(n_ > 0, "Welford::max: empty accumulator");
  return max_;
}

double t_quantile_975(std::size_t dof) {
  // Standard two-sided 95% Student-t critical values; the asymptote past
  // dof 30 is within 0.9% of exact (t_31 = 2.0395 vs 2.0423 at 30).
  static const double kTable[] = {
      12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
      2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
      2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042};
  OIC_REQUIRE(dof >= 1, "t_quantile_975: need at least one degree of freedom");
  if (dof <= 30) return kTable[dof - 1];
  if (dof <= 40) return 2.021;
  if (dof <= 60) return 2.000;
  if (dof <= 120) return 1.980;
  return kZ95;
}

Interval wilson_interval(std::uint64_t successes, std::uint64_t trials, double z) {
  OIC_REQUIRE(successes <= trials, "wilson_interval: successes exceed trials");
  OIC_REQUIRE(z > 0.0, "wilson_interval: z must be positive");
  if (trials == 0) return Interval{0.0, 1.0};
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double half =
      z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
  return Interval{std::max(0.0, center - half), std::min(1.0, center + half)};
}

Interval normal_interval(const Welford& w, double z) {
  OIC_REQUIRE(w.count() > 0, "normal_interval: empty accumulator");
  OIC_REQUIRE(z > 0.0, "normal_interval: z must be positive");
  const double half =
      w.count() < 2 ? 0.0
                    : z * w.stddev() / std::sqrt(static_cast<double>(w.count()));
  return Interval{w.mean() - half, w.mean() + half};
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  OIC_REQUIRE(hi > lo, "Histogram: hi must exceed lo");
  OIC_REQUIRE(bins > 0, "Histogram: need at least one bucket");
}

void Histogram::add(double x) {
  const double t = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<long>(std::floor(t * static_cast<double>(counts_.size())));
  idx = std::clamp(idx, 0l, static_cast<long>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

std::size_t Histogram::count(std::size_t i) const {
  OIC_REQUIRE(i < counts_.size(), "Histogram::count: bucket out of range");
  return counts_[i];
}

std::string Histogram::label(std::size_t i, bool percent) const {
  OIC_REQUIRE(i < counts_.size(), "Histogram::label: bucket out of range");
  const double w = (hi_ - lo_) / static_cast<double>(counts_.size());
  const double a = lo_ + w * static_cast<double>(i);
  const double b = a + w;
  std::ostringstream os;
  if (percent) {
    os << a * 100.0 << "%-" << b * 100.0 << "%";
  } else {
    os << a << "-" << b;
  }
  return os.str();
}

}  // namespace oic
