#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.hpp"

namespace oic {

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double stddev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size() - 1));
}

double min_of(const std::vector<double>& xs) {
  OIC_REQUIRE(!xs.empty(), "min_of: empty sample");
  return *std::min_element(xs.begin(), xs.end());
}

double max_of(const std::vector<double>& xs) {
  OIC_REQUIRE(!xs.empty(), "max_of: empty sample");
  return *std::max_element(xs.begin(), xs.end());
}

double median(const std::vector<double>& xs) {
  OIC_REQUIRE(!xs.empty(), "median: empty sample");
  std::vector<double> s = xs;
  std::sort(s.begin(), s.end());
  const std::size_t n = s.size();
  if (n % 2 == 1) return s[n / 2];
  return 0.5 * (s[n / 2 - 1] + s[n / 2]);
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  OIC_REQUIRE(hi > lo, "Histogram: hi must exceed lo");
  OIC_REQUIRE(bins > 0, "Histogram: need at least one bucket");
}

void Histogram::add(double x) {
  const double t = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<long>(std::floor(t * static_cast<double>(counts_.size())));
  idx = std::clamp(idx, 0l, static_cast<long>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

std::size_t Histogram::count(std::size_t i) const {
  OIC_REQUIRE(i < counts_.size(), "Histogram::count: bucket out of range");
  return counts_[i];
}

std::string Histogram::label(std::size_t i, bool percent) const {
  OIC_REQUIRE(i < counts_.size(), "Histogram::label: bucket out of range");
  const double w = (hi_ - lo_) / static_cast<double>(counts_.size());
  const double a = lo_ + w * static_cast<double>(i);
  const double b = a + w;
  std::ostringstream os;
  if (percent) {
    os << a * 100.0 << "%-" << b * 100.0 << "%";
  } else {
    os << a << "-" << b;
  }
  return os.str();
}

}  // namespace oic
