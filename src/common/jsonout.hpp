#pragma once
/// \file jsonout.hpp
/// Tiny helpers for the hand-rolled JSON documents the benches, the sweep
/// driver, and the training grid emit.  One copy so the emitters agree on
/// escaping: registry ids are safe by construction, but agent paths and
/// drl:<path> policy specs are user-controlled and must not be able to
/// break the document.
///
/// Doc is the shared top-level builder: every machine-readable document
/// the tools and benches emit opens with the same envelope (the bench
/// tag, the schema_version, and the build-provenance "meta" object) and
/// closes with the safety verdict, so scripts/check_bench_json.py can
/// hold every producer to one contract.

#include <cstdarg>
#include <cstdio>
#include <string>
#include <vector>

#include "common/buildinfo.hpp"

namespace oic::jsonout {

/// Version of the shared document envelope.  Bump when the envelope
/// itself (not a producer's payload) changes shape.
inline constexpr int kSchemaVersion = 1;

/// Escape a string for embedding between JSON quotes: backslash, quote,
/// and control characters (the only characters JSON forbids raw).
inline std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned>(c) & 0xff);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

/// Append a quoted, escaped JSON string.
inline void append_string(std::string& out, const std::string& s) {
  out += '"';
  out += escape(s);
  out += '"';
}

/// Append ["a", "b", ...] with escaping.
inline void append_string_array(std::string& out, const std::vector<std::string>& items) {
  out += "[";
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i) out += ", ";
    append_string(out, items[i]);
  }
  out += "]";
}

/// printf-append for the fixed-shape numeric parts of a document.  The
/// buffer bounds formatted numbers/booleans only -- never pass
/// variable-length strings through %s here; use append_string instead.
#if defined(__GNUC__)
__attribute__((format(printf, 2, 3)))
#endif
inline void append_format(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  out += buf;
}

/// Top-level document builder (see file comment).  Construct with the
/// bench tag, append producer sections to body() (each section ends with
/// ",\n"), then finish() closes the document with the shared
/// "safety_violations" verdict:
///
///   Doc doc("oic_eval");
///   doc.body() += "  \"config\": {...},\n";
///   return std::move(doc).finish(result.safety_violations);
class Doc {
 public:
  explicit Doc(const std::string& bench_tag) {
    out_ += "{\n";
    out_ += "  \"bench\": ";
    append_string(out_, bench_tag);
    out_ += ",\n";
    append_format(out_, "  \"schema_version\": %d,\n", kSchemaVersion);
    out_ += "  \"meta\": " + build_meta_json() + ",\n";
  }

  /// The document under construction; append sections here.
  std::string& body() { return out_; }

  /// Close with the shared safety verdict and return the document.
  std::string finish(bool safety_violations) && {
    append_format(out_, "  \"safety_violations\": %s\n",
                  safety_violations ? "true" : "false");
    out_ += "}\n";
    return std::move(out_);
  }

 private:
  std::string out_;
};

}  // namespace oic::jsonout
