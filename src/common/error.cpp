#include "common/error.hpp"

#include <sstream>

namespace oic::detail {

namespace {
std::string format(const char* kind, const char* expr, const char* file, int line,
                   const std::string& msg) {
  std::ostringstream os;
  os << kind << ": " << msg << " [" << expr << " at " << file << ":" << line << "]";
  return os.str();
}
}  // namespace

void throw_precondition(const char* expr, const char* file, int line,
                        const std::string& msg) {
  throw PreconditionError(format("precondition violated", expr, file, line, msg));
}

void throw_internal(const char* expr, const char* file, int line,
                    const std::string& msg) {
  throw InternalError(format("internal invariant violated", expr, file, line, msg));
}

}  // namespace oic::detail
