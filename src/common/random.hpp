#pragma once
/// \file random.hpp
/// Deterministic random-number utilities.
///
/// Every stochastic component in the library (disturbance sampling, DQN
/// exploration, scenario generation) draws from an oic::Rng that is seeded
/// explicitly, so that experiments and tests are reproducible bit-for-bit.

#include <cstdint>
#include <random>
#include <vector>

namespace oic {

/// A small wrapper over std::mt19937_64 with convenience samplers.
///
/// The wrapper exists so call sites never touch distribution objects
/// directly; this keeps sampling behaviour identical across modules and
/// makes the seed the single source of randomness.
class Rng {
 public:
  /// Construct from an explicit 64-bit seed.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) : engine_(seed) {}

  /// Uniform real in [lo, hi].
  double uniform(double lo, double hi);

  /// Uniform integer in {lo, ..., hi} (inclusive).
  int uniform_int(int lo, int hi);

  /// Standard normal sample scaled to the given mean / standard deviation.
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p);

  /// Uniform sample from a closed axis-aligned box given as (lo, hi) pairs.
  std::vector<double> uniform_box(const std::vector<double>& lo,
                                  const std::vector<double>& hi);

  /// Split off an independently seeded child generator.  Used to give each
  /// experiment case its own stream while the parent seed stays the sole
  /// reproducibility knob.
  Rng split();

  /// Access the raw engine (for std::shuffle etc.).
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace oic
