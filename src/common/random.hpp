#pragma once
/// \file random.hpp
/// Deterministic random-number utilities.
///
/// Every stochastic component in the library (disturbance sampling, DQN
/// exploration, scenario generation) draws from an oic::Rng that is seeded
/// explicitly, so that experiments and tests are reproducible bit-for-bit.

#include <cstdint>
#include <random>
#include <vector>

namespace oic {

/// One step of the splitmix64 sequence: advances `state` by the golden
/// gamma and returns the finalized output.  This is the stream-derivation
/// primitive behind Rng::split() and the Monte-Carlo campaign layer's
/// per-episode seeds: the finalizer's avalanche decorrelates outputs for
/// adjacent states, so seeds derived from consecutive indices (and their
/// children, recursively) do not share low-bit structure the way raw
/// counter seeds do.
std::uint64_t splitmix64(std::uint64_t& state);

/// Seed of substream `index` of a base seed: splitmix64 evaluated at the
/// state `seed + (index + 1) * gamma`.  A pure function of (seed, index),
/// so callers can address substreams randomly (per episode, per cell)
/// without materializing the parents -- the reproducibility contract of
/// `oic_mc` checkpoints and sharded campaigns depends on exactly this.
std::uint64_t derive_stream(std::uint64_t seed, std::uint64_t index);

/// A small wrapper over std::mt19937_64 with convenience samplers.
///
/// The wrapper exists so call sites never touch distribution objects
/// directly; this keeps sampling behaviour identical across modules and
/// makes the seed the single source of randomness.
class Rng {
 public:
  /// Construct from an explicit 64-bit seed.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
      : engine_(seed), stream_state_(seed) {}

  /// Uniform real in [lo, hi].
  double uniform(double lo, double hi);

  /// Uniform integer in {lo, ..., hi} (inclusive).
  int uniform_int(int lo, int hi);

  /// Standard normal sample scaled to the given mean / standard deviation.
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p);

  /// Uniform sample from a closed axis-aligned box given as (lo, hi) pairs.
  std::vector<double> uniform_box(const std::vector<double>& lo,
                                  const std::vector<double>& hi);

  /// Split off an independently seeded child generator.  Used to give each
  /// experiment case its own stream while the parent seed stays the sole
  /// reproducibility knob.
  ///
  /// Children are seeded from a dedicated splitmix64 stream (not from
  /// engine draws): the i-th split of a parent seeded with s gets
  /// splitmix64 output i of state s, and grandchildren re-derive from that
  /// finalized output.  The finalizer's avalanche keeps children of
  /// *adjacent* children decorrelated -- the earlier engine-draw scheme
  /// let grandchild seeds of neighbouring cases share correlated state.
  /// Splitting does not advance the sampling engine, so split-heavy code
  /// (the campaign layer derives one child per episode) never perturbs the
  /// parent's own draw sequence.
  Rng split();

  /// Access the raw engine (for std::shuffle etc.).
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uint64_t stream_state_;  ///< splitmix64 state feeding split()
};

}  // namespace oic
