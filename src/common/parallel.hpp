#pragma once
/// \file parallel.hpp
/// Minimal thread pool for the evaluation sweeps.
///
/// The Monte-Carlo workloads (compare_policies over hundreds of cases) are
/// embarrassingly parallel: cases are independent once their random streams
/// have been drawn.  This pool runs submitted jobs on a fixed set of worker
/// threads; work is partitioned into contiguous chunks *deterministically*
/// (never work-stealing by arrival order), so results land in
/// caller-indexed slots and are bit-identical no matter how many workers
/// execute them.

#include <cstddef>
#include <exception>
#include <functional>
#include <vector>

namespace oic {

/// Fixed-size thread pool.  Jobs may throw: the first exception is captured
/// and rethrown from wait_idle() on the calling thread.
class ThreadPool {
 public:
  /// `threads` = 0 picks the hardware concurrency.  A pool of size 1 runs
  /// jobs on its single worker (use run_chunked's inline path to avoid
  /// threads entirely).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue one job.
  void submit(std::function<void()> job);

  /// Block until every submitted job has finished; rethrows the first
  /// exception any job raised.
  void wait_idle();

  /// Number of worker threads.
  std::size_t size() const { return num_threads_; }

 private:
  struct Impl;
  Impl* impl_;
  std::size_t num_threads_;
};

/// Split [0, n) into `chunks` contiguous ranges (sizes differing by at most
/// one) and invoke fn(chunk_index, begin, end) for each -- on the calling
/// thread when the effective chunk count is 1, otherwise one job per chunk
/// on a pool of that many workers.  `chunks` = 0 picks the hardware
/// concurrency; the count is clamped to n.  The chunk boundaries depend
/// only on (n, chunks), so a caller writing results by index gets identical
/// output for any worker count.
void run_chunked(std::size_t n, std::size_t chunks,
                 const std::function<void(std::size_t, std::size_t, std::size_t)>& fn);

}  // namespace oic
