#pragma once
/// \file hash.hpp
/// FNV-1a 64 accumulator shared by the certificate content hash
/// (cert/certificate.cpp) and the Monte-Carlo campaign spec fingerprint
/// (mc/campaign.cpp).  Doubles hash by their exact bit pattern, so two
/// inputs hash equal iff every number is identical bit for bit -- the
/// strictness both the golden-load guarantee and the checkpoint-resume
/// guard are phrased in.

#include <cstdint>
#include <cstring>
#include <string>

namespace oic {

class Fnv1a {
 public:
  void bytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      h_ ^= p[i];
      h_ *= 0x100000001b3ull;
    }
  }
  /// Length-prefixed, so concatenations cannot collide ("ab","c" vs "a","bc").
  void str(const std::string& s) {
    const std::size_t n = s.size();
    bytes(&n, sizeof n);
    bytes(s.data(), s.size());
  }
  void u64(std::uint64_t v) { bytes(&v, sizeof v); }
  void f64(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }
  std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ull;
};

}  // namespace oic
