#include "common/buildinfo.hpp"

// The git SHA comes from a header regenerated at build time
// (cmake/gitsha.cmake), so incremental builds after new commits report
// the right commit; OIC_BUILD_TYPE is injected for this translation unit
// only, and the compiler identifies itself via its own macros.
#ifdef OIC_HAVE_GITSHA_HEADER
#include "oic_git_sha.h"
#endif

#include "linalg/simd.hpp"

namespace oic {

const char* git_sha() {
#ifdef OIC_GIT_SHA
  return OIC_GIT_SHA;
#else
  return "unknown";
#endif
}

const char* compiler_id() {
#if defined(__clang__)
  return "clang " __clang_version__;
#elif defined(__GNUC__)
  return "gcc " __VERSION__;
#else
  return "unknown";
#endif
}

const char* build_type() {
#ifdef OIC_BUILD_TYPE
  return OIC_BUILD_TYPE;
#else
  return "unknown";
#endif
}

std::string build_meta_json() {
  std::string out = "{\"git_sha\": \"";
  out += git_sha();
  out += "\", \"compiler\": \"";
  out += compiler_id();
  out += "\", \"build_type\": \"";
  out += build_type();
  out += "\", \"isa\": \"";
  out += linalg::simd::active_isa_name();
  out += "\"}";
  return out;
}

}  // namespace oic
