#include "common/parallel.hpp"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>

#include "common/error.hpp"

namespace oic {

struct ThreadPool::Impl {
  std::mutex mu;
  std::condition_variable work_cv;   // workers wait for jobs
  std::condition_variable idle_cv;   // wait_idle waits for drain
  std::deque<std::function<void()>> jobs;
  std::vector<std::thread> workers;
  std::size_t in_flight = 0;
  bool stopping = false;
  std::exception_ptr first_error;

  void worker_loop() {
    for (;;) {
      std::function<void()> job;
      {
        std::unique_lock<std::mutex> lock(mu);
        work_cv.wait(lock, [&] { return stopping || !jobs.empty(); });
        if (stopping && jobs.empty()) return;
        job = std::move(jobs.front());
        jobs.pop_front();
      }
      try {
        job();
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu);
        if (!first_error) first_error = std::current_exception();
      }
      {
        std::lock_guard<std::mutex> lock(mu);
        --in_flight;
        if (in_flight == 0 && jobs.empty()) idle_cv.notify_all();
      }
    }
  }
};

ThreadPool::ThreadPool(std::size_t threads) : impl_(new Impl) {
  num_threads_ =
      threads != 0 ? threads
                   : std::max<std::size_t>(1, std::thread::hardware_concurrency());
  impl_->workers.reserve(num_threads_);
  for (std::size_t i = 0; i < num_threads_; ++i) {
    impl_->workers.emplace_back([this] { impl_->worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->stopping = true;
  }
  impl_->work_cv.notify_all();
  for (auto& w : impl_->workers) w.join();
  delete impl_;
}

void ThreadPool::submit(std::function<void()> job) {
  OIC_REQUIRE(static_cast<bool>(job), "ThreadPool::submit: empty job");
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->jobs.push_back(std::move(job));
    ++impl_->in_flight;
  }
  impl_->work_cv.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(impl_->mu);
  impl_->idle_cv.wait(lock, [&] { return impl_->in_flight == 0 && impl_->jobs.empty(); });
  if (impl_->first_error) {
    std::exception_ptr e = impl_->first_error;
    impl_->first_error = nullptr;
    lock.unlock();
    std::rethrow_exception(e);
  }
}

void run_chunked(std::size_t n, std::size_t chunks,
                 const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  if (chunks == 0) chunks = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  chunks = std::min(chunks, n);
  // Chunk c covers [c*q + min(c, r), ...) with q = n/chunks, r = n%chunks:
  // the first r chunks get one extra item.  Purely a function of (n,
  // chunks) -- deterministic partitioning.
  const std::size_t q = n / chunks;
  const std::size_t r = n % chunks;
  auto begin_of = [&](std::size_t c) { return c * q + std::min(c, r); };
  if (chunks == 1) {
    fn(0, 0, n);
    return;
  }
  ThreadPool pool(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t b = begin_of(c), e = begin_of(c + 1);
    pool.submit([&fn, c, b, e] { fn(c, b, e); });
  }
  pool.wait_idle();
}

}  // namespace oic
