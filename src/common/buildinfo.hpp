#pragma once
/// \file buildinfo.hpp
/// Build provenance embedded in every machine-readable bench/sweep/train
/// JSON document: which commit, compiler, and build configuration produced
/// the numbers.  Committed BENCH files and CI smoke outputs carry the same
/// "meta" object, so a regression can always be traced to its build.

#include <string>

namespace oic {

/// Git commit (short SHA) the library was configured from; "unknown" when
/// the build was not configured inside a git checkout.
const char* git_sha();

/// Compiler id + version, e.g. "gcc 12.2.0".
const char* compiler_id();

/// CMake build type, e.g. "Release"; "unknown" outside CMake.
const char* build_type();

/// The shared "meta" JSON object:
///   {"git_sha": "...", "compiler": "...", "build_type": "...",
///    "isa": "scalar"|"avx2"}
/// `isa` is the kernel dispatch tier the producing process resolved to
/// (linalg/simd.hpp) -- numbers are bit-identical across ISAs by contract,
/// but timings are not, so the tier is provenance.
std::string build_meta_json();

}  // namespace oic
