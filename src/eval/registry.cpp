#include "eval/registry.hpp"

#include <algorithm>
#include <cstdlib>

#include "acc/acc.hpp"
#include "acc/scenarios.hpp"
#include "common/error.hpp"
#include "eval/plants/lane_keep.hpp"
#include "eval/plants/quad_alt.hpp"
#include "eval/plants/second_order.hpp"

namespace oic::eval {

namespace {

std::string join_ids(const std::vector<std::string>& ids) {
  std::string out;
  for (const auto& id : ids) {
    if (!out.empty()) out += ", ";
    out += id;
  }
  return out;
}

// ---- ACC (the paper's case study, Sec. IV) --------------------------------

Scenario make_acc_scenario(const std::string& id) {
  const acc::AccParams params;  // registry plants use paper parameters
  if (id == "Fig.4") return acc::fig4_scenario(params);
  if (id == "Jam") return acc::stop_and_go_scenario(params);
  if (id.rfind("Ex.", 0) == 0) {
    const int index = std::atoi(id.c_str() + 3);
    if (index >= 1 && index <= 5) return acc::range_scenario(index, params);
    if (index >= 6 && index <= 10) return acc::regularity_scenario(index, params);
  }
  throw PreconditionError("unknown acc scenario '" + id + "'");
}

PlantInfo acc_info() {
  PlantInfo info;
  info.id = "acc";
  info.description =
      "adaptive cruise control (paper Sec. IV): gap/speed vs front vehicle";
  info.make_plant = [](const cert::Provider& provider) {
    return std::make_unique<acc::AccCase>(acc::AccParams{},
                                          acc::AccCase::default_rmpc(), provider);
  };
  info.make_model = [] { return acc::AccCase::model(); };
  info.scenario_ids = {"Fig.4"};
  for (int i = 1; i <= 10; ++i) info.scenario_ids.push_back("Ex." + std::to_string(i));
  info.scenario_ids.push_back("Jam");
  info.make_scenario = make_acc_scenario;
  const acc::AccParams p;
  info.signal_band = {p.vf_min, p.vf_max};
  return info;
}

// ---- Lane keeping ----------------------------------------------------------

Scenario make_lane_keep_scenario(const std::string& id) {
  const LaneKeepParams p;
  const double w = p.w_max;
  if (id == "sine") {
    return Scenario("sine", "sinusoidal crosswind, amplitude 0.7 w_max, noise 0.1 w_max",
                    std::make_unique<sim::SinusoidalProfile>(0.0, 0.7 * w, p.delta,
                                                             0.1 * w, -w, w));
  }
  if (id == "rough") {
    return Scenario("rough", "bounded-slew random crosswind over the full range",
                    std::make_unique<sim::BoundedAccelProfile>(-w, w, 3.0 * w, p.delta));
  }
  if (id == "gusts") {
    return Scenario("gusts",
                    "stop-and-go gust fronts: dwell/ramp between -0.8/+0.8 w_max",
                    std::make_unique<sim::StopAndGoProfile>(-0.8 * w, 0.8 * w, 20, 10,
                                                            0.3));
  }
  if (id == "white") {
    return Scenario("white", "uncorrelated uniform crosswind (worst-case pattern-free)",
                    std::make_unique<sim::UniformRandomProfile>(-w, w));
  }
  throw PreconditionError("unknown lane-keep scenario '" + id + "'");
}

PlantInfo lane_keep_info() {
  PlantInfo info;
  info.id = "lane-keep";
  info.description = "double-integrator lane keeping: lateral offset vs crosswind";
  info.make_plant = [](const cert::Provider& provider) {
    return std::make_unique<LaneKeepCase>(LaneKeepParams{},
                                          LaneKeepCase::default_rmpc(), provider);
  };
  info.make_model = [] { return LaneKeepCase::model(); };
  info.scenario_ids = {"sine", "rough", "gusts", "white"};
  info.make_scenario = make_lane_keep_scenario;
  const LaneKeepParams p;
  info.signal_band = {-p.w_max, p.w_max};
  return info;
}

// ---- Quadrotor altitude hold ----------------------------------------------

Scenario make_quad_alt_scenario(const std::string& id) {
  const QuadAltParams p;
  const double w = p.w_max;
  if (id == "sine") {
    return Scenario("sine",
                    "sinusoidal thermal cycle, amplitude 0.6 w_max, noise 0.15 w_max",
                    std::make_unique<sim::SinusoidalProfile>(0.0, 0.6 * w, p.delta,
                                                             0.15 * w, -w, w));
  }
  if (id == "rough") {
    return Scenario("rough", "bounded-slew random gusts over the full range",
                    std::make_unique<sim::BoundedAccelProfile>(-w, w, 4.0 * w, p.delta));
  }
  if (id == "gusts") {
    return Scenario("gusts", "stop-and-go downdraft fronts between -0.7/+0.7 w_max",
                    std::make_unique<sim::StopAndGoProfile>(-0.7 * w, 0.7 * w, 25, 12,
                                                            0.25));
  }
  if (id == "white") {
    return Scenario("white", "uncorrelated uniform gusts (worst-case pattern-free)",
                    std::make_unique<sim::UniformRandomProfile>(-w, w));
  }
  throw PreconditionError("unknown quad-alt scenario '" + id + "'");
}

PlantInfo quad_alt_info() {
  PlantInfo info;
  info.id = "quad-alt";
  info.description = "quadrotor altitude hold: height error vs vertical gusts";
  info.make_plant = [](const cert::Provider& provider) {
    return std::make_unique<QuadAltCase>(QuadAltParams{},
                                         QuadAltCase::default_rmpc(), provider);
  };
  info.make_model = [] { return QuadAltCase::model(); };
  // "white" completes the uniform scenario family every non-ACC plant
  // exposes (sine / rough / gusts / white), so cross-plant sweeps by
  // scenario id cover both plants symmetrically.
  info.scenario_ids = {"sine", "rough", "gusts", "white"};
  info.make_scenario = make_quad_alt_scenario;
  const QuadAltParams p;
  info.signal_band = {-p.w_max, p.w_max};
  return info;
}

// ---- Plain second-order demo ----------------------------------------------

Scenario make_toy2d_scenario(const std::string& id) {
  const Toy2dParams p;
  const double w = p.w_max;
  if (id == "sine") {
    return Scenario("sine",
                    "sinusoidal torque disturbance, amplitude 0.7 w_max, "
                    "noise 0.1 w_max",
                    std::make_unique<sim::SinusoidalProfile>(0.0, 0.7 * w, p.delta,
                                                             0.1 * w, -w, w));
  }
  if (id == "white") {
    return Scenario("white",
                    "uncorrelated uniform disturbance (worst-case pattern-free)",
                    std::make_unique<sim::UniformRandomProfile>(-w, w));
  }
  throw PreconditionError("unknown toy2d scenario '" + id + "'");
}

PlantInfo toy2d_info() {
  PlantInfo info;
  info.id = "toy2d";
  info.description = "plain second-order demo: double integrator holding a setpoint";
  info.make_plant = [](const cert::Provider& provider) {
    return std::make_unique<Toy2dCase>(Toy2dParams{}, Toy2dCase::default_rmpc(),
                                       provider);
  };
  info.make_model = [] { return Toy2dCase::model(); };
  info.scenario_ids = {"sine", "white"};
  info.make_scenario = make_toy2d_scenario;
  const Toy2dParams p;
  info.signal_band = {-p.w_max, p.w_max};
  return info;
}

// ---- Analytic rare-event bed (test-only) ----------------------------------

PlantInfo rare1d_info() {
  PlantInfo info;
  info.id = "rare1d";
  info.description =
      "analytic rare-event bed: scalar bounded+Gaussian excitation with a "
      "closed-form rare-hit-count probability (splitting validation only)";
  // The bed has no dynamics, controller, or certificate: its trajectories
  // are simulated analytically inside mc::splitting, and the closed-form
  // answer is what the splitting estimator is validated against.  Any
  // attempt to build it as a control plant fails loudly.
  info.make_plant = [](const cert::Provider&) -> std::unique_ptr<PlantCase> {
    throw PreconditionError(
        "plant 'rare1d' is an analytic splitting test bed; it has no "
        "controller -- use oic_mc --splitting");
  };
  info.make_model = []() -> cert::PlantModel {
    throw PreconditionError(
        "plant 'rare1d' is an analytic splitting test bed; it has no "
        "certificate model");
  };
  info.scenario_ids = {"analytic"};
  info.make_scenario = [](const std::string&) -> Scenario {
    throw PreconditionError(
        "plant 'rare1d' is an analytic splitting test bed; it has no "
        "deterministic scenarios");
  };
  info.signal_band = {-1.0, 1.0};
  info.test_only = true;
  return info;
}

}  // namespace

void ScenarioRegistry::add(PlantInfo info) {
  OIC_REQUIRE(!info.id.empty(), "ScenarioRegistry::add: empty plant id");
  OIC_REQUIRE(!has_plant(info.id),
              "ScenarioRegistry::add: duplicate plant '" + info.id + "'");
  OIC_REQUIRE(static_cast<bool>(info.make_plant),
              "ScenarioRegistry::add: plant factory required");
  OIC_REQUIRE(static_cast<bool>(info.make_model),
              "ScenarioRegistry::add: model factory required");
  OIC_REQUIRE(static_cast<bool>(info.make_scenario),
              "ScenarioRegistry::add: scenario factory required");
  OIC_REQUIRE(!info.scenario_ids.empty(),
              "ScenarioRegistry::add: plant '" + info.id + "' lists no scenarios");
  OIC_REQUIRE(info.signal_band.hi > info.signal_band.lo,
              "ScenarioRegistry::add: plant '" + info.id +
                  "' needs a non-degenerate signal band");
  plants_.push_back(std::move(info));
}

std::vector<std::string> ScenarioRegistry::plant_ids() const {
  std::vector<std::string> ids;
  ids.reserve(plants_.size());
  for (const auto& p : plants_) ids.push_back(p.id);
  return ids;
}

std::vector<std::string> ScenarioRegistry::production_plant_ids() const {
  std::vector<std::string> ids;
  ids.reserve(plants_.size());
  for (const auto& p : plants_) {
    if (!p.test_only) ids.push_back(p.id);
  }
  return ids;
}

bool ScenarioRegistry::has_plant(const std::string& id) const {
  for (const auto& p : plants_) {
    if (p.id == id) return true;
  }
  return false;
}

const PlantInfo& ScenarioRegistry::plant(const std::string& id) const {
  for (const auto& p : plants_) {
    if (p.id == id) return p;
  }
  throw PreconditionError("unknown plant '" + id + "' (known: " + join_ids(plant_ids()) +
                          ")");
}

std::unique_ptr<PlantCase> ScenarioRegistry::make_plant(
    const std::string& id, const cert::Provider& provider) const {
  return plant(id).make_plant(provider);
}

cert::PlantModel ScenarioRegistry::make_model(const std::string& id) const {
  return plant(id).make_model();
}

Scenario ScenarioRegistry::make_scenario(const std::string& plant_id,
                                         const std::string& scenario_id) const {
  const PlantInfo& info = plant(plant_id);
  const auto& ids = info.scenario_ids;
  if (std::find(ids.begin(), ids.end(), scenario_id) == ids.end()) {
    throw PreconditionError("plant '" + plant_id + "' has no scenario '" + scenario_id +
                            "' (known: " + join_ids(ids) + ")");
  }
  return info.make_scenario(scenario_id);
}

void ScenarioRegistry::add_fault_preset(fault::FaultPreset preset) {
  OIC_REQUIRE(!preset.id.empty(), "ScenarioRegistry::add_fault_preset: empty id");
  for (const auto& p : fault_presets_) {
    OIC_REQUIRE(p.id != preset.id,
                "ScenarioRegistry::add_fault_preset: duplicate preset '" + preset.id +
                    "'");
  }
  // Vet the spec at registration, so a broken preset fails loudly here and
  // not in the middle of a campaign.
  (void)fault::FaultSpec::parse(preset.spec);
  fault_presets_.push_back(std::move(preset));
}

fault::FaultSpec ScenarioRegistry::resolve_faults(const std::string& text) const {
  for (const auto& p : fault_presets_) {
    if (p.id == text) return fault::FaultSpec::parse(p.spec);
  }
  return fault::FaultSpec::parse(text);
}

const ScenarioRegistry& ScenarioRegistry::builtin() {
  static const ScenarioRegistry reg = [] {
    ScenarioRegistry r;
    r.add(acc_info());
    r.add(lane_keep_info());
    r.add(quad_alt_info());
    r.add(toy2d_info());
    r.add(rare1d_info());
    for (const auto& preset : fault::standard_fault_presets()) {
      r.add_fault_preset(preset);
    }
    return r;
  }();
  return reg;
}

}  // namespace oic::eval
