#pragma once
/// \file registry.hpp
/// Catalogue of evaluation plants and their scenarios, keyed by string id.
///
/// The registry is what makes the sweep driver (and the CLI) plant-generic:
/// a plant registers a factory plus a list of scenario ids, and oic_eval
/// sweeps plant x scenario x policy x seed grids without knowing any plant
/// concretely.  Scenario construction is deliberately independent of plant
/// construction -- plants are expensive (their constructors run the
/// feasible-set and strengthened-set LPs), scenarios are cheap profile
/// prototypes -- so listing and validating a sweep never builds a plant.
///
/// Built-in plants ("acc", "lane-keep", "quad-alt") live in builtin();
/// tests or downstream tools can assemble their own registries.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "eval/plant.hpp"
#include "fault/fault.hpp"

namespace oic::eval {

/// One registered plant: id, factory, and its scenario catalogue.
struct PlantInfo {
  std::string id;           ///< registry key ("acc", "lane-keep", ...)
  std::string description;  ///< one-line summary for listings
  /// Builds the plant, resolving its safety certificate through the given
  /// provider (empty = synthesize fresh -- expensive, the set-synthesis
  /// LPs run; a cert::Store provider makes this file-read-bound).
  std::function<std::unique_ptr<PlantCase>(const cert::Provider&)> make_plant;
  /// The plant's declarative synthesis inputs (cheap; no LP runs).  What
  /// `oic_cert` synthesizes / verifies against without building the plant.
  std::function<cert::PlantModel()> make_model;
  /// Scenario ids in catalogue order.
  std::vector<std::string> scenario_ids;
  /// Builds one scenario by id; must succeed for every id in scenario_ids.
  std::function<Scenario(const std::string& scenario_id)> make_scenario;
  /// The plant's scalar-signal envelope: what the Monte-Carlo campaign
  /// layer samples randomized scenario families within (mc::ScenarioFamily).
  SignalBand signal_band;
  /// Ground-truth / validation plants (e.g. "rare1d", the analytic
  /// rare-event bed): listed and addressable by id, but excluded from
  /// every default sweep/cert/bench grid.  Their factories may throw.
  bool test_only = false;
};

/// Ordered plant catalogue with by-id lookup.
class ScenarioRegistry {
 public:
  ScenarioRegistry() = default;

  /// Register a plant; throws PreconditionError on duplicate or empty ids,
  /// missing factories, or an empty scenario list.
  void add(PlantInfo info);

  /// Registered plant ids, in registration order.
  std::vector<std::string> plant_ids() const;

  /// Plant ids with test_only plants filtered out -- the set every driver
  /// uses when the user did not name plants explicitly.
  std::vector<std::string> production_plant_ids() const;

  bool has_plant(const std::string& id) const;

  /// Lookup; throws PreconditionError for unknown ids (message lists the
  /// known ones -- the CLI surfaces it verbatim).
  const PlantInfo& plant(const std::string& id) const;

  /// Build a plant by id, resolving its certificate through `provider`
  /// (empty = fresh synthesis, the historical behavior).
  std::unique_ptr<PlantCase> make_plant(const std::string& id,
                                        const cert::Provider& provider = {}) const;

  /// Declarative synthesis inputs of a plant (cheap; no LPs).
  cert::PlantModel make_model(const std::string& id) const;

  /// Build one scenario; throws PreconditionError when the plant does not
  /// list `scenario_id`.
  Scenario make_scenario(const std::string& plant_id,
                         const std::string& scenario_id) const;

  /// Register a named fault model (CLIs list these; resolve_faults prefers
  /// them over the raw grammar).  Throws on duplicate/empty ids or specs
  /// that do not parse.
  void add_fault_preset(fault::FaultPreset preset);

  /// Registered fault presets, in registration order.
  const std::vector<fault::FaultPreset>& fault_presets() const {
    return fault_presets_;
  }

  /// Resolve a --faults argument: "" / "off" = no faults, a registered
  /// preset id = its spec, anything else = the FaultSpec::parse grammar
  /// (throws PreconditionError on malformed input).
  fault::FaultSpec resolve_faults(const std::string& text) const;

  /// The built-in catalogue: the ACC case study (Fig.4, Ex.1..Ex.10, Jam),
  /// lane keeping, quadrotor altitude hold, the plain second-order demo
  /// plant ("toy2d"), the test-only analytic rare-event bed ("rare1d"),
  /// plus the standard fault presets.  Built once, immutable.
  static const ScenarioRegistry& builtin();

 private:
  std::vector<PlantInfo> plants_;
  std::vector<fault::FaultPreset> fault_presets_;
};

}  // namespace oic::eval
