#pragma once
/// \file policy_spec.hpp
/// The one authoritative definition of the policy spec grammar every
/// surface shares (oic_eval/oic_mc/oic_train CLIs, the serve layer, the
/// test suite).  A spec is a single whitespace-free token:
///
///   always-run        transmit every period (the baseline)
///   bang-bang         skip whenever the monitor allows it
///   periodic-N        transmit every N-th period (N >= 1, digits only)
///   burst:<k>         bang-bang plus certified k-step burst requests
///                     (k >= 1; clamped to the plant's ladder depth)
///   drl:<path>        trained skipping agent (an `oic-agent v1` file)
///
/// parse_policy_spec classifies a spec without touching the filesystem, so
/// the wire/CLI layers can validate grammar cheaply; make_policy performs
/// the classification *and* materializes the policy (loading the agent
/// file for drl specs).  Malformed specs raise PreconditionError with a
/// message naming the offending payload, never a silent fallback.

#include <cstddef>
#include <memory>
#include <string>

#include "core/policy.hpp"

namespace oic::eval {

/// Structured form of one policy spec token.
struct PolicySpec {
  enum class Kind { kAlwaysRun, kBangBang, kPeriodic, kBurst, kDrl };
  Kind kind = Kind::kAlwaysRun;
  std::size_t count = 0;  ///< periodic-N period or burst:<k> depth
  std::string path;       ///< drl:<path> agent file
  std::string text;       ///< the original spec, verbatim
};

/// Classify one spec per the file grammar.  Pure string parsing -- a
/// `drl:<path>` spec is accepted without opening the file.  Throws
/// PreconditionError naming the malformed part otherwise.
PolicySpec parse_policy_spec(const std::string& spec);

/// Parse and materialize one policy.  For drl specs this loads and
/// validates the agent file (dimension/scale checks).  Throws
/// PreconditionError on malformed specs or unloadable agents.
std::unique_ptr<core::SkipPolicy> make_policy(const std::string& spec);

}  // namespace oic::eval
