#pragma once
/// \file sweep.hpp
/// The oic_eval sweep driver: runs plant x scenario x policy x seed grids
/// through compare_policies_parallel and emits one JSON document per sweep.
///
/// The JSON schema is shared with bench_throughput: a top-level "bench"
/// tag, a "meta" object with build provenance (git SHA, compiler, build
/// type; common/buildinfo.hpp), a "config" object ({cases, steps, workers,
/// policies, seed}, plus the grid axes), timing objects with {wall_s,
/// episodes, episodes_per_s, step_ns}, and a final "safety_violations"
/// flag -- so the CI smoke job can validate both documents with one schema
/// checker.
///
/// The CLI (tools/oic_eval.cpp) is a thin flag-parsing wrapper over
/// run_sweep/sweep_json; tests drive the same entry points, so the binary
/// and the test suite cannot drift.

#include <cstdint>
#include <string>
#include <vector>

#include "eval/engine.hpp"
#include "eval/policy_spec.hpp"
#include "eval/registry.hpp"

namespace oic::eval {

/// Grid specification.  Empty plant / scenario lists mean "all registered".
struct SweepSpec {
  std::vector<std::string> plants;     ///< plant ids; empty = all
  std::vector<std::string> scenarios;  ///< scenario ids; empty = all per plant;
                                       ///< otherwise every id must exist on
                                       ///< every selected plant
  std::vector<std::string> policies = {"bang-bang", "periodic-5"};
  std::size_t cases = 24;
  std::size_t steps = 100;
  std::vector<std::uint64_t> seeds = {20200406};
  std::size_t workers = 0;  ///< 0 = hardware concurrency
  /// Certificate cache directory (cert::Store).  Empty = synthesize every
  /// plant's safety artifacts fresh (the historical behavior); set, plant
  /// construction loads cached `oic-cert v1` files and the sweep's cold
  /// start is file-read-bound instead of LP-bound.
  std::string cert_dir;
  /// Fault model for every episode: "" / "off" (default), a registered
  /// preset id ("lossy", ...), or the FaultSpec::parse grammar.  Resolved
  /// against the registry at sweep start.
  std::string faults;
};

/// One grid cell: the paired comparison of every policy against the
/// always-run baseline on (plant, scenario, seed).
struct SweepCell {
  std::string plant;
  std::string scenario;
  std::uint64_t seed = 0;
  ComparisonResult result;
  double wall_s = 0.0;
};

/// Whole-sweep outcome.
struct SweepResult {
  std::vector<SweepCell> cells;
  double wall_s = 0.0;           ///< total wall time including plant builds
  std::size_t episodes = 0;      ///< episodes run (baseline + each policy)
  std::size_t total_steps = 0;   ///< control periods simulated
  /// Fault-free sweeps: any left_x / left_xi anywhere (Theorem 1: never).
  /// Faulted sweeps: any left_x (hard safe-set violation) -- XI excursions
  /// are the measured degradation there, not a bug.
  bool safety_violations = false;
  fault::FaultSpec faults;       ///< resolved fault model (inactive = none)

  double episodes_per_s() const { return static_cast<double>(episodes) / wall_s; }
  double step_ns() const { return 1e9 * wall_s / static_cast<double>(total_steps); }
};

/// Per-worker factory over a list of policy specs (validates every spec
/// eagerly, so bad CLI input fails before any plant is built).
PolicySetFactory make_policy_factory(const std::vector<std::string>& specs);

/// Reject grids that would deploy a plant-specific trained agent on other
/// plants: every `drl:<path>` spec whose agent header carries provenance
/// (a non-empty plant tag) pins the whole grid to that plant; agents
/// without provenance pass.  Shared by the sweep and campaign drivers so
/// the rule cannot drift.  `who` prefixes the error message.
void require_policies_trained_for(const std::vector<std::string>& policy_specs,
                                  const std::vector<std::string>& plant_ids,
                                  const char* who);

/// Run the grid.  Plants are built once each and reused across their
/// scenarios and seeds; each cell is a compare_policies_parallel call, so
/// cell results are bit-identical to the serial harness for any worker
/// count.  Throws PreconditionError for unknown ids or empty grids.
SweepResult run_sweep(const ScenarioRegistry& registry, const SweepSpec& spec);

/// Render the sweep as a JSON document (schema shared with
/// bench_throughput; see file comment).
std::string sweep_json(const SweepSpec& spec, const SweepResult& result);

}  // namespace oic::eval
