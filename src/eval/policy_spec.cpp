#include "eval/policy_spec.hpp"

#include <cstdlib>
#include <utility>

#include "common/error.hpp"
#include "core/drl_policy.hpp"
#include "rl/serialize.hpp"

namespace oic::eval {

namespace {

/// Strict positive-count parse for policy-spec payloads: digits only (no
/// sign, no trailing junk -- strtoul would wrap "-2" to a huge depth), at
/// least 1.
bool parse_policy_count(const std::string& payload, std::size_t& out) {
  if (payload.empty() || payload.size() > 9 ||
      payload.find_first_not_of("0123456789") != std::string::npos) {
    return false;
  }
  out = static_cast<std::size_t>(std::strtoul(payload.c_str(), nullptr, 10));
  return out >= 1;
}

}  // namespace

PolicySpec parse_policy_spec(const std::string& spec) {
  PolicySpec out;
  out.text = spec;
  OIC_REQUIRE(!spec.empty(), "policy spec must not be empty");
  OIC_REQUIRE(spec.find_first_of(" \t\r\n") == std::string::npos,
              "policy '" + spec + "': specs are single whitespace-free tokens");
  if (spec == "always-run") {
    out.kind = PolicySpec::Kind::kAlwaysRun;
    return out;
  }
  if (spec == "bang-bang") {
    out.kind = PolicySpec::Kind::kBangBang;
    return out;
  }
  const std::string periodic = "periodic-";
  if (spec.rfind(periodic, 0) == 0) {
    const std::string payload = spec.substr(periodic.size());
    if (!parse_policy_count(payload, out.count)) {
      throw PreconditionError("policy '" + spec +
                              "': period must be a positive integer (periodic-N)");
    }
    out.kind = PolicySpec::Kind::kPeriodic;
    return out;
  }
  const std::string burst = "burst:";
  if (spec.rfind(burst, 0) == 0) {
    if (!parse_policy_count(spec.substr(burst.size()), out.count)) {
      throw PreconditionError("policy '" + spec + "': burst depth must be >= 1");
    }
    out.kind = PolicySpec::Kind::kBurst;
    return out;
  }
  const std::string drl = "drl:";
  if (spec.rfind(drl, 0) == 0) {
    out.path = spec.substr(drl.size());
    if (out.path.empty()) {
      throw PreconditionError("policy '" + spec + "': missing agent file path");
    }
    out.kind = PolicySpec::Kind::kDrl;
    return out;
  }
  throw PreconditionError(
      "unknown policy '" + spec +
      "' (known: always-run, bang-bang, periodic-N, burst:<k>, drl:<path>)");
}

std::unique_ptr<core::SkipPolicy> make_policy(const std::string& spec) {
  const PolicySpec parsed = parse_policy_spec(spec);
  switch (parsed.kind) {
    case PolicySpec::Kind::kAlwaysRun:
      return std::make_unique<core::AlwaysRunPolicy>();
    case PolicySpec::Kind::kBangBang:
      return std::make_unique<core::BangBangPolicy>();
    case PolicySpec::Kind::kPeriodic:
      return std::make_unique<core::PeriodicPolicy>(parsed.count);
    case PolicySpec::Kind::kBurst:
      // Bang-bang decisions plus a certified k-burst request; the engines
      // wire the plant certificate's skip ladder into the framework
      // (IntermittentConfig::burst_depth), which amortizes the monitor
      // over each burst.  Depth is clamped to the plant's actual ladder.
      return std::make_unique<core::BurstSkipPolicy>(parsed.count);
    case PolicySpec::Kind::kDrl:
      break;
  }
  // "drl:<path>": a trained skipping agent serialized by oic_train.  Each
  // call loads its own copy -- per-worker policy sets stay independently
  // owned; the files are small (a few hundred KB of text).  Greedy
  // decisions are stateless, so the policy is trivially reset()-complete
  // (the parallel engine's bit-parity requirement).
  rl::AgentSnapshot snap = [&]() -> rl::AgentSnapshot {
    try {
      return rl::load_agent_file(parsed.path);
    } catch (const Error& e) {
      throw PreconditionError("policy '" + spec + "': " + std::string(e.what()));
    }
  }();
  const std::size_t state_dim = snap.net.sizes().front();
  // An empty scale is a documented format case ("no scaling"); a
  // non-empty one must match the network input.
  OIC_REQUIRE(snap.state_scale.empty() || snap.state_scale.size() == state_dim,
              "policy '" + spec + "': scale/network dimension mismatch");
  const std::size_t w_dim = state_dim / (snap.memory + 1);
  return core::DrlPolicy::from_network(
      std::make_shared<rl::Mlp>(std::move(snap.net)), snap.memory, w_dim,
      std::move(snap.state_scale), spec);
}

}  // namespace oic::eval
