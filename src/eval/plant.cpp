#include "eval/plant.hpp"

#include "common/error.hpp"

namespace oic::eval {

const std::vector<poly::HPolytope>& PlantCase::ladder() const {
  static const std::vector<poly::HPolytope> kEmpty;
  return kEmpty;
}

Scenario& Scenario::operator=(const Scenario& other) {
  if (this != &other) {
    id = other.id;
    description = other.description;
    profile = other.profile ? other.profile->clone() : nullptr;
  }
  return *this;
}

PlantRuntime runtime_from_certificate(const cert::PlantModel& model,
                                      cert::PlantCertificate certificate) {
  OIC_REQUIRE(certificate.plant == model.id,
              "runtime_from_certificate: certificate is for plant '" +
                  certificate.plant + "', model is '" + model.id + "'");
  OIC_REQUIRE(certificate.model_hash == cert::model_hash(model),
              "runtime_from_certificate: stale certificate for plant '" + model.id +
                  "' (model hash mismatch)");
  PlantRuntime rt;
  rt.k_lqr = std::move(certificate.k_lqr);
  rt.rmpc = std::make_unique<control::TubeMpc>(model.sys, rt.k_lqr, model.rmpc,
                                               std::move(certificate.tightened),
                                               std::move(certificate.terminal));
  rt.sets = std::move(certificate.sets);
  rt.ladder = std::move(certificate.ladder);
  return rt;
}

PlantRuntime build_plant_runtime(const cert::PlantModel& model,
                                 const cert::Provider& provider) {
  return runtime_from_certificate(model, cert::resolve(model, provider));
}

linalg::Vector sample_from_set(const poly::HPolytope& set, Rng& rng, const char* who) {
  const auto bb = set.bounding_box();
  OIC_CHECK(bb.has_value(), std::string(who) + ": set unbounded");
  const std::size_t dim = bb->first.size();
  linalg::Vector x(dim);
  for (int attempt = 0; attempt < 10000; ++attempt) {
    for (std::size_t i = 0; i < dim; ++i) {
      x[i] = rng.uniform(bb->first[i], bb->second[i]);
    }
    if (set.contains(x, -1e-9)) return x;
  }
  throw NumericalError(std::string(who) + ": rejection sampling failed (set too thin?)");
}

}  // namespace oic::eval
