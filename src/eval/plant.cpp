#include "eval/plant.hpp"

#include "common/error.hpp"
#include "control/lqr.hpp"

namespace oic::eval {

Scenario& Scenario::operator=(const Scenario& other) {
  if (this != &other) {
    id = other.id;
    description = other.description;
    profile = other.profile->clone();
  }
  return *this;
}

PlantRuntime build_plant_runtime(const control::AffineLTI& sys, const linalg::Matrix& q,
                                 const linalg::Matrix& r,
                                 const control::RmpcConfig& rmpc_cfg,
                                 const linalg::Vector& u_skip) {
  PlantRuntime rt;
  const auto lqr = control::dlqr(sys.a(), sys.b(), q, r);
  OIC_CHECK(lqr.converged, "build_plant_runtime: LQR synthesis did not converge");
  rt.k_lqr = lqr.k;

  rt.rmpc = std::make_unique<control::TubeMpc>(sys, rt.k_lqr, rmpc_cfg);

  // Prop. 1: the RMPC's feasible region is its robust control invariant set.
  const poly::HPolytope xi = rt.rmpc->compute_feasible_set();
  OIC_CHECK(!xi.is_empty(), "build_plant_runtime: RMPC feasible set is empty");
  rt.sets = core::compute_safe_sets(sys, xi, u_skip);
  return rt;
}

linalg::Vector sample_from_set(const poly::HPolytope& set, Rng& rng, const char* who) {
  const auto bb = set.bounding_box();
  OIC_CHECK(bb.has_value(), std::string(who) + ": set unbounded");
  const std::size_t dim = bb->first.size();
  linalg::Vector x(dim);
  for (int attempt = 0; attempt < 10000; ++attempt) {
    for (std::size_t i = 0; i < dim; ++i) {
      x[i] = rng.uniform(bb->first[i], bb->second[i]);
    }
    if (set.contains(x, -1e-9)) return x;
  }
  throw NumericalError(std::string(who) + ": rejection sampling failed (set too thin?)");
}

}  // namespace oic::eval
