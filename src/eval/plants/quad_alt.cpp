#include "eval/plants/quad_alt.hpp"

#include "common/error.hpp"

namespace oic::eval {

using control::AffineLTI;
using linalg::Matrix;
using linalg::Vector;
using poly::HPolytope;

control::RmpcConfig QuadAltCase::default_rmpc() {
  control::RmpcConfig cfg;
  cfg.horizon = 6;
  cfg.state_weight = 1.0;
  cfg.input_weight = 1.0;
  // Drag damps the climb rate but altitude integrates undamped (open-loop
  // eigenvalue 1), so as with lane-keep the residual disturbance only
  // decays under closed-loop (Chisci) tightening.
  cfg.closed_loop_tightening = true;
  return cfg;
}

AffineLTI QuadAltCase::build_system(const QuadAltParams& p) {
  OIC_REQUIRE(p.delta > 0.0, "QuadAltCase: control period must be positive");
  OIC_REQUIRE(p.drag >= 0.0 && p.drag * p.delta < 1.0,
              "QuadAltCase: drag must keep the velocity map contractive");
  OIC_REQUIRE(p.h_max > 0.0 && p.v_max > 0.0 && p.u_max > 0.0 && p.w_max > 0.0,
              "QuadAltCase: degenerate constraint ranges");
  const double d = p.delta;
  Matrix a{{1.0, d}, {0.0, 1.0 - p.drag * d}};
  Matrix b{{0.0}, {d}};
  Matrix e{{0.0}, {d}};
  const HPolytope x =
      HPolytope::box(Vector{-p.h_max, -p.v_max}, Vector{p.h_max, p.v_max});
  const HPolytope u = HPolytope::box(Vector{-p.u_max}, Vector{p.u_max});
  const HPolytope w = HPolytope::box(Vector{-p.w_max}, Vector{p.w_max});
  return AffineLTI(a, b, e, Vector{0.0, 0.0}, x, u, w);
}

cert::PlantModel QuadAltCase::model(const QuadAltParams& params,
                                    const control::RmpcConfig& rmpc) {
  return make_model("quad-alt", build_system(params), rmpc);
}

QuadAltCase::QuadAltCase(QuadAltParams params, control::RmpcConfig rmpc,
                         const cert::Provider& provider)
    : SecondOrderPlant("quad-alt", build_system(params), params.delta,
                       params.hover_power, params.run_cost, rmpc, provider),
      params_(params) {}

}  // namespace oic::eval
