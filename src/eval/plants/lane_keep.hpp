#pragma once
/// \file lane_keep.hpp
/// Double-integrator lane-keeping plant.
///
/// The ego vehicle drives at constant longitudinal speed; the controller
/// regulates the lateral offset y from the lane center with a lateral
/// acceleration command u against a crosswind / road-bank disturbance w:
///
///   y(t+1) = y(t) + v(t) delta,
///   v(t+1) = v(t) + (u(t) + w(t)) delta,
///
/// with x = (y, v) already centered (no shift needed): y in [-y_max, y_max]
/// (stay in lane), v in [-v_max, v_max], u in [-u_max, u_max],
/// w in [-w_max, w_max].  Skipping releases the steering actuator (u = 0);
/// the running cost models the steer-by-wire duty (see second_order.hpp).

#include "eval/plants/second_order.hpp"

namespace oic::eval {

/// Physical constants of the lane-keeping case.
struct LaneKeepParams {
  double delta = 0.1;       ///< control period [s]
  double y_max = 2.0;       ///< lane half-width margin [m]
  double v_max = 5.0;       ///< lateral speed bound [m/s]
  double u_max = 10.0;      ///< lateral acceleration bound [m/s^2]
  double w_max = 1.0;       ///< crosswind acceleration bound [m/s^2]
  double idle_cost = 0.5;   ///< always-on sensing duty floor [cost/s]
  double run_cost = 1.0;    ///< camera+compute+actuator draw per run [cost/s]
};

/// Lane-keeping PlantCase; scenarios emit the crosswind acceleration
/// directly as the scalar signal.
class LaneKeepCase final : public SecondOrderPlant {
 public:
  explicit LaneKeepCase(LaneKeepParams params = {},
                        control::RmpcConfig rmpc = default_rmpc(),
                        const cert::Provider& provider = {});

  /// Horizon 8 with unit 1-norm weights and closed-loop (Chisci)
  /// tightening -- the undamped double integrator's open-loop powers do not
  /// decay, so the paper's open-loop recursion would empty the terminal set.
  static control::RmpcConfig default_rmpc();

  /// Declarative model (certificate synthesis inputs) for these params.
  static cert::PlantModel model(const LaneKeepParams& params = {},
                                const control::RmpcConfig& rmpc = default_rmpc());

  const LaneKeepParams& params() const { return params_; }

 private:
  LaneKeepParams params_;

  static control::AffineLTI build_system(const LaneKeepParams& p);
};

}  // namespace oic::eval
