#include "eval/plants/lane_keep.hpp"

#include "common/error.hpp"

namespace oic::eval {

using control::AffineLTI;
using linalg::Matrix;
using linalg::Vector;
using poly::HPolytope;

control::RmpcConfig LaneKeepCase::default_rmpc() {
  control::RmpcConfig cfg;
  cfg.horizon = 8;
  cfg.state_weight = 1.0;
  cfg.input_weight = 1.0;
  // The undamped double integrator needs Chisci's closed-loop tightening:
  // open-loop powers A^k do not decay, so the residual disturbance M^N D
  // would swallow the terminal RPI set.
  cfg.closed_loop_tightening = true;
  return cfg;
}

AffineLTI LaneKeepCase::build_system(const LaneKeepParams& p) {
  OIC_REQUIRE(p.y_max > 0.0 && p.v_max > 0.0 && p.u_max > 0.0 && p.w_max > 0.0,
              "LaneKeepCase: degenerate constraint ranges");
  const double d = p.delta;
  Matrix a{{1.0, d}, {0.0, 1.0}};
  Matrix b{{0.0}, {d}};
  Matrix e{{0.0}, {d}};
  const HPolytope x =
      HPolytope::box(Vector{-p.y_max, -p.v_max}, Vector{p.y_max, p.v_max});
  const HPolytope u = HPolytope::box(Vector{-p.u_max}, Vector{p.u_max});
  const HPolytope w = HPolytope::box(Vector{-p.w_max}, Vector{p.w_max});
  return AffineLTI(a, b, e, Vector{0.0, 0.0}, x, u, w);
}

cert::PlantModel LaneKeepCase::model(const LaneKeepParams& params,
                                     const control::RmpcConfig& rmpc) {
  return make_model("lane-keep", build_system(params), rmpc);
}

LaneKeepCase::LaneKeepCase(LaneKeepParams params, control::RmpcConfig rmpc,
                           const cert::Provider& provider)
    : SecondOrderPlant("lane-keep", build_system(params), params.delta,
                       params.idle_cost, params.run_cost, rmpc, provider),
      params_(params) {}

}  // namespace oic::eval
