#include "eval/plants/second_order.hpp"

#include "common/error.hpp"

namespace oic::eval {

using control::AffineLTI;
using linalg::Matrix;
using linalg::Vector;
using poly::HPolytope;

cert::PlantModel SecondOrderPlant::make_model(std::string name, AffineLTI sys,
                                              const control::RmpcConfig& rmpc_cfg) {
  return cert::PlantModel{std::move(name), std::move(sys), Matrix::identity(2),
                          Matrix{{1.0}},   rmpc_cfg,       Vector{0.0}};
}

SecondOrderPlant::SecondOrderPlant(std::string name, AffineLTI sys, double delta,
                                   double cost_floor, double run_cost,
                                   const control::RmpcConfig& rmpc_cfg,
                                   const cert::Provider& provider)
    : name_(std::move(name)),
      sys_(std::move(sys)),
      delta_(delta),
      cost_floor_(cost_floor),
      run_cost_(run_cost) {
  OIC_REQUIRE(sys_.nx() == 2 && sys_.nu() == 1 && sys_.nw() == 1,
              name_ + ": SecondOrderPlant expects nx=2, nu=1, nw=1");
  OIC_REQUIRE(delta_ > 0.0, name_ + ": control period must be positive");
  OIC_REQUIRE(cost_floor_ > 0.0,
              name_ + ": cost floor must be positive (savings are relative)");
  OIC_REQUIRE(run_cost_ >= 0.0, name_ + ": run cost must be non-negative");
  // Single source for the skip input: the monitor applies exactly what the
  // certificate was synthesized for.
  const cert::PlantModel m = make_model(name_, sys_, rmpc_cfg);
  u_skip_ = m.u_skip;
  rt_ = build_plant_runtime(m, provider);
}

double SecondOrderPlant::cost_step(const Vector& /*x*/, const Vector& u,
                                   bool controller_ran) const {
  const double run = controller_ran ? run_cost_ : 0.0;
  return (cost_floor_ + run + u.norm1()) * delta_;
}

Vector SecondOrderPlant::sample_x0(Rng& rng) const {
  return sample_from_set(sets().x_prime, rng, name_.c_str());
}

control::RmpcConfig Toy2dCase::default_rmpc() {
  control::RmpcConfig cfg;
  cfg.horizon = 8;
  cfg.state_weight = 1.0;
  cfg.input_weight = 1.0;
  // Undamped double integrator: closed-loop (Chisci) tightening, as with
  // lane-keep, or the residual disturbance swallows the terminal set.
  cfg.closed_loop_tightening = true;
  return cfg;
}

AffineLTI Toy2dCase::build_system(const Toy2dParams& p) {
  OIC_REQUIRE(p.delta > 0.0, "Toy2dCase: control period must be positive");
  OIC_REQUIRE(p.p_max > 0.0 && p.v_max > 0.0 && p.u_max > 0.0 && p.w_max > 0.0,
              "Toy2dCase: degenerate constraint ranges");
  const double d = p.delta;
  Matrix a{{1.0, d}, {0.0, 1.0}};
  Matrix b{{0.0}, {d}};
  Matrix e{{0.0}, {d}};
  const HPolytope x =
      HPolytope::box(Vector{-p.p_max, -p.v_max}, Vector{p.p_max, p.v_max});
  const HPolytope u = HPolytope::box(Vector{-p.u_max}, Vector{p.u_max});
  const HPolytope w = HPolytope::box(Vector{-p.w_max}, Vector{p.w_max});
  return AffineLTI(a, b, e, Vector{0.0, 0.0}, x, u, w);
}

cert::PlantModel Toy2dCase::model(const Toy2dParams& params,
                                  const control::RmpcConfig& rmpc) {
  return make_model("toy2d", build_system(params), rmpc);
}

Toy2dCase::Toy2dCase(Toy2dParams params, control::RmpcConfig rmpc,
                     const cert::Provider& provider)
    : SecondOrderPlant("toy2d", build_system(params), params.delta, params.idle_cost,
                       params.run_cost, rmpc, provider),
      params_(params) {}

}  // namespace oic::eval
