#include "eval/plants/second_order.hpp"

#include "common/error.hpp"

namespace oic::eval {

using linalg::Matrix;
using linalg::Vector;

SecondOrderPlant::SecondOrderPlant(std::string name, control::AffineLTI sys,
                                   double delta, double cost_floor, double run_cost,
                                   const control::RmpcConfig& rmpc_cfg)
    : name_(std::move(name)),
      sys_(std::move(sys)),
      delta_(delta),
      cost_floor_(cost_floor),
      run_cost_(run_cost),
      u_skip_(Vector{0.0}) {
  OIC_REQUIRE(sys_.nx() == 2 && sys_.nu() == 1 && sys_.nw() == 1,
              name_ + ": SecondOrderPlant expects nx=2, nu=1, nw=1");
  OIC_REQUIRE(delta_ > 0.0, name_ + ": control period must be positive");
  OIC_REQUIRE(cost_floor_ > 0.0,
              name_ + ": cost floor must be positive (savings are relative)");
  OIC_REQUIRE(run_cost_ >= 0.0, name_ + ": run cost must be non-negative");
  rt_ = build_plant_runtime(sys_, Matrix::identity(2), Matrix{{1.0}}, rmpc_cfg, u_skip_);
}

double SecondOrderPlant::cost_step(const Vector& /*x*/, const Vector& u,
                                   bool controller_ran) const {
  const double run = controller_ran ? run_cost_ : 0.0;
  return (cost_floor_ + run + u.norm1()) * delta_;
}

Vector SecondOrderPlant::sample_x0(Rng& rng) const {
  return sample_from_set(sets().x_prime, rng, name_.c_str());
}

}  // namespace oic::eval
