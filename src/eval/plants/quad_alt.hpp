#pragma once
/// \file quad_alt.hpp
/// Quadrotor altitude-hold plant.
///
/// A quadrotor holds a reference altitude; the controller commands a thrust
/// deviation u from hover against vertical aerodynamic drag d v and gust
/// load w:
///
///   h(t+1) = h(t) + v(t) delta,
///   v(t+1) = v(t) - d v(t) delta + (u(t) + w(t)) delta,
///
/// with x = (h - h_ref, v) centered at hover: h error in [-h_max, h_max],
/// v in [-v_max, v_max], u in [-u_max, u_max], w in [-w_max, w_max].
/// Skipping holds the hover thrust (u = 0); the running cost models the
/// battery draw (see second_order.hpp).

#include "eval/plants/second_order.hpp"

namespace oic::eval {

/// Physical constants of the altitude-hold case.
struct QuadAltParams {
  double delta = 0.1;        ///< control period [s]
  double drag = 0.35;        ///< vertical aero drag [1/s]
  double h_max = 3.0;        ///< altitude error bound [m]
  double v_max = 4.0;        ///< climb-rate bound [m/s]
  double u_max = 6.0;        ///< thrust-deviation bound [m/s^2]
  double w_max = 1.5;        ///< gust acceleration bound [m/s^2]
  double hover_power = 2.0;  ///< battery-draw floor [cost/s]
  double run_cost = 1.5;     ///< sensing+compute+radio draw per run [cost/s]
};

/// Altitude-hold PlantCase; scenarios emit the gust acceleration directly
/// as the scalar signal.
class QuadAltCase final : public SecondOrderPlant {
 public:
  explicit QuadAltCase(QuadAltParams params = {},
                       control::RmpcConfig rmpc = default_rmpc(),
                       const cert::Provider& provider = {});

  /// Horizon 6 with unit 1-norm weights and closed-loop (Chisci)
  /// tightening (altitude integrates undamped, like the lane-keep plant).
  static control::RmpcConfig default_rmpc();

  /// Declarative model (certificate synthesis inputs) for these params.
  static cert::PlantModel model(const QuadAltParams& params = {},
                                const control::RmpcConfig& rmpc = default_rmpc());

  const QuadAltParams& params() const { return params_; }

 private:
  QuadAltParams params_;

  static control::AffineLTI build_system(const QuadAltParams& p);
};

}  // namespace oic::eval
