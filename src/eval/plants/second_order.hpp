#pragma once
/// \file second_order.hpp
/// Shared base for simple second-order evaluation plants.
///
/// Lane keeping and altitude hold (and most textbook regulation problems)
/// share one shape: a 2-state box-constrained model whose scalar input and
/// scalar disturbance enter the velocity row, u_skip = 0 at the centered
/// equilibrium, scenarios that emit the disturbance directly as the scalar
/// signal, and a running cost of the form
///
///   cost_step = (floor + [controller ran] * run_cost + |u|) * delta,
///
/// i.e. an always-on draw, the sensing/compute/actuation overhead of a
/// period that runs the control loop (the paper's Sec. I motivation), and
/// the actuation magnitude.  Derive, build the AffineLTI, and pass the
/// cost constants -- everything else (the declarative cert::PlantModel,
/// certificate resolution, sampling, the PlantCase plumbing) lives here
/// once.  Toy2dCase below is the undecorated member of the family, kept
/// registered ("toy2d") so the registry, the certificate cache, and the
/// burst sweeps always exercise a plain second-order plant.

#include "eval/plant.hpp"

namespace oic::eval {

/// PlantCase plumbing for the family above; derive and forward the model.
class SecondOrderPlant : public PlantCase {
 public:
  std::string name() const override { return name_; }
  const control::AffineLTI& system() const override { return sys_; }
  control::TubeMpc& rmpc() override { return *rt_.rmpc; }
  const control::TubeMpc& rmpc() const override { return *rt_.rmpc; }
  const core::SafeSets& sets() const override { return rt_.sets; }
  const std::vector<poly::HPolytope>& ladder() const override { return rt_.ladder; }
  const linalg::Vector& u_skip() const override { return u_skip_; }
  linalg::Vector sample_x0(Rng& rng) const override;
  void signal_to_w(double signal, linalg::Vector& w) const override { w[0] = signal; }
  double cost_step(const linalg::Vector& x, const linalg::Vector& u,
                   bool controller_ran) const override;
  double energy_raw(const linalg::Vector& u) const override { return u.norm1(); }

  /// The declarative synthesis inputs of a family member: unit LQR weights
  /// and u_skip = 0 over the given dynamics -- what the constructor hands
  /// to the certificate provider, and what `oic_cert` synthesizes offline.
  static cert::PlantModel make_model(std::string name, control::AffineLTI sys,
                                     const control::RmpcConfig& rmpc_cfg);

 protected:
  /// `cost_floor` / `run_cost` are rates [cost/s], integrated over `delta`
  /// by cost_step.  Requires cost_floor > 0 (savings are relative) and
  /// run_cost >= 0; resolves the certificate through `provider` (empty =
  /// fresh synthesis) and assembles the runtime from it.
  SecondOrderPlant(std::string name, control::AffineLTI sys, double delta,
                   double cost_floor, double run_cost,
                   const control::RmpcConfig& rmpc_cfg,
                   const cert::Provider& provider = {});

 private:
  std::string name_;
  control::AffineLTI sys_;
  double delta_;
  double cost_floor_;
  double run_cost_;
  linalg::Vector u_skip_;
  PlantRuntime rt_;
};

/// Physical constants of the plain second-order demo plant: a centered
/// double integrator (position / velocity) with box constraints, e.g. a
/// gimbal axis or positioning stage holding a setpoint against a bounded
/// torque disturbance.
struct Toy2dParams {
  double delta = 0.1;      ///< control period [s]
  double p_max = 1.5;      ///< position error bound
  double v_max = 3.0;      ///< velocity bound
  double u_max = 5.0;      ///< actuation bound
  double w_max = 0.8;      ///< disturbance bound
  double idle_cost = 0.6;  ///< always-on draw floor [cost/s]
  double run_cost = 1.0;   ///< per-run sensing+compute draw [cost/s]
};

/// The undecorated second-order PlantCase, registered as "toy2d" with the
/// sine / white scenarios; scenarios emit the disturbance directly.
class Toy2dCase final : public SecondOrderPlant {
 public:
  explicit Toy2dCase(Toy2dParams params = {},
                     control::RmpcConfig rmpc = default_rmpc(),
                     const cert::Provider& provider = {});

  /// Horizon 8, unit 1-norm weights, closed-loop (Chisci) tightening (the
  /// undamped double integrator's open-loop powers do not decay).
  static control::RmpcConfig default_rmpc();

  /// Declarative model (certificate synthesis inputs) for these params.
  static cert::PlantModel model(const Toy2dParams& params = {},
                                const control::RmpcConfig& rmpc = default_rmpc());

  const Toy2dParams& params() const { return params_; }

 private:
  Toy2dParams params_;

  static control::AffineLTI build_system(const Toy2dParams& p);
};

}  // namespace oic::eval
