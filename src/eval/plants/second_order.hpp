#pragma once
/// \file second_order.hpp
/// Shared base for simple second-order evaluation plants.
///
/// Lane keeping and altitude hold (and most textbook regulation problems)
/// share one shape: a 2-state box-constrained model whose scalar input and
/// scalar disturbance enter the velocity row, u_skip = 0 at the centered
/// equilibrium, scenarios that emit the disturbance directly as the scalar
/// signal, and a running cost of the form
///
///   cost_step = (floor + [controller ran] * run_cost + |u|) * delta,
///
/// i.e. an always-on draw, the sensing/compute/actuation overhead of a
/// period that runs the control loop (the paper's Sec. I motivation), and
/// the actuation magnitude.  Derive, build the AffineLTI, and pass the
/// cost constants -- everything else (runtime synthesis, sampling, the
/// PlantCase plumbing) lives here once.

#include "eval/plant.hpp"

namespace oic::eval {

/// PlantCase plumbing for the family above; derive and forward the model.
class SecondOrderPlant : public PlantCase {
 public:
  std::string name() const override { return name_; }
  const control::AffineLTI& system() const override { return sys_; }
  control::TubeMpc& rmpc() override { return *rt_.rmpc; }
  const control::TubeMpc& rmpc() const override { return *rt_.rmpc; }
  const core::SafeSets& sets() const override { return rt_.sets; }
  const linalg::Vector& u_skip() const override { return u_skip_; }
  linalg::Vector sample_x0(Rng& rng) const override;
  void signal_to_w(double signal, linalg::Vector& w) const override { w[0] = signal; }
  double cost_step(const linalg::Vector& x, const linalg::Vector& u,
                   bool controller_ran) const override;
  double energy_raw(const linalg::Vector& u) const override { return u.norm1(); }

 protected:
  /// `cost_floor` / `run_cost` are rates [cost/s], integrated over `delta`
  /// by cost_step.  Requires cost_floor > 0 (savings are relative) and
  /// run_cost >= 0; builds the LQR gain, tube RMPC, and safe-set triple
  /// from the model with unit weights.
  SecondOrderPlant(std::string name, control::AffineLTI sys, double delta,
                   double cost_floor, double run_cost,
                   const control::RmpcConfig& rmpc_cfg);

 private:
  std::string name_;
  control::AffineLTI sys_;
  double delta_;
  double cost_floor_;
  double run_cost_;
  linalg::Vector u_skip_;
  PlantRuntime rt_;
};

}  // namespace oic::eval
