#pragma once
/// \file harness.hpp
/// Plant-generic evaluation harness, lifted from the ACC experiments:
/// generates test cases (initial state + disturbance-signal sequence), runs
/// one policy over a case through Algorithm 1, and aggregates the running-
/// cost statistics the paper reports.  All benches, the examples, and the
/// oic_eval sweep driver go through this code so numbers are comparable
/// across plants.

#include <vector>

#include "core/intermittent.hpp"
#include "core/policy.hpp"
#include "core/runner.hpp"
#include "eval/plant.hpp"

namespace oic::eval {

/// A fully materialized test case: every policy evaluated on it sees the
/// same initial state and the same disturbance signal, so savings are
/// paired comparisons as in the paper.
struct CaseData {
  linalg::Vector x0;           ///< initial shifted state, in X'
  std::vector<double> signal;  ///< scenario signal per step (ACC: vf)
};

/// Draw a case for the scenario: x0 uniform in X', signal from the profile.
CaseData make_case(const PlantCase& plant, const Scenario& scenario, Rng& rng,
                   std::size_t steps);

/// Result of one episode.  `fuel` is the plant's running-cost metric (the
/// ACC's ml of fuel; actuator duty / battery draw for other plants);
/// `energy` is sum ||u_raw||_1.
struct EpisodeResult {
  double fuel = 0.0;
  double energy = 0.0;
  std::size_t skipped = 0;
  std::size_t forced = 0;
  std::size_t steps = 0;
  bool left_x = false;   ///< safety violation (Theorem 1 says: never)
  bool left_xi = false;  ///< invariant violation (model mismatch)
};

/// Disturbance observations the framework retains per evaluation episode;
/// shared by run_episode and the EpisodeEngine so their histories -- and
/// therefore policy decisions -- agree bit for bit.  (The DQN trainer's
/// state memory r is a separate knob: TrainerConfig::memory.)
inline constexpr std::size_t kEpisodeWMemory = 4;

/// The Algorithm-1 framework configuration run_episode and the
/// EpisodeEngine share: episode disturbance memory, the plant's skip
/// input, and -- for burst-requesting policies
/// (core::SkipPolicy::burst_depth) -- the certificate's k-step ladder.
/// One function so the two paths can never disagree (bit-parity tested).
core::IntermittentConfig make_intermittent_config(const PlantCase& plant,
                                                  const core::SkipPolicy& policy);

/// Run one policy over one case through the intermittent framework with
/// the plant's RMPC as the underlying controller.
EpisodeResult run_episode(PlantCase& plant, core::SkipPolicy& policy,
                          const CaseData& data);

/// Relative running-cost saving of `ours` against `baseline` (paper's
/// Fig. 4/5/6 metric): (baseline - ours) / baseline.
double fuel_saving(const EpisodeResult& baseline, const EpisodeResult& ours);

/// Paired comparison over n cases: returns per-case savings of each policy
/// against the always-run (RMPC-only) baseline.
struct ComparisonResult {
  std::vector<std::string> policy_names;
  /// savings[p][c]: cost saving of policy p on case c vs RMPC-only.
  std::vector<std::vector<double>> savings;
  /// Mean skipped steps per episode for each policy.
  std::vector<double> mean_skipped;
  /// Any safety violation observed for each policy (must stay false).
  std::vector<bool> any_violation;
};

ComparisonResult compare_policies(PlantCase& plant, const Scenario& scenario,
                                  const std::vector<core::SkipPolicy*>& policies,
                                  std::size_t cases, std::size_t steps,
                                  std::uint64_t seed);

}  // namespace oic::eval
