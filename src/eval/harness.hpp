#pragma once
/// \file harness.hpp
/// Plant-generic evaluation harness, lifted from the ACC experiments:
/// generates test cases (initial state + disturbance-signal sequence), runs
/// one policy over a case through Algorithm 1, and aggregates the running-
/// cost statistics the paper reports.  All benches, the examples, and the
/// oic_eval sweep driver go through this code so numbers are comparable
/// across plants.

#include <vector>

#include "core/intermittent.hpp"
#include "core/policy.hpp"
#include "core/runner.hpp"
#include "eval/plant.hpp"

namespace oic::eval {

/// A fully materialized test case: every policy evaluated on it sees the
/// same initial state and the same disturbance signal, so savings are
/// paired comparisons as in the paper.  Under fault injection the case
/// additionally carries the episode's fault-stream seed, so every policy
/// faces the SAME packet-loss realization (paired comparison extends to
/// the fault axis).
struct CaseData {
  linalg::Vector x0;           ///< initial shifted state, in X'
  std::vector<double> signal;  ///< scenario signal per step (ACC: vf)
  std::uint64_t fault_stream = 0;  ///< fault::Link stream (faulted runs only)
};

/// Draw a case for the scenario: x0 uniform in X', signal from the profile.
/// `with_fault_stream` additionally draws the case's fault-stream seed.
/// The extra draw is a third rng.split() -- taken ONLY when requested, so
/// fault-free case streams stay bit-identical to the historical ones.
CaseData make_case(const PlantCase& plant, const Scenario& scenario, Rng& rng,
                   std::size_t steps, bool with_fault_stream = false);

/// Result of one episode.  `fuel` is the plant's running-cost metric (the
/// ACC's ml of fuel; actuator duty / battery draw for other plants);
/// `energy` is sum ||u_raw||_1.
struct EpisodeResult {
  double fuel = 0.0;
  double energy = 0.0;
  std::size_t skipped = 0;
  std::size_t forced = 0;
  std::size_t steps = 0;
  bool left_x = false;   ///< safety violation (Theorem 1 says: never)
  bool left_xi = false;  ///< invariant violation (model mismatch)
  /// Fault accounting (all zero on fault-free runs).
  std::size_t degraded_steps = 0;  ///< degraded-mode periods
  std::size_t stale_forced = 0;    ///< stale/missing measurement forced z = 1
  std::size_t policy_unavail = 0;  ///< Omega outage conservative defaults
  std::size_t meas_dropped = 0;    ///< measurement packets lost
  std::size_t act_dropped = 0;     ///< actuation packets lost
};

/// Disturbance observations the framework retains per evaluation episode;
/// shared by run_episode and the EpisodeEngine so their histories -- and
/// therefore policy decisions -- agree bit for bit.  (The DQN trainer's
/// state memory r is a separate knob: TrainerConfig::memory.)
inline constexpr std::size_t kEpisodeWMemory = 4;

/// The Algorithm-1 framework configuration run_episode and the
/// EpisodeEngine share: episode disturbance memory, the plant's skip
/// input, and -- for burst-requesting policies
/// (core::SkipPolicy::burst_depth) -- the certificate's k-step ladder.
/// One function so the two paths can never disagree (bit-parity tested).
/// `faults_active` relaxes strict_invariant: actuation drops are genuine
/// plant/model mismatch, and a fault campaign must measure XI excursions
/// (left_xi) rather than abort on the first one.
core::IntermittentConfig make_intermittent_config(const PlantCase& plant,
                                                  const core::SkipPolicy& policy,
                                                  bool faults_active = false);

/// Run one policy over one case through the intermittent framework with
/// the plant's RMPC as the underlying controller.
EpisodeResult run_episode(PlantCase& plant, core::SkipPolicy& policy,
                          const CaseData& data);

/// Same, with the episode routed through a faulted network link (spec
/// realized from data.fault_stream).  An inactive spec is exactly the
/// fault-free overload.
EpisodeResult run_episode(PlantCase& plant, core::SkipPolicy& policy,
                          const CaseData& data, const fault::FaultSpec& faults);

/// Relative running-cost saving of `ours` against `baseline` (paper's
/// Fig. 4/5/6 metric): (baseline - ours) / baseline.
double fuel_saving(const EpisodeResult& baseline, const EpisodeResult& ours);

/// Paired comparison over n cases: returns per-case savings of each policy
/// against the always-run (RMPC-only) baseline.
struct ComparisonResult {
  std::vector<std::string> policy_names;
  /// savings[p][c]: cost saving of policy p on case c vs RMPC-only.
  std::vector<std::vector<double>> savings;
  /// Mean skipped steps per episode for each policy.
  std::vector<double> mean_skipped;
  /// Any violation (left_x or left_xi) observed per policy.  Fault-free
  /// sweeps require false (Theorem 1); under faults XI excursions are the
  /// measured degradation and only any_left_x is a hard violation.
  std::vector<bool> any_violation;
  /// Hard safe-set (X) violations per policy -- must stay false even under
  /// faults in conservative degraded mode.
  std::vector<bool> any_left_x;
  /// XI excursions per policy (expected under actuation drops).
  std::vector<bool> any_left_xi;
  /// Fault accounting, mean per episode (zero on fault-free sweeps).
  std::vector<double> mean_degraded;
  std::vector<double> mean_stale_forced;
  std::vector<double> mean_act_dropped;
};

ComparisonResult compare_policies(PlantCase& plant, const Scenario& scenario,
                                  const std::vector<core::SkipPolicy*>& policies,
                                  std::size_t cases, std::size_t steps,
                                  std::uint64_t seed);

}  // namespace oic::eval
