#include "eval/engine.hpp"

#include "common/error.hpp"
#include "common/parallel.hpp"

namespace oic::eval {

using linalg::Vector;

EpisodeEngine::EpisodeEngine(const PlantCase& plant, core::SkipPolicy& policy,
                             const fault::FaultSpec& faults)
    : plant_(plant),
      policy_(policy),
      rmpc_(plant.rmpc()),
      ic_(plant.system(), plant.sets(), rmpc_, policy,
          make_intermittent_config(plant, policy, faults.active())),
      link_(faults, 0),
      w_(plant.system().nw()) {}

EpisodeResult EpisodeEngine::run(const CaseData& data) {
  OIC_REQUIRE(!data.signal.empty(), "EpisodeEngine::run: empty case");
  if (link_.active()) return run_faulted(data);
  ic_.reset();
  ic_.reset_stats();
  rmpc_.reset_solver();

  const control::AffineLTI& sys = plant_.system();
  EpisodeResult out;
  x_ = data.x0;
  // Same step sequence as core::run_closed_loop + the harness cost hook,
  // with the per-step temporaries replaced by engine-owned scratch.
  for (std::size_t t = 0; t < data.signal.size(); ++t) {
    const core::StepDecision d = ic_.decide(x_);
    plant_.signal_to_w(data.signal[t], w_);
    sys.step_into(x_, d.u, w_, x_next_);
    ic_.record_transition(x_, d.u, x_next_);

    out.fuel += plant_.cost_step(x_, d.u, d.z == 1);
    out.energy += plant_.energy_raw(d.u);

    if (!out.left_xi && !ic_.sets().xi.contains(x_next_, 1e-6)) {
      out.left_xi = true;
    }
    if (!out.left_x && !ic_.sets().x.contains(x_next_, 1e-6)) {
      out.left_x = true;
    }
    if (observer_) observer_(t, x_next_);
    x_ = x_next_;
  }
  out.skipped = ic_.skipped_steps();
  out.forced = ic_.forced_steps();
  out.steps = data.signal.size();
  return out;
}

EpisodeResult EpisodeEngine::run_faulted(const CaseData& data) {
  ic_.reset();
  ic_.reset_stats();
  rmpc_.reset_solver();
  link_.reset(data.fault_stream);
  ic_.seed_state(data.x0);

  const control::AffineLTI& sys = plant_.system();
  EpisodeResult out;
  x_ = data.x0;
  // Same step sequence as the faulted branch of core::run_closed_loop plus
  // the harness cost hook (bit-parity tested); temporaries replaced by
  // engine scratch.
  core::MeasuredState m;
  bool prev_fresh = false;
  for (std::size_t t = 0; t < data.signal.size(); ++t) {
    const fault::Measurement& meas = link_.sense_and_observe(t, x_);
    const bool fresh = meas.available && meas.age == 0;
    if (fresh && prev_fresh) {
      ic_.record_transition(prev_meas_x_, prev_u_cmd_, meas.x);
    }
    m.available = meas.available;
    m.age = meas.age;
    if (meas.available) m.x = meas.x;

    const core::StepDecision d = ic_.decide_measured(m, link_.policy_available(t));
    const Vector& u_applied = link_.actuate(t, d.u);
    plant_.signal_to_w(data.signal[t], w_);
    sys.step_into(x_, u_applied, w_, x_next_);

    out.fuel += plant_.cost_step(x_, u_applied, d.z == 1);
    out.energy += plant_.energy_raw(u_applied);

    if (!out.left_xi && !ic_.sets().xi.contains(x_next_, 1e-6)) {
      out.left_xi = true;
    }
    if (!out.left_x && !ic_.sets().x.contains(x_next_, 1e-6)) {
      out.left_x = true;
    }
    prev_fresh = fresh;
    if (fresh) {
      prev_meas_x_ = meas.x;
      prev_u_cmd_ = d.u;
    }
    if (observer_) observer_(t, x_next_);
    x_ = x_next_;
  }
  out.skipped = ic_.skipped_steps();
  out.forced = ic_.forced_steps();
  out.steps = data.signal.size();
  out.degraded_steps = ic_.degraded_steps();
  out.stale_forced = ic_.stale_forced();
  out.policy_unavail = ic_.policy_unavail();
  out.meas_dropped = link_.meas_dropped();
  out.act_dropped = link_.act_dropped();
  return out;
}

ComparisonResult compare_policies_parallel(const PlantCase& plant,
                                           const Scenario& scenario,
                                           const PolicySetFactory& factory,
                                           const SweepConfig& cfg) {
  OIC_REQUIRE(static_cast<bool>(factory), "compare_policies_parallel: factory required");
  OIC_REQUIRE(cfg.cases >= 1, "compare_policies_parallel: need at least one case");

  // Draw every case up front on the calling thread: the exact Rng::split()
  // stream of the serial harness, independent of worker count.  Faulted
  // sweeps append the per-case fault stream (an extra split taken only
  // then, so fault-free streams are the historical ones).
  const bool faulted = cfg.faults.active();
  std::vector<CaseData> case_data;
  case_data.reserve(cfg.cases);
  Rng rng(cfg.seed);
  for (std::size_t c = 0; c < cfg.cases; ++c) {
    case_data.push_back(make_case(plant, scenario, rng, cfg.steps, faulted));
  }

  // Probe one worker's policy set for names/count.
  const auto probe = factory();
  OIC_REQUIRE(!probe.empty(), "compare_policies_parallel: factory returned no policies");
  const std::size_t num_policies = probe.size();

  ComparisonResult out;
  for (const auto& p : probe) out.policy_names.push_back(p->name());
  out.savings.assign(num_policies, std::vector<double>(cfg.cases, 0.0));
  out.mean_skipped.assign(num_policies, 0.0);
  out.any_violation.assign(num_policies, false);
  out.any_left_x.assign(num_policies, false);
  out.any_left_xi.assign(num_policies, false);
  out.mean_degraded.assign(num_policies, 0.0);
  out.mean_stale_forced.assign(num_policies, 0.0);
  out.mean_act_dropped.assign(num_policies, 0.0);
  std::vector<std::vector<std::size_t>> skipped(num_policies,
                                                std::vector<std::size_t>(cfg.cases, 0));
  std::vector<std::vector<unsigned char>> left_x_flags(
      num_policies, std::vector<unsigned char>(cfg.cases, 0));
  std::vector<std::vector<unsigned char>> left_xi_flags(
      num_policies, std::vector<unsigned char>(cfg.cases, 0));
  std::vector<std::vector<std::size_t>> degraded(
      num_policies, std::vector<std::size_t>(cfg.cases, 0));
  std::vector<std::vector<std::size_t>> stale(num_policies,
                                              std::vector<std::size_t>(cfg.cases, 0));
  std::vector<std::vector<std::size_t>> act_drops(
      num_policies, std::vector<std::size_t>(cfg.cases, 0));

  run_chunked(cfg.cases, cfg.workers,
              [&](std::size_t /*chunk*/, std::size_t begin, std::size_t end) {
                // Per-worker context: own policies, own engines (and thus
                // own controller/solver/fault-link state).
                auto policies = factory();
                OIC_REQUIRE(policies.size() == num_policies,
                            "compare_policies_parallel: factory is not stable");
                core::AlwaysRunPolicy baseline;
                EpisodeEngine base_engine(plant, baseline, cfg.faults);
                std::vector<std::unique_ptr<EpisodeEngine>> engines;
                engines.reserve(num_policies);
                for (auto& p : policies) {
                  engines.push_back(
                      std::make_unique<EpisodeEngine>(plant, *p, cfg.faults));
                }

                for (std::size_t c = begin; c < end; ++c) {
                  const EpisodeResult base = base_engine.run(case_data[c]);
                  for (std::size_t p = 0; p < num_policies; ++p) {
                    const EpisodeResult r = engines[p]->run(case_data[c]);
                    out.savings[p][c] = fuel_saving(base, r);
                    skipped[p][c] = r.skipped;
                    left_x_flags[p][c] = r.left_x ? 1 : 0;
                    left_xi_flags[p][c] = r.left_xi ? 1 : 0;
                    degraded[p][c] = r.degraded_steps;
                    stale[p][c] = r.stale_forced;
                    act_drops[p][c] = r.act_dropped;
                  }
                }
              });

  for (std::size_t p = 0; p < num_policies; ++p) {
    for (std::size_t c = 0; c < cfg.cases; ++c) {
      out.mean_skipped[p] += static_cast<double>(skipped[p][c]);
      out.mean_degraded[p] += static_cast<double>(degraded[p][c]);
      out.mean_stale_forced[p] += static_cast<double>(stale[p][c]);
      out.mean_act_dropped[p] += static_cast<double>(act_drops[p][c]);
      if (left_x_flags[p][c] || left_xi_flags[p][c]) out.any_violation[p] = true;
      if (left_x_flags[p][c]) out.any_left_x[p] = true;
      if (left_xi_flags[p][c]) out.any_left_xi[p] = true;
    }
    out.mean_skipped[p] /= static_cast<double>(cfg.cases);
    out.mean_degraded[p] /= static_cast<double>(cfg.cases);
    out.mean_stale_forced[p] /= static_cast<double>(cfg.cases);
    out.mean_act_dropped[p] /= static_cast<double>(cfg.cases);
  }
  return out;
}

}  // namespace oic::eval
