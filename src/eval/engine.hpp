#pragma once
/// \file engine.hpp
/// Throughput-oriented episode evaluation, generic over PlantCase.
///
/// The original harness rebuilt the full Algorithm-1 runtime inside
/// run_episode: a fresh IntermittentController per episode (whose
/// constructor re-verifies the X' subset XI subset X nesting with a pile of
/// LP solves) driving the shared, cold-started RMPC.  For one episode that
/// is fine; for the paper's Monte-Carlo sweeps (hundreds of cases times
/// several policies) it is the difference between minutes and seconds.
///
/// An EpisodeEngine is the hoisted per-policy context: controller
/// construction, set verification and the MPC's prepared LP happen once,
/// and each run() only resets per-episode state.  Engines own a private
/// TubeMpc copy, so any number of engines can run concurrently against one
/// shared (const) PlantCase.
///
/// compare_policies_parallel shards the case list over a thread pool with
/// one engine set per worker.  Cases are drawn serially up front with the
/// same Rng::split() stream as the serial harness, each episode resets all
/// carried solver state, and the partition is a pure function of
/// (cases, workers) -- so the output is bit-identical to the serial path
/// for a fixed seed, at any worker count.

#include <functional>
#include <memory>
#include <vector>

#include "control/tube_mpc.hpp"
#include "core/intermittent.hpp"
#include "eval/harness.hpp"

namespace oic::eval {

/// Reusable per-policy evaluation context (see file comment).
/// Not thread-safe; create one per worker.
class EpisodeEngine {
 public:
  /// Binds to a plant and a policy.  Builds the Algorithm-1 runtime once:
  /// this is where the nesting verification LPs run.  The policy and plant
  /// must outlive the engine.  An active fault spec routes every episode
  /// through a per-engine fault::Link (re-armed from data.fault_stream);
  /// the default (inactive) spec is the historical fault-free engine, bit
  /// for bit.
  EpisodeEngine(const PlantCase& plant, core::SkipPolicy& policy,
                const fault::FaultSpec& faults = {});

  /// Non-copyable/movable: the controller runtime holds a reference to the
  /// engine's own RMPC instance.
  EpisodeEngine(const EpisodeEngine&) = delete;
  EpisodeEngine& operator=(const EpisodeEngine&) = delete;

  /// Evaluate one episode.  Equivalent to harness run_episode() -- same
  /// decisions, same cost/energy/served counters -- minus the per-episode
  /// setup.  Carried solver state is dropped first, so results do not
  /// depend on what this engine ran before.  Bit-parity with the harness
  /// holds on both the fault-free and the faulted path (tested).
  EpisodeResult run(const CaseData& data);

  /// The policy driving this engine.
  const core::SkipPolicy& policy() const { return policy_; }

  /// Per-step trajectory observer: called after every simulated step with
  /// (t, x_{t+1}).  The importance-splitting layer hooks this to compute
  /// level traces (distance-to-boundary) without the engine storing
  /// trajectories.  Pass {} to clear.  Observers must not touch the
  /// engine (re-entrancy is undefined); they do not affect any result
  /// field, so the bit-parity contract is unchanged.
  void set_observer(std::function<void(std::size_t, const linalg::Vector&)> obs) {
    observer_ = std::move(obs);
  }

 private:
  EpisodeResult run_faulted(const CaseData& data);

  const PlantCase& plant_;
  core::SkipPolicy& policy_;
  control::TubeMpc rmpc_;  ///< private copy: per-engine solver state
  core::IntermittentController ic_;
  fault::Link link_;        ///< per-engine fault realization (inactive = unused)
  linalg::Vector x_;        ///< current state scratch
  linalg::Vector x_next_;   ///< successor scratch
  linalg::Vector w_;        ///< disturbance scratch (dimension nw)
  linalg::Vector prev_meas_x_;  ///< last fresh measured state (fault path)
  linalg::Vector prev_u_cmd_;   ///< input commanded at that step (fault path)
  std::function<void(std::size_t, const linalg::Vector&)> observer_;
};

/// Per-worker policy set builder for the parallel sweep.  Invoked once per
/// worker; must return the same policies in the same order every time
/// (they may share read-only state such as a trained DQN, but each call
/// must produce independently mutable instances).  The bit-identical
/// serial/parallel guarantee additionally requires reset()-complete
/// policies: reset() must restore the exact initial decision state, so an
/// episode's decisions depend only on (x, w_history) since reset.  A
/// policy carrying unreset state (e.g. an internal RNG) voids the
/// guarantee -- its decisions would depend on which cases its worker saw.
using PolicySetFactory =
    std::function<std::vector<std::unique_ptr<core::SkipPolicy>>()>;

/// Sweep configuration.
struct SweepConfig {
  std::size_t cases = 200;
  std::size_t steps = 100;
  std::uint64_t seed = 20200406;
  /// Worker count; 0 picks the hardware concurrency, 1 runs inline (no
  /// threads).  Results are identical for every value given reset()-
  /// complete policies (see PolicySetFactory).
  std::size_t workers = 0;
  /// Fault model applied to every episode (inactive by default).  Each
  /// case carries its own fault stream, so the baseline and every policy
  /// face the SAME loss realization -- the paired comparison extends to
  /// the fault axis -- and results stay worker-count invariant.
  fault::FaultSpec faults;
};

/// Paired policy comparison against the always-run baseline, sharded over
/// a thread pool.  Bit-identical to the serial compare_policies stream for
/// the same seed (see the file comment for why).
ComparisonResult compare_policies_parallel(const PlantCase& plant,
                                           const Scenario& scenario,
                                           const PolicySetFactory& factory,
                                           const SweepConfig& cfg);

}  // namespace oic::eval
