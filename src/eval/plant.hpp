#pragma once
/// \file plant.hpp
/// Plant-generic evaluation: the PlantCase interface and Scenario bundle.
///
/// The paper's Algorithm 1 (tube-MPC feasible set + learned skip policy) is
/// plant-agnostic: nothing in the monitor, the episode loop, or the sweep
/// machinery cares that the first case study was adaptive cruise control.
/// A PlantCase packages what an evaluation needs from a concrete plant:
///
///   * the shifted affine model x+ = A x + B u + E w + c with polytopic
///     X / U / W (control::AffineLTI),
///   * the underlying safe controller kappa_R (a tube RMPC) and its nested
///     sets X' subset XI subset X (core::SafeSets),
///   * the designated skip input,
///   * a scalar-signal-to-disturbance map (scenarios drive plants through
///     one scalar signal per step: the ACC's front-vehicle speed, a
///     crosswind acceleration, a gust load, ...),
///   * the per-step running cost the experiments report ("fuel" for the
///     ACC; actuator duty / battery draw for other plants) and the raw
///     actuation energy.
///
/// acc::AccCase is the first implementation; eval/plants/ holds the rest,
/// and eval/registry.hpp catalogues them by string id.

#include <memory>
#include <string>
#include <vector>

#include "cert/store.hpp"
#include "common/random.hpp"
#include "control/lti.hpp"
#include "control/tube_mpc.hpp"
#include "core/safe_sets.hpp"
#include "sim/profile.hpp"

namespace oic::eval {

/// A concrete plant wired for the intermittent-control evaluation.
/// Construction splits into a cheap declarative cert::PlantModel and the
/// synthesized cert::PlantCertificate resolved through a cert::Provider
/// (fresh synthesis by default, a cert::Store cache with --cert-dir), so
/// building a plant is file-read-bound once certificates are cached.
/// Instances are not copyable; construct once and share const references
/// across engines.
class PlantCase {
 public:
  virtual ~PlantCase() = default;

  /// Registry id ("acc", "lane-keep", ...).
  virtual std::string name() const = 0;

  /// Shifted-coordinate plant model.
  virtual const control::AffineLTI& system() const = 0;

  /// The underlying safe controller kappa_R (tube RMPC).  Engines copy it;
  /// the legacy per-episode path drives this shared instance directly.
  virtual control::TubeMpc& rmpc() = 0;
  virtual const control::TubeMpc& rmpc() const = 0;

  /// X, XI (Prop. 1), X' (Definition 3), in shifted coordinates.
  virtual const core::SafeSets& sets() const = 0;

  /// The certificate's k-step skip ladder X'_1..X'_k (X'_1 == X'),
  /// certifying whole skip bursts (core::compute_multi_step_safe_sets).
  /// The engines wire it into IntermittentConfig for burst:<k> policies;
  /// the default is empty (no burst support).
  virtual const std::vector<poly::HPolytope>& ladder() const;

  /// Skip input in shifted coordinates.
  virtual const linalg::Vector& u_skip() const = 0;

  /// Uniform sample from the strengthened safe set X'.
  virtual linalg::Vector sample_x0(Rng& rng) const = 0;

  /// Map one scalar scenario signal to the disturbance vector w (dimension
  /// nw; `w` is caller-allocated scratch).  The ACC maps the front-vehicle
  /// speed to w = vf - v_ref; plants whose scenarios emit the disturbance
  /// directly just copy.
  virtual void signal_to_w(double signal, linalg::Vector& w) const = 0;

  /// Running cost of one control period at shifted state x actuating
  /// shifted input u.  `controller_ran` is the realized skipping choice
  /// (z = 1): plants whose savings come from the sensing / compute /
  /// communication energy of the control loop itself (the paper's Sec. I
  /// motivation) charge a per-run overhead on it; the ACC's fuel map
  /// ignores it.  Must be strictly positive for the always-run baseline so
  /// relative savings are well defined (model an idle floor).
  virtual double cost_step(const linalg::Vector& x, const linalg::Vector& u,
                           bool controller_ran) const = 0;

  /// Physical actuation energy of a shifted input.
  virtual double energy_raw(const linalg::Vector& u) const = 0;

  /// Per-plant hook for the DRL trainer's energy penalty R2 (Sec. III-B.2)
  /// under train::EnergyMode::kCost: the running-cost *rate* of executing
  /// kappa(x) = u, i.e. cost per unit time rather than per control period,
  /// so reward weights transfer across plants with different periods.  The
  /// default charges the per-step running cost of a controller-run period;
  /// the ACC overrides it with its fuel map divided by the period.
  virtual double train_cost_rate(const linalg::Vector& x,
                                 const linalg::Vector& u) const {
    return cost_step(x, u, /*controller_ran=*/true);
  }
};

/// Envelope of a plant's scalar scenario signal, registered alongside the
/// fixed scenario catalogue: the hard range the signal may take (the ACC's
/// front-vehicle speed window, a crosswind's +/- w_max).  The Monte-Carlo
/// layer (src/mc) synthesizes randomized scenario families inside this
/// band without knowing the plant concretely -- a profile generated
/// within the band maps to in-bounds disturbances through the plant's
/// signal_to_w, so every sampled scenario respects the certificate's W.
/// (Family spectra are drawn in *steps*, so no time scale is needed here:
/// per-step generation is invariant to the plant's physical period.)
struct SignalBand {
  double lo = 0.0;  ///< smallest signal value scenarios may emit
  double hi = 0.0;  ///< largest signal value scenarios may emit

  double center() const { return 0.5 * (lo + hi); }
  double halfwidth() const { return 0.5 * (hi - lo); }
};

/// One experiment configuration: a named disturbance-signal generator.
/// Experiments clone and reseed the profile prototype per test case.
struct Scenario {
  std::string id;          ///< registry key ("Fig.4", "Ex.1", "sine", ...)
  std::string description; ///< human-readable summary for tables
  std::unique_ptr<sim::VelocityProfile> profile;

  Scenario() = default;
  Scenario(std::string id_, std::string desc, std::unique_ptr<sim::VelocityProfile> p)
      : id(std::move(id_)), description(std::move(desc)), profile(std::move(p)) {}

  // Copies null-propagate: a default-constructed Scenario has no profile
  // prototype, and copying one must not dereference the null pointer.
  Scenario(const Scenario& other)
      : id(other.id),
        description(other.description),
        profile(other.profile ? other.profile->clone() : nullptr) {}
  Scenario& operator=(const Scenario& other);
  Scenario(Scenario&&) = default;
  Scenario& operator=(Scenario&&) = default;
};

/// The Algorithm-1 runtime pieces every PlantCase assembles from its
/// certificate: the local LQR gain, the tube RMPC rehydrated from the
/// certificate's tightened / terminal sets, the nested safe-set triple
/// (XI from the RMPC's feasible region per Prop. 1, X' per Definition 3),
/// and the k-step skip ladder.
struct PlantRuntime {
  linalg::Matrix k_lqr;
  std::unique_ptr<control::TubeMpc> rmpc;
  core::SafeSets sets;
  std::vector<poly::HPolytope> ladder;  ///< X'_1 .. X'_k
};

/// Assemble the runtime from an already-resolved certificate (no synthesis
/// LPs run here; the TubeMpc is rehydrated from the stored sets).
PlantRuntime runtime_from_certificate(const cert::PlantModel& model,
                                      cert::PlantCertificate certificate);

/// Resolve the model's certificate through `provider` (empty = fresh
/// cert::synthesize; a cert::Store provider makes this file-read-bound on
/// cache hits) and assemble the runtime.  Throws NumericalError when
/// synthesis degenerates (LQR divergence, empty feasible set, ...).
PlantRuntime build_plant_runtime(const cert::PlantModel& model,
                                 const cert::Provider& provider = {});

/// Uniform sample from a bounded polytope by rejection sampling from its
/// bounding box (dimension-generic; the AccCase sampler specialized to 2-D).
/// `who` labels diagnostics.  Throws NumericalError when the set is
/// unbounded or too thin for rejection sampling.
linalg::Vector sample_from_set(const poly::HPolytope& set, Rng& rng, const char* who);

}  // namespace oic::eval
