#include "eval/sweep.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <utility>

#include "cert/store.hpp"
#include "common/buildinfo.hpp"
#include "common/error.hpp"
#include "common/jsonout.hpp"
#include "common/stats.hpp"
#include "rl/serialize.hpp"

namespace oic::eval {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

using jsonout::append_format;
using jsonout::append_string_array;

}  // namespace

void require_policies_trained_for(const std::vector<std::string>& policy_specs,
                                  const std::vector<std::string>& plant_ids,
                                  const char* who) {
  for (const auto& pspec : policy_specs) {
    const std::string drl = "drl:";
    if (pspec.rfind(drl, 0) != 0) continue;
    const std::string trained_on =
        rl::load_agent_header_file(pspec.substr(drl.size())).plant;
    if (trained_on.empty()) continue;
    for (const auto& pid : plant_ids) {
      OIC_REQUIRE(pid == trained_on,
                  std::string(who) + ": policy '" + pspec +
                      "' was trained on plant '" + trained_on +
                      "' but the grid includes plant '" + pid +
                      "' (restrict the plants or retrain)");
    }
  }
}

PolicySetFactory make_policy_factory(const std::vector<std::string>& specs) {
  OIC_REQUIRE(!specs.empty(), "make_policy_factory: need at least one policy");
  for (const auto& s : specs) (void)make_policy(s);  // validate before any plant build
  return [specs] {
    std::vector<std::unique_ptr<core::SkipPolicy>> ps;
    ps.reserve(specs.size());
    for (const auto& s : specs) ps.push_back(make_policy(s));
    return ps;
  };
}

SweepResult run_sweep(const ScenarioRegistry& registry, const SweepSpec& spec) {
  OIC_REQUIRE(spec.cases >= 1, "run_sweep: need at least one case");
  OIC_REQUIRE(spec.steps >= 1, "run_sweep: need at least one step");
  OIC_REQUIRE(!spec.seeds.empty(), "run_sweep: need at least one seed");

  const bool plants_defaulted = spec.plants.empty();
  const std::vector<std::string> plant_ids =
      plants_defaulted ? registry.production_plant_ids() : spec.plants;
  OIC_REQUIRE(!plant_ids.empty(), "run_sweep: registry is empty");

  // Resolve the grid up front: ids, scenario membership, policies.  Plants
  // are expensive to build; a typo should fail in milliseconds.  Scenario
  // ids are per-plant, so with explicit scenarios each plant sweeps the
  // intersection with its catalogue; a plant the user *named* must list
  // every requested scenario (typo protection), while a *defaulted* plant
  // that lacks them is skipped (`--scenario sine` sweeps exactly the
  // plants that have "sine").
  std::vector<std::pair<std::string, std::vector<std::string>>> grid;
  for (const auto& pid : plant_ids) {
    const PlantInfo& info = registry.plant(pid);
    std::vector<std::string> scenario_ids;
    if (spec.scenarios.empty()) {
      scenario_ids = info.scenario_ids;
    } else {
      for (const auto& sid : spec.scenarios) {
        const bool listed = std::find(info.scenario_ids.begin(),
                                      info.scenario_ids.end(),
                                      sid) != info.scenario_ids.end();
        if (listed) {
          scenario_ids.push_back(sid);
        } else if (!plants_defaulted) {
          (void)registry.make_scenario(pid, sid);  // throws with the known ids
        }
      }
    }
    if (!scenario_ids.empty()) grid.emplace_back(pid, std::move(scenario_ids));
  }
  OIC_REQUIRE(!grid.empty(), "run_sweep: no registered plant lists the requested "
                             "scenarios");
  const PolicySetFactory factory = make_policy_factory(spec.policies);
  // Trained agents are plant-specific: a drl:<path> policy carries the
  // registry id it was trained on (the oic-agent header), and deploying it
  // on another plant would silently compare meaningless decisions even
  // when the state dimensions happen to match.  Reject the grid up front
  // (the factory above already vetted that every file loads).
  std::vector<std::string> grid_plants;
  for (const auto& [pid, scenario_ids] : grid) grid_plants.push_back(pid);
  require_policies_trained_for(spec.policies, grid_plants, "run_sweep");

  // Certificate cache: with --cert-dir every plant build resolves its
  // offline artifacts through the store (load on hit, synthesize-and-write
  // on miss), so a warm sweep's cold start is file-read-bound.
  std::unique_ptr<cert::Store> store;
  cert::Provider provider;
  if (!spec.cert_dir.empty()) {
    store = std::make_unique<cert::Store>(spec.cert_dir);
    provider = store->provider();
  }

  const fault::FaultSpec faults = registry.resolve_faults(spec.faults);

  SweepResult out;
  out.faults = faults;
  const auto t0 = Clock::now();
  for (const auto& [pid, scenario_ids] : grid) {
    const PlantInfo& info = registry.plant(pid);
    const auto plant = info.make_plant(provider);
    for (const auto& sid : scenario_ids) {
      const Scenario scenario = registry.make_scenario(pid, sid);
      for (const std::uint64_t seed : spec.seeds) {
        SweepConfig cfg;
        cfg.cases = spec.cases;
        cfg.steps = spec.steps;
        cfg.seed = seed;
        cfg.workers = spec.workers;
        cfg.faults = faults;

        SweepCell cell;
        cell.plant = pid;
        cell.scenario = sid;
        cell.seed = seed;
        const auto cell_t0 = Clock::now();
        cell.result = compare_policies_parallel(*plant, scenario, factory, cfg);
        cell.wall_s = seconds_since(cell_t0);

        out.episodes += spec.cases * (cell.result.policy_names.size() + 1);
        // Fault-free: any violation is a Theorem-1 bug.  Faulted: only a
        // hard safe-set exit counts (XI excursions are the degradation the
        // sweep measures).
        if (faults.active()) {
          for (const bool v : cell.result.any_left_x) {
            out.safety_violations = out.safety_violations || v;
          }
        } else {
          for (const bool v : cell.result.any_violation) {
            out.safety_violations = out.safety_violations || v;
          }
        }
        out.cells.push_back(std::move(cell));
      }
    }
  }
  out.wall_s = seconds_since(t0);
  out.total_steps = out.episodes * spec.steps;
  return out;
}

std::string sweep_json(const SweepSpec& spec, const SweepResult& result) {
  jsonout::Doc doc("oic_eval");
  std::string& out = doc.body();

  // "config" carries the bench_throughput keys (cases, steps, workers,
  // policies, seed) plus the sweep's grid axes.
  append_format(out, "  \"config\": {\"cases\": %zu, \"steps\": %zu, \"workers\": %zu, ",
                spec.cases, spec.steps, spec.workers);
  out += "\"policies\": ";
  append_string_array(out, spec.policies);
  append_format(out, ", \"seed\": %llu, \"seeds\": [",
                static_cast<unsigned long long>(spec.seeds.front()));
  for (std::size_t i = 0; i < spec.seeds.size(); ++i) {
    if (i) out += ", ";
    append_format(out, "%llu", static_cast<unsigned long long>(spec.seeds[i]));
  }
  out += "], \"plants\": ";
  append_string_array(out, spec.plants);
  out += ", \"scenarios\": ";
  append_string_array(out, spec.scenarios);
  out += ", \"cert_dir\": ";
  jsonout::append_string(out, spec.cert_dir);
  out += ", \"faults\": ";
  jsonout::append_string(out, result.faults.canonical());
  out += "},\n";

  append_format(out,
                "  \"sweep\": {\"wall_s\": %.6f, \"episodes\": %zu, "
                "\"episodes_per_s\": %.3f, \"step_ns\": %.1f},\n",
                result.wall_s, result.episodes, result.episodes_per_s(),
                result.step_ns());

  out += "  \"results\": [\n";
  for (std::size_t i = 0; i < result.cells.size(); ++i) {
    const SweepCell& cell = result.cells[i];
    append_format(out, "    {\"plant\": \"%s\", \"scenario\": \"%s\", \"seed\": %llu, ",
                  cell.plant.c_str(), cell.scenario.c_str(),
                  static_cast<unsigned long long>(cell.seed));
    append_format(out, "\"wall_s\": %.6f, \"policies\": [\n", cell.wall_s);
    const ComparisonResult& r = cell.result;
    for (std::size_t p = 0; p < r.policy_names.size(); ++p) {
      // Policy names can be user-controlled drl:<path> specs: append them
      // escaped and outside the fixed-size formatter.
      out += "      {\"name\": ";
      jsonout::append_string(out, r.policy_names[p]);
      append_format(out,
                    ", \"mean_saving\": %.17g, "
                    "\"mean_skipped\": %.17g, \"violation\": %s, ",
                    mean(r.savings[p]), r.mean_skipped[p],
                    r.any_violation[p] ? "true" : "false");
      append_format(out,
                    "\"left_x\": %s, \"left_xi\": %s, \"mean_degraded\": %.17g, "
                    "\"mean_stale_forced\": %.17g, \"mean_act_dropped\": %.17g, "
                    "\"savings\": [",
                    r.any_left_x[p] ? "true" : "false",
                    r.any_left_xi[p] ? "true" : "false", r.mean_degraded[p],
                    r.mean_stale_forced[p], r.mean_act_dropped[p]);
      for (std::size_t c = 0; c < r.savings[p].size(); ++c) {
        if (c) out += ", ";
        append_format(out, "%.17g", r.savings[p][c]);
      }
      out += (p + 1 < r.policy_names.size()) ? "]},\n" : "]}\n";
    }
    out += (i + 1 < result.cells.size()) ? "    ]},\n" : "    ]}\n";
  }
  out += "  ],\n";
  return std::move(doc).finish(result.safety_violations);
}

}  // namespace oic::eval
