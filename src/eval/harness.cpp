#include "eval/harness.hpp"

#include "common/error.hpp"

namespace oic::eval {

using linalg::Vector;

core::IntermittentConfig make_intermittent_config(const PlantCase& plant,
                                                  const core::SkipPolicy& policy,
                                                  bool faults_active) {
  core::IntermittentConfig icfg;
  icfg.u_skip = plant.u_skip();
  icfg.w_memory = kEpisodeWMemory;
  // Fault campaigns measure XI excursions instead of aborting on them:
  // actuation drops ARE model mismatch, and left_xi is the statistic.
  // The tube controller's own local gain doubles as the degraded-mode
  // recovery feedback: infeasible-at-the-estimate steps actuate the
  // saturated stabilizing feedback instead of holding the (uncertified
  // outside X') skip input through an excursion.
  if (faults_active) {
    icfg.strict_invariant = false;
    icfg.recovery_gain = plant.rmpc().local_gain();
  }
  // Burst-requesting policies get the plant certificate's skip ladder; for
  // every per-step policy (burst_depth() == 0) the config -- and therefore
  // the whole decision stream -- is exactly the historical one.
  const std::size_t depth = policy.burst_depth();
  if (depth >= 1) {
    icfg.burst_depth = depth;
    icfg.ladder = plant.ladder();
    // Plant ladders come from the certificate layer (synthesized or
    // payload-hash-checked load), so the controller skips its LP re-checks.
    icfg.ladder_certified = true;
  }
  return icfg;
}

CaseData make_case(const PlantCase& plant, const Scenario& scenario, Rng& rng,
                   std::size_t steps, bool with_fault_stream) {
  CaseData data;
  Rng x0_rng = rng.split();
  data.x0 = plant.sample_x0(x0_rng);
  auto profile = scenario.profile->clone();
  profile->reset(rng.split());
  data.signal.reserve(steps);
  for (std::size_t t = 0; t < steps; ++t) data.signal.push_back(profile->next());
  if (with_fault_stream) {
    // A third split, taken ONLY on faulted runs: fault-free case streams
    // stay bit-identical to the historical two-split sequence.
    data.fault_stream = rng.split().engine()();
  }
  return data;
}

namespace {

EpisodeResult run_episode_impl(PlantCase& plant, core::SkipPolicy& policy,
                               const CaseData& data, fault::Link* link) {
  const bool faulted = link != nullptr && link->active();
  core::IntermittentController ic(plant.system(), plant.sets(), plant.rmpc(), policy,
                                  make_intermittent_config(plant, policy, faulted));
  ic.reset();
  // Episodes are independent by contract (fresh controller runtime above);
  // drop the RMPC's carried warm-start basis for the same reason.
  plant.rmpc().reset_solver();

  core::RunConfig rcfg;
  rcfg.steps = data.signal.size();

  double fuel = 0.0;
  double energy = 0.0;
  const auto hook = [&](sim::TraceStep& step, const Vector&) {
    step.fuel = plant.cost_step(step.x, step.u, step.z == 1);
    fuel += step.fuel;
    energy += plant.energy_raw(step.u);
  };
  const std::size_t nw = plant.system().nw();
  const auto disturbance = [&](std::size_t t) {
    Vector w(nw);
    plant.signal_to_w(data.signal[t], w);
    return w;
  };

  const core::RunResult rr = core::run_closed_loop(plant.system(), ic, data.x0,
                                                   disturbance, rcfg, hook, link);

  EpisodeResult out;
  out.fuel = fuel;
  out.energy = energy;
  out.skipped = rr.trace.skipped_steps();
  out.forced = rr.trace.forced_steps();
  out.steps = rr.trace.size();
  out.left_x = rr.left_x;
  out.left_xi = rr.left_xi;
  out.degraded_steps = rr.degraded_steps;
  out.stale_forced = rr.stale_forced;
  out.policy_unavail = rr.policy_unavail;
  out.meas_dropped = rr.meas_dropped;
  out.act_dropped = rr.act_dropped;
  return out;
}

}  // namespace

EpisodeResult run_episode(PlantCase& plant, core::SkipPolicy& policy,
                          const CaseData& data) {
  return run_episode_impl(plant, policy, data, nullptr);
}

EpisodeResult run_episode(PlantCase& plant, core::SkipPolicy& policy,
                          const CaseData& data, const fault::FaultSpec& faults) {
  if (!faults.active()) return run_episode_impl(plant, policy, data, nullptr);
  fault::Link link(faults, data.fault_stream);
  return run_episode_impl(plant, policy, data, &link);
}

double fuel_saving(const EpisodeResult& baseline, const EpisodeResult& ours) {
  OIC_REQUIRE(baseline.fuel > 0.0, "fuel_saving: baseline consumed no fuel");
  return (baseline.fuel - ours.fuel) / baseline.fuel;
}

ComparisonResult compare_policies(PlantCase& plant, const Scenario& scenario,
                                  const std::vector<core::SkipPolicy*>& policies,
                                  std::size_t cases, std::size_t steps,
                                  std::uint64_t seed) {
  OIC_REQUIRE(!policies.empty(), "compare_policies: need at least one policy");
  ComparisonResult out;
  out.policy_names.reserve(policies.size());
  for (const auto* p : policies) out.policy_names.push_back(p->name());
  out.savings.assign(policies.size(), {});
  out.mean_skipped.assign(policies.size(), 0.0);
  out.any_violation.assign(policies.size(), false);
  out.any_left_x.assign(policies.size(), false);
  out.any_left_xi.assign(policies.size(), false);
  out.mean_degraded.assign(policies.size(), 0.0);
  out.mean_stale_forced.assign(policies.size(), 0.0);
  out.mean_act_dropped.assign(policies.size(), 0.0);

  core::AlwaysRunPolicy baseline;
  Rng rng(seed);
  for (std::size_t c = 0; c < cases; ++c) {
    const CaseData data = make_case(plant, scenario, rng, steps);
    const EpisodeResult base = run_episode(plant, baseline, data);
    for (std::size_t p = 0; p < policies.size(); ++p) {
      const EpisodeResult r = run_episode(plant, *policies[p], data);
      out.savings[p].push_back(fuel_saving(base, r));
      out.mean_skipped[p] += static_cast<double>(r.skipped);
      if (r.left_x || r.left_xi) out.any_violation[p] = true;
      if (r.left_x) out.any_left_x[p] = true;
      if (r.left_xi) out.any_left_xi[p] = true;
    }
  }
  for (auto& m : out.mean_skipped) m /= static_cast<double>(cases);
  return out;
}

}  // namespace oic::eval
