#pragma once
/// \file cli_util.hpp
/// Shared CLI plumbing for the oic_* tools (oic_eval, oic_train, oic_cert,
/// oic_mc, oic_serve, oic_loadgen): the --key value / --key=value argument
/// parser, strict count parsing, CSV list splitting, the common-flag set
/// (--cert-dir / --faults / --seed / --workers / --json), uniform
/// unknown-flag rejection, JSON file emission, and the registry listing.
/// One copy, so the binaries' flag grammar cannot drift apart.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "eval/registry.hpp"

namespace oic::cliutil {

/// Minimal --key value / --key=value parser over the argv array.
class Args {
 public:
  Args(int argc, char** argv) : argc_(argc), argv_(argv) {}

  /// Value of --key (either form); false when absent.  Consumed flags are
  /// remembered so unknown ones can be reported.
  bool value(const char* key, std::string& out) {
    const std::string eq = std::string("--") + key + "=";
    const std::string flat = std::string("--") + key;
    for (int i = 1; i < argc_; ++i) {
      if (std::strncmp(argv_[i], eq.c_str(), eq.size()) == 0) {
        seen_.push_back(i);
        out = argv_[i] + eq.size();
        return true;
      }
      if (flat == argv_[i] && i + 1 < argc_ &&
          std::strncmp(argv_[i + 1], "--", 2) != 0) {
        seen_.push_back(i);
        seen_.push_back(i + 1);
        out = argv_[i + 1];
        return true;
      }
    }
    return false;
  }

  bool flag(const char* key) {
    const std::string flat = std::string("--") + key;
    for (int i = 1; i < argc_; ++i) {
      if (flat == argv_[i]) {
        seen_.push_back(i);
        return true;
      }
    }
    return false;
  }

  /// First argv index that no lookup consumed; 0 when all were used.
  int first_unknown() const {
    for (int i = 1; i < argc_; ++i) {
      bool used = false;
      for (const int s : seen_) used = used || s == i;
      if (!used) return i;
    }
    return 0;
  }

  /// The raw argv entry at index i -- relative to whatever argv this Args
  /// was built over, so subcommand tools (oic_cert) that shift argv still
  /// report the right token for first_unknown().
  const char* arg(int i) const { return argv_[i]; }

 private:
  int argc_;
  char** argv_;
  std::vector<int> seen_;
};

/// Strict non-negative integer parse; rejects signs, empty, and trailing
/// junk (strtoull would happily wrap "-1" to 2^64-1 and crash the sweep
/// deep inside a reserve()).
inline bool parse_count(const std::string& s, std::uint64_t& out) {
  if (s.empty() || s.size() > 19) return false;
  for (const char c : s) {
    if (c < '0' || c > '9') return false;
  }
  out = std::strtoull(s.c_str(), nullptr, 10);
  return true;
}

/// --key with a strict integer value and a uniform diagnostic.  Returns
/// true when the flag is absent (target untouched) or parsed; prints
/// "<tool>: --<key> expects ..." and returns false on a bad value.
inline bool u64_flag(Args& args, const char* tool, const char* key,
                     std::uint64_t& target) {
  std::string v;
  if (!args.value(key, v)) return true;
  std::uint64_t n = 0;
  if (!parse_count(v, n)) {
    std::fprintf(stderr, "%s: --%s expects a non-negative integer, got '%s'\n", tool,
                 key, v.c_str());
    return false;
  }
  target = n;
  return true;
}

inline bool count_flag(Args& args, const char* tool, const char* key,
                       std::size_t& target) {
  std::uint64_t value = target;
  if (!u64_flag(args, tool, key, value)) return false;
  target = static_cast<std::size_t>(value);
  return true;
}

/// Split a comma-separated list, dropping empty items.
inline std::vector<std::string> split_list(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    const std::string item = csv.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    if (!item.empty()) out.push_back(item);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

/// Uniform unknown-flag rejection: true when every argv entry was
/// consumed, else the shared diagnostic and false.  Call after the last
/// value()/flag() lookup.
inline bool reject_unknown(const Args& args, const char* tool) {
  if (const int unknown = args.first_unknown()) {
    std::fprintf(stderr, "%s: unknown argument '%s' (try --help)\n", tool,
                 args.arg(unknown));
    return false;
  }
  return true;
}

/// Write a JSON document to `path`, reporting like every tool does.
inline bool write_json_file(const char* tool, const std::string& path,
                            const std::string& doc) {
  if (std::FILE* f = std::fopen(path.c_str(), "w")) {
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
    return true;
  }
  std::fprintf(stderr, "%s: could not write %s\n", tool, path.c_str());
  return false;
}

/// The flag set every sweep-shaped binary shares.  One definition, so
/// --cert-dir / --faults / --seed / --workers / --json mean the same thing
/// (same spelling, same diagnostics) across the oic_* tools.
struct CommonOpts {
  std::string cert_dir;              ///< --cert-dir DIR (cert::Store cache)
  std::string faults;                ///< --faults SPEC (preset or key:value)
  std::vector<std::uint64_t> seeds;  ///< --seed N / --seeds a,b
  std::size_t workers = 0;           ///< --workers N, 0 = hardware
  std::string json_path;             ///< --json PATH
  bool write_json = false;
};

/// Which of the shared flags a binary accepts (oic_cert takes no --faults,
/// oic_serve no --seed); unaccepted ones fall through to reject_unknown.
struct CommonFlagSet {
  bool cert_dir = true;
  bool faults = true;
  bool seeds = true;
  bool workers = true;
  bool json = true;
};

/// Parse the shared flags; false (after a diagnostic) on a bad value.
inline bool parse_common(Args& args, const char* tool, CommonOpts& out,
                         CommonFlagSet accept = {}) {
  std::string v;
  if (accept.cert_dir) (void)args.value("cert-dir", out.cert_dir);
  if (accept.faults) (void)args.value("faults", out.faults);
  if (accept.seeds && (args.value("seed", v) || args.value("seeds", v))) {
    out.seeds.clear();
    for (const auto& s : split_list(v)) {
      std::uint64_t n = 0;
      if (!parse_count(s, n)) {
        std::fprintf(stderr, "%s: --seeds expects non-negative integers, got '%s'\n",
                     tool, s.c_str());
        return false;
      }
      out.seeds.push_back(n);
    }
  }
  if (accept.workers && !count_flag(args, tool, "workers", out.workers)) return false;
  if (accept.json) out.write_json = args.value("json", out.json_path);
  return true;
}

/// Print the registered plants and their scenario catalogues (--list).
inline void print_registry(const eval::ScenarioRegistry& reg) {
  std::printf("registered plants:\n");
  for (const auto& pid : reg.plant_ids()) {
    const auto& info = reg.plant(pid);
    std::printf("  %-10s %s\n", info.id.c_str(), info.description.c_str());
    std::printf("  %-10s scenarios:", "");
    for (const auto& sid : info.scenario_ids) std::printf(" %s", sid.c_str());
    std::printf("\n");
  }
}

/// Print the registered fault presets (what --faults accepts besides the
/// raw key:value grammar).
inline void print_fault_presets(const eval::ScenarioRegistry& reg) {
  std::printf("fault presets (--faults <preset id> or key:value grammar):\n");
  for (const auto& preset : reg.fault_presets()) {
    std::printf("  %-15s %s  (%s)\n", preset.id.c_str(),
                preset.description.c_str(), preset.spec.c_str());
  }
}

}  // namespace oic::cliutil
