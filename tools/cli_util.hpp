#pragma once
/// \file cli_util.hpp
/// Shared CLI plumbing for the oic_* tools (oic_eval, oic_train): the
/// --key value / --key=value argument parser, strict count parsing, CSV
/// list splitting, and the registry listing.  One copy, so the binaries'
/// flag grammar cannot drift apart.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "eval/registry.hpp"

namespace oic::cliutil {

/// Minimal --key value / --key=value parser over the argv array.
class Args {
 public:
  Args(int argc, char** argv) : argc_(argc), argv_(argv) {}

  /// Value of --key (either form); false when absent.  Consumed flags are
  /// remembered so unknown ones can be reported.
  bool value(const char* key, std::string& out) {
    const std::string eq = std::string("--") + key + "=";
    const std::string flat = std::string("--") + key;
    for (int i = 1; i < argc_; ++i) {
      if (std::strncmp(argv_[i], eq.c_str(), eq.size()) == 0) {
        seen_.push_back(i);
        out = argv_[i] + eq.size();
        return true;
      }
      if (flat == argv_[i] && i + 1 < argc_ &&
          std::strncmp(argv_[i + 1], "--", 2) != 0) {
        seen_.push_back(i);
        seen_.push_back(i + 1);
        out = argv_[i + 1];
        return true;
      }
    }
    return false;
  }

  bool flag(const char* key) {
    const std::string flat = std::string("--") + key;
    for (int i = 1; i < argc_; ++i) {
      if (flat == argv_[i]) {
        seen_.push_back(i);
        return true;
      }
    }
    return false;
  }

  /// First argv index that no lookup consumed; 0 when all were used.
  int first_unknown() const {
    for (int i = 1; i < argc_; ++i) {
      bool used = false;
      for (const int s : seen_) used = used || s == i;
      if (!used) return i;
    }
    return 0;
  }

 private:
  int argc_;
  char** argv_;
  std::vector<int> seen_;
};

/// Strict non-negative integer parse; rejects signs, empty, and trailing
/// junk (strtoull would happily wrap "-1" to 2^64-1 and crash the sweep
/// deep inside a reserve()).
inline bool parse_count(const std::string& s, std::uint64_t& out) {
  if (s.empty() || s.size() > 19) return false;
  for (const char c : s) {
    if (c < '0' || c > '9') return false;
  }
  out = std::strtoull(s.c_str(), nullptr, 10);
  return true;
}

/// Split a comma-separated list, dropping empty items.
inline std::vector<std::string> split_list(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    const std::string item = csv.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    if (!item.empty()) out.push_back(item);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

/// Print the registered plants and their scenario catalogues (--list).
inline void print_registry(const eval::ScenarioRegistry& reg) {
  std::printf("registered plants:\n");
  for (const auto& pid : reg.plant_ids()) {
    const auto& info = reg.plant(pid);
    std::printf("  %-10s %s\n", info.id.c_str(), info.description.c_str());
    std::printf("  %-10s scenarios:", "");
    for (const auto& sid : info.scenario_ids) std::printf(" %s", sid.c_str());
    std::printf("\n");
  }
}

/// Print the registered fault presets (what --faults accepts besides the
/// raw key:value grammar).
inline void print_fault_presets(const eval::ScenarioRegistry& reg) {
  std::printf("fault presets (--faults <preset id> or key:value grammar):\n");
  for (const auto& preset : reg.fault_presets()) {
    std::printf("  %-15s %s  (%s)\n", preset.id.c_str(),
                preset.description.c_str(), preset.spec.c_str());
  }
}

}  // namespace oic::cliutil
