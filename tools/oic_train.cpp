/// \file oic_train.cpp
/// Training driver over the plant/scenario registry -- the offline half of
/// the paper's pipeline, CLI-shaped like oic_eval:
///
///   oic_train --plant lane-keep --scenario sine --episodes 200 --out agents/
///
/// Trains a DQN skipping agent per (plant, scenario, seed) grid cell
/// through train_grid_parallel (bit-identical to serial at any worker
/// count), serializes each agent via rl/serialize, and prints a per-job
/// summary; --json writes the machine-readable document (bench schema
/// family).  Serialized agents deploy straight into the evaluation side:
///
///   oic_eval --plant lane-keep --policies drl:agents/lane-keep__sine__seedN.agent
///
/// Flags (--key value and --key=value are both accepted):
///   --plant/--plants a,b     plants to train on        (default: all)
///   --scenario/--scenarios   scenario ids              (default: all per plant)
///   --seed/--seeds a,b       training seeds            (default 20200607)
///   --episodes N             training episodes per job (default 200)
///   --steps N                steps per episode         (default 100)
///   --memory N               disturbance memory r      (default 2)
///   --energy cost|kappa      R2 energy mode            (default cost)
///   --workers N              grid workers, 0 = auto    (default 0)
///   --cert-dir DIR           certificate cache (cert::Store) for the
///                            per-worker plant builds
///   --out DIR                agent output directory    (default .)
///   --json PATH              write the JSON document
///   --list                   list plants/scenarios and exit
///
/// Exit status: 0 on a clean grid, 1 on training-time safety violations
/// (Theorem 1: must never happen) or bad usage.

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <system_error>
#include <vector>

#include "cli_util.hpp"
#include "common/error.hpp"
#include "rl/serialize.hpp"
#include "train/grid.hpp"

namespace {

using oic::cliutil::Args;
using oic::cliutil::parse_count;
using oic::cliutil::print_registry;
using oic::cliutil::split_list;
using oic::eval::ScenarioRegistry;
using oic::train::tail_mean;
using oic::train::TrainGridResult;
using oic::train::TrainGridSpec;
using oic::train::TrainJob;

}  // namespace

int main(int argc, char** argv) {
  Args args(argc, argv);
  const ScenarioRegistry& registry = ScenarioRegistry::builtin();

  if (args.flag("help")) {
    std::printf(
        "usage: oic_train [--plant a,b] [--scenario a,b] [--seeds a,b]\n"
        "                 [--episodes N] [--steps N] [--memory N]\n"
        "                 [--energy cost|kappa] [--workers N] [--cert-dir DIR]\n"
        "                 [--out DIR] [--json PATH] [--list]\n");
    print_registry(registry);
    return 0;
  }
  if (args.flag("list")) {
    print_registry(registry);
    return 0;
  }

  TrainGridSpec spec;
  std::string v;
  if (args.value("plant", v) || args.value("plants", v)) spec.plants = split_list(v);
  if (args.value("scenario", v) || args.value("scenarios", v)) {
    spec.scenarios = split_list(v);
  }
  if (!oic::cliutil::count_flag(args, "oic_train", "episodes",
                                spec.trainer.episodes) ||
      !oic::cliutil::count_flag(args, "oic_train", "steps",
                                spec.trainer.steps_per_episode) ||
      !oic::cliutil::count_flag(args, "oic_train", "memory", spec.trainer.memory)) {
    return 1;
  }
  if (args.value("energy", v)) {
    if (v == "cost") {
      spec.trainer.energy_mode = oic::train::EnergyMode::kCost;
    } else if (v == "kappa") {
      spec.trainer.energy_mode = oic::train::EnergyMode::kKappaNorm;
    } else {
      std::fprintf(stderr, "oic_train: --energy expects cost|kappa, got '%s'\n",
                   v.c_str());
      return 1;
    }
  }
  oic::cliutil::CommonOpts common;
  oic::cliutil::CommonFlagSet accept;
  accept.faults = false;  // training has no network fault model
  if (!oic::cliutil::parse_common(args, "oic_train", common, accept)) return 1;
  if (!common.seeds.empty()) spec.seeds = common.seeds;
  spec.workers = common.workers;
  spec.cert_dir = common.cert_dir;
  std::string out_dir = ".";
  (void)args.value("out", out_dir);

  if (!oic::cliutil::reject_unknown(args, "oic_train")) return 1;

  try {
    const std::vector<TrainJob> jobs = oic::train::expand_jobs(registry, spec);
    // Create/validate the agent directory BEFORE spending minutes training:
    // a missing --out must not discard a finished grid.
    std::error_code ec;
    std::filesystem::create_directories(out_dir, ec);
    if (ec || !std::filesystem::is_directory(out_dir)) {
      std::fprintf(stderr, "oic_train: cannot create output directory '%s'\n",
                   out_dir.c_str());
      return 1;
    }
    std::printf("=== oic_train grid ===\n");
    std::printf("jobs=%zu episodes=%zu steps=%zu memory=%zu workers=%zu out=%s\n",
                jobs.size(), spec.trainer.episodes, spec.trainer.steps_per_episode,
                spec.trainer.memory, spec.workers, out_dir.c_str());

    const TrainGridResult result = oic::train::train_grid_parallel(
        registry, jobs, spec.trainer, spec.workers, spec.cert_dir);

    std::vector<std::string> agent_paths;
    agent_paths.reserve(jobs.size());
    for (const auto& r : result.results) {
      const std::string path = out_dir + "/" + oic::train::agent_filename(r.job);
      oic::rl::save_agent_file(r.agent.snapshot(), path);
      agent_paths.push_back(path);
    }

    std::printf("\n%-10s %-10s %-12s %12s %12s %8s %5s\n", "plant", "scenario", "seed",
                "reward", "skip-ratio", "wall[s]", "safe");
    for (const auto& r : result.results) {
      std::printf("%-10s %-10s %-12llu %12.5f %12.3f %8.2f %5s\n", r.job.plant.c_str(),
                  r.job.scenario.c_str(), static_cast<unsigned long long>(r.job.seed),
                  tail_mean(r.log.episode_reward), tail_mean(r.log.episode_skip_ratio),
                  r.wall_s, r.log.left_x ? "NO!" : "yes");
    }
    std::printf("\ngrid: %zu jobs, %.2f s wall; agents written to %s\n",
                result.results.size(), result.wall_s, out_dir.c_str());
    std::printf("safety violations during training: %s (Theorem 1: must be none)\n",
                result.safety_violations ? "YES (BUG!)" : "none");

    if (common.write_json &&
        !oic::cliutil::write_json_file(
            "oic_train", common.json_path,
            oic::train::grid_json(spec, jobs, result, agent_paths))) {
      return 1;
    }
    return result.safety_violations ? 1 : 0;
  } catch (const oic::Error& e) {
    std::fprintf(stderr, "oic_train: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    // Anything escaping the oic::Error hierarchy (bad_alloc, filesystem
    // errors, ...) must still die with a diagnosable message and a
    // nonzero exit, never a raw terminate().
    std::fprintf(stderr, "oic_train: unexpected error: %s\n", e.what());
    return 1;
  }
}
