/// \file oic_loadgen.cpp
/// Load generator for the monitor service: spins up an in-process Server,
/// replays mc::ScenarioFamily traffic against it from multiple client
/// threads (src/serve/loadgen.hpp), and reports decision latency
/// percentiles and throughput:
///
///   oic_loadgen --plants toy2d --sessions 10000 --steps 10 --clients 4
///
/// Every session is driven like a real plant-side deployment: open, one
/// decide per control period carrying the previously actuated input and
/// the measured state, close at the end.  Decisions are actuated through
/// the client's own tube-MPC copy; disturbances are sampled from the
/// plant's scenario family.
///
/// Flags (--key value and --key=value are both accepted):
///   --plant/--plants a,b  registry plants            (default: all)
///   --family ID           scenario family            (default mixed)
///   --policy SPECS        comma-separated skip-policy list assigned
///                         round-robin by session index (default bang-bang)
///   --sessions N          concurrent sessions        (default 10000)
///   --steps N             control periods/session    (default 10)
///   --clients N           client threads             (default 4)
///   --max-batch N         requests per round trip, 0 = whole partition
///                         (default 512; bounded chunks keep clients from
///                         convoying behind each other's full partitions)
///   --window N            chunks each client keeps in flight per control
///                         period, 0 = all of them (default 2; a bounded
///                         window keeps the measured round trip a decision
///                         latency instead of a whole-tick barrier)
///   --transport T         inproc | socket            (default inproc;
///                         socket wraps the server in a loopback listener
///                         so latency includes the wire)
///   --connect HOST:PORT   drive an EXTERNAL oic_serve --listen process
///                         instead of an in-process server (implies the
///                         socket transport; server counters unavailable)
///   --actuate MODE        rmpc | gain -- how clients act on z=1
///                         (default rmpc: warm tube-MPC solve; gain: the
///                         controller's ancillary u = K x, for capacity
///                         runs where client LP cost would mask the server)
///   --seed N              traffic seed               (default 20200406)
///   --workers N           server pool, 0 = hardware  (default 0)
///   --tick-workers N      parallel tick group shards, 1 = serial tick,
///                         0 = hardware               (default 1)
///   --cert-dir DIR        certificate cache (cert::Store)
///   --emit PATH           capture all submitted request batches
///                         (`oic-serve v1` documents, replayable through
///                         oic_serve --in PATH)
///   --json PATH           write the JSON report
///
/// Exit status: 0 on a clean run, 1 when any session got an error
/// response (fault-free traffic must never) or on bad usage.

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "cli_util.hpp"
#include "common/error.hpp"
#include "common/jsonout.hpp"
#include "serve/loadgen.hpp"

namespace {

using oic::cliutil::Args;

std::string loadgen_json(const oic::serve::LoadgenConfig& cfg,
                         std::size_t tick_workers,
                         const oic::serve::LoadgenResult& res,
                         const oic::serve::ServiceCounters& c) {
  oic::jsonout::Doc doc("oic_loadgen");
  std::string& out = doc.body();
  out += "  \"config\": {\"plants\": ";
  oic::jsonout::append_string_array(out, cfg.plants);
  out += ", \"family\": ";
  oic::jsonout::append_string(out, cfg.family);
  out += ", \"policy\": ";
  oic::jsonout::append_string(out, cfg.policy);
  out += ", \"transport\": ";
  oic::jsonout::append_string(out, cfg.transport);
  out += ", \"actuation\": ";
  oic::jsonout::append_string(out, cfg.actuation);
  oic::jsonout::append_format(
      out,
      ", \"sessions\": %zu, \"steps\": %zu, \"clients\": %zu, "
      "\"max_batch\": %zu, \"pipeline_window\": %zu, \"tick_workers\": %zu, "
      "\"seed\": %llu, ",
      cfg.sessions, cfg.steps, cfg.clients, cfg.max_batch, cfg.pipeline_window,
      tick_workers, static_cast<unsigned long long>(cfg.seed));
  out += "\"cert_dir\": ";
  oic::jsonout::append_string(out, cfg.cert_dir);
  out += "},\n";
  oic::jsonout::append_format(
      out,
      "  \"loadgen\": {\"wall_s\": %.6f, \"sessions\": %zu, \"steps\": %zu, "
      "\"decisions\": %llu, \"skipped\": %llu, \"forced\": %llu, "
      "\"errors\": %llu, \"burst_sessions\": %zu, "
      "\"p50_ms\": %.6f, \"p99_ms\": %.6f, "
      "\"submit_p50_ms\": %.6f, \"submit_p99_ms\": %.6f, "
      "\"wait_p50_ms\": %.6f, \"wait_p99_ms\": %.6f, "
      "\"decisions_per_s\": %.3f, \"sessions_per_s\": %.3f},\n",
      res.wall_s, res.sessions, res.steps,
      static_cast<unsigned long long>(res.decisions),
      static_cast<unsigned long long>(res.skipped),
      static_cast<unsigned long long>(res.forced),
      static_cast<unsigned long long>(res.errors), res.burst_sessions,
      res.p50_ms, res.p99_ms, res.submit_p50_ms, res.submit_p99_ms,
      res.wait_p50_ms, res.wait_p99_ms, res.decisions_per_s,
      res.sessions_per_s);
  out += "  \"serve_tick_latency_ms\": [";
  for (std::size_t i = 0; i < res.tick_latency.size(); ++i) {
    const oic::serve::TickLatency& tl = res.tick_latency[i];
    oic::jsonout::append_format(
        out,
        "%s{\"tick\": %zu, \"samples\": %zu, \"p50\": %.6f, \"p99\": %.6f, "
        "\"max\": %.6f, \"submit_p50\": %.6f, \"submit_p99\": %.6f, "
        "\"wait_p50\": %.6f, \"wait_p99\": %.6f}",
        i ? ", " : "", tl.tick, tl.samples, tl.p50_ms, tl.p99_ms, tl.max_ms,
        tl.submit_p50_ms, tl.submit_p99_ms, tl.wait_p50_ms, tl.wait_p99_ms);
  }
  out += "],\n";
  return std::move(doc).finish(c.invariant_errors > 0);
}

/// Parse "HOST:PORT" (the --connect operand).
bool parse_hostport(const std::string& s, std::string& host, std::uint16_t& port) {
  const std::size_t colon = s.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == s.size()) {
    return false;
  }
  host = s.substr(0, colon);
  unsigned long value = 0;
  for (std::size_t i = colon + 1; i < s.size(); ++i) {
    if (s[i] < '0' || s[i] > '9') return false;
    value = value * 10 + static_cast<unsigned long>(s[i] - '0');
    if (value > 65535) return false;
  }
  port = static_cast<std::uint16_t>(value);
  return port != 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args(argc, argv);
  if (args.flag("help")) {
    std::printf(
        "usage: oic_loadgen [--plants a,b] [--family ID] [--policy SPECS]\n"
        "                   [--sessions N] [--steps N] [--clients N]\n"
        "                   [--max-batch N] [--window N]\n"
        "                   [--transport inproc|socket]\n"
        "                   [--connect HOST:PORT] [--actuate rmpc|gain]\n"
        "                   [--seed N] [--workers N] [--tick-workers N]\n"
        "                   [--cert-dir DIR] [--emit PATH] [--json PATH]\n"
        "Replays scenario-family traffic against an in-process monitor server\n"
        "(or, with --connect, an external oic_serve --listen) and reports\n"
        "decision latency percentiles and throughput.\n");
    return 0;
  }

  oic::serve::LoadgenConfig cfg;
  std::string v;
  if (args.value("plant", v) || args.value("plants", v)) {
    cfg.plants = oic::cliutil::split_list(v);
  }
  (void)args.value("family", cfg.family);
  (void)args.value("policy", cfg.policy);
  (void)args.value("emit", cfg.emit_path);
  (void)args.value("transport", cfg.transport);
  (void)args.value("actuate", cfg.actuation);
  std::string connect;
  (void)args.value("connect", connect);
  if (!oic::cliutil::count_flag(args, "oic_loadgen", "sessions", cfg.sessions) ||
      !oic::cliutil::count_flag(args, "oic_loadgen", "steps", cfg.steps) ||
      !oic::cliutil::count_flag(args, "oic_loadgen", "clients", cfg.clients) ||
      !oic::cliutil::count_flag(args, "oic_loadgen", "max-batch",
                                cfg.max_batch) ||
      !oic::cliutil::count_flag(args, "oic_loadgen", "window",
                                cfg.pipeline_window)) {
    return 1;
  }
  oic::serve::ServiceConfig server_cfg;
  if (!oic::cliutil::count_flag(args, "oic_loadgen", "tick-workers",
                                server_cfg.tick_workers)) {
    return 1;
  }
  oic::cliutil::CommonOpts common;
  oic::cliutil::CommonFlagSet accept;
  accept.faults = false;  // the serve layer is fault-free (strict monitor)
  if (!oic::cliutil::parse_common(args, "oic_loadgen", common, accept)) return 1;
  if (common.seeds.size() > 1) {
    std::fprintf(stderr, "oic_loadgen: --seed expects a single traffic seed\n");
    return 1;
  }
  if (!common.seeds.empty()) cfg.seed = common.seeds.front();
  cfg.cert_dir = common.cert_dir;
  server_cfg.cert_dir = common.cert_dir;
  server_cfg.workers = common.workers;
  if (!oic::cliutil::reject_unknown(args, "oic_loadgen")) return 1;

  try {
    std::printf("=== oic_loadgen ===\n");
    std::printf("sessions=%zu steps=%zu clients=%zu policy=%s family=%s "
                "transport=%s actuate=%s seed=%llu\n",
                cfg.sessions, cfg.steps, cfg.clients, cfg.policy.c_str(),
                cfg.family.c_str(),
                connect.empty() ? cfg.transport.c_str() : "socket (external)",
                cfg.actuation.c_str(),
                static_cast<unsigned long long>(cfg.seed));

    const auto& registry = oic::eval::ScenarioRegistry::builtin();
    oic::serve::LoadgenResult res;
    oic::serve::ServiceCounters counters;
    std::uint64_t server_ticks = 0;
    std::size_t open_sessions = 0;
    if (connect.empty()) {
      oic::serve::Server server(registry, server_cfg);
      res = oic::serve::run_loadgen(server, registry, cfg);
      server.shutdown();
      counters = server.counters();
      server_ticks = server.ticks();
      open_sessions = server.open_sessions();
    } else {
      std::string host;
      std::uint16_t port = 0;
      if (!parse_hostport(connect, host, port)) {
        std::fprintf(stderr,
                     "oic_loadgen: --connect expects HOST:PORT, got '%s'\n",
                     connect.c_str());
        return 1;
      }
      cfg.transport = "socket";
      res = oic::serve::run_loadgen_connect(registry, cfg, host, port);
    }

    std::printf("\n%llu decisions (%llu skipped, %llu forced), %llu errors, "
                "%.2f s wall\n",
                static_cast<unsigned long long>(res.decisions),
                static_cast<unsigned long long>(res.skipped),
                static_cast<unsigned long long>(res.forced),
                static_cast<unsigned long long>(res.errors), res.wall_s);
    std::printf("latency    : p50 %.3f ms  |  p99 %.3f ms (submit -> await; "
                "submit p50 %.3f ms, wait p50 %.3f ms)\n",
                res.p50_ms, res.p99_ms, res.submit_p50_ms, res.wait_p50_ms);
    std::printf("throughput : %.0f decisions/s  |  %.0f sessions/s sustained "
                "(1 decision/session/period)\n",
                res.decisions_per_s, res.sessions_per_s);
    if (connect.empty()) {
      std::printf("server     : %llu ticks, %zu sessions open at shutdown\n",
                  static_cast<unsigned long long>(server_ticks), open_sessions);
    } else {
      std::printf("server     : external (%s)\n", connect.c_str());
    }
    if (!cfg.emit_path.empty()) {
      std::printf("emitted request batches to %s\n", cfg.emit_path.c_str());
    }

    if (common.write_json &&
        !oic::cliutil::write_json_file(
            "oic_loadgen", common.json_path,
            loadgen_json(cfg, server_cfg.tick_workers, res, counters))) {
      return 1;
    }
    return res.errors > 0 || counters.invariant_errors > 0 ? 1 : 0;
  } catch (const oic::Error& e) {
    std::fprintf(stderr, "oic_loadgen: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    // Anything escaping the oic::Error hierarchy (bad_alloc, filesystem
    // errors, ...) must still die with a diagnosable message and a
    // nonzero exit, never a raw terminate().
    std::fprintf(stderr, "oic_loadgen: unexpected error: %s\n", e.what());
    return 1;
  }
}
