/// \file oic_serve.cpp
/// Monitor-as-a-service front end: a long-running multi-session monitor
/// server speaking the `oic-serve v1` text protocol (src/serve/api.hpp)
/// over stdin/stdout or files:
///
///   oic_loadgen --sessions 256 --steps 5 --emit burst.reqs --json /dev/null
///   oic_serve --in burst.reqs --out burst.resps --json report.json
///
/// Each request batch read from --in is answered with a matching response
/// batch on --out, lock-step: open/close mutate the session table, decide
/// requests are batched per (plant, policy) group through one fused SoA
/// monitor/policy pass (Service), and reload re-resolves certificates and
/// agents through the cert::Store hash guards without dropping sessions.
/// EOF on --in shuts the server down cleanly.
///
/// Flags (--key value and --key=value are both accepted):
///   --in PATH|-         request stream             (default: - = stdin)
///   --out PATH|-        response stream            (default: - = stdout)
///   --cert-dir DIR      certificate cache (cert::Store); enables hot
///                       reload of rewritten certificates
///   --workers N         membership-check pool, 0 = hardware (default 0)
///   --max-sessions N    session-table cap          (default 1048576)
///   --json PATH         write the JSON service report
///
/// Exit status: 0 on a clean run, 1 on a malformed request stream, an
/// invariant violation (a session's state left XI -- Algorithm 1's
/// precondition), or bad usage.  Human-readable progress goes to stderr:
/// stdout is the response stream when --out is '-'.

#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "cli_util.hpp"
#include "common/error.hpp"
#include "common/jsonout.hpp"
#include "serve/server.hpp"

namespace {

using oic::cliutil::Args;

std::string serve_json(const oic::serve::ServiceConfig& cfg,
                       const oic::serve::ServiceCounters& c, std::size_t open_sessions,
                       std::uint64_t ticks, std::uint64_t batches, double wall_s) {
  oic::jsonout::Doc doc("oic_serve");
  std::string& out = doc.body();
  oic::jsonout::append_format(out,
                              "  \"config\": {\"workers\": %zu, \"max_sessions\": %zu, "
                              "\"cert_dir\": ",
                              cfg.workers, cfg.max_sessions);
  oic::jsonout::append_string(out, cfg.cert_dir);
  out += "},\n";
  oic::jsonout::append_format(
      out,
      "  \"serve\": {\"wall_s\": %.6f, \"ticks\": %llu, \"batches\": %llu, "
      "\"decisions\": %llu, \"skipped\": %llu, \"forced\": %llu, "
      "\"errors\": %llu, \"invariant_errors\": %llu, \"reloads\": %llu, "
      "\"cert_swaps\": %llu, \"agent_swaps\": %llu, \"open_sessions\": %zu},\n",
      wall_s, static_cast<unsigned long long>(ticks),
      static_cast<unsigned long long>(batches),
      static_cast<unsigned long long>(c.decisions),
      static_cast<unsigned long long>(c.skipped),
      static_cast<unsigned long long>(c.forced),
      static_cast<unsigned long long>(c.errors),
      static_cast<unsigned long long>(c.invariant_errors),
      static_cast<unsigned long long>(c.reloads),
      static_cast<unsigned long long>(c.cert_swaps),
      static_cast<unsigned long long>(c.agent_swaps), open_sessions);
  // A session leaving XI is exactly the condition Theorem 1 rules out for
  // honest clients; it is the serve-layer safety verdict.
  return std::move(doc).finish(c.invariant_errors > 0);
}

}  // namespace

int main(int argc, char** argv) {
  Args args(argc, argv);
  if (args.flag("help")) {
    std::printf(
        "usage: oic_serve [--in PATH|-] [--out PATH|-] [--cert-dir DIR]\n"
        "                 [--workers N] [--max-sessions N] [--json PATH]\n"
        "Reads `oic-serve v1` request batches from --in, answers each with a\n"
        "response batch on --out (lock-step), shuts down cleanly at EOF.\n");
    return 0;
  }

  std::string in_path = "-";
  std::string out_path = "-";
  (void)args.value("in", in_path);
  (void)args.value("out", out_path);

  oic::serve::ServiceConfig cfg;
  oic::cliutil::CommonOpts common;
  oic::cliutil::CommonFlagSet accept;
  accept.faults = false;  // the serve layer is fault-free (strict monitor)
  accept.seeds = false;   // the server is deterministic in its inputs
  if (!oic::cliutil::parse_common(args, "oic_serve", common, accept)) return 1;
  cfg.cert_dir = common.cert_dir;
  cfg.workers = common.workers;
  if (!oic::cliutil::count_flag(args, "oic_serve", "max-sessions",
                                cfg.max_sessions)) {
    return 1;
  }
  if (!oic::cliutil::reject_unknown(args, "oic_serve")) return 1;

  std::ifstream in_file;
  std::ofstream out_file;
  if (in_path != "-") {
    in_file.open(in_path);
    if (!in_file) {
      std::fprintf(stderr, "oic_serve: cannot open --in '%s'\n", in_path.c_str());
      return 1;
    }
  }
  if (out_path != "-") {
    out_file.open(out_path);
    if (!out_file) {
      std::fprintf(stderr, "oic_serve: cannot open --out '%s'\n", out_path.c_str());
      return 1;
    }
  }
  std::istream& in = in_path == "-" ? std::cin : in_file;
  std::ostream& out = out_path == "-" ? std::cout : out_file;

  try {
    const auto t0 = std::chrono::steady_clock::now();
    oic::serve::Server server(oic::eval::ScenarioRegistry::builtin(), cfg);
    auto conn = server.connect();

    std::uint64_t batches = 0;
    std::vector<oic::serve::Request> batch;
    while (oic::serve::read_request_batch(in, batch)) {
      conn->submit(batch);
      const std::vector<oic::serve::Response> responses = conn->await(batch.size());
      oic::serve::write_response_batch(responses, out);
      out.flush();
      ++batches;
    }
    server.shutdown();
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

    const auto& c = server.counters();
    std::fprintf(stderr,
                 "oic_serve: %llu batches, %llu ticks, %llu decisions "
                 "(%llu skipped, %llu forced), %llu errors "
                 "(%llu invariant), %zu sessions open at shutdown\n",
                 static_cast<unsigned long long>(batches),
                 static_cast<unsigned long long>(server.ticks()),
                 static_cast<unsigned long long>(c.decisions),
                 static_cast<unsigned long long>(c.skipped),
                 static_cast<unsigned long long>(c.forced),
                 static_cast<unsigned long long>(c.errors),
                 static_cast<unsigned long long>(c.invariant_errors),
                 server.open_sessions());

    if (common.write_json &&
        !oic::cliutil::write_json_file(
            "oic_serve", common.json_path,
            serve_json(cfg, c, server.open_sessions(), server.ticks(), batches,
                       wall_s))) {
      return 1;
    }
    return c.invariant_errors > 0 ? 1 : 0;
  } catch (const oic::Error& e) {
    std::fprintf(stderr, "oic_serve: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    // Anything escaping the oic::Error hierarchy (bad_alloc, filesystem
    // errors, ...) must still die with a diagnosable message and a
    // nonzero exit, never a raw terminate().
    std::fprintf(stderr, "oic_serve: unexpected error: %s\n", e.what());
    return 1;
  }
}
