/// \file oic_serve.cpp
/// Monitor-as-a-service front end: a long-running multi-session monitor
/// server speaking the `oic-serve v1` text protocol (src/serve/api.hpp)
/// over stdin/stdout, files, or a loopback TCP socket:
///
///   oic_loadgen --sessions 256 --steps 5 --emit burst.reqs --json /dev/null
///   oic_serve --in burst.reqs --out burst.resps --json report.json
///
///   oic_serve --listen 0 --port-file serve.port &
///   oic_loadgen --connect 127.0.0.1:$(cat serve.port) --sessions 10000
///
/// Each request batch read from --in is answered with a matching response
/// batch on --out, lock-step: open/close mutate the session table, decide
/// requests are batched per (plant, policy) group through one fused SoA
/// monitor/policy pass (Service), and reload re-resolves certificates and
/// agents through the cert::Store hash guards without dropping sessions.
/// EOF on --in shuts the server down cleanly.
///
/// With --listen the server instead accepts loopback TCP connections
/// (one reader/writer thread pair per connection, all feeding the shared
/// request inbox), answers each connection's batches in its submission
/// order, and runs until SIGINT or SIGTERM, then drains and shuts down
/// cleanly.  Port 0 binds an ephemeral port; --port-file publishes the
/// bound port for scripts.
///
/// Flags (--key value and --key=value are both accepted):
///   --in PATH|-         request stream             (default: - = stdin)
///   --out PATH|-        response stream            (default: - = stdout)
///   --listen PORT       serve loopback TCP instead of --in/--out
///                       (0 = ephemeral port)
///   --port-file PATH    write the bound port (requires --listen)
///   --cert-dir DIR      certificate cache (cert::Store); enables hot
///                       reload of rewritten certificates
///   --workers N         membership-check pool, 0 = hardware (default 0)
///   --tick-workers N    parallel tick group shards, 1 = serial tick,
///                       0 = hardware               (default 1)
///   --max-sessions N    session-table cap          (default 1048576)
///   --json PATH         write the JSON service report
///
/// Exit status: 0 on a clean run, 1 on a malformed request stream, an
/// invariant violation (a session's state left XI -- Algorithm 1's
/// precondition), or bad usage.  Human-readable progress goes to stderr:
/// stdout is the response stream when --out is '-'.

#include <csignal>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "cli_util.hpp"
#include "common/error.hpp"
#include "common/jsonout.hpp"
#include "serve/server.hpp"
#include "serve/socket.hpp"

namespace {

using oic::cliutil::Args;

std::string serve_json(const oic::serve::ServiceConfig& cfg, const char* transport,
                       const oic::serve::ServiceCounters& c, std::size_t open_sessions,
                       std::uint64_t ticks, std::uint64_t batches,
                       std::uint64_t connections, double wall_s) {
  oic::jsonout::Doc doc("oic_serve");
  std::string& out = doc.body();
  oic::jsonout::append_format(
      out,
      "  \"config\": {\"workers\": %zu, \"tick_workers\": %zu, "
      "\"max_sessions\": %zu, \"transport\": \"%s\", \"cert_dir\": ",
      cfg.workers, cfg.tick_workers, cfg.max_sessions, transport);
  oic::jsonout::append_string(out, cfg.cert_dir);
  out += "},\n";
  oic::jsonout::append_format(
      out,
      "  \"serve\": {\"wall_s\": %.6f, \"ticks\": %llu, \"batches\": %llu, "
      "\"connections\": %llu, "
      "\"decisions\": %llu, \"skipped\": %llu, \"forced\": %llu, "
      "\"errors\": %llu, \"invariant_errors\": %llu, \"reloads\": %llu, "
      "\"cert_swaps\": %llu, \"agent_swaps\": %llu, \"open_sessions\": %zu},\n",
      wall_s, static_cast<unsigned long long>(ticks),
      static_cast<unsigned long long>(batches),
      static_cast<unsigned long long>(connections),
      static_cast<unsigned long long>(c.decisions),
      static_cast<unsigned long long>(c.skipped),
      static_cast<unsigned long long>(c.forced),
      static_cast<unsigned long long>(c.errors),
      static_cast<unsigned long long>(c.invariant_errors),
      static_cast<unsigned long long>(c.reloads),
      static_cast<unsigned long long>(c.cert_swaps),
      static_cast<unsigned long long>(c.agent_swaps), open_sessions);
  // A session leaving XI is exactly the condition Theorem 1 rules out for
  // honest clients; it is the serve-layer safety verdict.
  return std::move(doc).finish(c.invariant_errors > 0);
}

/// Strict port token: digits only, <= 65535 (0 = ephemeral).
bool parse_port(const std::string& s, std::uint16_t& port) {
  if (s.empty() || s.size() > 5) return false;
  unsigned long value = 0;
  for (const char ch : s) {
    if (ch < '0' || ch > '9') return false;
    value = value * 10 + static_cast<unsigned long>(ch - '0');
  }
  if (value > 65535) return false;
  port = static_cast<std::uint16_t>(value);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Args args(argc, argv);
  if (args.flag("help")) {
    std::printf(
        "usage: oic_serve [--in PATH|-] [--out PATH|-] [--cert-dir DIR]\n"
        "                 [--listen PORT] [--port-file PATH]\n"
        "                 [--workers N] [--tick-workers N]\n"
        "                 [--max-sessions N] [--json PATH]\n"
        "Reads `oic-serve v1` request batches from --in, answers each with a\n"
        "response batch on --out (lock-step), shuts down cleanly at EOF.\n"
        "With --listen, accepts loopback TCP connections instead and runs\n"
        "until SIGINT/SIGTERM (port 0 = ephemeral; see --port-file).\n");
    return 0;
  }

  std::string in_path = "-";
  std::string out_path = "-";
  (void)args.value("in", in_path);
  (void)args.value("out", out_path);
  std::string listen_str;
  const bool listen_mode = args.value("listen", listen_str);
  std::string port_file;
  (void)args.value("port-file", port_file);

  oic::serve::ServiceConfig cfg;
  oic::cliutil::CommonOpts common;
  oic::cliutil::CommonFlagSet accept;
  accept.faults = false;  // the serve layer is fault-free (strict monitor)
  accept.seeds = false;   // the server is deterministic in its inputs
  if (!oic::cliutil::parse_common(args, "oic_serve", common, accept)) return 1;
  cfg.cert_dir = common.cert_dir;
  cfg.workers = common.workers;
  if (!oic::cliutil::count_flag(args, "oic_serve", "max-sessions",
                                cfg.max_sessions) ||
      !oic::cliutil::count_flag(args, "oic_serve", "tick-workers",
                                cfg.tick_workers)) {
    return 1;
  }
  if (!oic::cliutil::reject_unknown(args, "oic_serve")) return 1;

  std::uint16_t listen_port = 0;
  if (listen_mode && !parse_port(listen_str, listen_port)) {
    std::fprintf(stderr, "oic_serve: --listen expects a port in 0..65535, got '%s'\n",
                 listen_str.c_str());
    return 1;
  }
  if (!port_file.empty() && !listen_mode) {
    std::fprintf(stderr, "oic_serve: --port-file requires --listen\n");
    return 1;
  }

  std::ifstream in_file;
  std::ofstream out_file;
  if (!listen_mode) {
    if (in_path != "-") {
      in_file.open(in_path);
      if (!in_file) {
        std::fprintf(stderr, "oic_serve: cannot open --in '%s'\n", in_path.c_str());
        return 1;
      }
    }
    if (out_path != "-") {
      out_file.open(out_path);
      if (!out_file) {
        std::fprintf(stderr, "oic_serve: cannot open --out '%s'\n", out_path.c_str());
        return 1;
      }
    }
  }
  std::istream& in = in_path == "-" ? std::cin : in_file;
  std::ostream& out = out_path == "-" ? std::cout : out_file;

  try {
    // Block the shutdown signals before any thread exists so every thread
    // (server workers, connection handlers) inherits the mask and the
    // sigwait below is the only consumer.
    sigset_t sigs;
    sigemptyset(&sigs);
    sigaddset(&sigs, SIGINT);
    sigaddset(&sigs, SIGTERM);
    if (listen_mode) pthread_sigmask(SIG_BLOCK, &sigs, nullptr);

    const auto t0 = std::chrono::steady_clock::now();
    oic::serve::Server server(oic::eval::ScenarioRegistry::builtin(), cfg);

    std::uint64_t batches = 0;
    std::uint64_t connections = 0;
    if (listen_mode) {
      oic::serve::SocketListener listener(server, listen_port);
      std::fprintf(stderr, "oic_serve: listening on 127.0.0.1:%u\n",
                   static_cast<unsigned>(listener.port()));
      if (!port_file.empty()) {
        std::ofstream pf(port_file);
        pf << listener.port() << '\n';
        if (!pf.good()) {
          std::fprintf(stderr, "oic_serve: cannot write --port-file '%s'\n",
                       port_file.c_str());
          return 1;
        }
      }
      int sig = 0;
      sigwait(&sigs, &sig);
      std::fprintf(stderr, "oic_serve: caught signal %d, shutting down\n", sig);
      listener.stop();
      connections = listener.connections_accepted();
    } else {
      auto conn = server.connect();
      std::vector<oic::serve::Request> batch;
      oic::serve::RequestReader reader(in);
      while (reader.read(batch)) {
        conn->submit(batch);
        const std::vector<oic::serve::Response> responses = conn->await(batch.size());
        oic::serve::write_response_batch(responses, out);
        out.flush();
        ++batches;
      }
    }
    server.shutdown();
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

    const auto& c = server.counters();
    std::fprintf(stderr,
                 "oic_serve: %llu batches, %llu connections, %llu ticks, "
                 "%llu decisions (%llu skipped, %llu forced), %llu errors "
                 "(%llu invariant), %zu sessions open at shutdown\n",
                 static_cast<unsigned long long>(batches),
                 static_cast<unsigned long long>(connections),
                 static_cast<unsigned long long>(server.ticks()),
                 static_cast<unsigned long long>(c.decisions),
                 static_cast<unsigned long long>(c.skipped),
                 static_cast<unsigned long long>(c.forced),
                 static_cast<unsigned long long>(c.errors),
                 static_cast<unsigned long long>(c.invariant_errors),
                 server.open_sessions());

    if (common.write_json &&
        !oic::cliutil::write_json_file(
            "oic_serve", common.json_path,
            serve_json(cfg, listen_mode ? "socket" : "stdio", c,
                       server.open_sessions(), server.ticks(), batches,
                       connections, wall_s))) {
      return 1;
    }
    return c.invariant_errors > 0 ? 1 : 0;
  } catch (const oic::Error& e) {
    std::fprintf(stderr, "oic_serve: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    // Anything escaping the oic::Error hierarchy (bad_alloc, filesystem
    // errors, ...) must still die with a diagnosable message and a
    // nonzero exit, never a raw terminate().
    std::fprintf(stderr, "oic_serve: unexpected error: %s\n", e.what());
    return 1;
  }
}
